//! Golden-file tests pinning the `EXPLAIN` rendering byte-for-byte for one
//! query of every class in the paper's catalogue (plus the naive fallback).
//!
//! The rendered text is fully deterministic: it depends only on the catalog
//! (fixed fixture tables), the execution configuration (defaults), and the
//! plan — never on wall time or thread count. Any drift is a real change to
//! planning or rendering and must be reviewed.
//!
//! To regenerate after an intentional change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test explain_golden
//! ```

use fuzzy_db::core::Value;
use fuzzy_db::rel::{AttrType, Schema, Tuple};
use fuzzy_db::Database;

/// A deterministic three-table fixture: R (8 tuples), S (6), T (4), all with
/// the same (ID, X, V) numeric schema so every query class can be expressed.
fn fixture() -> Database {
    let mut db = Database::with_paper_vocabulary();
    for (name, n) in [("R", 8usize), ("S", 6), ("T", 4)] {
        db.create_table(
            name,
            Schema::of(&[
                ("ID", AttrType::Number),
                ("X", AttrType::Number),
                ("V", AttrType::Number),
            ]),
        )
        .unwrap();
        db.load(
            name,
            (0..n).map(|i| {
                Tuple::full(vec![
                    Value::number(i as f64),
                    Value::number((i % 3) as f64 * 10.0),
                    Value::number(100.0 + i as f64),
                ])
            }),
        )
        .unwrap();
    }
    db
}

fn check(name: &str, sql: &str) {
    check_db(&fixture(), name, sql)
}

fn check_db(db: &Database, name: &str, sql: &str) {
    let actual = db.explain(sql).expect("EXPLAIN failed");
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let path = dir.join(format!("{name}.txt"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(&path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run `UPDATE_GOLDEN=1 cargo test --test \
             explain_golden` to create it",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "EXPLAIN drift for {name} (golden {}); if intentional, regenerate with \
         `UPDATE_GOLDEN=1 cargo test --test explain_golden`",
        path.display()
    );
}

#[test]
fn golden_flat() {
    check("flat", "SELECT R.ID FROM R, S WHERE R.X = S.X WITH D > 0.3");
}

#[test]
fn golden_type_n() {
    check("type_n", "SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S)");
}

#[test]
fn golden_type_j() {
    check("type_j", "SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S WHERE S.V = R.V)");
}

#[test]
fn golden_type_some() {
    check("type_some", "SELECT R.ID FROM R WHERE R.X = SOME (SELECT S.X FROM S WHERE S.V = R.V)");
}

#[test]
fn golden_type_nx() {
    check("type_nx", "SELECT R.ID FROM R WHERE R.X NOT IN (SELECT S.X FROM S)");
}

#[test]
fn golden_type_jx() {
    check("type_jx", "SELECT R.ID FROM R WHERE R.X NOT IN (SELECT S.X FROM S WHERE S.V = R.V)");
}

#[test]
fn golden_type_a() {
    check("type_a", "SELECT R.ID FROM R WHERE R.V > (SELECT AVG(S.V) FROM S)");
}

#[test]
fn golden_type_ja() {
    check("type_ja", "SELECT R.ID FROM R WHERE R.V <= (SELECT MAX(S.V) FROM S WHERE S.X = R.X)");
}

#[test]
fn golden_type_all() {
    check("type_all", "SELECT R.ID FROM R WHERE R.V > ALL (SELECT T.V FROM T)");
}

#[test]
fn golden_chain3() {
    check(
        "chain3",
        "SELECT R.ID FROM R WHERE R.X IN \
         (SELECT S.X FROM S WHERE S.X IN (SELECT T.X FROM T))",
    );
}

/// The pipelined three-way chain is pinned with zero intermediate
/// materialization (`-> temp table`) lines; the same plan with
/// `pipeline_joins` off is pinned showing the temp-table spill it replaces.
#[test]
fn golden_chain3_materialized() {
    let sql = "SELECT R.ID FROM R WHERE R.X IN \
               (SELECT S.X FROM S WHERE S.X IN (SELECT T.X FROM T))";
    let mut db = fixture();
    db.set_exec_config(fuzzy_db::engine::ExecConfig {
        pipeline_joins: false,
        ..Default::default()
    });
    check_db(&db, "chain3_materialized", sql);
    let materialized = db.explain(sql).unwrap();
    assert!(materialized.contains("-> temp table"), "{materialized}");
    assert!(!materialized.contains("-> pipelined"), "{materialized}");
    let pipelined = fixture().explain(sql).unwrap();
    assert!(pipelined.contains("-> pipelined"), "{pipelined}");
    assert!(!pipelined.contains("-> temp table"), "{pipelined}");
}

#[test]
fn golden_general_fallback() {
    check(
        "general_fallback",
        "SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S) \
         AND R.V IN (SELECT T.V FROM T)",
    );
}
