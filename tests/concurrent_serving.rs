//! Concurrent serving stress tests: N sessions × M statements against one
//! shared database must produce bit-identical answers and degrees to a
//! serial replay, with deterministic plan-cache counters for a fixed
//! statement schedule (wall times and lock waits are the only
//! nondeterministic outputs).
//!
//! Covers the serving layer end to end: shared catalog handles, session
//! concurrency, the verified-plan cache (hits skip re-verification),
//! DDL/DML invalidation, prepared-statement staleness, and the serving
//! counters returning to rest.

use fuzzy_db::core::Value;
use fuzzy_db::rel::{AttrType, Schema, Tuple};
use fuzzy_db::{Database, EngineError, Session, Strategy};
use std::sync::{Arc, Barrier};

/// The deterministic three-table fixture of the verifier suite, scaled:
/// R has `8 * scale` tuples, S `6 * scale`, T `4 * scale`, all with the same
/// (ID, X, V) numeric schema so every query class can be expressed.
fn fixture(scale: usize) -> Database {
    let mut db = Database::with_paper_vocabulary();
    for (name, base) in [("R", 8usize), ("S", 6), ("T", 4)] {
        db.create_table(
            name,
            Schema::of(&[
                ("ID", AttrType::Number),
                ("X", AttrType::Number),
                ("V", AttrType::Number),
            ]),
        )
        .unwrap();
        db.load(
            name,
            (0..base * scale).map(|i| {
                Tuple::full(vec![
                    Value::number(i as f64),
                    Value::number((i % 3) as f64 * 10.0),
                    Value::number(100.0 + i as f64),
                ])
            }),
        )
        .unwrap();
    }
    db
}

/// One query per class of the paper's catalogue (the verifier corpus): flat,
/// N, J, SOME, NX, JX, A, JA, ALL, a 3-level chain, and the general fallback.
const CORPUS: &[&str] = &[
    "SELECT R.ID FROM R, S WHERE R.X = S.X WITH D > 0.3",
    "SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S)",
    "SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S WHERE S.V = R.V)",
    "SELECT R.ID FROM R WHERE R.X = SOME (SELECT S.X FROM S WHERE S.V = R.V)",
    "SELECT R.ID FROM R WHERE R.X NOT IN (SELECT S.X FROM S)",
    "SELECT R.ID FROM R WHERE R.X NOT IN (SELECT S.X FROM S WHERE S.V = R.V)",
    "SELECT R.ID FROM R WHERE R.V > (SELECT AVG(S.V) FROM S)",
    "SELECT R.ID FROM R WHERE R.V <= (SELECT MAX(S.V) FROM S WHERE S.X = R.X)",
    "SELECT R.ID FROM R WHERE R.V > ALL (SELECT T.V FROM T)",
    "SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S WHERE S.X IN (SELECT T.X FROM T))",
    "SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S) AND R.V IN (SELECT T.V FROM T)",
];

/// Serial replay of the corpus on a fresh fixture: the reference answers.
fn serial_reference(scale: usize) -> Vec<fuzzy_db::rel::Relation> {
    let db = fixture(scale);
    CORPUS.iter().map(|sql| db.query(sql).collect().unwrap().canonicalized()).collect()
}

#[test]
fn concurrent_sessions_match_serial_replay_bit_for_bit() {
    let reference = Arc::new(serial_reference(2));
    const ROUNDS: usize = 2;
    for sessions in [1usize, 2, 4, 8] {
        let db = fixture(2);
        let statements_before = db.serving_counters().statements();
        let start = Arc::new(Barrier::new(sessions));
        let handles: Vec<_> = (0..sessions)
            .map(|offset| {
                let session = db.session();
                let reference = reference.clone();
                let start = start.clone();
                std::thread::spawn(move || {
                    start.wait();
                    // Each session walks the corpus from its own offset so
                    // different statements overlap in time.
                    for round in 0..ROUNDS {
                        for i in 0..CORPUS.len() {
                            let idx = (i + offset + round) % CORPUS.len();
                            let ans = session.query(CORPUS[idx]).collect().unwrap();
                            assert_eq!(
                                ans.canonicalized(),
                                reference[idx],
                                "sessions={sessions} offset={offset} statement={idx}"
                            );
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let counters = db.serving_counters();
        assert_eq!(counters.in_flight(), 0, "every statement exited");
        assert!(counters.peak_in_flight() >= 1);
        assert_eq!(
            counters.statements() - statements_before,
            (sessions * ROUNDS * CORPUS.len()) as u64,
            "every statement was counted exactly once"
        );
        // The cache key space is the corpus: however the schedule interleaved,
        // at most |corpus| plans were ever built *per planning race*, and the
        // counters are exact: hits + misses = total lookups.
        let s = db.plan_cache_stats();
        assert_eq!(
            s.hits + s.misses,
            (sessions * ROUNDS * CORPUS.len()) as u64,
            "every unnest statement consulted the cache exactly once"
        );
        assert_eq!(s.invalidations, 0, "no DDL/DML ran");
        assert_eq!(s.entries, CORPUS.len());
    }
}

#[test]
fn plan_cache_counters_are_deterministic_for_a_fixed_schedule() {
    let db = fixture(1);
    for _ in 0..3 {
        for sql in CORPUS {
            db.query(sql).collect().unwrap();
        }
    }
    let s = db.plan_cache_stats();
    assert_eq!(s.misses, CORPUS.len() as u64, "each statement planned exactly once");
    assert_eq!(s.hits, 2 * CORPUS.len() as u64, "rounds two and three fully cached");
    assert_eq!(s.invalidations, 0);
    assert_eq!(s.evictions, 0);
    assert_eq!(s.entries, CORPUS.len());
}

#[test]
fn ddl_and_dml_invalidate_cached_plans() {
    let mut db = fixture(1);
    let sql = CORPUS[2]; // type J
    db.query(sql).collect().unwrap(); // miss: planned + cached
    db.query(sql).collect().unwrap(); // hit
                                      // DML bumps the catalog version: the entry is stale on next lookup.
    db.insert(
        "R",
        Tuple::full(vec![Value::number(99.0), Value::number(10.0), Value::number(199.0)]),
    )
    .unwrap();
    let ans = db.query(sql).collect().unwrap(); // invalidation + miss, replanned
    let s = db.plan_cache_stats();
    assert_eq!((s.hits, s.misses, s.invalidations), (1, 2, 1));
    // The replanned query sees the new tuple.
    let naive = db.query(sql).strategy(Strategy::Naive).run().unwrap();
    assert_eq!(ans.canonicalized(), naive.answer.canonicalized());
    // DDL invalidates as well.
    db.create_table("Z", Schema::of(&[("A", AttrType::Number)])).unwrap();
    db.query(sql).collect().unwrap();
    assert_eq!(db.plan_cache_stats().invalidations, 2);
}

#[test]
fn explain_analyze_reports_cache_hit_with_zero_reverification() {
    let db = fixture(1);
    let sql = CORPUS[2];
    // Prime the cache: the first statement misses and verifies once.
    let first = db.query(sql).run().unwrap();
    assert_eq!(first.serving.cache_hit, Some(false));
    assert_eq!(first.serving.plan_verifications, 1, "plans verify exactly once, at build");
    // The repeat is a hit with zero re-verification, and EXPLAIN ANALYZE
    // says so in its serving section.
    let (text, outcome) = db.query(sql).explain_analyze().unwrap();
    assert_eq!(outcome.serving.cache_hit, Some(true));
    assert_eq!(outcome.serving.plan_verifications, 0);
    assert!(outcome.serving.cache.hits > 0);
    assert!(
        text.contains("plan cache: hit (verifications this statement: 0)"),
        "serving section missing from:\n{text}"
    );
    assert!(text.contains("sessions in flight:"), "{text}");
    assert!(text.contains("cache totals:"), "{text}");
}

#[test]
fn prepared_statements_replay_across_threads_and_go_stale() {
    let mut db = fixture(1);
    let sql = CORPUS[1];
    let reference = db.query(sql).collect().unwrap().canonicalized();
    let prepared = Arc::new(db.prepare(sql).unwrap());
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let prepared = prepared.clone();
            let reference = reference.clone();
            std::thread::spawn(move || {
                for _ in 0..3 {
                    let out = prepared.run().unwrap();
                    assert_eq!(out.answer.canonicalized(), reference);
                    assert_eq!(out.serving.plan_verifications, 0);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // Any DML bumps the catalog version: the pinned plan must refuse to run.
    // The new R row matches (X = 10 exists in S), so the answer must grow.
    db.insert(
        "R",
        Tuple::full(vec![Value::number(100.0), Value::number(10.0), Value::number(150.0)]),
    )
    .unwrap();
    match prepared.run() {
        Err(EngineError::StalePlan { planned_version, catalog_version }) => {
            assert!(catalog_version > planned_version)
        }
        other => panic!("expected StalePlan, got {other:?}"),
    }
    assert!(prepared.explain().is_err(), "explain is stale-checked too");
    // Re-preparing picks up the new catalog version and the new data.
    let again = db.prepare(sql).unwrap();
    assert!(again.planned_version() > prepared.planned_version());
    assert_eq!(again.collect().unwrap().len(), reference.len() + 1);
}

#[test]
fn writers_serialize_against_readers_with_consistent_phases() {
    // Phase-barriered readers and one writer: every reader observes either
    // the pre-write or the post-write catalog, never a torn state, and after
    // the write phase everyone sees the new row.
    let db = fixture(1);
    let sql = "SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S)";
    let before = db.query(sql).collect().unwrap().len();
    let readers = 4usize;
    let phase = Arc::new(Barrier::new(readers + 1));
    let handles: Vec<_> = (0..readers)
        .map(|_| {
            let session = db.session();
            let phase = phase.clone();
            let sql = sql.to_string();
            std::thread::spawn(move || {
                phase.wait(); // phase 1: concurrent reads pre-write
                let n1 = session.query(&sql).collect().unwrap().len();
                phase.wait(); // writer runs between these barriers
                phase.wait();
                let n2 = session.query(&sql).collect().unwrap().len();
                (n1, n2)
            })
        })
        .collect();
    let writer: Session = db.session();
    phase.wait(); // phase 1 starts
    phase.wait(); // readers finished phase 1
    writer
        .insert(
            "R",
            Tuple::full(vec![Value::number(100.0), Value::number(0.0), Value::number(7.0)]),
        )
        .unwrap();
    phase.wait(); // phase 2 starts
    let after = db.query(sql).collect().unwrap().len();
    assert_eq!(after, before + 1);
    for h in handles {
        let (n1, n2) = h.join().unwrap();
        assert_eq!(n1, before, "pre-write phase sees the original catalog");
        assert_eq!(n2, after, "post-write phase sees the committed row");
    }
    assert!(db.plan_cache_stats().invalidations >= 1, "the write invalidated cached plans");
    assert_eq!(db.serving_counters().in_flight(), 0);
}

#[test]
fn per_session_config_is_isolated() {
    let db = fixture(1);
    let sql = "SELECT R.ID FROM R, S WHERE R.X = S.X";
    let mut thresholded = db.session();
    thresholded.set_default_threshold(Some(0.999));
    thresholded.set_threads(4);
    let mut plain = db.session();
    plain.set_threads(2);
    // The thresholded session filters everything (all degrees are <= 1 and
    // the fixture's matches are crisp, degree exactly 1 -> strict > 0.999
    // keeps them; raise to 1.0 to drop them all).
    thresholded.set_default_threshold(Some(1.0));
    assert_eq!(thresholded.query(sql).collect().unwrap().len(), 0);
    let full = plain.query(sql).collect().unwrap();
    assert!(!full.is_empty(), "the other session is unaffected");
    // An explicit WITH D in the SQL wins over the session default.
    let explicit = format!("{sql} WITH D > 0.0");
    assert_eq!(
        thresholded.query(&explicit).collect().unwrap().len(),
        full.len(),
        "explicit threshold overrides the session default"
    );
    // Thread counts never change answers (bit-identical guarantee).
    assert_eq!(
        plain.query(sql).collect().unwrap().canonicalized(),
        db.query(sql).collect().unwrap().canonicalized()
    );
}

#[test]
fn serving_handles_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Session>();
    assert_send_sync::<fuzzy_db::PreparedQuery>();
    assert_send_sync::<Database>();
}
