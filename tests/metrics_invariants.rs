//! Invariant tests over the per-operator metrics registry (`EXPLAIN
//! ANALYZE`): relations between counters that must hold for every query, on
//! every strategy, at every thread count.

use fuzzy_db::engine::{Engine, QueryOutcome, Strategy};
use fuzzy_db::rel::Catalog;
use fuzzy_db::storage::SimDisk;
use fuzzy_db::workload::{generate, paper, WorkloadSpec};
use fuzzy_db::Database;

fn workload_db(n: usize, seed: u64) -> (Catalog, SimDisk) {
    let disk = SimDisk::with_default_page_size();
    let spec = WorkloadSpec { n_outer: n, n_inner: n, fanout: 7, seed, ..Default::default() };
    let w = generate(&disk, spec).expect("workload");
    let mut catalog = Catalog::new();
    catalog.register(w.outer.clone());
    catalog.register(w.inner.clone());
    (catalog, disk)
}

fn dating_db() -> (Catalog, SimDisk) {
    let disk = SimDisk::with_default_page_size();
    let catalog = paper::dating_service(&disk).expect("paper catalog");
    (catalog, disk)
}

/// Section 3's core claim, checked on the actual counters: the extended
/// merge-join examines no more pairs — and evaluates no more fuzzy
/// comparisons — than the nested-loop method on the same workload.
#[test]
fn merge_join_work_bounded_by_nested_loop() {
    let (catalog, disk) = workload_db(400, 7);
    let engine = Engine::over(catalog.clone().into(), &disk);
    let sql = "SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S)";
    let mj = engine.run_sql(sql, Strategy::Unnest).unwrap();
    let nl = engine.run_sql(sql, Strategy::NestedLoop).unwrap();
    assert_eq!(mj.answer.canonicalized(), nl.answer.canonicalized());
    let (mjt, nlt) = (mj.metrics.totals(), nl.metrics.totals());
    assert_eq!(nlt.pairs_examined, 400 * 400, "NL examines the full cross product");
    assert!(
        mjt.pairs_examined < nlt.pairs_examined,
        "mj pairs {} vs nl pairs {}",
        mjt.pairs_examined,
        nlt.pairs_examined
    );
    assert!(
        mjt.fuzzy_comparisons <= nlt.fuzzy_comparisons,
        "mj cmp {} vs nl cmp {}",
        mjt.fuzzy_comparisons,
        nlt.fuzzy_comparisons
    );
}

fn assert_buffers_balance(out: &QueryOutcome, context: &str) {
    for n in out.metrics.ops() {
        let m = &n.metrics;
        assert_eq!(
            m.buffer_hits + m.buffer_misses,
            m.buffer_requests,
            "buffer accounting off in [{}] {} of {context}",
            n.kind.name(),
            n.label
        );
    }
}

/// Every buffer-pool request is either a hit or a miss — per operator, on
/// every strategy.
#[test]
fn buffer_hits_plus_misses_equal_requests() {
    let (catalog, disk) = workload_db(300, 11);
    let engine = Engine::over(catalog.clone().into(), &disk);
    let sql = "SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S WHERE S.ID <> R.ID)";
    for strategy in
        [Strategy::Unnest, Strategy::NestedLoop, Strategy::MaterializedNestedLoop, Strategy::Naive]
    {
        let out = engine.run_sql(sql, strategy).unwrap();
        assert_buffers_balance(&out, &format!("{strategy:?}"));
        assert!(out.metrics.totals().buffer_requests > 0, "{strategy:?} used no buffers");
    }
}

/// The final operator's `tuples_out` (Output for physical plans, Naive for
/// the fallback) is exactly the answer-set cardinality, for one query of
/// every class in the catalogue (none use LIMIT, which applies after the
/// Output operator).
#[test]
fn final_operator_tuples_out_matches_answer() {
    let (catalog, disk) = workload_db(200, 3);
    let engine = Engine::over(catalog.clone().into(), &disk);
    let queries = [
        "SELECT R.ID FROM R WHERE R.V >= 500",
        "SELECT R.ID FROM R, S WHERE R.X = S.X WITH D > 0.3",
        "SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S)",
        "SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S WHERE S.V = R.V)",
        "SELECT R.ID FROM R WHERE R.X NOT IN (SELECT S.X FROM S)",
        "SELECT R.ID FROM R WHERE R.X NOT IN (SELECT S.X FROM S WHERE S.V = R.V)",
        "SELECT R.ID FROM R WHERE R.V > (SELECT AVG(S.V) FROM S)",
        "SELECT R.ID FROM R WHERE R.V <= (SELECT MAX(S.V) FROM S WHERE S.X = R.X)",
        "SELECT R.ID FROM R WHERE R.V > ALL (SELECT S.V FROM S)",
        // General shape: exercises the naive fallback's Naive node.
        "SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S) \
         AND R.V IN (SELECT S.V FROM S)",
    ];
    for sql in queries {
        let out = engine.run_sql(sql, Strategy::Unnest).unwrap();
        let last = out.metrics.ops().last().unwrap_or_else(|| panic!("no ops for {sql}"));
        assert_eq!(
            last.metrics.tuples_out,
            out.answer.len() as u64,
            "final op [{}] {} of {sql}",
            last.kind.name(),
            last.label
        );
        assert_buffers_balance(&out, sql);
    }
}

/// A pushed-down `WITH D > z` threshold visibly prunes pairs: the counter
/// that records the push-down's direct savings is positive.
#[test]
fn threshold_pushdown_records_pruned_pairs() {
    let (catalog, disk) = workload_db(300, 21);
    let engine = Engine::over(catalog.clone().into(), &disk);
    let out = engine
        .run_sql(
            "SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S) WITH D > 0.9",
            Strategy::Unnest,
        )
        .unwrap();
    assert!(out.metrics.totals().pairs_pruned > 0, "no pairs recorded as pruned");
}

/// Regression pin for the naive/executor comparison-unit bugfix: both
/// strategies count Value-level fuzzy comparisons in the same unit, so their
/// counts on the paper's Example 4.1 are fixed, comparable numbers.
///
/// F and M have 4 tuples each. Naive: one `F.AGE = 'medium young'`
/// comparison per F tuple (4), and for the three F tuples whose age degree
/// is positive (the conjunction short-circuits on Cathy) the IN evaluates
/// the subquery (4 `M.AGE = 'middle age'` comparisons each) plus |T| = 3
/// set-membership comparisons: 4 + 3×(4+3) = 25. Unnest: filter scans
/// evaluate the local predicates once per stored tuple (4 + 4) and the
/// merge windows compare 4 income pairs: 12.
#[test]
fn naive_and_unnest_count_comparisons_in_the_same_unit() {
    let (catalog, disk) = dating_db();
    let engine = Engine::over(catalog.clone().into(), &disk);
    let sql = "SELECT F.NAME FROM F \
               WHERE F.AGE = 'medium young' AND F.INCOME IN \
               (SELECT M.INCOME FROM M WHERE M.AGE = 'middle age')";
    let naive = engine.run_sql(sql, Strategy::Naive).unwrap();
    let unnest = engine.run_sql(sql, Strategy::Unnest).unwrap();
    assert_eq!(naive.answer.canonicalized(), unnest.answer.canonicalized());
    let counts =
        (naive.metrics.totals().fuzzy_comparisons, unnest.metrics.totals().fuzzy_comparisons);
    assert_eq!(counts, (25, 12), "(naive, unnest) comparison counts drifted");
}

/// `EXPLAIN ANALYZE` through the statement layer: the rendering carries the
/// plan, the per-operator lines, and an answer cardinality that matches a
/// direct run of the same query.
#[test]
fn explain_analyze_reports_actual_operators() {
    let disk = SimDisk::with_default_page_size();
    let catalog = paper::dating_service(&disk).expect("paper catalog");
    let mut db = Database::from_catalog(catalog, disk);
    let sql = "SELECT F.NAME FROM F WHERE F.INCOME IN \
               (SELECT M.INCOME FROM M WHERE M.AGE = F.AGE)";
    let rows = db.query(sql).collect().unwrap().len();
    let text = match db.execute(&format!("EXPLAIN ANALYZE {sql}")).unwrap() {
        fuzzy_db::StatementResult::Explained(text) => text,
        other => panic!("expected Explained, got {other:?}"),
    };
    assert!(text.contains("query class: TypeJ"), "{text}");
    assert!(text.contains("actual:"), "{text}");
    assert!(text.contains("[sort]"), "{text}");
    assert!(text.contains("[output]"), "{text}");
    assert!(text.contains(&format!("answer: {rows} rows")), "{text}");
    // Plain EXPLAIN stops before the actual section.
    let plain = match db.execute(&format!("EXPLAIN {sql}")).unwrap() {
        fuzzy_db::StatementResult::Explained(text) => text,
        other => panic!("expected Explained, got {other:?}"),
    };
    assert!(!plain.contains("actual:"), "{plain}");
}

/// `EXPLAIN ANALYZE` succeeds for every query class in the unnesting
/// catalogue plus the naive fallback, and its answer line always matches the
/// run's answer cardinality.
#[test]
fn explain_analyze_covers_every_query_class() {
    let (catalog, disk) = workload_db(80, 5);
    let engine = Engine::over(catalog.clone().into(), &disk);
    let queries = [
        ("Flat", "SELECT R.ID FROM R, S WHERE R.X = S.X WITH D > 0.3"),
        ("TypeN", "SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S)"),
        ("TypeJ", "SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S WHERE S.V = R.V)"),
        ("TypeJSome", "SELECT R.ID FROM R WHERE R.X = SOME (SELECT S.X FROM S WHERE S.V = R.V)"),
        ("TypeNX", "SELECT R.ID FROM R WHERE R.X NOT IN (SELECT S.X FROM S)"),
        ("TypeJX", "SELECT R.ID FROM R WHERE R.X NOT IN (SELECT S.X FROM S WHERE S.V = R.V)"),
        ("TypeA", "SELECT R.ID FROM R WHERE R.V > (SELECT AVG(S.V) FROM S)"),
        ("TypeJA", "SELECT R.ID FROM R WHERE R.V <= (SELECT MAX(S.V) FROM S WHERE S.X = R.X)"),
        ("TypeAll", "SELECT R.ID FROM R WHERE R.V > ALL (SELECT S.V FROM S)"),
        (
            "Chain(3)",
            "SELECT R.ID FROM R WHERE R.X IN \
             (SELECT S.X FROM S WHERE S.X IN (SELECT S.X FROM S))",
        ),
        (
            "General",
            "SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S) \
             AND R.V IN (SELECT S.V FROM S)",
        ),
    ];
    for (class, sql) in queries {
        let (text, outcome) = engine.explain_analyze(sql).unwrap();
        assert!(text.contains(&format!("query class: {class}")), "{class}: {text}");
        assert!(text.contains("actual:"), "{class}: {text}");
        assert!(
            text.contains(&format!("answer: {} rows", outcome.answer.len())),
            "{class}: {text}"
        );
        if class == "General" {
            assert!(text.contains("strategy: naive fallback"), "{class}: {text}");
            assert!(text.contains("[naive] naive-eval"), "{class}: {text}");
        }
    }
}

/// Deterministic chain fixture matching the pinned-counter baseline: R has
/// 8·scale (ID, X) tuples, S 6·scale, T 4·scale, X cycling over three join
/// values.
fn chain_db(scale: usize) -> (Catalog, SimDisk) {
    use fuzzy_db::core::Value;
    use fuzzy_db::rel::{AttrType, Schema, StoredTable, Tuple};
    let disk = SimDisk::with_default_page_size();
    let mut catalog = Catalog::new();
    for (name, base) in [("R", 8usize), ("S", 6), ("T", 4)] {
        let schema = Schema::of(&[("ID", AttrType::Number), ("X", AttrType::Number)]);
        let t = StoredTable::create(&disk, name, schema);
        let mut w = t.file().bulk_writer();
        for i in 0..base * scale {
            let tu =
                Tuple::full(vec![Value::number(i as f64), Value::number((i % 3) as f64 * 10.0)]);
            w.append(&tu.encode(0)).unwrap();
        }
        w.finish().unwrap();
        catalog.register(t);
    }
    disk.reset_io();
    (catalog, disk)
}

/// Pinned regression for the streaming pipeline: on the scale-8 Chain(3)
/// fixture the materialize-every-step executor performed 13 simulated page
/// writes; the pipelined operator tree must stay strictly below that pin
/// while reproducing its exact CPU-side counters — bit-identical at every
/// thread count.
#[test]
fn pipelined_chain_beats_materialized_write_pin() {
    use fuzzy_db::engine::ExecConfig;
    let sql = "SELECT R.ID FROM R WHERE R.X IN \
               (SELECT S.X FROM S WHERE S.X IN (SELECT T.X FROM T))";
    let (catalog, disk) = chain_db(8);
    for threads in [1usize, 2, 4, 8] {
        let engine = Engine::over(catalog.clone().into(), &disk)
            .with_config(ExecConfig { threads, ..Default::default() });
        let out = engine.run_sql(sql, Strategy::Unnest).unwrap();
        let t = out.metrics.totals();
        let label = format!("chain3 scale 8, {threads} thread(s)");
        assert!(
            out.measurement.io.writes < 13,
            "{label}: {} writes, not below the materialized pin of 13",
            out.measurement.io.writes
        );
        assert_eq!(out.answer.len(), 64, "{label}: answer cardinality");
        assert_eq!(t.tuples_out, 12304, "{label}: tuples_out");
        assert_eq!(t.fuzzy_comparisons, 11440, "{label}: fuzzy_comparisons");
        assert_eq!(t.pairs_pruned, 0, "{label}: pairs_pruned");
    }
}

/// The partitioned join deliberately ignores `ExecConfig::threads` and always
/// runs serially (see DESIGN.md): sampling splitters, partition boundaries,
/// and per-partition pair order feed the exact-counter contract, so the knob
/// must not change a single registry entry.
#[test]
fn partitioned_join_ignores_thread_count() {
    use fuzzy_db::engine::{ExecConfig, JoinMethod};
    let (catalog, disk) = workload_db(300, 17);
    let sql = "SELECT R.ID, S.ID FROM R, S WHERE R.X = S.X";
    let run = |threads: usize| {
        let engine = Engine::over(catalog.clone().into(), &disk).with_config(ExecConfig {
            join_method: JoinMethod::Partitioned,
            threads,
            ..Default::default()
        });
        let out = engine.run_sql(sql, Strategy::Unnest).unwrap();
        (out.answer.canonicalized(), out.metrics.deterministic(), out.measurement.io)
    };
    let (answer1, metrics1, io1) = run(1);
    assert!(!answer1.is_empty());
    for threads in [2usize, 4, 8] {
        let (answer, metrics, io) = run(threads);
        assert_eq!(answer, answer1, "{threads} threads: answer diverged");
        assert_eq!(metrics, metrics1, "{threads} threads: metrics registry diverged");
        assert_eq!(
            (io.reads, io.writes),
            (io1.reads, io1.writes),
            "{threads} threads: I/O diverged"
        );
    }
}
