//! Integration tests for the static plan verifier (`fuzzy_engine::verify`).
//!
//! Positive corpus: one query of every class in the paper's catalogue, at
//! two catalog scales — every plan the engine would run (join reorders
//! included) must verify cleanly, and must execute identically to the naive
//! reference under every thread count (the `debug_assertions` hook gates
//! each of those runs on the verifier).
//!
//! Negative cases: injected failures must be rejected with their exact
//! documented rule ids (`V-PROP-SORT`, `V-THRESH-WIDEN`, `R-T4.1-INDEP`).

use fuzzy_db::core::{Degree, Value};
use fuzzy_db::engine::plan::{PlanCol, UnnestPlan};
use fuzzy_db::engine::{
    build_plan, check_threshold, verify_plan, Engine, ExecConfig, Outline, PhysOp, Prop,
    RewriteRule, Strategy,
};
use fuzzy_db::rel::{AttrType, Schema, Tuple};
use fuzzy_db::sql::Threshold;
use fuzzy_db::Database;

/// The deterministic three-table fixture of the golden suite, scaled: R has
/// `8 * scale` tuples, S `6 * scale`, T `4 * scale`, all with the same
/// (ID, X, V) numeric schema so every query class can be expressed.
fn fixture(scale: usize) -> Database {
    let mut db = Database::with_paper_vocabulary();
    for (name, base) in [("R", 8usize), ("S", 6), ("T", 4)] {
        db.create_table(
            name,
            Schema::of(&[
                ("ID", AttrType::Number),
                ("X", AttrType::Number),
                ("V", AttrType::Number),
            ]),
        )
        .unwrap();
        db.load(
            name,
            (0..base * scale).map(|i| {
                Tuple::full(vec![
                    Value::number(i as f64),
                    Value::number((i % 3) as f64 * 10.0),
                    Value::number(100.0 + i as f64),
                ])
            }),
        )
        .unwrap();
    }
    db
}

/// One query per class (the golden suite's corpus). The last entry is the
/// general fallback: no unnested plan exists, so there is nothing to verify.
const CORPUS: &[(&str, &str)] = &[
    ("flat", "SELECT R.ID FROM R, S WHERE R.X = S.X WITH D > 0.3"),
    ("type_n", "SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S)"),
    ("type_j", "SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S WHERE S.V = R.V)"),
    ("type_some", "SELECT R.ID FROM R WHERE R.X = SOME (SELECT S.X FROM S WHERE S.V = R.V)"),
    ("type_nx", "SELECT R.ID FROM R WHERE R.X NOT IN (SELECT S.X FROM S)"),
    ("type_jx", "SELECT R.ID FROM R WHERE R.X NOT IN (SELECT S.X FROM S WHERE S.V = R.V)"),
    ("type_a", "SELECT R.ID FROM R WHERE R.V > (SELECT AVG(S.V) FROM S)"),
    ("type_ja", "SELECT R.ID FROM R WHERE R.V <= (SELECT MAX(S.V) FROM S WHERE S.X = R.X)"),
    ("type_all", "SELECT R.ID FROM R WHERE R.V > ALL (SELECT T.V FROM T)"),
    (
        "chain3",
        "SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S WHERE S.X IN (SELECT T.X FROM T))",
    ),
    (
        "general_fallback",
        "SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S) AND R.V IN (SELECT T.V FROM T)",
    ),
];

#[test]
fn corpus_verifies_cleanly_at_both_scales() {
    for scale in [1usize, 4] {
        let db = fixture(scale);
        let engine = Engine::over(db.catalog(), db.disk());
        for (name, sql) in CORPUS {
            let report = engine.verify(sql).unwrap();
            if *name == "general_fallback" {
                assert!(report.is_none(), "{name} should have no unnested plan to verify");
                continue;
            }
            let report = report.unwrap_or_else(|| panic!("{name} fell back to naive"));
            assert!(
                report.ok(),
                "scale {scale}, {name}: plan {} failed verification: {:?}",
                report.plan_label,
                report.violations
            );
            assert!(report.checks > 0, "{name}: no checks ran");
        }
    }
}

#[test]
fn corpus_runs_match_naive_under_every_thread_count() {
    let db = fixture(1);
    for threads in [1usize, 2, 4, 8] {
        let engine = Engine::over(db.catalog(), db.disk()).with_threads(threads);
        for (name, sql) in CORPUS {
            // Under debug_assertions the executor verifies each plan before
            // running it, so a corpus violation would fail here loudly.
            let unnest = engine.run_sql(sql, Strategy::Unnest).unwrap();
            let naive = engine.run_sql(sql, Strategy::Naive).unwrap();
            assert_eq!(
                unnest.answer.canonicalized(),
                naive.answer.canonicalized(),
                "{name} with {threads} thread(s): unnest != naive"
            );
        }
    }
}

#[test]
fn reordered_three_way_join_verifies_cleanly() {
    let db = fixture(1);
    let engine = Engine::over(db.catalog(), db.disk());
    let sql = "SELECT R.ID FROM R, S, T WHERE R.X = S.X AND S.V = T.V";
    let report = engine.verify(sql).unwrap().expect("flat plan expected");
    assert!(report.ok(), "reordered plan failed verification: {:?}", report.violations);
    // The verifier must have analysed the plan the executor runs, i.e. the
    // reordered one: switching the optimizer off must also verify (both
    // orders are legal; the point is each is checked as-it-runs).
    let config = ExecConfig { reorder_joins: false, ..ExecConfig::default() };
    let engine_off = Engine::over(db.catalog(), db.disk()).with_config(config);
    let report_off = engine_off.verify(sql).unwrap().expect("flat plan expected");
    assert!(report_off.ok(), "unreordered plan failed: {:?}", report_off.violations);
}

/// Regression for the similarity-driver bug: a `~ WITHIN` predicate must
/// never drive a merge join (the merge machinery compares for exact
/// equality, which silently drops the tolerance). The unnested answer must
/// match the naive reference on data where only the tolerance makes pairs
/// match (R.X and S.X share values 0/10/20, within 15 of each other).
#[test]
fn similarity_join_matches_naive() {
    let db = fixture(1);
    let engine = Engine::over(db.catalog(), db.disk());
    let sql = "SELECT R.ID FROM R, S WHERE R.X ~ S.X WITHIN 15";
    let unnest = engine.run_sql(sql, Strategy::Unnest).unwrap();
    let naive = engine.run_sql(sql, Strategy::Naive).unwrap();
    assert_eq!(
        unnest.answer.canonicalized(),
        naive.answer.canonicalized(),
        "similarity join diverged from the reference"
    );
    // And it must still verify: the outline's merge drivers exclude it.
    let report = engine.verify(sql).unwrap().expect("flat plan expected");
    assert!(report.ok(), "{:?}", report.violations);
}

// ---------------------------------------------------------------------------
// Injected failures: exact rule ids
// ---------------------------------------------------------------------------

/// A merge join whose inputs were never sorted is rejected with
/// `V-PROP-SORT`.
#[test]
fn unsorted_merge_join_input_is_rejected() {
    let col = PlanCol { binding: "R".into(), attr: 1 };
    let mut outline = Outline::default();
    outline.ops.push(PhysOp::declare(
        "scan R",
        vec![],
        vec![],
        vec![Prop::Binding("R".into()), Prop::MinDegree(Degree::ZERO)],
    ));
    outline.ops.push(PhysOp::declare(
        "scan S",
        vec![],
        vec![],
        vec![Prop::Binding("S".into()), Prop::MinDegree(Degree::ZERO)],
    ));
    // The merge join demands ⪯-sorted inputs; neither scan delivers them.
    outline.ops.push(PhysOp::declare(
        "merge-join R.X = S.X",
        vec![0, 1],
        vec![
            (0, Prop::Sorted { col: col.clone(), alpha: Degree::ZERO }),
            (
                1,
                Prop::Sorted { col: PlanCol { binding: "S".into(), attr: 1 }, alpha: Degree::ZERO },
            ),
        ],
        vec![Prop::Binding("R".into()), Prop::Binding("S".into())],
    ));
    outline.ops.push(PhysOp::declare("output", vec![2], vec![], vec![Prop::DupMax]));
    let (_, violations) = outline.check();
    let sorts: Vec<_> = violations.iter().filter(|v| v.rule == "V-PROP-SORT").collect();
    assert_eq!(sorts.len(), 2, "both unsorted inputs must be flagged: {violations:?}");
    assert!(sorts[0].path.contains("merge-join"), "{:?}", sorts[0]);
}

/// A push-down bound looser than the query's `WITH D > z` threshold widens
/// the answer and is rejected with `V-THRESH-WIDEN` — as is any bound at all
/// when the query has no threshold.
#[test]
fn widened_threshold_is_rejected() {
    let t = Threshold { z: 0.3, strict: true };
    let v = check_threshold(Some(t), Degree::clamped(0.5)).expect("must reject");
    assert_eq!(v.rule, "V-THRESH-WIDEN");
    let v = check_threshold(None, Degree::clamped(0.1)).expect("must reject");
    assert_eq!(v.rule, "V-THRESH-WIDEN");
    // Tightening is sound: α ≤ z passes, as does no push-down at all.
    assert!(check_threshold(Some(t), Degree::clamped(0.3)).is_none());
    assert!(check_threshold(None, Degree::ZERO).is_none());
}

/// A plan tagged with Theorem 4.1 (independent inner block) whose bound form
/// actually carries an extra correlation predicate is rejected with
/// `R-T4.1-INDEP`: the rewrite's precondition does not hold.
#[test]
fn mistagged_type_n_with_correlated_inner_is_rejected() {
    let db = fixture(1);
    let q =
        fuzzy_db::sql::parse("SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S WHERE S.V = R.V)")
            .unwrap();
    let mut plan = build_plan(&q, &db.catalog()).unwrap();
    // The transformer correctly tags this TypeJ (T4.2). Forge the tag.
    let UnnestPlan::Flat(p) = &mut plan else { panic!("flat plan expected") };
    let blocks = p.rule.blocks().expect("leveled rule").to_vec();
    assert_eq!(p.rule.id(), "T4.2");
    p.rule = RewriteRule::TypeN { blocks };
    let report = verify_plan(&plan, &ExecConfig::default(), None);
    assert!(!report.ok());
    assert!(
        report.violations.iter().any(|v| v.rule == "R-T4.1-INDEP"),
        "expected R-T4.1-INDEP, got {:?}",
        report.violations
    );
}
