//! Cross-crate integration tests: the paper's running examples through the
//! `fuzzy-db` facade.

use fuzzy_db::workload::paper;
use fuzzy_db::{Database, Strategy};
use fuzzy_storage::SimDisk;

fn dating_db() -> Database {
    let disk = SimDisk::with_default_page_size();
    let catalog = paper::dating_service(&disk).expect("paper catalog");
    Database::from_catalog(catalog, disk)
}

#[test]
fn example_41_exact_answer_via_facade() {
    let db = dating_db();
    let answer = db
        .query(
            "SELECT F.NAME FROM F \
             WHERE F.AGE = 'medium young' AND F.INCOME IN \
             (SELECT M.INCOME FROM M WHERE M.AGE = 'middle age')",
        )
        .collect()
        .unwrap();
    let mut rows: Vec<(String, f64)> =
        answer.tuples().iter().map(|t| (t.values[0].to_string(), t.degree.value())).collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].0, "Ann");
    assert!((rows[0].1 - 0.7).abs() < 1e-9);
    assert_eq!(rows[1].0, "Betty");
    assert!((rows[1].1 - 0.7).abs() < 1e-9);
}

#[test]
fn all_strategies_choose_expected_plans() {
    let db = dating_db();
    let sql = "SELECT F.NAME FROM F WHERE F.INCOME IN \
               (SELECT M.INCOME FROM M WHERE M.AGE = F.AGE)";
    let unnest = db.query(sql).strategy(Strategy::Unnest).run().unwrap();
    assert!(unnest.plan_label.starts_with("unnest:flat-join"), "{}", unnest.plan_label);
    let nl = db.query(sql).strategy(Strategy::NestedLoop).run().unwrap();
    assert!(nl.plan_label.starts_with("nested-loop:"), "{}", nl.plan_label);
    let naive = db.query(sql).strategy(Strategy::Naive).run().unwrap();
    assert_eq!(naive.plan_label, "naive");
    assert_eq!(unnest.answer.canonicalized(), nl.answer.canonicalized());
    assert_eq!(unnest.answer.canonicalized(), naive.answer.canonicalized());
}

#[test]
fn exists_unnests_and_general_shapes_fall_back() {
    let db = dating_db();
    // EXISTS now unnests to a semi-join-style flat plan.
    let out = db
        .query("SELECT F.NAME FROM F WHERE EXISTS (SELECT M.NAME FROM M WHERE M.AGE = F.AGE)")
        .strategy(Strategy::Unnest)
        .run()
        .unwrap();
    assert!(out.plan_label.starts_with("unnest:flat-join"), "{}", out.plan_label);
    assert!(!out.answer.is_empty());
    let naive = db
        .query("SELECT F.NAME FROM F WHERE EXISTS (SELECT M.NAME FROM M WHERE M.AGE = F.AGE)")
        .strategy(Strategy::Naive)
        .run()
        .unwrap();
    assert_eq!(out.answer.canonicalized(), naive.answer.canonicalized());
    // Shapes outside the catalogue still fall back transparently.
    let out = db
        .query("SELECT F.NAME FROM F WHERE F.AGE IN (SELECT M.AGE FROM M) AND              F.INCOME IN (SELECT M.INCOME FROM M)").strategy(Strategy::Unnest).run()
        .unwrap();
    assert_eq!(out.plan_label, "naive-fallback");
}

#[test]
fn measurement_accounts_io() {
    let db = dating_db();
    let out = db.query("SELECT F.NAME FROM F").strategy(Strategy::Unnest).run().unwrap();
    assert!(out.measurement.io.reads >= 1);
    let rt = out.response_time(db.cost_model());
    assert!(rt >= out.measurement.cpu);
}

#[test]
fn with_clause_prunes_weak_answers() {
    let db = dating_db();
    let base = "SELECT F.NAME, M.NAME FROM F, M WHERE F.AGE = M.AGE";
    let all = db.query(base).collect().unwrap();
    let strong = db.query(format!("{base} WITH D >= 1")).collect().unwrap();
    assert!(strong.len() < all.len());
    assert!(strong.tuples().iter().all(|t| t.degree.value() >= 1.0 - 1e-12));
}

#[test]
fn vocabulary_terms_resolve_in_queries() {
    let db = dating_db();
    // Conjunctions of terms grade by min: Betty's ill-known "middle age"
    // value is possibly "about 50" (0.4) AND possibly "medium young" (0.7),
    // so she satisfies the conjunction with 0.4. Cathy's "about 50" value
    // cannot be "medium young" at all.
    let both = db
        .query("SELECT F.NAME FROM F WHERE F.AGE = 'about 50' AND F.AGE = 'medium young'")
        .collect()
        .unwrap();
    let names: Vec<String> = both.tuples().iter().map(|t| t.values[0].to_string()).collect();
    assert!(names.contains(&"Betty".to_string()), "answer: {both}");
    assert!(!names.contains(&"Cathy".to_string()), "answer: {both}");
    assert!((both.degree_of(&[fuzzy_core::Value::text("Betty")]).value() - 0.4).abs() < 1e-9);
    // Unknown terms over numeric attributes simply never match.
    let unknown = db.query("SELECT F.NAME FROM F WHERE F.AGE = 'galactic age'").collect().unwrap();
    assert!(unknown.is_empty());
    // Over text attributes, quoted literals are plain strings.
    let ann = db.query("SELECT F.ID FROM F WHERE F.NAME = 'Ann'").collect().unwrap();
    assert_eq!(ann.len(), 2);
}

#[test]
fn explain_describes_plans() {
    let db = dating_db();
    let out = db
        .explain(
            "SELECT F.NAME FROM F WHERE F.INCOME NOT IN \
             (SELECT M.INCOME FROM M WHERE M.AGE = F.AGE)",
        )
        .unwrap();
    assert!(out.contains("TypeJX"), "{out}");
    assert!(out.contains("Anti"), "{out}");
    assert!(out.contains("merge window"), "{out}");
    let out = db
        .explain("SELECT F.NAME FROM F WHERE F.AGE > (SELECT MAX(M.AGE) FROM M WHERE M.INCOME = F.INCOME)")
        .unwrap();
    assert!(out.contains("Aggregate [MAX"), "{out}");
    assert!(out.contains("pipelined"), "{out}");
    let out = db
        .explain(
            "SELECT F.NAME FROM F WHERE F.AGE IN (SELECT M.AGE FROM M) AND              F.INCOME IN (SELECT M.INCOME FROM M)",
        )
        .unwrap();
    assert!(out.contains("naive fallback"), "{out}");
}
