//! Cost-behaviour integration tests on generated workloads: the asymptotic
//! claims of Sections 3–9, verified through the I/O counters and pair
//! counters of the simulated substrate.

use fuzzy_db::{Database, Strategy};
use fuzzy_engine::exec::ExecConfig;
use fuzzy_rel::Catalog;
use fuzzy_storage::SimDisk;
use fuzzy_workload::{generate, WorkloadSpec};

fn workload_db(n: usize, fanout: usize, buffer_pages: usize) -> Database {
    let disk = SimDisk::with_default_page_size();
    let w = generate(
        &disk,
        WorkloadSpec { n_outer: n, n_inner: n, fanout, seed: 9, ..Default::default() },
    )
    .unwrap();
    let mut catalog = Catalog::new();
    catalog.register(w.outer);
    catalog.register(w.inner);
    disk.reset_io();
    let mut db = Database::from_catalog(catalog, disk);
    db.set_exec_config(ExecConfig { buffer_pages, sort_pages: buffer_pages, ..Default::default() });
    db
}

const TYPE_J: &str = "SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S WHERE S.ID <> R.ID)";

#[test]
fn nested_loop_examines_the_full_cross_product() {
    let db = workload_db(600, 7, 32);
    let nl = db.query(TYPE_J).strategy(Strategy::NestedLoop).run().unwrap();
    assert_eq!(nl.exec_stats.pairs_examined, 600 * 600);
}

#[test]
fn merge_join_examines_only_windows() {
    let db = workload_db(600, 7, 32);
    let mj = db.query(TYPE_J).strategy(Strategy::Unnest).run().unwrap();
    // Window size ≈ fan-out, so pairs ≈ n × C, far below n².
    assert!(mj.exec_stats.pairs_examined < 600 * 60, "pairs {}", mj.exec_stats.pairs_examined);
    assert!(mj.exec_stats.pairs_examined >= 600, "pairs {}", mj.exec_stats.pairs_examined);
    // And the answers agree.
    let nl = db.query(TYPE_J).strategy(Strategy::NestedLoop).run().unwrap();
    assert_eq!(mj.answer.canonicalized(), nl.answer.canonicalized());
}

#[test]
fn nested_loop_io_follows_block_formula() {
    // I/O = b_R + ceil(b_R / (M − 1)) × b_S (Section 9's allocation).
    let db = workload_db(4000, 4, 8);
    let b = db.catalog().table("R").unwrap().num_pages();
    let b_s = db.catalog().table("S").unwrap().num_pages();
    let nl = db.query(TYPE_J).strategy(Strategy::NestedLoop).run().unwrap();
    let expect = b + b.div_ceil(7) * b_s;
    let got = nl.measurement.io.reads;
    assert!(
        got >= expect && got <= expect + 4,
        "reads {got}, block formula {expect} (b_R={b}, b_S={b_s})"
    );
}

#[test]
fn merge_join_io_is_near_linear() {
    // Sort (two passes) + one join scan: a small constant times the base
    // pages, regardless of fan-out.
    let db = workload_db(4000, 4, 64);
    let pages =
        db.catalog().table("R").unwrap().num_pages() + db.catalog().table("S").unwrap().num_pages();
    let mj = db.query(TYPE_J).strategy(Strategy::Unnest).run().unwrap();
    let total_io = mj.measurement.io.total();
    assert!(total_io <= pages * 8, "merge-join I/O {total_io} not linear in {pages} base pages");
}

#[test]
fn merge_join_io_constant_in_fanout() {
    // Fig. 3's headline: the number of I/Os stays the same as C grows; only
    // CPU (pair evaluations) rises.
    let mut ios = Vec::new();
    let mut pairs = Vec::new();
    for fanout in [1usize, 16, 64] {
        let db = workload_db(2000, fanout, 64);
        let mj = db.query(TYPE_J).strategy(Strategy::Unnest).run().unwrap();
        ios.push(mj.measurement.io.total());
        pairs.push(mj.exec_stats.pairs_examined);
    }
    let spread = *ios.iter().max().unwrap() as f64 / *ios.iter().min().unwrap() as f64;
    assert!(spread < 1.2, "I/O should be ~flat across fan-outs: {ios:?}");
    assert!(pairs[2] > pairs[0] * 8, "pairs should grow with C: {pairs:?}");
}

#[test]
fn small_buffers_cause_more_nested_loop_io() {
    let db_small = workload_db(3000, 4, 4);
    let db_big = workload_db(3000, 4, 128);
    let small = db_small.query(TYPE_J).strategy(Strategy::NestedLoop).run().unwrap();
    let big = db_big.query(TYPE_J).strategy(Strategy::NestedLoop).run().unwrap();
    assert!(
        small.measurement.io.reads > big.measurement.io.reads * 3,
        "small-buffer NL reads {} vs big-buffer {}",
        small.measurement.io.reads,
        big.measurement.io.reads
    );
}

#[test]
fn sort_dominates_merge_join_io_as_input_grows() {
    // Table 3's trend: the sort share of the merge-join grows with input.
    let small = workload_db(1000, 7, 16);
    let large = workload_db(8000, 7, 16);
    let s = small.query(TYPE_J).strategy(Strategy::Unnest).run().unwrap();
    let l = large.query(TYPE_J).strategy(Strategy::Unnest).run().unwrap();
    let share = |o: &fuzzy_db::QueryOutcome| {
        (o.exec_stats.sort_reads + o.exec_stats.sort_writes) as f64
            / o.measurement.io.total().max(1) as f64
    };
    assert!(
        share(&l) >= share(&s) - 0.02,
        "sort share should not shrink: small {:.2} large {:.2}",
        share(&s),
        share(&l)
    );
}

#[test]
fn answers_identical_across_buffer_sizes() {
    // Buffer budgets change costs, never answers.
    let reference = workload_db(1500, 7, 128)
        .query(TYPE_J)
        .strategy(Strategy::Unnest)
        .run()
        .unwrap()
        .answer
        .canonicalized();
    for pages in [4usize, 16, 64] {
        let db = workload_db(1500, 7, pages);
        let out = db.query(TYPE_J).strategy(Strategy::Unnest).run().unwrap();
        assert_eq!(out.answer.canonicalized(), reference, "buffer {pages} changed the answer");
    }
}

#[test]
fn merge_windows_track_the_fanout() {
    // Section 3 assumes the buffer holds one outer page plus the pages of
    // the largest Rng(r); with fan-out C and tight intervals the largest
    // window stays within a small multiple of C.
    for fanout in [2usize, 8, 32] {
        let db = workload_db(2000, fanout, 64);
        let mj = db.query(TYPE_J).strategy(Strategy::Unnest).run().unwrap();
        let w = mj.exec_stats.max_window;
        assert!(
            w as usize >= fanout / 2 && w as usize <= fanout * 6 + 8,
            "fanout {fanout}: max window {w}"
        );
    }
}

#[test]
fn wide_tuples_flow_through_joins() {
    // Tuples with large text payloads spill across many pages; joins and
    // sorts must still work (and answers must match the naive reference).
    use fuzzy_db::core::{Trapezoid, Value};
    use fuzzy_rel::{AttrType, Schema, Tuple};
    let disk = SimDisk::with_default_page_size();
    let mut catalog = Catalog::new();
    for name in ["R", "S"] {
        let t = fuzzy_rel::StoredTable::create_padded(
            &disk,
            name,
            Schema::of(&[
                ("ID", AttrType::Number),
                ("X", AttrType::Number),
                ("BLOB", AttrType::Text),
            ]),
            2048,
        );
        t.load((0..120).map(|i| {
            Tuple::full(vec![
                Value::number(i as f64),
                Value::fuzzy(Trapezoid::about((i % 20) as f64 * 10.0, 3.0).unwrap()),
                Value::text("x".repeat(1500)),
            ])
        }))
        .unwrap();
        catalog.register(t);
    }
    let db = Database::from_catalog(catalog, disk);
    let sql = "SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S)";
    let a = db.query(sql).strategy(Strategy::Unnest).run().unwrap();
    let b = db.query(sql).strategy(Strategy::Naive).run().unwrap();
    assert_eq!(a.answer.canonicalized(), b.answer.canonicalized());
    assert_eq!(a.answer.len(), 120);
}

#[test]
fn heavy_duplicate_values_in_aggregate_groups() {
    // Many tuples share identical fuzzy values: the JA grouping must dedup
    // them into the fuzzy set T(r) exactly once (COUNT counts distinct
    // values, not tuples).
    use fuzzy_db::core::{Trapezoid, Value};
    use fuzzy_rel::{AttrType, Schema, Tuple};
    let disk = SimDisk::with_default_page_size();
    let mut catalog = Catalog::new();
    let schema = || Schema::of(&[("U", AttrType::Number), ("Z", AttrType::Number)]);
    let r = fuzzy_rel::StoredTable::create(&disk, "R", schema());
    r.load(
        (0..10).map(|i| Tuple::full(vec![Value::number((i % 3) as f64), Value::number(i as f64)])),
    )
    .unwrap();
    catalog.register(r);
    let s = fuzzy_rel::StoredTable::create(&disk, "S", schema());
    // 30 tuples but only 2 distinct Z values per U.
    s.load((0..30).map(|i| {
        Tuple::full(vec![
            Value::number((i % 3) as f64),
            Value::fuzzy(Trapezoid::about(((i / 15) * 100) as f64, 5.0).unwrap()),
        ])
    }))
    .unwrap();
    catalog.register(s);
    let db = Database::from_catalog(catalog, disk);
    let sql = "SELECT R.Z FROM R WHERE 2 >= (SELECT COUNT(S.Z) FROM S WHERE S.U = R.U)";
    let a = db.query(sql).strategy(Strategy::Unnest).run().unwrap();
    let naive = db.query(sql).strategy(Strategy::Naive).run().unwrap();
    assert_eq!(a.answer.canonicalized(), naive.answer.canonicalized());
    // Every R tuple's group has exactly 2 distinct values: all pass.
    assert_eq!(a.answer.len(), 10);
}
