//! DDL/DML integration tests: CREATE TABLE, DEFINE TERM, INSERT with
//! degrees and fuzzy literals, fuzzy DELETE/UPDATE matching, and the
//! interplay with queries.

use fuzzy_db::core::Value;
use fuzzy_db::{Database, StatementResult};

fn rows(r: &StatementResult) -> &fuzzy_db::rel::Relation {
    match r {
        StatementResult::Rows(rel) => rel,
        other => panic!("expected rows, got {other:?}"),
    }
}

fn affected(r: &StatementResult) -> usize {
    match r {
        StatementResult::Affected(n) => *n,
        other => panic!("expected an affected count, got {other:?}"),
    }
}

fn fresh_db() -> Database {
    let mut db = Database::new();
    for stmt in [
        "CREATE TABLE PEOPLE (ID NUMBER KEY, NAME TEXT, AGE NUMBER)",
        "DEFINE TERM 'medium young' AS TRAP(20, 25, 30, 35)",
        "DEFINE TERM 'about 40' AS ABOUT(40, 5)",
        "INSERT INTO PEOPLE VALUES (1, 'Ann', 27)",
        "INSERT INTO PEOPLE VALUES (2, 'Bo', ABOUT(35, 5))",
        "INSERT INTO PEOPLE VALUES (3, 'Cy', 'about 40') WITH D = 0.6",
        "INSERT INTO PEOPLE VALUES (4, 'Dee', 70)",
    ] {
        db.execute(stmt).unwrap_or_else(|e| panic!("{stmt}: {e}"));
    }
    db
}

#[test]
fn create_insert_select_pipeline() {
    let mut db = fresh_db();
    let out = db
        .execute("SELECT PEOPLE.NAME FROM PEOPLE WHERE PEOPLE.AGE = 'medium young' ORDER BY D DESC")
        .unwrap();
    let rel = rows(&out);
    assert_eq!(rel.len(), 2, "{rel}");
    assert_eq!(rel.tuples()[0].values[0], Value::text("Ann"));
    // Bo's "about 35" partially overlaps medium young.
    assert_eq!(rel.tuples()[1].values[0], Value::text("Bo"));
    assert!(rel.tuples()[1].degree.value() < 1.0);
    // Cy entered with membership 0.6.
    let all = db.execute("SELECT PEOPLE.ID FROM PEOPLE").unwrap();
    assert_eq!(rows(&all).degree_of(&[Value::number(3.0)]).value(), 0.6);
}

#[test]
fn insert_validation() {
    let mut db = fresh_db();
    // Arity mismatch.
    assert!(db.execute("INSERT INTO PEOPLE VALUES (9, 'X')").is_err());
    // Text into a number column.
    assert!(db.execute("INSERT INTO PEOPLE VALUES (9, 'X', 'unknown term')").is_err());
    // Number into a text column.
    assert!(db.execute("INSERT INTO PEOPLE VALUES (9, 7, 30)").is_err());
    // Degree 0: accepted but not a member.
    let r = db.execute("INSERT INTO PEOPLE VALUES (9, 'X', 30) WITH D = 0").unwrap();
    assert_eq!(affected(&r), 0);
    assert_eq!(rows(&db.execute("SELECT PEOPLE.ID FROM PEOPLE").unwrap()).len(), 4);
}

#[test]
fn fuzzy_delete_with_threshold() {
    let mut db = fresh_db();
    // "possibly medium young" matches Ann (1.0) and Bo (0.5); the threshold
    // keeps Bo alive.
    let r =
        db.execute("DELETE FROM PEOPLE WHERE PEOPLE.AGE = 'medium young' WITH D > 0.8").unwrap();
    assert_eq!(affected(&r), 1);
    let names = rows(&db.execute("SELECT PEOPLE.NAME FROM PEOPLE").unwrap()).clone();
    let names: Vec<String> = names.tuples().iter().map(|t| t.values[0].to_string()).collect();
    assert!(!names.contains(&"Ann".to_string()));
    assert!(names.contains(&"Bo".to_string()));
    // Unconditional DELETE empties the table.
    let r = db.execute("DELETE FROM PEOPLE").unwrap();
    assert_eq!(affected(&r), 3);
    assert!(rows(&db.execute("SELECT PEOPLE.ID FROM PEOPLE").unwrap()).is_empty());
}

#[test]
fn fuzzy_update_rewrites_matching_tuples() {
    let mut db = fresh_db();
    let r =
        db.execute("UPDATE PEOPLE SET AGE = TRI(25, 26, 27) WHERE PEOPLE.NAME = 'Ann'").unwrap();
    assert_eq!(affected(&r), 1);
    let out = db.execute("SELECT PEOPLE.AGE FROM PEOPLE WHERE PEOPLE.NAME = 'Ann'").unwrap();
    let rel = rows(&out);
    assert_eq!(rel.len(), 1);
    assert_eq!(rel.tuples()[0].values[0].interval(), Some((25.0, 27.0)));
    // Updates preserve membership degrees.
    db.execute("UPDATE PEOPLE SET NAME = 'Cyrus' WHERE PEOPLE.ID = 3").unwrap();
    let d = rows(&db.execute("SELECT PEOPLE.NAME FROM PEOPLE WHERE PEOPLE.ID = 3").unwrap())
        .tuples()[0]
        .degree;
    assert!((d.value() - 0.6).abs() < 1e-12);
}

#[test]
fn delete_with_subquery_condition() {
    let mut db = fresh_db();
    db.execute("CREATE TABLE BANNED (AGE NUMBER)").unwrap();
    db.execute("INSERT INTO BANNED VALUES (70)").unwrap();
    let r = db
        .execute("DELETE FROM PEOPLE WHERE PEOPLE.AGE IN (SELECT BANNED.AGE FROM BANNED)")
        .unwrap();
    assert_eq!(affected(&r), 1, "only Dee is exactly 70");
    assert_eq!(rows(&db.execute("SELECT PEOPLE.ID FROM PEOPLE").unwrap()).len(), 3);
}

#[test]
fn fuzzy_literals_work_in_where_clauses() {
    let mut db = fresh_db();
    let out = db
        .execute("SELECT PEOPLE.NAME FROM PEOPLE WHERE PEOPLE.AGE = TRAP(20, 25, 30, 35)")
        .unwrap();
    assert_eq!(rows(&out).len(), 2);
    let out = db.execute("SELECT PEOPLE.NAME FROM PEOPLE WHERE PEOPLE.AGE = ABOUT(70, 3)").unwrap();
    assert_eq!(rows(&out).len(), 1);
    // Invalid breakpoints are rejected at execution.
    assert!(db
        .execute("SELECT PEOPLE.NAME FROM PEOPLE WHERE PEOPLE.AGE = TRAP(5, 4, 3, 2)")
        .is_err());
}

#[test]
fn dml_persists_through_save() {
    let mut base = std::env::temp_dir();
    base.push(format!("fuzzy_db_dml_{}", std::process::id()));
    let _ = std::fs::remove_file(base.with_extension("pages"));
    let _ = std::fs::remove_file(base.with_extension("manifest"));
    {
        let mut db = Database::open(&base).unwrap();
        db.execute("CREATE TABLE T (X NUMBER)").unwrap();
        db.execute("INSERT INTO T VALUES (1)").unwrap();
        db.execute("INSERT INTO T VALUES (2)").unwrap();
        db.execute("DELETE FROM T WHERE T.X = 1").unwrap();
        db.save().unwrap();
    }
    {
        let db = Database::open(&base).unwrap();
        let rel = db.table_contents("T").unwrap();
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.tuples()[0].values[0], Value::number(2.0));
    }
    let _ = std::fs::remove_file(base.with_extension("pages"));
    let _ = std::fs::remove_file(base.with_extension("manifest"));
}

#[test]
fn analyze_builds_histograms() {
    let mut db = fresh_db();
    let r = db.execute("ANALYZE PEOPLE").unwrap();
    // ID and AGE are the numeric columns.
    assert_eq!(affected(&r), 2);
    // Re-analyzing is cheap (cached) and idempotent in count.
    let r = db.execute("ANALYZE").unwrap();
    assert_eq!(affected(&r), 2);
    assert!(db.execute("ANALYZE GHOSTS").is_err());
}
