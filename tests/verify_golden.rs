//! Golden-file tests pinning the `EXPLAIN VERIFY` rendering byte-for-byte:
//! one clean plan per plan family (flat with threshold push-down, anti,
//! aggregate) plus an injected-failure report, so both the OK and FAILED
//! renderings are under drift control.
//!
//! The text is fully deterministic (properties, rule ids, and counts only —
//! never wall time or thread count). To regenerate after an intentional
//! change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test --test verify_golden
//! ```

use fuzzy_db::core::{Degree, Value};
use fuzzy_db::engine::explain::render_verify_report;
use fuzzy_db::engine::plan::PlanCol;
use fuzzy_db::engine::{Outline, PhysOp, Prop, VerifyReport};
use fuzzy_db::rel::{AttrType, Schema, Tuple};
use fuzzy_db::{Database, StatementResult};

/// The golden suite's deterministic three-table fixture (R 8, S 6, T 4).
fn fixture() -> Database {
    let mut db = Database::with_paper_vocabulary();
    for (name, n) in [("R", 8usize), ("S", 6), ("T", 4)] {
        db.create_table(
            name,
            Schema::of(&[
                ("ID", AttrType::Number),
                ("X", AttrType::Number),
                ("V", AttrType::Number),
            ]),
        )
        .unwrap();
        db.load(
            name,
            (0..n).map(|i| {
                Tuple::full(vec![
                    Value::number(i as f64),
                    Value::number((i % 3) as f64 * 10.0),
                    Value::number(100.0 + i as f64),
                ])
            }),
        )
        .unwrap();
    }
    db
}

fn check(name: &str, actual: &str) {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let path = dir.join(format!("{name}.txt"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run `UPDATE_GOLDEN=1 cargo test --test \
             verify_golden` to create it",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "EXPLAIN VERIFY drift for {name} (golden {}); if intentional, regenerate with \
         `UPDATE_GOLDEN=1 cargo test --test verify_golden`",
        path.display()
    );
}

/// Renders `EXPLAIN VERIFY` through the full statement path (parser →
/// facade → engine → verifier → renderer).
fn explain_verify(db: &mut Database, sql: &str) -> String {
    match db.execute(&format!("EXPLAIN VERIFY {sql}")).expect("EXPLAIN VERIFY failed") {
        StatementResult::Explained(text) => text,
        other => panic!("expected Explained, got {other:?}"),
    }
}

#[test]
fn golden_verify_clean_flat() {
    let mut db = fixture();
    check(
        "verify_clean",
        &explain_verify(&mut db, "SELECT R.ID FROM R, S WHERE R.X = S.X WITH D > 0.3"),
    );
}

#[test]
fn golden_verify_clean_anti() {
    let mut db = fixture();
    check(
        "verify_clean_anti",
        &explain_verify(&mut db, "SELECT R.ID FROM R WHERE R.X NOT IN (SELECT S.X FROM S)"),
    );
}

#[test]
fn golden_verify_clean_agg() {
    let mut db = fixture();
    check(
        "verify_clean_agg",
        &explain_verify(
            &mut db,
            "SELECT R.ID FROM R WHERE R.V <= (SELECT MAX(S.V) FROM S WHERE S.X = R.X)",
        ),
    );
}

#[test]
fn golden_verify_fallback() {
    let mut db = fixture();
    check(
        "verify_fallback",
        &explain_verify(
            &mut db,
            "SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S) AND R.V IN (SELECT T.V FROM T)",
        ),
    );
}

/// An injected failure: a merge join over unsorted inputs plus an undeclared
/// operator, rendered through the same report renderer `EXPLAIN VERIFY`
/// uses, pinning the FAILED verdict and the violation lines.
#[test]
fn golden_verify_violation() {
    let mut outline = Outline::default();
    outline.ops.push(PhysOp::declare(
        "scan R",
        vec![],
        vec![],
        vec![Prop::Binding("R".into()), Prop::MinDegree(Degree::ZERO)],
    ));
    outline.ops.push(PhysOp::undeclared("mystery-op", vec![0]));
    outline.ops.push(PhysOp::declare(
        "merge-join R.X = S.X",
        vec![0, 1],
        vec![
            (
                0,
                Prop::Sorted { col: PlanCol { binding: "R".into(), attr: 1 }, alpha: Degree::ZERO },
            ),
            (
                1,
                Prop::Sorted { col: PlanCol { binding: "S".into(), attr: 1 }, alpha: Degree::ZERO },
            ),
        ],
        vec![Prop::Binding("R".into()), Prop::Binding("S".into())],
    ));
    let report = VerifyReport::from_outline("flat(R ⋈ S)", "none", Degree::ZERO, outline);
    assert!(!report.ok());
    check("verify_violation", &render_verify_report(&report));
}
