//! Persistence integration tests: a database saved with `Database::open` +
//! `save` survives process (handle) boundaries with identical query answers.

use fuzzy_db::core::{Trapezoid, Value};
use fuzzy_db::rel::{AttrType, Schema, Tuple};
use fuzzy_db::Database;
use std::path::PathBuf;

fn temp_base(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("fuzzy_db_it_{tag}_{}", std::process::id()));
    p
}

fn cleanup(base: &std::path::Path) {
    let _ = std::fs::remove_file(base.with_extension("pages"));
    let _ = std::fs::remove_file(base.with_extension("manifest"));
}

#[test]
fn database_roundtrips_through_disk() {
    let base = temp_base("roundtrip");
    cleanup(&base);
    let query = "SELECT PEOPLE.NAME FROM PEOPLE WHERE PEOPLE.AGE = 'medium young' \
                 ORDER BY D DESC";
    let first_answer;
    {
        let mut db = Database::open(&base).unwrap();
        db.define_term("medium young", Trapezoid::new(20.0, 25.0, 30.0, 35.0).unwrap());
        db.create_table(
            "PEOPLE",
            Schema::of(&[("NAME", AttrType::Text), ("AGE", AttrType::Number)]).with_key("NAME"),
        )
        .unwrap();
        db.load(
            "PEOPLE",
            vec![
                Tuple::full(vec![Value::text("Ann"), Value::number(24.0)]),
                Tuple::full(vec![
                    Value::text("Bo"),
                    Value::fuzzy(Trapezoid::triangular(30.0, 35.0, 40.0).unwrap()),
                ]),
                Tuple::full(vec![Value::text("Cy"), Value::number(70.0)]),
            ],
        )
        .unwrap();
        first_answer = db.query(query).collect().unwrap();
        assert_eq!(first_answer.len(), 2);
        db.save().unwrap();
    }
    // Reopen from disk: schema, vocabulary, key, data, and answers identical.
    {
        let db = Database::open(&base).unwrap();
        let catalog = db.catalog();
        let t = catalog.table("PEOPLE").unwrap();
        assert_eq!(t.num_tuples(), 3);
        assert_eq!(t.schema().key(), Some(0));
        assert!(catalog.vocabulary().get("medium young").is_some());
        let again = db.query(query).collect().unwrap();
        assert_eq!(again, first_answer);
    }
    cleanup(&base);
}

#[test]
fn appends_after_reopen_are_visible_after_save() {
    let base = temp_base("append");
    cleanup(&base);
    {
        let mut db = Database::open(&base).unwrap();
        db.create_table("T", Schema::of(&[("X", AttrType::Number)])).unwrap();
        db.insert("T", Tuple::full(vec![Value::number(1.0)])).unwrap();
        db.save().unwrap();
    }
    {
        let mut db = Database::open(&base).unwrap();
        db.insert("T", Tuple::full(vec![Value::number(2.0)])).unwrap();
        db.save().unwrap();
    }
    {
        let db = Database::open(&base).unwrap();
        let rel = db.table_contents("T").unwrap();
        assert_eq!(rel.len(), 2);
    }
    cleanup(&base);
}

#[test]
fn unsaved_tables_are_absent_after_reopen() {
    let base = temp_base("unsaved");
    cleanup(&base);
    {
        let mut db = Database::open(&base).unwrap();
        db.create_table("GONE", Schema::of(&[("X", AttrType::Number)])).unwrap();
        // No save.
    }
    {
        let db = Database::open(&base).unwrap();
        assert!(db.catalog().table("GONE").is_none());
    }
    cleanup(&base);
}

#[test]
fn in_memory_databases_refuse_save() {
    let db = Database::new();
    let err = db.save().unwrap_err();
    assert!(err.to_string().contains("in-memory"));
}
