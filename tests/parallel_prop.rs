//! Property test: for randomly generated relations and any worker-thread
//! count in {1, 2, 4, 8}, parallel execution returns exactly the serial
//! result set and degrees, and charges exactly the same cost counters.

use fuzzy_engine::exec::ExecConfig;
use fuzzy_engine::{Engine, Strategy};
use fuzzy_rel::Catalog;
use fuzzy_storage::SimDisk;
use fuzzy_workload::{generate, WorkloadSpec};
use proptest::prelude::*;

const TYPE_J: &str = "SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S WHERE S.ID <> R.ID)";
const FLAT_WITH_THRESHOLD: &str = "SELECT R.ID, S.ID FROM R, S WHERE R.X = S.X WITH D > 0.4";

fn build(
    n_outer: usize,
    n_inner: usize,
    fanout: usize,
    fuzzy_fraction: f64,
    seed: u64,
) -> (Catalog, SimDisk) {
    let disk = SimDisk::with_default_page_size();
    let w = generate(
        &disk,
        WorkloadSpec { n_outer, n_inner, fanout, fuzzy_fraction, seed, ..Default::default() },
    )
    .unwrap();
    let mut catalog = Catalog::new();
    catalog.register(w.outer);
    catalog.register(w.inner);
    disk.reset_io();
    (catalog, disk)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn parallel_execution_equals_serial(
        n_outer in 1usize..48,
        n_inner in 1usize..48,
        fanout in 1usize..6,
        fuzzy_tenths in 0u32..=10,
        seed in 0u64..1_000_000,
    ) {
        let (catalog, disk) =
            build(n_outer, n_inner, fanout, fuzzy_tenths as f64 / 10.0, seed);
        for sql in [TYPE_J, FLAT_WITH_THRESHOLD] {
            let run = |threads: usize| {
                let engine = Engine::over(catalog.clone().into(), &disk).with_config(ExecConfig {
                    buffer_pages: 4, // tiny budgets force spills and merge passes
                    sort_pages: 4,
                    threads,
                    ..Default::default()
                });
                let out = engine.run_sql(sql, Strategy::Unnest).expect("query runs");
                (
                    out.answer.canonicalized(),
                    out.exec_stats.pairs_examined,
                    out.exec_stats.sort_comparisons,
                    out.exec_stats.sort_runs,
                    out.measurement.io.reads,
                    out.measurement.io.writes,
                )
            };
            let serial = run(1);
            for threads in [2usize, 4, 8] {
                let parallel = run(threads);
                prop_assert_eq!(&serial.0, &parallel.0);
                prop_assert_eq!(serial.1, parallel.1);
                prop_assert_eq!(serial.2, parallel.2);
                prop_assert_eq!(serial.3, parallel.3);
                prop_assert_eq!(serial.4, parallel.4);
                prop_assert_eq!(serial.5, parallel.5);
            }
        }
    }
}
