//! Statement-end temporary reclamation.
//!
//! Every page a statement allocates is a temporary — sort runs, partition
//! scratch, materialized intermediates — so `Engine::run` returns all of
//! them to the simulated disk's free list when the statement finishes.
//! These regressions pin that contract over the full query corpus: the
//! live-page count returns to its pre-statement baseline after every class,
//! and repeated statements reuse reclaimed pages instead of growing the
//! disk.

use fuzzy_db::core::Value;
use fuzzy_db::engine::{Engine, ExecConfig, JoinMethod, Strategy};
use fuzzy_db::rel::{AttrType, Schema, Tuple};
use fuzzy_db::Database;

/// The golden suite's deterministic three-table fixture.
fn fixture(scale: usize) -> Database {
    let mut db = Database::with_paper_vocabulary();
    for (name, base) in [("R", 8usize), ("S", 6), ("T", 4)] {
        db.create_table(
            name,
            Schema::of(&[
                ("ID", AttrType::Number),
                ("X", AttrType::Number),
                ("V", AttrType::Number),
            ]),
        )
        .unwrap();
        db.load(
            name,
            (0..base * scale).map(|i| {
                Tuple::full(vec![
                    Value::number(i as f64),
                    Value::number((i % 3) as f64 * 10.0),
                    Value::number(100.0 + i as f64),
                ])
            }),
        )
        .unwrap();
    }
    db
}

/// One query per class of the paper's catalogue (the golden suite's corpus,
/// `general_fallback` included — the naive evaluator's temporaries are
/// reclaimed by the same statement-end hook).
const CORPUS: &[(&str, &str)] = &[
    ("flat", "SELECT R.ID FROM R, S WHERE R.X = S.X WITH D > 0.3"),
    ("type_n", "SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S)"),
    ("type_j", "SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S WHERE S.V = R.V)"),
    ("type_some", "SELECT R.ID FROM R WHERE R.X = SOME (SELECT S.X FROM S WHERE S.V = R.V)"),
    ("type_nx", "SELECT R.ID FROM R WHERE R.X NOT IN (SELECT S.X FROM S)"),
    ("type_jx", "SELECT R.ID FROM R WHERE R.X NOT IN (SELECT S.X FROM S WHERE S.V = R.V)"),
    ("type_a", "SELECT R.ID FROM R WHERE R.V > (SELECT AVG(S.V) FROM S)"),
    ("type_ja", "SELECT R.ID FROM R WHERE R.V <= (SELECT MAX(S.V) FROM S WHERE S.X = R.X)"),
    ("type_all", "SELECT R.ID FROM R WHERE R.V > ALL (SELECT T.V FROM T)"),
    (
        "chain3",
        "SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S WHERE S.X IN (SELECT T.X FROM T))",
    ),
    (
        "general_fallback",
        "SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S) AND R.V IN (SELECT T.V FROM T)",
    ),
];

/// After each of the 11 corpus classes the live-page count is back to the
/// pre-statement baseline: no statement leaks its temporaries.
#[test]
fn live_pages_return_to_baseline_after_every_corpus_class() {
    let db = fixture(4);
    let engine = Engine::over(db.catalog(), db.disk());
    let baseline = db.disk().live_pages();
    assert!(baseline > 0, "fixture tables should own pages");
    let mut nonempty = 0usize;
    for (name, sql) in CORPUS {
        let out = engine.run_sql(sql, Strategy::Unnest).unwrap();
        nonempty += usize::from(!out.answer.is_empty());
        assert_eq!(db.disk().live_pages(), baseline, "{name}: statement leaked temp pages");
    }
    assert!(nonempty >= 6, "corpus mostly empty ({nonempty} non-empty): fixture broken?");
}

/// Repeating a statement reuses the reclaimed pages: the disk's total page
/// count stops growing after the first execution (for the partitioned join
/// and the naive reference too).
#[test]
fn repeated_statements_do_not_grow_the_disk() {
    let db = fixture(4);
    let sql = CORPUS.iter().find(|(n, _)| *n == "chain3").unwrap().1;
    for (label, engine, strategy) in [
        ("merge", Engine::over(db.catalog(), db.disk()), Strategy::Unnest),
        (
            "partitioned",
            Engine::over(db.catalog(), db.disk()).with_config(ExecConfig {
                join_method: JoinMethod::Partitioned,
                ..Default::default()
            }),
            Strategy::Unnest,
        ),
        ("naive", Engine::over(db.catalog(), db.disk()), Strategy::Naive),
    ] {
        let baseline = db.disk().live_pages();
        let first = engine.run_sql(sql, strategy).unwrap();
        let high_water = db.disk().num_pages();
        for _ in 0..3 {
            let again = engine.run_sql(sql, strategy).unwrap();
            assert_eq!(
                again.answer.canonicalized(),
                first.answer.canonicalized(),
                "{label}: answers drifted across repeats"
            );
            assert_eq!(
                db.disk().num_pages(),
                high_water,
                "{label}: repeated statements grew the disk"
            );
            assert_eq!(db.disk().live_pages(), baseline, "{label}: leaked temp pages");
        }
    }
}

/// The error path reclaims too: a statement that fails to bind frees
/// whatever it had already allocated.
#[test]
fn failed_statements_reclaim_their_pages() {
    let db = fixture(1);
    let engine = Engine::over(db.catalog(), db.disk());
    let baseline = db.disk().live_pages();
    let err =
        engine.run_sql("SELECT R.ID FROM R, S WHERE R.X = S.X ORDER BY NOPE", Strategy::Unnest);
    assert!(err.is_err(), "expected a bind error");
    assert_eq!(db.disk().live_pages(), baseline, "error path leaked temp pages");
}
