//! Integration tests of the extended Fuzzy SQL surface: GROUP BY + HAVING
//! with fuzzy aggregates, ORDER BY (degree and interval order), LIMIT
//! (possibilistic top-k), and similarity predicates (`~ ... WITHIN`).

use fuzzy_db::core::{Trapezoid, Value};
use fuzzy_db::rel::{AttrType, Schema, Tuple};
use fuzzy_db::{Database, Strategy};

fn sales_db() -> Database {
    let mut db = Database::with_paper_vocabulary();
    db.create_table(
        "SALES",
        Schema::of(&[
            ("REGION", AttrType::Text),
            ("AMOUNT", AttrType::Number),
            ("AGE", AttrType::Number),
        ]),
    )
    .unwrap();
    let fuzzy = |a, b, c| Value::fuzzy(Trapezoid::triangular(a, b, c).unwrap());
    db.load(
        "SALES",
        vec![
            Tuple::full(vec![Value::text("north"), Value::number(10.0), Value::number(24.0)]),
            Tuple::full(vec![Value::text("north"), Value::number(20.0), Value::number(27.0)]),
            Tuple::full(vec![Value::text("north"), fuzzy(28.0, 30.0, 32.0), Value::number(33.0)]),
            Tuple::full(vec![Value::text("south"), Value::number(5.0), Value::number(61.0)]),
            Tuple::full(vec![Value::text("south"), fuzzy(6.0, 8.0, 10.0), Value::number(45.0)]),
            Tuple::full(vec![Value::text("west"), Value::number(100.0), Value::number(50.0)]),
        ],
    )
    .unwrap();
    db
}

#[test]
fn group_by_with_count_and_sum() {
    let db = sales_db();
    let ans = db
        .query("SELECT SALES.REGION, COUNT(SALES.AMOUNT), SUM(SALES.AMOUNT) FROM SALES GROUP BY SALES.REGION").collect().unwrap();
    assert_eq!(ans.len(), 3);
    let north = ans.tuples().iter().find(|t| t.values[0] == Value::text("north")).unwrap();
    assert_eq!(north.values[1], Value::number(3.0));
    // Fuzzy SUM: 10 + 20 + tri(28,30,32) = tri(58,60,62).
    assert_eq!(north.values[2], Value::fuzzy(Trapezoid::triangular(58.0, 60.0, 62.0).unwrap()));
}

#[test]
fn having_filters_groups() {
    let db = sales_db();
    let ans = db
        .query(
            "SELECT SALES.REGION FROM SALES GROUP BY SALES.REGION \
             HAVING COUNT(*) >= 2",
        )
        .collect()
        .unwrap();
    let regions: Vec<String> = ans.tuples().iter().map(|t| t.values[0].to_string()).collect();
    assert!(regions.contains(&"north".to_string()));
    assert!(regions.contains(&"south".to_string()));
    assert!(!regions.contains(&"west".to_string()));
}

#[test]
fn having_with_fuzzy_aggregate_grades_groups() {
    // HAVING over a fuzzy aggregate yields graded group degrees, not 0/1:
    // south's SUM is 5 + tri(6,8,10) = tri(11,13,15); compared > 14 the
    // group survives partially.
    let db = sales_db();
    let ans = db
        .query(
            "SELECT SALES.REGION FROM SALES GROUP BY SALES.REGION \
             HAVING SUM(SALES.AMOUNT) > 14",
        )
        .collect()
        .unwrap();
    let south = ans.tuples().iter().find(|t| t.values[0] == Value::text("south"));
    let d = south.expect("south partially satisfies").degree.value();
    assert!(d > 0.0 && d < 1.0, "expected graded degree, got {d}");
}

#[test]
fn having_column_must_be_grouped() {
    let db = sales_db();
    let err = db
        .query("SELECT SALES.REGION FROM SALES GROUP BY SALES.REGION HAVING SALES.AMOUNT > 1")
        .collect()
        .unwrap_err();
    assert!(err.to_string().contains("not in GROUP BY"), "{err}");
}

#[test]
fn order_by_degree_ranks_possibilistic_answers() {
    let db = sales_db();
    let ans = db
        .query(
            "SELECT SALES.REGION FROM SALES WHERE SALES.AGE = 'medium young' \
             ORDER BY D DESC",
        )
        .collect()
        .unwrap();
    let degrees: Vec<f64> = ans.tuples().iter().map(|t| t.degree.value()).collect();
    assert!(!degrees.is_empty());
    assert!(degrees.windows(2).all(|w| w[0] >= w[1]), "not descending: {degrees:?}");
}

#[test]
fn limit_gives_top_k() {
    let db = sales_db();
    let top1 = db
        .query(
            "SELECT SALES.REGION FROM SALES WHERE SALES.AGE = 'medium young' \
             ORDER BY D DESC LIMIT 1",
        )
        .collect()
        .unwrap();
    assert_eq!(top1.len(), 1);
    // The age 27 tuple is a full member of medium young.
    assert_eq!(top1.tuples()[0].degree.value(), 1.0);
    let none = db.query("SELECT SALES.REGION FROM SALES LIMIT 0").collect().unwrap();
    assert!(none.is_empty());
}

#[test]
fn order_by_column_uses_interval_order() {
    let db = sales_db();
    let ans = db.query("SELECT SALES.AMOUNT FROM SALES ORDER BY AMOUNT").collect().unwrap();
    let firsts: Vec<f64> = ans.tuples().iter().map(|t| t.values[0].interval().unwrap().0).collect();
    assert!(firsts.windows(2).all(|w| w[0] <= w[1]), "not ⪯-ordered: {firsts:?}");
}

#[test]
fn order_and_limit_apply_on_all_strategies() {
    let db = sales_db();
    let sql = "SELECT SALES.REGION FROM SALES WHERE SALES.AMOUNT IN \
               (SELECT S2.AMOUNT FROM SALES S2) ORDER BY D DESC LIMIT 2";
    // This reuses the SALES binding inside the sub-query under a different
    // alias, so both strategies can handle it.
    for strategy in [Strategy::Naive, Strategy::Unnest] {
        let out = db.query(sql).strategy(strategy).run().unwrap();
        assert!(out.answer.len() <= 2, "{strategy:?}: {}", out.answer);
    }
}

#[test]
fn similarity_predicate_end_to_end() {
    let db = sales_db();
    // amount ~ 18 within 5: matches 20 with degree 1 - 2/5 = 0.6.
    let ans = db
        .query("SELECT SALES.AMOUNT FROM SALES WHERE SALES.AMOUNT ~ 18 WITHIN 5")
        .collect()
        .unwrap();
    assert_eq!(ans.len(), 1);
    assert!((ans.tuples()[0].degree.value() - 0.6).abs() < 1e-9);
    // Zero tolerance is a parse error; plain equality gives nothing at 18.
    assert!(db
        .query("SELECT SALES.AMOUNT FROM SALES WHERE SALES.AMOUNT = 18")
        .collect()
        .unwrap()
        .is_empty());
}

#[test]
fn limit_in_subquery_falls_back_to_naive() {
    let db = sales_db();
    let out = db
        .query(
            "SELECT SALES.REGION FROM SALES WHERE SALES.AMOUNT IN \
             (SELECT S2.AMOUNT FROM SALES S2 ORDER BY D DESC LIMIT 1)",
        )
        .strategy(Strategy::Unnest)
        .run()
        .unwrap();
    assert_eq!(out.plan_label, "naive-fallback");
}

#[test]
fn linguistic_hedges_in_queries() {
    let db = sales_db();
    // Ages 24, 27, 33ish in "north": "very medium young" concentrates the
    // term, so 24 (0.8 under the base term) drops to 0.6.
    let base = db
        .query("SELECT SALES.AGE FROM SALES WHERE SALES.AGE = 'medium young' ORDER BY AGE")
        .collect()
        .unwrap();
    let very = db
        .query("SELECT SALES.AGE FROM SALES WHERE SALES.AGE = 'very medium young' ORDER BY AGE")
        .collect()
        .unwrap();
    assert!(!very.is_empty());
    for t in very.tuples() {
        let b = base.degree_of(&t.values);
        assert!(t.degree <= b, "very must not raise degrees: {} vs {}", t.degree, b);
    }
    let somewhat = db
        .query("SELECT SALES.AGE FROM SALES WHERE SALES.AGE = 'somewhat medium young'")
        .collect()
        .unwrap();
    assert!(somewhat.len() >= base.len(), "somewhat widens the match set");
}

#[test]
fn degree_pseudo_column_in_predicates() {
    // Section 5's device: "a membership degree attribute can be used by
    // itself as a predicate". Queries referencing R.D in WHERE clauses are
    // evaluated by the naive strategy (the physical plans have no degree
    // column to bind), via transparent fallback.
    let mut db = Database::with_paper_vocabulary();
    db.create_table("T", Schema::of(&[("NAME", AttrType::Text)])).unwrap();
    db.load(
        "T",
        vec![
            Tuple::new(vec![Value::text("weak")], fuzzy_db::core::Degree::new(0.2).unwrap()),
            Tuple::new(vec![Value::text("strong")], fuzzy_db::core::Degree::new(0.9).unwrap()),
        ],
    )
    .unwrap();
    let out =
        db.query("SELECT T.NAME FROM T WHERE T.D >= 0.5").strategy(Strategy::Unnest).run().unwrap();
    assert_eq!(out.plan_label, "naive-fallback", "{}", out.plan_label);
    assert_eq!(out.answer.len(), 1);
    assert_eq!(out.answer.tuples()[0].values[0], Value::text("strong"));
    // Unlike WITH D (which thresholds the final answer), a D predicate joins
    // the conjunction: the weak tuple's answer degree would be
    // min(0.2, [0.2 >= 0.5]) = 0.
    let all = db.query("SELECT T.NAME FROM T WITH D > 0.1").collect().unwrap();
    assert_eq!(all.len(), 2);
}
