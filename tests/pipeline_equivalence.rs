//! Pipeline-vs-materialized equivalence for chain joins.
//!
//! The streaming operator pipeline keeps intermediate chain-join output in
//! memory for the next sort boundary instead of spilling a temp table
//! (DESIGN.md §11). `ExecConfig::pipeline_joins = false` restores the
//! materialize-every-step behaviour, and the two paths must be equivalent
//! in everything except simulated I/O:
//!
//! * answers (values *and* degrees) bit-identical, at every thread count;
//! * tuples-out / fuzzy-comparison / prune / sort counters bit-identical;
//! * strictly fewer simulated page writes for the pipelined path on chains
//!   with an intermediate step (3 and 4 tables), and exactly equal writes
//!   on a 2-table chain (its only join streams into the answer either way).

use fuzzy_db::core::Value;
use fuzzy_db::engine::{Engine, ExecConfig, Strategy};
use fuzzy_db::rel::{AttrType, Catalog, Relation, Schema, StoredTable, Tuple};
use fuzzy_db::storage::SimDisk;

/// Deterministic four-table catalog: R (8·scale), S (6·scale), T (4·scale),
/// U (3·scale), each (ID, X) with X cycling over three join values.
fn chain_db(scale: usize) -> (Catalog, SimDisk) {
    let disk = SimDisk::with_default_page_size();
    let mut catalog = Catalog::new();
    for (name, base) in [("R", 8usize), ("S", 6), ("T", 4), ("U", 3)] {
        let schema = Schema::of(&[("ID", AttrType::Number), ("X", AttrType::Number)]);
        let t = StoredTable::create(&disk, name, schema);
        let mut w = t.file().bulk_writer();
        for i in 0..base * scale {
            let tu =
                Tuple::full(vec![Value::number(i as f64), Value::number((i % 3) as f64 * 10.0)]);
            w.append(&tu.encode(0)).unwrap();
        }
        w.finish().unwrap();
        catalog.register(t);
    }
    disk.reset_io();
    (catalog, disk)
}

/// `(k, query)`: nested chains of 2, 3, and 4 tables.
const CHAINS: &[(usize, &str)] = &[
    (2, "SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S)"),
    (3, "SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S WHERE S.X IN (SELECT T.X FROM T))"),
    (
        4,
        "SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S WHERE S.X IN \
         (SELECT T.X FROM T WHERE T.X IN (SELECT U.X FROM U)))",
    ),
];

struct Run {
    answer: Relation,
    tuples_out: u64,
    fuzzy_comparisons: u64,
    pairs_pruned: u64,
    sort_comparisons: u64,
    writes: u64,
}

fn run(catalog: &Catalog, disk: &SimDisk, sql: &str, threads: usize, pipeline: bool) -> Run {
    let engine = Engine::over(catalog.clone().into(), disk).with_config(ExecConfig {
        threads,
        pipeline_joins: pipeline,
        ..Default::default()
    });
    let out = engine.run_sql(sql, Strategy::Unnest).unwrap();
    let t = out.metrics.totals();
    Run {
        answer: out.answer.canonicalized(),
        tuples_out: t.tuples_out,
        fuzzy_comparisons: t.fuzzy_comparisons,
        pairs_pruned: t.pairs_pruned,
        sort_comparisons: t.sort_comparisons,
        writes: out.measurement.io.writes,
    }
}

#[test]
fn pipelined_and_materialized_chains_are_equivalent() {
    for scale in [1usize, 4] {
        for (k, sql) in CHAINS {
            let (catalog, disk) = chain_db(scale);
            let baseline = run(&catalog, &disk, sql, 1, true);
            assert!(!baseline.answer.is_empty(), "chain{k} scale {scale}: empty answer");
            for threads in [1usize, 2, 4, 8] {
                let label = format!("chain{k} scale {scale} threads {threads}");
                let piped = run(&catalog, &disk, sql, threads, true);
                let mat = run(&catalog, &disk, sql, threads, false);
                for (name, r) in [("pipelined", &piped), ("materialized", &mat)] {
                    assert_eq!(
                        r.answer, baseline.answer,
                        "{label}: {name} answer diverged from baseline"
                    );
                    let bd: Vec<f64> =
                        baseline.answer.tuples().iter().map(|t| t.degree.value()).collect();
                    let rd: Vec<f64> = r.answer.tuples().iter().map(|t| t.degree.value()).collect();
                    assert_eq!(bd, rd, "{label}: {name} degrees diverged");
                    assert_eq!(r.tuples_out, baseline.tuples_out, "{label}: {name} tuples_out");
                    assert_eq!(
                        r.fuzzy_comparisons, baseline.fuzzy_comparisons,
                        "{label}: {name} fuzzy_comparisons"
                    );
                    assert_eq!(
                        r.pairs_pruned, baseline.pairs_pruned,
                        "{label}: {name} pairs_pruned"
                    );
                    assert_eq!(
                        r.sort_comparisons, baseline.sort_comparisons,
                        "{label}: {name} sort_comparisons"
                    );
                }
                if *k >= 3 {
                    assert!(
                        piped.writes < mat.writes,
                        "{label}: pipelined writes {} not below materialized {}",
                        piped.writes,
                        mat.writes
                    );
                } else {
                    assert_eq!(
                        piped.writes, mat.writes,
                        "{label}: a 2-table chain has no intermediate to pipeline"
                    );
                }
                assert_eq!(piped.writes, baseline.writes, "{label}: writes not thread-invariant");
            }
        }
    }
}
