//! Parallel execution must be indistinguishable from serial execution in
//! everything except wall time: answer relations, degrees, pair counts,
//! sort comparisons, and simulated I/O counts are asserted exactly equal
//! for every thread count. On machines with at least four cores, the
//! threads = 4 run of the scale-8 workload must additionally beat
//! threads = 1 by at least 1.8× end to end.

use fuzzy_engine::exec::{ExecConfig, ExecStats};
use fuzzy_engine::{Engine, OperatorMetrics, Strategy};
use fuzzy_rel::{Catalog, Relation};
use fuzzy_storage::SimDisk;
use fuzzy_workload::{generate, WorkloadSpec};
use std::time::{Duration, Instant};

const TYPE_J: &str = "SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S WHERE S.ID <> R.ID)";
const FLAT_WITH_THRESHOLD: &str = "SELECT R.ID, S.ID FROM R, S WHERE R.X = S.X WITH D > 0.3";

fn workload(n: usize, seed: u64) -> (Catalog, SimDisk) {
    let disk = SimDisk::with_default_page_size();
    let w = generate(
        &disk,
        WorkloadSpec { n_outer: n, n_inner: n, fanout: 7, seed, ..Default::default() },
    )
    .unwrap();
    let mut catalog = Catalog::new();
    catalog.register(w.outer);
    catalog.register(w.inner);
    disk.reset_io();
    (catalog, disk)
}

struct Run {
    answer: Relation,
    stats: ExecStats,
    /// The deterministic per-operator view: `(kind, label, counters)` in
    /// start order, wall time excluded.
    metrics_sig: Vec<(&'static str, String, OperatorMetrics)>,
    reads: u64,
    writes: u64,
    wall: Duration,
}

fn run(catalog: &Catalog, disk: &SimDisk, sql: &str, threads: usize, pages: usize) -> Run {
    let engine = Engine::over(catalog.clone().into(), disk).with_config(ExecConfig {
        buffer_pages: pages,
        sort_pages: pages,
        threads,
        ..Default::default()
    });
    let started = Instant::now();
    let out = engine.run_sql(sql, Strategy::Unnest).unwrap();
    let wall = started.elapsed();
    Run {
        answer: out.answer.canonicalized(),
        stats: out.exec_stats,
        metrics_sig: out.metrics.deterministic(),
        reads: out.measurement.io.reads,
        writes: out.measurement.io.writes,
        wall,
    }
}

/// Everything observable except wall time must match the serial run.
fn assert_exactly_equal(serial: &Run, parallel: &Run, label: &str) {
    assert_eq!(serial.answer, parallel.answer, "{label}: answer relation diverged");
    let sd: Vec<f64> = serial.answer.tuples().iter().map(|t| t.degree.value()).collect();
    let pd: Vec<f64> = parallel.answer.tuples().iter().map(|t| t.degree.value()).collect();
    assert_eq!(sd, pd, "{label}: degrees diverged");
    assert_eq!(
        serial.stats.pairs_examined, parallel.stats.pairs_examined,
        "{label}: pairs_examined diverged"
    );
    assert_eq!(
        serial.stats.sort_comparisons, parallel.stats.sort_comparisons,
        "{label}: sort_comparisons diverged"
    );
    assert_eq!(serial.stats.sort_runs, parallel.stats.sort_runs, "{label}: sort_runs diverged");
    assert_eq!(serial.stats.max_window, parallel.stats.max_window, "{label}: max_window diverged");
    assert_eq!(serial.stats.sort_reads, parallel.stats.sort_reads, "{label}: sort reads");
    assert_eq!(serial.stats.sort_writes, parallel.stats.sort_writes, "{label}: sort writes");
    assert_eq!(serial.reads, parallel.reads, "{label}: physical reads diverged");
    assert_eq!(serial.writes, parallel.writes, "{label}: physical writes diverged");
    // The whole registry — every operator's label and all thirteen counters
    // — must be bit-identical; only wall time may differ.
    assert_eq!(serial.metrics_sig, parallel.metrics_sig, "{label}: per-operator metrics diverged");
}

#[test]
fn parallel_matches_serial_across_thread_counts() {
    let (catalog, disk) = workload(2000, 7);
    for sql in [TYPE_J, FLAT_WITH_THRESHOLD] {
        let serial = run(&catalog, &disk, sql, 1, 32);
        assert!(!serial.answer.is_empty(), "workload produced an empty answer for {sql}");
        for threads in [2usize, 4, 8] {
            let parallel = run(&catalog, &disk, sql, threads, 32);
            assert_exactly_equal(&serial, &parallel, &format!("{sql} @ threads={threads}"));
        }
    }
}

#[test]
fn scale8_threads4_speedup_with_exact_equality() {
    // The experiments binary's default scale is 8; its 8 MB leg is then
    // n = 8 × 8000 / 8 = 8000 tuples per relation with the scaled 32-page
    // buffer — the "scale-8 workload".
    let (catalog, disk) = workload(8000, 11);
    let best = |threads: usize| -> Run {
        let a = run(&catalog, &disk, TYPE_J, threads, 32);
        let b = run(&catalog, &disk, TYPE_J, threads, 32);
        if a.wall <= b.wall {
            a
        } else {
            b
        }
    };
    let serial = best(1);
    let parallel = best(4);
    assert_exactly_equal(&serial, &parallel, "scale-8 type J @ threads=4");

    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    if cores >= 4 {
        let speedup = serial.wall.as_secs_f64() / parallel.wall.as_secs_f64().max(1e-9);
        assert!(
            speedup >= 1.8,
            "threads=4 speedup {speedup:.2}× below the 1.8× bar \
             (serial {:?}, parallel {:?})",
            serial.wall,
            parallel.wall
        );
    } else {
        eprintln!(
            "note: only {cores} core(s) available; the ≥1.8× wall-time assertion \
             needs 4 and was skipped (exact-equality assertions still ran)"
        );
    }
}
