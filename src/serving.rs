//! Concurrent query serving: shared database state, sessions, prepared
//! queries, and the statement surface.
//!
//! One [`crate::Database`] owns a single [`Shared`] state — the simulated
//! disk, the catalog behind a readers-writer lock, the lazily-built column
//! statistics, the verified-plan cache, and the serving counters. Every
//! [`Session`] is a cheap `Clone` of an `Arc` over that state plus its own
//! per-session [`ExecConfig`], so sessions are `Send + Sync` and can run
//! read statements concurrently from many threads.
//!
//! Lock discipline (DESIGN.md §12): read statements take the catalog lock
//! **shared**, clone the `Arc<Catalog>` snapshot, and keep the shared guard
//! for the duration of the statement, so writers cannot interleave with a
//! running read. DDL/DML takes the lock **exclusively** and mutates a
//! copy-on-write clone (`Arc::make_mut`); every mutation bumps the catalog
//! version, which is what invalidates cached plans. Wall time spent waiting
//! for the lock is charged to the statement's serving report.

use crate::StatementResult;
use fuzzy_core::{Degree, Trapezoid};
use fuzzy_engine::exec::ExecConfig;
use fuzzy_engine::plan_cache::{CacheStats, PlanCache, Planned};
use fuzzy_engine::{Engine, EngineError, QueryOutcome, ServingCounters, StatsRegistry, Strategy};
use fuzzy_rel::{Catalog, Relation, Schema, StoredTable, Tuple};
use fuzzy_storage::SimDisk;
use std::sync::{Arc, RwLock, RwLockWriteGuard};
use std::time::{Duration, Instant};

/// The state one database's sessions share.
pub(crate) struct Shared {
    pub(crate) disk: SimDisk,
    /// The catalog, copy-on-write: readers clone the `Arc` snapshot under a
    /// shared guard; writers swap in a mutated clone under the exclusive
    /// guard.
    pub(crate) catalog: RwLock<Arc<Catalog>>,
    pub(crate) statistics: Arc<StatsRegistry>,
    pub(crate) plan_cache: Arc<PlanCache>,
    pub(crate) serving: Arc<ServingCounters>,
    pub(crate) persist_path: Option<std::path::PathBuf>,
}

impl Shared {
    pub(crate) fn new(catalog: Catalog, disk: SimDisk) -> Shared {
        Shared {
            disk,
            catalog: RwLock::new(Arc::new(catalog)),
            statistics: Arc::new(StatsRegistry::new(16)),
            plan_cache: Arc::new(PlanCache::default()),
            serving: Arc::new(ServingCounters::default()),
            persist_path: None,
        }
    }

    /// The current catalog snapshot (does not block writers afterwards).
    pub(crate) fn catalog_snapshot(&self) -> Arc<Catalog> {
        self.catalog.read().expect("catalog lock").clone()
    }
}

/// Counts a statement in flight for as long as it is alive (RAII so error
/// paths decrement too).
struct InFlight<'a>(&'a ServingCounters);

impl<'a> InFlight<'a> {
    fn enter(counters: &'a ServingCounters) -> InFlight<'a> {
        counters.enter();
        InFlight(counters)
    }
}

impl Drop for InFlight<'_> {
    fn drop(&mut self) {
        self.0.exit();
    }
}

/// Exclusive catalog access for DDL: derefs to [`Catalog`] through a
/// copy-on-write clone, so snapshots held by in-flight readers and prepared
/// statements are untouched. Mutations bump the catalog version (see
/// [`Catalog::version`]), invalidating cached plans.
pub struct CatalogWrite<'a> {
    guard: RwLockWriteGuard<'a, Arc<Catalog>>,
}

impl std::ops::Deref for CatalogWrite<'_> {
    type Target = Catalog;
    fn deref(&self) -> &Catalog {
        &self.guard
    }
}

impl std::ops::DerefMut for CatalogWrite<'_> {
    fn deref_mut(&mut self) -> &mut Catalog {
        Arc::make_mut(&mut self.guard)
    }
}

/// One client's handle on a shared database: an `Arc` of the shared state
/// plus this session's own execution configuration. Cloning a session (or
/// calling `Database::session()`) is cheap; handles are `Send + Sync` and
/// read statements from different sessions run concurrently.
#[derive(Clone)]
pub struct Session {
    pub(crate) shared: Arc<Shared>,
    pub(crate) config: ExecConfig,
}

impl Session {
    /// A new session over the same database with the same configuration.
    pub fn session(&self) -> Session {
        self.clone()
    }

    /// The session's execution configuration.
    pub fn config(&self) -> ExecConfig {
        self.config
    }

    /// Replaces the session's execution configuration (affects only this
    /// session; other handles keep theirs).
    pub fn set_exec_config(&mut self, config: ExecConfig) {
        self.config = config;
    }

    /// Sets this session's worker-thread count for sorts and merge-joins.
    /// Any value returns bit-identical answers; `1` is the serial path.
    pub fn set_threads(&mut self, threads: usize) {
        self.config.threads = threads.max(1);
    }

    /// Sets this session's default answer threshold: statements without an
    /// explicit `WITH D > z` clause are filtered to degrees `> z`. `None`
    /// restores the paper's `D > 0` default.
    pub fn set_default_threshold(&mut self, z: Option<f64>) {
        self.config.default_threshold = z;
    }

    /// An owned engine over the current catalog snapshot, wired to the
    /// database's statistics, plan cache, and serving counters. The engine
    /// does not hold the catalog lock: it sees the snapshot taken here.
    pub fn engine(&self) -> Engine {
        let (catalog, wait) = self.read_snapshot();
        self.engine_over(catalog, wait)
    }

    fn engine_over(&self, catalog: Arc<Catalog>, lock_wait: Duration) -> Engine {
        Engine::over(catalog, &self.shared.disk)
            .with_config(self.config)
            .with_statistics(self.shared.statistics.clone())
            .with_plan_cache(self.shared.plan_cache.clone())
            .with_serving_counters(self.shared.serving.clone())
            .with_lock_wait(lock_wait)
    }

    /// Takes a catalog snapshot under the shared lock, returning it together
    /// with the measured lock wait. The guard is released before returning —
    /// use [`Session::read_locked`] when the statement must exclude writers
    /// for its whole duration.
    fn read_snapshot(&self) -> (Arc<Catalog>, Duration) {
        let t0 = Instant::now();
        let guard = self.shared.catalog.read().expect("catalog lock");
        (guard.clone(), t0.elapsed())
    }

    /// Runs `body` over a catalog snapshot while *holding* the shared guard,
    /// so no writer can interleave with the statement. This is the read-side
    /// of the serving lock discipline.
    fn read_locked<T>(
        &self,
        body: impl FnOnce(&Session, Arc<Catalog>, Duration) -> Result<T, EngineError>,
    ) -> Result<T, EngineError> {
        let t0 = Instant::now();
        let guard = self.shared.catalog.read().expect("catalog lock");
        let wait = t0.elapsed();
        let _in = InFlight::enter(&self.shared.serving);
        body(self, guard.clone(), wait)
    }

    /// Takes the catalog lock exclusively (the write side of the serving
    /// lock discipline) and runs `body` with copy-on-write catalog access.
    fn write_locked<T>(
        &self,
        body: impl FnOnce(&Session, &mut CatalogWrite<'_>) -> Result<T, EngineError>,
    ) -> Result<T, EngineError> {
        let t0 = Instant::now();
        let guard = self.shared.catalog.write().expect("catalog lock");
        self.shared.serving.add_lock_wait(t0.elapsed());
        let _in = InFlight::enter(&self.shared.serving);
        let mut w = CatalogWrite { guard };
        body(self, &mut w)
    }

    /// Starts a query: `session.query(sql).strategy(..).threshold(..)
    /// .collect()`. The single entry point for SELECT statements (the old
    /// `query_with` / bare-relation shims delegate here).
    pub fn query(&self, sql: impl AsRef<str>) -> QueryBuilder {
        QueryBuilder {
            session: self.clone(),
            sql: sql.as_ref().to_string(),
            strategy: Strategy::Unnest,
        }
    }

    /// Parses and plans `sql` once, pinning the verified plan. Running the
    /// prepared statement skips parsing, classification, planning, and
    /// verification; after any DDL/DML it fails with
    /// [`EngineError::StalePlan`] until re-prepared.
    pub fn prepare(&self, sql: &str) -> Result<PreparedQuery, EngineError> {
        let q = fuzzy_sql::parse(sql)?;
        self.read_locked(|s, catalog, wait| {
            let version = catalog.version();
            let engine = s.engine_over(catalog, wait);
            let (planned, _info) = engine.plan_for(&q)?;
            Ok(PreparedQuery { session: s.clone(), query: q.clone(), planned, version })
        })
    }

    /// Executes one statement: SELECT, EXPLAIN [ANALYZE|VERIFY], CREATE
    /// TABLE, DEFINE TERM, INSERT, ANALYZE, DELETE, or UPDATE (see
    /// `fuzzy_sql::statement` for the grammar). Read statements take the
    /// catalog lock shared; DDL/DML takes it exclusively and bumps the
    /// catalog version (invalidating cached plans).
    ///
    /// DELETE and UPDATE match tuples whose WHERE-condition degree is
    /// positive (or meets the statement's `WITH D` threshold); matching is a
    /// fuzzy condition like any other, so a vague WHERE clause touches
    /// precisely the tuples that *possibly* satisfy it above the bar.
    pub fn execute(&self, sql: &str) -> Result<StatementResult, EngineError> {
        use fuzzy_sql::Statement;
        match fuzzy_sql::parse_statement(sql)? {
            Statement::Select(q) => self.read_locked(|s, catalog, wait| {
                let out = s.engine_over(catalog, wait).run(&q, Strategy::Unnest)?;
                Ok(StatementResult::Rows(out.answer))
            }),
            Statement::Explain { mode, query } => self.read_locked(|s, catalog, wait| {
                let engine = s.engine_over(catalog, wait);
                let text = match mode {
                    fuzzy_sql::ExplainMode::Plan => engine.explain_query(&query)?,
                    fuzzy_sql::ExplainMode::Analyze => engine.explain_analyze_query(&query)?.0,
                    fuzzy_sql::ExplainMode::Verify => engine.explain_verify_query(&query)?,
                };
                Ok(StatementResult::Explained(text))
            }),
            Statement::CreateTable { name, columns } => {
                use fuzzy_rel::AttrType;
                let attrs: Vec<fuzzy_rel::Attribute> = columns
                    .iter()
                    .map(|c| {
                        fuzzy_rel::Attribute::new(
                            c.name.clone(),
                            if c.is_text { AttrType::Text } else { AttrType::Number },
                        )
                    })
                    .collect();
                let mut schema = Schema::new(attrs);
                if let Some(key) = columns.iter().find(|c| c.key) {
                    schema = schema.with_key(&key.name);
                }
                self.create_table(&name, schema)?;
                Ok(StatementResult::Done)
            }
            Statement::DefineTerm { name, shape } => {
                let t = Trapezoid::new(shape.0, shape.1, shape.2, shape.3)
                    .map_err(EngineError::Fuzzy)?;
                self.define_term(&name, t);
                Ok(StatementResult::Done)
            }
            Statement::Insert { table, values, degree } => self.write_locked(|_s, cat| {
                let stored = cat
                    .table(&table)
                    .ok_or_else(|| EngineError::Bind(format!("unknown table {table:?}")))?
                    .clone();
                if values.len() != stored.schema().len() {
                    return Err(EngineError::Bind(format!(
                        "{} values for {} columns of {}",
                        values.len(),
                        stored.schema().len(),
                        stored.name()
                    )));
                }
                let vals = values
                    .iter()
                    .enumerate()
                    .map(|(i, o)| insert_value(cat, o, stored.schema().attr(i)))
                    .collect::<Result<Vec<_>, _>>()?;
                let d = Degree::new(degree).map_err(EngineError::Fuzzy)?;
                if d.is_positive() {
                    stored.file().append(&Tuple::new(vals, d).encode(stored.min_record_bytes()))?;
                    cat.bump_version();
                }
                Ok(StatementResult::Affected(usize::from(d.is_positive())))
            }),
            Statement::Analyze { table } => self.read_locked(|s, catalog, _wait| {
                use fuzzy_rel::AttrType;
                let names: Vec<String> = match table {
                    Some(t) => vec![t],
                    None => catalog.table_names().map(|n| n.to_string()).collect(),
                };
                let pool = fuzzy_storage::BufferPool::new(&s.shared.disk, s.config.buffer_pages);
                let mut built = 0usize;
                for name in names {
                    let t = catalog
                        .table(&name)
                        .ok_or_else(|| EngineError::Bind(format!("unknown table {name:?}")))?;
                    for (idx, attr) in t.schema().attributes().iter().enumerate() {
                        if attr.ty == AttrType::Number {
                            s.shared.statistics.histogram_for(t, idx, &pool)?;
                            built += 1;
                        }
                    }
                }
                Ok(StatementResult::Affected(built))
            }),
            Statement::Delete { table, predicates, threshold } => {
                self.rewrite_matching(&table, &predicates, threshold, |_t| None)
            }
            Statement::Update { table, assignments, predicates, threshold } => {
                // Resolve assignment targets and values against a snapshot
                // up front; the rewrite below re-locks exclusively.
                let (resolved, _) = self.read_locked(|_s, catalog, _wait| {
                    let stored = catalog
                        .table(&table)
                        .ok_or_else(|| EngineError::Bind(format!("unknown table {table:?}")))?;
                    let mut resolved: Vec<(usize, fuzzy_core::Value)> = Vec::new();
                    for (col, op) in &assignments {
                        let idx = stored.schema().index_of(&col.column).ok_or_else(|| {
                            EngineError::Bind(format!("no attribute {} in {}", col.column, table))
                        })?;
                        resolved
                            .push((idx, insert_value(&catalog, op, stored.schema().attr(idx))?));
                    }
                    Ok((resolved, ()))
                })?;
                self.rewrite_matching(&table, &predicates, threshold, move |t| {
                    let mut updated = t.clone();
                    for (idx, v) in &resolved {
                        updated.values[*idx] = v.clone();
                    }
                    Some(updated)
                })
            }
        }
    }

    /// Defines (or redefines) a linguistic term. Takes the catalog lock
    /// exclusively; bumps the version (cached plans may resolve the term).
    pub fn define_term(&self, name: impl AsRef<str>, shape: Trapezoid) {
        let _ = self.write_locked(|_s, cat| {
            cat.vocabulary_mut().define(name.as_ref(), shape);
            Ok(())
        });
    }

    /// Creates an empty table (exclusive lock; version bump).
    pub fn create_table(&self, name: &str, schema: Schema) -> Result<(), EngineError> {
        self.write_locked(|s, cat| {
            if cat.table(name).is_some() {
                return Err(EngineError::Bind(format!("table {name:?} already exists")));
            }
            cat.register(StoredTable::create(&s.shared.disk, name, schema));
            Ok(())
        })
    }

    /// Inserts one tuple (exclusive lock; version bump). Tuples with degree
    /// 0 are not members and are silently skipped, matching the membership
    /// criterion of Section 2.
    pub fn insert(&self, table: &str, tuple: Tuple) -> Result<(), EngineError> {
        self.write_locked(|_s, cat| {
            let t = cat
                .table(table)
                .ok_or_else(|| EngineError::Bind(format!("unknown table {table:?}")))?;
            if tuple.degree.is_positive() {
                t.file().append(&tuple.encode(t.min_record_bytes()))?;
                cat.bump_version();
            }
            Ok(())
        })
    }

    /// Bulk-loads tuples into a table (exclusive lock; version bump).
    pub fn load<I: IntoIterator<Item = Tuple>>(
        &self,
        table: &str,
        tuples: I,
    ) -> Result<(), EngineError> {
        self.write_locked(|_s, cat| {
            let t = cat
                .table(table)
                .ok_or_else(|| EngineError::Bind(format!("unknown table {table:?}")))?;
            t.load(tuples)?;
            cat.bump_version();
            Ok(())
        })
    }

    /// The current catalog snapshot (tables + vocabulary). Reads through it
    /// do not block writers; it reflects the catalog as of this call.
    pub fn catalog(&self) -> Arc<Catalog> {
        self.shared.catalog_snapshot()
    }

    /// Exclusive catalog access (registering externally built tables).
    /// Mutations through the guard copy-on-write the catalog and bump its
    /// version, invalidating cached plans.
    pub fn catalog_mut(&self) -> CatalogWrite<'_> {
        CatalogWrite { guard: self.shared.catalog.write().expect("catalog lock") }
    }

    /// The simulated disk (for I/O accounting in experiments).
    pub fn disk(&self) -> &SimDisk {
        &self.shared.disk
    }

    /// Exact counters of the shared verified-plan cache.
    pub fn plan_cache_stats(&self) -> CacheStats {
        self.shared.plan_cache.stats()
    }

    /// The database-wide serving counters (statements in flight, peak,
    /// total statements, accumulated lock wait).
    pub fn serving_counters(&self) -> Arc<ServingCounters> {
        self.shared.serving.clone()
    }

    /// Shared DELETE/UPDATE machinery: rewrites the table under the
    /// exclusive lock, applying `map` to matching tuples (`None` = delete).
    /// Returns the number of matches.
    fn rewrite_matching(
        &self,
        table: &str,
        predicates: &[fuzzy_sql::Predicate],
        threshold: Option<fuzzy_sql::Threshold>,
        map: impl Fn(&Tuple) -> Option<Tuple>,
    ) -> Result<StatementResult, EngineError> {
        self.write_locked(|s, cat| {
            let stored = cat
                .table(table)
                .ok_or_else(|| EngineError::Bind(format!("unknown table {table:?}")))?
                .clone();
            let pool = fuzzy_storage::BufferPool::new(&s.shared.disk, s.config.buffer_pages);
            let evaluator = fuzzy_engine::NaiveEvaluator::new(cat, &pool);
            let (z, strict) = match threshold {
                Some(t) => (Degree::clamped(t.z), t.strict),
                None => (Degree::ZERO, true),
            };
            let mut kept: Vec<Tuple> = Vec::new();
            let mut affected = 0usize;
            for t in stored.scan(&pool) {
                let t = t?;
                let d = evaluator.match_degree(stored.name(), stored.schema(), &t, predicates)?;
                if d.meets(z, strict) {
                    affected += 1;
                    if let Some(updated) = map(&t) {
                        kept.push(updated);
                    }
                } else {
                    kept.push(t);
                }
            }
            // Rewrite into a fresh file and swap it into the catalog
            // (register bumps the version).
            let fresh = fuzzy_storage::HeapFile::create(&s.shared.disk);
            {
                let mut w = fresh.bulk_writer();
                for t in &kept {
                    w.append(&t.encode(stored.min_record_bytes()))?;
                }
                w.finish()?;
            }
            cat.register(stored.with_file(stored.name().to_string(), fresh));
            Ok(StatementResult::Affected(affected))
        })
    }
}

/// Resolves an INSERT/UPDATE value operand against the target column.
fn insert_value(
    catalog: &Catalog,
    o: &fuzzy_sql::Operand,
    attr: &fuzzy_rel::Attribute,
) -> Result<fuzzy_core::Value, EngineError> {
    use fuzzy_core::Value;
    use fuzzy_rel::AttrType;
    use fuzzy_sql::Operand;
    Ok(match (o, attr.ty) {
        (Operand::Number(n), AttrType::Number) => Value::number(*n),
        (Operand::FuzzyLiteral(a, b, c, d), AttrType::Number) => {
            Value::fuzzy(Trapezoid::new(*a, *b, *c, *d).map_err(EngineError::Fuzzy)?)
        }
        (Operand::Term(t), AttrType::Text) => Value::text(t.clone()),
        (Operand::Term(t), AttrType::Number) => {
            let shape = catalog.vocabulary().resolve(t).map_err(EngineError::Fuzzy)?;
            Value::fuzzy(shape)
        }
        (other, ty) => {
            return Err(EngineError::Bind(format!(
                "value {other:?} does not fit {ty:?} column {}",
                attr.name
            )))
        }
    })
}

/// A fluent SELECT statement: configure, then [`QueryBuilder::collect`] the
/// answer or [`QueryBuilder::run`] for the full outcome. Holds the catalog
/// lock shared for the duration of the statement when it runs.
#[must_use = "a query builder does nothing until .collect()/.run()"]
pub struct QueryBuilder {
    session: Session,
    sql: String,
    strategy: Strategy,
}

impl QueryBuilder {
    /// Evaluation strategy (default: unnest + extended merge-join).
    pub fn strategy(mut self, strategy: Strategy) -> QueryBuilder {
        self.strategy = strategy;
        self
    }

    /// Answer threshold for this statement when the SQL carries no explicit
    /// `WITH D > z` clause (a pure post-filter; degrees are unchanged).
    pub fn threshold(mut self, z: f64) -> QueryBuilder {
        self.session.config.default_threshold = Some(z);
        self
    }

    /// Worker threads for this statement's sorts and merge-joins.
    pub fn threads(mut self, threads: usize) -> QueryBuilder {
        self.session.config.threads = threads.max(1);
        self
    }

    /// Replaces the whole execution configuration for this statement.
    pub fn config(mut self, config: ExecConfig) -> QueryBuilder {
        self.session.config = config;
        self
    }

    /// Runs the statement and returns the full outcome (answer, I/O
    /// counters, CPU time, per-operator metrics, serving report).
    pub fn run(self) -> Result<QueryOutcome, EngineError> {
        let q = fuzzy_sql::parse(&self.sql)?;
        self.session
            .read_locked(|s, catalog, wait| s.engine_over(catalog, wait).run(&q, self.strategy))
    }

    /// Runs the statement and returns just the answer relation.
    pub fn collect(self) -> Result<Relation, EngineError> {
        Ok(self.run()?.answer)
    }

    /// Renders the deterministic `EXPLAIN` text without running.
    pub fn explain(self) -> Result<String, EngineError> {
        let q = fuzzy_sql::parse(&self.sql)?;
        self.session.read_locked(|s, catalog, wait| s.engine_over(catalog, wait).explain_query(&q))
    }

    /// Runs the statement and renders `EXPLAIN ANALYZE` (the plan annotated
    /// with actual counters, plus the serving section).
    pub fn explain_analyze(self) -> Result<(String, QueryOutcome), EngineError> {
        let q = fuzzy_sql::parse(&self.sql)?;
        self.session
            .read_locked(|s, catalog, wait| s.engine_over(catalog, wait).explain_analyze_query(&q))
    }

    /// Renders the `EXPLAIN VERIFY` text (the static verifier's report).
    pub fn explain_verify(self) -> Result<String, EngineError> {
        let q = fuzzy_sql::parse(&self.sql)?;
        self.session
            .read_locked(|s, catalog, wait| s.engine_over(catalog, wait).explain_verify_query(&q))
    }
}

/// A statement prepared once against a catalog version: parsing,
/// classification, planning, and static verification happened at
/// [`Session::prepare`] time, and every [`PreparedQuery::run`] replays the
/// pinned plan with zero re-planning and zero re-verification. After any
/// DDL/DML bumps the catalog version, running fails with
/// [`EngineError::StalePlan`] until the statement is prepared again.
pub struct PreparedQuery {
    session: Session,
    query: fuzzy_sql::Query,
    planned: Planned,
    version: u64,
}

impl PreparedQuery {
    /// The catalog version the plan is pinned to.
    pub fn planned_version(&self) -> u64 {
        self.version
    }

    /// Runs the pinned plan. Holds the catalog lock shared for the
    /// statement; fails with [`EngineError::StalePlan`] if the catalog has
    /// moved since [`Session::prepare`].
    pub fn run(&self) -> Result<QueryOutcome, EngineError> {
        self.session.read_locked(|s, catalog, wait| {
            self.check_fresh(&catalog)?;
            let info = fuzzy_engine::ServingInfo {
                cache_hit: Some(true),
                plan_verifications: 0,
                cache: s.shared.plan_cache.stats(),
                ..Default::default()
            };
            s.engine_over(catalog, wait).run_planned(&self.query, &self.planned, info)
        })
    }

    /// Runs the pinned plan and returns just the answer relation.
    pub fn collect(&self) -> Result<Relation, EngineError> {
        Ok(self.run()?.answer)
    }

    /// Renders the deterministic `EXPLAIN` text for the prepared statement
    /// (stale-checked like [`PreparedQuery::run`]).
    pub fn explain(&self) -> Result<String, EngineError> {
        self.session.read_locked(|s, catalog, wait| {
            self.check_fresh(&catalog)?;
            s.engine_over(catalog, wait).explain_query(&self.query)
        })
    }

    fn check_fresh(&self, catalog: &Catalog) -> Result<(), EngineError> {
        if catalog.version() != self.version {
            return Err(EngineError::StalePlan {
                planned_version: self.version,
                catalog_version: catalog.version(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Session>();
        assert_send_sync::<PreparedQuery>();
        assert_send_sync::<QueryBuilder>();
    }
}
