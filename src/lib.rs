//! # fuzzy-db
//!
//! A fuzzy relational database with efficient processing of nested Fuzzy SQL
//! queries — a from-scratch Rust reproduction of
//!
//! > Q. Yang, W. Zhang, C. Liu, J. Wu, C. Yu, H. Nakajima, N. D. Rishe.
//! > *Efficient Processing of Nested Fuzzy SQL Queries in a Fuzzy Database.*
//! > IEEE TKDE 13(6), 2001 (earlier version at IEEE ICDE 1995).
//!
//! Relations are fuzzy sets of fuzzy tuples: every tuple carries a
//! membership degree, and ill-known attribute values are trapezoidal
//! possibility distributions. Nested queries (`IN`, `NOT IN`, `θ ALL/SOME`,
//! aggregate sub-queries, K-level chains) are **unnested** into flat plans
//! evaluated with an **extended merge-join** over the interval order of
//! Definition 3.1 — orders of magnitude faster than the nested-loop method a
//! nested query would otherwise require.
//!
//! ## Quickstart
//!
//! ```
//! use fuzzy_db::{Database, Strategy};
//! use fuzzy_db::rel::{AttrType, Schema, Tuple};
//! use fuzzy_db::core::{Trapezoid, Value};
//!
//! let mut db = Database::new();
//! // Linguistic vocabulary: terms usable in queries.
//! db.define_term("medium young", Trapezoid::new(20.0, 25.0, 30.0, 35.0)?);
//! db.define_term("middle age", Trapezoid::new(28.0, 33.0, 41.0, 51.0)?);
//!
//! db.create_table(
//!     "F",
//!     Schema::of(&[("NAME", AttrType::Text), ("AGE", AttrType::Number)]),
//! )?;
//! // Ill-known data: Ann's age is only vaguely known.
//! db.insert("F", Tuple::full(vec![
//!     Value::text("Ann"),
//!     Value::fuzzy(Trapezoid::triangular(30.0, 35.0, 40.0)?),
//! ]))?;
//!
//! let answer = db.query("SELECT F.NAME FROM F WHERE F.AGE = 'medium young'")?;
//! assert_eq!(answer.len(), 1);
//! assert!((answer.tuples()[0].degree.value() - 0.5).abs() < 1e-9);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Crate map
//!
//! * [`core`] (re-export of `fuzzy-core`) — degrees, trapezoids, possibility
//!   comparisons, fuzzy arithmetic, vocabularies;
//! * [`storage`] — simulated disk, slotted pages, buffer pool, external sort,
//!   cost model;
//! * [`rel`] — schemas, tuples, fuzzy relations, stored tables, catalog;
//! * [`sql`] — Fuzzy SQL parser and query-type classifier;
//! * [`engine`] — the unnesting transformations, the extended merge-join, the
//!   nested-loop baseline, and the naive reference evaluator;
//! * [`workload`] — the paper's example datasets and the Section 9 synthetic
//!   workload generator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fuzzy_core as core;
pub use fuzzy_engine as engine;
pub use fuzzy_rel as rel;
pub use fuzzy_sql as sql;
pub use fuzzy_storage as storage;
pub use fuzzy_workload as workload;

pub use fuzzy_engine::{EngineError, QueryOutcome, Strategy};

use fuzzy_core::{Degree, Trapezoid};
use fuzzy_engine::{exec::ExecConfig, Engine};
use fuzzy_rel::{Catalog, Relation, Schema, StoredTable, Tuple};
use fuzzy_storage::{CostModel, SimDisk};

/// A self-contained fuzzy database: a simulated disk, a catalog, a
/// vocabulary, and the query engine.
pub struct Database {
    disk: SimDisk,
    catalog: Catalog,
    config: ExecConfig,
    cost: CostModel,
    persist_path: Option<std::path::PathBuf>,
    statistics: std::rc::Rc<fuzzy_engine::StatsRegistry>,
}

impl Default for Database {
    fn default() -> Self {
        Database::new()
    }
}

impl Database {
    /// An empty database with an empty vocabulary.
    pub fn new() -> Database {
        Database {
            disk: SimDisk::with_default_page_size(),
            catalog: Catalog::new(),
            config: ExecConfig::default(),
            cost: CostModel::default(),
            persist_path: None,
            statistics: std::rc::Rc::new(fuzzy_engine::StatsRegistry::new(16)),
        }
    }

    /// A database preloaded with the paper's calibrated vocabulary
    /// ("medium young", "about 35", "middle age", "high", …).
    pub fn with_paper_vocabulary() -> Database {
        Database {
            disk: SimDisk::with_default_page_size(),
            catalog: Catalog::with_paper_vocabulary(),
            config: ExecConfig::default(),
            cost: CostModel::default(),
            persist_path: None,
            statistics: std::rc::Rc::new(fuzzy_engine::StatsRegistry::new(16)),
        }
    }

    /// Wraps an existing catalog + disk (e.g. from `fuzzy_workload`).
    pub fn from_catalog(catalog: Catalog, disk: SimDisk) -> Database {
        Database {
            disk,
            catalog,
            config: ExecConfig::default(),
            cost: CostModel::default(),
            persist_path: None,
            statistics: std::rc::Rc::new(fuzzy_engine::StatsRegistry::new(16)),
        }
    }

    /// Opens (or creates) a persistent database rooted at `path`: table pages
    /// live in `<path>.pages` and the catalog manifest in `<path>.manifest`.
    /// Call [`Database::save`] to persist catalog changes (new tables,
    /// vocabulary, appended page lists); tuple data writes go straight to the
    /// page file.
    pub fn open(path: impl AsRef<std::path::Path>) -> Result<Database, EngineError> {
        let base = path.as_ref();
        let pages = base.with_extension("pages");
        let manifest = base.with_extension("manifest");
        let disk = SimDisk::open_file(&pages, fuzzy_storage::DEFAULT_PAGE_SIZE)?;
        let catalog = match std::fs::read(&manifest) {
            Ok(bytes) => fuzzy_rel::manifest::decode(&bytes, &disk)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Catalog::new(),
            Err(e) => {
                return Err(EngineError::Storage(fuzzy_storage::StorageError::Corrupt(format!(
                    "cannot read manifest: {e}"
                ))))
            }
        };
        let mut db = Database::from_catalog(catalog, disk);
        db.persist_path = Some(manifest);
        Ok(db)
    }

    /// Writes the catalog manifest of a database opened with
    /// [`Database::open`]. Errors for purely in-memory databases.
    pub fn save(&self) -> Result<(), EngineError> {
        let path = self.persist_path.as_ref().ok_or_else(|| {
            EngineError::Unsupported(
                "this database is in-memory; open it with Database::open to persist".into(),
            )
        })?;
        let bytes = fuzzy_rel::manifest::encode(&self.catalog);
        std::fs::write(path, bytes).map_err(|e| {
            EngineError::Storage(fuzzy_storage::StorageError::Corrupt(format!(
                "cannot write manifest: {e}"
            )))
        })
    }

    /// Defines (or redefines) a linguistic term.
    pub fn define_term(&mut self, name: impl AsRef<str>, shape: Trapezoid) {
        self.catalog.vocabulary_mut().define(name, shape);
    }

    /// Creates an empty table.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> Result<(), EngineError> {
        if self.catalog.table(name).is_some() {
            return Err(EngineError::Bind(format!("table {name:?} already exists")));
        }
        self.catalog.register(StoredTable::create(&self.disk, name, schema));
        Ok(())
    }

    /// Inserts one tuple. Tuples with degree 0 are not members and are
    /// silently skipped, matching the membership criterion of Section 2.
    pub fn insert(&mut self, table: &str, tuple: Tuple) -> Result<(), EngineError> {
        let t = self
            .catalog
            .table(table)
            .ok_or_else(|| EngineError::Bind(format!("unknown table {table:?}")))?;
        if tuple.degree.is_positive() {
            t.file().append(&tuple.encode(t.min_record_bytes()))?;
        }
        Ok(())
    }

    /// Bulk-loads tuples into a table.
    pub fn load<I: IntoIterator<Item = Tuple>>(
        &mut self,
        table: &str,
        tuples: I,
    ) -> Result<(), EngineError> {
        let t = self
            .catalog
            .table(table)
            .ok_or_else(|| EngineError::Bind(format!("unknown table {table:?}")))?;
        t.load(tuples)?;
        Ok(())
    }

    /// Runs a query with the default strategy (unnest + extended merge-join)
    /// and returns the answer relation.
    pub fn query(&self, sql: &str) -> Result<Relation, EngineError> {
        Ok(self.query_with(sql, Strategy::Unnest)?.answer)
    }

    /// Runs a query with an explicit strategy, returning the full outcome
    /// (answer, I/O counters, CPU time, plan label).
    pub fn query_with(&self, sql: &str, strategy: Strategy) -> Result<QueryOutcome, EngineError> {
        Engine::new(&self.catalog, &self.disk)
            .with_config(self.config)
            .with_statistics(self.statistics.clone())
            .run_sql(sql, strategy)
    }

    /// Explains how a query would be evaluated: its classified nesting type
    /// (Sections 4-8 of the paper), the unnested plan, and deterministic cost
    /// estimates.
    pub fn explain(&self, sql: &str) -> Result<String, EngineError> {
        Engine::new(&self.catalog, &self.disk)
            .with_config(self.config)
            .with_statistics(self.statistics.clone())
            .explain(sql)
    }

    /// Runs the query and renders the `EXPLAIN` output annotated with the
    /// *actual* per-operator counters and wall times (`EXPLAIN ANALYZE`).
    pub fn explain_analyze(&self, sql: &str) -> Result<String, EngineError> {
        let (text, _) = Engine::new(&self.catalog, &self.disk)
            .with_config(self.config)
            .with_statistics(self.statistics.clone())
            .explain_analyze(sql)?;
        Ok(text)
    }

    /// Renders the `EXPLAIN VERIFY` output for a query: the static plan
    /// verifier's report — the rewrite rule applied, the threshold push-down
    /// bound, every physical operator's required and delivered properties,
    /// and any violations (see `fuzzy_engine::verify`).
    pub fn explain_verify(&self, sql: &str) -> Result<String, EngineError> {
        Engine::new(&self.catalog, &self.disk)
            .with_config(self.config)
            .with_statistics(self.statistics.clone())
            .explain_verify(sql)
    }

    /// The catalog (tables + vocabulary).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable catalog access (registering externally built tables).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// The simulated disk (for I/O accounting in experiments).
    pub fn disk(&self) -> &SimDisk {
        &self.disk
    }

    /// Overrides the execution configuration.
    pub fn set_exec_config(&mut self, config: ExecConfig) {
        self.config = config;
    }

    /// The cost model converting I/O counts to time.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Overrides the cost model.
    pub fn set_cost_model(&mut self, cost: CostModel) {
        self.cost = cost;
    }

    /// Reads a full table into memory (debugging/tests).
    pub fn table_contents(&self, table: &str) -> Result<Relation, EngineError> {
        let t = self
            .catalog
            .table(table)
            .ok_or_else(|| EngineError::Bind(format!("unknown table {table:?}")))?;
        let pool = fuzzy_storage::BufferPool::new(&self.disk, self.config.buffer_pages);
        Ok(t.to_relation(&pool)?)
    }

    /// A convenience threshold helper: keeps only rows with degree > `z`.
    pub fn threshold(rel: &Relation, z: f64) -> Relation {
        rel.with_threshold(Degree::clamped(z), true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzy_core::Value;
    use fuzzy_rel::AttrType;

    fn tiny_db() -> Database {
        let mut db = Database::with_paper_vocabulary();
        db.create_table(
            "PEOPLE",
            Schema::of(&[("NAME", AttrType::Text), ("AGE", AttrType::Number)]),
        )
        .unwrap();
        db
    }

    #[test]
    fn create_insert_query_roundtrip() {
        let mut db = tiny_db();
        db.insert("PEOPLE", Tuple::full(vec![Value::text("Ann"), Value::number(24.0)])).unwrap();
        db.insert("PEOPLE", Tuple::full(vec![Value::text("Zed"), Value::number(70.0)])).unwrap();
        let ans =
            db.query("SELECT PEOPLE.NAME FROM PEOPLE WHERE PEOPLE.AGE = 'medium young'").unwrap();
        assert_eq!(ans.len(), 1);
        assert_eq!(ans.tuples()[0].values[0], Value::text("Ann"));
        assert!((ans.tuples()[0].degree.value() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = tiny_db();
        let err = db.create_table("people", Schema::of(&[("X", AttrType::Number)])).unwrap_err();
        assert!(err.to_string().contains("already exists"));
    }

    #[test]
    fn zero_degree_inserts_skipped() {
        let mut db = tiny_db();
        db.insert(
            "PEOPLE",
            Tuple::new(vec![Value::text("ghost"), Value::number(1.0)], Degree::ZERO),
        )
        .unwrap();
        assert_eq!(db.table_contents("PEOPLE").unwrap().len(), 0);
    }

    #[test]
    fn unknown_table_errors() {
        let db = Database::new();
        assert!(db.query("SELECT X.A FROM X").is_err());
        let mut db = Database::new();
        assert!(db.insert("X", Tuple::full(vec![Value::number(1.0)])).is_err());
    }

    #[test]
    fn strategies_agree_via_facade() {
        let mut db = tiny_db();
        db.load(
            "PEOPLE",
            (0..20).map(|i| {
                Tuple::full(vec![Value::text(format!("p{i}")), Value::number(20.0 + i as f64)])
            }),
        )
        .unwrap();
        let sql = "SELECT PEOPLE.NAME FROM PEOPLE WHERE PEOPLE.AGE = 'medium young'";
        let a = db.query_with(sql, Strategy::Unnest).unwrap();
        let b = db.query_with(sql, Strategy::Naive).unwrap();
        assert_eq!(a.answer.canonicalized(), b.answer.canonicalized());
        assert!(a.measurement.io.reads > 0);
    }

    #[test]
    fn threshold_helper() {
        let mut db = tiny_db();
        db.insert("PEOPLE", Tuple::full(vec![Value::text("Ann"), Value::number(23.0)])).unwrap();
        let ans =
            db.query("SELECT PEOPLE.NAME FROM PEOPLE WHERE PEOPLE.AGE = 'medium young'").unwrap();
        assert_eq!(Database::threshold(&ans, 0.5).len(), 1); // degree 0.6
        assert_eq!(Database::threshold(&ans, 0.65).len(), 0);
    }
}

/// The result of [`Database::execute`].
#[derive(Debug, Clone)]
pub enum StatementResult {
    /// A SELECT answer.
    Rows(Relation),
    /// Tuples inserted, deleted, or updated.
    Affected(usize),
    /// The rendered text of an `EXPLAIN`, `EXPLAIN ANALYZE`, or
    /// `EXPLAIN VERIFY` statement.
    Explained(String),
    /// A DDL statement (CREATE TABLE, DEFINE TERM) succeeded.
    Done,
}

impl Database {
    /// Executes one statement: SELECT, CREATE TABLE, DEFINE TERM, INSERT,
    /// DELETE, or UPDATE (see `fuzzy_sql::statement` for the grammar).
    ///
    /// DELETE and UPDATE match tuples whose WHERE-condition degree is
    /// positive (or meets the statement's `WITH D` threshold); matching is a
    /// fuzzy condition like any other, so a vague WHERE clause deletes
    /// precisely the tuples that *possibly* satisfy it above the bar.
    /// Rewrites allocate fresh pages; old pages are not reclaimed (the
    /// storage engine has no free list — a documented simplification).
    pub fn execute(&mut self, sql: &str) -> Result<StatementResult, EngineError> {
        use fuzzy_rel::AttrType;
        use fuzzy_sql::Statement;
        match fuzzy_sql::parse_statement(sql)? {
            Statement::Select(q) => {
                let out = Engine::new(&self.catalog, &self.disk)
                    .with_config(self.config)
                    .run(&q, Strategy::Unnest)?;
                Ok(StatementResult::Rows(out.answer))
            }
            Statement::Explain { mode, query } => {
                let engine = Engine::new(&self.catalog, &self.disk)
                    .with_config(self.config)
                    .with_statistics(self.statistics.clone());
                let text = match mode {
                    fuzzy_sql::ExplainMode::Plan => engine.explain_query(&query)?,
                    fuzzy_sql::ExplainMode::Analyze => engine.explain_analyze_query(&query)?.0,
                    fuzzy_sql::ExplainMode::Verify => engine.explain_verify_query(&query)?,
                };
                Ok(StatementResult::Explained(text))
            }
            Statement::CreateTable { name, columns } => {
                let attrs: Vec<(String, AttrType)> = columns
                    .iter()
                    .map(|c| {
                        (c.name.clone(), if c.is_text { AttrType::Text } else { AttrType::Number })
                    })
                    .collect();
                let mut schema = Schema::new(
                    attrs.iter().map(|(n, t)| fuzzy_rel::Attribute::new(n.clone(), *t)).collect(),
                );
                if let Some(key) = columns.iter().find(|c| c.key) {
                    schema = schema.with_key(&key.name);
                }
                self.create_table(&name, schema)?;
                Ok(StatementResult::Done)
            }
            Statement::DefineTerm { name, shape } => {
                let t = Trapezoid::new(shape.0, shape.1, shape.2, shape.3)
                    .map_err(EngineError::Fuzzy)?;
                self.define_term(&name, t);
                Ok(StatementResult::Done)
            }
            Statement::Insert { table, values, degree } => {
                let stored = self
                    .catalog
                    .table(&table)
                    .ok_or_else(|| EngineError::Bind(format!("unknown table {table:?}")))?
                    .clone();
                if values.len() != stored.schema().len() {
                    return Err(EngineError::Bind(format!(
                        "{} values for {} columns of {}",
                        values.len(),
                        stored.schema().len(),
                        stored.name()
                    )));
                }
                let vals = values
                    .iter()
                    .enumerate()
                    .map(|(i, o)| self.insert_value(o, stored.schema().attr(i)))
                    .collect::<Result<Vec<_>, _>>()?;
                let d = Degree::new(degree).map_err(EngineError::Fuzzy)?;
                self.insert(&table, Tuple::new(vals, d))?;
                Ok(StatementResult::Affected(usize::from(d.is_positive())))
            }
            Statement::Analyze { table } => {
                let names: Vec<String> = match table {
                    Some(t) => vec![t],
                    None => self.catalog.table_names().map(|s| s.to_string()).collect(),
                };
                let pool = fuzzy_storage::BufferPool::new(&self.disk, self.config.buffer_pages);
                let mut built = 0usize;
                for name in names {
                    let t = self
                        .catalog
                        .table(&name)
                        .ok_or_else(|| EngineError::Bind(format!("unknown table {name:?}")))?
                        .clone();
                    for (idx, attr) in t.schema().attributes().iter().enumerate() {
                        if attr.ty == AttrType::Number {
                            self.statistics.histogram_for(&t, idx, &pool)?;
                            built += 1;
                        }
                    }
                }
                Ok(StatementResult::Affected(built))
            }
            Statement::Delete { table, predicates, threshold } => {
                self.rewrite_matching(&table, &predicates, threshold, |_t| None)
            }
            Statement::Update { table, assignments, predicates, threshold } => {
                let stored = self
                    .catalog
                    .table(&table)
                    .ok_or_else(|| EngineError::Bind(format!("unknown table {table:?}")))?
                    .clone();
                // Resolve assignment targets and values up front.
                let mut resolved: Vec<(usize, fuzzy_core::Value)> = Vec::new();
                for (col, op) in &assignments {
                    let idx = stored.schema().index_of(&col.column).ok_or_else(|| {
                        EngineError::Bind(format!("no attribute {} in {}", col.column, table))
                    })?;
                    resolved.push((idx, self.insert_value(op, stored.schema().attr(idx))?));
                }
                self.rewrite_matching(&table, &predicates, threshold, move |t| {
                    let mut updated = t.clone();
                    for (idx, v) in &resolved {
                        updated.values[*idx] = v.clone();
                    }
                    Some(updated)
                })
            }
        }
    }

    /// Resolves an INSERT/UPDATE value operand against the target column.
    fn insert_value(
        &self,
        o: &fuzzy_sql::Operand,
        attr: &fuzzy_rel::Attribute,
    ) -> Result<fuzzy_core::Value, EngineError> {
        use fuzzy_core::Value;
        use fuzzy_rel::AttrType;
        use fuzzy_sql::Operand;
        Ok(match (o, attr.ty) {
            (Operand::Number(n), AttrType::Number) => Value::number(*n),
            (Operand::FuzzyLiteral(a, b, c, d), AttrType::Number) => {
                Value::fuzzy(Trapezoid::new(*a, *b, *c, *d).map_err(EngineError::Fuzzy)?)
            }
            (Operand::Term(t), AttrType::Text) => Value::text(t.clone()),
            (Operand::Term(t), AttrType::Number) => {
                let shape = self.catalog.vocabulary().resolve(t).map_err(EngineError::Fuzzy)?;
                Value::fuzzy(shape)
            }
            (other, ty) => {
                return Err(EngineError::Bind(format!(
                    "value {other:?} does not fit {ty:?} column {}",
                    attr.name
                )))
            }
        })
    }

    /// Shared DELETE/UPDATE machinery: rewrites the table, applying `map` to
    /// matching tuples (`None` = delete). Returns the number of matches.
    fn rewrite_matching(
        &mut self,
        table: &str,
        predicates: &[fuzzy_sql::Predicate],
        threshold: Option<fuzzy_sql::Threshold>,
        map: impl Fn(&Tuple) -> Option<Tuple>,
    ) -> Result<StatementResult, EngineError> {
        let stored = self
            .catalog
            .table(table)
            .ok_or_else(|| EngineError::Bind(format!("unknown table {table:?}")))?
            .clone();
        let pool = fuzzy_storage::BufferPool::new(&self.disk, self.config.buffer_pages);
        let evaluator = fuzzy_engine::NaiveEvaluator::new(&self.catalog, &pool);
        let (z, strict) = match threshold {
            Some(t) => (Degree::clamped(t.z), t.strict),
            None => (Degree::ZERO, true),
        };
        let mut kept: Vec<Tuple> = Vec::new();
        let mut affected = 0usize;
        for t in stored.scan(&pool) {
            let t = t?;
            let d = evaluator.match_degree(stored.name(), stored.schema(), &t, predicates)?;
            if d.meets(z, strict) {
                affected += 1;
                if let Some(updated) = map(&t) {
                    kept.push(updated);
                }
            } else {
                kept.push(t);
            }
        }
        // Rewrite into a fresh file and swap it into the catalog.
        let fresh = fuzzy_storage::HeapFile::create(&self.disk);
        {
            let mut w = fresh.bulk_writer();
            for t in &kept {
                w.append(&t.encode(stored.min_record_bytes()))?;
            }
            w.finish()?;
        }
        self.catalog.register(stored.with_file(stored.name().to_string(), fresh));
        Ok(StatementResult::Affected(affected))
    }
}
