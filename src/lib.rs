//! # fuzzy-db
//!
//! A fuzzy relational database with efficient processing of nested Fuzzy SQL
//! queries — a from-scratch Rust reproduction of
//!
//! > Q. Yang, W. Zhang, C. Liu, J. Wu, C. Yu, H. Nakajima, N. D. Rishe.
//! > *Efficient Processing of Nested Fuzzy SQL Queries in a Fuzzy Database.*
//! > IEEE TKDE 13(6), 2001 (earlier version at IEEE ICDE 1995).
//!
//! Relations are fuzzy sets of fuzzy tuples: every tuple carries a
//! membership degree, and ill-known attribute values are trapezoidal
//! possibility distributions. Nested queries (`IN`, `NOT IN`, `θ ALL/SOME`,
//! aggregate sub-queries, K-level chains) are **unnested** into flat plans
//! evaluated with an **extended merge-join** over the interval order of
//! Definition 3.1 — orders of magnitude faster than the nested-loop method a
//! nested query would otherwise require.
//!
//! ## Quickstart
//!
//! ```
//! use fuzzy_db::Database;
//! use fuzzy_db::rel::{AttrType, Schema, Tuple};
//! use fuzzy_db::core::{Trapezoid, Value};
//!
//! let mut db = Database::new();
//! // Linguistic vocabulary: terms usable in queries.
//! db.define_term("medium young", Trapezoid::new(20.0, 25.0, 30.0, 35.0)?);
//! db.define_term("middle age", Trapezoid::new(28.0, 33.0, 41.0, 51.0)?);
//!
//! db.create_table(
//!     "F",
//!     Schema::of(&[("NAME", AttrType::Text), ("AGE", AttrType::Number)]),
//! )?;
//! // Ill-known data: Ann's age is only vaguely known.
//! db.insert("F", Tuple::full(vec![
//!     Value::text("Ann"),
//!     Value::fuzzy(Trapezoid::triangular(30.0, 35.0, 40.0)?),
//! ]))?;
//!
//! let answer = db.query("SELECT F.NAME FROM F WHERE F.AGE = 'medium young'").collect()?;
//! assert_eq!(answer.len(), 1);
//! assert!((answer.tuples()[0].degree.value() - 0.5).abs() < 1e-9);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Concurrent serving
//!
//! A [`Database`] is a handle over shared state (disk, catalog, statistics,
//! verified-plan cache, serving counters). [`Database::session`] hands out
//! cheap [`Session`] clones that are `Send + Sync`: read statements run
//! concurrently under a shared catalog lock while DDL/DML briefly takes it
//! exclusively, bumps the catalog version, and thereby invalidates cached
//! plans (see `DESIGN.md` §12 and `tests/concurrent_serving.rs`).
//!
//! ```
//! use fuzzy_db::Database;
//! use fuzzy_db::rel::{AttrType, Schema, Tuple};
//! use fuzzy_db::core::Value;
//!
//! let mut db = Database::new();
//! db.create_table("R", Schema::of(&[("X", AttrType::Number)]))?;
//! db.insert("R", Tuple::full(vec![Value::number(1.0)]))?;
//! let session = db.session();
//! let handle = std::thread::spawn(move || {
//!     session.query("SELECT R.X FROM R").collect().map(|ans| ans.len())
//! });
//! assert_eq!(handle.join().unwrap()?, 1);
//! // The same statement again: answered from the verified-plan cache.
//! assert_eq!(db.query("SELECT R.X FROM R").collect()?.len(), 1);
//! assert!(db.plan_cache_stats().hits >= 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Crate map
//!
//! * [`core`] (re-export of `fuzzy-core`) — degrees, trapezoids, possibility
//!   comparisons, fuzzy arithmetic, vocabularies;
//! * [`storage`] — simulated disk, slotted pages, buffer pool, external sort,
//!   cost model;
//! * [`rel`] — schemas, tuples, fuzzy relations, stored tables, catalog;
//! * [`sql`] — Fuzzy SQL parser and query-type classifier;
//! * [`engine`] — the unnesting transformations, the extended merge-join, the
//!   nested-loop baseline, and the naive reference evaluator;
//! * [`workload`] — the paper's example datasets and the Section 9 synthetic
//!   workload generator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fuzzy_core as core;
pub use fuzzy_engine as engine;
pub use fuzzy_rel as rel;
pub use fuzzy_sql as sql;
pub use fuzzy_storage as storage;
pub use fuzzy_workload as workload;

mod serving;

pub use fuzzy_engine::plan_cache::CacheStats;
pub use fuzzy_engine::{EngineError, QueryOutcome, ServingCounters, Strategy};
pub use serving::{CatalogWrite, PreparedQuery, QueryBuilder, Session};

use fuzzy_core::{Degree, Trapezoid};
use fuzzy_engine::exec::ExecConfig;
use fuzzy_rel::{Catalog, Relation, Schema, Tuple};
use fuzzy_storage::{CostModel, SimDisk};
use serving::Shared;
use std::sync::Arc;

/// A self-contained fuzzy database: a simulated disk, a catalog, a
/// vocabulary, the query engine, and the serving state (plan cache +
/// counters) its sessions share.
///
/// `Database` itself is the **root session** plus the cost model: every
/// query/DDL method delegates to an owned [`Session`], and
/// [`Database::session`] clones further handles for other threads.
pub struct Database {
    session: Session,
    cost: CostModel,
}

impl Default for Database {
    fn default() -> Self {
        Database::new()
    }
}

impl Database {
    fn from_shared(shared: Shared) -> Database {
        Database {
            session: Session { shared: Arc::new(shared), config: ExecConfig::default() },
            cost: CostModel::default(),
        }
    }

    /// An empty database with an empty vocabulary.
    pub fn new() -> Database {
        Database::from_shared(Shared::new(Catalog::new(), SimDisk::with_default_page_size()))
    }

    /// A database preloaded with the paper's calibrated vocabulary
    /// ("medium young", "about 35", "middle age", "high", …).
    pub fn with_paper_vocabulary() -> Database {
        Database::from_shared(Shared::new(
            Catalog::with_paper_vocabulary(),
            SimDisk::with_default_page_size(),
        ))
    }

    /// Wraps an existing catalog + disk (e.g. from `fuzzy_workload`).
    pub fn from_catalog(catalog: Catalog, disk: SimDisk) -> Database {
        Database::from_shared(Shared::new(catalog, disk))
    }

    /// Opens (or creates) a persistent database rooted at `path`: table pages
    /// live in `<path>.pages` and the catalog manifest in `<path>.manifest`.
    /// Call [`Database::save`] to persist catalog changes (new tables,
    /// vocabulary, appended page lists); tuple data writes go straight to the
    /// page file.
    pub fn open(path: impl AsRef<std::path::Path>) -> Result<Database, EngineError> {
        let base = path.as_ref();
        let pages = base.with_extension("pages");
        let manifest = base.with_extension("manifest");
        let disk = SimDisk::open_file(&pages, fuzzy_storage::DEFAULT_PAGE_SIZE)?;
        let catalog = match std::fs::read(&manifest) {
            Ok(bytes) => fuzzy_rel::manifest::decode(&bytes, &disk)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Catalog::new(),
            Err(e) => {
                return Err(EngineError::Storage(fuzzy_storage::StorageError::Corrupt(format!(
                    "cannot read manifest: {e}"
                ))))
            }
        };
        let mut shared = Shared::new(catalog, disk);
        shared.persist_path = Some(manifest);
        Ok(Database::from_shared(shared))
    }

    /// Writes the catalog manifest of a database opened with
    /// [`Database::open`]. Errors for purely in-memory databases.
    pub fn save(&self) -> Result<(), EngineError> {
        let path = self.session.shared.persist_path.as_ref().ok_or_else(|| {
            EngineError::Unsupported(
                "this database is in-memory; open it with Database::open to persist".into(),
            )
        })?;
        let bytes = fuzzy_rel::manifest::encode(&self.catalog());
        std::fs::write(path, bytes).map_err(|e| {
            EngineError::Storage(fuzzy_storage::StorageError::Corrupt(format!(
                "cannot write manifest: {e}"
            )))
        })
    }

    /// A new session over this database: a cheap, `Send + Sync` handle that
    /// shares the disk, catalog, statistics, plan cache, and counters, with
    /// its own copy of the current execution configuration.
    pub fn session(&self) -> Session {
        self.session.clone()
    }

    /// An owned engine over the current catalog snapshot (wired to the
    /// shared statistics, plan cache, and serving counters).
    pub fn engine(&self) -> fuzzy_engine::Engine {
        self.session.engine()
    }

    /// Defines (or redefines) a linguistic term.
    pub fn define_term(&mut self, name: impl AsRef<str>, shape: Trapezoid) {
        self.session.define_term(name, shape);
    }

    /// Creates an empty table.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> Result<(), EngineError> {
        self.session.create_table(name, schema)
    }

    /// Inserts one tuple. Tuples with degree 0 are not members and are
    /// silently skipped, matching the membership criterion of Section 2.
    pub fn insert(&mut self, table: &str, tuple: Tuple) -> Result<(), EngineError> {
        self.session.insert(table, tuple)
    }

    /// Bulk-loads tuples into a table.
    pub fn load<I: IntoIterator<Item = Tuple>>(
        &mut self,
        table: &str,
        tuples: I,
    ) -> Result<(), EngineError> {
        self.session.load(table, tuples)
    }

    /// Starts a query: `db.query(sql).strategy(..).threshold(..).collect()`.
    /// This is the one SELECT entry point; see [`QueryBuilder`].
    pub fn query(&self, sql: impl AsRef<str>) -> QueryBuilder {
        self.session.query(sql)
    }

    /// Parses and plans `sql` once, pinning the verified plan; see
    /// [`PreparedQuery`].
    pub fn prepare(&self, sql: &str) -> Result<PreparedQuery, EngineError> {
        self.session.prepare(sql)
    }

    /// Runs a query with an explicit strategy, returning the full outcome.
    #[deprecated(note = "use db.query(sql).strategy(s).run()")]
    pub fn query_with(&self, sql: &str, strategy: Strategy) -> Result<QueryOutcome, EngineError> {
        self.query(sql).strategy(strategy).run()
    }

    /// Explains how a query would be evaluated: its classified nesting type
    /// (Sections 4-8 of the paper), the unnested plan, and deterministic cost
    /// estimates.
    pub fn explain(&self, sql: &str) -> Result<String, EngineError> {
        self.query(sql).explain()
    }

    /// Runs the query and renders the `EXPLAIN` output annotated with the
    /// *actual* per-operator counters and wall times (`EXPLAIN ANALYZE`),
    /// including the plan-cache/serving section.
    pub fn explain_analyze(&self, sql: &str) -> Result<String, EngineError> {
        Ok(self.query(sql).explain_analyze()?.0)
    }

    /// Renders the `EXPLAIN VERIFY` output for a query: the static plan
    /// verifier's report — the rewrite rule applied, the threshold push-down
    /// bound, every physical operator's required and delivered properties,
    /// and any violations (see `fuzzy_engine::verify`).
    pub fn explain_verify(&self, sql: &str) -> Result<String, EngineError> {
        self.query(sql).explain_verify()
    }

    /// Executes one statement: SELECT, CREATE TABLE, DEFINE TERM, INSERT,
    /// ANALYZE, DELETE, or UPDATE — see [`Session::execute`].
    pub fn execute(&mut self, sql: &str) -> Result<StatementResult, EngineError> {
        self.session.execute(sql)
    }

    /// The current catalog snapshot (tables + vocabulary). DDL/DML after
    /// this call is not visible through the snapshot; take a fresh one.
    pub fn catalog(&self) -> Arc<Catalog> {
        self.session.catalog()
    }

    /// Exclusive catalog access (registering externally built tables).
    /// Mutations bump the catalog version and invalidate cached plans.
    pub fn catalog_mut(&mut self) -> CatalogWrite<'_> {
        self.session.catalog_mut()
    }

    /// The simulated disk (for I/O accounting in experiments).
    pub fn disk(&self) -> &SimDisk {
        self.session.disk()
    }

    /// The execution configuration of the root session.
    pub fn exec_config(&self) -> ExecConfig {
        self.session.config()
    }

    /// Overrides the execution configuration of the root session (sessions
    /// already handed out keep theirs).
    pub fn set_exec_config(&mut self, config: ExecConfig) {
        self.session.set_exec_config(config);
    }

    /// Exact counters of the shared verified-plan cache.
    pub fn plan_cache_stats(&self) -> CacheStats {
        self.session.plan_cache_stats()
    }

    /// The database-wide serving counters (statements in flight, peak,
    /// total statements, accumulated lock wait).
    pub fn serving_counters(&self) -> Arc<ServingCounters> {
        self.session.serving_counters()
    }

    /// The cost model converting I/O counts to time.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Overrides the cost model.
    pub fn set_cost_model(&mut self, cost: CostModel) {
        self.cost = cost;
    }

    /// Reads a full table into memory (debugging/tests).
    pub fn table_contents(&self, table: &str) -> Result<Relation, EngineError> {
        let catalog = self.catalog();
        let t = catalog
            .table(table)
            .ok_or_else(|| EngineError::Bind(format!("unknown table {table:?}")))?;
        let pool = fuzzy_storage::BufferPool::new(self.disk(), self.session.config().buffer_pages);
        Ok(t.to_relation(&pool)?)
    }

    /// A convenience threshold helper: keeps only rows with degree > `z`.
    pub fn threshold(rel: &Relation, z: f64) -> Relation {
        rel.with_threshold(Degree::clamped(z), true)
    }
}

/// The result of [`Database::execute`] / [`Session::execute`].
#[derive(Debug, Clone)]
pub enum StatementResult {
    /// A SELECT answer.
    Rows(Relation),
    /// Tuples inserted, deleted, or updated.
    Affected(usize),
    /// The rendered text of an `EXPLAIN`, `EXPLAIN ANALYZE`, or
    /// `EXPLAIN VERIFY` statement.
    Explained(String),
    /// A DDL statement (CREATE TABLE, DEFINE TERM) succeeded.
    Done,
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzy_core::Value;
    use fuzzy_rel::AttrType;

    fn tiny_db() -> Database {
        let mut db = Database::with_paper_vocabulary();
        db.create_table(
            "PEOPLE",
            Schema::of(&[("NAME", AttrType::Text), ("AGE", AttrType::Number)]),
        )
        .unwrap();
        db
    }

    #[test]
    fn create_insert_query_roundtrip() {
        let mut db = tiny_db();
        db.insert("PEOPLE", Tuple::full(vec![Value::text("Ann"), Value::number(24.0)])).unwrap();
        db.insert("PEOPLE", Tuple::full(vec![Value::text("Zed"), Value::number(70.0)])).unwrap();
        let ans = db
            .query("SELECT PEOPLE.NAME FROM PEOPLE WHERE PEOPLE.AGE = 'medium young'")
            .collect()
            .unwrap();
        assert_eq!(ans.len(), 1);
        assert_eq!(ans.tuples()[0].values[0], Value::text("Ann"));
        assert!((ans.tuples()[0].degree.value() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = tiny_db();
        let err = db.create_table("people", Schema::of(&[("X", AttrType::Number)])).unwrap_err();
        assert!(err.to_string().contains("already exists"));
    }

    #[test]
    fn zero_degree_inserts_skipped() {
        let mut db = tiny_db();
        db.insert(
            "PEOPLE",
            Tuple::new(vec![Value::text("ghost"), Value::number(1.0)], Degree::ZERO),
        )
        .unwrap();
        assert_eq!(db.table_contents("PEOPLE").unwrap().len(), 0);
    }

    #[test]
    fn unknown_table_errors() {
        let db = Database::new();
        assert!(db.query("SELECT X.A FROM X").collect().is_err());
        let mut db = Database::new();
        assert!(db.insert("X", Tuple::full(vec![Value::number(1.0)])).is_err());
    }

    #[test]
    fn strategies_agree_via_facade() {
        let mut db = tiny_db();
        db.load(
            "PEOPLE",
            (0..20).map(|i| {
                Tuple::full(vec![Value::text(format!("p{i}")), Value::number(20.0 + i as f64)])
            }),
        )
        .unwrap();
        let sql = "SELECT PEOPLE.NAME FROM PEOPLE WHERE PEOPLE.AGE = 'medium young'";
        let a = db.query(sql).run().unwrap();
        let b = db.query(sql).strategy(Strategy::Naive).run().unwrap();
        assert_eq!(a.answer.canonicalized(), b.answer.canonicalized());
        assert!(a.measurement.io.reads > 0);
    }

    #[test]
    fn threshold_helper_and_builder_threshold() {
        let mut db = tiny_db();
        db.insert("PEOPLE", Tuple::full(vec![Value::text("Ann"), Value::number(23.0)])).unwrap();
        let sql = "SELECT PEOPLE.NAME FROM PEOPLE WHERE PEOPLE.AGE = 'medium young'";
        let ans = db.query(sql).collect().unwrap();
        assert_eq!(Database::threshold(&ans, 0.5).len(), 1); // degree 0.6
        assert_eq!(Database::threshold(&ans, 0.65).len(), 0);
        // The builder's per-statement default threshold agrees.
        assert_eq!(db.query(sql).threshold(0.5).collect().unwrap().len(), 1);
        assert_eq!(db.query(sql).threshold(0.65).collect().unwrap().len(), 0);
        // An explicit WITH D wins over the session default.
        let explicit = format!("{sql} WITH D > 0.1");
        assert_eq!(db.query(explicit).threshold(0.65).collect().unwrap().len(), 1);
    }

    #[test]
    fn sessions_share_ddl_and_cache() {
        let mut db = tiny_db();
        db.insert("PEOPLE", Tuple::full(vec![Value::text("Ann"), Value::number(24.0)])).unwrap();
        let s1 = db.session();
        let s2 = db.session();
        let sql = "SELECT PEOPLE.NAME FROM PEOPLE WHERE PEOPLE.AGE = 'medium young'";
        assert_eq!(s1.query(sql).collect().unwrap().len(), 1);
        let stats = db.plan_cache_stats();
        assert_eq!((stats.hits, stats.misses), (0, 1));
        assert_eq!(s2.query(sql).collect().unwrap().len(), 1);
        let stats = db.plan_cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1), "second session hits the shared cache");
        // DDL through one handle is visible to the other.
        s1.create_table("T2", Schema::of(&[("X", AttrType::Number)])).unwrap();
        assert!(s2.catalog().table("T2").is_some());
    }

    #[test]
    fn prepared_queries_pin_and_go_stale() {
        let mut db = tiny_db();
        db.insert("PEOPLE", Tuple::full(vec![Value::text("Ann"), Value::number(24.0)])).unwrap();
        let prepared =
            db.prepare("SELECT PEOPLE.NAME FROM PEOPLE WHERE PEOPLE.AGE = 'medium young'").unwrap();
        let first = prepared.run().unwrap();
        assert_eq!(first.answer.len(), 1);
        assert_eq!(first.serving.plan_verifications, 0);
        assert_eq!(first.serving.cache_hit, Some(true));
        // DML bumps the catalog version: the pinned plan is now stale.
        db.insert("PEOPLE", Tuple::full(vec![Value::text("Bob"), Value::number(25.0)])).unwrap();
        match prepared.run() {
            Err(EngineError::StalePlan { planned_version, catalog_version }) => {
                assert!(catalog_version > planned_version);
            }
            other => panic!("expected StalePlan, got {other:?}"),
        }
        // Re-preparing sees the new data.
        let again =
            db.prepare("SELECT PEOPLE.NAME FROM PEOPLE WHERE PEOPLE.AGE = 'medium young'").unwrap();
        assert_eq!(again.collect().unwrap().len(), 2);
    }
}
