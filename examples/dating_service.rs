//! The dating-service scenario of Section 2, exercising every nested query
//! type in the paper's catalogue on the same database:
//!
//! * type N  — uncorrelated `IN`
//! * type J  — correlated `IN`
//! * type JX — correlated `NOT IN` (set exclusion, Section 5)
//! * type JALL — quantified `ALL` (Section 7)
//! * type SOME — quantified `SOME`
//!
//! ```sh
//! cargo run --example dating_service
//! ```

use fuzzy_db::workload::paper;
use fuzzy_db::{Database, Strategy};
use fuzzy_storage::SimDisk;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let disk = SimDisk::with_default_page_size();
    let catalog = paper::dating_service(&disk)?;
    let db = Database::from_catalog(catalog, disk);

    let queries: &[(&str, &str)] = &[
        (
            "type N — women with a middle-aged man's income",
            "SELECT F.NAME FROM F \
             WHERE F.AGE = 'medium young' AND F.INCOME IN \
             (SELECT M.INCOME FROM M WHERE M.AGE = 'middle age')",
        ),
        (
            "type J — women whose income some man of about the same age has",
            "SELECT F.NAME FROM F \
             WHERE F.INCOME IN \
             (SELECT M.INCOME FROM M WHERE M.AGE = F.AGE)",
        ),
        (
            "type JX — women whose income NO man of about the same age has",
            "SELECT F.NAME FROM F \
             WHERE F.INCOME NOT IN \
             (SELECT M.INCOME FROM M WHERE M.AGE = F.AGE)",
        ),
        (
            "type JALL — women out-earning every man of about the same age",
            "SELECT F.NAME FROM F \
             WHERE F.INCOME > ALL \
             (SELECT M.INCOME FROM M WHERE M.AGE = F.AGE)",
        ),
        (
            "SOME — women earning less than some man of about the same age",
            "SELECT F.NAME FROM F \
             WHERE F.INCOME < SOME \
             (SELECT M.INCOME FROM M WHERE M.AGE = F.AGE)",
        ),
    ];

    for (title, sql) in queries {
        println!("== {title} ==");
        println!("{sql}");
        let unnested = db.query(sql).strategy(Strategy::Unnest).run()?;
        let baseline = db.query(sql).strategy(Strategy::NestedLoop).run()?;
        // The equivalence theorems: both strategies agree exactly.
        assert_eq!(
            unnested.answer.canonicalized(),
            baseline.answer.canonicalized(),
            "strategies disagree on {title}"
        );
        println!("plan: {}\n{}", unnested.plan_label, unnested.answer);
    }

    // EXISTS unnests to a semi-join-style flat plan (the paper's remark that
    // the EXIST quantifier "can be unnested similarly").
    let exists = "SELECT F.NAME FROM F WHERE EXISTS \
                  (SELECT M.NAME FROM M WHERE M.AGE = F.AGE)";
    let out = db.query(exists).strategy(Strategy::Unnest).run()?;
    println!("== EXISTS ==\nplan: {}\n{}", out.plan_label, out.answer);

    // A query whose shape is outside the unnesting catalogue falls back to
    // the naive evaluator transparently.
    let general = "SELECT F.NAME FROM F WHERE F.AGE IN (SELECT M.AGE FROM M) \
                   AND F.INCOME IN (SELECT M.INCOME FROM M)";
    let out = db.query(general).strategy(Strategy::Unnest).run()?;
    println!(
        "== two sub-queries (outside the catalogue) ==\nplan: {}\n{}",
        out.plan_label, out.answer
    );
    Ok(())
}
