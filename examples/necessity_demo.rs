//! Possibility vs. necessity — why the engine uses a single measure.
//!
//! Section 2 of the paper discusses the double-measure system of Prade &
//! Testemale, where each predicate yields both a possibility and a necessity
//! degree, and explains why it prevents composition of algebra operators
//! (and hence unnesting): every query would produce *two* answer relations.
//!
//! This example computes both measures with `fuzzy_core` for the paper's
//! running comparisons, illustrating (a) that necessity never exceeds
//! possibility for normal convex distributions, and (b) the paper's
//! recommended alternative — query the negation to probe the other side.
//!
//! ```sh
//! cargo run --example necessity_demo
//! ```

use fuzzy_db::core::compare::{necessity, possibility, CmpOp};
use fuzzy_db::core::{Trapezoid, Vocabulary};
use fuzzy_db::workload::paper;
use fuzzy_db::Database;
use fuzzy_storage::SimDisk;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let vocab = Vocabulary::paper();
    let term = |name: &str| *vocab.get(name).expect("paper term");

    println!("== possibility vs necessity on the paper's vocabulary ==\n");
    println!("{:<18} {:<4} {:<18} {:>6} {:>6}", "X", "op", "Y", "Poss", "Nec");
    let crisp24 = Trapezoid::crisp(24.0)?;
    let cases: Vec<(String, Trapezoid, CmpOp, String, Trapezoid)> = vec![
        ("24".into(), crisp24, CmpOp::Eq, "medium young".into(), term("medium young")),
        (
            "about 35".into(),
            term("about 35"),
            CmpOp::Eq,
            "medium young".into(),
            term("medium young"),
        ),
        (
            "medium young".into(),
            term("medium young"),
            CmpOp::Le,
            "middle age".into(),
            term("middle age"),
        ),
        ("middle age".into(), term("middle age"), CmpOp::Lt, "old".into(), term("old")),
        (
            "about 50".into(),
            term("about 50"),
            CmpOp::Gt,
            "medium young".into(),
            term("medium young"),
        ),
    ];
    for (xn, x, op, yn, y) in cases {
        let p = possibility(&x, op, &y);
        let n = necessity(&x, op, &y);
        println!("{xn:<18} {:<4} {yn:<18} {:>6.2} {:>6.2}", op.to_string(), p.value(), n.value());
        assert!(n <= p, "necessity may never exceed possibility");
    }

    println!(
        "\nWith convex, normal distributions necessity <= possibility always\n\
         holds (Section 2). A decided crisp comparison collapses both to the\n\
         same 0/1 value:"
    );
    let five = Trapezoid::crisp(5.0)?;
    let nine = Trapezoid::crisp(9.0)?;
    println!(
        "  5 < 9: Poss = {}, Nec = {}",
        possibility(&five, CmpOp::Lt, &nine),
        necessity(&five, CmpOp::Lt, &nine)
    );

    // The paper's single-measure workaround: instead of reporting necessity,
    // issue the negated query and read its possibility.
    println!("\n== querying the negation (the paper's single-measure idiom) ==\n");
    let disk = SimDisk::with_default_page_size();
    let catalog = paper::dating_service(&disk)?;
    let db = Database::from_catalog(catalog, disk);
    let q_in = "SELECT F.NAME FROM F WHERE F.INCOME IN \
                (SELECT M.INCOME FROM M WHERE M.AGE = F.AGE)";
    let q_not_in = "SELECT F.NAME FROM F WHERE F.INCOME NOT IN \
                    (SELECT M.INCOME FROM M WHERE M.AGE = F.AGE)";
    println!("possibly has a same-age income match:\n{}", db.query(q_in).collect()?);
    println!("possibly has NO same-age income match:\n{}", db.query(q_not_in).collect()?);
    println!(
        "Each person may appear in both answers: that is the uncertainty the\n\
         double-measure system encodes as (Poss, Nec), at the cost of\n\
         composability — the price Section 2 declines to pay."
    );
    Ok(())
}
