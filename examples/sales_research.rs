//! The paper's Query 4 scenario (Section 5): set exclusion (`NOT IN`) over
//! fuzzy data — employees of Sales who do *not* have an income that any
//! Research employee of about their age has. Demonstrates the JX unnesting
//! (grouped MIN over negated degrees) and WITH-threshold interaction.
//!
//! ```sh
//! cargo run --example sales_research
//! ```

use fuzzy_db::workload::paper;
use fuzzy_db::{Database, Strategy};
use fuzzy_storage::SimDisk;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let disk = SimDisk::with_default_page_size();
    let catalog = paper::employees(&disk)?;
    let db = Database::from_catalog(catalog, disk);

    println!("== EMP_SALES ==\n{}", db.table_contents("EMP_SALES")?);
    println!("== EMP_RESEARCH ==\n{}", db.table_contents("EMP_RESEARCH")?);

    // Query 4 of the paper.
    let q4 = "SELECT R.NAME FROM EMP_SALES R WHERE R.INCOME NOT IN \
              (SELECT S.INCOME FROM EMP_RESEARCH S WHERE S.AGE = R.AGE)";
    println!("Query 4: {q4}\n");
    let unnest = db.query(q4).strategy(Strategy::Unnest).run()?;
    let baseline = db.query(q4).strategy(Strategy::NestedLoop).run()?;
    assert_eq!(
        unnest.answer.canonicalized(),
        baseline.answer.canonicalized(),
        "Theorem 5.1 violated"
    );
    println!("plan: {}\n{}", unnest.plan_label, unnest.answer);

    // Reading the degrees: a degree near 1 means it is fully possible that
    // nobody in Research shares the person's income at their age; a low
    // degree means a close fuzzy match exists.
    println!("with WITH D > 0.5 (only strong exclusions):");
    println!("{}", db.query(format!("{q4} WITH D > 0.5")).collect()?);

    // The complementary query (IN instead of NOT IN): by the single-measure
    // possibility semantics (Section 2's discussion), querying the negation
    // directly is the paper's recommended way to probe the other side.
    let q4_in = q4.replace("NOT IN", "IN");
    println!("the complementary IN query:");
    println!("{}", db.query(&q4_in).collect()?);
    Ok(())
}
