//! Quickstart: build the paper's dating-service database, run its Query 1
//! (a flat fuzzy join) and Query 2 (a nested type-N query), and compare the
//! unnested merge-join execution against the nested-loop baseline.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use fuzzy_db::workload::paper;
use fuzzy_db::{Database, Strategy};
use fuzzy_storage::SimDisk;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Example 4.1 database: relations F and M with ill-known
    // ages and incomes, plus the calibrated linguistic vocabulary of Figs.
    // 1 and 2.
    let disk = SimDisk::with_default_page_size();
    let catalog = paper::dating_service(&disk)?;
    let db = Database::from_catalog(catalog, disk);

    println!("== Relation F ==\n{}", db.table_contents("F")?);
    println!("== Relation M ==\n{}", db.table_contents("M")?);

    // Query 1 (Section 2.2): pairs of about the same age where the male
    // income exceeds "medium high". Every comparison is fuzzy.
    let q1 = "SELECT F.NAME, M.NAME FROM F, M \
              WHERE F.AGE = M.AGE AND M.INCOME > 'medium high'";
    println!("Query 1: {q1}\n");
    let out = db.query(q1).strategy(Strategy::Unnest).run()?;
    println!("answer ({}):\n{}", out.plan_label, out.answer);

    // Query 2 (Section 2.3): a nested type-N query — medium young women with
    // a middle-aged man's income.
    let q2 = "SELECT F.NAME FROM F \
              WHERE F.AGE = 'medium young' AND F.INCOME IN \
              (SELECT M.INCOME FROM M WHERE M.AGE = 'middle age')";
    println!("Query 2: {q2}\n");
    for strategy in [Strategy::NestedLoop, Strategy::Unnest, Strategy::Naive] {
        let out = db.query(q2).strategy(strategy).run()?;
        println!(
            "[{:<11}] {} rows, {} page reads, {} page writes, cpu {:?}",
            out.plan_label,
            out.answer.len(),
            out.measurement.io.reads,
            out.measurement.io.writes,
            out.measurement.cpu,
        );
    }
    let answer = db.query(q2).collect()?;
    println!("\nanswer (the paper's printed result — Ann 0.7, Betty 0.7):\n{answer}");

    // Thresholding with the WITH clause.
    let q2_with = format!("{q2} WITH D > 0.65");
    println!("with WITH D > 0.65:\n{}", db.query(&q2_with).collect()?);
    Ok(())
}
