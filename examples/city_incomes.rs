//! The paper's Query 5 scenario (Section 6): aggregate sub-queries over
//! fuzzy data. Cities have ill-known populations (linguistic sizes) and
//! ill-known average household incomes; the aggregate semantics use fuzzy
//! arithmetic (SUM/AVG) and defuzzified ordering (MIN/MAX), and COUNT's
//! unnesting needs the left-outer-join IF-THEN-ELSE of Query COUNT'.
//!
//! ```sh
//! cargo run --example city_incomes
//! ```

use fuzzy_db::workload::paper;
use fuzzy_db::{Database, Strategy};
use fuzzy_storage::SimDisk;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let disk = SimDisk::with_default_page_size();
    let catalog = paper::cities(&disk)?;
    let db = Database::from_catalog(catalog, disk);

    println!("== Region A ==\n{}", db.table_contents("CITIES_REGION_A")?);
    println!("== Region B ==\n{}", db.table_contents("CITIES_REGION_B")?);

    // Query 5 of the paper: cities in region A whose average household
    // income exceeds the maximum among similarly-populated cities of
    // region B.
    let q5 = "SELECT R.NAME FROM CITIES_REGION_A R \
              WHERE R.AVE_HOME_INCOME > \
              (SELECT MAX(S.AVE_HOME_INCOME) FROM CITIES_REGION_B S \
               WHERE S.POPULATION = R.POPULATION)";
    let out = db.query(q5).strategy(Strategy::Unnest).run()?;
    println!("Query 5 (type JA, MAX): plan {}\n{}", out.plan_label, out.answer);

    // Every aggregate function over the same correlation.
    for agg in ["MIN", "AVG", "SUM", "COUNT"] {
        let sql = format!(
            "SELECT R.NAME FROM CITIES_REGION_A R \
             WHERE R.AVE_HOME_INCOME > \
             (SELECT {agg}(S.AVE_HOME_INCOME) FROM CITIES_REGION_B S \
              WHERE S.POPULATION = R.POPULATION)"
        );
        let unnest = db.query(&sql).strategy(Strategy::Unnest).run()?;
        let baseline = db.query(&sql).strategy(Strategy::NestedLoop).run()?;
        assert_eq!(
            unnest.answer.canonicalized(),
            baseline.answer.canonicalized(),
            "Theorem 6.1 violated for {agg}"
        );
        println!("{agg}: plan {} -> {} rows", unnest.plan_label, unnest.answer.len());
        print!("{}", unnest.answer);
    }

    // COUNT with an empty group: cities with no similarly-sized city in B
    // still reach the answer via the ELSE branch comparing against 0.
    let count_q = "SELECT R.NAME FROM CITIES_REGION_A R \
                   WHERE 1 > \
                   (SELECT COUNT(S.AVE_HOME_INCOME) FROM CITIES_REGION_B S \
                    WHERE S.POPULATION = R.POPULATION)";
    println!("\ncities with no similarly-sized city in region B:");
    println!("{}", db.query(count_q).collect()?);

    // An uncorrelated aggregate (type A): the inner block is a constant and
    // needs no unnesting — the paper notes this explicitly.
    let type_a = "SELECT R.NAME FROM CITIES_REGION_A R \
                  WHERE R.AVE_HOME_INCOME > \
                  (SELECT AVG(S.AVE_HOME_INCOME) FROM CITIES_REGION_B S)";
    let out = db.query(type_a).strategy(Strategy::Unnest).run()?;
    println!("type A (uncorrelated AVG): plan {}\n{}", out.plan_label, out.answer);
    Ok(())
}
