//! EXPLAIN ANALYZE of Query N′ on the scale-8 workload — the walkthrough of
//! EXPERIMENTS.md's observability section.
//!
//! ```sh
//! cargo run --release --example explain_analyze
//! ```

use fuzzy_db::engine::{exec::ExecConfig, Engine};
use fuzzy_db::rel::Catalog;
use fuzzy_db::storage::SimDisk;
use fuzzy_db::workload::{generate, WorkloadSpec};

fn main() {
    // The experiments binary's scale-8 defaults: n = 8 MB / 8 = 8000 tuples
    // per relation, 32-page buffer and sort budgets.
    let disk = SimDisk::with_default_page_size();
    let spec = WorkloadSpec {
        n_outer: 8000,
        n_inner: 8000,
        tuple_bytes: 128,
        fanout: 7,
        seed: 8008,
        ..Default::default()
    };
    let w = generate(&disk, spec).expect("workload");
    let mut catalog = Catalog::new();
    catalog.register(w.outer.clone());
    catalog.register(w.inner.clone());
    disk.reset_io();

    let engine = Engine::over(catalog.clone().into(), &disk).with_config(ExecConfig {
        buffer_pages: 32,
        sort_pages: 32,
        ..Default::default()
    });
    // Query N of Section 4, already unnested by the engine to Query N′.
    let sql = "SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S)";
    let (text, outcome) = engine.explain_analyze(sql).expect("explain analyze");
    println!("EXPLAIN ANALYZE {sql}\n");
    println!("{text}");
    println!(
        "totals: {} fuzzy comparisons, {} pairs examined, {} physical reads + {} writes",
        outcome.metrics.totals().fuzzy_comparisons,
        outcome.metrics.totals().pairs_examined,
        outcome.measurement.io.reads,
        outcome.measurement.io.writes
    );
}
