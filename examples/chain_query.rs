//! K-level chain (linear) queries — Section 8 / Theorem 8.1.
//!
//! Builds a three-relation supply database (suppliers → parts → shipments)
//! with ill-known quantities and runs 2-, 3-, and 4-level chain queries,
//! showing that the unnested K-way merge-join plan matches the naive nested
//! evaluation while touching each relation only O(n log n) times.
//!
//! ```sh
//! cargo run --example chain_query
//! ```

use fuzzy_db::core::{Trapezoid, Value};
use fuzzy_db::rel::{AttrType, Schema, Tuple};
use fuzzy_db::{Database, Strategy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::new();
    db.define_term("roughly 100", Trapezoid::new(80.0, 95.0, 105.0, 120.0)?);

    db.create_table(
        "SUPPLIERS",
        Schema::of(&[("NAME", AttrType::Text), ("RATING", AttrType::Number)]),
    )?;
    db.create_table(
        "PARTS",
        Schema::of(&[("RATING", AttrType::Number), ("WEIGHT", AttrType::Number)]),
    )?;
    db.create_table(
        "SHIPMENTS",
        Schema::of(&[("WEIGHT", AttrType::Number), ("QTY", AttrType::Number)]),
    )?;
    db.create_table(
        "ORDERS",
        Schema::of(&[("QTY", AttrType::Number), ("PRIORITY", AttrType::Number)]),
    )?;

    let about = |v: f64, w: f64| Value::fuzzy(Trapezoid::about(v, w).expect("w > 0"));
    db.load(
        "SUPPLIERS",
        (0..12).map(|i| Tuple::full(vec![Value::text(format!("s{i}")), about(i as f64, 1.5)])),
    )?;
    db.load(
        "PARTS",
        (0..12).map(|i| Tuple::full(vec![about(i as f64, 1.0), about(10.0 + i as f64, 2.0)])),
    )?;
    db.load(
        "SHIPMENTS",
        (0..12).map(|i| {
            Tuple::full(vec![about(10.0 + i as f64, 1.0), about(90.0 + 2.0 * i as f64, 5.0)])
        }),
    )?;
    db.load(
        "ORDERS",
        (0..12)
            .map(|i| Tuple::full(vec![about(88.0 + 2.0 * i as f64, 4.0), Value::number(i as f64)])),
    )?;

    let chains = [
        (
            2usize,
            "SELECT SUPPLIERS.NAME FROM SUPPLIERS WHERE SUPPLIERS.RATING IN \
             (SELECT PARTS.RATING FROM PARTS WHERE PARTS.WEIGHT >= 15)"
                .to_string(),
        ),
        (
            3,
            "SELECT SUPPLIERS.NAME FROM SUPPLIERS WHERE SUPPLIERS.RATING IN \
             (SELECT PARTS.RATING FROM PARTS WHERE PARTS.WEIGHT IN \
              (SELECT SHIPMENTS.WEIGHT FROM SHIPMENTS WHERE SHIPMENTS.QTY = 'roughly 100'))"
                .to_string(),
        ),
        (
            4,
            "SELECT SUPPLIERS.NAME FROM SUPPLIERS WHERE SUPPLIERS.RATING IN \
             (SELECT PARTS.RATING FROM PARTS WHERE PARTS.WEIGHT IN \
              (SELECT SHIPMENTS.WEIGHT FROM SHIPMENTS WHERE SHIPMENTS.QTY IN \
               (SELECT ORDERS.QTY FROM ORDERS WHERE ORDERS.PRIORITY <= 6)))"
                .to_string(),
        ),
    ];

    for (k, sql) in &chains {
        println!("== {k}-level chain ==");
        let unnest = db.query(sql).strategy(Strategy::Unnest).run()?;
        let naive = db.query(sql).strategy(Strategy::Naive).run()?;
        assert_eq!(
            unnest.answer.canonicalized(),
            naive.answer.canonicalized(),
            "Theorem 8.1 violated at K = {k}"
        );
        println!(
            "plan {} | unnest: {} reads / cpu {:?} | naive: {} reads / cpu {:?}",
            unnest.plan_label,
            unnest.measurement.io.reads,
            unnest.measurement.cpu,
            naive.measurement.io.reads,
            naive.measurement.cpu,
        );
        println!("{}", unnest.answer);
    }
    Ok(())
}
