//! An interactive Fuzzy SQL shell over the paper's demo catalogs.
//!
//! ```sh
//! cargo run --example fuzzy_repl
//! echo "SELECT F.NAME FROM F WHERE F.AGE = 'medium young'" | cargo run --example fuzzy_repl
//! ```
//!
//! Meta-commands:
//!
//! * `\tables` — list tables with sizes
//! * `\vocab` — list linguistic terms
//! * `\explain <sql>` — show the classified type and the unnested plan
//! * `\analyze <sql>` — explain, run, and report costs side by side
//! * `\strategy unnest|nested|naive` — switch the evaluation strategy
//! * `\term <name> <a> <b> <c> <d>` — define a trapezoidal term
//! * `\quit` — exit
//!
//! Anything else is executed as a Fuzzy SQL SELECT.

use fuzzy_db::core::Trapezoid;
use fuzzy_db::workload::paper;
use fuzzy_db::{Database, StatementResult, Strategy};
use fuzzy_storage::SimDisk;
use std::io::{self, BufRead, Write};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One disk hosting all three demo catalogs.
    let disk = SimDisk::with_default_page_size();
    let mut catalog = paper::dating_service(&disk)?;
    for source in [paper::employees(&disk)?, paper::cities(&disk)?] {
        let names: Vec<String> = source.table_names().map(|s| s.to_string()).collect();
        for name in names {
            catalog.register(source.table(&name).unwrap().clone());
        }
        for (term, shape) in source.vocabulary().iter() {
            catalog.vocabulary_mut().define(term, *shape);
        }
    }
    let mut db = Database::from_catalog(catalog, disk);
    let mut strategy = Strategy::Unnest;

    println!("fuzzy-db shell — tables: F, M, EMP_SALES, EMP_RESEARCH, CITIES_REGION_A/B");
    println!(
        "type \\tables, \\vocab, \\explain <sql>, \\strategy <s>, \\quit, or any\n\
         statement: SELECT / CREATE TABLE / DEFINE TERM / INSERT / DELETE / UPDATE\n"
    );

    let stdin = io::stdin();
    let mut out = io::stdout();
    loop {
        print!("fuzzy> ");
        out.flush()?;
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break; // EOF
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('\\') {
            let mut parts = rest.split_whitespace();
            match parts.next().unwrap_or("") {
                "quit" | "q" => break,
                "tables" => {
                    let catalog = db.catalog();
                    let mut names: Vec<&str> = catalog.table_names().collect();
                    names.sort_unstable();
                    for name in names {
                        let t = catalog.table(name).unwrap();
                        println!(
                            "  {name}: {} tuples, {} pages, schema {}",
                            t.num_tuples(),
                            t.num_pages(),
                            t.schema()
                        );
                    }
                }
                "vocab" => {
                    let mut terms: Vec<(String, String)> = db
                        .catalog()
                        .vocabulary()
                        .iter()
                        .map(|(n, s)| (n.to_string(), s.to_string()))
                        .collect();
                    terms.sort();
                    for (name, shape) in terms {
                        println!("  {name:<16} {shape}");
                    }
                }
                "explain" => {
                    let sql = rest.trim_start_matches("explain").trim();
                    match db.explain(sql) {
                        Ok(text) => print!("{text}"),
                        Err(e) => println!("error: {e}"),
                    }
                }
                "analyze" => {
                    let sql = rest.trim_start_matches("analyze").trim();
                    match db.explain(sql) {
                        Ok(text) => print!("{text}"),
                        Err(e) => {
                            println!("error: {e}");
                            continue;
                        }
                    }
                    match db.query(sql).strategy(strategy).run() {
                        Ok(out) => println!(
                            "executed: {} rows | {} reads, {} writes | {} pairs | max Rng(r) {} | cpu {:?}",
                            out.answer.len(),
                            out.measurement.io.reads,
                            out.measurement.io.writes,
                            out.exec_stats.pairs_examined,
                            out.exec_stats.max_window,
                            out.measurement.cpu
                        ),
                        Err(e) => println!("error: {e}"),
                    }
                }
                "strategy" => match parts.next() {
                    Some("unnest") => {
                        strategy = Strategy::Unnest;
                        println!("strategy: unnest (extended merge-join)");
                    }
                    Some("nested") => {
                        strategy = Strategy::NestedLoop;
                        println!("strategy: nested loop (the paper's baseline)");
                    }
                    Some("naive") => {
                        strategy = Strategy::Naive;
                        println!("strategy: naive reference evaluation");
                    }
                    _ => println!("usage: \\strategy unnest|nested|naive"),
                },
                "term" => {
                    let args: Vec<&str> = parts.collect();
                    if args.len() < 5 {
                        println!("usage: \\term <name> <a> <b> <c> <d>");
                        continue;
                    }
                    let nums: Result<Vec<f64>, _> =
                        args[args.len() - 4..].iter().map(|s| s.parse()).collect();
                    let name = args[..args.len() - 4].join(" ");
                    match nums {
                        Ok(v) => match Trapezoid::new(v[0], v[1], v[2], v[3]) {
                            Ok(shape) => {
                                db.define_term(&name, shape);
                                println!("defined '{name}' as {shape}");
                            }
                            Err(e) => println!("error: {e}"),
                        },
                        Err(e) => println!("error: {e}"),
                    }
                }
                other => println!("unknown command \\{other}"),
            }
            continue;
        }
        let is_select = line.len() >= 6 && line[..6].eq_ignore_ascii_case("SELECT");
        if is_select {
            match db.query(line).strategy(strategy).run() {
                Ok(outcome) => {
                    print!("{}", outcome.answer);
                    println!(
                        "-- {} rows | plan {} | {} reads, {} writes | cpu {:?}",
                        outcome.answer.len(),
                        outcome.plan_label,
                        outcome.measurement.io.reads,
                        outcome.measurement.io.writes,
                        outcome.measurement.cpu
                    );
                }
                Err(e) => println!("error: {e}"),
            }
        } else {
            // DDL / DML: CREATE TABLE, DEFINE TERM, INSERT, DELETE, UPDATE.
            match db.execute(line) {
                Ok(StatementResult::Rows(rel)) => print!("{rel}"),
                Ok(StatementResult::Affected(n)) => println!("-- {n} tuples affected"),
                Ok(StatementResult::Explained(text)) => print!("{text}"),
                Ok(StatementResult::Done) => println!("-- ok"),
                Err(e) => println!("error: {e}"),
            }
        }
    }
    Ok(())
}
