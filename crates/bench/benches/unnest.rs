//! Criterion micro-benchmarks: unnested versus nested-loop evaluation for
//! every query type in the paper's catalogue (Sections 4–7).

use bench::{build_workload, paper_config, run_leg_sql};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fuzzy_engine::Strategy;
use fuzzy_workload::WorkloadSpec;

const N: usize = 800;

fn queries() -> Vec<(&'static str, String)> {
    vec![
        ("type_n", "SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S)".to_string()),
        (
            "type_j",
            "SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S WHERE S.ID <> R.ID)".to_string(),
        ),
        (
            "type_jx",
            "SELECT R.ID FROM R WHERE R.V NOT IN \
             (SELECT S.V FROM S WHERE S.X = R.X)"
                .to_string(),
        ),
        (
            "type_jall",
            "SELECT R.ID FROM R WHERE R.V < ALL (SELECT S.V FROM S WHERE S.X = R.X)".to_string(),
        ),
        (
            "type_ja_max",
            "SELECT R.ID FROM R WHERE R.V > (SELECT MAX(S.V) FROM S WHERE S.X = R.X)".to_string(),
        ),
        (
            "type_ja_count",
            "SELECT R.ID FROM R WHERE 3 > (SELECT COUNT(S.V) FROM S WHERE S.X = R.X)".to_string(),
        ),
    ]
}

fn unnest_vs_nested_loop(c: &mut Criterion) {
    let spec = WorkloadSpec { n_outer: N, n_inner: N, fanout: 7, ..Default::default() };
    let (catalog, disk) = build_workload(spec);
    let mut group = c.benchmark_group("unnest_vs_nl");
    group.sample_size(10);
    for (name, sql) in queries() {
        group.bench_with_input(BenchmarkId::new("unnest", name), &sql, |b, sql| {
            b.iter(|| run_leg_sql(&catalog, &disk, Strategy::Unnest, paper_config(), sql))
        });
        group.bench_with_input(BenchmarkId::new("nested_loop", name), &sql, |b, sql| {
            b.iter(|| run_leg_sql(&catalog, &disk, Strategy::NestedLoop, paper_config(), sql))
        });
    }
    group.finish();
}

criterion_group!(benches, unnest_vs_nested_loop);
criterion_main!(benches);
