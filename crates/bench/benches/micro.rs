//! Criterion micro-benchmarks of the fuzzy primitives the joins are built on:
//! possibility closed forms, interval-order comparisons, tuple codec, and
//! the external sort.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fuzzy_core::{interval_order, possibility, CmpOp, Trapezoid, Value};
use fuzzy_rel::Tuple;
use fuzzy_storage::{external_sort, HeapFile, SimDisk};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_trapezoids(n: usize, seed: u64) -> Vec<Trapezoid> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let a = rng.gen_range(0.0..1000.0);
            let w1 = rng.gen_range(0.0..5.0);
            let wc = rng.gen_range(0.0..5.0);
            let w2 = rng.gen_range(0.0..5.0);
            Trapezoid::new(a, a + w1, a + w1 + wc, a + w1 + wc + w2).unwrap()
        })
        .collect()
}

fn possibility_ops(c: &mut Criterion) {
    let xs = random_trapezoids(512, 1);
    let ys = random_trapezoids(512, 2);
    let mut group = c.benchmark_group("possibility");
    for op in [CmpOp::Eq, CmpOp::Le, CmpOp::Lt, CmpOp::Ne] {
        group.bench_with_input(BenchmarkId::from_parameter(op), &op, |b, &op| {
            b.iter(|| {
                let mut acc = 0.0;
                for (x, y) in xs.iter().zip(&ys) {
                    acc += possibility(black_box(x), op, black_box(y)).value();
                }
                acc
            })
        });
    }
    group.finish();
}

fn interval_order_cmp(c: &mut Criterion) {
    let vals: Vec<Value> = random_trapezoids(1024, 3).into_iter().map(Value::fuzzy).collect();
    c.bench_function("interval_order_sort_1024", |b| {
        b.iter(|| {
            let mut v = vals.clone();
            v.sort_by(interval_order::cmp_values);
            v
        })
    });
}

fn tuple_codec(c: &mut Criterion) {
    let tuples: Vec<Tuple> = random_trapezoids(256, 4)
        .into_iter()
        .enumerate()
        .map(|(i, t)| {
            Tuple::full(vec![Value::number(i as f64), Value::fuzzy(t), Value::text("payload")])
        })
        .collect();
    let encoded: Vec<Vec<u8>> = tuples.iter().map(|t| t.encode(128)).collect();
    c.bench_function("tuple_encode_128B", |b| {
        b.iter(|| tuples.iter().map(|t| t.encode(128).len()).sum::<usize>())
    });
    c.bench_function("tuple_decode_128B", |b| {
        b.iter(|| {
            encoded.iter().map(|bytes| Tuple::decode(bytes).unwrap().values.len()).sum::<usize>()
        })
    });
    c.bench_function("tuple_decode_value_at", |b| {
        b.iter(|| {
            encoded
                .iter()
                .filter(|bytes| Tuple::decode_value_at(bytes, 1).unwrap().interval().is_some())
                .count()
        })
    });
}

fn external_sort_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("external_sort");
    group.sample_size(10);
    for n in [2000usize, 8000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let disk = SimDisk::with_default_page_size();
                let file = HeapFile::create(&disk);
                let tuples: Vec<Vec<u8>> = random_trapezoids(n, 5)
                    .into_iter()
                    .map(|t| Tuple::full(vec![Value::fuzzy(t)]).encode(64))
                    .collect();
                file.load(tuples.iter()).unwrap();
                let (sorted, _) = external_sort(&disk, &file, 32, |a, b| {
                    let va = Tuple::decode_value_at(a, 0).unwrap();
                    let vb = Tuple::decode_value_at(b, 0).unwrap();
                    interval_order::cmp_values(&va, &vb)
                })
                .unwrap();
                sorted.num_records()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, possibility_ops, interval_order_cmp, tuple_codec, external_sort_bench);
criterion_main!(benches);
