//! Criterion micro-benchmarks of the two join methods on the Section 9
//! workload (small sizes — the full tables are produced by the
//! `experiments` binary).

use bench::{build_workload, paper_config, run_leg};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fuzzy_engine::exec::ExecConfig;
use fuzzy_engine::Strategy;
use fuzzy_workload::WorkloadSpec;

fn join_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("type_j_join");
    group.sample_size(10);
    for n in [500usize, 1000, 2000] {
        let spec = WorkloadSpec { n_outer: n, n_inner: n, fanout: 7, ..Default::default() };
        let (catalog, disk) = build_workload(spec);
        group.bench_with_input(BenchmarkId::new("merge_join", n), &n, |b, _| {
            b.iter(|| run_leg(&catalog, &disk, Strategy::Unnest, paper_config()))
        });
        group.bench_with_input(BenchmarkId::new("nested_loop", n), &n, |b, _| {
            b.iter(|| run_leg(&catalog, &disk, Strategy::NestedLoop, paper_config()))
        });
    }
    group.finish();
}

fn fanout_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_join_fanout");
    group.sample_size(10);
    for fanout in [1usize, 8, 32] {
        let spec = WorkloadSpec { n_outer: 1000, n_inner: 1000, fanout, ..Default::default() };
        let (catalog, disk) = build_workload(spec);
        group.bench_with_input(BenchmarkId::from_parameter(fanout), &fanout, |b, _| {
            b.iter(|| run_leg(&catalog, &disk, Strategy::Unnest, paper_config()))
        });
    }
    group.finish();
}

fn thread_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_join_threads");
    group.sample_size(10);
    let spec = WorkloadSpec { n_outer: 2000, n_inner: 2000, fanout: 7, ..Default::default() };
    let (catalog, disk) = build_workload(spec);
    for threads in [1usize, 2, 4, 8] {
        let config = ExecConfig { threads, ..paper_config() };
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| run_leg(&catalog, &disk, Strategy::Unnest, config))
        });
    }
    group.finish();
}

criterion_group!(benches, join_methods, fanout_sweep, thread_sweep);
criterion_main!(benches);
