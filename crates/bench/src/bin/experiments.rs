//! Regenerates every table and figure of the paper's evaluation (Section 9).
//!
//! ```sh
//! cargo run -p bench --release --bin experiments -- [--scale S] [--table1]
//!     [--table2] [--table3] [--table4] [--fig1] [--fig2] [--fig3]
//!     [--ablation-dangling] [--page-io-ms MS] [--nl-pair-budget N]
//!     [--threads T] [--parallel] [--sessions] [--metrics-json FILE] [--all]
//! ```
//!
//! `--threads T` sets the worker-thread count every merge-join leg runs
//! with (default 1, the serial engine). `--parallel` sweeps the scale-8
//! type J leg over 1/2/4/8 threads and writes the machine-readable
//! `BENCH_parallel.json` next to the working directory.
//!
//! `--sessions` sweeps concurrent *sessions* instead of worker threads:
//! 1/2/4/8 sessions share one database handle and replay a three-query
//! statement list against the shared plan cache. Answers are checked
//! bit-for-bit against a serial replay and the sweep reports wall time,
//! plan-cache hits/misses, and catalog lock wait (`BENCH_sessions.json`).
//!
//! `--metrics-json FILE` runs the canonical type J leg once under the
//! scaled configuration and dumps the per-operator metrics registry (the
//! `EXPLAIN ANALYZE` counters) as JSON to `FILE`.
//!
//! With `--scale S` every tuple count is divided by `S` (default 8, so the
//! suite completes in minutes; `--scale 1` reproduces the paper's exact
//! sizes for the merge-join legs). Nested-loop legs whose predicted pair
//! count exceeds the budget are *projected* from the measured per-pair cost
//! and printed with a `*` — the paper prints "—" there (its 16 MB nested
//! loop would have taken ~17 hours of 1995 CPU).

use bench::{analytic, build_workload, paper_config, run_leg, run_leg_sql};
use fuzzy_engine::exec::ExecConfig;
use fuzzy_engine::Strategy;
use fuzzy_storage::CostModel;
use fuzzy_workload::WorkloadSpec;
use std::time::Duration;

struct Args {
    scale: usize,
    page_io_ms: u64,
    nl_pair_budget: u64,
    threads: usize,
    metrics_json: Option<String>,
    run: Vec<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 8,
        page_io_ms: 1,
        nl_pair_budget: 150_000_000,
        threads: 1,
        metrics_json: None,
        run: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => args.scale = it.next().expect("--scale N").parse().expect("number"),
            "--metrics-json" => args.metrics_json = Some(it.next().expect("--metrics-json FILE")),
            "--threads" => {
                args.threads =
                    it.next().expect("--threads T").parse::<usize>().expect("number").max(1)
            }
            "--page-io-ms" => {
                args.page_io_ms = it.next().expect("--page-io-ms MS").parse().expect("number")
            }
            "--nl-pair-budget" => {
                args.nl_pair_budget =
                    it.next().expect("--nl-pair-budget N").parse().expect("number")
            }
            "--all" => args.run.push("all".into()),
            flag if flag.starts_with("--") => args.run.push(flag[2..].to_string()),
            other => panic!("unknown argument {other:?}"),
        }
    }
    if args.run.is_empty() && args.metrics_json.is_none() {
        args.run.push("all".into());
    }
    args
}

fn wants(args: &Args, name: &str) -> bool {
    args.run.iter().any(|r| r == name || r == "all")
}

/// The paper's 2 MB buffer scaled with the workload, preserving the
/// buffer-to-relation ratio (what drives the sort-pass counts and the
/// nested-loop block size).
fn scaled_config(args: &Args) -> ExecConfig {
    let pages = (256 / args.scale.max(1)).max(8);
    ExecConfig {
        buffer_pages: pages,
        sort_pages: pages,
        threads: args.threads,
        ..Default::default()
    }
}

fn main() {
    let args = parse_args();
    let model = CostModel::new(Duration::from_millis(args.page_io_ms));
    println!(
        "# Reproducing Section 9 (scale 1/{}, page I/O {} ms, NL pair budget {})\n",
        args.scale, args.page_io_ms, args.nl_pair_budget
    );
    if wants(&args, "fig1") {
        fig1();
    }
    if wants(&args, "fig2") {
        fig2();
    }
    if wants(&args, "table1") {
        table1(&args, &model);
    }
    if wants(&args, "table2") {
        table2_and_3(&args, &model);
    }
    if wants(&args, "table4") {
        table4(&args, &model);
    }
    if wants(&args, "fig3") {
        fig3(&args, &model);
    }
    if wants(&args, "ablation-dangling") {
        ablation_dangling(&args);
    }
    if wants(&args, "ablation-agg-degree") {
        ablation_agg_degree(&args);
    }
    if wants(&args, "ablation-join-order") {
        ablation_join_order(&args);
    }
    if wants(&args, "ablation-threshold") {
        ablation_threshold(&args);
    }
    if wants(&args, "ablation-join-method") {
        ablation_join_method(&args);
    }
    if wants(&args, "ablation-materialized") {
        ablation_materialized(&args, &model);
    }
    if wants(&args, "parallel") {
        parallel_sweep(&args);
    }
    if wants(&args, "sessions") {
        sessions_sweep(&args);
    }
    if let Some(path) = args.metrics_json.clone() {
        metrics_json_dump(&args, &path);
    }
}

// ---------------------------------------------------------------------------
// --metrics-json: dump the per-operator registry of one type J leg
// ---------------------------------------------------------------------------

fn metrics_json_dump(args: &Args, path: &str) {
    use fuzzy_engine::Engine;
    println!("## Per-operator metrics — canonical type J leg\n");
    let n = 8 * 8000 / args.scale.max(1);
    let spec = WorkloadSpec {
        n_outer: n,
        n_inner: n,
        tuple_bytes: 128,
        fanout: 7,
        seed: 8000 + args.scale as u64,
        ..Default::default()
    };
    let (catalog, disk) = build_workload(spec);
    let engine = Engine::over(catalog.clone().into(), &disk).with_config(scaled_config(args));
    let out = engine.run_sql(bench::TYPE_J_SQL, Strategy::Unnest).expect("metrics leg");
    match std::fs::write(path, out.metrics.to_json()) {
        Ok(()) => {
            println!("wrote per-operator metrics ({} ops) to {path}\n", out.metrics.ops().len())
        }
        Err(e) => println!("could not write {path}: {e}\n"),
    }
}

// ---------------------------------------------------------------------------
// Parallel sweep: the scale-8 type J leg across worker threads
// ---------------------------------------------------------------------------

fn parallel_sweep(args: &Args) {
    use std::time::Instant;
    println!("## Parallel — type J leg across worker threads (exact-equality");
    println!("   parallelism: answers and all cost counters are identical to");
    println!("   threads = 1; only wall time changes)\n");
    let n = 8 * 8000 / args.scale.max(1);
    let spec = WorkloadSpec {
        n_outer: n,
        n_inner: n,
        tuple_bytes: 128,
        fanout: 7,
        seed: 8000 + args.scale as u64,
        ..Default::default()
    };
    let (catalog, disk) = build_workload(spec);
    println!(
        "{:>8} {:>12} {:>14} {:>8} {:>8} {:>12} {:>8}",
        "threads", "wall (s)", "sort CPU (s)", "reads", "writes", "pairs", "rows"
    );
    let mut legs = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let config = ExecConfig { threads, ..scaled_config(args) };
        let started = Instant::now();
        let leg = run_leg(&catalog, &disk, Strategy::Unnest, config);
        let wall = started.elapsed();
        println!(
            "{:>8} {:>12.3} {:>14.3} {:>8} {:>8} {:>12} {:>8}",
            threads,
            wall.as_secs_f64(),
            leg.sort_cpu.as_secs_f64(),
            leg.io.reads,
            leg.io.writes,
            leg.pairs,
            leg.answer_rows
        );
        legs.push((threads, wall, leg));
    }
    // Machine-readable dump (hand-rolled JSON: the build is offline and the
    // numbers are flat).
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"workload\": {{\"query\": \"type_j\", \"n_outer\": {n}, \"n_inner\": {n}, \
         \"tuple_bytes\": 128, \"fanout\": 7, \"scale\": {}, \"seed\": {}}},\n",
        args.scale, spec.seed
    ));
    json.push_str("  \"legs\": [\n");
    for (i, (threads, wall, leg)) in legs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"threads\": {}, \"wall_secs\": {:.6}, \"sort_cpu_secs\": {:.6}, \
             \"reads\": {}, \"writes\": {}, \"sort_io\": {}, \"pairs\": {}, \
             \"answer_rows\": {}}}{}\n",
            threads,
            wall.as_secs_f64(),
            leg.sort_cpu.as_secs_f64(),
            leg.io.reads,
            leg.io.writes,
            leg.sort_io,
            leg.pairs,
            leg.answer_rows,
            if i + 1 < legs.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    match std::fs::write("BENCH_parallel.json", &json) {
        Ok(()) => println!("\nwrote BENCH_parallel.json\n"),
        Err(e) => println!("\ncould not write BENCH_parallel.json: {e}\n"),
    }
}

// ---------------------------------------------------------------------------
// Session sweep: concurrent sessions sharing one database handle
// ---------------------------------------------------------------------------

/// The statement list every session replays: the canonical type J leg plus
/// a type N and a flat join over the same tables, so the shared plan cache
/// holds several distinct entries and hits interleave with misses.
const SESSION_CORPUS: &[&str] = &[
    bench::TYPE_J_SQL,
    "SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S)",
    "SELECT R.ID FROM R, S WHERE R.X = S.X WITH D > 0.3",
];

fn sessions_sweep(args: &Args) {
    use fuzzy_db::Database;
    use std::sync::{Arc, Barrier};
    use std::time::Instant;

    const ROUNDS: usize = 2;
    println!("## Sessions — statement list across concurrent sessions sharing");
    println!("   one database handle (answers are bit-identical to a serial");
    println!("   replay; every session shares the catalog and plan cache)\n");
    let n = (8 * 4000 / args.scale.max(1)).max(64);
    let spec = WorkloadSpec {
        n_outer: n,
        n_inner: n,
        tuple_bytes: 128,
        fanout: 7,
        seed: 8000 + args.scale as u64,
        ..Default::default()
    };
    // One worker thread per engine: the parallelism under test is sessions.
    let config = ExecConfig { threads: 1, ..scaled_config(args) };

    // Serial reference answers, computed once on a private handle.
    let (catalog, disk) = build_workload(spec);
    let mut reference_db = Database::from_catalog(catalog, disk);
    reference_db.set_exec_config(config);
    let reference: Vec<_> = SESSION_CORPUS
        .iter()
        .map(|sql| reference_db.query(*sql).collect().expect("reference leg").canonicalized())
        .collect();

    println!(
        "{:>9} {:>12} {:>11} {:>8} {:>8} {:>8} {:>15} {:>6}",
        "sessions", "wall (s)", "statements", "hits", "misses", "entries", "lock wait (ms)", "peak"
    );
    let mut legs = Vec::new();
    for sessions in [1usize, 2, 4, 8] {
        // A fresh handle per sweep point so the cache and counters start cold.
        let (catalog, disk) = build_workload(spec);
        let mut db = Database::from_catalog(catalog, disk);
        db.set_exec_config(config);
        let barrier = Arc::new(Barrier::new(sessions));
        let started = Instant::now();
        std::thread::scope(|scope| {
            for s in 0..sessions {
                let session = db.session();
                let barrier = Arc::clone(&barrier);
                let reference = &reference;
                scope.spawn(move || {
                    barrier.wait();
                    for round in 0..ROUNDS {
                        for i in 0..SESSION_CORPUS.len() {
                            // Offset schedules per session and round so cache
                            // hits and misses interleave across sessions.
                            let idx = (i + s + round) % SESSION_CORPUS.len();
                            let ans =
                                session.query(SESSION_CORPUS[idx]).collect().expect("session leg");
                            assert!(
                                ans.canonicalized() == reference[idx],
                                "session answer diverged from the serial replay \
                                 (sessions = {sessions}, statement {idx})"
                            );
                        }
                    }
                });
            }
        });
        let wall = started.elapsed();
        let stats = db.plan_cache_stats();
        let counters = db.serving_counters();
        let statements = counters.statements();
        let lock_wait = counters.lock_wait();
        let peak = counters.peak_in_flight();
        println!(
            "{:>9} {:>12.3} {:>11} {:>8} {:>8} {:>8} {:>15.3} {:>6}",
            sessions,
            wall.as_secs_f64(),
            statements,
            stats.hits,
            stats.misses,
            stats.entries,
            lock_wait.as_secs_f64() * 1e3,
            peak
        );
        legs.push((sessions, wall, statements, stats, lock_wait, peak));
    }
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"workload\": {{\"statements\": {}, \"rounds\": {ROUNDS}, \"n_outer\": {n}, \
         \"n_inner\": {n}, \"tuple_bytes\": 128, \"fanout\": 7, \"scale\": {}, \"seed\": {}}},\n",
        SESSION_CORPUS.len(),
        args.scale,
        spec.seed
    ));
    json.push_str("  \"legs\": [\n");
    for (i, (sessions, wall, statements, stats, lock_wait, peak)) in legs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"sessions\": {}, \"wall_secs\": {:.6}, \"statements\": {}, \
             \"cache_hits\": {}, \"cache_misses\": {}, \"cache_invalidations\": {}, \
             \"cache_entries\": {}, \"lock_wait_secs\": {:.6}, \"peak_in_flight\": {}}}{}\n",
            sessions,
            wall.as_secs_f64(),
            statements,
            stats.hits,
            stats.misses,
            stats.invalidations,
            stats.entries,
            lock_wait.as_secs_f64(),
            peak,
            if i + 1 < legs.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    match std::fs::write("BENCH_sessions.json", &json) {
        Ok(()) => println!("\nwrote BENCH_sessions.json\n"),
        Err(e) => println!("\ncould not write BENCH_sessions.json: {e}\n"),
    }
}

/// A calibration of nested-loop per-pair CPU cost, reused for projections.
struct NlCalibration {
    per_pair: Duration,
}

fn calibrate_nl(tuple_bytes: usize, config: ExecConfig) -> NlCalibration {
    let spec =
        WorkloadSpec { n_outer: 2000, n_inner: 2000, tuple_bytes, fanout: 7, ..Default::default() };
    let (catalog, disk) = build_workload(spec);
    let leg = run_leg(&catalog, &disk, Strategy::NestedLoop, config);
    NlCalibration { per_pair: leg.cpu / (leg.pairs.max(1) as u32) }
}

/// Runs (or projects) the nested-loop leg for a spec.
fn nl_leg(
    spec: WorkloadSpec,
    catalog: &fuzzy_rel::Catalog,
    disk: &fuzzy_storage::SimDisk,
    args: &Args,
    model: &CostModel,
    cal: &NlCalibration,
    config: ExecConfig,
) -> (Duration, bool) {
    let pairs = analytic::nested_loop_pairs(spec.n_outer as u64, spec.n_inner as u64);
    if pairs <= args.nl_pair_budget {
        let leg = run_leg(catalog, disk, Strategy::NestedLoop, config);
        (leg.response(model), false)
    } else {
        // Project: CPU from the calibrated per-pair cost; I/O from the
        // paper's block formula with the configured buffer size M.
        let bytes_per_page = 8192 / spec.tuple_bytes.max(1);
        let b_r = (spec.n_outer / bytes_per_page.max(1)) as u64 + 1;
        let b_s = (spec.n_inner / bytes_per_page.max(1)) as u64 + 1;
        let ios = analytic::nested_loop_ios(b_r, b_s, config.buffer_pages as u64);
        let cpu = cal.per_pair * (pairs.min(u32::MAX as u64) as u32)
            + Duration::from_secs_f64(
                cal.per_pair.as_secs_f64() * (pairs.saturating_sub(u32::MAX as u64)) as f64,
            );
        (cpu + model.page_io * (ios as u32), true)
    }
}

fn fmt_secs(d: Duration, projected: bool) -> String {
    format!("{:>9.1}{}", d.as_secs_f64(), if projected { "*" } else { " " })
}

// ---------------------------------------------------------------------------
// Fig. 1: membership functions of "medium young" and "about 35"
// ---------------------------------------------------------------------------

fn fig1() {
    use fuzzy_core::Vocabulary;
    println!("## Fig. 1 — membership functions (sampled)\n");
    let v = Vocabulary::paper();
    let my = v.resolve("medium young").unwrap();
    let a35 = v.resolve("about 35").unwrap();
    println!("{:>5} {:>14} {:>10}", "age", "medium_young", "about_35");
    let mut x = 18.0;
    while x <= 42.0 {
        println!("{:>5} {:>14.2} {:>10.2}", x, my.membership(x).value(), a35.membership(x).value());
        x += 1.0;
    }
    let d = fuzzy_core::possibility(&my, fuzzy_core::CmpOp::Eq, &a35);
    println!("\nintersection height d(medium young = about 35) = {} (paper: 0.5)\n", d);
}

// ---------------------------------------------------------------------------
// Fig. 2 / Example 4.1: the running example end to end
// ---------------------------------------------------------------------------

fn fig2() {
    use fuzzy_engine::Engine;
    use fuzzy_storage::SimDisk;
    println!("## Fig. 2 / Example 4.1 — the running example\n");
    let disk = SimDisk::with_default_page_size();
    let catalog = fuzzy_workload::paper::dating_service(&disk).unwrap();
    let engine = Engine::over(catalog.clone().into(), &disk);
    let t = engine
        .run_sql("SELECT M.INCOME FROM M WHERE M.AGE = 'middle age'", Strategy::Unnest)
        .unwrap();
    println!("T (inner block):\n{}", t.answer);
    let answer = engine
        .run_sql(
            "SELECT F.NAME FROM F WHERE F.AGE = 'medium young' AND F.INCOME IN \
             (SELECT M.INCOME FROM M WHERE M.AGE = 'middle age')",
            Strategy::Unnest,
        )
        .unwrap();
    println!("Answer (paper prints Ann 0.7, Betty 0.7):\n{}", answer.answer);
}

// ---------------------------------------------------------------------------
// Table 1: response times, both relations 1 -> 32 MB
// ---------------------------------------------------------------------------

fn table1(args: &Args, model: &CostModel) {
    println!("## Table 1 — response time (s), both relations 1→32 MB, C = 7");
    println!("   (paper: NL 501/1965/7754/30879/—/—; MJ 40/84/223/852/1897/3733;");
    println!("    speedup 12.5/23.4/34.8/36.2; * = projected beyond the pair budget)\n");
    let config = scaled_config(args);
    let cal = calibrate_nl(128, config);
    println!("{:<16} {:>10} {:>10} {:>8}", "relation size", "nested", "merge", "speedup");
    for mb in [1usize, 2, 4, 8, 16, 32] {
        let n = mb * 8000 / args.scale;
        let spec = WorkloadSpec {
            n_outer: n,
            n_inner: n,
            tuple_bytes: 128,
            fanout: 7,
            seed: 1000 + mb as u64,
            ..Default::default()
        };
        let (catalog, disk) = build_workload(spec);
        let mj = run_leg(&catalog, &disk, Strategy::Unnest, config);
        let mj_rt = mj.response(model);
        let (nl_rt, projected) = nl_leg(spec, &catalog, &disk, args, model, &cal, config);
        println!(
            "{:<16} {} {} {:>8.1}",
            format!("{mb} MB (n={n})"),
            fmt_secs(nl_rt, projected),
            fmt_secs(mj_rt, false),
            nl_rt.as_secs_f64() / mj_rt.as_secs_f64().max(1e-9),
        );
    }
    println!();
}

// ---------------------------------------------------------------------------
// Tables 2 and 3: fixed 4 MB outer, inner 2 -> 16 MB, plus the breakdown
// ---------------------------------------------------------------------------

fn table2_and_3(args: &Args, model: &CostModel) {
    println!("## Table 2 — outer fixed 4 MB, inner 2→16 MB (paper: NL grows");
    println!("   linearly 3912→31049; MJ 156→2152; speedup peaks at 4 MB)\n");
    let config = scaled_config(args);
    let cal = calibrate_nl(128, config);
    let n_outer = 4 * 8000 / args.scale;
    let mut breakdown: Vec<(usize, f64, f64)> = Vec::new();
    println!("{:<16} {:>10} {:>10} {:>8}", "inner size", "nested", "merge", "speedup");
    for mb in [2usize, 4, 8, 16] {
        let n_inner = mb * 8000 / args.scale;
        let spec = WorkloadSpec {
            n_outer,
            n_inner,
            tuple_bytes: 128,
            fanout: 7,
            seed: 2000 + mb as u64,
            ..Default::default()
        };
        let (catalog, disk) = build_workload(spec);
        let mj = run_leg(&catalog, &disk, Strategy::Unnest, config);
        let mj_rt = mj.response(model);
        breakdown.push((mb, mj.cpu_share(model), mj.sort_share(model)));
        let (nl_rt, projected) = nl_leg(spec, &catalog, &disk, args, model, &cal, config);
        println!(
            "{:<16} {} {} {:>8.1}",
            format!("{mb} MB (n={n_inner})"),
            fmt_secs(nl_rt, projected),
            fmt_secs(mj_rt, false),
            nl_rt.as_secs_f64() / mj_rt.as_secs_f64().max(1e-9),
        );
    }
    println!("\n## Table 3 — merge-join time breakdown (paper: CPU% 76/63/51/24;");
    println!("   sorting% 38.7/52.5/61.9/84.1)\n");
    println!("{:<16} {:>8} {:>10}", "inner size", "CPU %", "sorting %");
    for (mb, cpu_share, sort_share) in breakdown {
        println!(
            "{:<16} {:>8.0} {:>10.1}",
            format!("{mb} MB"),
            cpu_share * 100.0,
            sort_share * 100.0
        );
    }
    println!();
}

// ---------------------------------------------------------------------------
// Table 4: tuple size 128 -> 2048 bytes, n = 8000 fixed, C = 1
// ---------------------------------------------------------------------------

fn table4(args: &Args, model: &CostModel) {
    println!("## Table 4 — tuple size sweep, n = 8000, C = 1 (paper: NL");
    println!("   485/514/584/729/1077; MJ 20/37/94/487/896).");
    println!("   Runs at the paper's true n = 8000 regardless of --scale");
    println!("   (the nested loop is 64M pairs, feasible on a modern CPU).\n");
    let n = 8000;
    let config = ExecConfig { threads: args.threads, ..paper_config() };
    println!("{:<12} {:>10} {:>10} {:>8}", "tuple bytes", "nested", "merge", "speedup");
    for tuple_bytes in [128usize, 256, 512, 1024, 2048] {
        let spec = WorkloadSpec {
            n_outer: n,
            n_inner: n,
            tuple_bytes,
            fanout: 1,
            seed: 4000 + tuple_bytes as u64,
            ..Default::default()
        };
        let cal = calibrate_nl(tuple_bytes, config);
        let (catalog, disk) = build_workload(spec);
        let mj = run_leg(&catalog, &disk, Strategy::Unnest, config);
        let mj_rt = mj.response(model);
        let (nl_rt, projected) = nl_leg(spec, &catalog, &disk, args, model, &cal, config);
        println!(
            "{:<12} {} {} {:>8.1}",
            tuple_bytes,
            fmt_secs(nl_rt, projected),
            fmt_secs(mj_rt, false),
            nl_rt.as_secs_f64() / mj_rt.as_secs_f64().max(1e-9),
        );
    }
    println!();
}

// ---------------------------------------------------------------------------
// Fig. 3: fan-out C = 1 -> 128 at 8 MB / 8 MB, merge-join
// ---------------------------------------------------------------------------

fn fig3(args: &Args, model: &CostModel) {
    println!("## Fig. 3 — merge-join vs join number C at 8 MB/8 MB (paper:");
    println!("   #IOs roughly flat, CPU and response time grow with C)\n");
    let n = 8 * 8000 / args.scale;
    println!(
        "{:>5} {:>10} {:>12} {:>14} {:>12} {:>10}",
        "C", "IOs", "CPU (s)", "response (s)", "pairs", "max Rng(r)"
    );
    for c in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        let spec = WorkloadSpec {
            n_outer: n,
            n_inner: n,
            tuple_bytes: 128,
            fanout: c,
            seed: 3000 + c as u64,
            ..Default::default()
        };
        let (catalog, disk) = build_workload(spec);
        let mj = run_leg(&catalog, &disk, Strategy::Unnest, scaled_config(args));
        println!(
            "{:>5} {:>10} {:>12.2} {:>14.2} {:>12} {:>10}",
            c,
            mj.io.total(),
            mj.cpu.as_secs_f64(),
            mj.response(model).as_secs_f64(),
            mj.pairs,
            mj.max_window
        );
    }
    println!();
}

// ---------------------------------------------------------------------------
// Ablation: dangling tuples in Rng(r) as vagueness grows (Section 3 caveat)
// ---------------------------------------------------------------------------

fn ablation_dangling(args: &Args) {
    println!("## Ablation — dangling tuples in Rng(r) as intervals widen");
    println!("   (Section 3: wide supports put tuples in the window that never");
    println!("    join; the merge-join degrades toward quadratic scanning)\n");
    let n = 16000 / args.scale.max(1);
    println!("{:>10} {:>12} {:>14} {:>10}", "vagueness", "pairs", "positive joins", "waste %");
    // A flat join projecting both keys: the answer cardinality counts the
    // pairs that actually join positively, so waste = dangling fraction.
    let sql = "SELECT R.ID, S.ID FROM R, S WHERE R.X = S.X";
    for vagueness in [0.1f64, 0.45, 1.0, 2.0] {
        let spec = WorkloadSpec {
            n_outer: n,
            n_inner: n,
            fanout: 7,
            vagueness,
            fuzzy_fraction: 1.0,
            seed: 77,
            ..Default::default()
        };
        let (catalog, disk) = build_workload(spec);
        let mj = run_leg_sql(&catalog, &disk, Strategy::Unnest, scaled_config(args), sql);
        let useful = mj.answer_rows.max(1);
        println!(
            "{:>10.2} {:>12} {:>14} {:>9.1}%",
            vagueness,
            mj.pairs,
            useful,
            100.0 * (1.0 - useful as f64 / mj.pairs.max(1) as f64)
        );
    }
    println!();
}

// ---------------------------------------------------------------------------
// Ablation: D(A(r)) semantics — Fuzzy SQL's 1 vs mean membership (Section 6)
// ---------------------------------------------------------------------------

fn ablation_agg_degree(args: &Args) {
    use fuzzy_engine::plan::{AggDegree, UnnestPlan};
    use fuzzy_engine::{build_plan, Executor};
    println!("## Ablation — aggregate-result degree D(A(r)) (Section 6 notes the");
    println!("   alternative of average membership degrees; Fuzzy SQL fixes 1)\n");
    let n = 4000 / args.scale.max(1);
    let spec = WorkloadSpec { n_outer: n, n_inner: n, fanout: 7, seed: 11, ..Default::default() };
    let (catalog, disk) = build_workload(spec);
    let q = fuzzy_sql::parse(
        "SELECT R.ID FROM R WHERE R.V <= (SELECT MAX(S.V) FROM S WHERE S.X = R.X)",
    )
    .unwrap();
    let mut plan = build_plan(&q, &catalog).unwrap();
    let mut run_with = |deg: AggDegree| {
        if let UnnestPlan::Agg(p) = &mut plan {
            p.agg_degree = deg;
        }
        let mut ex = Executor::new(&disk, paper_config());
        let answer = ex.run(&plan).unwrap();
        let mean: f64 = answer.tuples().iter().map(|t| t.degree.value()).sum::<f64>()
            / answer.len().max(1) as f64;
        (answer.len(), mean)
    };
    let (rows_one, mean_one) = run_with(AggDegree::One);
    let (rows_mean, mean_mean) = run_with(AggDegree::MeanMembership);
    println!("{:<22} {:>8} {:>14}", "D(A(r)) semantics", "rows", "mean degree");
    println!("{:<22} {:>8} {:>14.3}", "1 (Fuzzy SQL)", rows_one, mean_one);
    println!("{:<22} {:>8} {:>14.3}", "mean membership", rows_mean, mean_mean);
    println!(
        "\nmean-membership degrees are never higher (the group degree joins the\n\
         min-conjunction): {:.3} <= {:.3}\n",
        mean_mean, mean_one
    );
}

// ---------------------------------------------------------------------------
// Ablation: join-order optimization for chain queries (Section 8)
// ---------------------------------------------------------------------------

fn ablation_join_order(args: &Args) {
    use fuzzy_engine::exec::ExecConfig;
    use fuzzy_engine::{Engine, Strategy};
    use fuzzy_rel::Catalog;
    use fuzzy_storage::SimDisk;
    println!("## Ablation — Section 8's join-order step for chain queries");
    println!("   (tables of very different sizes; FROM order is worst-case)\n");
    let scale = args.scale.max(1);
    let disk = SimDisk::with_default_page_size();
    // A big outer table and two small inner ones; the FROM order starts big.
    let big = fuzzy_workload::generate(
        &disk,
        WorkloadSpec {
            n_outer: 16000 / scale,
            n_inner: 1000 / scale,
            fanout: 4,
            seed: 5,
            ..Default::default()
        },
    )
    .unwrap();
    let small = fuzzy_workload::generate(
        &disk,
        WorkloadSpec {
            n_outer: 800 / scale,
            n_inner: 800 / scale,
            fanout: 4,
            seed: 6,
            ..Default::default()
        },
    )
    .unwrap();
    let mut catalog = Catalog::new();
    catalog.register(big.outer.with_file("A", big.outer.file().clone()));
    catalog.register(big.inner.with_file("B", big.inner.file().clone()));
    catalog.register(small.outer.with_file("C", small.outer.file().clone()));
    // Chain on the grid-valued X attribute so every level joins.
    let sql = "SELECT A.ID FROM A WHERE A.X IN \
               (SELECT B.X FROM B WHERE B.X IN \
                (SELECT C.X FROM C WHERE C.V >= 0))";
    println!("{:<12} {:>8} {:>8} {:>12} {:>8}", "reorder", "reads", "writes", "pairs", "rows");
    for reorder in [false, true] {
        disk.reset_io();
        let engine = Engine::over(catalog.clone().into(), &disk).with_config(ExecConfig {
            buffer_pages: 64,
            sort_pages: 64,
            reorder_joins: reorder,
            threads: args.threads,
            ..Default::default()
        });
        let out = engine.run_sql(sql, Strategy::Unnest).unwrap();
        println!(
            "{:<12} {:>8} {:>8} {:>12} {:>8}",
            reorder,
            out.measurement.io.reads,
            out.measurement.io.writes,
            out.exec_stats.pairs_examined,
            out.answer.len()
        );
    }
    println!();
}

// ---------------------------------------------------------------------------
// Ablation: WITH-threshold push-down into the merge window ([42] direction)
// ---------------------------------------------------------------------------

fn ablation_threshold(args: &Args) {
    use fuzzy_engine::exec::ExecConfig;
    use fuzzy_engine::{Engine, Strategy};
    println!("## Ablation — pushing WITH D > z into the merge window");
    println!("   (d(x = y) >= z exactly when the z-cuts intersect: the");
    println!("    equality-indicator idea of the paper's reference [42])\n");
    let n = 16000 / args.scale.max(1);
    let spec = WorkloadSpec {
        n_outer: n,
        n_inner: n,
        fanout: 7,
        fuzzy_fraction: 1.0,
        vagueness: 0.45,
        seed: 21,
        ..Default::default()
    };
    let (catalog, disk) = build_workload(spec);
    println!("{:>6} {:>10} {:>12} {:>12} {:>8}", "z", "pushdown", "pairs", "sort cmps", "rows");
    for z in ["0", "0.5", "0.9"] {
        let sql = format!("SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S) WITH D > {z}");
        for pushdown in [false, true] {
            let engine = Engine::over(catalog.clone().into(), &disk).with_config(ExecConfig {
                threshold_pushdown: pushdown,
                threads: args.threads,
                ..Default::default()
            });
            let out = engine.run_sql(&sql, Strategy::Unnest).unwrap();
            println!(
                "{:>6} {:>10} {:>12} {:>12} {:>8}",
                z,
                pushdown,
                out.exec_stats.pairs_examined,
                out.exec_stats.sort_comparisons,
                out.answer.len()
            );
        }
    }
    println!();
}

// ---------------------------------------------------------------------------
// Ablation: merge-join vs the sampling-based partitioned join
// ---------------------------------------------------------------------------

fn ablation_join_method(args: &Args) {
    use fuzzy_engine::exec::{ExecConfig, JoinMethod};
    use fuzzy_engine::{Engine, Strategy};
    println!("## Ablation — extended merge-join vs sampling-based partitioned");
    println!("   join (Section 3: \"partitioned joins based on sampling are");
    println!("    suggested... more research is needed\")\n");
    let n = 32000 / args.scale.max(1);
    println!(
        "{:<10} {:<13} {:>8} {:>8} {:>10} {:>12} {:>8}",
        "workload", "method", "reads", "writes", "cpu (ms)", "pairs", "rows"
    );
    for (wname, skew) in [("uniform", 0.0f64), ("zipf(1.2)", 1.2)] {
        let spec = WorkloadSpec {
            n_outer: n,
            n_inner: n,
            fanout: 7,
            seed: 31,
            skew,
            ..Default::default()
        };
        let (catalog, disk) = build_workload(spec);
        for (label, method) in
            [("merge", JoinMethod::Merge), ("partitioned", JoinMethod::Partitioned)]
        {
            disk.reset_io();
            let engine = Engine::over(catalog.clone().into(), &disk).with_config(ExecConfig {
                buffer_pages: 32,
                sort_pages: 32,
                join_method: method,
                threads: args.threads,
                ..Default::default()
            });
            let out = engine.run_sql(bench::TYPE_J_SQL, Strategy::Unnest).unwrap();
            println!(
                "{:<10} {:<13} {:>8} {:>8} {:>10.1} {:>12} {:>8}",
                wname,
                label,
                out.measurement.io.reads,
                out.measurement.io.writes,
                out.measurement.cpu.as_secs_f64() * 1e3,
                out.exec_stats.pairs_examined,
                out.answer.len()
            );
        }
    }
    println!();
}

// ---------------------------------------------------------------------------
// Ablation: the Section 2.3 ladder — naive NL, intermediate relations, unnest
// ---------------------------------------------------------------------------

fn ablation_materialized(args: &Args, model: &CostModel) {
    use fuzzy_engine::{Engine, Strategy};
    println!("## Ablation — the Section 2.3 evaluation ladder for a type N query");
    println!("   with a selective p2 (naive nested loop → intermediate relation →");
    println!("   fully unnested merge-join)\n");
    let n = 16000 / args.scale.max(1);
    let spec = WorkloadSpec { n_outer: n, n_inner: n, fanout: 7, seed: 41, ..Default::default() };
    let (catalog, disk) = build_workload(spec);
    // p2 keeps ~10% of S: V uniform in [0, 1000).
    let sql = "SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S WHERE S.V <= 100)";
    println!(
        "{:<18} {:>9} {:>9} {:>12} {:>12}",
        "strategy", "reads", "writes", "pairs", "response (s)"
    );
    for (label, strategy) in [
        ("nested-loop", Strategy::NestedLoop),
        ("materialized-nl", Strategy::MaterializedNestedLoop),
        ("unnest (merge)", Strategy::Unnest),
    ] {
        disk.reset_io();
        let engine = Engine::over(catalog.clone().into(), &disk).with_config(scaled_config(args));
        let out = engine.run_sql(sql, strategy).unwrap();
        println!(
            "{:<18} {:>9} {:>9} {:>12} {:>12.2}",
            label,
            out.measurement.io.reads,
            out.measurement.io.writes,
            out.exec_stats.pairs_examined,
            out.response_time(model).as_secs_f64()
        );
    }
    println!();
}
