//! Shared harness code for the experiments and micro-benchmarks.
//!
//! One experiment leg: generate the Section 9 workload, run the canonical
//! type J query under a strategy, and report I/O, CPU, and the modeled
//! response time. The response time combines measured CPU with I/O counts
//! charged at a configurable per-page latency (DESIGN.md documents the
//! substitution of the paper's 1995 hardware with this model).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use fuzzy_engine::exec::ExecConfig;
use fuzzy_engine::{Engine, Strategy};
use fuzzy_rel::Catalog;
use fuzzy_storage::{CostModel, IoSnapshot, SimDisk};
use fuzzy_workload::{generate, WorkloadSpec};
use std::time::Duration;

/// The canonical type J query of the experiments: the IN attribute is the
/// fan-out-controlled fuzzy attribute `X`; the correlation predicate on the
/// key makes the query type J without affecting the join population.
pub const TYPE_J_SQL: &str =
    "SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S WHERE S.ID <> R.ID)";

/// One measured execution.
#[derive(Debug, Clone, Copy)]
pub struct Leg {
    /// Physical I/O of the run.
    pub io: IoSnapshot,
    /// Measured CPU time.
    pub cpu: Duration,
    /// CPU time attributed to external sorting (merge-join only).
    pub sort_cpu: Duration,
    /// I/O attributed to external sorting.
    pub sort_io: u64,
    /// Tuple pairs examined.
    pub pairs: u64,
    /// Answer cardinality.
    pub answer_rows: u64,
    /// Largest merge window observed (tuples).
    pub max_window: u64,
}

impl Leg {
    /// Modeled response time under `model`.
    pub fn response(&self, model: &CostModel) -> Duration {
        model.response_time(&self.io, self.cpu)
    }

    /// Fraction of the response time that is CPU (Table 3, row 1).
    pub fn cpu_share(&self, model: &CostModel) -> f64 {
        let r = self.response(model).as_secs_f64();
        if r == 0.0 {
            0.0
        } else {
            self.cpu.as_secs_f64() / r
        }
    }

    /// Fraction of the response time spent sorting, CPU + I/O
    /// (Table 3, row 2).
    pub fn sort_share(&self, model: &CostModel) -> f64 {
        let r = self.response(model).as_secs_f64();
        if r == 0.0 {
            return 0.0;
        }
        let sort_io_time = model.page_io.as_secs_f64() * self.sort_io as f64;
        (self.sort_cpu.as_secs_f64() + sort_io_time) / r
    }
}

/// Builds the workload of a spec and returns the catalog + disk, with I/O
/// counters reset so only query execution is measured.
pub fn build_workload(spec: WorkloadSpec) -> (Catalog, SimDisk) {
    let disk = SimDisk::with_default_page_size();
    let w = generate(&disk, spec).expect("workload generation");
    let mut catalog = Catalog::new();
    catalog.register(w.outer.clone());
    catalog.register(w.inner.clone());
    disk.reset_io();
    (catalog, disk)
}

/// Runs the canonical type J query once under `strategy`.
pub fn run_leg(catalog: &Catalog, disk: &SimDisk, strategy: Strategy, config: ExecConfig) -> Leg {
    run_leg_sql(catalog, disk, strategy, config, TYPE_J_SQL)
}

/// Runs an arbitrary query once under `strategy`.
pub fn run_leg_sql(
    catalog: &Catalog,
    disk: &SimDisk,
    strategy: Strategy,
    config: ExecConfig,
    sql: &str,
) -> Leg {
    disk.reset_io();
    let engine = Engine::over(catalog.clone().into(), disk).with_config(config);
    let out = engine.run_sql(sql, strategy).expect("experiment query");
    Leg {
        io: out.measurement.io,
        cpu: out.measurement.cpu,
        sort_cpu: out.exec_stats.sort_cpu,
        sort_io: out.exec_stats.sort_reads + out.exec_stats.sort_writes,
        pairs: out.exec_stats.pairs_examined,
        answer_rows: out.answer.len() as u64,
        max_window: out.exec_stats.max_window,
    }
}

/// Formats a duration in the paper's unit (seconds, one decimal).
pub fn secs(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64())
}

/// The paper's buffer configuration: 2 MB of 8 KB pages for joins and sort.
pub fn paper_config() -> ExecConfig {
    ExecConfig { buffer_pages: 256, sort_pages: 256, ..Default::default() }
}

/// The analytic response-time model of Sections 3–8, used to extend tables
/// beyond the sizes the nested-loop method can be run at (the paper prints
/// "—" there; we optionally print a projected value).
pub mod analytic {
    /// Projected nested-loop I/O count: `b_R + ceil(b_R/(M−1)) × b_S`.
    pub fn nested_loop_ios(b_r: u64, b_s: u64, m: u64) -> u64 {
        b_r + b_r.div_ceil(m.saturating_sub(1).max(1)) * b_s
    }

    /// Projected nested-loop CPU pair count: `n_R × n_S`.
    pub fn nested_loop_pairs(n_r: u64, n_s: u64) -> u64 {
        n_r * n_s
    }

    /// Projected merge-join comparison count `O(n log n)` with constant 1.
    pub fn merge_join_comparisons(n_r: u64, n_s: u64) -> f64 {
        let f = |n: u64| {
            if n == 0 {
                0.0
            } else {
                (n as f64) * (n as f64).log2()
            }
        };
        f(n_r) + f(n_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leg_measurement_smoke() {
        let spec = WorkloadSpec { n_outer: 400, n_inner: 400, fanout: 4, ..Default::default() };
        let (catalog, disk) = build_workload(spec);
        let mj = run_leg(&catalog, &disk, Strategy::Unnest, paper_config());
        let nl = run_leg(&catalog, &disk, Strategy::NestedLoop, paper_config());
        // Answers agree in cardinality.
        assert_eq!(mj.answer_rows, nl.answer_rows);
        // NL examines the full cross product.
        assert_eq!(nl.pairs, 400 * 400);
        // MJ examines far fewer pairs (the windows).
        assert!(mj.pairs < nl.pairs / 10, "mj {} vs nl {}", mj.pairs, nl.pairs);
        // MJ attributed some of its work to sorting.
        assert!(mj.sort_io > 0);
        assert!(mj.sort_cpu > Duration::ZERO);
    }

    #[test]
    fn analytic_model() {
        assert_eq!(analytic::nested_loop_ios(100, 50, 11), 100 + 10 * 50);
        assert_eq!(analytic::nested_loop_pairs(8, 9), 72);
        assert!(analytic::merge_join_comparisons(1024, 1024) > 2.0 * 1024.0 * 9.9);
        assert_eq!(analytic::merge_join_comparisons(0, 0), 0.0);
    }

    #[test]
    fn cpu_and_sort_shares_are_fractions() {
        let spec = WorkloadSpec { n_outer: 300, n_inner: 300, ..Default::default() };
        let (catalog, disk) = build_workload(spec);
        let model = fuzzy_storage::CostModel::default();
        let mj = run_leg(&catalog, &disk, Strategy::Unnest, paper_config());
        let c = mj.cpu_share(&model);
        let s = mj.sort_share(&model);
        assert!((0.0..=1.0).contains(&c), "cpu share {c}");
        assert!((0.0..=1.0).contains(&s), "sort share {s}");
    }
}
