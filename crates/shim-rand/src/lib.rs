//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access to the crates.io registry, so
//! the workspace vendors a minimal, API-compatible subset of `rand` 0.8:
//! `StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range` over the numeric
//! ranges the workspace uses, and `Rng::gen_bool`. The generator is a
//! deterministic splitmix64 — statistically fine for synthetic workloads and
//! reproducible across platforms (which is all the tests and benches need);
//! it is NOT a cryptographic or research-grade source of randomness.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from `self` using `rng`.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        let u = unit_f64(rng.next_u64());
        self.start + u * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i32, i64, u32, u64, usize);

/// High-level sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0..1.0f64), b.gen_range(0.0..1.0f64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let f = rng.gen_range(-3.0..9.5f64);
            assert!((-3.0..9.5).contains(&f));
            let i = rng.gen_range(0..15i32);
            assert!((0..15).contains(&i));
            let u = rng.gen_range(1..=10u32);
            assert!((1..=10).contains(&u));
            let n = rng.gen_range(3..17usize);
            assert!((3..17).contains(&n));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_000..4_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn integer_draws_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }
}
