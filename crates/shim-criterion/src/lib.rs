//! Offline stand-in for the `criterion` crate.
//!
//! The build container cannot reach the crates.io registry, so the workspace
//! vendors the subset of criterion 0.5 its benches use: `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros. Instead of criterion's
//! statistical machinery it times a fixed number of iterations per benchmark
//! and prints mean wall-clock time — enough to compare runs by eye and to
//! keep `cargo bench` working offline.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Label for one parameterized benchmark (subset of criterion's).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

/// Per-benchmark timing driver.
pub struct Bencher {
    samples: usize,
    mean: Duration,
}

impl Bencher {
    /// Times `samples` calls of `routine` and records the mean.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up call.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.mean = start.elapsed() / self.samples as u32;
    }
}

/// The bench registry (subset of criterion's `Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    group: Option<String>,
    sample_size: usize,
}

fn run_one(label: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher { samples: samples.max(1), mean: Duration::ZERO };
    f(&mut b);
    println!("bench {label:<40} {:>12.3?} /iter ({} iters)", b.mean, b.samples);
}

impl Criterion {
    fn label(&self, name: &str) -> String {
        match &self.group {
            Some(g) => format!("{g}/{name}"),
            None => name.to_string(),
        }
    }

    fn effective_samples(&self) -> usize {
        if self.sample_size == 0 {
            10
        } else {
            self.sample_size
        }
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { c: self, name: name.into(), sample_size: 0 }
    }

    /// Runs a single named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(&self.label(name), self.effective_samples(), f);
        self
    }

    /// Runs a single parameterized benchmark.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&self.label(&id.0), self.effective_samples(), |b| f(b, input));
        self
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    fn samples(&self) -> usize {
        if self.sample_size == 0 {
            self.c.effective_samples()
        } else {
            self.sample_size
        }
    }

    /// Runs a named benchmark inside the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{}", self.name, name), self.samples(), f);
        self
    }

    /// Runs a parameterized benchmark inside the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.0), self.samples(), |b| f(b, input));
        self
    }

    /// Closes the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Bundles bench functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn squares(c: &mut Criterion) {
        let mut group = c.benchmark_group("squares");
        group.sample_size(3);
        for n in [2u64, 4] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| b.iter(|| n * n));
        }
        group.finish();
    }

    criterion_group!(benches, squares);

    #[test]
    fn group_and_macros_run() {
        benches();
        let mut c = Criterion::default();
        c.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        c.bench_with_input(BenchmarkId::new("with_input", 7), &7, |b, &x| b.iter(|| x * 2));
    }
}
