//! Satisfaction / membership degrees in `[0, 1]` with fuzzy-logic connectives.
//!
//! The paper measures the satisfaction of every predicate, tuple, and answer by
//! a single *possibility* degree. Conjunction is `min` (fuzzy AND), disjunction
//! is `max` (fuzzy OR, used when eliminating duplicate answer tuples), and
//! negation is `1 - d` (used by the `NOT IN` / `ALL` unnestings of Sections 5
//! and 7).

use crate::error::{FuzzyError, Result};
use std::fmt;
use std::ops::{BitAnd, BitOr, Not};

/// A degree in `[0, 1]`. Construction guarantees the invariant, so `Degree`
/// implements `Eq` and `Ord` (no NaN can be stored).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Degree(f64);

impl Degree {
    /// The degree 0: no membership / complete failure of a predicate.
    pub const ZERO: Degree = Degree(0.0);
    /// The degree 1: full membership / complete satisfaction.
    pub const ONE: Degree = Degree(1.0);

    /// Creates a degree, rejecting values outside `[0, 1]` and NaN.
    pub fn new(d: f64) -> Result<Degree> {
        if d.is_nan() || !(0.0..=1.0).contains(&d) {
            Err(FuzzyError::InvalidDegree(d))
        } else {
            Ok(Degree(d))
        }
    }

    /// Creates a degree, clamping finite values into `[0, 1]`.
    ///
    /// NaN clamps to 0, which is the conservative choice for a satisfaction
    /// degree (an un-evaluable predicate is unsatisfied).
    pub fn clamped(d: f64) -> Degree {
        if d.is_nan() {
            Degree(0.0)
        } else {
            Degree(d.clamp(0.0, 1.0))
        }
    }

    /// The raw value in `[0, 1]`.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Fuzzy AND: `min(self, other)`.
    #[inline]
    pub fn and(self, other: Degree) -> Degree {
        Degree(self.0.min(other.0))
    }

    /// Fuzzy OR: `max(self, other)`.
    #[inline]
    pub fn or(self, other: Degree) -> Degree {
        Degree(self.0.max(other.0))
    }

    /// Fuzzy NOT: `1 - self`.
    #[allow(clippy::should_implement_trait)] // `not` is the fuzzy-logic term; `!d` also works
    #[inline]
    pub fn not(self) -> Degree {
        Degree(1.0 - self.0)
    }

    /// True iff the degree is strictly positive — the membership criterion of
    /// the paper (`a tuple r is in relation R iff μ_R(r) > 0`).
    #[inline]
    pub fn is_positive(self) -> bool {
        self.0 > 0.0
    }

    /// True iff the degree satisfies a `WITH D > z` (or `>=`) threshold clause.
    pub fn meets(self, threshold: Degree, strict: bool) -> bool {
        if strict {
            self.0 > threshold.0
        } else {
            self.0 >= threshold.0
        }
    }

    /// Fuzzy AND over an iterator; `ONE` for an empty iterator (empty
    /// conjunction is completely satisfied).
    pub fn all<I: IntoIterator<Item = Degree>>(iter: I) -> Degree {
        iter.into_iter().fold(Degree::ONE, Degree::and)
    }

    /// Fuzzy OR over an iterator; `ZERO` for an empty iterator (empty
    /// disjunction is completely unsatisfied — e.g. `r.Y IN ∅`).
    pub fn any<I: IntoIterator<Item = Degree>>(iter: I) -> Degree {
        iter.into_iter().fold(Degree::ZERO, Degree::or)
    }

    /// Rounds to `places` decimal places; handy when asserting against the
    /// paper's printed tables.
    pub fn rounded(self, places: u32) -> f64 {
        let k = 10f64.powi(places as i32);
        (self.0 * k).round() / k
    }
}

impl Eq for Degree {}

impl PartialOrd for Degree {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Degree {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Invariant: values are in [0,1], never NaN.
        self.0.partial_cmp(&other.0).expect("Degree is never NaN")
    }
}

impl fmt::Display for Degree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<Degree> for f64 {
    fn from(d: Degree) -> f64 {
        d.0
    }
}

impl BitAnd for Degree {
    type Output = Degree;
    fn bitand(self, rhs: Degree) -> Degree {
        self.and(rhs)
    }
}

impl BitOr for Degree {
    type Output = Degree;
    fn bitor(self, rhs: Degree) -> Degree {
        self.or(rhs)
    }
}

impl Not for Degree {
    type Output = Degree;
    fn not(self) -> Degree {
        Degree::not(self)
    }
}

/// Converts a boolean predicate outcome to a crisp degree (1 or 0).
impl From<bool> for Degree {
    fn from(b: bool) -> Degree {
        if b {
            Degree::ONE
        } else {
            Degree::ZERO
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_range() {
        assert!(Degree::new(0.0).is_ok());
        assert!(Degree::new(1.0).is_ok());
        assert!(Degree::new(0.5).is_ok());
        assert_eq!(Degree::new(-0.1), Err(FuzzyError::InvalidDegree(-0.1)));
        assert_eq!(Degree::new(1.1), Err(FuzzyError::InvalidDegree(1.1)));
        assert!(Degree::new(f64::NAN).is_err());
    }

    #[test]
    fn clamping() {
        assert_eq!(Degree::clamped(-3.0), Degree::ZERO);
        assert_eq!(Degree::clamped(7.0), Degree::ONE);
        assert_eq!(Degree::clamped(f64::NAN), Degree::ZERO);
        assert_eq!(Degree::clamped(0.25).value(), 0.25);
    }

    #[test]
    fn connectives() {
        let a = Degree::new(0.3).unwrap();
        let b = Degree::new(0.7).unwrap();
        assert_eq!(a.and(b).value(), 0.3);
        assert_eq!(a.or(b).value(), 0.7);
        assert_eq!(a.not().value(), 0.7);
        assert_eq!((a & b).value(), 0.3);
        assert_eq!((a | b).value(), 0.7);
        assert_eq!((!a).value(), 0.7);
    }

    #[test]
    fn de_morgan_holds_for_min_max() {
        let a = Degree::new(0.2).unwrap();
        let b = Degree::new(0.9).unwrap();
        assert_eq!(!(a & b), (!a) | (!b));
        assert_eq!(!(a | b), (!a) & (!b));
    }

    #[test]
    fn aggregation_identities() {
        assert_eq!(Degree::all(std::iter::empty()), Degree::ONE);
        assert_eq!(Degree::any(std::iter::empty()), Degree::ZERO);
        let ds = [0.9, 0.4, 0.6].map(|d| Degree::new(d).unwrap());
        assert_eq!(Degree::all(ds).value(), 0.4);
        assert_eq!(Degree::any(ds).value(), 0.9);
    }

    #[test]
    fn thresholds() {
        let d = Degree::new(0.5).unwrap();
        assert!(d.meets(Degree::new(0.5).unwrap(), false));
        assert!(!d.meets(Degree::new(0.5).unwrap(), true));
        assert!(d.meets(Degree::new(0.4).unwrap(), true));
        assert!(d.is_positive());
        assert!(!Degree::ZERO.is_positive());
    }

    #[test]
    fn ordering_and_bool_conversion() {
        assert!(Degree::ZERO < Degree::ONE);
        assert_eq!(Degree::from(true), Degree::ONE);
        assert_eq!(Degree::from(false), Degree::ZERO);
        let mut v = [Degree::ONE, Degree::ZERO, Degree::new(0.5).unwrap()];
        v.sort();
        assert_eq!(v[0], Degree::ZERO);
        assert_eq!(v[2], Degree::ONE);
    }

    #[test]
    fn rounding() {
        assert_eq!(Degree::new(0.6666666).unwrap().rounded(2), 0.67);
        assert_eq!(Degree::new(0.125).unwrap().rounded(1), 0.1);
    }
}
