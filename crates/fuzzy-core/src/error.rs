//! Error type for the fuzzy-core crate.

use std::fmt;

/// Errors produced while constructing or combining fuzzy values.
#[derive(Debug, Clone, PartialEq)]
pub enum FuzzyError {
    /// A membership or satisfaction degree was outside `[0, 1]` or NaN.
    InvalidDegree(f64),
    /// Trapezoid breakpoints were not ordered `a <= b <= c <= d`, or not finite.
    InvalidTrapezoid {
        /// Left end of the support.
        a: f64,
        /// Left end of the core.
        b: f64,
        /// Right end of the core.
        c: f64,
        /// Right end of the support.
        d: f64,
    },
    /// An arithmetic operation was applied to operands that do not support it
    /// (e.g. fuzzy arithmetic on text).
    TypeMismatch {
        /// The operand type the operation requires.
        expected: &'static str,
        /// The operand type actually supplied.
        found: &'static str,
    },
    /// Division of a fuzzy value by zero.
    DivisionByZero,
    /// A linguistic term was not found in the vocabulary.
    UnknownTerm(String),
}

impl fmt::Display for FuzzyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuzzyError::InvalidDegree(d) => write!(f, "invalid degree {d}: must be in [0, 1]"),
            FuzzyError::InvalidTrapezoid { a, b, c, d } => {
                write!(f, "invalid trapezoid ({a}, {b}, {c}, {d}): breakpoints must be finite and ordered a <= b <= c <= d")
            }
            FuzzyError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            FuzzyError::DivisionByZero => write!(f, "division of a fuzzy value by zero"),
            FuzzyError::UnknownTerm(t) => write!(f, "unknown linguistic term {t:?}"),
        }
    }
}

impl std::error::Error for FuzzyError {}

/// Convenience result alias for fuzzy-core operations.
pub type Result<T> = std::result::Result<T, FuzzyError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = FuzzyError::InvalidDegree(1.5);
        assert!(e.to_string().contains("1.5"));
        let e = FuzzyError::InvalidTrapezoid { a: 1.0, b: 0.0, c: 2.0, d: 3.0 };
        assert!(e.to_string().contains("ordered"));
        let e = FuzzyError::TypeMismatch { expected: "number", found: "text" };
        assert!(e.to_string().contains("number"));
        assert!(FuzzyError::DivisionByZero.to_string().contains("zero"));
        assert!(FuzzyError::UnknownTerm("warm".into()).to_string().contains("warm"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(FuzzyError::DivisionByZero, FuzzyError::DivisionByZero);
        assert_ne!(FuzzyError::InvalidDegree(0.5), FuzzyError::InvalidDegree(0.6));
    }
}
