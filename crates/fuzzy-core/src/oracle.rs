//! Brute-force numeric reference for possibility computations.
//!
//! The closed forms in [`crate::compare`] are exact but intricate; this module
//! provides an independent, slow implementation of
//! `d(X θ Y) = sup_{x θ y} min(μ_X(x), μ_Y(y))` by evaluating a dense grid of
//! candidate points. It exists so property-based tests can cross-check the
//! closed forms; production code should always use [`crate::compare`].
//!
//! The grid includes every breakpoint of both operands, points offset by a
//! small epsilon on both sides of each breakpoint (to observe vertical edges),
//! and a uniform sample of the support union. Because membership functions are
//! piecewise linear and min is concave between breakpoints, a dense grid
//! converges to the true supremum; with the breakpoints themselves included,
//! the error is bounded by the grid pitch times the maximum slope.

use crate::compare::CmpOp;
use crate::degree::Degree;
use crate::trapezoid::Trapezoid;

/// Numerically estimates `Poss(X θ Y)` on a grid of `resolution` points per
/// operand (plus breakpoints and epsilon-offset points).
pub fn possibility_grid(x: &Trapezoid, op: CmpOp, y: &Trapezoid, resolution: usize) -> Degree {
    let xs = sample_points(x, y, resolution);
    let ys = xs.clone();
    let mut best: f64 = 0.0;
    for &xv in &xs {
        let mx = x.membership(xv).value();
        if mx <= best {
            continue;
        }
        for &yv in &ys {
            if op.eval_crisp(xv, yv) {
                let m = mx.min(y.membership(yv).value());
                if m > best {
                    best = m;
                }
            }
        }
    }
    Degree::clamped(best)
}

fn sample_points(x: &Trapezoid, y: &Trapezoid, resolution: usize) -> Vec<f64> {
    let (xa, xd) = x.support();
    let (ya, yd) = y.support();
    let lo = xa.min(ya);
    let hi = xd.max(yd);
    let span = (hi - lo).max(1.0);
    let eps = span * 1e-9;
    let mut pts = Vec::with_capacity(resolution + 24);
    let (a1, b1, c1, d1) = x.breakpoints();
    let (a2, b2, c2, d2) = y.breakpoints();
    for bp in [a1, b1, c1, d1, a2, b2, c2, d2] {
        pts.push(bp);
        pts.push(bp - eps);
        pts.push(bp + eps);
    }
    for i in 0..=resolution {
        pts.push(lo + span * (i as f64) / (resolution as f64));
    }
    pts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::possibility;

    #[test]
    fn grid_matches_closed_form_on_known_cases() {
        let my = Trapezoid::new(20.0, 25.0, 30.0, 35.0).unwrap();
        let a35 = Trapezoid::triangular(30.0, 35.0, 40.0).unwrap();
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            let exact = possibility(&my, op, &a35).value();
            let approx = possibility_grid(&my, op, &a35, 400).value();
            assert!((exact - approx).abs() < 1e-2, "op {op}: exact {exact} vs grid {approx}");
        }
    }

    #[test]
    fn grid_sees_vertical_edge_strictness() {
        let xr = Trapezoid::rectangular(5.0, 9.0).unwrap();
        let yr = Trapezoid::rectangular(0.0, 5.0).unwrap();
        // The epsilon-offset points let the grid observe that x < y is only
        // satisfiable where one membership vanishes.
        let lt = possibility_grid(&xr, CmpOp::Lt, &yr, 200).value();
        assert!(lt < 1e-6, "got {lt}");
        let le = possibility_grid(&xr, CmpOp::Le, &yr, 200).value();
        assert!((le - 1.0).abs() < 1e-6);
    }
}

/// Numerically estimates the similarity degree
/// `sup min(μ_X(x), μ_≈(x, y), μ_Y(y))` with
/// `μ_≈(x, y) = max(0, 1 − |x − y| / tol)` on a grid.
pub fn similarity_grid(x: &Trapezoid, y: &Trapezoid, tol: f64, resolution: usize) -> Degree {
    let xs = sample_points(x, y, resolution);
    let mut best: f64 = 0.0;
    for &xv in &xs {
        let mx = x.membership(xv).value();
        if mx <= best {
            continue;
        }
        for &yv in &xs {
            let sim = if tol > 0.0 {
                (1.0 - (xv - yv).abs() / tol).max(0.0)
            } else {
                if xv == yv {
                    1.0
                } else {
                    0.0
                }
            };
            let m = mx.min(sim).min(y.membership(yv).value());
            if m > best {
                best = m;
            }
        }
    }
    Degree::clamped(best)
}

#[cfg(test)]
mod similarity_tests {
    use super::*;
    use crate::compare::approximately_equal;

    #[test]
    fn similarity_grid_matches_closed_form() {
        let cases = [
            (Trapezoid::crisp(10.0).unwrap(), Trapezoid::crisp(12.0).unwrap(), 4.0),
            (
                Trapezoid::triangular(0.0, 5.0, 10.0).unwrap(),
                Trapezoid::triangular(8.0, 14.0, 20.0).unwrap(),
                3.0,
            ),
            (
                Trapezoid::rectangular(0.0, 4.0).unwrap(),
                Trapezoid::rectangular(6.0, 9.0).unwrap(),
                5.0,
            ),
        ];
        for (x, y, tol) in cases {
            let exact = approximately_equal(&x, &y, tol).value();
            let approx = similarity_grid(&x, &y, tol, 500).value();
            assert!(
                (exact - approx).abs() < 2e-2,
                "{x} ~ {y} within {tol}: exact {exact} vs grid {approx}"
            );
        }
    }
}
