//! Linguistic term vocabularies.
//!
//! Fuzzy SQL predicates may mention linguistic terms such as `"medium young"`
//! or `"about 35"`; a vocabulary maps those terms to trapezoidal possibility
//! distributions. Terms are case-insensitive.
//!
//! [`Vocabulary::paper`] reconstructs the vocabulary of the paper's running
//! example (Figs. 1 and 2, Example 4.1). The parameters of "medium young" and
//! "about 35" are fixed exactly by Fig. 1 (membership 0.8 at age 24 and
//! intersection height 0.5). The remaining terms are not fully legible in the
//! published figure; we calibrated them so that every satisfaction degree the
//! paper prints for Example 4.1 is reproduced exactly:
//!
//! * `d("about 50" = "middle age") = 0.4` (tuple "about 40K" enters T with 0.4),
//! * `d("middle age" = "medium young") = 0.7` (Betty's final degree),
//! * `d("about 60K" = "high") = 0.3` (Ann/101's final degree 0.3),
//! * `d("medium high" = "high") = 0.7` (Ann/102's final degree 0.7),
//! * the final answer is {Ann: 0.7, Betty: 0.7}.

use crate::error::{FuzzyError, Result};
use crate::trapezoid::Trapezoid;
use std::collections::HashMap;

/// A case-insensitive mapping from linguistic terms to distributions.
///
/// ```
/// use fuzzy_core::{Trapezoid, Vocabulary};
///
/// let mut vocab = Vocabulary::new();
/// vocab.define("warm", Trapezoid::triangular(15.0, 22.0, 30.0)?);
/// // Hedges derive new terms on the fly.
/// let very_warm = vocab.resolve("very warm")?;
/// assert!(very_warm.support_width() < vocab.resolve("warm")?.support_width());
/// # Ok::<(), fuzzy_core::FuzzyError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    terms: HashMap<String, Trapezoid>,
}

impl Vocabulary {
    /// An empty vocabulary.
    pub fn new() -> Vocabulary {
        Vocabulary::default()
    }

    /// Defines (or redefines) a term.
    pub fn define(&mut self, name: impl AsRef<str>, shape: Trapezoid) {
        self.terms.insert(name.as_ref().to_lowercase(), shape);
    }

    /// Looks a term up, case-insensitively. Exact definitions only; use
    /// [`Vocabulary::resolve`] for hedge handling.
    pub fn get(&self, name: &str) -> Option<&Trapezoid> {
        self.terms.get(&name.to_lowercase())
    }

    /// Looks a term up, producing an error naming the missing term.
    ///
    /// Supports the linguistic hedges `very` and `somewhat` as prefixes of
    /// defined terms (unless the hedged phrase itself is defined, which takes
    /// precedence): `very X` *concentrates* X — its edges steepen so partial
    /// members lose degree — and `somewhat X` *dilates* it. With trapezoidal
    /// shapes the classic `μ²`/`√μ` operators would leave the family, so the
    /// standard shape-preserving form is used: `very` halves each edge width
    /// (keeping the core), `somewhat` doubles it.
    pub fn resolve(&self, name: &str) -> Result<Trapezoid> {
        if let Some(t) = self.get(name) {
            return Ok(*t);
        }
        let lower = name.to_lowercase();
        for (hedge, factor) in [("very ", 0.5f64), ("somewhat ", 2.0)] {
            if let Some(base) = lower.strip_prefix(hedge) {
                // Hedges stack: "very very old" applies the transform twice.
                if let Ok(t) = self.resolve(base) {
                    let (a, b, c, d) = t.breakpoints();
                    return Trapezoid::new(b - (b - a) * factor, b, c, c + (d - c) * factor);
                }
            }
        }
        Err(FuzzyError::UnknownTerm(name.to_string()))
    }

    /// Number of defined terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True iff no terms are defined.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates over `(term, shape)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Trapezoid)> {
        self.terms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// The vocabulary of the paper's running examples (see module docs).
    /// Ages are in years; incomes in thousands of dollars.
    pub fn paper() -> Vocabulary {
        let mut v = Vocabulary::new();
        let t = |a, b, c, d| Trapezoid::new(a, b, c, d).expect("static term");
        let tri = |a, b, c| Trapezoid::triangular(a, b, c).expect("static term");
        // AGE terms.
        v.define("young", t(0.0, 18.0, 25.0, 35.0));
        v.define("medium young", t(20.0, 25.0, 30.0, 35.0)); // Fig. 1
        v.define("about 35", tri(30.0, 35.0, 40.0)); // Fig. 1
        v.define("middle age", t(28.0, 33.0, 41.0, 51.0));
        v.define("about 50", tri(45.0, 50.0, 55.0));
        v.define("about 29", tri(26.0, 29.0, 32.0));
        v.define("old", t(55.0, 65.0, 120.0, 130.0));
        // INCOME terms (thousands of dollars).
        v.define("low", t(0.0, 0.0, 15.0, 25.0));
        v.define("medium low", t(15.0, 20.0, 30.0, 35.0));
        v.define("about 25K", tri(20.0, 25.0, 30.0));
        v.define("about 40K", tri(35.0, 40.0, 45.0));
        v.define("medium high", t(45.0, 55.0, 65.0, 75.0));
        v.define("about 60K", tri(55.0, 60.0, 65.0));
        v.define("high", t(60.125, 71.375, 120.0, 130.0));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compare::{possibility, CmpOp};

    #[test]
    fn define_and_lookup_case_insensitive() {
        let mut v = Vocabulary::new();
        assert!(v.is_empty());
        v.define("Warm", Trapezoid::triangular(15.0, 22.0, 30.0).unwrap());
        assert_eq!(v.len(), 1);
        assert!(v.get("warm").is_some());
        assert!(v.get("WARM").is_some());
        assert!(v.get("cold").is_none());
        assert_eq!(v.resolve("cold"), Err(FuzzyError::UnknownTerm("cold".into())));
        // Redefinition replaces.
        v.define("WARM", Trapezoid::triangular(10.0, 20.0, 30.0).unwrap());
        assert_eq!(v.len(), 1);
        assert_eq!(v.get("warm").unwrap().core_center(), 20.0);
    }

    #[test]
    fn paper_vocabulary_matches_fig1() {
        let v = Vocabulary::paper();
        let my = v.resolve("medium young").unwrap();
        let a35 = v.resolve("about 35").unwrap();
        assert!((my.membership(24.0).value() - 0.8).abs() < 1e-12);
        assert!((possibility(&a35, CmpOp::Eq, &my).value() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn paper_vocabulary_example_41_calibration() {
        // The degrees the paper prints in Example 4.1.
        let v = Vocabulary::paper();
        let p = |x: &str, y: &str| {
            possibility(&v.resolve(x).unwrap(), CmpOp::Eq, &v.resolve(y).unwrap()).value()
        };
        assert!(
            (p("about 50", "middle age") - 0.4).abs() < 1e-9,
            "got {}",
            p("about 50", "middle age")
        );
        assert!((p("middle age", "medium young") - 0.7).abs() < 1e-9);
        assert!((p("about 60K", "high") - 0.3).abs() < 1e-9, "got {}", p("about 60K", "high"));
        assert!((p("medium high", "high") - 0.7).abs() < 1e-9);
        assert_eq!(p("middle age", "middle age"), 1.0);
        // Exclusions the example depends on.
        assert_eq!(p("about 50", "medium young"), 0.0);
        let crisp24 = Trapezoid::crisp(24.0).unwrap();
        assert_eq!(
            possibility(&crisp24, CmpOp::Eq, &v.resolve("middle age").unwrap()).value(),
            0.0
        );
        assert_eq!(p("about 60K", "about 40K"), 0.0);
        assert_eq!(p("medium high", "about 40K"), 0.0);
        assert_eq!(p("medium high", "medium low"), 0.0);
        assert_eq!(p("about 60K", "medium low"), 0.0);
    }

    #[test]
    fn hedges_concentrate_and_dilate() {
        let v = Vocabulary::paper();
        let base = v.resolve("medium young").unwrap(); // (20, 25, 30, 35)
        let very = v.resolve("very medium young").unwrap();
        let somewhat = v.resolve("SOMEWHAT medium young").unwrap();
        assert_eq!(very.breakpoints(), (22.5, 25.0, 30.0, 32.5));
        assert_eq!(somewhat.breakpoints(), (15.0, 25.0, 30.0, 40.0));
        // Cores are preserved; membership of partial members moves the
        // expected way.
        assert_eq!(very.core(), base.core());
        assert!(very.membership(23.0) < base.membership(23.0));
        assert!(somewhat.membership(18.0) > base.membership(18.0));
        // Hedges stack.
        let very2 = v.resolve("very very medium young").unwrap();
        assert_eq!(very2.breakpoints(), (23.75, 25.0, 30.0, 31.25));
        // Unknown bases still error.
        assert!(v.resolve("very galactic").is_err());
        // An explicit definition shadows the hedge.
        let mut v2 = Vocabulary::new();
        v2.define("old", Trapezoid::new(55.0, 65.0, 120.0, 130.0).unwrap());
        v2.define("very old", Trapezoid::new(70.0, 80.0, 120.0, 130.0).unwrap());
        assert_eq!(v2.resolve("very old").unwrap().breakpoints().0, 70.0);
    }

    #[test]
    fn paper_vocabulary_iterates_all_terms() {
        let v = Vocabulary::paper();
        assert!(v.len() >= 14);
        assert!(v.iter().any(|(name, _)| name == "high"));
    }
}
