//! # fuzzy-core
//!
//! Fuzzy set theory substrate for the fuzzy relational database reproducing
//! *"Efficient Processing of Nested Fuzzy SQL Queries in a Fuzzy Database"*
//! (Yang, Zhang, Liu, Wu, Yu, Nakajima, Rishe; ICDE 1995 / TKDE 2001).
//!
//! This crate implements:
//!
//! * [`Degree`] — satisfaction/membership degrees in `[0, 1]` with the fuzzy
//!   connectives used throughout the paper (AND = min, OR = max, NOT = 1 − d);
//! * [`Trapezoid`] — trapezoidal possibility distributions with supports,
//!   cores, α-cuts and defuzzification;
//! * [`compare`] — exact possibility degrees `d(X θ Y)` for every comparison
//!   operator, plus necessity and tolerance-based similarity;
//! * [`arith`] — fuzzy interval arithmetic backing `SUM`/`AVG`, and the
//!   defuzzified ordering backing `MIN`/`MAX` (Section 6 semantics);
//! * [`interval_order`] — the linear order `⪯` of Definition 3.1 that makes
//!   the extended merge-join possible;
//! * [`Vocabulary`] — linguistic terms ("medium young", "about 35", …),
//!   including the calibrated vocabulary of the paper's running example;
//! * [`oracle`] — a brute-force numeric reference used by property tests.
//!
//! ## Example
//!
//! ```
//! use fuzzy_core::{Trapezoid, Value, CmpOp};
//!
//! // Ages known only vaguely still compare with a graded possibility.
//! let medium_young = Value::fuzzy(Trapezoid::new(20.0, 25.0, 30.0, 35.0)?);
//! let crisp = Value::number(24.0);
//! let d = crisp.compare(CmpOp::Eq, &medium_young);
//! assert!((d.value() - 0.8).abs() < 1e-12);
//! # Ok::<(), fuzzy_core::FuzzyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arith;
pub mod compare;
pub mod degree;
pub mod error;
pub mod interval_order;
pub mod oracle;
pub mod trapezoid;
pub mod value;
pub mod vocab;

pub use compare::{approximately_equal, necessity, possibility, CmpOp};
pub use degree::Degree;
pub use error::{FuzzyError, Result};
pub use trapezoid::Trapezoid;
pub use value::Value;
pub use vocab::Vocabulary;
