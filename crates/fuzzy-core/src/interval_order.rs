//! The linear order `⪯` on fuzzy values (Definition 3.1 of the paper).
//!
//! Each data value `v` represents the interval `[b(v), e(v)]` in which its
//! membership is greater than 0 (a crisp value `v` represents `[v, v]`).
//! Values are ordered primarily by the left endpoint `b(v)`, then by the
//! right endpoint `e(v)`. Sorting both join relations by `⪯` is what makes
//! the extended merge-join of Section 3 correct: every inner tuple preceding
//! `Rng(r)` also precedes `Rng(r')` for all later outer tuples `r'`.
//!
//! We refine the paper's order with two extra tie-breakers that do not affect
//! its correctness argument but are useful to the engine:
//!
//! 1. remaining trapezoid breakpoints, so *identical* representations sort
//!    adjacently (needed by the identity-equality grouping of the JA
//!    unnesting in Section 6);
//! 2. a deterministic cross-type order (`Null < numeric < text`), so mixed
//!    columns still sort totally; text sorts lexicographically, which keeps
//!    equal strings adjacent for crisp equi-joins on text.

use crate::degree::Degree;
use crate::value::Value;
use std::cmp::Ordering;

/// Compares two values by `⪯` (with the refinements described above).
pub fn cmp_values(x: &Value, y: &Value) -> Ordering {
    cmp_values_at(x, y, Degree::ZERO)
}

/// Compares two values by the `⪯` order of their α-cut intervals. With
/// α = 0 this is exactly [`cmp_values`]; with α = z it orders by the z-cuts,
/// which lets a `WITH D > z` threshold shrink the merge windows (two values
/// can reach equality degree ≥ z only if their z-cuts intersect).
pub fn cmp_values_at(x: &Value, y: &Value, alpha: Degree) -> Ordering {
    rank(x).cmp(&rank(y)).then_with(|| match (x, y) {
        (Value::Null, Value::Null) => Ordering::Equal,
        (Value::Text(a), Value::Text(b)) => a.cmp(b),
        _ => {
            let tx = x.as_distribution().expect("rank guarantees numeric");
            let ty = y.as_distribution().expect("rank guarantees numeric");
            let (xl, xr) = tx.alpha_cut(alpha);
            let (yl, yr) = ty.alpha_cut(alpha);
            let (xa, xb, xc, xd) = tx.breakpoints();
            let (ya, yb, yc, yd) = ty.breakpoints();
            // Definition 3.1 on the α-cut: left endpoint, then right
            // endpoint; then the full breakpoints as identity tie-breakers.
            total(xl, yl)
                .then(total(xr, yr))
                .then(total(xa, ya))
                .then(total(xd, yd))
                .then(total(xb, yb))
                .then(total(xc, yc))
        }
    })
}

fn rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Number(_) | Value::Fuzzy(_) => 1,
        Value::Text(_) => 2,
    }
}

fn total(a: f64, b: f64) -> Ordering {
    // Values are finite by construction; partial_cmp cannot fail.
    a.partial_cmp(&b).expect("finite floats")
}

/// True iff value `x` wholly precedes value `y` under `⪯` *without interval
/// intersection*: `e(x) < b(y)`. In the merge-join scan, an inner tuple
/// satisfying this against the current outer tuple can never join with it or
/// any later outer tuple.
pub fn strictly_before(x: &Value, y: &Value) -> bool {
    strictly_before_at(x, y, Degree::ZERO)
}

/// [`strictly_before`] on the α-cut intervals (threshold push-down).
pub fn strictly_before_at(x: &Value, y: &Value, alpha: Degree) -> bool {
    match (x.interval_at(alpha), y.interval_at(alpha)) {
        (Some((_, xe)), Some((yb, _))) => xe < yb,
        // Text joins crisply: "before" means strictly smaller text.
        _ => match (x, y) {
            (Value::Text(a), Value::Text(b)) => a < b,
            _ => false,
        },
    }
}

/// True iff value `x` wholly follows value `y`: `b(x) > e(y)`. In the
/// merge-join scan of the inner relation for outer tuple with value `y`, the
/// first inner value satisfying this ends `Rng`.
pub fn strictly_after(x: &Value, y: &Value) -> bool {
    strictly_before(y, x)
}

/// [`strictly_after`] on the α-cut intervals (threshold push-down).
pub fn strictly_after_at(x: &Value, y: &Value, alpha: Degree) -> bool {
    strictly_before_at(y, x, alpha)
}

/// True iff the intervals of the two values intersect (the necessary
/// condition for a positive fuzzy equality degree).
pub fn intervals_intersect(x: &Value, y: &Value) -> bool {
    match (x.interval(), y.interval()) {
        (Some((xb, xe)), Some((yb, ye))) => xb <= ye && yb <= xe,
        _ => match (x, y) {
            (Value::Text(a), Value::Text(b)) => a == b,
            _ => false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trapezoid::Trapezoid;

    fn fv(a: f64, b: f64, c: f64, d: f64) -> Value {
        Value::fuzzy(Trapezoid::new(a, b, c, d).unwrap())
    }

    #[test]
    fn paper_example_31_ordering() {
        // Example 3.1: r-values [30,35], [20,28], [20,35] order as
        // [20,28] ≺ [20,35] ≺ [30,35].
        let r1 = fv(30.0, 31.0, 33.0, 35.0);
        let r2 = fv(20.0, 22.0, 26.0, 28.0);
        let r3 = fv(20.0, 24.0, 30.0, 35.0);
        let mut v = vec![r1.clone(), r2.clone(), r3.clone()];
        v.sort_by(cmp_values);
        assert_eq!(v, vec![r2, r3, r1]);
        // s-values [32,34], [20,25], [30,40] order as
        // [20,25] ≺ [30,40] ≺ [32,34].
        let s1 = fv(32.0, 33.0, 33.0, 34.0);
        let s2 = fv(20.0, 21.0, 24.0, 25.0);
        let s3 = fv(30.0, 31.0, 39.0, 40.0);
        let mut v = vec![s1.clone(), s2.clone(), s3.clone()];
        v.sort_by(cmp_values);
        assert_eq!(v, vec![s2, s3, s1]);
    }

    #[test]
    fn crisp_values_order_numerically() {
        let mut v = vec![Value::number(5.0), Value::number(-1.0), Value::number(2.0)];
        v.sort_by(cmp_values);
        assert_eq!(v, vec![Value::number(-1.0), Value::number(2.0), Value::number(5.0)]);
    }

    #[test]
    fn crisp_interleaves_with_fuzzy_by_support() {
        let crisp28 = Value::number(28.0);
        let my = fv(20.0, 25.0, 30.0, 35.0); // support [20, 35]
        assert_eq!(cmp_values(&my, &crisp28), std::cmp::Ordering::Less);
    }

    #[test]
    fn identical_representations_are_equal_and_adjacent() {
        let a = fv(1.0, 2.0, 3.0, 4.0);
        let b = fv(1.0, 2.0, 3.0, 4.0);
        assert_eq!(cmp_values(&a, &b), Ordering::Equal);
        // Same support, different cores: still totally ordered.
        let c = fv(1.0, 2.5, 3.0, 4.0);
        assert_ne!(cmp_values(&a, &c), Ordering::Equal);
        assert_eq!(cmp_values(&a, &c), cmp_values(&b, &c));
    }

    #[test]
    fn cross_type_order_is_total() {
        let mut v =
            vec![Value::text("zebra"), Value::number(1.0), Value::Null, Value::text("apple")];
        v.sort_by(cmp_values);
        assert_eq!(
            v,
            vec![Value::Null, Value::number(1.0), Value::text("apple"), Value::text("zebra")]
        );
    }

    #[test]
    fn before_after_and_intersection() {
        let left = fv(0.0, 1.0, 2.0, 3.0);
        let right = fv(5.0, 6.0, 7.0, 8.0);
        let wide = fv(2.0, 3.0, 6.0, 9.0);
        assert!(strictly_before(&left, &right));
        assert!(strictly_after(&right, &left));
        assert!(!strictly_before(&left, &wide));
        assert!(intervals_intersect(&left, &wide));
        assert!(intervals_intersect(&wide, &right));
        assert!(!intervals_intersect(&left, &right));
        // Touching intervals intersect (possibility there may still be 0,
        // but the merge-join must examine the pair).
        let touch = fv(3.0, 4.0, 5.0, 6.0);
        assert!(intervals_intersect(&left, &touch));
        assert!(!strictly_before(&left, &touch));
    }

    #[test]
    fn text_before_after() {
        let a = Value::text("ann");
        let b = Value::text("bob");
        assert!(strictly_before(&a, &b));
        assert!(!strictly_before(&b, &a));
        assert!(intervals_intersect(&a, &a.clone()));
        assert!(!intervals_intersect(&a, &b));
    }

    #[test]
    fn order_is_consistent_with_sort_stability_requirements() {
        // Antisymmetry + transitivity smoke check over a small set.
        let vals = [
            Value::Null,
            Value::number(1.0),
            Value::number(2.0),
            fv(0.0, 1.0, 2.0, 3.0),
            fv(0.0, 1.5, 2.0, 3.0),
            fv(0.0, 1.0, 2.0, 4.0),
            Value::text("a"),
        ];
        for x in &vals {
            assert_eq!(cmp_values(x, x), Ordering::Equal);
            for y in &vals {
                assert_eq!(cmp_values(x, y), cmp_values(y, x).reverse());
                for z in &vals {
                    if cmp_values(x, y) == Ordering::Less && cmp_values(y, z) == Ordering::Less {
                        assert_eq!(cmp_values(x, z), Ordering::Less);
                    }
                }
            }
        }
    }
}
