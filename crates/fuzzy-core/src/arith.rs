//! Fuzzy arithmetic on trapezoidal distributions (Section 6 of the paper).
//!
//! With a trapezoidal membership function, a fuzzy value induces two
//! intervals: the 0-cut `[a, d]` (all values with membership > 0) and the
//! 1-cut `[b, c]` (all values with membership 1). Fuzzy arithmetic operations
//! take two values and determine the two intervals of the result by interval
//! arithmetic; e.g. `x + y` has 0-cut `[a1 + a2, d1 + d2]` and 1-cut
//! `[b1 + b2, c1 + c2]`. `AVG` is defined by fuzzy addition and division,
//! `SUM` by fuzzy addition, and `MIN`/`MAX` by a defuzzification that orders
//! fuzzy values by the centre of their 1-cuts.

use crate::error::{FuzzyError, Result};
use crate::trapezoid::Trapezoid;
use crate::value::Value;

/// Fuzzy addition: component-wise on both cuts.
///
/// ```
/// use fuzzy_core::{arith, Trapezoid};
///
/// let x = Trapezoid::new(1.0, 2.0, 3.0, 4.0)?;
/// let y = Trapezoid::triangular(10.0, 20.0, 30.0)?;
/// assert_eq!(arith::add(&x, &y), Trapezoid::new(11.0, 22.0, 23.0, 34.0)?);
/// # Ok::<(), fuzzy_core::FuzzyError>(())
/// ```
pub fn add(x: &Trapezoid, y: &Trapezoid) -> Trapezoid {
    let (a1, b1, c1, d1) = x.breakpoints();
    let (a2, b2, c2, d2) = y.breakpoints();
    Trapezoid::new(a1 + a2, b1 + b2, c1 + c2, d1 + d2)
        .expect("sum of ordered breakpoints stays ordered")
}

/// Fuzzy subtraction: `x − y` has 0-cut `[a1 − d2, d1 − a2]` and 1-cut
/// `[b1 − c2, c1 − b2]`.
pub fn sub(x: &Trapezoid, y: &Trapezoid) -> Trapezoid {
    add(x, &neg(y))
}

/// Fuzzy negation: mirrors the distribution about 0.
pub fn neg(x: &Trapezoid) -> Trapezoid {
    let (a, b, c, d) = x.breakpoints();
    Trapezoid::new(-d, -c, -b, -a).expect("mirrored breakpoints stay ordered")
}

/// Multiplication by a crisp scalar.
pub fn scale(x: &Trapezoid, k: f64) -> Trapezoid {
    let (a, b, c, d) = x.breakpoints();
    let t = if k >= 0.0 {
        Trapezoid::new(a * k, b * k, c * k, d * k)
    } else {
        Trapezoid::new(d * k, c * k, b * k, a * k)
    };
    t.expect("scaled breakpoints stay ordered")
}

/// Division by a non-zero crisp scalar.
pub fn div(x: &Trapezoid, k: f64) -> Result<Trapezoid> {
    if k == 0.0 {
        return Err(FuzzyError::DivisionByZero);
    }
    Ok(scale(x, 1.0 / k))
}

/// Fuzzy sum of an iterator of distributions; `None` for an empty input
/// (matching the paper: `SUM` of an empty fuzzy set is NULL).
pub fn sum<'a, I: IntoIterator<Item = &'a Trapezoid>>(values: I) -> Option<Trapezoid> {
    values.into_iter().fold(None, |acc: Option<Trapezoid>, t| {
        Some(match acc {
            None => *t,
            Some(s) => add(&s, t),
        })
    })
}

/// Fuzzy average: the fuzzy sum divided by the crisp count; `None` for an
/// empty input.
pub fn avg<'a, I: IntoIterator<Item = &'a Trapezoid>>(values: I) -> Option<Trapezoid> {
    let mut n = 0usize;
    let mut acc: Option<Trapezoid> = None;
    for t in values {
        n += 1;
        acc = Some(match acc {
            None => *t,
            Some(s) => add(&s, t),
        });
    }
    acc.map(|s| div(&s, n as f64).expect("n > 0"))
}

/// Defuzzified ordering key: the centre of the 1-cut (Section 6's sorting
/// criterion for `MIN`/`MAX`).
pub fn defuzz_key(t: &Trapezoid) -> f64 {
    t.core_center()
}

/// Total order used by `MIN`/`MAX`: defuzzified key first, then the full
/// breakpoint tuple so ties resolve deterministically regardless of the
/// input order (sorted streams and scan order must agree).
fn defuzz_cmp(x: &Trapezoid, y: &Trapezoid) -> std::cmp::Ordering {
    let kx = defuzz_key(x);
    let ky = defuzz_key(y);
    kx.partial_cmp(&ky).expect("finite").then_with(|| {
        let (xa, xb, xc, xd) = x.breakpoints();
        let (ya, yb, yc, yd) = y.breakpoints();
        [xa, xb, xc, xd].partial_cmp(&[ya, yb, yc, yd]).expect("finite")
    })
}

/// The minimum of an iterator of fuzzy values under the defuzzified order;
/// returns the original distribution, not its defuzzified number.
pub fn fuzzy_min<'a, I: IntoIterator<Item = &'a Trapezoid>>(values: I) -> Option<Trapezoid> {
    values.into_iter().min_by(|x, y| defuzz_cmp(x, y)).copied()
}

/// The maximum, symmetric to [`fuzzy_min`].
pub fn fuzzy_max<'a, I: IntoIterator<Item = &'a Trapezoid>>(values: I) -> Option<Trapezoid> {
    values.into_iter().max_by(|x, y| defuzz_cmp(x, y)).copied()
}

/// Value-level fuzzy addition; errors on non-numeric operands.
pub fn value_add(x: &Value, y: &Value) -> Result<Value> {
    match (x.as_distribution(), y.as_distribution()) {
        (Some(a), Some(b)) => Ok(Value::fuzzy(add(&a, &b))),
        _ => Err(FuzzyError::TypeMismatch {
            expected: "number",
            found: if x.as_distribution().is_none() { x.type_name() } else { y.type_name() },
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(a: f64, b: f64, c: f64, d: f64) -> Trapezoid {
        Trapezoid::new(a, b, c, d).unwrap()
    }

    #[test]
    fn paper_addition_example() {
        // Section 6: x with 0-cut [x1, x4], 1-cut [x2, x3]; y likewise;
        // x + y has 0-cut [x1+y1, x4+y4] and 1-cut [x2+y2, x3+y3].
        let x = t(1.0, 2.0, 3.0, 4.0);
        let y = t(10.0, 20.0, 30.0, 40.0);
        assert_eq!(add(&x, &y), t(11.0, 22.0, 33.0, 44.0));
    }

    #[test]
    fn subtraction_and_negation() {
        let x = t(1.0, 2.0, 3.0, 4.0);
        let y = t(0.0, 1.0, 1.0, 2.0);
        assert_eq!(sub(&x, &y), t(-1.0, 1.0, 2.0, 4.0));
        assert_eq!(neg(&x), t(-4.0, -3.0, -2.0, -1.0));
        // x − x is centred on zero but not crisp zero (fuzzy arithmetic
        // does not cancel uncertainty).
        let d = sub(&x, &x);
        assert_eq!(d.support(), (-3.0, 3.0));
        assert_eq!(d.core(), (-1.0, 1.0));
    }

    #[test]
    fn scaling() {
        let x = t(1.0, 2.0, 3.0, 4.0);
        assert_eq!(scale(&x, 2.0), t(2.0, 4.0, 6.0, 8.0));
        assert_eq!(scale(&x, -1.0), t(-4.0, -3.0, -2.0, -1.0));
        assert_eq!(scale(&x, 0.0), Trapezoid::crisp(0.0).unwrap());
        assert_eq!(div(&x, 2.0).unwrap(), t(0.5, 1.0, 1.5, 2.0));
        assert_eq!(div(&x, 0.0), Err(FuzzyError::DivisionByZero));
    }

    #[test]
    fn sums_and_averages() {
        let xs = [t(0.0, 1.0, 1.0, 2.0), t(2.0, 3.0, 3.0, 4.0), t(4.0, 5.0, 5.0, 6.0)];
        assert_eq!(sum(&xs).unwrap(), t(6.0, 9.0, 9.0, 12.0));
        assert_eq!(avg(&xs).unwrap(), t(2.0, 3.0, 3.0, 4.0));
        assert_eq!(sum(std::iter::empty()), None);
        assert_eq!(avg(std::iter::empty()), None);
        // Crisp inputs behave like ordinary arithmetic.
        let cs = [Trapezoid::crisp(1.0).unwrap(), Trapezoid::crisp(5.0).unwrap()];
        assert_eq!(avg(&cs).unwrap(), Trapezoid::crisp(3.0).unwrap());
    }

    #[test]
    fn min_max_by_core_centre() {
        // "about 30" vs a wide-supported value centred lower: the defuzzified
        // order uses only the 1-cut centre.
        let about_30 = Trapezoid::triangular(25.0, 30.0, 35.0).unwrap();
        let wide_low = t(0.0, 10.0, 20.0, 100.0); // core centre 15
        let vals = [about_30, wide_low];
        assert_eq!(fuzzy_min(&vals).unwrap(), wide_low);
        assert_eq!(fuzzy_max(&vals).unwrap(), about_30);
        assert_eq!(fuzzy_min(std::iter::empty()), None);
        assert_eq!(fuzzy_max(std::iter::empty()), None);
    }

    #[test]
    fn value_level_arithmetic() {
        let a = Value::number(2.0);
        let b = Value::fuzzy(t(0.0, 1.0, 1.0, 2.0));
        assert_eq!(value_add(&a, &b).unwrap(), Value::fuzzy(t(2.0, 3.0, 3.0, 4.0)));
        assert!(value_add(&a, &Value::text("x")).is_err());
        assert!(value_add(&Value::Null, &b).is_err());
    }
}
