//! Possibility degrees of fuzzy comparisons: `d(X θ Y)` for θ ∈ {=, ≠, <, ≤, >, ≥}.
//!
//! Following Section 2 of the paper, the satisfaction degree of a predicate
//! `X θ Y` whose operands are possibility distributions `U` and `V` is
//!
//! ```text
//! d(X θ Y) = sup_{x θ y} min(μ_U(x), μ_V(y))
//! ```
//!
//! For binary equality of two trapezoidal distributions this is the height of
//! the highest intersection point of the two membership functions; if one
//! operand is crisp it degenerates to a membership lookup. The implementations
//! below are exact closed forms over trapezoid breakpoints, including all
//! degenerate cases (crisp points, rectangles, vertical edges) where strict
//! and non-strict inequalities genuinely differ. They are property-tested
//! against the brute-force numeric oracle in [`crate::oracle`].
//!
//! The paper's single-measure system uses only possibility; we also provide
//! necessity (`Nec(X θ F) = 1 − Poss(X ¬θ F)`) for completeness, with the
//! Section 2 caveat that the double-measure system prevents composition of
//! algebraic operators and is therefore *not* used by the query engine.

use crate::degree::Degree;
use crate::trapezoid::Trapezoid;

/// Comparison operators of Fuzzy SQL predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The logical negation of the operator, used to compute necessity and to
    /// unnest `NOT IN` / `ALL` queries (Sections 5 and 7).
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// The operator with its operands swapped: `X θ Y ⟺ Y θ' X`.
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Evaluates the operator on crisp numbers.
    pub fn eval_crisp(self, x: f64, y: f64) -> bool {
        match self {
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
            CmpOp::Lt => x < y,
            CmpOp::Le => x <= y,
            CmpOp::Gt => x > y,
            CmpOp::Ge => x >= y,
        }
    }

    /// Evaluates the operator on any `Ord` operands (used for text).
    pub fn eval_ord<T: Ord>(self, x: &T, y: &T) -> bool {
        match self {
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
            CmpOp::Lt => x < y,
            CmpOp::Le => x <= y,
            CmpOp::Gt => x > y,
            CmpOp::Ge => x >= y,
        }
    }

    /// SQL spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

impl std::fmt::Display for CmpOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.symbol())
    }
}

/// `Poss(X θ Y)` for trapezoidal possibility distributions: the satisfaction
/// degree of the predicate under the paper's single-measure semantics.
///
/// ```
/// use fuzzy_core::{possibility, CmpOp, Trapezoid};
///
/// // The paper's Fig. 1: d("about 35" = "medium young") = 0.5.
/// let medium_young = Trapezoid::new(20.0, 25.0, 30.0, 35.0)?;
/// let about_35 = Trapezoid::triangular(30.0, 35.0, 40.0)?;
/// let d = possibility(&about_35, CmpOp::Eq, &medium_young);
/// assert!((d.value() - 0.5).abs() < 1e-12);
/// # Ok::<(), fuzzy_core::FuzzyError>(())
/// ```
pub fn possibility(x: &Trapezoid, op: CmpOp, y: &Trapezoid) -> Degree {
    match op {
        CmpOp::Eq => poss_eq(x, y),
        CmpOp::Ne => poss_ne(x, y),
        CmpOp::Le => poss_le(x, y),
        CmpOp::Lt => poss_lt(x, y),
        CmpOp::Ge => poss_le(y, x),
        CmpOp::Gt => poss_lt(y, x),
    }
}

/// `Nec(X θ Y) = 1 − Poss(X ¬θ Y)` — provided for completeness only; the
/// engine does not use necessity (see the Section 2 discussion on why the
/// double-measure system prevents unnesting).
pub fn necessity(x: &Trapezoid, op: CmpOp, y: &Trapezoid) -> Degree {
    possibility(x, op.negated(), y).not()
}

/// Possibility that `X ≈ Y` within tolerance `tol >= 0`, using the similarity
/// relation `μ_≈(x, y) = max(0, 1 − |x − y| / tol)`. With `tol == 0` this is
/// binary equality. Implemented by widening `X` with the fuzzy addition of a
/// zero-centred triangle of half-width `tol` and intersecting with `Y`.
pub fn approximately_equal(x: &Trapezoid, y: &Trapezoid, tol: f64) -> Degree {
    assert!(tol >= 0.0 && tol.is_finite(), "tolerance must be a finite non-negative number");
    if tol == 0.0 {
        return poss_eq(x, y);
    }
    let (a, b, c, d) = x.breakpoints();
    let widened =
        Trapezoid::new(a - tol, b, c, d + tol).expect("widening preserves breakpoint order");
    poss_eq(&widened, y)
}

/// Height of the highest intersection point of the two membership functions:
/// `sup_x min(μ_X(x), μ_Y(x))`. This is `Poss(X = Y)` for binary equality.
fn poss_eq(x: &Trapezoid, y: &Trapezoid) -> Degree {
    if x.cores_intersect(y) {
        return Degree::ONE;
    }
    if !x.supports_intersect(y) {
        return Degree::ZERO;
    }
    // Cores are disjoint; orient so `l` is the left distribution.
    let (l, r) = if x.core().1 < y.core().0 { (x, y) } else { (y, x) };
    let (_, _, lc, ld) = l.breakpoints();
    let (ra, rb, _, _) = r.breakpoints();
    // The optimum lies in [lc, rb]: μ_l is non-increasing there and μ_r is
    // non-decreasing, so min(μ_l, μ_r) peaks where the edges cross. Candidate
    // points: all breakpoints in the window plus the crossing of the two
    // open linear pieces (l's falling edge, r's rising edge).
    let h = |t: f64| x.membership(t).value().min(y.membership(t).value());
    let mut best: f64 = 0.0;
    for t in [lc, ld, ra, rb] {
        if t >= lc && t <= rb {
            best = best.max(h(t));
        }
    }
    if ld > lc && rb > ra {
        // Falling: (ld - t) / (ld - lc); rising: (t - ra) / (rb - ra).
        let t = (ld * (rb - ra) + ra * (ld - lc)) / ((rb - ra) + (ld - lc));
        if t >= lc.max(ra) && t <= ld.min(rb) {
            best = best.max(h(t));
        }
    }
    Degree::clamped(best)
}

/// `Poss(X ≠ Y)`: 1 unless both operands are the same crisp point.
fn poss_ne(x: &Trapezoid, y: &Trapezoid) -> Degree {
    match (x.as_crisp(), y.as_crisp()) {
        (Some(v), Some(w)) => Degree::from(v != w),
        // A non-crisp operand has a continuum of values arbitrarily close to
        // membership 1, so some pair with x ≠ y approaches min = 1.
        _ => Degree::ONE,
    }
}

/// `sup_{y >= t} μ_Y(y)` — the non-increasing envelope of `μ_Y` from the
/// right, evaluated at `t` (closed bound).
fn right_env(y: &Trapezoid, t: f64) -> f64 {
    let (_, _, c, d) = y.breakpoints();
    if t <= c {
        1.0
    } else if t <= d && d > c {
        (d - t) / (d - c)
    } else {
        0.0
    }
}

/// `Poss(X <= Y) = sup_t min(μ_X(t), sup_{y >= t} μ_Y(y))`.
fn poss_le(x: &Trapezoid, y: &Trapezoid) -> Degree {
    let (xa, xb, _, _) = x.breakpoints();
    let (_, _, yc, yd) = y.breakpoints();
    if xb <= yc {
        // A core point of X does not exceed the end of Y's core: full
        // possibility (take x = xb, y = yc).
        return Degree::ONE;
    }
    // X's core starts after Y's core ends: the optimum is where X's rising
    // edge meets the falling right-envelope of Y. Candidates: breakpoints of
    // both pieces plus the line crossing.
    let h = |t: f64| x.membership(t).value().min(right_env(y, t));
    let mut best: f64 = 0.0;
    for t in [yc, yd, xa, xb] {
        best = best.max(h(t));
    }
    if xb > xa && yd > yc {
        // Rising: (t - xa) / (xb - xa); envelope falling: (yd - t) / (yd - yc).
        let t = (yd * (xb - xa) + xa * (yd - yc)) / ((xb - xa) + (yd - yc));
        if t >= xa.max(yc) && t <= xb.min(yd) {
            best = best.max(h(t));
        }
    }
    Degree::clamped(best)
}

/// `sup_{x < t} μ_X(x)` — supremum of X's membership strictly below `t`.
fn sup_below(x: &Trapezoid, t: f64) -> f64 {
    let (a, b, c, d) = x.breakpoints();
    if b < t {
        return 1.0;
    }
    if t == b && a < b {
        return 1.0; // approached along the rising edge
    }
    if t > a && a < b {
        return (t - a) / (b - a);
    }
    // Covers t <= a, and the vertical-left-edge case a == b >= t. The falling
    // edge lies right of the core so it never helps below t <= b.
    let _ = (c, d);
    0.0
}

/// `Poss(X < Y)`. For continuous membership functions this coincides with
/// `Poss(X <= Y)` (the supremum over the open region `x < y` of a continuous
/// function equals the supremum over its closure); it differs only when `Y`
/// has a vertical right edge (its core touches the end of its support), where
/// `sup_{y > t} μ_Y(y)` drops to 0 at `t = e(Y)` instead of staying 1.
fn poss_lt(x: &Trapezoid, y: &Trapezoid) -> Degree {
    let (_, _, yc, yd) = y.breakpoints();
    if yc < yd {
        return poss_le(x, y);
    }
    // Y's right edge is vertical at yd: the strict envelope is 1 on
    // (-inf, yd) and 0 at and after yd, so the possibility reduces to the
    // supremum of μ_X strictly below yd.
    Degree::clamped(sup_below(x, yd))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(a: f64, b: f64, c: f64, d: f64) -> Trapezoid {
        Trapezoid::new(a, b, c, d).unwrap()
    }
    fn tri(a: f64, b: f64, c: f64) -> Trapezoid {
        Trapezoid::triangular(a, b, c).unwrap()
    }
    fn pt(v: f64) -> Trapezoid {
        Trapezoid::crisp(v).unwrap()
    }
    fn d(v: f64) -> Degree {
        Degree::new(v).unwrap()
    }

    #[test]
    fn op_negation_and_flip() {
        assert_eq!(CmpOp::Eq.negated(), CmpOp::Ne);
        assert_eq!(CmpOp::Lt.negated(), CmpOp::Ge);
        assert_eq!(CmpOp::Le.negated(), CmpOp::Gt);
        assert_eq!(CmpOp::Lt.flipped(), CmpOp::Gt);
        assert_eq!(CmpOp::Eq.flipped(), CmpOp::Eq);
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            assert_eq!(op.negated().negated(), op);
            assert_eq!(op.flipped().flipped(), op);
        }
    }

    #[test]
    fn paper_fig1_equalities() {
        // From Section 2: with F.AGE = 24 crisp and M.AGE = "medium young",
        // d = μ_medium_young(24) = 0.8; with F.AGE = "about 35", d = 0.5.
        let medium_young = t(20.0, 25.0, 30.0, 35.0);
        let about_35 = tri(30.0, 35.0, 40.0);
        assert!((possibility(&pt(24.0), CmpOp::Eq, &medium_young).value() - 0.8).abs() < 1e-12);
        assert!((possibility(&about_35, CmpOp::Eq, &medium_young).value() - 0.5).abs() < 1e-12);
        // Symmetry of equality.
        assert_eq!(
            possibility(&about_35, CmpOp::Eq, &medium_young),
            possibility(&medium_young, CmpOp::Eq, &about_35)
        );
    }

    #[test]
    fn equality_cases() {
        // Overlapping cores: possibility 1.
        assert_eq!(
            possibility(&t(0.0, 2.0, 4.0, 6.0), CmpOp::Eq, &t(3.0, 3.5, 9.0, 9.0)),
            Degree::ONE
        );
        // Disjoint supports: 0.
        assert_eq!(
            possibility(&t(0.0, 1.0, 2.0, 3.0), CmpOp::Eq, &t(4.0, 5.0, 6.0, 7.0)),
            Degree::ZERO
        );
        // Touching supports at a single point where both memberships are 0.
        assert_eq!(
            possibility(&t(0.0, 1.0, 2.0, 3.0), CmpOp::Eq, &t(3.0, 4.0, 5.0, 6.0)),
            Degree::ZERO
        );
        // Touching where one side is vertical: rectangle [0,3] meets rising edge at 3.
        assert_eq!(
            possibility(
                &Trapezoid::rectangular(0.0, 3.0).unwrap(),
                CmpOp::Eq,
                &t(3.0, 4.0, 5.0, 6.0)
            ),
            Degree::ZERO
        );
        // Rectangle edge meets rectangle edge: both memberships 1 at the point.
        assert_eq!(
            possibility(
                &Trapezoid::rectangular(0.0, 3.0).unwrap(),
                CmpOp::Eq,
                &Trapezoid::rectangular(3.0, 5.0).unwrap()
            ),
            Degree::ONE
        );
        // Crisp vs crisp.
        assert_eq!(possibility(&pt(5.0), CmpOp::Eq, &pt(5.0)), Degree::ONE);
        assert_eq!(possibility(&pt(5.0), CmpOp::Eq, &pt(5.1)), Degree::ZERO);
        // Crisp inside a fuzzy support: membership lookup.
        assert_eq!(possibility(&pt(22.5), CmpOp::Eq, &t(20.0, 25.0, 30.0, 35.0)), d(0.5));
    }

    #[test]
    fn symmetric_triangles_cross_at_half() {
        let x = tri(0.0, 10.0, 20.0);
        let y = tri(10.0, 20.0, 30.0);
        assert!((possibility(&x, CmpOp::Eq, &y).value() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn inequality_basic() {
        let young = t(20.0, 25.0, 30.0, 35.0);
        let old = t(50.0, 60.0, 70.0, 80.0);
        assert_eq!(possibility(&young, CmpOp::Le, &old), Degree::ONE);
        assert_eq!(possibility(&young, CmpOp::Lt, &old), Degree::ONE);
        assert_eq!(possibility(&old, CmpOp::Le, &young), Degree::ZERO);
        assert_eq!(possibility(&old, CmpOp::Gt, &young), Degree::ONE);
        assert_eq!(possibility(&young, CmpOp::Ge, &old), Degree::ZERO);
        // Overlapping distributions can satisfy both orders partially.
        let mid = t(30.0, 40.0, 45.0, 55.0);
        assert_eq!(possibility(&mid, CmpOp::Le, &old), Degree::ONE);
        let p = possibility(&old, CmpOp::Le, &mid).value();
        assert!(p > 0.0 && p < 1.0, "partial overlap gives partial degree, got {p}");
    }

    #[test]
    fn le_crossing_value() {
        // X rising on [10, 20], Y's right envelope falling on [12, 16]:
        // crossing of (t-10)/10 and (16-t)/4 at t = 100/7, degree = 3/7.
        let x = t(10.0, 20.0, 25.0, 30.0);
        let y = t(0.0, 5.0, 12.0, 16.0);
        let expect = 3.0 / 7.0;
        assert!((possibility(&x, CmpOp::Le, &y).value() - expect).abs() < 1e-12);
    }

    #[test]
    fn strict_vs_nonstrict_on_crisp_points() {
        assert_eq!(possibility(&pt(5.0), CmpOp::Le, &pt(5.0)), Degree::ONE);
        assert_eq!(possibility(&pt(5.0), CmpOp::Lt, &pt(5.0)), Degree::ZERO);
        assert_eq!(possibility(&pt(5.0), CmpOp::Ge, &pt(5.0)), Degree::ONE);
        assert_eq!(possibility(&pt(5.0), CmpOp::Gt, &pt(5.0)), Degree::ZERO);
        assert_eq!(possibility(&pt(4.0), CmpOp::Lt, &pt(5.0)), Degree::ONE);
    }

    #[test]
    fn strict_differs_on_vertical_edges() {
        // The paper's continuity argument: < equals <= for continuous
        // memberships, but not when the relevant edge is vertical.
        // X = rectangle [5, 9], Y = rectangle [0, 5]: X <= Y possible at 5,
        // X < Y impossible.
        let xr = Trapezoid::rectangular(5.0, 9.0).unwrap();
        let yr = Trapezoid::rectangular(0.0, 5.0).unwrap();
        assert_eq!(possibility(&xr, CmpOp::Le, &yr), Degree::ONE);
        assert_eq!(possibility(&xr, CmpOp::Lt, &yr), Degree::ZERO);
        // With a sloped edge on X instead, < recovers the full degree.
        let xs = t(4.0, 5.0, 9.0, 9.0);
        assert_eq!(possibility(&xs, CmpOp::Lt, &yr), Degree::ONE);
        // Crisp value at the top end of a left-triangle's support.
        let ytri = t(3.0, 5.0, 5.0, 5.0);
        assert_eq!(possibility(&pt(5.0), CmpOp::Lt, &ytri), Degree::ZERO);
        assert_eq!(possibility(&pt(5.0), CmpOp::Le, &ytri), Degree::ONE);
        assert_eq!(possibility(&pt(4.0), CmpOp::Lt, &ytri), Degree::ONE);
    }

    #[test]
    fn ne_cases() {
        assert_eq!(possibility(&pt(5.0), CmpOp::Ne, &pt(5.0)), Degree::ZERO);
        assert_eq!(possibility(&pt(5.0), CmpOp::Ne, &pt(6.0)), Degree::ONE);
        assert_eq!(possibility(&pt(5.0), CmpOp::Ne, &tri(4.0, 5.0, 6.0)), Degree::ONE);
        assert_eq!(possibility(&tri(4.0, 5.0, 6.0), CmpOp::Ne, &tri(4.0, 5.0, 6.0)), Degree::ONE);
    }

    #[test]
    fn necessity_relationships() {
        let x = tri(0.0, 10.0, 20.0);
        let y = tri(10.0, 20.0, 30.0);
        // Nec <= Poss for normalized convex distributions (paper, Section 2).
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            assert!(
                necessity(&x, op, &y) <= possibility(&x, op, &y),
                "necessity exceeded possibility for {op}"
            );
        }
        // Crisp, decidable comparisons: necessity equals possibility.
        assert_eq!(necessity(&pt(1.0), CmpOp::Lt, &pt(2.0)), Degree::ONE);
        assert_eq!(necessity(&pt(2.0), CmpOp::Lt, &pt(1.0)), Degree::ZERO);
    }

    #[test]
    fn similarity_widens_equality() {
        let x = pt(10.0);
        let y = pt(12.0);
        assert_eq!(approximately_equal(&x, &y, 0.0), Degree::ZERO);
        assert_eq!(approximately_equal(&x, &y, 1.0), Degree::ZERO);
        assert!((approximately_equal(&x, &y, 4.0).value() - 0.5).abs() < 1e-12);
        assert_eq!(approximately_equal(&x, &x, 5.0), Degree::ONE);
        // Monotone in tolerance.
        let a = tri(0.0, 5.0, 10.0);
        let b = tri(8.0, 14.0, 20.0);
        let mut last = Degree::ZERO;
        for tol in [0.0, 1.0, 2.0, 4.0, 8.0] {
            let cur = approximately_equal(&a, &b, tol);
            assert!(cur >= last);
            last = cur;
        }
    }

    #[test]
    fn le_reflexivity_and_totality() {
        // Poss(X <= X) = 1 for any distribution, and
        // max(Poss(X <= Y), Poss(Y <= X)) = 1 (one order is always possible).
        let shapes = [
            pt(3.0),
            tri(0.0, 5.0, 10.0),
            t(0.0, 1.0, 2.0, 3.0),
            Trapezoid::rectangular(2.0, 8.0).unwrap(),
            t(-5.0, -5.0, 0.0, 4.0),
        ];
        for x in &shapes {
            assert_eq!(possibility(x, CmpOp::Le, x), Degree::ONE);
            for y in &shapes {
                let a = possibility(x, CmpOp::Le, y);
                let b = possibility(y, CmpOp::Le, x);
                assert_eq!(a.or(b), Degree::ONE, "{x} vs {y}");
            }
        }
    }
}
