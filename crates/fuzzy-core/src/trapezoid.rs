//! Trapezoidal possibility distributions.
//!
//! The paper restricts ill-known attribute values to possibility distributions
//! with trapezoidal membership functions (triangular and rectangular shapes
//! are special cases, and a crisp value is the degenerate single-point case).
//! A trapezoid is described by four breakpoints `a <= b <= c <= d`:
//!
//! ```text
//!        1 |      ________
//!          |     /        \
//!          |    /          \
//!        0 |___/            \___
//!              a   b      c  d
//! ```
//!
//! The *support* (0-cut closure) is `[a, d]`; the *core* (1-cut) is `[b, c]`.
//! Section 3 of the paper associates with every value `v` the interval
//! `[b(v), e(v)]` in which its membership is greater than 0 — for a trapezoid
//! this is the support `[a, d]`, and for a crisp value it is `[v, v]`.

use crate::degree::Degree;
use crate::error::{FuzzyError, Result};
use std::fmt;

/// A trapezoidal membership function with breakpoints `a <= b <= c <= d`.
///
/// All breakpoints are finite. The membership is 0 outside `[a, d]`, 1 on
/// `[b, c]`, and linear in between. Degenerate edges (`a == b` or `c == d`)
/// produce rectangular sides; `a == b && c == d` is a rectangle (an interval),
/// and `a == d` is a crisp point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trapezoid {
    a: f64,
    b: f64,
    c: f64,
    d: f64,
}

impl Trapezoid {
    /// Creates a trapezoid, validating finiteness and ordering of breakpoints.
    pub fn new(a: f64, b: f64, c: f64, d: f64) -> Result<Trapezoid> {
        let finite = a.is_finite() && b.is_finite() && c.is_finite() && d.is_finite();
        if !(finite && a <= b && b <= c && c <= d) {
            return Err(FuzzyError::InvalidTrapezoid { a, b, c, d });
        }
        Ok(Trapezoid { a, b, c, d })
    }

    /// A triangular distribution peaking at `peak` with support `[left, right]`.
    pub fn triangular(left: f64, peak: f64, right: f64) -> Result<Trapezoid> {
        Trapezoid::new(left, peak, peak, right)
    }

    /// A rectangular distribution: full membership on `[lo, hi]`, 0 outside.
    pub fn rectangular(lo: f64, hi: f64) -> Result<Trapezoid> {
        Trapezoid::new(lo, lo, hi, hi)
    }

    /// The degenerate crisp point `v` (possibility 1 at `v`, 0 elsewhere).
    pub fn crisp(v: f64) -> Result<Trapezoid> {
        Trapezoid::new(v, v, v, v)
    }

    /// A symmetric "about v" triangle with half-width `w > 0`.
    pub fn about(v: f64, w: f64) -> Result<Trapezoid> {
        if w <= 0.0 || w.is_nan() {
            return Err(FuzzyError::InvalidTrapezoid { a: v - w, b: v, c: v, d: v + w });
        }
        Trapezoid::triangular(v - w, v, v + w)
    }

    /// Left end of the support, `b(v)` in the paper's Definition 3.1 notation.
    #[inline]
    pub fn support_left(&self) -> f64 {
        self.a
    }

    /// Right end of the support, `e(v)` in the paper's notation.
    #[inline]
    pub fn support_right(&self) -> f64 {
        self.d
    }

    /// The four breakpoints `(a, b, c, d)`.
    #[inline]
    pub fn breakpoints(&self) -> (f64, f64, f64, f64) {
        (self.a, self.b, self.c, self.d)
    }

    /// The support interval `[a, d]`.
    pub fn support(&self) -> (f64, f64) {
        (self.a, self.d)
    }

    /// The core (1-cut) interval `[b, c]`.
    pub fn core(&self) -> (f64, f64) {
        (self.b, self.c)
    }

    /// True iff this distribution is a single crisp point.
    #[inline]
    pub fn is_crisp(&self) -> bool {
        self.a == self.d
    }

    /// The crisp value, if this is a crisp point.
    pub fn as_crisp(&self) -> Option<f64> {
        self.is_crisp().then_some(self.a)
    }

    /// The membership degree `μ(x)`.
    ///
    /// Degenerate edges are resolved in favour of membership: if `a == b` the
    /// membership at `a` is 1 (a rectangle's edge belongs to its core).
    pub fn membership(&self, x: f64) -> Degree {
        if x < self.a || x > self.d {
            return Degree::ZERO;
        }
        if x >= self.b && x <= self.c {
            return Degree::ONE;
        }
        if x < self.b {
            // a <= x < b, and a < b since x >= a, x < b rules out a == b only
            // when x == a == b, already covered by the core branch.
            Degree::clamped((x - self.a) / (self.b - self.a))
        } else {
            // c < x <= d, d > c for the same reason.
            Degree::clamped((self.d - x) / (self.d - self.c))
        }
    }

    /// The α-cut `[a + α(b−a), d − α(d−c)]` for `α ∈ (0, 1]`; for `α = 0`
    /// returns the support closure.
    pub fn alpha_cut(&self, alpha: Degree) -> (f64, f64) {
        let t = alpha.value();
        (self.a + t * (self.b - self.a), self.d - t * (self.d - self.c))
    }

    /// Whether the supports of two distributions intersect. Two values can
    /// join with positive possibility only if their supports intersect —
    /// the criterion behind `Rng(r)` in Section 3.
    pub fn supports_intersect(&self, other: &Trapezoid) -> bool {
        // Closed-interval intersection; touching endpoints intersect as
        // intervals, though the possibility of equality there may still be 0
        // (membership 0 at an open edge). `compare` handles the exact degree.
        self.a <= other.d && other.a <= self.d
    }

    /// Whether the cores (1-cuts) of the two distributions intersect; if so,
    /// the possibility of equality is 1.
    pub fn cores_intersect(&self, other: &Trapezoid) -> bool {
        self.b <= other.c && other.b <= self.c
    }

    /// The centre of the 1-cut, `(b + c) / 2` — the defuzzification value the
    /// paper uses to order fuzzy values for `MIN`/`MAX` aggregates (Section 6).
    pub fn core_center(&self) -> f64 {
        (self.b + self.c) / 2.0
    }

    /// Centroid defuzzification (centre of gravity of the membership area).
    /// Returns the core centre for crisp/zero-area shapes.
    pub fn centroid(&self) -> f64 {
        let (a, b, c, d) = (self.a, self.b, self.c, self.d);
        // Area under a trapezoidal membership function.
        let area = (c - b) + 0.5 * (b - a) + 0.5 * (d - c);
        if area <= 0.0 {
            return self.core_center();
        }
        // First moments: rising ramp on [a,b], plateau on [b,c], falling on [c,d].
        let m_rise = if b > a { (b - a) * (a + 2.0 * b) / 6.0 } else { 0.0 };
        let m_core = if c > b { (c * c - b * b) / 2.0 } else { 0.0 };
        let m_fall = if d > c { (d - c) * (2.0 * c + d) / 6.0 } else { 0.0 };
        (m_rise + m_core + m_fall) / area
    }

    /// Width of the support interval.
    pub fn support_width(&self) -> f64 {
        self.d - self.a
    }
}

impl fmt::Display for Trapezoid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(v) = self.as_crisp() {
            write!(f, "{v}")
        } else if self.b == self.c {
            write!(f, "tri({}, {}, {})", self.a, self.b, self.d)
        } else {
            write!(f, "trap({}, {}, {}, {})", self.a, self.b, self.c, self.d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(a: f64, b: f64, c: f64, d: f64) -> Trapezoid {
        Trapezoid::new(a, b, c, d).unwrap()
    }

    #[test]
    fn construction_validates_order_and_finiteness() {
        assert!(Trapezoid::new(0.0, 1.0, 2.0, 3.0).is_ok());
        assert!(Trapezoid::new(1.0, 0.0, 2.0, 3.0).is_err());
        assert!(Trapezoid::new(0.0, 2.0, 1.0, 3.0).is_err());
        assert!(Trapezoid::new(0.0, 1.0, 3.0, 2.0).is_err());
        assert!(Trapezoid::new(f64::NAN, 1.0, 2.0, 3.0).is_err());
        assert!(Trapezoid::new(0.0, 1.0, 2.0, f64::INFINITY).is_err());
    }

    #[test]
    fn paper_fig1_medium_young_membership() {
        // "medium young" from Fig. 1: full member between 25 and 30, 24 and 31
        // with degree 0.8, 23 and 32 with degree 0.6, nothing below 20/above 35.
        let my = t(20.0, 25.0, 30.0, 35.0);
        assert_eq!(my.membership(25.0), Degree::ONE);
        assert_eq!(my.membership(30.0), Degree::ONE);
        assert_eq!(my.membership(27.5), Degree::ONE);
        assert!((my.membership(24.0).value() - 0.8).abs() < 1e-12);
        assert!((my.membership(31.0).value() - 0.8).abs() < 1e-12);
        assert!((my.membership(23.0).value() - 0.6).abs() < 1e-12);
        assert!((my.membership(32.0).value() - 0.6).abs() < 1e-12);
        assert_eq!(my.membership(19.9), Degree::ZERO);
        assert_eq!(my.membership(35.1), Degree::ZERO);
        assert_eq!(my.membership(20.0), Degree::ZERO);
        assert_eq!(my.membership(35.0), Degree::ZERO);
    }

    #[test]
    fn crisp_point_membership() {
        let p = Trapezoid::crisp(28.0).unwrap();
        assert!(p.is_crisp());
        assert_eq!(p.as_crisp(), Some(28.0));
        assert_eq!(p.membership(28.0), Degree::ONE);
        assert_eq!(p.membership(28.0001), Degree::ZERO);
        assert_eq!(p.support(), (28.0, 28.0));
    }

    #[test]
    fn rectangle_edges_are_full_members() {
        let r = Trapezoid::rectangular(2.0, 5.0).unwrap();
        assert_eq!(r.membership(2.0), Degree::ONE);
        assert_eq!(r.membership(5.0), Degree::ONE);
        assert_eq!(r.membership(1.999), Degree::ZERO);
    }

    #[test]
    fn triangle_and_about() {
        let tr = Trapezoid::triangular(30.0, 35.0, 40.0).unwrap();
        assert_eq!(tr.membership(35.0), Degree::ONE);
        assert!((tr.membership(32.5).value() - 0.5).abs() < 1e-12);
        let ab = Trapezoid::about(35.0, 5.0).unwrap();
        assert_eq!(ab, tr);
        assert!(Trapezoid::about(1.0, 0.0).is_err());
    }

    #[test]
    fn alpha_cuts() {
        let x = t(0.0, 2.0, 4.0, 8.0);
        assert_eq!(x.alpha_cut(Degree::ZERO), (0.0, 8.0));
        assert_eq!(x.alpha_cut(Degree::ONE), (2.0, 4.0));
        assert_eq!(x.alpha_cut(Degree::new(0.5).unwrap()), (1.0, 6.0));
    }

    #[test]
    fn support_and_core_intersection() {
        let x = t(0.0, 1.0, 2.0, 3.0);
        let y = t(2.5, 4.0, 5.0, 6.0);
        assert!(x.supports_intersect(&y));
        assert!(!x.cores_intersect(&y));
        let z = t(10.0, 11.0, 12.0, 13.0);
        assert!(!x.supports_intersect(&z));
        let w = t(1.5, 1.8, 2.2, 9.0);
        assert!(x.cores_intersect(&w));
    }

    #[test]
    fn defuzzification() {
        let x = t(0.0, 2.0, 4.0, 6.0);
        assert_eq!(x.core_center(), 3.0);
        // Symmetric trapezoid: centroid equals the centre of symmetry.
        assert!((x.centroid() - 3.0).abs() < 1e-12);
        let p = Trapezoid::crisp(7.0).unwrap();
        assert_eq!(p.centroid(), 7.0);
        // Asymmetric triangle leans toward the long side.
        let tri = Trapezoid::triangular(0.0, 1.0, 10.0).unwrap();
        assert!(tri.centroid() > 1.0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Trapezoid::crisp(3.5).unwrap().to_string(), "3.5");
        assert_eq!(Trapezoid::triangular(1.0, 2.0, 3.0).unwrap().to_string(), "tri(1, 2, 3)");
        assert_eq!(t(1.0, 2.0, 3.0, 4.0).to_string(), "trap(1, 2, 3, 4)");
    }

    #[test]
    fn membership_is_monotone_on_edges() {
        let x = t(0.0, 10.0, 20.0, 30.0);
        let mut last = -1.0;
        for i in 0..=10 {
            let v = x.membership(i as f64).value();
            assert!(v >= last);
            last = v;
        }
        let mut last = 2.0;
        for i in 20..=30 {
            let v = x.membership(i as f64).value();
            assert!(v <= last);
            last = v;
        }
    }
}
