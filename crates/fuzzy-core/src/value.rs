//! Attribute values of the fuzzy relational model.
//!
//! Each attribute value is either crisp (a number or a text string), an
//! ill-known number represented by a trapezoidal possibility distribution, or
//! NULL. A crisp number `v` is semantically the degenerate distribution with
//! `μ(x) = 1` iff `x = v` (Section 2.2 of the paper).

use crate::compare::{possibility, CmpOp};
use crate::degree::Degree;
use crate::trapezoid::Trapezoid;
use std::fmt;
use std::hash::{Hash, Hasher};

/// An attribute value. Equality and hashing are *identity of representation*
/// (after normalizing crisp trapezoids to numbers), which is what duplicate
/// elimination and the T1/T2 grouping of Section 6 require — *not* the fuzzy
/// possibility of equality, which is [`Value::compare`].
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL: every comparison against it has degree 0.
    Null,
    /// A crisp string.
    Text(String),
    /// A crisp number.
    Number(f64),
    /// An ill-known number: a non-degenerate trapezoidal possibility
    /// distribution. Constructors collapse degenerate (crisp) trapezoids to
    /// `Number`, so this variant never holds a single point.
    Fuzzy(Trapezoid),
}

impl Value {
    /// Creates a crisp numeric value. Non-finite inputs become `Null`.
    pub fn number(v: f64) -> Value {
        if v.is_finite() {
            Value::Number(canon_f64(v))
        } else {
            Value::Null
        }
    }

    /// Creates a text value.
    pub fn text(s: impl Into<String>) -> Value {
        Value::Text(s.into())
    }

    /// Creates a fuzzy value, normalizing crisp trapezoids to `Number`.
    pub fn fuzzy(t: Trapezoid) -> Value {
        match t.as_crisp() {
            Some(v) => Value::number(v),
            None => Value::Fuzzy(t),
        }
    }

    /// True iff this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The value as a possibility distribution, if it is numeric.
    pub fn as_distribution(&self) -> Option<Trapezoid> {
        match self {
            Value::Number(v) => Some(Trapezoid::crisp(*v).expect("finite by construction")),
            Value::Fuzzy(t) => Some(*t),
            _ => None,
        }
    }

    /// The crisp number, if this value is one.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// The text, if this value is one.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// A short name of the value's runtime type (for error messages).
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Text(_) => "text",
            Value::Number(_) => "number",
            Value::Fuzzy(_) => "fuzzy number",
        }
    }

    /// The satisfaction degree `d(self θ other)`.
    ///
    /// * numeric operands (crisp or fuzzy) use the possibility semantics of
    ///   Section 2;
    /// * text operands compare crisply (degree 1 or 0) in lexicographic order;
    /// * `Null` or mixed text/number operands yield degree 0 (an un-evaluable
    ///   predicate is unsatisfied).
    pub fn compare(&self, op: CmpOp, other: &Value) -> Degree {
        match (self, other) {
            (Value::Text(a), Value::Text(b)) => Degree::from(op.eval_ord(a, b)),
            _ => match (self.as_distribution(), other.as_distribution()) {
                (Some(x), Some(y)) => possibility(&x, op, &y),
                _ => Degree::ZERO,
            },
        }
    }

    /// The degree of `self ≈ other` under the similarity relation
    /// `μ_≈(x, y) = max(0, 1 − |x − y| / tol)` (the non-binary comparisons
    /// Section 2 of the paper permits). Text compares by exact equality;
    /// `Null` or mixed types yield 0.
    pub fn compare_similar(&self, other: &Value, tol: f64) -> Degree {
        match (self, other) {
            (Value::Text(a), Value::Text(b)) => Degree::from(a == b),
            _ => match (self.as_distribution(), other.as_distribution()) {
                (Some(x), Some(y)) => crate::compare::approximately_equal(&x, &y, tol),
                _ => Degree::ZERO,
            },
        }
    }

    /// The interval `[b(v), e(v)]` of Definition 3.1 — the closure of the
    /// region of positive membership — for numeric values.
    pub fn interval(&self) -> Option<(f64, f64)> {
        self.as_distribution().map(|t| t.support())
    }

    /// The α-cut interval of a numeric value. At α = 0 this is the support
    /// closure (the Definition 3.1 interval); at higher α it narrows. Two
    /// values satisfy `d(x = y) >= α` exactly when their α-cuts intersect —
    /// the "equality indicator" behind threshold push-down into the
    /// merge-join window (the optimization direction of the paper's
    /// reference \[42\]).
    pub fn interval_at(&self, alpha: Degree) -> Option<(f64, f64)> {
        self.as_distribution().map(|t| t.alpha_cut(alpha))
    }
}

/// Canonicalizes a float for hashing: collapses `-0.0` to `0.0`.
fn canon_f64(v: f64) -> f64 {
    if v == 0.0 {
        0.0
    } else {
        v
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Text(a), Value::Text(b)) => a == b,
            (Value::Number(a), Value::Number(b)) => a == b,
            (Value::Fuzzy(a), Value::Fuzzy(b)) => a.breakpoints() == b.breakpoints(),
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Text(s) => {
                1u8.hash(state);
                s.hash(state);
            }
            Value::Number(v) => {
                2u8.hash(state);
                canon_f64(*v).to_bits().hash(state);
            }
            Value::Fuzzy(t) => {
                3u8.hash(state);
                let (a, b, c, d) = t.breakpoints();
                for v in [a, b, c, d] {
                    canon_f64(v).to_bits().hash(state);
                }
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Number(v) => write!(f, "{v}"),
            Value::Fuzzy(t) => write!(f, "{t}"),
        }
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::number(v)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::text(s)
    }
}

impl From<Trapezoid> for Value {
    fn from(t: Trapezoid) -> Value {
        Value::fuzzy(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn constructors_normalize() {
        let crisp_trap = Trapezoid::crisp(5.0).unwrap();
        assert_eq!(Value::fuzzy(crisp_trap), Value::Number(5.0));
        assert_eq!(Value::number(f64::NAN), Value::Null);
        assert_eq!(Value::number(f64::INFINITY), Value::Null);
        assert_eq!(Value::number(-0.0), Value::Number(0.0));
    }

    #[test]
    fn identity_equality_vs_fuzzy_comparison() {
        let a = Value::fuzzy(Trapezoid::triangular(0.0, 5.0, 10.0).unwrap());
        let b = Value::fuzzy(Trapezoid::triangular(2.0, 5.0, 8.0).unwrap());
        // Different representations: not identical...
        assert_ne!(a, b);
        // ...but fully possibly equal (cores coincide).
        assert_eq!(a.compare(CmpOp::Eq, &b), Degree::ONE);
    }

    #[test]
    fn text_comparisons_are_crisp() {
        let x = Value::text("Ann");
        let y = Value::text("Betty");
        assert_eq!(x.compare(CmpOp::Eq, &y), Degree::ZERO);
        assert_eq!(x.compare(CmpOp::Ne, &y), Degree::ONE);
        assert_eq!(x.compare(CmpOp::Lt, &y), Degree::ONE);
        assert_eq!(x.compare(CmpOp::Eq, &x.clone()), Degree::ONE);
    }

    #[test]
    fn null_and_mixed_types_never_satisfy() {
        let n = Value::Null;
        let x = Value::number(5.0);
        let t = Value::text("5");
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            assert_eq!(n.compare(op, &x), Degree::ZERO);
            assert_eq!(x.compare(op, &n), Degree::ZERO);
            assert_eq!(t.compare(op, &x), Degree::ZERO);
            assert_eq!(n.compare(op, &n.clone()), Degree::ZERO);
        }
    }

    #[test]
    fn crisp_fuzzy_comparison_uses_membership() {
        let my = Value::fuzzy(Trapezoid::new(20.0, 25.0, 30.0, 35.0).unwrap());
        assert_eq!(Value::number(24.0).compare(CmpOp::Eq, &my).rounded(3), 0.8);
    }

    #[test]
    fn values_are_hashable_and_usable_as_keys() {
        let mut m: HashMap<Value, u32> = HashMap::new();
        m.insert(Value::number(1.0), 1);
        m.insert(Value::text("x"), 2);
        m.insert(Value::fuzzy(Trapezoid::triangular(0.0, 1.0, 2.0).unwrap()), 3);
        m.insert(Value::Null, 4);
        assert_eq!(m.len(), 4);
        assert_eq!(m[&Value::number(1.0)], 1);
        // A crisp trapezoid hashes as the equal number.
        assert_eq!(m[&Value::fuzzy(Trapezoid::crisp(1.0).unwrap())], 1);
        // -0.0 and 0.0 are one key.
        m.insert(Value::number(0.0), 5);
        m.insert(Value::number(-0.0), 6);
        assert_eq!(m[&Value::number(0.0)], 6);
    }

    #[test]
    fn intervals() {
        assert_eq!(Value::number(3.0).interval(), Some((3.0, 3.0)));
        assert_eq!(
            Value::fuzzy(Trapezoid::new(1.0, 2.0, 3.0, 4.0).unwrap()).interval(),
            Some((1.0, 4.0))
        );
        assert_eq!(Value::text("a").interval(), None);
        assert_eq!(Value::Null.interval(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::number(2.5).to_string(), "2.5");
        assert_eq!(Value::text("hi").to_string(), "hi");
    }
}
