//! Property-based tests: the closed-form possibility computations of
//! `fuzzy_core::compare` agree with the brute-force numeric oracle, and
//! satisfy the algebraic laws the paper's semantics rely on.

use fuzzy_core::compare::{necessity, possibility, CmpOp};
use fuzzy_core::oracle::possibility_grid;
use fuzzy_core::{Degree, Trapezoid};
use proptest::prelude::*;

const ALL_OPS: [CmpOp; 6] = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];

/// Arbitrary trapezoid over a modest range, with a healthy share of
/// degenerate shapes (crisp points, rectangles, triangles, vertical edges).
fn arb_trapezoid() -> impl Strategy<Value = Trapezoid> {
    let base = -50.0..50.0f64;
    let widths = prop_oneof![
        Just((0.0, 0.0, 0.0)),                                       // crisp point
        (0.0..10.0f64).prop_map(|w| (0.0, w, 0.0)),                  // rectangle
        (0.0..10.0f64, 0.0..10.0f64).prop_map(|(l, r)| (l, 0.0, r)), // triangle
        (0.0..10.0f64, 0.0..10.0f64, 0.0..10.0f64),                  // general trapezoid
        (0.0..10.0f64, 0.0..10.0f64).prop_map(|(c, r)| (0.0, c, r)), // vertical left
        (0.0..10.0f64, 0.0..10.0f64).prop_map(|(l, c)| (l, c, 0.0)), // vertical right
    ];
    (base, widths).prop_map(|(a, (wl, wc, wr))| {
        Trapezoid::new(a, a + wl, a + wl + wc, a + wl + wc + wr).expect("ordered by construction")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Closed forms never undercut the grid oracle (the oracle only samples
    /// feasible points, so it is a lower bound), and are close to it.
    #[test]
    fn closed_form_matches_oracle(x in arb_trapezoid(), y in arb_trapezoid(), op_idx in 0usize..6) {
        let op = ALL_OPS[op_idx];
        let exact = possibility(&x, op, &y).value();
        let approx = possibility_grid(&x, op, &y, 300).value();
        // Grid never exceeds the true sup by more than fp noise.
        prop_assert!(approx <= exact + 1e-9,
            "oracle {approx} above closed form {exact} for {x} {op} {y}");
        // And the closed form is not far above the grid estimate (grid pitch
        // bounds the gap; supports span <= 130 over 300 points with unit max
        // slope over width >= .. use a generous tolerance).
        prop_assert!(exact - approx < 0.05,
            "closed form {exact} far above oracle {approx} for {x} {op} {y}");
    }

    /// d(X = Y) is symmetric.
    #[test]
    fn equality_is_symmetric(x in arb_trapezoid(), y in arb_trapezoid()) {
        prop_assert_eq!(possibility(&x, CmpOp::Eq, &y), possibility(&y, CmpOp::Eq, &x));
    }

    /// d(X <= Y) = d(Y >= X), and likewise for strict operators.
    #[test]
    fn flipped_operand_duality(x in arb_trapezoid(), y in arb_trapezoid()) {
        prop_assert_eq!(possibility(&x, CmpOp::Le, &y), possibility(&y, CmpOp::Ge, &x));
        prop_assert_eq!(possibility(&x, CmpOp::Lt, &y), possibility(&y, CmpOp::Gt, &x));
        prop_assert_eq!(possibility(&x, CmpOp::Ne, &y), possibility(&y, CmpOp::Ne, &x));
    }

    /// Strict possibility never exceeds the non-strict one, and equality is
    /// bounded by both non-strict orders.
    #[test]
    fn strictness_monotonicity(x in arb_trapezoid(), y in arb_trapezoid()) {
        prop_assert!(possibility(&x, CmpOp::Lt, &y) <= possibility(&x, CmpOp::Le, &y));
        prop_assert!(possibility(&x, CmpOp::Gt, &y) <= possibility(&x, CmpOp::Ge, &y));
        prop_assert!(possibility(&x, CmpOp::Eq, &y) <= possibility(&x, CmpOp::Le, &y));
        prop_assert!(possibility(&x, CmpOp::Eq, &y) <= possibility(&x, CmpOp::Ge, &y));
    }

    /// One of the two orders is always fully possible (normal distributions).
    #[test]
    fn order_totality(x in arb_trapezoid(), y in arb_trapezoid()) {
        let le = possibility(&x, CmpOp::Le, &y);
        let ge = possibility(&x, CmpOp::Ge, &y);
        prop_assert_eq!(le.or(ge), Degree::ONE);
    }

    /// Reflexivity: d(X = X) = 1 and d(X <= X) = 1.
    #[test]
    fn reflexivity(x in arb_trapezoid()) {
        prop_assert_eq!(possibility(&x, CmpOp::Eq, &x), Degree::ONE);
        prop_assert_eq!(possibility(&x, CmpOp::Le, &x), Degree::ONE);
        prop_assert_eq!(possibility(&x, CmpOp::Ge, &x), Degree::ONE);
    }

    /// Necessity never exceeds possibility for normalized convex
    /// distributions (Section 2 of the paper).
    #[test]
    fn necessity_below_possibility(x in arb_trapezoid(), y in arb_trapezoid(), op_idx in 0usize..6) {
        let op = ALL_OPS[op_idx];
        prop_assert!(necessity(&x, op, &y) <= possibility(&x, op, &y));
    }

    /// Zero equality possibility exactly when supports miss each other
    /// (up to boundary-membership subtleties): disjoint supports imply 0.
    #[test]
    fn disjoint_supports_cannot_be_equal(x in arb_trapezoid(), y in arb_trapezoid()) {
        if !x.supports_intersect(&y) {
            prop_assert_eq!(possibility(&x, CmpOp::Eq, &y), Degree::ZERO);
        }
        if x.cores_intersect(&y) {
            prop_assert_eq!(possibility(&x, CmpOp::Eq, &y), Degree::ONE);
        }
    }

    /// Membership degrees returned by equality against a crisp probe match
    /// the membership function.
    #[test]
    fn crisp_probe_is_membership(x in arb_trapezoid(), v in -60.0..60.0f64) {
        let probe = Trapezoid::crisp(v).unwrap();
        prop_assert_eq!(possibility(&probe, CmpOp::Eq, &x), x.membership(v));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Fuzzy arithmetic: addition is commutative/associative on breakpoints,
    /// and alpha-cuts add like intervals.
    #[test]
    fn arithmetic_laws(x in arb_trapezoid(), y in arb_trapezoid(), z in arb_trapezoid()) {
        use fuzzy_core::arith::{add, sub, neg};
        prop_assert_eq!(add(&x, &y), add(&y, &x));
        let l = add(&add(&x, &y), &z).breakpoints();
        let r = add(&x, &add(&y, &z)).breakpoints();
        let close = |p: (f64, f64, f64, f64), q: (f64, f64, f64, f64)| {
            (p.0 - q.0).abs() < 1e-9 && (p.1 - q.1).abs() < 1e-9
                && (p.2 - q.2).abs() < 1e-9 && (p.3 - q.3).abs() < 1e-9
        };
        prop_assert!(close(l, r));
        prop_assert_eq!(neg(&neg(&x)), x);
        // x - y == x + (-y) by definition; check support widths add.
        let s = sub(&x, &y);
        prop_assert!((s.support_width() - (x.support_width() + y.support_width())).abs() < 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// The similarity closed form (widen-then-intersect) matches the
    /// three-way sup-min definition computed on a grid.
    #[test]
    fn similarity_matches_oracle(x in arb_trapezoid(), y in arb_trapezoid(), tol in 1..8u32) {
        use fuzzy_core::approximately_equal;
        use fuzzy_core::oracle::similarity_grid;
        let tol = tol as f64;
        let exact = approximately_equal(&x, &y, tol).value();
        let approx = similarity_grid(&x, &y, tol, 300).value();
        prop_assert!(approx <= exact + 1e-9, "oracle above closed form: {approx} > {exact}");
        prop_assert!(exact - approx < 0.06, "closed form too high: {exact} vs {approx}");
    }

    /// Similarity interpolates between equality (tol → 0) and certainty of
    /// co-location whenever supports are within tolerance.
    #[test]
    fn similarity_bounds(x in arb_trapezoid(), y in arb_trapezoid()) {
        use fuzzy_core::{approximately_equal, possibility};
        let eq = possibility(&x, CmpOp::Eq, &y);
        let sim_small = approximately_equal(&x, &y, 1e-9);
        let sim_large = approximately_equal(&x, &y, 1e6);
        prop_assert!(sim_small >= eq, "widening can only increase the degree");
        prop_assert!((sim_small.value() - eq.value()).abs() < 1e-3);
        // A huge tolerance drives the degree arbitrarily close to 1 (the
        // crossing point of the widened edges still sits epsilon below it).
        prop_assert!(sim_large.value() > 0.999, "got {}", sim_large);
    }

    /// α-cut consistency: membership(x) >= α exactly when x is inside the
    /// α-cut (up to the closure at α = 0).
    #[test]
    fn alpha_cut_consistency(x in arb_trapezoid(), alpha in 1..=10u32, probe in -60.0..60.0f64) {
        let a = Degree::new(alpha as f64 / 10.0).unwrap();
        let (lo, hi) = x.alpha_cut(a);
        let inside = probe >= lo && probe <= hi;
        let member = x.membership(probe) >= a;
        prop_assert_eq!(inside, member,
            "alpha {} cut [{}, {}] vs membership {} at {}",
            a, lo, hi, x.membership(probe), probe);
    }

    /// Interval-order laws the merge-join depends on: sorting by ⪯ puts
    /// every value that strictly precedes another before it.
    #[test]
    fn interval_order_respects_strictly_before(x in arb_trapezoid(), y in arb_trapezoid()) {
        use fuzzy_core::interval_order::{cmp_values, strictly_before};
        use fuzzy_core::Value;
        let vx = Value::fuzzy(x);
        let vy = Value::fuzzy(y);
        if strictly_before(&vx, &vy) {
            prop_assert_eq!(cmp_values(&vx, &vy), std::cmp::Ordering::Less);
            // And equality is impossible (the merge-join may skip the pair).
            prop_assert_eq!(possibility(&x, CmpOp::Eq, &y), Degree::ZERO);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// The α-cut interval order stays a total order at every level, and
    /// "strictly before at α" certifies that the equality degree is below α.
    #[test]
    fn alpha_cut_order_certifies_degrees(
        x in arb_trapezoid(),
        y in arb_trapezoid(),
        alpha in 1..=9u32,
    ) {
        use fuzzy_core::interval_order::{cmp_values_at, strictly_before_at};
        use fuzzy_core::Value;
        let a = Degree::new(alpha as f64 / 10.0).unwrap();
        let vx = Value::fuzzy(x);
        let vy = Value::fuzzy(y);
        // Antisymmetry at every alpha.
        prop_assert_eq!(cmp_values_at(&vx, &vy, a), cmp_values_at(&vy, &vx, a).reverse());
        // The push-down soundness property: disjoint α-cuts imply the
        // equality degree cannot reach α.
        if strictly_before_at(&vx, &vy, a) || strictly_before_at(&vy, &vx, a) {
            let d = possibility(&x, CmpOp::Eq, &y);
            prop_assert!(d < a, "α-cuts disjoint at {} but degree {}", a, d);
        }
        // Conversely, degree >= alpha implies the α-cuts intersect.
        if possibility(&x, CmpOp::Eq, &y) >= a {
            prop_assert!(!strictly_before_at(&vx, &vy, a));
            prop_assert!(!strictly_before_at(&vy, &vx, a));
        }
    }
}
