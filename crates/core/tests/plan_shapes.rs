//! Tests of the unnesting transformer itself: each query type must produce
//! the plan shape the corresponding paper section prescribes.

use fuzzy_core::CmpOp;
use fuzzy_engine::plan::{AntiKind, UnnestPlan};
use fuzzy_engine::{build_plan, EngineError};
use fuzzy_rel::{AttrType, Catalog, Schema, StoredTable};
use fuzzy_sql::parse;
use fuzzy_storage::SimDisk;

fn catalog() -> Catalog {
    let disk = SimDisk::with_default_page_size();
    let mut c = Catalog::new();
    for name in ["R", "S", "T"] {
        c.register(StoredTable::create(
            &disk,
            name,
            Schema::of(&[
                ("ID", AttrType::Number),
                ("X", AttrType::Number),
                ("Y", AttrType::Number),
                ("U", AttrType::Number),
                ("NAME", AttrType::Text),
            ])
            .with_key("ID"),
        ));
    }
    c
}

fn plan(sql: &str) -> UnnestPlan {
    build_plan(&parse(sql).unwrap(), &catalog()).unwrap()
}

#[test]
fn type_n_becomes_two_table_flat_join() {
    let p = plan("SELECT R.X FROM R WHERE R.Y IN (SELECT S.Y FROM S WHERE S.U <= 3)");
    match p {
        UnnestPlan::Flat(f) => {
            assert_eq!(f.tables.len(), 2);
            // p2 folded into the inner table's local predicates.
            assert_eq!(f.tables[1].local_preds.len(), 1);
            // One join predicate: the IN linkage R.Y = S.Y.
            assert_eq!(f.join_preds.len(), 1);
            assert_eq!(f.join_preds[0].op, CmpOp::Eq);
        }
        other => panic!("expected flat, got {}", other.label()),
    }
}

#[test]
fn type_j_adds_the_correlation_join() {
    let p = plan("SELECT R.X FROM R WHERE R.Y IN (SELECT S.Y FROM S WHERE S.U = R.U)");
    match p {
        UnnestPlan::Flat(f) => {
            assert_eq!(f.join_preds.len(), 2, "IN link + correlation");
        }
        other => panic!("expected flat, got {}", other.label()),
    }
}

#[test]
fn jx_becomes_anti_exclusion_with_window() {
    let p = plan("SELECT R.X FROM R WHERE R.Y NOT IN (SELECT S.Y FROM S WHERE S.U = R.U)");
    match p {
        UnnestPlan::Anti(a) => {
            assert_eq!(a.kind, AntiKind::Exclusion);
            assert!(a.window.is_some(), "correlated JX merges on an equality");
            assert_eq!(a.pair_preds.len(), 2, "correlation + the NOT IN pair");
        }
        other => panic!("expected anti, got {}", other.label()),
    }
}

#[test]
fn uncorrelated_nx_uses_scan_window_on_the_in_pair() {
    let p = plan("SELECT R.X FROM R WHERE R.Y NOT IN (SELECT S.Y FROM S)");
    match p {
        UnnestPlan::Anti(a) => {
            assert_eq!(a.kind, AntiKind::Exclusion);
            // The NOT IN pair itself is an equality, so it can drive a merge.
            assert!(a.window.is_some());
        }
        other => panic!("expected anti, got {}", other.label()),
    }
}

#[test]
fn jall_becomes_anti_all_with_quantified_pair_in_kind() {
    let p = plan("SELECT R.X FROM R WHERE R.Y < ALL (SELECT S.Y FROM S WHERE S.U = R.U)");
    match p {
        UnnestPlan::Anti(a) => {
            match a.kind {
                AntiKind::All { op, .. } => assert_eq!(op, CmpOp::Lt),
                other => panic!("expected All kind, got {other:?}"),
            }
            assert!(a.window.is_some());
            assert_eq!(a.pair_preds.len(), 1, "only the correlation");
        }
        other => panic!("expected anti, got {}", other.label()),
    }
}

#[test]
fn uncorrelated_all_has_no_window() {
    let p = plan("SELECT R.X FROM R WHERE R.Y < ALL (SELECT S.Y FROM S)");
    match p {
        UnnestPlan::Anti(a) => assert!(a.window.is_none()),
        other => panic!("expected anti, got {}", other.label()),
    }
}

#[test]
fn ja_plan_carries_aggregate_and_correlation() {
    let p = plan("SELECT R.X FROM R WHERE R.Y > (SELECT MAX(S.Y) FROM S WHERE S.U = R.U)");
    match p {
        UnnestPlan::Agg(a) => {
            assert_eq!(a.agg.0, fuzzy_sql::AggFunc::Max);
            let (u, op2, v) = a.corr.expect("correlated");
            assert_eq!(op2, CmpOp::Eq);
            assert_eq!(u.binding, "R");
            assert_eq!(v.binding, "S");
            assert_eq!(a.compare.1, CmpOp::Gt);
        }
        other => panic!("expected agg, got {}", other.label()),
    }
}

#[test]
fn ja_correlation_direction_is_normalized() {
    // Written as R.U <= S.U: stored as S.U >= R.U (inner op outer).
    let p = plan("SELECT R.X FROM R WHERE R.Y > (SELECT SUM(S.Y) FROM S WHERE R.U <= S.U)");
    match p {
        UnnestPlan::Agg(a) => {
            let (_, op2, _) = a.corr.expect("correlated");
            assert_eq!(op2, CmpOp::Ge);
        }
        other => panic!("expected agg, got {}", other.label()),
    }
}

#[test]
fn type_a_has_no_correlation() {
    let p = plan("SELECT R.X FROM R WHERE R.Y > (SELECT AVG(S.Y) FROM S)");
    match p {
        UnnestPlan::Agg(a) => assert!(a.corr.is_none()),
        other => panic!("expected agg, got {}", other.label()),
    }
}

#[test]
fn chain_3_builds_three_table_flat_join() {
    let p = plan(
        "SELECT R.X FROM R WHERE R.Y IN \
         (SELECT S.Y FROM S WHERE S.U = R.U AND S.X IN \
          (SELECT T.X FROM T WHERE T.U = S.U AND T.Y = R.Y))",
    );
    match p {
        UnnestPlan::Flat(f) => {
            assert_eq!(f.tables.len(), 3);
            // 2 IN links + 3 correlation predicates.
            assert_eq!(f.join_preds.len(), 5);
        }
        other => panic!("expected flat, got {}", other.label()),
    }
}

#[test]
fn general_shapes_are_rejected() {
    let c = catalog();
    for sql in [
        // Two sub-queries in one block.
        "SELECT R.X FROM R WHERE R.Y IN (SELECT S.Y FROM S) AND R.U IN (SELECT T.U FROM T)",
        // NOT IN below the top level.
        "SELECT R.X FROM R WHERE R.Y IN (SELECT S.Y FROM S WHERE S.U NOT IN (SELECT T.U FROM T))",
    ] {
        let err = build_plan(&parse(sql).unwrap(), &c).unwrap_err();
        assert!(matches!(err, EngineError::Unsupported(_)), "{sql}");
    }
}

#[test]
fn reused_bindings_across_levels_are_rejected() {
    let c = catalog();
    let err = build_plan(&parse("SELECT R.X FROM R WHERE R.Y IN (SELECT R.Y FROM R)").unwrap(), &c)
        .unwrap_err();
    assert!(matches!(err, EngineError::Unsupported(_)));
}

#[test]
fn unknown_tables_and_columns_error_cleanly() {
    let c = catalog();
    let err = build_plan(&parse("SELECT Z.X FROM Z").unwrap(), &c).unwrap_err();
    assert!(err.to_string().contains("unknown table"));
    let err = build_plan(&parse("SELECT R.NOPE FROM R").unwrap(), &c).unwrap_err();
    assert!(err.to_string().contains("NOPE"));
}

#[test]
fn plan_labels_are_descriptive() {
    assert!(plan("SELECT R.X FROM R").label().contains("flat-join[1"));
    assert!(plan("SELECT R.X FROM R WHERE R.Y NOT IN (SELECT S.Y FROM S WHERE S.U = R.U)")
        .label()
        .contains("anti-exclusion[merge]"));
    assert!(plan("SELECT R.X FROM R WHERE R.Y < ALL (SELECT S.Y FROM S)").label().contains("scan"));
    assert!(plan("SELECT R.X FROM R WHERE R.Y > (SELECT COUNT(S.Y) FROM S WHERE S.U = R.U)")
        .label()
        .contains("COUNT"));
}

#[test]
fn exists_unnests_to_flat_and_not_exists_to_anti() {
    let p = plan("SELECT R.X FROM R WHERE EXISTS (SELECT S.Y FROM S WHERE S.U = R.U)");
    assert!(matches!(p, UnnestPlan::Flat(_)), "{}", p.label());
    let p = plan("SELECT R.X FROM R WHERE NOT EXISTS (SELECT S.Y FROM S WHERE S.U = R.U)");
    match p {
        UnnestPlan::Anti(a) => {
            assert_eq!(a.kind, AntiKind::Exclusion);
            assert!(a.window.is_some());
        }
        other => panic!("expected anti, got {}", other.label()),
    }
}

#[test]
fn join_reordering_preserves_answers_on_lopsided_tables() {
    use fuzzy_core::Value;
    use fuzzy_engine::exec::ExecConfig;
    use fuzzy_engine::{Engine, Strategy};
    use fuzzy_rel::Tuple;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let disk = SimDisk::with_default_page_size();
    let mut catalog = Catalog::new();
    let schema = || {
        Schema::of(&[("ID", AttrType::Number), ("X", AttrType::Number), ("Y", AttrType::Number)])
    };
    let mut rng = StdRng::seed_from_u64(17);
    for (name, n) in [("A", 400usize), ("B", 40), ("C", 12)] {
        let t = StoredTable::create(&disk, name, schema());
        t.load((0..n).map(|i| {
            Tuple::full(vec![
                Value::number(i as f64),
                Value::number(rng.gen_range(0..15) as f64),
                Value::number(rng.gen_range(0..15) as f64),
            ])
        }))
        .unwrap();
        catalog.register(t);
    }
    let sql = "SELECT A.ID FROM A WHERE A.X IN \
               (SELECT B.X FROM B WHERE B.Y IN \
                (SELECT C.Y FROM C WHERE C.X = B.X))";
    let mut answers = Vec::new();
    for reorder in [false, true] {
        let engine = Engine::over(catalog.clone().into(), &disk).with_config(ExecConfig {
            buffer_pages: 32,
            sort_pages: 32,
            reorder_joins: reorder,
            ..Default::default()
        });
        answers.push(engine.run_sql(sql, Strategy::Unnest).unwrap().answer.canonicalized());
    }
    assert_eq!(answers[0], answers[1], "reordering changed the answer");
    assert!(!answers[0].is_empty(), "workload should produce matches");
    // And both agree with the naive reference.
    let engine = Engine::over(catalog.clone().into(), &disk);
    let naive = engine.run_sql(sql, Strategy::Naive).unwrap().answer.canonicalized();
    assert_eq!(answers[0], naive);
}

#[test]
fn threshold_pushdown_shrinks_windows_without_changing_answers() {
    use fuzzy_core::{Trapezoid, Value};
    use fuzzy_engine::exec::ExecConfig;
    use fuzzy_engine::{Engine, Strategy};
    use fuzzy_rel::Tuple;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    // Wide trapezoids whose supports overlap heavily but whose cores are
    // narrow: high thresholds prune most window pairs.
    let disk = SimDisk::with_default_page_size();
    let mut catalog = Catalog::new();
    let mut rng = StdRng::seed_from_u64(23);
    for name in ["R", "S"] {
        let t = StoredTable::create(
            &disk,
            name,
            Schema::of(&[("ID", AttrType::Number), ("X", AttrType::Number)]),
        );
        t.load((0..600).map(|i| {
            let c = rng.gen_range(0.0..60.0);
            Tuple::full(vec![
                Value::number(i as f64),
                Value::fuzzy(Trapezoid::new(c - 8.0, c - 0.5, c + 0.5, c + 8.0).unwrap()),
            ])
        }))
        .unwrap();
        catalog.register(t);
    }
    let sql = "SELECT R.ID FROM R WHERE R.X IN (SELECT S.X FROM S) WITH D > 0.8";
    let mut outcomes = Vec::new();
    for pushdown in [false, true] {
        let engine = Engine::over(catalog.clone().into(), &disk)
            .with_config(ExecConfig { threshold_pushdown: pushdown, ..Default::default() });
        outcomes.push(engine.run_sql(sql, Strategy::Unnest).unwrap());
    }
    assert_eq!(
        outcomes[0].answer.canonicalized(),
        outcomes[1].answer.canonicalized(),
        "push-down changed the answer"
    );
    assert!(
        outcomes[1].exec_stats.pairs_examined * 2 < outcomes[0].exec_stats.pairs_examined,
        "push-down should prune most pairs: {} vs {}",
        outcomes[1].exec_stats.pairs_examined,
        outcomes[0].exec_stats.pairs_examined
    );
    // And both agree with the naive reference.
    let naive = Engine::over(catalog.clone().into(), &disk).run_sql(sql, Strategy::Naive).unwrap();
    assert_eq!(outcomes[1].answer.canonicalized(), naive.answer.canonicalized());
}

#[test]
fn statistics_aware_ordering_beats_the_blind_heuristic() {
    use fuzzy_core::Value;
    use fuzzy_engine::exec::ExecConfig;
    use fuzzy_engine::{Engine, StatsRegistry, Strategy};
    use fuzzy_rel::Tuple;
    use std::sync::Arc;

    // Three tables; B is nominally mid-sized but its local predicate
    // (B.Y <= 5 over values 0..1000) keeps almost nothing — only a
    // histogram can see that. A is large with a weak predicate.
    let disk = SimDisk::with_default_page_size();
    let mut catalog = Catalog::new();
    let schema = || {
        Schema::of(&[("ID", AttrType::Number), ("X", AttrType::Number), ("Y", AttrType::Number)])
    };
    for (name, n, ymax) in [("A", 3000usize, 10.0f64), ("B", 1500, 1000.0), ("C", 200, 10.0)] {
        let t = StoredTable::create(&disk, name, schema());
        t.load((0..n).map(|i| {
            Tuple::full(vec![
                Value::number(i as f64),
                Value::number((i % 40) as f64),
                Value::number((i as f64) * ymax / n as f64),
            ])
        }))
        .unwrap();
        catalog.register(t);
    }
    let sql = "SELECT A.ID FROM A WHERE A.Y <= 9 AND A.X IN \
               (SELECT B.X FROM B WHERE B.Y <= 5 AND B.X IN \
                (SELECT C.X FROM C WHERE C.Y <= 9))";
    let run = |stats: Option<Arc<StatsRegistry>>| {
        let mut engine = Engine::over(catalog.clone().into(), &disk).with_config(ExecConfig {
            buffer_pages: 16,
            sort_pages: 16,
            ..Default::default()
        });
        if let Some(s) = stats {
            engine = engine.with_statistics(s);
        }
        disk.reset_io();
        engine.run_sql(sql, Strategy::Unnest).unwrap()
    };
    let blind = run(None);
    let reg = Arc::new(StatsRegistry::new(16));
    // Warm the histograms so the comparison isn't polluted by ANALYZE scans.
    let _ = run(Some(reg.clone()));
    let informed = run(Some(reg));
    assert_eq!(
        blind.answer.canonicalized(),
        informed.answer.canonicalized(),
        "statistics must never change answers"
    );
    assert!(
        informed.exec_stats.pairs_examined <= blind.exec_stats.pairs_examined,
        "histograms should not worsen the order: {} vs {}",
        informed.exec_stats.pairs_examined,
        blind.exec_stats.pairs_examined
    );
}
