//! Property-based checks of the unnesting equivalence theorems.
//!
//! For randomly generated fuzzy databases and one query of each type in the
//! paper's catalogue, the three strategies — the naive semantics-faithful
//! evaluator, the unnested merge-join plan, and the block nested-loop
//! baseline — must produce identical fuzzy relations (same tuples, same
//! membership degrees): Theorems 4.1, 4.2, 5.1, 6.1, 7.1, and 8.1.

use fuzzy_core::{Degree, Trapezoid, Value};
use fuzzy_engine::{Engine, Strategy as EvalStrategy};
use fuzzy_rel::{AttrType, Catalog, Relation, Schema, StoredTable, Tuple};
use fuzzy_storage::SimDisk;
use proptest::prelude::*;
use std::collections::HashMap;

/// A compact generated numeric value over a small grid, so overlaps and
/// exact ties are common (the adversarial cases for unnesting).
fn arb_value() -> impl Strategy<Value = Value> {
    let grid = 0..12i32;
    prop_oneof![
        grid.clone().prop_map(|v| Value::number(v as f64)),
        (grid.clone(), 1..4i32, 0..3i32, 1..4i32).prop_map(|(a, w1, wc, w2)| {
            let a = a as f64;
            Value::fuzzy(
                Trapezoid::new(a, a + w1 as f64, a + (w1 + wc) as f64, a + (w1 + wc + w2) as f64)
                    .expect("ordered"),
            )
        }),
    ]
}

fn arb_degree() -> impl Strategy<Value = Degree> {
    // Quantized degrees make exact min/max ties likely.
    (1..=10u32).prop_map(|d| Degree::new(d as f64 / 10.0).unwrap())
}

#[derive(Debug, Clone)]
struct Row {
    x: Value,
    y: Value,
    u: Value,
    d: Degree,
}

fn arb_rows(max: usize) -> impl Strategy<Value = Vec<Row>> {
    prop::collection::vec(
        (arb_value(), arb_value(), arb_value(), arb_degree()).prop_map(|(x, y, u, d)| Row {
            x,
            y,
            u,
            d,
        }),
        0..max,
    )
}

fn build_catalog(disk: &SimDisk, r: &[Row], s: &[Row], t: &[Row]) -> Catalog {
    let mut catalog = Catalog::new();
    let schema = |key: bool| {
        let s = Schema::of(&[
            ("ID", AttrType::Number),
            ("X", AttrType::Number),
            ("Y", AttrType::Number),
            ("U", AttrType::Number),
        ]);
        if key {
            s.with_key("ID")
        } else {
            s
        }
    };
    for (name, rows) in [("R", r), ("S", s), ("T", t)] {
        let table = StoredTable::create(disk, name, schema(true));
        table
            .load(rows.iter().enumerate().map(|(i, row)| {
                Tuple::new(
                    vec![Value::number(i as f64), row.x.clone(), row.y.clone(), row.u.clone()],
                    row.d,
                )
            }))
            .expect("load");
        catalog.register(table);
    }
    catalog
}

fn degrees(rel: &Relation) -> HashMap<String, f64> {
    rel.dedup_max()
        .tuples()
        .iter()
        .map(|t| {
            let key = t.values.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("|");
            (key, t.degree.value())
        })
        .collect()
}

fn check_equivalence(sql: &str, r: &[Row], s: &[Row], t: &[Row]) -> Result<(), TestCaseError> {
    let disk = SimDisk::with_default_page_size();
    let catalog = build_catalog(&disk, r, s, t);
    let engine = Engine::over(catalog.clone().into(), &disk);
    let naive = engine
        .run_sql(sql, EvalStrategy::Naive)
        .map_err(|e| TestCaseError::fail(format!("naive failed: {e}")))?;
    let unnest = engine
        .run_sql(sql, EvalStrategy::Unnest)
        .map_err(|e| TestCaseError::fail(format!("unnest failed: {e}")))?;
    let reference = degrees(&naive.answer);
    let got = degrees(&unnest.answer);
    prop_assert_eq!(
        got.len(),
        reference.len(),
        "row count mismatch for {}\nnaive: {:?}\nunnest ({}): {:?}",
        sql,
        reference,
        unnest.plan_label,
        got
    );
    for (k, d) in &reference {
        let g = got
            .get(k)
            .ok_or_else(|| TestCaseError::fail(format!("unnest missing row {k} for {sql}")))?;
        prop_assert!(
            (g - d).abs() < 1e-9,
            "degree mismatch for {} row {}: naive {} vs unnest {}",
            sql,
            k,
            d,
            g
        );
    }
    // The nested-loop baseline handles 1- and 2-table plans.
    if let Ok(nl) = engine.run_sql(sql, EvalStrategy::NestedLoop) {
        let got = degrees(&nl.answer);
        prop_assert_eq!(got.len(), reference.len(), "NL row count mismatch for {}", sql);
        for (k, d) in &reference {
            let g = got.get(k).ok_or_else(|| {
                TestCaseError::fail(format!("nested-loop missing row {k} for {sql}"))
            })?;
            prop_assert!((g - d).abs() < 1e-9, "NL degree mismatch for {sql} row {k}");
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 4.1: type N.
    #[test]
    fn type_n(r in arb_rows(7), s in arb_rows(7)) {
        check_equivalence(
            "SELECT R.X FROM R WHERE R.Y >= 3 AND R.Y IN \
             (SELECT S.Y FROM S WHERE S.U <= 8)",
            &r, &s, &[],
        )?;
    }

    /// Theorem 4.2: type J.
    #[test]
    fn type_j(r in arb_rows(7), s in arb_rows(7)) {
        check_equivalence(
            "SELECT R.X FROM R WHERE R.Y IN \
             (SELECT S.Y FROM S WHERE S.U <= 9 AND S.X = R.U)",
            &r, &s, &[],
        )?;
    }

    /// Theorem 5.1: type JX (NOT IN with correlation).
    #[test]
    fn type_jx(r in arb_rows(7), s in arb_rows(7)) {
        check_equivalence(
            "SELECT R.X FROM R WHERE R.Y NOT IN \
             (SELECT S.Y FROM S WHERE S.X = R.U)",
            &r, &s, &[],
        )?;
    }

    /// Section 5's simpler variant: uncorrelated NOT IN.
    #[test]
    fn type_nx(r in arb_rows(7), s in arb_rows(7)) {
        check_equivalence(
            "SELECT R.X FROM R WHERE R.Y >= 2 AND R.Y NOT IN \
             (SELECT S.Y FROM S WHERE S.U >= 4)",
            &r, &s, &[],
        )?;
    }

    /// Theorem 6.1: type JA for every aggregate function and several op1.
    #[test]
    fn type_ja(
        r in arb_rows(6),
        s in arb_rows(6),
        agg_idx in 0usize..5,
        op_idx in 0usize..4,
    ) {
        let agg = ["COUNT", "SUM", "AVG", "MIN", "MAX"][agg_idx];
        let op = [">", "<", ">=", "="][op_idx];
        let sql = format!(
            "SELECT R.X FROM R WHERE R.Y {op} \
             (SELECT {agg}(S.Y) FROM S WHERE S.X = R.U)"
        );
        check_equivalence(&sql, &r, &s, &[])?;
    }

    /// Type A: uncorrelated aggregate (constant inner block).
    #[test]
    fn type_a(r in arb_rows(6), s in arb_rows(6), agg_idx in 0usize..5) {
        let agg = ["COUNT", "SUM", "AVG", "MIN", "MAX"][agg_idx];
        let sql = format!(
            "SELECT R.X FROM R WHERE R.Y <= (SELECT {agg}(S.Y) FROM S WHERE S.U >= 3)"
        );
        check_equivalence(&sql, &r, &s, &[])?;
    }

    /// Theorem 7.1: type JALL for several comparison operators.
    #[test]
    fn type_jall(r in arb_rows(6), s in arb_rows(6), op_idx in 0usize..4) {
        let op = ["<", "<=", ">", "="][op_idx];
        let sql = format!(
            "SELECT R.X FROM R WHERE R.Y {op} ALL \
             (SELECT S.Y FROM S WHERE S.X = R.U)"
        );
        check_equivalence(&sql, &r, &s, &[])?;
    }

    /// Uncorrelated ALL.
    #[test]
    fn type_all(r in arb_rows(6), s in arb_rows(6)) {
        check_equivalence(
            "SELECT R.X FROM R WHERE R.Y >= ALL (SELECT S.Y FROM S WHERE S.U <= 7)",
            &r, &s, &[],
        )?;
    }

    /// θ SOME unnests like type J with θ in place of equality.
    #[test]
    fn type_jsome(r in arb_rows(6), s in arb_rows(6), op_idx in 0usize..3) {
        let op = ["<", "=", ">="][op_idx];
        let sql = format!(
            "SELECT R.X FROM R WHERE R.Y {op} SOME \
             (SELECT S.Y FROM S WHERE S.X = R.U)"
        );
        check_equivalence(&sql, &r, &s, &[])?;
    }

    /// Theorem 8.1: 3-level chain queries.
    #[test]
    fn chain_3(r in arb_rows(5), s in arb_rows(5), t in arb_rows(5)) {
        check_equivalence(
            "SELECT R.X FROM R WHERE R.Y IN \
             (SELECT S.Y FROM S WHERE S.X = R.U AND S.U IN \
              (SELECT T.Y FROM T WHERE T.X = S.X AND T.U = R.U))",
            &r, &s, &t,
        )?;
    }

    /// Flat 2-table joins (sanity of the merge-join itself).
    #[test]
    fn flat_join(r in arb_rows(8), s in arb_rows(8)) {
        check_equivalence(
            "SELECT R.X, S.X FROM R, S WHERE R.Y = S.Y AND R.U <= S.U",
            &r, &s, &[],
        )?;
    }

    /// WITH thresholds commute with unnesting.
    #[test]
    fn with_threshold(r in arb_rows(6), s in arb_rows(6), z in 0..10u32) {
        let sql = format!(
            "SELECT R.X FROM R WHERE R.Y IN \
             (SELECT S.Y FROM S WHERE S.X = R.U) WITH D > 0.{z}"
        );
        check_equivalence(&sql, &r, &s, &[])?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Type JA with a NON-equality correlation (S.V <= R.U): exercises the
    /// scan fallback of the aggregate executor, where T'(u) cannot be
    /// window-scanned (Section 6 only details the equality case).
    #[test]
    fn type_ja_inequality_correlation(
        r in arb_rows(5),
        s in arb_rows(5),
        agg_idx in 0usize..5,
    ) {
        let agg = ["COUNT", "SUM", "AVG", "MIN", "MAX"][agg_idx];
        let sql = format!(
            "SELECT R.X FROM R WHERE R.Y >= (SELECT {agg}(S.Y) FROM S WHERE S.X <= R.U)"
        );
        check_equivalence(&sql, &r, &s, &[])?;
    }

    /// θ SOME with a NON-equality correlation: no merge driver exists, so the
    /// flat plan falls back to the block nested loop.
    #[test]
    fn type_jsome_inequality_correlation(r in arb_rows(5), s in arb_rows(5)) {
        check_equivalence(
            "SELECT R.X FROM R WHERE R.Y = SOME (SELECT S.Y FROM S WHERE S.X >= R.U)",
            &r, &s, &[],
        )?;
    }

    /// JALL with extra p1 and p2 predicates around the quantifier.
    #[test]
    fn type_jall_with_local_predicates(r in arb_rows(5), s in arb_rows(5)) {
        check_equivalence(
            "SELECT R.X FROM R WHERE R.U >= 1 AND R.Y <= ALL \
             (SELECT S.Y FROM S WHERE S.U <= 9 AND S.X = R.U)",
            &r, &s, &[],
        )?;
    }

    /// JX with extra p1 and p2 predicates (the paper notes the result holds
    /// when either or both exist).
    #[test]
    fn type_jx_with_local_predicates(r in arb_rows(5), s in arb_rows(5)) {
        check_equivalence(
            "SELECT R.X FROM R WHERE R.U <= 10 AND R.Y NOT IN \
             (SELECT S.Y FROM S WHERE S.U >= 2 AND S.X = R.U)",
            &r, &s, &[],
        )?;
    }

    /// Empty outer or inner relations: every boundary definition fires
    /// (empty T(r) ⇒ NOT IN degree μ_R(r), ALL degree 1, COUNT 0, NULL
    /// aggregates).
    #[test]
    fn empty_relation_boundaries(r in arb_rows(4), which in 0usize..4) {
        let empty: Vec<Row> = Vec::new();
        let sql = match which {
            0 => "SELECT R.X FROM R WHERE R.Y NOT IN (SELECT S.Y FROM S WHERE S.X = R.U)",
            1 => "SELECT R.X FROM R WHERE R.Y < ALL (SELECT S.Y FROM S WHERE S.X = R.U)",
            2 => "SELECT R.X FROM R WHERE R.Y >= (SELECT COUNT(S.Y) FROM S WHERE S.X = R.U)",
            _ => "SELECT R.X FROM R WHERE R.Y > (SELECT MAX(S.Y) FROM S WHERE S.X = R.U)",
        };
        check_equivalence(sql, &r, &empty, &[])?;
        check_equivalence(sql, &empty, &r, &[])?;
    }

    /// Four-level chains (Theorem 8.1 beyond the paper's 3-block example).
    #[test]
    fn chain_4(r in arb_rows(4), s in arb_rows(4), t in arb_rows(4)) {
        // Reuse T's rows for the fourth level via a distinct binding of the
        // same stored relation name is disallowed; use all three tables and
        // close the chain on T with a local predicate instead.
        check_equivalence(
            "SELECT R.X FROM R WHERE R.Y IN \
             (SELECT S.Y FROM S WHERE S.X = R.U AND S.U IN \
              (SELECT T.Y FROM T WHERE T.X = S.X AND T.U >= 2))",
            &r, &s, &t,
        )?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Similarity predicates (`X ~ Y WITHIN t`, the non-binary θ of
    /// Section 2) evaluate identically under naive and unnested plans,
    /// as local filters and as join residuals.
    #[test]
    fn similarity_predicates(r in arb_rows(6), s in arb_rows(6), tol in 1..6u32) {
        let sql = format!(
            "SELECT R.X FROM R WHERE R.Y ~ 5 WITHIN {tol} AND R.U IN \
             (SELECT S.U FROM S WHERE S.X ~ R.X WITHIN {tol})"
        );
        check_equivalence(&sql, &r, &s, &[])?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// EXISTS / NOT EXISTS unnesting (the paper's Section 7 remark that the
    /// EXIST quantifier "can be unnested similarly").
    #[test]
    fn exists_and_not_exists(r in arb_rows(6), s in arb_rows(6), negated in proptest::bool::ANY) {
        let kw = if negated { "NOT EXISTS" } else { "EXISTS" };
        let sql = format!(
            "SELECT R.X FROM R WHERE R.U >= 1 AND {kw} \
             (SELECT S.Y FROM S WHERE S.U <= 9 AND S.X = R.U)"
        );
        check_equivalence(&sql, &r, &s, &[])?;
        // Uncorrelated variant: the sub-query is a constant condition.
        let sql = format!("SELECT R.X FROM R WHERE {kw} (SELECT S.Y FROM S WHERE S.U >= 5)");
        check_equivalence(&sql, &r, &s, &[])?;
    }
}

/// Like [`check_equivalence`] but runs the unnested plan with the
/// sampling-based partitioned join instead of the merge-join.
fn check_partitioned(sql: &str, r: &[Row], s: &[Row]) -> Result<(), TestCaseError> {
    use fuzzy_engine::exec::{ExecConfig, JoinMethod};
    let disk = SimDisk::with_default_page_size();
    let catalog = build_catalog(&disk, r, s, &[]);
    let naive = Engine::over(catalog.clone().into(), &disk)
        .run_sql(sql, EvalStrategy::Naive)
        .map_err(|e| TestCaseError::fail(format!("naive failed: {e}")))?;
    let part = Engine::over(catalog.clone().into(), &disk)
        .with_config(ExecConfig {
            buffer_pages: 4, // force several partitions even on tiny inputs
            sort_pages: 4,
            join_method: JoinMethod::Partitioned,
            ..Default::default()
        })
        .run_sql(sql, EvalStrategy::Unnest)
        .map_err(|e| TestCaseError::fail(format!("partitioned failed: {e}")))?;
    let reference = degrees(&naive.answer);
    let got = degrees(&part.answer);
    prop_assert_eq!(got.len(), reference.len(), "partitioned row count mismatch for {}", sql);
    for (k, d) in &reference {
        let g = got
            .get(k)
            .ok_or_else(|| TestCaseError::fail(format!("partitioned missing row {k}")))?;
        prop_assert!((g - d).abs() < 1e-9, "partitioned degree mismatch for {sql} row {k}");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The sampling-based partitioned join produces the same fuzzy relations
    /// as the merge-join and the naive reference for types N and J, including
    /// under WITH thresholds (replicated pairs are absorbed by fuzzy OR).
    #[test]
    fn partitioned_join_equivalence(r in arb_rows(8), s in arb_rows(8), z in 0..9u32) {
        check_partitioned(
            "SELECT R.X FROM R WHERE R.Y IN (SELECT S.Y FROM S WHERE S.X = R.U)",
            &r, &s,
        )?;
        let sql = format!(
            "SELECT R.X FROM R WHERE R.Y IN (SELECT S.Y FROM S) WITH D > 0.{z}"
        );
        check_partitioned(&sql, &r, &s)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The Section 2.3 intermediate-relation method agrees with everything
    /// else on every two-level type.
    #[test]
    fn materialized_nested_loop_equivalence(r in arb_rows(6), s in arb_rows(6), which in 0usize..4) {
        let sql = match which {
            0 => "SELECT R.X FROM R WHERE R.U >= 2 AND R.Y IN (SELECT S.Y FROM S WHERE S.U <= 8)",
            1 => "SELECT R.X FROM R WHERE R.Y NOT IN (SELECT S.Y FROM S WHERE S.U >= 3 AND S.X = R.U)",
            2 => "SELECT R.X FROM R WHERE R.Y <= (SELECT MAX(S.Y) FROM S WHERE S.U <= 7 AND S.X = R.U)",
            _ => "SELECT R.X FROM R WHERE R.Y < ALL (SELECT S.Y FROM S WHERE S.U >= 2 AND S.X = R.U)",
        };
        let disk = SimDisk::with_default_page_size();
        let catalog = build_catalog(&disk, &r, &s, &[]);
        let engine = Engine::over(catalog.clone().into(), &disk);
        let naive = engine.run_sql(sql, EvalStrategy::Naive)
            .map_err(|e| TestCaseError::fail(format!("naive: {e}")))?;
        let mat = engine.run_sql(sql, EvalStrategy::MaterializedNestedLoop)
            .map_err(|e| TestCaseError::fail(format!("materialized: {e}")))?;
        let reference = degrees(&naive.answer);
        let got = degrees(&mat.answer);
        prop_assert_eq!(got.len(), reference.len(), "row count mismatch for {}", sql);
        for (k, d) in &reference {
            let g = got.get(k)
                .ok_or_else(|| TestCaseError::fail(format!("materialized missing {k}")))?;
            prop_assert!((g - d).abs() < 1e-9);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Chains executed with the partitioned join at every step still agree
    /// with the naive reference (each intermediate result re-partitions).
    #[test]
    fn partitioned_join_chains(r in arb_rows(6), s in arb_rows(6), t in arb_rows(6)) {
        use fuzzy_engine::exec::{ExecConfig, JoinMethod};
        let sql = "SELECT R.X FROM R WHERE R.Y IN \
                   (SELECT S.Y FROM S WHERE S.X = R.U AND S.U IN \
                    (SELECT T.Y FROM T WHERE T.X = S.X))";
        let disk = SimDisk::with_default_page_size();
        let catalog = build_catalog(&disk, &r, &s, &t);
        let naive = Engine::over(catalog.clone().into(), &disk)
            .run_sql(sql, EvalStrategy::Naive)
            .map_err(|e| TestCaseError::fail(format!("naive: {e}")))?;
        let part = Engine::over(catalog.clone().into(), &disk)
            .with_config(ExecConfig {
                buffer_pages: 4,
                sort_pages: 4,
                join_method: JoinMethod::Partitioned,
                ..Default::default()
            })
            .run_sql(sql, EvalStrategy::Unnest)
            .map_err(|e| TestCaseError::fail(format!("partitioned: {e}")))?;
        let reference = degrees(&naive.answer);
        let got = degrees(&part.answer);
        prop_assert_eq!(got.len(), reference.len());
        for (k, d) in &reference {
            let g = got.get(k).ok_or_else(|| TestCaseError::fail(format!("missing {k}")))?;
            prop_assert!((g - d).abs() < 1e-9);
        }
    }
}
