//! End-to-end reproduction of the paper's running examples, checking that
//! all four strategies (naive reference, unnested merge-join, nested-loop
//! baseline, and the Section 2.3 materialized nested loop) produce identical
//! fuzzy relations, and that Example 4.1's printed degrees are matched
//! exactly.

use fuzzy_core::Value;
use fuzzy_engine::{Engine, Strategy};
use fuzzy_rel::Relation;
use fuzzy_storage::SimDisk;
use fuzzy_workload::paper;
use std::collections::HashMap;

const STRATEGIES: [Strategy; 4] =
    [Strategy::Naive, Strategy::Unnest, Strategy::NestedLoop, Strategy::MaterializedNestedLoop];

fn degrees(rel: &Relation) -> HashMap<String, f64> {
    rel.dedup_max()
        .tuples()
        .iter()
        .map(|t| {
            let key = t.values.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("|");
            (key, t.degree.value())
        })
        .collect()
}

fn assert_same_answers(answers: &[(Strategy, Relation)]) {
    let reference = degrees(&answers[0].1);
    for (s, rel) in &answers[1..] {
        let got = degrees(rel);
        assert_eq!(
            got.len(),
            reference.len(),
            "strategy {s:?} returned {} rows, reference {}:\n{:?}\nvs\n{:?}",
            got.len(),
            reference.len(),
            got,
            reference
        );
        for (k, d) in &reference {
            let g = got.get(k).unwrap_or_else(|| panic!("strategy {s:?} missing row {k}"));
            assert!((g - d).abs() < 1e-9, "strategy {s:?} degree mismatch for {k}: {g} vs {d}");
        }
    }
}

fn run_all(engine: &Engine, sql: &str) -> Vec<(Strategy, Relation)> {
    STRATEGIES
        .iter()
        .map(|&s| {
            let out =
                engine.run_sql(sql, s).unwrap_or_else(|e| panic!("{s:?} failed on {sql}: {e}"));
            (s, out.answer)
        })
        .collect()
}

#[test]
fn example_41_type_n_query_2() {
    let disk = SimDisk::with_default_page_size();
    let catalog = paper::dating_service(&disk).unwrap();
    let engine = Engine::over(catalog.clone().into(), &disk);
    let sql = "SELECT F.NAME FROM F \
               WHERE F.AGE = 'medium young' AND F.INCOME IN \
               (SELECT M.INCOME FROM M WHERE M.AGE = 'middle age')";
    let answers = run_all(&engine, sql);
    assert_same_answers(&answers);
    // The paper's printed answer: {Ann: 0.7, Betty: 0.7}.
    let d = degrees(&answers[0].1);
    assert_eq!(d.len(), 2, "answer: {d:?}");
    assert!((d["Ann"] - 0.7).abs() < 1e-9, "Ann: {}", d["Ann"]);
    assert!((d["Betty"] - 0.7).abs() < 1e-9, "Betty: {}", d["Betty"]);
}

#[test]
fn example_41_intermediate_relation_t() {
    // The inner block alone: T with about 40K -> 0.4, high -> 1 (and Carl's
    // medium low -> 0.5, which the paper's printed table truncates).
    let disk = SimDisk::with_default_page_size();
    let catalog = paper::dating_service(&disk).unwrap();
    let engine = Engine::over(catalog.clone().into(), &disk);
    let sql = "SELECT M.INCOME FROM M WHERE M.AGE = 'middle age'";
    let answers = run_all(&engine, sql);
    assert_same_answers(&answers);
    let d = degrees(&answers[0].1);
    assert_eq!(d.len(), 3, "T: {d:?}");
    let about_40k = d.iter().find(|(k, _)| k.contains("35") && k.contains("45")).unwrap();
    assert!((about_40k.1 - 0.4).abs() < 1e-9);
    let high = d.iter().find(|(k, _)| k.contains("120")).unwrap();
    assert!((high.1 - 1.0).abs() < 1e-9);
    let medium_low = d.iter().find(|(k, _)| k.contains("15") && k.contains("35")).unwrap();
    assert!((medium_low.1 - 0.5).abs() < 1e-9);
}

#[test]
fn query_1_flat_join() {
    // Query 1: pairs about the same age where the male income exceeds
    // "medium high".
    let disk = SimDisk::with_default_page_size();
    let catalog = paper::dating_service(&disk).unwrap();
    let engine = Engine::over(catalog.clone().into(), &disk);
    let sql = "SELECT F.NAME, M.NAME FROM F, M \
               WHERE F.AGE = M.AGE AND M.INCOME > 'medium high'";
    let answers = run_all(&engine, sql);
    assert_same_answers(&answers);
    let d = degrees(&answers[0].1);
    // Bill (middle age, high income) pairs with every F member whose age
    // overlaps middle age.
    assert!(d.keys().any(|k| k.ends_with("|Bill")), "answer: {d:?}");
    // Betty (middle age) with Bill (middle age): ages match fully, income
    // 'high' > 'medium high' has a positive degree.
    let betty_bill = d.iter().find(|(k, _)| k.as_str() == "Betty|Bill");
    assert!(betty_bill.is_some(), "answer: {d:?}");
}

#[test]
fn query_2_with_threshold() {
    let disk = SimDisk::with_default_page_size();
    let catalog = paper::dating_service(&disk).unwrap();
    let engine = Engine::over(catalog.clone().into(), &disk);
    let sql = "SELECT F.NAME FROM F \
               WHERE F.AGE = 'medium young' AND F.INCOME IN \
               (SELECT M.INCOME FROM M WHERE M.AGE = 'middle age') \
               WITH D > 0.65";
    let answers = run_all(&engine, sql);
    assert_same_answers(&answers);
    assert_eq!(answers[0].1.len(), 2); // both rows are exactly 0.7 > 0.65
    let sql_high = sql.replace("0.65", "0.7");
    let answers = run_all(&engine, &sql_high);
    assert_same_answers(&answers);
    assert_eq!(answers[0].1.len(), 0, "strict threshold at exactly 0.7 empties the answer");
}

#[test]
fn query_4_type_jx_not_in() {
    let disk = SimDisk::with_default_page_size();
    let catalog = paper::employees(&disk).unwrap();
    let engine = Engine::over(catalog.clone().into(), &disk);
    let sql = "SELECT R.NAME FROM EMP_SALES R WHERE R.INCOME NOT IN \
               (SELECT S.INCOME FROM EMP_RESEARCH S WHERE S.AGE = R.AGE)";
    let answers = run_all(&engine, sql);
    assert_same_answers(&answers);
    let d = degrees(&answers[0].1);
    // Dana's (medium young, medium high) profile is exactly matched by Hal in
    // research, so Dana's exclusion degree drops to 0: not in the answer.
    assert!(!d.contains_key("Dana"), "answer: {d:?}");
    // Fay (about 50, low income): no researcher with her age has income
    // 'low', so she is fully in the answer.
    assert!((d["Fay"] - 1.0).abs() < 1e-9, "answer: {d:?}");
}

#[test]
fn query_5_type_ja_aggregate() {
    let disk = SimDisk::with_default_page_size();
    let catalog = paper::cities(&disk).unwrap();
    let engine = Engine::over(catalog.clone().into(), &disk);
    let sql = "SELECT R.NAME FROM CITIES_REGION_A R \
               WHERE R.AVE_HOME_INCOME > \
               (SELECT MAX(S.AVE_HOME_INCOME) FROM CITIES_REGION_B S \
                WHERE S.POPULATION = R.POPULATION)";
    let answers = run_all(&engine, sql);
    assert_same_answers(&answers);
    let d = degrees(&answers[0].1);
    assert!(!d.is_empty(), "expected at least one city, got {d:?}");
}

#[test]
fn count_aggregate_with_outer_join_branch() {
    // COUNT': cities in A with fewer than 2 similarly-sized cities in B;
    // cities with NO similarly-sized city in B (empty group) must still
    // appear via the IF-THEN-ELSE branch comparing against 0.
    let disk = SimDisk::with_default_page_size();
    let catalog = paper::cities(&disk).unwrap();
    let engine = Engine::over(catalog.clone().into(), &disk);
    let sql = "SELECT R.NAME FROM CITIES_REGION_A R \
               WHERE 2 > \
               (SELECT COUNT(S.AVE_HOME_INCOME) FROM CITIES_REGION_B S \
                WHERE S.POPULATION = R.POPULATION)";
    let answers = run_all(&engine, sql);
    assert_same_answers(&answers);
    let d = degrees(&answers[0].1);
    assert!(!d.is_empty(), "answer: {d:?}");
}

#[test]
fn jall_quantified_query() {
    let disk = SimDisk::with_default_page_size();
    let catalog = paper::employees(&disk).unwrap();
    let engine = Engine::over(catalog.clone().into(), &disk);
    let sql = "SELECT R.NAME FROM EMP_SALES R WHERE R.INCOME < ALL \
               (SELECT S.INCOME FROM EMP_RESEARCH S WHERE S.AGE = R.AGE)";
    let answers = run_all(&engine, sql);
    assert_same_answers(&answers);
    // Fay has no same-age researcher: T(r) empty, degree 1 by definition.
    let d = degrees(&answers[0].1);
    assert!((d["Fay"] - 1.0).abs() < 1e-9, "answer: {d:?}");
}

#[test]
fn jsome_quantified_query() {
    let disk = SimDisk::with_default_page_size();
    let catalog = paper::employees(&disk).unwrap();
    let engine = Engine::over(catalog.clone().into(), &disk);
    let sql = "SELECT R.NAME FROM EMP_SALES R WHERE R.INCOME = SOME \
               (SELECT S.INCOME FROM EMP_RESEARCH S WHERE S.AGE = R.AGE)";
    let answers = run_all(&engine, sql);
    assert_same_answers(&answers);
    let d = degrees(&answers[0].1);
    assert!((d["Dana"] - 1.0).abs() < 1e-9, "Dana matches Hal exactly: {d:?}");
}

#[test]
fn chain_query_three_levels() {
    // A 3-level chain over the dating and employee catalogs is not natural;
    // build one over the dating catalog: F -> M -> F would reuse bindings,
    // so use the employees catalog joined through incomes and ages.
    let disk = SimDisk::with_default_page_size();
    let mut catalog = paper::dating_service(&disk).unwrap();
    // Register the employee tables on the same disk/catalog.
    let emp = paper::employees(&disk).unwrap();
    for name in ["EMP_SALES", "EMP_RESEARCH"] {
        catalog.register(emp.table(name).unwrap().clone());
    }
    let engine = Engine::over(catalog.clone().into(), &disk);
    let sql = "SELECT F.NAME FROM F WHERE F.INCOME IN \
               (SELECT E.INCOME FROM EMP_SALES E WHERE E.AGE = F.AGE AND E.INCOME IN \
                (SELECT S.INCOME FROM EMP_RESEARCH S WHERE S.AGE = E.AGE))";
    // The nested-loop baseline handles 2 tables; compare naive vs unnest.
    let naive = engine.run_sql(sql, Strategy::Naive).unwrap();
    let unnest = engine.run_sql(sql, Strategy::Unnest).unwrap();
    assert!(unnest.plan_label.contains("flat-join[3"), "label: {}", unnest.plan_label);
    assert_same_answers(&[(Strategy::Naive, naive.answer), (Strategy::Unnest, unnest.answer)]);
}

#[test]
fn uncorrelated_aggregate_type_a() {
    let disk = SimDisk::with_default_page_size();
    let catalog = paper::employees(&disk).unwrap();
    let engine = Engine::over(catalog.clone().into(), &disk);
    let sql = "SELECT R.NAME FROM EMP_SALES R WHERE R.INCOME > \
               (SELECT AVG(S.INCOME) FROM EMP_RESEARCH S)";
    let answers = run_all(&engine, sql);
    assert_same_answers(&answers);
}

#[test]
fn uncorrelated_not_in_type_nx() {
    let disk = SimDisk::with_default_page_size();
    let catalog = paper::employees(&disk).unwrap();
    let engine = Engine::over(catalog.clone().into(), &disk);
    let sql = "SELECT R.NAME FROM EMP_SALES R WHERE R.INCOME NOT IN \
               (SELECT S.INCOME FROM EMP_RESEARCH S)";
    let answers = run_all(&engine, sql);
    assert_same_answers(&answers);
}

#[test]
fn uncorrelated_all_type_all() {
    let disk = SimDisk::with_default_page_size();
    let catalog = paper::employees(&disk).unwrap();
    let engine = Engine::over(catalog.clone().into(), &disk);
    let sql = "SELECT R.NAME FROM EMP_SALES R WHERE R.INCOME >= ALL \
               (SELECT S.INCOME FROM EMP_RESEARCH S)";
    let answers = run_all(&engine, sql);
    assert_same_answers(&answers);
}

#[test]
fn appendix_example_crisp_vs_distribution() {
    // The Appendix example: R(X, Y) with crisp Y values y1, y2; S(Y, Z) with
    // one tuple whose Y is possibly y1 (1) or y2 (0.8). Both x1 and x2 are
    // possible answers with degrees 1 and 0.8. We model y1 = 10, y2 = 20 and
    // the distribution as a rectangle-free trapezoid is impossible for a
    // discrete set, so we use two S tuples carrying the alternatives with
    // membership degrees 1 and 0.8 — the fuzzy-set-of-tuples reading.
    use fuzzy_core::Degree;
    use fuzzy_rel::{AttrType, Catalog, Schema, StoredTable, Tuple};
    let disk = SimDisk::with_default_page_size();
    let mut catalog = Catalog::new();
    let r = StoredTable::create(
        &disk,
        "R",
        Schema::of(&[("X", AttrType::Text), ("Y", AttrType::Number)]),
    );
    r.load([
        Tuple::full(vec![Value::text("x1"), Value::number(10.0)]),
        Tuple::full(vec![Value::text("x2"), Value::number(20.0)]),
    ])
    .unwrap();
    catalog.register(r);
    let s = StoredTable::create(
        &disk,
        "S",
        Schema::of(&[("Y", AttrType::Number), ("Z", AttrType::Text)]),
    );
    s.load([
        Tuple::new(vec![Value::number(10.0), Value::text("z1")], Degree::ONE),
        Tuple::new(vec![Value::number(20.0), Value::text("z1")], Degree::new(0.8).unwrap()),
    ])
    .unwrap();
    catalog.register(s);
    let engine = Engine::over(catalog.clone().into(), &disk);
    let answers = run_all(&engine, "SELECT R.X FROM R, S WHERE R.Y = S.Y");
    assert_same_answers(&answers);
    let d = degrees(&answers[0].1);
    assert!((d["x1"] - 1.0).abs() < 1e-9);
    assert!((d["x2"] - 0.8).abs() < 1e-9);
}

#[test]
fn query_3_is_the_unnested_form_of_query_2() {
    // Section 2.3 displays Query 3, the flat form of Query 2, and asserts
    // their equivalence; here both are executed and compared directly.
    let disk = SimDisk::with_default_page_size();
    let catalog = paper::dating_service(&disk).unwrap();
    let engine = Engine::over(catalog.clone().into(), &disk);
    let query2 = "SELECT F.NAME FROM F \
                  WHERE F.AGE = 'medium young' AND F.INCOME IN \
                  (SELECT M.INCOME FROM M WHERE M.AGE = 'middle age')";
    let query3 = "SELECT F.NAME FROM F, M \
                  WHERE F.AGE = 'medium young' AND \
                  M.AGE = 'middle age' AND F.INCOME = M.INCOME";
    for s2 in STRATEGIES {
        for s3 in STRATEGIES {
            let a2 = engine.run_sql(query2, s2).unwrap().answer;
            let a3 = engine.run_sql(query3, s3).unwrap().answer;
            assert_same_answers(&[(s2, a2), (s3, a3)]);
        }
    }
}
