//! Physical execution of unnested plans.
//!
//! The operators here follow Section 3's extended merge-join and the
//! pipelined evaluations of Sections 5–7:
//!
//! * **filter scan** — folds a table's local predicates (the paper's p_i)
//!   into tuple degrees, materializing only the positive survivors ("only
//!   those tuples that satisfy p_i positively should be sorted");
//! * **sort** — external merge sort by the interval order `⪯` of
//!   Definition 3.1 on the join attribute;
//! * **merge-join window** — streams the sorted outer relation; for each
//!   outer tuple `r` presents exactly `Rng(r)`, the contiguous inner range
//!   whose support intervals can intersect `r`'s; inner tuples wholly before
//!   the current outer value leave the window forever (the paper's "will
//!   also precede every `Rng(r_k)` for `k > i`" argument);
//! * **anti accumulation** — the grouped `MIN(D)` of Queries JX′/JALL′,
//!   computed on the fly because grouping is by the outer key and the outer
//!   relation streams tuple-at-a-time;
//! * **group aggregation** — the pipelined T1/T2/JA′ (COUNT′) evaluation with
//!   the left-outer-join IF-THEN-ELSE branch for `COUNT` (Section 6).
//!
//! Every operator registers itself in the executor's [`QueryMetrics`]
//! registry and accumulates exact counters there (see [`crate::metrics`] for
//! the determinism contract). The legacy [`ExecStats`] summary is *derived*
//! from the registry by [`Executor::stats`].

use crate::error::{EngineError, Result};
use crate::metrics::{OpKind, OperatorMetrics, QueryMetrics};
use crate::naive::apply_aggregate;
use crate::plan::{
    AggPlan, AntiKind, AntiPlan, FlatPlan, PlanCol, PlanCompare, PlanOperand, PlanTable, UnnestPlan,
};
use fuzzy_core::{interval_order, CmpOp, Degree, Value};
use fuzzy_rel::{Attribute, Relation, Schema, StoredTable, Tuple};
use fuzzy_sql::{AggFunc, Threshold};
use fuzzy_storage::{external_sort_parallel, BufferPool, IoSnapshot, SimDisk};
use std::collections::{HashMap, VecDeque};
use std::time::Instant;

/// Execution configuration: the buffer and sort memory budgets, in pages.
/// The paper's experiments use a 2 MB buffer of 8 KB pages (256 frames).
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// Buffer pool frames available to scans and joins (the paper's M).
    pub buffer_pages: usize,
    /// Pages of working memory for the external sort.
    pub sort_pages: usize,
    /// Reorder multi-way flat joins to minimize intermediate sizes
    /// (Section 8's optimizer step). Answers are unaffected.
    pub reorder_joins: bool,
    /// Push `WITH D > z` thresholds into flat merge-joins: windows scan the
    /// z-cut intervals instead of the supports, because `d(x = y) >= z`
    /// exactly when the z-cuts intersect (the "equality indicator" direction
    /// of the paper's reference \[42\]). Answers are unaffected.
    pub threshold_pushdown: bool,
    /// Which physical algorithm drives flat equi-join steps.
    pub join_method: JoinMethod,
    /// Worker threads for external-sort run generation and the flat
    /// merge-join's per-pair degree computation. `1` (the default) is the
    /// serial path; any value produces bit-identical answers and identical
    /// I/O / comparison / pair counters, trading memory for wall time (see
    /// DESIGN.md, "Parallel execution").
    pub threads: usize,
}

/// The degree bound a pushed-down `WITH D > z` threshold lets a *flat* plan
/// prune at: z when push-down is enabled and a threshold exists, else 0.
/// Sound for flat plans only — every conjunct of their final min must reach
/// the threshold, so pairs below it can never contribute an answer row.
pub fn flat_pushdown_alpha(config: &ExecConfig, threshold: Option<Threshold>) -> Degree {
    match (config.threshold_pushdown, threshold) {
        (true, Some(t)) => Degree::clamped(t.z),
        _ => Degree::ZERO,
    }
}

/// The pruning bound the executor uses for a plan. The anti and aggregate
/// forms accumulate MIN over *negated* degrees — a low-degree pair still
/// lowers its group's degree — so they never prune (`Degree::ZERO`); the
/// static verifier independently rejects any plan that claims otherwise
/// (`V-THRESH-SCOPE`).
pub fn pushdown_alpha(config: &ExecConfig, plan: &UnnestPlan) -> Degree {
    match plan {
        UnnestPlan::Flat(p) => flat_pushdown_alpha(config, p.threshold),
        UnnestPlan::Anti(_) | UnnestPlan::Agg(_) => Degree::ZERO,
    }
}

/// Physical algorithms for a flat equi-join step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinMethod {
    /// The paper's extended merge-join (Section 3).
    #[default]
    Merge,
    /// The sampling-based partitioned join (Section 3's \[9\]/\[36\]
    /// "more research is needed" direction; see `join_partitioned`).
    Partitioned,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            buffer_pages: 256,
            sort_pages: 256,
            reorder_joins: true,
            threshold_pushdown: true,
            join_method: JoinMethod::default(),
            threads: 1,
        }
    }
}

/// CPU-side counter summary, derived from the per-operator registry (I/O
/// counts live on the simulated disk). Kept for experiment harnesses that
/// need the paper's Table 3 breakdown without walking operators.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecStats {
    /// Tuple pairs examined by join windows or nested loops.
    pub pairs_examined: u64,
    /// Comparisons performed by external sorting.
    pub sort_comparisons: u64,
    /// Initial runs generated across all sorts.
    pub sort_runs: u64,
    /// Wall-clock CPU time spent inside external sorts (Table 3's
    /// sorting-share breakdown).
    pub sort_cpu: std::time::Duration,
    /// Physical reads issued by external sorts.
    pub sort_reads: u64,
    /// Physical writes issued by external sorts.
    pub sort_writes: u64,
    /// Largest merge window (`Rng(r)`) observed, in tuples. Section 3's
    /// buffer-size assumption is that one outer page plus the pages of the
    /// largest range fit in memory; this counter makes that checkable.
    pub max_window: u64,
}

/// The outcome of evaluating one candidate join pair: its contribution degree
/// (or `None`), how many value-level comparisons the evaluation cost, and
/// whether a positive pair was discarded by a pushed-down threshold. Both the
/// serial and the parallel join paths count from this one structure, which is
/// what makes their metrics bit-identical.
pub(crate) struct PairOutcome {
    pub(crate) degree: Option<Degree>,
    pub(crate) comparisons: u32,
    pub(crate) pruned: bool,
}

/// An open operator in the metrics registry: remembers the I/O level and the
/// clock at `begin_op` so `end_op` can charge the deltas.
pub(crate) struct OpGuard {
    pub(crate) id: usize,
    io0: IoSnapshot,
    t0: Instant,
}

/// The physical executor. Temporary files live on the same simulated disk as
/// the base tables, so every spill and materialization is charged.
pub struct Executor {
    disk: SimDisk,
    config: ExecConfig,
    metrics: QueryMetrics,
    temp_counter: u64,
    /// Optional column-statistics registry consulted by the join-order
    /// optimizer.
    statistics: Option<std::rc::Rc<crate::stats_histogram::StatsRegistry>>,
}

// ---------------------------------------------------------------------------
// Bound predicates over concatenated layouts
// ---------------------------------------------------------------------------

pub(crate) enum BoundOperand {
    Col(usize),
    Const(Value),
}

/// A comparison bound to a concrete (possibly concatenated) tuple layout.
pub(crate) struct BoundCompare {
    lhs: BoundOperand,
    op: CmpOp,
    rhs: BoundOperand,
    tolerance: Option<f64>,
}

impl BoundCompare {
    pub(crate) fn eval(&self, values: &[Value]) -> Degree {
        let l = match &self.lhs {
            BoundOperand::Col(i) => &values[*i],
            BoundOperand::Const(v) => v,
        };
        let r = match &self.rhs {
            BoundOperand::Col(i) => &values[*i],
            BoundOperand::Const(v) => v,
        };
        match self.tolerance {
            Some(t) => l.compare_similar(r, t),
            None => l.compare(self.op, r),
        }
    }

    /// Evaluates against a split pair of value slices (outer ++ inner)
    /// without concatenating them.
    pub(crate) fn eval_pair(&self, left: &[Value], right: &[Value]) -> Degree {
        let pick = |o: &BoundOperand| -> Value {
            match o {
                BoundOperand::Col(i) => {
                    if *i < left.len() {
                        left[*i].clone()
                    } else {
                        right[*i - left.len()].clone()
                    }
                }
                BoundOperand::Const(v) => v.clone(),
            }
        };
        match self.tolerance {
            Some(t) => pick(&self.lhs).compare_similar(&pick(&self.rhs), t),
            None => pick(&self.lhs).compare(self.op, &pick(&self.rhs)),
        }
    }
}

/// Concatenated-tuple layout: maps `(binding, attr)` to a flat index.
#[derive(Debug, Clone, Default)]
pub(crate) struct Layout {
    parts: Vec<(String, Schema)>,
}

impl Layout {
    pub(crate) fn of_table(t: &PlanTable) -> Layout {
        Layout { parts: vec![(t.binding.clone(), t.table.schema().clone())] }
    }

    pub(crate) fn push(&mut self, t: &PlanTable) {
        self.parts.push((t.binding.clone(), t.table.schema().clone()));
    }

    pub(crate) fn resolve(&self, c: &PlanCol) -> Result<usize> {
        let mut off = 0usize;
        for (binding, schema) in &self.parts {
            if binding == &c.binding {
                return Ok(off + c.attr);
            }
            off += schema.len();
        }
        Err(EngineError::Bind(format!("binding {:?} not in layout", c.binding)))
    }

    pub(crate) fn contains(&self, binding: &str) -> bool {
        self.parts.iter().any(|(b, _)| b == binding)
    }

    /// A storable schema for the concatenation, attribute names qualified.
    fn to_schema(&self) -> Schema {
        let mut attrs = Vec::new();
        for (binding, schema) in &self.parts {
            for a in schema.attributes() {
                attrs.push(Attribute::new(format!("{binding}.{}", a.name), a.ty));
            }
        }
        Schema::new(attrs)
    }

    pub(crate) fn bind(&self, p: &PlanCompare) -> Result<BoundCompare> {
        let bind_op = |o: &PlanOperand| -> Result<BoundOperand> {
            Ok(match o {
                PlanOperand::Col(c) => BoundOperand::Col(self.resolve(c)?),
                PlanOperand::Const(v) => BoundOperand::Const(v.clone()),
            })
        };
        Ok(BoundCompare {
            lhs: bind_op(&p.lhs)?,
            op: p.op,
            rhs: bind_op(&p.rhs)?,
            tolerance: p.tolerance,
        })
    }

    pub(crate) fn bind_all(&self, ps: &[PlanCompare]) -> Result<Vec<BoundCompare>> {
        ps.iter().map(|p| self.bind(p)).collect()
    }

    /// Output schema and indices of a projection.
    pub(crate) fn projection(&self, select: &[PlanCol]) -> Result<(Schema, Vec<usize>)> {
        let mut attrs = Vec::new();
        let mut idx = Vec::new();
        for c in select {
            let i = self.resolve(c)?;
            let (_, schema) =
                self.parts.iter().find(|(b, _)| b == &c.binding).expect("resolve succeeded");
            let a = schema.attr(c.attr);
            attrs.push(Attribute::new(a.name.clone(), a.ty));
            idx.push(i);
        }
        Ok((Schema::new(attrs), idx))
    }
}

impl Executor {
    /// Creates an executor over the given disk.
    pub fn new(disk: &SimDisk, config: ExecConfig) -> Executor {
        Executor {
            disk: disk.clone(),
            config,
            metrics: QueryMetrics::default(),
            temp_counter: 0,
            statistics: None,
        }
    }

    /// Attaches a column-statistics registry (histogram-based selectivity
    /// estimates for the join-order optimizer).
    pub fn with_statistics(
        mut self,
        stats: std::rc::Rc<crate::stats_histogram::StatsRegistry>,
    ) -> Executor {
        self.statistics = Some(stats);
        self
    }

    /// The simulated disk this executor charges its I/O to.
    pub(crate) fn disk(&self) -> &SimDisk {
        &self.disk
    }

    /// The configuration in effect.
    pub(crate) fn config(&self) -> ExecConfig {
        self.config
    }

    /// The per-operator metrics registry of the current/last run.
    pub fn metrics(&self) -> &QueryMetrics {
        &self.metrics
    }

    /// Takes ownership of the registry, leaving an empty one behind.
    pub fn take_metrics(&mut self) -> QueryMetrics {
        std::mem::take(&mut self.metrics)
    }

    /// The legacy counter summary, derived from the registry: pair counts and
    /// the window maximum aggregate over every operator; sort comparisons,
    /// runs, I/O, and CPU over the sort operators.
    pub fn stats(&self) -> ExecStats {
        let mut s = ExecStats::default();
        for n in self.metrics.ops() {
            s.pairs_examined += n.metrics.pairs_examined;
            s.max_window = s.max_window.max(n.metrics.max_window);
            if n.kind == OpKind::Sort {
                s.sort_comparisons += n.metrics.sort_comparisons;
                s.sort_runs += n.metrics.sort_runs;
                s.sort_reads += n.metrics.page_reads;
                s.sort_writes += n.metrics.page_writes;
                s.sort_cpu += n.wall;
            }
        }
        s
    }

    /// Clears the registry for a fresh run.
    pub(crate) fn metrics_reset(&mut self) {
        self.metrics.reset();
    }

    /// Opens an operator node; close it with [`Executor::end_op`].
    pub(crate) fn begin_op(&mut self, kind: OpKind, label: String) -> OpGuard {
        OpGuard { id: self.metrics.begin(kind, label), io0: self.disk.io(), t0: Instant::now() }
    }

    /// Folds locally accumulated counters into an open operator node.
    pub(crate) fn absorb_op(&mut self, g: &OpGuard, m: &OperatorMetrics) {
        self.metrics.op_mut(g.id).absorb(m);
    }

    /// Closes an operator node, charging its wall time and I/O delta.
    pub(crate) fn end_op(&mut self, g: OpGuard) {
        let io = self.disk.io().since(&g.io0);
        self.metrics.finish(g.id, g.t0.elapsed(), io);
    }

    /// A buffer pool sized for a join-phase scan.
    pub(crate) fn pool_for_join(&self) -> BufferPool {
        self.pool(self.config.buffer_pages)
    }

    /// A fresh temp table with the same schema/padding as `like`.
    pub(crate) fn make_temp(&mut self, tag: &str, like: &StoredTable) -> StoredTable {
        let name = self.temp_name(tag);
        StoredTable::create_padded(&self.disk, name, like.schema().clone(), like.min_record_bytes())
    }

    fn pool(&self, frames: usize) -> BufferPool {
        BufferPool::new(&self.disk, frames.max(1))
    }

    fn temp_name(&mut self, tag: &str) -> String {
        self.temp_counter += 1;
        format!("__tmp_{tag}_{}", self.temp_counter)
    }

    /// Runs an unnested plan, resetting the metrics registry.
    ///
    /// In debug builds the plan is statically verified first (see
    /// [`crate::verify`]): a violation means a transformer or optimizer bug,
    /// and refusing to run beats silently corrupting degrees.
    pub fn run(&mut self, plan: &UnnestPlan) -> Result<Relation> {
        self.metrics_reset();
        #[cfg(debug_assertions)]
        {
            let report = crate::verify::verify_plan(plan, &self.config, self.statistics.as_deref());
            if let Some(v) = report.violations.first() {
                return Err(EngineError::Verify(format!(
                    "{v} ({} violation(s) in plan {})",
                    report.violations.len(),
                    report.plan_label
                )));
            }
        }
        match plan {
            UnnestPlan::Flat(p) => self.run_flat(p),
            UnnestPlan::Anti(p) => self.run_anti(p),
            UnnestPlan::Agg(p) => self.run_agg(p),
        }
    }

    // -----------------------------------------------------------------------
    // Building blocks
    // -----------------------------------------------------------------------

    /// Applies a table's local predicates (p_i), materializing positive
    /// survivors. `min_degree` additionally prunes tuples that can never
    /// survive a pushed-down `WITH` threshold (their degree already falls
    /// below it, and fuzzy AND cannot recover). With no predicates and no
    /// threshold the input passes through untouched.
    pub(crate) fn filter_scan(&mut self, t: &PlanTable, min_degree: Degree) -> Result<StoredTable> {
        let g = self.begin_op(OpKind::Scan, format!("scan {}", t.binding));
        if t.local_preds.is_empty() && !min_degree.is_positive() {
            let m = self.metrics.op_mut(g.id);
            m.tuples_in = t.table.num_tuples();
            m.tuples_out = t.table.num_tuples();
            self.end_op(g);
            return Ok(t.table.clone());
        }
        let layout = Layout::of_table(t);
        let preds = layout.bind_all(&t.local_preds)?;
        let pool = self.pool(2);
        let name = self.temp_name("filter");
        let out = StoredTable::create_padded(
            &self.disk,
            name,
            t.table.schema().clone(),
            t.table.min_record_bytes(),
        );
        let mut w = out.file().bulk_writer();
        let mut m = OperatorMetrics::default();
        for tuple in t.table.scan(&pool) {
            let mut tuple = tuple?;
            m.tuples_in += 1;
            let mut d = tuple.degree;
            for p in &preds {
                m.fuzzy_comparisons += 1;
                d = d.and(p.eval(&tuple.values));
                if !d.is_positive() {
                    break;
                }
            }
            if d.is_positive() && d.meets(min_degree, false) {
                tuple.degree = d;
                m.tuples_out += 1;
                w.append(&tuple.encode(out.min_record_bytes()))?;
            } else if d.is_positive() {
                m.pairs_pruned += 1;
            }
        }
        w.finish()?;
        m.add_pool(&pool.stats());
        self.absorb_op(&g, &m);
        self.end_op(g);
        Ok(out)
    }

    /// Sorts a table by the interval order `⪯` of the α-cut intervals on
    /// attribute `attr` (α = 0 is the paper's support order), attributing
    /// its CPU time and I/O to a dedicated sort operator node.
    fn sort_table(
        &mut self,
        table: &StoredTable,
        attr: usize,
        alpha: Degree,
    ) -> Result<StoredTable> {
        let g = self.begin_op(OpKind::Sort, format!("sort {} by #{attr}", table.name()));
        let (file, stats) = external_sort_parallel(
            &self.disk,
            table.file(),
            self.config.sort_pages,
            self.config.threads,
            move |a, b| {
                let va = Tuple::decode_value_at(a, attr).expect("sortable record");
                let vb = Tuple::decode_value_at(b, attr).expect("sortable record");
                interval_order::cmp_values_at(&va, &vb, alpha)
            },
        )?;
        let m = self.metrics.op_mut(g.id);
        m.tuples_in = table.num_tuples();
        m.tuples_out = table.num_tuples();
        m.sort_runs = stats.initial_runs as u64;
        m.sort_comparisons = stats.comparisons;
        self.end_op(g);
        Ok(table.with_file(self.temp_name("sorted"), file))
    }

    /// Streams the sorted outer relation against the sorted inner one,
    /// invoking `visit(r, Rng(r), m)` once per outer tuple (with an empty
    /// slice when `Rng(r) = ∅`); `m` is the operator's counter set. The
    /// window may include dangling tuples whose join degree against `r` is
    /// 0 — Section 3's caveat; callers skip them via the predicate degree.
    #[allow(clippy::too_many_arguments)]
    fn merge_window<F>(
        &mut self,
        outer: &StoredTable,
        oattr: usize,
        inner: &StoredTable,
        iattr: usize,
        alpha: Degree,
        kind: OpKind,
        label: String,
        mut visit: F,
    ) -> Result<()>
    where
        F: FnMut(&Tuple, &[Tuple], &mut OperatorMetrics) -> Result<()>,
    {
        let g = self.begin_op(kind, label);
        // One frame for the outer scan; the rest serve the window's pages.
        let opool = self.pool(1);
        let ipool = self.pool(self.config.buffer_pages.saturating_sub(1).max(1));
        let mut inner_scan = inner.scan(&ipool).peekable();
        let mut window: VecDeque<Tuple> = VecDeque::new();
        let mut m = OperatorMetrics::default();
        for r in outer.scan(&opool) {
            let r = r?;
            m.tuples_in += 1;
            let rv = &r.values[oattr];
            // Drop inner tuples wholly before rv: they precede every later
            // outer range as well (outer is sorted by left endpoints).
            while let Some(front) = window.front() {
                if interval_order::strictly_before_at(&front.values[iattr], rv, alpha) {
                    window.pop_front();
                } else {
                    break;
                }
            }
            // Extend the window to cover Rng(r).
            loop {
                let after = match inner_scan.peek() {
                    None => break,
                    Some(Err(_)) => true, // force the error out below
                    Some(Ok(s)) => interval_order::strictly_after_at(&s.values[iattr], rv, alpha),
                };
                if after {
                    if let Some(Err(_)) = inner_scan.peek() {
                        inner_scan.next().expect("peeked")?;
                    }
                    break; // first tuple past Rng(r); keep it for later outers
                }
                let s = inner_scan.next().expect("peeked")?;
                m.tuples_in += 1;
                if !interval_order::strictly_before_at(&s.values[iattr], rv, alpha) {
                    window.push_back(s);
                }
                // else: wholly before every remaining outer tuple; drop.
            }
            window.make_contiguous();
            let (slice, _) = window.as_slices();
            m.pairs_examined += slice.len() as u64;
            m.max_window = m.max_window.max(slice.len() as u64);
            visit(&r, slice, &mut m)?;
        }
        m.add_pool(&opool.stats());
        m.add_pool(&ipool.stats());
        self.absorb_op(&g, &m);
        self.end_op(g);
        Ok(())
    }

    /// Interval-partitioned parallel flat merge-join (the `threads > 1` path
    /// of [`JoinMethod::Merge`]).
    ///
    /// Phase 1 replays the *serial* `merge_window` scan — same pools, same
    /// window maintenance, same `pairs_examined` / `max_window` accounting —
    /// but records, per outer tuple, the indices of its `Rng(r)` window
    /// instead of evaluating degrees on the spot. Because the inner scan
    /// stops at exactly the tuple the serial scan would stop at, physical
    /// read counts are identical to the serial join.
    ///
    /// Phase 2 partitions the outer (already sorted by `⪯`) into `threads`
    /// contiguous chunks balanced by their window pair counts. Each chunk's
    /// recorded windows cover the full `Rng(r)` of its outers — a window can
    /// span chunk boundaries, so workers read overlapping slices of the
    /// inner; no pair is lost at a cut. Workers evaluate the pure
    /// `pair_eval` for their pairs in outer order and accumulate comparison
    /// and prune counts per chunk; chunk sums are order-independent, so the
    /// operator's counters equal the serial ones exactly.
    ///
    /// Phase 3 concatenates the per-chunk emissions in chunk order on the
    /// calling thread, so the sink observes exactly the serial emission
    /// sequence (same rows, same degrees, same temp-table bytes).
    ///
    /// The tradeoff is memory: the scanned prefix of both relations and the
    /// window index lists are held in memory for the duration of the join,
    /// where the serial path holds only the current window.
    #[allow(clippy::too_many_arguments)]
    fn merge_join_parallel<D>(
        &mut self,
        outer: &StoredTable,
        oattr: usize,
        inner: &StoredTable,
        iattr: usize,
        alpha: Degree,
        kind: OpKind,
        label: String,
        pair_eval: &D,
        sink: &mut JoinSink<'_>,
    ) -> Result<()>
    where
        D: Fn(&Tuple, &Tuple) -> PairOutcome + Sync,
    {
        let g = self.begin_op(kind, label);
        // Phase 1: serial I/O and window replay (identical to merge_window).
        let opool = self.pool(1);
        let ipool = self.pool(self.config.buffer_pages.saturating_sub(1).max(1));
        let mut inner_scan = inner.scan(&ipool).peekable();
        let mut inner_vec: Vec<Tuple> = Vec::new();
        let mut outer_vec: Vec<Tuple> = Vec::new();
        let mut windows: Vec<Vec<u32>> = Vec::new();
        let mut window: VecDeque<u32> = VecDeque::new();
        let mut m = OperatorMetrics::default();
        for r in outer.scan(&opool) {
            let r = r?;
            m.tuples_in += 1;
            let rv = &r.values[oattr];
            while let Some(&front) = window.front() {
                if interval_order::strictly_before_at(
                    &inner_vec[front as usize].values[iattr],
                    rv,
                    alpha,
                ) {
                    window.pop_front();
                } else {
                    break;
                }
            }
            loop {
                let after = match inner_scan.peek() {
                    None => break,
                    Some(Err(_)) => true, // force the error out below
                    Some(Ok(s)) => interval_order::strictly_after_at(&s.values[iattr], rv, alpha),
                };
                if after {
                    if let Some(Err(_)) = inner_scan.peek() {
                        inner_scan.next().expect("peeked")?;
                    }
                    break; // first tuple past Rng(r); keep it for later outers
                }
                let s = inner_scan.next().expect("peeked")?;
                m.tuples_in += 1;
                let keep = !interval_order::strictly_before_at(&s.values[iattr], rv, alpha);
                let idx = u32::try_from(inner_vec.len())
                    .map_err(|_| EngineError::Unsupported("inner relation too large".into()))?;
                inner_vec.push(s);
                if keep {
                    window.push_back(idx);
                }
            }
            m.pairs_examined += window.len() as u64;
            m.max_window = m.max_window.max(window.len() as u64);
            windows.push(window.iter().copied().collect());
            outer_vec.push(r);
        }

        // Phase 2: contiguous outer chunks balanced by window pair counts.
        let threads = self.config.threads.min(outer_vec.len()).max(1);
        let total_pairs: u64 = windows.iter().map(|w| w.len() as u64).sum();
        let per_chunk = (total_pairs / threads as u64).max(1);
        let mut chunks: Vec<std::ops::Range<usize>> = Vec::new();
        let mut start = 0usize;
        let mut acc = 0u64;
        for (i, w) in windows.iter().enumerate() {
            acc += w.len() as u64;
            if acc >= per_chunk && chunks.len() + 1 < threads {
                chunks.push(start..i + 1);
                start = i + 1;
                acc = 0;
            }
        }
        chunks.push(start..outer_vec.len());

        type ChunkResult = (Vec<(u32, u32, Degree)>, u64, u64);
        let emissions: Vec<ChunkResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|range| {
                    let range = range.clone();
                    let outer_vec = &outer_vec;
                    let inner_vec = &inner_vec;
                    let windows = &windows;
                    scope.spawn(move || {
                        let mut out: Vec<(u32, u32, Degree)> = Vec::new();
                        let (mut comparisons, mut pruned) = (0u64, 0u64);
                        for i in range {
                            let r = &outer_vec[i];
                            for &j in &windows[i] {
                                let o = pair_eval(r, &inner_vec[j as usize]);
                                comparisons += u64::from(o.comparisons);
                                pruned += u64::from(o.pruned);
                                if let Some(d) = o.degree {
                                    out.push((i as u32, j, d));
                                }
                            }
                        }
                        (out, comparisons, pruned)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("join worker panicked")).collect()
        });

        // Phase 3: serial, order-preserving emission.
        for (chunk, comparisons, pruned) in emissions {
            m.fuzzy_comparisons += comparisons;
            m.pairs_pruned += pruned;
            for (i, j, d) in chunk {
                m.tuples_out += 1;
                sink.emit(&outer_vec[i as usize], &inner_vec[j as usize], d)?;
            }
        }
        m.add_pool(&opool.stats());
        m.add_pool(&ipool.stats());
        self.absorb_op(&g, &m);
        self.end_op(g);
        Ok(())
    }

    /// Block nested loop with per-outer-tuple accumulators: the outer is read
    /// once in blocks of `M − 1` pages; the inner is scanned once per block
    /// through a single reserved frame (the paper's Section 9 buffer
    /// allocation for the nested-loop method). `init` seeds an accumulator
    /// per outer tuple, `observe` is invoked per (outer, inner) pair, and
    /// `finalize` fires once per outer tuple after its block's inner scan —
    /// which is what lets this one operator evaluate *nested* queries (the
    /// per-tuple temporary relation T(r) accumulates in `A`). Each closure
    /// receives the operator's counter set.
    pub(crate) fn block_nested_loop<A>(
        &mut self,
        outer: &StoredTable,
        inner: &StoredTable,
        label: String,
        mut init: impl FnMut(&Tuple, &mut OperatorMetrics) -> A,
        mut observe: impl FnMut(&mut A, &Tuple, &Tuple, &mut OperatorMetrics) -> Result<()>,
        mut finalize: impl FnMut(Tuple, A, &mut OperatorMetrics) -> Result<()>,
    ) -> Result<()> {
        let g = self.begin_op(OpKind::Join, label);
        let block_pages = self.config.buffer_pages.saturating_sub(1).max(1) as u64;
        let n_pages = outer.num_pages();
        let mut m = OperatorMetrics::default();
        let mut block_start = 0u64;
        while block_start < n_pages {
            let block_end = (block_start + block_pages).min(n_pages);
            // Read the outer block (each page charged exactly once overall).
            let mut block: Vec<(Tuple, A)> = Vec::new();
            for pi in block_start..block_end {
                let pid = outer.file().page_id(pi as u32)?;
                let page = fuzzy_storage::Page::from_bytes(self.disk.read_page(pid)?)?;
                for rec in page.records() {
                    let t = Tuple::decode(rec)?;
                    m.tuples_in += 1;
                    let a = init(&t, &mut m);
                    block.push((t, a));
                }
            }
            // One scan of the inner per block, through one frame.
            let ipool = self.pool(1);
            for s in inner.scan(&ipool) {
                let s = s?;
                m.tuples_in += 1;
                for (r, a) in &mut block {
                    m.pairs_examined += 1;
                    observe(a, r, &s, &mut m)?;
                }
            }
            m.add_pool(&ipool.stats());
            for (r, a) in block {
                finalize(r, a, &mut m)?;
            }
            block_start = block_end;
        }
        self.absorb_op(&g, &m);
        self.end_op(g);
        Ok(())
    }

    /// Final answer assembly as a registered operator: fuzzy-OR dedup plus
    /// the `WITH` threshold. `tuples_in` is the emitted row count,
    /// `tuples_out` the answer cardinality.
    pub(crate) fn finish_op(
        &mut self,
        schema: Schema,
        rows: Vec<(Vec<Value>, Degree)>,
        threshold: Option<Threshold>,
    ) -> Relation {
        let g = self.begin_op(OpKind::Output, "output".to_string());
        let emitted = rows.len() as u64;
        let rel = finish(schema, rows, threshold);
        let m = self.metrics.op_mut(g.id);
        m.tuples_in = emitted;
        m.tuples_out = rel.len() as u64;
        self.end_op(g);
        rel
    }

    // -----------------------------------------------------------------------
    // Flat plans (N', J', SOME, chains, flat user queries)
    // -----------------------------------------------------------------------

    fn run_flat(&mut self, plan: &FlatPlan) -> Result<Relation> {
        if plan.tables.is_empty() {
            return Err(EngineError::Unsupported("empty FROM".into()));
        }
        if self.config.reorder_joins && plan.tables.len() > 2 {
            let mut reordered = plan.clone();
            if crate::optimizer::reorder_joins_with(&mut reordered, self.statistics.as_deref()) {
                return self.run_flat_ordered(&reordered);
            }
        }
        self.run_flat_ordered(plan)
    }

    fn run_flat_ordered(&mut self, plan: &FlatPlan) -> Result<Relation> {
        // Threshold push-down (sound for flat plans only; the shared
        // derivation keeps the executor and the static verifier in lockstep).
        let alpha = flat_pushdown_alpha(&self.config, plan.threshold);
        let mut filtered: Vec<StoredTable> = Vec::with_capacity(plan.tables.len());
        for t in &plan.tables {
            filtered.push(self.filter_scan(t, alpha)?);
        }

        let mut layout = Layout::of_table(&plan.tables[0]);
        let mut current = filtered[0].clone();
        let mut remaining: Vec<PlanCompare> = plan.join_preds.clone();
        let mut rows: Vec<(Vec<Value>, Degree)> = Vec::new();

        // Pre-compute the projection on the FINAL layout: the last join step
        // streams directly into the answer instead of materializing — the
        // paper's merge-join inserts r.X into the answer as pairs are joined
        // (Section 4), so the join result itself never hits the disk.
        let mut final_layout = layout.clone();
        for t in plan.tables.iter().skip(1) {
            final_layout.push(t);
        }
        let (out_schema, select_idx) = final_layout.projection(&plan.select)?;

        if plan.tables.len() == 1 {
            // Single table: stream the filtered scan straight into the
            // projection.
            let bound = layout.bind_all(&remaining)?;
            let g = self.begin_op(OpKind::Scan, format!("select {}", plan.tables[0].binding));
            let pool = self.pool(2);
            let mut m = OperatorMetrics::default();
            for t in current.scan(&pool) {
                let t = t?;
                m.tuples_in += 1;
                let mut d = t.degree;
                for b in &bound {
                    m.fuzzy_comparisons += 1;
                    d = d.and(b.eval(&t.values));
                }
                if d.is_positive() {
                    m.tuples_out += 1;
                    rows.push((project(&t, &select_idx), d));
                }
            }
            m.add_pool(&pool.stats());
            self.absorb_op(&g, &m);
            self.end_op(g);
            return Ok(self.finish_op(out_schema, rows, plan.threshold));
        }

        for (i, t) in plan.tables.iter().enumerate().skip(1) {
            let last = i == plan.tables.len() - 1;
            let mut next_layout = layout.clone();
            next_layout.push(t);
            // Predicates that become evaluable once t is joined; on the last
            // step every remaining predicate must be applied.
            let (evaluable, kept): (Vec<PlanCompare>, Vec<PlanCompare>) =
                remaining.into_iter().partition(|p| {
                    last || p.bindings().iter().all(|b| layout.contains(b) || *b == t.binding)
                });
            remaining = kept;
            // Pick an exact equality between the bound set and t as merge
            // driver. Similarity predicates (op Eq with a tolerance) must
            // not drive: their widened matches are not bounded by support
            // intersection, so the merge window would miss pairs — they stay
            // residuals, evaluated with their tolerance.
            let driver_pos = evaluable.iter().position(|p| {
                p.op == CmpOp::Eq
                    && p.tolerance.is_none()
                    && matches!((p.lhs.as_col(), p.rhs.as_col()), (Some(l), Some(r))
                        if (layout.contains(&l.binding) && r.binding == t.binding)
                            || (layout.contains(&r.binding) && l.binding == t.binding))
            });

            // Intermediate steps materialize to a temp table; the final step
            // streams into the answer rows.
            let mut sink = if last {
                JoinSink::Stream { select_idx: &select_idx, rows: &mut rows }
            } else {
                let name = self.temp_name("join");
                let out = StoredTable::create(&self.disk, name, next_layout.to_schema());
                let w = out.file().bulk_writer();
                JoinSink::Materialize { out, w }
            };

            match driver_pos {
                Some(pos) => {
                    let p = &evaluable[pos];
                    let (lc, rc) =
                        (p.lhs.as_col().expect("driver"), p.rhs.as_col().expect("driver"));
                    let (cur_col, next_col) =
                        if layout.contains(&lc.binding) { (lc, rc) } else { (rc, lc) };
                    let cur_idx = layout.resolve(cur_col)?;
                    let next_idx = next_col.attr;
                    let residuals: Vec<BoundCompare> = evaluable
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| *j != pos)
                        .map(|(_, p)| next_layout.bind(p))
                        .collect::<Result<_>>()?;
                    // The outcome a joined pair contributes. Pure (no captured
                    // mutable state), so the parallel join may evaluate it
                    // from worker threads; both paths count its comparisons
                    // and prunes identically. Pairs whose degree already falls
                    // below a pushed-down `WITH D > z` threshold are pruned
                    // here — fuzzy AND cannot recover them, and dropping them
                    // now keeps them out of materialized intermediates and the
                    // external sorts of later join steps.
                    let pair_eval = |r: &Tuple, s: &Tuple| -> PairOutcome {
                        let mut comparisons = 1u32;
                        let d_join = r.values[cur_idx].compare(CmpOp::Eq, &s.values[next_idx]);
                        let mut d = r.degree.and(s.degree).and(d_join);
                        if !d.is_positive() {
                            return PairOutcome { degree: None, comparisons, pruned: false };
                        }
                        for b in &residuals {
                            comparisons += 1;
                            d = d.and(b.eval_pair(&r.values, &s.values));
                            if !d.is_positive() {
                                return PairOutcome { degree: None, comparisons, pruned: false };
                            }
                        }
                        if !d.meets(alpha, false) {
                            return PairOutcome { degree: None, comparisons, pruned: true };
                        }
                        PairOutcome { degree: Some(d), comparisons, pruned: false }
                    };
                    let handle = |sink: &mut JoinSink<'_>,
                                  r: &Tuple,
                                  s: &Tuple,
                                  m: &mut OperatorMetrics|
                     -> Result<()> {
                        let o = pair_eval(r, s);
                        m.fuzzy_comparisons += u64::from(o.comparisons);
                        m.pairs_pruned += u64::from(o.pruned);
                        match o.degree {
                            Some(d) => {
                                m.tuples_out += 1;
                                sink.emit(r, s, d)
                            }
                            None => Ok(()),
                        }
                    };
                    match self.config.join_method {
                        JoinMethod::Merge => {
                            let label = format!("merge-join +{}", t.binding);
                            let sorted_cur = self.sort_table(&current, cur_idx, alpha)?;
                            let sorted_next = self.sort_table(&filtered[i], next_idx, alpha)?;
                            if self.config.threads > 1 {
                                self.merge_join_parallel(
                                    &sorted_cur,
                                    cur_idx,
                                    &sorted_next,
                                    next_idx,
                                    alpha,
                                    OpKind::Join,
                                    label,
                                    &pair_eval,
                                    &mut sink,
                                )?;
                            } else {
                                self.merge_window(
                                    &sorted_cur,
                                    cur_idx,
                                    &sorted_next,
                                    next_idx,
                                    alpha,
                                    OpKind::Join,
                                    label,
                                    |r, rng, m| {
                                        for s in rng {
                                            handle(&mut sink, r, s, m)?;
                                        }
                                        Ok(())
                                    },
                                )?;
                            }
                        }
                        JoinMethod::Partitioned => {
                            let cur = current.clone();
                            let next = filtered[i].clone();
                            self.partitioned_join(
                                &cur,
                                cur_idx,
                                &next,
                                next_idx,
                                alpha,
                                format!("partitioned-join +{}", t.binding),
                                |r, s, m| handle(&mut sink, r, s, m),
                            )?;
                        }
                    }
                }
                None => {
                    // No equality driver: block-nested-loop fallback.
                    let residuals: Vec<BoundCompare> =
                        evaluable.iter().map(|p| next_layout.bind(p)).collect::<Result<_>>()?;
                    let inner = filtered[i].clone();
                    self.block_nested_loop(
                        &current,
                        &inner,
                        format!("nested-loop +{}", t.binding),
                        |_, _| (),
                        |_, r, s, m| {
                            let mut d = r.degree.and(s.degree);
                            if !d.is_positive() {
                                return Ok(());
                            }
                            for b in &residuals {
                                m.fuzzy_comparisons += 1;
                                d = d.and(b.eval_pair(&r.values, &s.values));
                                if !d.is_positive() {
                                    return Ok(());
                                }
                            }
                            if d.meets(alpha, false) {
                                m.tuples_out += 1;
                                sink.emit(r, s, d)?;
                            } else {
                                m.pairs_pruned += 1;
                            }
                            Ok(())
                        },
                        |_, _, _| Ok(()),
                    )?;
                }
            }
            if let Some(out) = sink.into_table()? {
                layout = next_layout;
                current = out;
            }
        }
        Ok(self.finish_op(out_schema, rows, plan.threshold))
    }

    // -----------------------------------------------------------------------
    // Anti plans (JX', NX', JALL', ALL')
    // -----------------------------------------------------------------------

    fn run_anti(&mut self, plan: &AntiPlan) -> Result<Relation> {
        let outer_f = self.filter_scan(&plan.outer, Degree::ZERO)?;
        let inner_f = self.filter_scan(&plan.inner, Degree::ZERO)?;
        let mut pair_layout = Layout::of_table(&plan.outer);
        pair_layout.push(&plan.inner);
        let pair = pair_layout.bind_all(&plan.pair_preds)?;
        let kind_extra: Option<BoundCompare> = match &plan.kind {
            AntiKind::Exclusion => None,
            AntiKind::All { op, lhs, rhs } => Some(pair_layout.bind(&PlanCompare {
                lhs: lhs.clone(),
                op: *op,
                rhs: rhs.clone(),
                tolerance: None,
            })?),
        };
        // The negated contribution of one inner tuple to the MIN(D) group of
        // one outer tuple: 1 − min(μ_S∧p₂, d(pair preds) [, 1 − d(Y op Z)]).
        let contribution = |r: &Tuple, s: &Tuple, m: &mut OperatorMetrics| -> Degree {
            let mut inner_d = s.degree;
            for p in &pair {
                m.fuzzy_comparisons += 1;
                inner_d = inner_d.and(p.eval_pair(&r.values, &s.values));
                if !inner_d.is_positive() {
                    return Degree::ONE; // neutral
                }
            }
            if let Some(b) = &kind_extra {
                m.fuzzy_comparisons += 1;
                inner_d = inner_d.and(b.eval_pair(&r.values, &s.values).not());
            }
            inner_d.not()
        };

        let outer_layout = Layout::of_table(&plan.outer);
        let (out_schema, select_idx) = outer_layout.projection(&plan.select)?;
        let mut rows: Vec<(Vec<Value>, Degree)> = Vec::new();

        match &plan.window {
            Some((ocol, icol)) => {
                let sorted_o = self.sort_table(&outer_f, ocol.attr, Degree::ZERO)?;
                let sorted_i = self.sort_table(&inner_f, icol.attr, Degree::ZERO)?;
                // Inner tuples outside Rng(r) have window-predicate degree 0,
                // so they contribute the neutral 1: scanning only the window
                // is exact (this is what makes JX'/JALL' merge-joinable).
                // No threshold push-down here: low-degree pairs still lower
                // the MIN(D) group degree.
                self.merge_window(
                    &sorted_o,
                    ocol.attr,
                    &sorted_i,
                    icol.attr,
                    Degree::ZERO,
                    OpKind::Anti,
                    format!("anti-merge {} x {}", plan.outer.binding, plan.inner.binding),
                    |r, rng, m| {
                        let mut acc = r.degree;
                        for s in rng {
                            acc = acc.and(contribution(r, s, m));
                            if !acc.is_positive() {
                                break;
                            }
                        }
                        if acc.is_positive() {
                            m.tuples_out += 1;
                            rows.push((project(r, &select_idx), acc));
                        }
                        Ok(())
                    },
                )?;
            }
            None => {
                // Scan fallback (uncorrelated NOT IN / ALL): the inner set is
                // built once — the unnesting benefit — then the outer streams
                // against it.
                let g = self.begin_op(
                    OpKind::Anti,
                    format!("anti-scan {} x {}", plan.outer.binding, plan.inner.binding),
                );
                let pool = self.pool(self.config.buffer_pages);
                let inner_all: Vec<Tuple> =
                    inner_f.scan(&pool).collect::<fuzzy_storage::Result<_>>()?;
                let opool = self.pool(1);
                let mut m = OperatorMetrics::default();
                m.tuples_in += inner_all.len() as u64;
                for r in outer_f.scan(&opool) {
                    let r = r?;
                    m.tuples_in += 1;
                    let mut acc = r.degree;
                    for s in &inner_all {
                        m.pairs_examined += 1;
                        acc = acc.and(contribution(&r, s, &mut m));
                        if !acc.is_positive() {
                            break;
                        }
                    }
                    if acc.is_positive() {
                        m.tuples_out += 1;
                        rows.push((project(&r, &select_idx), acc));
                    }
                }
                m.add_pool(&pool.stats());
                m.add_pool(&opool.stats());
                self.absorb_op(&g, &m);
                self.end_op(g);
            }
        }
        Ok(self.finish_op(out_schema, rows, plan.threshold))
    }

    // -----------------------------------------------------------------------
    // Aggregate plans (JA' / COUNT' / type A)
    // -----------------------------------------------------------------------

    fn run_agg(&mut self, plan: &AggPlan) -> Result<Relation> {
        let outer_f = self.filter_scan(&plan.outer, Degree::ZERO)?;
        let inner_f = self.filter_scan(&plan.inner, Degree::ZERO)?;
        let outer_layout = Layout::of_table(&plan.outer);
        let (out_schema, select_idx) = outer_layout.projection(&plan.select)?;
        let (agg, agg_col) = (plan.agg.0, &plan.agg.1);
        let inner_layout = Layout::of_table(&plan.inner);
        let agg_idx = inner_layout.resolve(agg_col)?;
        let lhs_bound = outer_layout.bind(&PlanCompare {
            lhs: plan.compare.0.clone(),
            op: plan.compare.1,
            rhs: PlanOperand::Const(Value::Null), // placeholder; rhs injected per group
            tolerance: None,
        })?;
        let op1 = plan.compare.1;
        let mut rows: Vec<(Vec<Value>, Degree)> = Vec::new();

        // Applies R.Y op1 A to one outer tuple, honouring the COUNT
        // outer-join IF-THEN-ELSE for empty groups.
        let emit_outer = |r: &Tuple,
                          group: Option<&(Value, Degree)>,
                          rows: &mut Vec<(Vec<Value>, Degree)>,
                          m: &mut OperatorMetrics| {
            let lhs_val = match &lhs_bound.lhs {
                BoundOperand::Col(i) => r.values[*i].clone(),
                BoundOperand::Const(v) => v.clone(),
            };
            let d = match group {
                Some((a, da)) => {
                    m.fuzzy_comparisons += 1;
                    r.degree.and(*da).and(lhs_val.compare(op1, a))
                }
                None => {
                    if agg == AggFunc::Count {
                        // COUNT': [R.Y op1 T2.A : R.Y op1 0] — the ELSE branch.
                        m.fuzzy_comparisons += 1;
                        r.degree.and(lhs_val.compare(op1, &Value::number(0.0)))
                    } else {
                        Degree::ZERO // NULL aggregate satisfies nothing
                    }
                }
            };
            if d.is_positive() {
                m.tuples_out += 1;
                rows.push((project(r, &select_idx), d));
            }
        };

        match &plan.corr {
            None => {
                // Type A: the inner block is a constant; compute it once.
                let g = self.begin_op(
                    OpKind::Aggregate,
                    format!("agg-const {} x {}", plan.outer.binding, plan.inner.binding),
                );
                let pool = self.pool(self.config.buffer_pages);
                let mut set: GroupSet = GroupSet::default();
                let mut m = OperatorMetrics::default();
                for s in inner_f.scan(&pool) {
                    let s = s?;
                    m.tuples_in += 1;
                    m.pairs_examined += 1;
                    set.add(s.values[agg_idx].clone(), s.degree);
                }
                let group = set.aggregate(agg, plan.agg_degree)?;
                let opool = self.pool(1);
                for r in outer_f.scan(&opool) {
                    let r = r?;
                    m.tuples_in += 1;
                    emit_outer(&r, group.as_ref(), &mut rows, &mut m);
                }
                m.add_pool(&pool.stats());
                m.add_pool(&opool.stats());
                self.absorb_op(&g, &m);
                self.end_op(g);
            }
            Some((ucol, op2, vcol)) => {
                let sorted_o = self.sort_table(&outer_f, ucol.attr, Degree::ZERO)?;
                if *op2 == CmpOp::Eq {
                    // Pipelined merge grouping (Section 6): outer sorted on U,
                    // inner sorted on V; identical U values are adjacent, so
                    // each distinct u computes T'(u) from its window once.
                    let sorted_i = self.sort_table(&inner_f, vcol.attr, Degree::ZERO)?;
                    let mut cache: Option<(Value, Option<(Value, Degree)>)> = None;
                    let uattr = ucol.attr;
                    let vattr = vcol.attr;
                    let agg_degree = plan.agg_degree;
                    let mut agg_err: Option<EngineError> = None;
                    let merge_res = self.merge_window(
                        &sorted_o,
                        uattr,
                        &sorted_i,
                        vattr,
                        Degree::ZERO,
                        OpKind::Aggregate,
                        format!("agg-merge {} x {}", plan.outer.binding, plan.inner.binding),
                        |r, rng, m| {
                            let u = &r.values[uattr];
                            let hit = matches!(&cache, Some((cu, _)) if cu == u);
                            if !hit {
                                let mut set = GroupSet::default();
                                for s in rng {
                                    // μ_T'(u)(z) = max min(μ_S∧p₂, d(s.V = u));
                                    // op2 = Eq here.
                                    m.fuzzy_comparisons += 1;
                                    let d = s.degree.and(s.values[vattr].compare(CmpOp::Eq, u));
                                    if d.is_positive() {
                                        set.add(s.values[agg_idx].clone(), d);
                                    }
                                }
                                match set.aggregate(agg, agg_degree) {
                                    Ok(g) => cache = Some((u.clone(), g)),
                                    Err(e) => {
                                        agg_err = Some(e.clone());
                                        return Err(e);
                                    }
                                }
                            }
                            let group = cache.as_ref().expect("just set").1.as_ref();
                            emit_outer(r, group, &mut rows, m);
                            Ok(())
                        },
                    );
                    if let Some(e) = agg_err {
                        return Err(e);
                    }
                    merge_res?;
                } else {
                    // Non-equality op2: T'(u) cannot be window-scanned; build
                    // the reduced inner set once and scan it per distinct u.
                    let g = self.begin_op(
                        OpKind::Aggregate,
                        format!("agg-scan {} x {}", plan.outer.binding, plan.inner.binding),
                    );
                    let pool = self.pool(self.config.buffer_pages);
                    let inner_all: Vec<Tuple> =
                        inner_f.scan(&pool).collect::<fuzzy_storage::Result<_>>()?;
                    let opool = self.pool(1);
                    let mut cache: Option<(Value, Option<(Value, Degree)>)> = None;
                    let mut m = OperatorMetrics::default();
                    m.tuples_in += inner_all.len() as u64;
                    for r in sorted_o.scan(&opool) {
                        let r = r?;
                        m.tuples_in += 1;
                        let u = &r.values[ucol.attr];
                        let hit = matches!(&cache, Some((cu, _)) if cu == u);
                        if !hit {
                            let mut set = GroupSet::default();
                            for s in &inner_all {
                                m.pairs_examined += 1;
                                m.fuzzy_comparisons += 1;
                                let d = s.degree.and(s.values[vcol.attr].compare(*op2, u));
                                if d.is_positive() {
                                    set.add(s.values[agg_idx].clone(), d);
                                }
                            }
                            cache = Some((u.clone(), set.aggregate(agg, plan.agg_degree)?));
                        }
                        let group = cache.as_ref().expect("just set").1.as_ref();
                        emit_outer(&r, group, &mut rows, &mut m);
                    }
                    m.add_pool(&pool.stats());
                    m.add_pool(&opool.stats());
                    self.absorb_op(&g, &m);
                    self.end_op(g);
                }
            }
        }
        Ok(self.finish_op(out_schema, rows, plan.threshold))
    }
}

/// Where one join step delivers its output: an intermediate temp table, or —
/// on the final step — the projected answer rows (the paper's pipelined
/// insertion of `r.X` into the answer during the join).
enum JoinSink<'a> {
    Materialize { out: StoredTable, w: fuzzy_storage::file::BulkWriter },
    Stream { select_idx: &'a [usize], rows: &'a mut Vec<(Vec<Value>, Degree)> },
}

impl JoinSink<'_> {
    fn emit(&mut self, r: &Tuple, s: &Tuple, d: Degree) -> Result<()> {
        match self {
            JoinSink::Materialize { w, .. } => {
                let mut values = r.values.clone();
                values.extend_from_slice(&s.values);
                w.append(&Tuple::new(values, d).encode(0))?;
                Ok(())
            }
            JoinSink::Stream { select_idx, rows } => {
                let left_len = r.values.len();
                let values = select_idx
                    .iter()
                    .map(|&i| {
                        if i < left_len {
                            r.values[i].clone()
                        } else {
                            s.values[i - left_len].clone()
                        }
                    })
                    .collect();
                rows.push((values, d));
                Ok(())
            }
        }
    }

    fn into_table(self) -> Result<Option<StoredTable>> {
        match self {
            JoinSink::Materialize { out, w } => {
                w.finish()?;
                Ok(Some(out))
            }
            JoinSink::Stream { .. } => Ok(None),
        }
    }
}

/// The fuzzy set `T(r)` an aggregate is applied to: distinct values with
/// fuzzy-OR (max) degrees.
#[derive(Default)]
pub(crate) struct GroupSet {
    order: Vec<Value>,
    degrees: HashMap<Value, Degree>,
}

impl GroupSet {
    pub(crate) fn add(&mut self, v: Value, d: Degree) {
        if v.is_null() || !d.is_positive() {
            return;
        }
        match self.degrees.get_mut(&v) {
            Some(existing) => *existing = existing.or(d),
            None => {
                self.degrees.insert(v.clone(), d);
                self.order.push(v);
            }
        }
    }

    /// Applies the aggregate; `None` means the NULL result of an empty
    /// non-COUNT group (T2 "contains no tuple for u").
    pub(crate) fn aggregate(
        &self,
        agg: AggFunc,
        agg_degree: crate::plan::AggDegree,
    ) -> Result<Option<(Value, Degree)>> {
        if self.order.is_empty() && agg != AggFunc::Count {
            return Ok(None);
        }
        let refs: Vec<&Value> = self.order.iter().collect();
        let value = apply_aggregate(agg, &refs)?.expect("non-empty or COUNT");
        let member_degrees: Vec<Degree> = self.order.iter().map(|v| self.degrees[v]).collect();
        Ok(Some((value, agg_degree.of_group(&member_degrees))))
    }
}

pub(crate) fn project(t: &Tuple, idx: &[usize]) -> Vec<Value> {
    idx.iter().map(|&i| t.values[i].clone()).collect()
}

/// Dedups rows by fuzzy OR and applies the final threshold.
pub(crate) fn finish(
    schema: Schema,
    rows: Vec<(Vec<Value>, Degree)>,
    threshold: Option<Threshold>,
) -> Relation {
    let rel = Relation::from_dedup_rows(schema, rows);
    match threshold {
        Some(t) => rel.with_threshold(Degree::clamped(t.z), t.strict),
        None => rel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzy_core::Trapezoid;
    use fuzzy_rel::AttrType;

    fn table(disk: &SimDisk, name: &str, xs: &[(f64, f64)]) -> PlanTable {
        // Tuples (ID, X) where X is a rectangle [lo, hi].
        let t = StoredTable::create(
            disk,
            name,
            Schema::new(vec![
                Attribute::new("ID", AttrType::Number),
                Attribute::new("X", AttrType::Number),
            ]),
        );
        t.load(xs.iter().enumerate().map(|(i, (lo, hi))| {
            Tuple::full(vec![
                Value::number(i as f64),
                Value::fuzzy(Trapezoid::rectangular(*lo, *hi).unwrap()),
            ])
        }))
        .unwrap();
        PlanTable { binding: name.to_string(), table: t, local_preds: Vec::new() }
    }

    #[test]
    fn layout_resolution_and_projection() {
        let disk = SimDisk::with_default_page_size();
        let r = table(&disk, "R", &[]);
        let s = table(&disk, "S", &[]);
        let mut layout = Layout::of_table(&r);
        layout.push(&s);
        assert_eq!(layout.resolve(&PlanCol { binding: "R".into(), attr: 1 }).unwrap(), 1);
        assert_eq!(layout.resolve(&PlanCol { binding: "S".into(), attr: 0 }).unwrap(), 2);
        assert!(layout.resolve(&PlanCol { binding: "T".into(), attr: 0 }).is_err());
        assert!(layout.contains("R"));
        assert!(!layout.contains("T"));
        let schema = layout.to_schema();
        assert_eq!(schema.len(), 4);
        assert_eq!(schema.attr(3).name, "S.X");
        let (proj, idx) = layout.projection(&[PlanCol { binding: "S".into(), attr: 1 }]).unwrap();
        assert_eq!(proj.attr(0).name, "X");
        assert_eq!(idx, vec![3]);
    }

    #[test]
    fn bound_compare_eval_pair_spans_both_sides() {
        let disk = SimDisk::with_default_page_size();
        let r = table(&disk, "R", &[]);
        let s = table(&disk, "S", &[]);
        let mut layout = Layout::of_table(&r);
        layout.push(&s);
        let p = layout
            .bind(&PlanCompare::new(
                PlanOperand::Col(PlanCol { binding: "R".into(), attr: 0 }),
                CmpOp::Lt,
                PlanOperand::Col(PlanCol { binding: "S".into(), attr: 0 }),
            ))
            .unwrap();
        let left = vec![Value::number(1.0), Value::number(0.0)];
        let right = vec![Value::number(2.0), Value::number(0.0)];
        assert_eq!(p.eval_pair(&left, &right), Degree::ONE);
        let concat: Vec<Value> = left.iter().chain(right.iter()).cloned().collect();
        assert_eq!(p.eval(&concat), Degree::ONE);
    }

    #[test]
    fn merge_window_covers_exactly_rng() {
        // Outer values: [0,1], [10,11], [20,21]. Inner: [0,2], [9,12],
        // [15,30], [40,41]. Expected windows: r0 -> {[0,2]};
        // r1 -> {[9,12]}; r2 -> {[15,30]} ([40,41] never enters).
        let disk = SimDisk::with_default_page_size();
        let r = table(&disk, "R", &[(0.0, 1.0), (10.0, 11.0), (20.0, 21.0)]);
        let s = table(&disk, "S", &[(0.0, 2.0), (9.0, 12.0), (15.0, 30.0), (40.0, 41.0)]);
        let mut ex = Executor::new(&disk, ExecConfig::default());
        let sorted_r = ex.sort_table(&r.table, 1, Degree::ZERO).unwrap();
        let sorted_s = ex.sort_table(&s.table, 1, Degree::ZERO).unwrap();
        let mut windows: Vec<(f64, Vec<f64>)> = Vec::new();
        ex.merge_window(
            &sorted_r,
            1,
            &sorted_s,
            1,
            Degree::ZERO,
            OpKind::Join,
            "test".to_string(),
            |r, rng, _| {
                let key = r.values[1].interval().unwrap().0;
                let ws = rng.iter().map(|s| s.values[1].interval().unwrap().0).collect();
                windows.push((key, ws));
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(windows, vec![(0.0, vec![0.0]), (10.0, vec![9.0]), (20.0, vec![15.0]),]);
        assert_eq!(ex.stats().pairs_examined, 3);
    }

    #[test]
    fn merge_window_keeps_wide_inner_tuples_across_outers() {
        // A very wide inner tuple stays in every window it can touch.
        let disk = SimDisk::with_default_page_size();
        let r = table(&disk, "R", &[(0.0, 1.0), (50.0, 51.0), (99.0, 100.0)]);
        let s = table(&disk, "S", &[(0.0, 100.0)]);
        let mut ex = Executor::new(&disk, ExecConfig::default());
        let sorted_r = ex.sort_table(&r.table, 1, Degree::ZERO).unwrap();
        let sorted_s = ex.sort_table(&s.table, 1, Degree::ZERO).unwrap();
        let mut count = 0;
        ex.merge_window(
            &sorted_r,
            1,
            &sorted_s,
            1,
            Degree::ZERO,
            OpKind::Join,
            "test".to_string(),
            |_, rng, _| {
                count += rng.len();
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(count, 3, "the wide tuple belongs to all three ranges");
    }

    #[test]
    fn merge_window_includes_dangling_tuples_across_nested_intervals() {
        // Section 3's caveat: a tuple retained in the window for a wide
        // earlier outer interval may not join a later, narrower one — it is
        // examined (dangling) because the window can only drop tuples that
        // precede *every* remaining outer range. Outer: [10,100] then
        // [12,20]; inner: [50,60] joins the first but dangles for the
        // second (its window-retention check e(s)=60 >= b(r)=12 holds while
        // the intervals do not intersect).
        let disk = SimDisk::with_default_page_size();
        let r = table(&disk, "R", &[(10.0, 100.0), (12.0, 20.0)]);
        let s = table(&disk, "S", &[(50.0, 60.0)]);
        let mut ex = Executor::new(&disk, ExecConfig::default());
        let sorted_r = ex.sort_table(&r.table, 1, Degree::ZERO).unwrap();
        let sorted_s = ex.sort_table(&s.table, 1, Degree::ZERO).unwrap();
        let mut seen = Vec::new();
        ex.merge_window(
            &sorted_r,
            1,
            &sorted_s,
            1,
            Degree::ZERO,
            OpKind::Join,
            "test".to_string(),
            |r, rng, _| {
                for s in rng {
                    seen.push(r.values[1].compare(CmpOp::Eq, &s.values[1]).is_positive());
                }
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(seen, vec![true, false], "join for [10,100], dangling for [12,20]");
    }

    #[test]
    fn operators_register_in_the_metrics_registry() {
        let disk = SimDisk::with_default_page_size();
        let r = table(&disk, "R", &[(0.0, 1.0), (10.0, 11.0)]);
        let mut ex = Executor::new(&disk, ExecConfig::default());
        let sorted = ex.sort_table(&r.table, 1, Degree::ZERO).unwrap();
        let _ = sorted;
        let ops = ex.metrics().ops();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].kind, OpKind::Sort);
        assert_eq!(ops[0].label, "sort R by #1");
        assert_eq!(ops[0].metrics.tuples_in, 2);
        assert_eq!(ex.stats().sort_runs, ops[0].metrics.sort_runs);
    }

    #[test]
    fn group_set_dedups_by_identity_with_max_degree() {
        let mut g = GroupSet::default();
        g.add(Value::number(5.0), Degree::new(0.3).unwrap());
        g.add(Value::number(5.0), Degree::new(0.8).unwrap());
        g.add(Value::number(7.0), Degree::new(0.5).unwrap());
        g.add(Value::Null, Degree::ONE); // NULLs are ignored
        g.add(Value::number(9.0), Degree::ZERO); // non-members are ignored
        let (count, d) = g.aggregate(AggFunc::Count, crate::plan::AggDegree::One).unwrap().unwrap();
        assert_eq!(count, Value::number(2.0));
        assert_eq!(d, Degree::ONE);
        let (sum, _) = g.aggregate(AggFunc::Sum, crate::plan::AggDegree::One).unwrap().unwrap();
        assert_eq!(sum, Value::number(12.0));
        // Mean-membership degree: (0.8 + 0.5) / 2.
        let (_, dm) =
            g.aggregate(AggFunc::Sum, crate::plan::AggDegree::MeanMembership).unwrap().unwrap();
        assert!((dm.value() - 0.65).abs() < 1e-12);
    }

    #[test]
    fn empty_group_set_aggregates() {
        let g = GroupSet::default();
        assert!(g.aggregate(AggFunc::Sum, crate::plan::AggDegree::One).unwrap().is_none());
        let (count, _) = g.aggregate(AggFunc::Count, crate::plan::AggDegree::One).unwrap().unwrap();
        assert_eq!(count, Value::number(0.0));
    }

    #[test]
    fn filter_scan_passthrough_and_reduction() {
        let disk = SimDisk::with_default_page_size();
        let mut r = table(&disk, "R", &[(0.0, 1.0), (10.0, 11.0)]);
        let mut ex = Executor::new(&disk, ExecConfig::default());
        // No predicates: the very same file is reused.
        let same = ex.filter_scan(&r, Degree::ZERO).unwrap();
        assert_eq!(same.num_pages(), r.table.num_pages());
        // With a predicate, only survivors are materialized.
        r.local_preds.push(PlanCompare::new(
            PlanOperand::Col(PlanCol { binding: "R".into(), attr: 0 }),
            CmpOp::Ge,
            PlanOperand::Const(Value::number(1.0)),
        ));
        let reduced = ex.filter_scan(&r, Degree::ZERO).unwrap();
        assert_eq!(reduced.num_tuples(), 1);
    }
}
