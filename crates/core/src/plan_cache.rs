//! The shared plan cache behind concurrent query serving.
//!
//! The paper's unnesting transformations (Sections 4–8) do real work per
//! statement: classify the nesting shape, build the flat plan, pick a join
//! order, and statically verify the physical-property declarations. For a
//! long-lived server answering the same fuzzy queries again and again, all
//! of that is pure function of (normalized SQL, catalog version,
//! plan-shaping configuration) — exactly what a cache exploits.
//!
//! An entry stores the *verified* [`UnnestPlan`] behind an [`Arc`] (or the
//! fact that the statement falls back to the naive evaluator). Lookups that
//! hit skip classification, planning, join-order search, **and**
//! re-verification; the executor trusts the cached verification and runs the
//! plan directly. Any DDL/DML bumps the catalog version
//! (see `fuzzy_rel::Catalog::version`), so stale entries never hit — they
//! are dropped and counted as invalidations on their next lookup.
//!
//! The cache is internally synchronized (one mutex around the map, atomics
//! for the counters) and is shared by every session of a database; all
//! counters are exact, so a fixed statement schedule produces deterministic
//! hit/miss/invalidation counts (asserted by `tests/concurrent_serving.rs`).

use crate::exec::ExecConfig;
use crate::plan::UnnestPlan;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// What the planner decided for a statement: an unnested plan or the naive
/// fallback. Cached so repeated fallback statements skip re-classification.
#[derive(Debug, Clone)]
pub enum Planned {
    /// An unnested plan, shared by every execution that hits the entry.
    Plan(Arc<UnnestPlan>),
    /// The statement shape has no unnested form; the engine evaluates it
    /// with the semantics-faithful naive evaluator.
    NaiveFallback,
}

#[derive(Debug)]
struct Entry {
    /// Catalog version the plan was built against.
    version: u64,
    planned: Planned,
    /// The static verifier accepted the plan when it was built (fallback
    /// entries are vacuously verified — the naive evaluator *is* the
    /// semantics).
    verified: bool,
    /// Logical clock of the last hit (for least-recently-used eviction).
    last_used: u64,
}

/// Exact cache counters (a snapshot; see [`PlanCache::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from a live entry.
    pub hits: u64,
    /// Lookups that found no entry.
    pub misses: u64,
    /// Lookups that found an entry built against an older catalog version
    /// (the entry is dropped and the lookup also counts as a miss).
    pub invalidations: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
    /// Live entries right now.
    pub entries: usize,
}

/// The outcome of one cache consultation.
#[derive(Debug, Clone)]
pub struct CacheOutcome {
    /// The plan (cached or freshly built).
    pub planned: Planned,
    /// Whether the lookup hit a live entry.
    pub hit: bool,
    /// Whether the plan's static verification can be trusted without
    /// re-running it (true for hits on verified entries and for fresh
    /// inserts, which verify as part of building).
    pub verified: bool,
}

/// A bounded, internally synchronized map from
/// `(normalized SQL, plan-shaping config) × catalog version` to verified
/// plans.
#[derive(Debug)]
pub struct PlanCache {
    inner: Mutex<HashMap<String, Entry>>,
    capacity: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    evictions: AtomicU64,
}

/// Default number of cached statements per database.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 256;

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new(DEFAULT_PLAN_CACHE_CAPACITY)
    }
}

impl PlanCache {
    /// A cache holding at most `capacity` statements (LRU eviction).
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            inner: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The cache key for a parsed query under a configuration: the
    /// canonically rendered SQL (whitespace/case normalized by the
    /// parser→display round trip) plus the config knobs that shape plan
    /// verification. `threads` is deliberately excluded — any thread count
    /// runs the same plan with bit-identical counters.
    pub fn key(q: &fuzzy_sql::Query, config: &ExecConfig) -> String {
        format!(
            "{q}|rj={} tp={} jm={:?} pj={}",
            config.reorder_joins,
            config.threshold_pushdown,
            config.join_method,
            config.pipeline_joins
        )
    }

    /// Looks up a live entry for `key` at `version`. A version mismatch
    /// drops the entry and counts an invalidation; both that case and a
    /// plain absence count a miss.
    pub fn lookup(&self, key: &str, version: u64) -> Option<(Planned, bool)> {
        let mut map = self.inner.lock().expect("plan cache lock");
        match map.get_mut(key) {
            Some(e) if e.version == version => {
                e.last_used = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some((e.planned.clone(), e.verified))
            }
            Some(_) => {
                map.remove(key);
                self.invalidations.fetch_add(1, Ordering::Relaxed);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or replaces) the entry for `key` at `version`, evicting the
    /// least-recently-used entry if the cache is full.
    pub fn insert(&self, key: String, version: u64, planned: Planned, verified: bool) {
        let mut map = self.inner.lock().expect("plan cache lock");
        if !map.contains_key(&key) && map.len() >= self.capacity {
            if let Some(lru) = map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone()) {
                map.remove(&lru);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        let last_used = self.tick.fetch_add(1, Ordering::Relaxed) + 1;
        map.insert(key, Entry { version, planned, verified, last_used });
    }

    /// Drops every entry (counted as invalidations).
    pub fn clear(&self) {
        let mut map = self.inner.lock().expect("plan cache lock");
        self.invalidations.fetch_add(map.len() as u64, Ordering::Relaxed);
        map.clear();
    }

    /// An exact snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.inner.lock().expect("plan cache lock").len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planned() -> Planned {
        Planned::NaiveFallback
    }

    #[test]
    fn hit_miss_and_invalidation_counting() {
        let c = PlanCache::new(4);
        assert!(c.lookup("q1", 0).is_none());
        c.insert("q1".into(), 0, planned(), true);
        let (_, verified) = c.lookup("q1", 0).unwrap();
        assert!(verified);
        // Version bump: the entry is stale, dropped, and counted.
        assert!(c.lookup("q1", 1).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.invalidations), (1, 2, 1));
        assert_eq!(s.entries, 0);
    }

    #[test]
    fn lru_eviction_respects_capacity() {
        let c = PlanCache::new(2);
        c.insert("a".into(), 0, planned(), true);
        c.insert("b".into(), 0, planned(), true);
        let _ = c.lookup("a", 0); // touch a: b is now the LRU entry
        c.insert("c".into(), 0, planned(), true);
        assert_eq!(c.stats().entries, 2);
        assert_eq!(c.stats().evictions, 1);
        assert!(c.lookup("a", 0).is_some(), "recently used entry survives");
        assert!(c.lookup("b", 0).is_none(), "LRU entry was evicted");
    }

    #[test]
    fn clear_counts_invalidations() {
        let c = PlanCache::new(4);
        c.insert("a".into(), 0, planned(), true);
        c.insert("b".into(), 0, planned(), false);
        c.clear();
        let s = c.stats();
        assert_eq!(s.invalidations, 2);
        assert_eq!(s.entries, 0);
    }

    #[test]
    fn key_separates_plan_shaping_config() {
        let q = fuzzy_sql::parse("SELECT R.ID FROM R").unwrap();
        let base = ExecConfig::default();
        let mut other = base;
        other.threshold_pushdown = false;
        assert_ne!(PlanCache::key(&q, &base), PlanCache::key(&q, &other));
        let mut threads_only = base;
        threads_only.threads = 8;
        assert_eq!(
            PlanCache::key(&q, &base),
            PlanCache::key(&q, &threads_only),
            "threads never shape the plan"
        );
        // Normalization: case/whitespace variants share a key.
        let q2 = fuzzy_sql::parse("select   R.ID  from R").unwrap();
        assert_eq!(PlanCache::key(&q, &base), PlanCache::key(&q2, &base));
    }

    #[test]
    fn cache_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PlanCache>();
        assert_send_sync::<Planned>();
    }
}
