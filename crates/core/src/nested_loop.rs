//! The nested-loop baseline.
//!
//! The paper's experiments compare the extended merge-join against "the
//! nested loop method", the only method able to evaluate a nested query
//! directly: one buffer page is allocated to the inner relation and the rest
//! to the outer (Section 9), the outer is read once in blocks, and the inner
//! is scanned once per outer block while the semantics of the nested query
//! are evaluated per outer tuple. No intermediate relations are built; local
//! predicates (p₁, p₂) are re-evaluated on every pass, exactly as a naive
//! execution would.
//!
//! The baseline evaluates the same logical content as the unnested plans, so
//! tests can check both strategies produce identical fuzzy relations while
//! the benchmarks compare their costs:
//!
//! * I/O: `b_R + ceil(b_R / (M − 1)) × b_S` versus the merge-join's
//!   `O(b_R + b_S)` plus sort passes;
//! * CPU: `n_R × n_S` pair evaluations versus `O(n_R log n_R + n_S log n_S)`.
//!
//! Baseline operators register in the same [`crate::metrics::QueryMetrics`]
//! registry as the unnested plans, with the same counter semantics
//! (`fuzzy_comparisons` counts value-level comparison evaluations), so
//! `EXPLAIN ANALYZE` numbers are directly comparable across strategies.

use crate::error::{EngineError, Result};
use crate::exec::{project, Executor, GroupSet, Layout};
use crate::metrics::{OpKind, OperatorMetrics};
use crate::plan::{AggPlan, AntiKind, AntiPlan, FlatPlan, PlanCompare, PlanOperand, UnnestPlan};
use fuzzy_core::{Degree, Value};
use fuzzy_rel::Relation;
use fuzzy_sql::AggFunc;

impl Executor {
    /// Runs a plan with the nested-loop method (the measured baseline).
    pub fn run_baseline(&mut self, plan: &UnnestPlan) -> Result<Relation> {
        self.metrics_reset();
        self.baseline_dispatch(plan)
    }

    /// The intermediate-relation method of Section 2.3: local predicates are
    /// evaluated once into reduced temporary relations ("an intermediate
    /// relation containing all tuples of the inner relation that satisfy the
    /// predicate"), and the nested loop then runs over the reduced inputs.
    /// It sits between the naive nested loop (which re-evaluates p₂ on every
    /// pass) and the fully unnested merge-join.
    pub fn run_baseline_materialized(&mut self, plan: &UnnestPlan) -> Result<Relation> {
        self.metrics_reset();
        let reduced = match plan {
            UnnestPlan::Flat(p) => {
                let mut p = p.clone();
                for t in &mut p.tables {
                    t.table = self.filter_scan(t, fuzzy_core::Degree::ZERO)?;
                    t.local_preds.clear();
                }
                UnnestPlan::Flat(p)
            }
            UnnestPlan::Anti(p) => {
                let mut p = p.clone();
                for t in [&mut p.outer, &mut p.inner] {
                    t.table = self.filter_scan(t, fuzzy_core::Degree::ZERO)?;
                    t.local_preds.clear();
                }
                UnnestPlan::Anti(p)
            }
            UnnestPlan::Agg(p) => {
                let mut p = p.clone();
                for t in [&mut p.outer, &mut p.inner] {
                    t.table = self.filter_scan(t, fuzzy_core::Degree::ZERO)?;
                    t.local_preds.clear();
                }
                UnnestPlan::Agg(p)
            }
        };
        // The filter-phase operators stay in the registry; dispatch directly
        // so they are not reset.
        self.baseline_dispatch(&reduced)
    }

    fn baseline_dispatch(&mut self, plan: &UnnestPlan) -> Result<Relation> {
        match plan {
            UnnestPlan::Flat(p) => self.baseline_flat(p),
            UnnestPlan::Anti(p) => self.baseline_anti(p),
            UnnestPlan::Agg(p) => self.baseline_agg(p),
        }
    }

    fn baseline_flat(&mut self, plan: &FlatPlan) -> Result<Relation> {
        match plan.tables.len() {
            1 => {
                // Degenerate: a single filtered scan.
                let t = &plan.tables[0];
                let layout = Layout::of_table(t);
                let preds = layout.bind_all(&t.local_preds)?;
                let (schema, idx) = layout.projection(&plan.select)?;
                let g = self.begin_op(OpKind::Scan, format!("select {}", t.binding));
                let pool = fuzzy_storage::BufferPool::new(self.disk(), 1);
                let mut rows: Vec<(Vec<Value>, Degree)> = Vec::new();
                let mut m = OperatorMetrics::default();
                for tuple in t.table.scan(&pool) {
                    let tuple = tuple?;
                    m.tuples_in += 1;
                    let mut d = tuple.degree;
                    for p in &preds {
                        m.fuzzy_comparisons += 1;
                        d = d.and(p.eval(&tuple.values));
                    }
                    if d.is_positive() {
                        m.tuples_out += 1;
                        rows.push((project(&tuple, &idx), d));
                    }
                }
                m.add_pool(&pool.stats());
                self.absorb_op(&g, &m);
                self.end_op(g);
                Ok(self.finish_op(schema, rows, plan.threshold))
            }
            2 => {
                let (outer, inner) = (&plan.tables[0], &plan.tables[1]);
                let mut layout = Layout::of_table(outer);
                layout.push(inner);
                // All predicates evaluated inline per pair — p₁ on the outer
                // side, p₂ on the inner side, joins across.
                let outer_preds = Layout::of_table(outer).bind_all(&outer.local_preds)?;
                let inner_only = Layout::of_table(inner).bind_all(&inner.local_preds)?;
                let joins = layout.bind_all(&plan.join_preds)?;
                let (schema, idx) = layout.projection(&plan.select)?;
                let mut rows: Vec<(Vec<Value>, Degree)> = Vec::new();
                let ot = outer.table.clone();
                let it = inner.table.clone();
                self.block_nested_loop(
                    &ot,
                    &it,
                    format!("nested-loop {} x {}", outer.binding, inner.binding),
                    |_, _| (),
                    |_, r, s, m| {
                        let mut d = r.degree.and(s.degree);
                        for p in &outer_preds {
                            m.fuzzy_comparisons += 1;
                            d = d.and(p.eval(&r.values));
                        }
                        for p in &inner_only {
                            m.fuzzy_comparisons += 1;
                            d = d.and(p.eval(&s.values));
                        }
                        for p in &joins {
                            if !d.is_positive() {
                                break;
                            }
                            m.fuzzy_comparisons += 1;
                            d = d.and(p.eval_pair(&r.values, &s.values));
                        }
                        if d.is_positive() {
                            let mut values = Vec::with_capacity(idx.len());
                            for &i in &idx {
                                values.push(if i < r.values.len() {
                                    r.values[i].clone()
                                } else {
                                    s.values[i - r.values.len()].clone()
                                });
                            }
                            m.tuples_out += 1;
                            rows.push((values, d));
                        }
                        Ok(())
                    },
                    |_, _, _| Ok(()),
                )?;
                Ok(self.finish_op(schema, rows, plan.threshold))
            }
            n => Err(EngineError::Unsupported(format!(
                "the nested-loop baseline handles 1- and 2-table plans, got {n}; \
                 K-level chains are covered analytically (Section 8)"
            ))),
        }
    }

    fn baseline_anti(&mut self, plan: &AntiPlan) -> Result<Relation> {
        let mut pair_layout = Layout::of_table(&plan.outer);
        pair_layout.push(&plan.inner);
        let outer_preds = Layout::of_table(&plan.outer).bind_all(&plan.outer.local_preds)?;
        let inner_preds = Layout::of_table(&plan.inner).bind_all(&plan.inner.local_preds)?;
        let pair = pair_layout.bind_all(&plan.pair_preds)?;
        let kind_extra = match &plan.kind {
            AntiKind::Exclusion => None,
            AntiKind::All { op, lhs, rhs } => Some(pair_layout.bind(&PlanCompare {
                lhs: lhs.clone(),
                op: *op,
                rhs: rhs.clone(),
                tolerance: None,
            })?),
        };
        let outer_layout = Layout::of_table(&plan.outer);
        let (schema, idx) = outer_layout.projection(&plan.select)?;
        let mut rows: Vec<(Vec<Value>, Degree)> = Vec::new();
        let ot = plan.outer.table.clone();
        let it = plan.inner.table.clone();
        self.block_nested_loop(
            &ot,
            &it,
            format!("nested-loop-anti {} x {}", plan.outer.binding, plan.inner.binding),
            |r, m| {
                // Accumulator: min over inner tuples, seeded with μ_R ∧ p₁.
                let mut base = r.degree;
                for p in &outer_preds {
                    m.fuzzy_comparisons += 1;
                    base = base.and(p.eval(&r.values));
                }
                base
            },
            |acc, r, s, m| {
                if !acc.is_positive() {
                    return Ok(());
                }
                let mut inner_d = s.degree;
                for p in &inner_preds {
                    m.fuzzy_comparisons += 1;
                    inner_d = inner_d.and(p.eval(&s.values));
                }
                for p in &pair {
                    if !inner_d.is_positive() {
                        break;
                    }
                    m.fuzzy_comparisons += 1;
                    inner_d = inner_d.and(p.eval_pair(&r.values, &s.values));
                }
                if let Some(b) = &kind_extra {
                    if inner_d.is_positive() {
                        m.fuzzy_comparisons += 1;
                        inner_d = inner_d.and(b.eval_pair(&r.values, &s.values).not());
                    }
                }
                *acc = acc.and(inner_d.not());
                Ok(())
            },
            |r, acc, m| {
                if acc.is_positive() {
                    m.tuples_out += 1;
                    rows.push((project(&r, &idx), acc));
                }
                Ok(())
            },
        )?;
        Ok(self.finish_op(schema, rows, plan.threshold))
    }

    fn baseline_agg(&mut self, plan: &AggPlan) -> Result<Relation> {
        let outer_preds = Layout::of_table(&plan.outer).bind_all(&plan.outer.local_preds)?;
        let inner_preds = Layout::of_table(&plan.inner).bind_all(&plan.inner.local_preds)?;
        let inner_layout = Layout::of_table(&plan.inner);
        let agg_idx = inner_layout.resolve(&plan.agg.1)?;
        let agg = plan.agg.0;
        let agg_degree = plan.agg_degree;
        let outer_layout = Layout::of_table(&plan.outer);
        let (schema, idx) = outer_layout.projection(&plan.select)?;
        let corr = match &plan.corr {
            Some((u, op2, v)) => Some((outer_layout.resolve(u)?, *op2, inner_layout.resolve(v)?)),
            None => None,
        };
        let lhs_idx = match &plan.compare.0 {
            PlanOperand::Col(c) => Some(outer_layout.resolve(c)?),
            PlanOperand::Const(_) => None,
        };
        let lhs_const = match &plan.compare.0 {
            PlanOperand::Const(v) => Some(v.clone()),
            PlanOperand::Col(_) => None,
        };
        let op1 = plan.compare.1;
        let mut rows: Vec<(Vec<Value>, Degree)> = Vec::new();
        let ot = plan.outer.table.clone();
        let it = plan.inner.table.clone();
        self.block_nested_loop(
            &ot,
            &it,
            format!("nested-loop-agg {} x {}", plan.outer.binding, plan.inner.binding),
            |_, _| GroupSet::default(),
            |set, r, s, m| {
                // μ_T(r)(z) = max min(μ_S, p₂, d(s.V op₂ r.U)).
                let mut d = s.degree;
                for p in &inner_preds {
                    m.fuzzy_comparisons += 1;
                    d = d.and(p.eval(&s.values));
                }
                if let Some((u, op2, v)) = &corr {
                    m.fuzzy_comparisons += 1;
                    d = d.and(s.values[*v].compare(*op2, &r.values[*u]));
                }
                if d.is_positive() {
                    set.add(s.values[agg_idx].clone(), d);
                }
                Ok(())
            },
            |r, set, m| {
                let mut base = r.degree;
                for p in &outer_preds {
                    m.fuzzy_comparisons += 1;
                    base = base.and(p.eval(&r.values));
                }
                if !base.is_positive() {
                    return Ok(());
                }
                let lhs_val = match (&lhs_idx, &lhs_const) {
                    (Some(i), _) => r.values[*i].clone(),
                    (None, Some(v)) => v.clone(),
                    _ => unreachable!("operand is a column or a constant"),
                };
                let d = match set.aggregate(agg, agg_degree)? {
                    Some((a, da)) => {
                        m.fuzzy_comparisons += 1;
                        base.and(da).and(lhs_val.compare(op1, &a))
                    }
                    None => {
                        if agg == AggFunc::Count {
                            m.fuzzy_comparisons += 1;
                            base.and(lhs_val.compare(op1, &Value::number(0.0)))
                        } else {
                            Degree::ZERO
                        }
                    }
                };
                if d.is_positive() {
                    m.tuples_out += 1;
                    rows.push((project(&r, &idx), d));
                }
                Ok(())
            },
        )?;
        Ok(self.finish_op(schema, rows, plan.threshold))
    }
}
