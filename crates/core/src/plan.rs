//! Logical plans for unnested queries.
//!
//! The unnesting transformations of Sections 4–8 rewrite a nested query into
//! a flat form over the participating relations. We represent those flat
//! forms directly as plans rather than SQL text:
//!
//! * [`FlatPlan`] — a flat select-project-join: Query N′/J′ (Theorems
//!   4.1/4.2), the `SOME` variant, and the K-way chain query Q′_K
//!   (Theorem 8.1);
//! * [`AntiPlan`] — the grouped `MIN(D)` queries JX′ and JALL′ over negated
//!   predicate degrees (Theorems 5.1 and 7.1); grouping by the outer key is
//!   implicit because the outer relation is streamed tuple-at-a-time;
//! * [`AggPlan`] — the T1/T2/JA′ (or COUNT′ with its left outer join and
//!   IF-THEN-ELSE branch) pipeline of Theorem 6.1.
//!
//! Plans reference columns as `(binding, attribute index)`; physical
//! executors map them onto concatenated tuple layouts.

use fuzzy_core::{CmpOp, Degree, Value};
use fuzzy_rel::StoredTable;
use fuzzy_sql::{AggFunc, Threshold};

/// A column of a plan: a table binding plus an attribute index within it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanCol {
    /// The FROM binding name (alias or table name).
    pub binding: String,
    /// The attribute position within that table's schema.
    pub attr: usize,
}

/// An operand of a plan predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanOperand {
    /// A column.
    Col(PlanCol),
    /// A constant (numbers, text, resolved linguistic terms).
    Const(Value),
}

impl PlanOperand {
    /// The column, if this operand is one.
    pub fn as_col(&self) -> Option<&PlanCol> {
        match self {
            PlanOperand::Col(c) => Some(c),
            PlanOperand::Const(_) => None,
        }
    }
}

/// A simple comparison predicate of a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanCompare {
    /// Left operand.
    pub lhs: PlanOperand,
    /// Operator.
    pub op: CmpOp,
    /// Right operand.
    pub rhs: PlanOperand,
    /// For `X ~ Y WITHIN t` similarity predicates: the tolerance. When set,
    /// `op` is `Eq` and evaluation uses the similarity relation instead of
    /// plain possibility of equality.
    pub tolerance: Option<f64>,
}

impl PlanCompare {
    /// A plain (non-similarity) comparison.
    pub fn new(lhs: PlanOperand, op: CmpOp, rhs: PlanOperand) -> PlanCompare {
        PlanCompare { lhs, op, rhs, tolerance: None }
    }

    /// The bindings this predicate references.
    pub fn bindings(&self) -> Vec<&str> {
        let mut out = Vec::new();
        for o in [&self.lhs, &self.rhs] {
            if let PlanOperand::Col(c) = o {
                out.push(c.binding.as_str());
            }
        }
        out
    }

    /// True iff this is an exact equality between two columns of the two
    /// given bindings (in either orientation) — a merge-join driver
    /// candidate. Similarity predicates are residuals, never drivers (their
    /// widened intersection criterion is not the window's).
    pub fn is_equi_between(&self, a: &str, b: &str) -> bool {
        if self.op != CmpOp::Eq || self.tolerance.is_some() {
            return false;
        }
        match (self.lhs.as_col(), self.rhs.as_col()) {
            (Some(l), Some(r)) => {
                (l.binding == a && r.binding == b) || (l.binding == b && r.binding == a)
            }
            _ => false,
        }
    }
}

/// One base relation of a plan with the predicates local to it.
#[derive(Debug, Clone)]
pub struct PlanTable {
    /// Binding name used by plan columns.
    pub binding: String,
    /// The stored relation.
    pub table: StoredTable,
    /// Single-table predicates (the paper's p_i), folded into tuple degrees
    /// during the initial filtering scan.
    pub local_preds: Vec<PlanCompare>,
}

/// The paper equivalence rule that justifies an unnested plan.
///
/// Every plan the transformer emits is tagged with the rule that produced
/// it; the static verifier ([`crate::verify`]) re-checks the rule's shape
/// preconditions against the plan itself, so a mis-tagged plan (or a future
/// transformer bug) is rejected before execution rather than silently
/// computing wrong degrees. The flat-form rules carry `blocks`: the binding
/// names of each nesting level, outermost first, which is what the
/// cross-level predicate checks (independence, adjacency) are phrased over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewriteRule {
    /// No rewrite — the user query was already flat.
    Flat,
    /// Theorem 4.1 (Query N′): uncorrelated `IN`. Precondition: the inner
    /// block is independent — exactly one cross-level predicate, the `IN`
    /// linkage equality itself.
    TypeN {
        /// Binding names per nesting level, outermost first.
        blocks: Vec<Vec<String>>,
    },
    /// Theorem 4.2 (Query J′): correlated `IN`. Precondition: at least one
    /// cross-level predicate links the two levels.
    TypeJ {
        /// Binding names per nesting level, outermost first.
        blocks: Vec<Vec<String>>,
    },
    /// The `θ SOME` variant of Theorem 4.2 (the linkage carries θ, not
    /// necessarily equality).
    TypeSome {
        /// Binding names per nesting level, outermost first.
        blocks: Vec<Vec<String>>,
    },
    /// Theorem 8.1 (Query Q′_K): a K-level `IN` chain. Precondition: every
    /// adjacent level pair is linked by at least one equality, and no
    /// predicate skips levels (correlation may reference enclosing blocks,
    /// but the linkage structure itself must be linear).
    Chain {
        /// Binding names per nesting level, outermost first.
        blocks: Vec<Vec<String>>,
    },
    /// Section 7's remark: `EXISTS` flattens to a correlation join with
    /// fuzzy-OR duplicate elimination playing the max.
    Exists,
    /// Theorem 5.1 (Queries NX′/JX′): `NOT IN` / `NOT EXISTS` as a grouped
    /// MIN over negated degrees.
    Exclusion,
    /// Theorem 7.1 (Queries ALL′/JALL′): the quantified anti form.
    All,
    /// Theorem 6.1 (Queries JA′/COUNT′ and the constant type A).
    Aggregate,
}

impl RewriteRule {
    /// The diagnostic rule id: the paper theorem (or remark) the rewrite is
    /// licensed by. These ids appear in verifier diagnostics and DESIGN.md.
    pub fn id(&self) -> &'static str {
        match self {
            RewriteRule::Flat => "none",
            RewriteRule::TypeN { .. } => "T4.1",
            RewriteRule::TypeJ { .. } => "T4.2",
            RewriteRule::TypeSome { .. } => "T4.2-SOME",
            RewriteRule::Chain { .. } => "T8.1",
            RewriteRule::Exists => "S7-EXISTS",
            RewriteRule::Exclusion => "T5.1",
            RewriteRule::All => "T7.1",
            RewriteRule::Aggregate => "T6.1",
        }
    }

    /// The nesting-level binding lists, for the flat-form rules that carry
    /// them.
    pub fn blocks(&self) -> Option<&[Vec<String>]> {
        match self {
            RewriteRule::TypeN { blocks }
            | RewriteRule::TypeJ { blocks }
            | RewriteRule::TypeSome { blocks }
            | RewriteRule::Chain { blocks } => Some(blocks),
            _ => None,
        }
    }
}

impl std::fmt::Display for RewriteRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

/// A flat select-project-join plan (N′, J′, chains, SOME).
#[derive(Debug, Clone)]
pub struct FlatPlan {
    /// Base relations in join order (the FROM order; chain queries join
    /// adjacent blocks so this order is always connected).
    pub tables: Vec<PlanTable>,
    /// Cross-table predicates. For each adjacent join step the executor
    /// picks an equality to drive the merge; the rest are residuals.
    pub join_preds: Vec<PlanCompare>,
    /// Output columns (projection with fuzzy-OR duplicate elimination).
    pub select: Vec<PlanCol>,
    /// Final `WITH` threshold.
    pub threshold: Option<Threshold>,
    /// The equivalence rule that produced this plan (verified statically).
    pub rule: RewriteRule,
}

/// What the anti-join accumulates per inner tuple (Sections 5 and 7).
#[derive(Debug, Clone, PartialEq)]
pub enum AntiKind {
    /// JX′/NX′: contribution `1 − min(μ_S∧p₂, d(joins))`.
    Exclusion,
    /// JALL′: contribution `1 − min(μ_S∧p₂, d(corr joins), 1 − d(R.Y op S.Z))`
    /// for the quantified comparison `op`.
    All {
        /// The quantified comparison operator.
        op: CmpOp,
        /// The outer operand of the quantified comparison.
        lhs: PlanOperand,
        /// The inner (sub-query select) column.
        rhs: PlanOperand,
    },
}

/// The grouped-MIN(D) plan for `NOT IN` and `ALL` (JX′/JALL′).
#[derive(Debug, Clone)]
pub struct AntiPlan {
    /// Outer relation with p₁.
    pub outer: PlanTable,
    /// Inner relation with p₂.
    pub inner: PlanTable,
    /// Predicates inside the negation that reference both relations (the
    /// correlation joins, and for JX′ also the `R.Y = S.Z` pair). For
    /// `AntiKind::All` the quantified pair lives in the kind instead.
    pub pair_preds: Vec<PlanCompare>,
    /// Which degree the inner contribution accumulates.
    pub kind: AntiKind,
    /// The equality in `pair_preds` that drives the merge window, as
    /// `(outer column, inner column)`; `None` forces the scan fallback
    /// (uncorrelated NX/ALL — the temporary relation is built once and
    /// scanned per outer tuple).
    pub window: Option<(PlanCol, PlanCol)>,
    /// Output columns from the outer relation.
    pub select: Vec<PlanCol>,
    /// Final `WITH` threshold.
    pub threshold: Option<Threshold>,
    /// The equivalence rule that produced this plan (verified statically).
    pub rule: RewriteRule,
}

/// The aggregate plan for type JA / COUNT′ (Theorem 6.1).
#[derive(Debug, Clone)]
pub struct AggPlan {
    /// Outer relation with p₁.
    pub outer: PlanTable,
    /// Inner relation with p₂.
    pub inner: PlanTable,
    /// The correlation predicate `S.V op₂ R.U` as
    /// `(outer column U, op₂, inner column V)`, where op₂ reads
    /// "inner value op₂ outer value". `None` for the uncorrelated type A,
    /// whose inner block is a constant and needs no unnesting (Section 6).
    pub corr: Option<(PlanCol, CmpOp, PlanCol)>,
    /// The aggregate function and its inner input column `S.Z`.
    pub agg: (AggFunc, PlanCol),
    /// The outer comparison `R.Y op₁ AGG(...)`.
    pub compare: (PlanOperand, CmpOp),
    /// Output columns from the outer relation.
    pub select: Vec<PlanCol>,
    /// Final `WITH` threshold.
    pub threshold: Option<Threshold>,
    /// Degree assigned to an aggregate result, `D(A(r))`. Fuzzy SQL fixes it
    /// to 1; the paper notes average-membership alternatives, which
    /// [`AggDegree::MeanMembership`] provides as an ablation.
    pub agg_degree: AggDegree,
    /// The equivalence rule that produced this plan (verified statically).
    pub rule: RewriteRule,
}

/// How `D(A(r))` — the degree of an aggregated value — is derived from the
/// group `T(r)` (Section 6 leaves this open; Fuzzy SQL uses 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AggDegree {
    /// `D(A(r)) = 1` (Fuzzy SQL, the default).
    #[default]
    One,
    /// `D(A(r))` = the mean membership degree of `T(r)`.
    MeanMembership,
}

impl AggDegree {
    /// Computes the degree from the member degrees of the group.
    pub fn of_group(&self, member_degrees: &[Degree]) -> Degree {
        match self {
            AggDegree::One => Degree::ONE,
            AggDegree::MeanMembership => {
                if member_degrees.is_empty() {
                    Degree::ONE
                } else {
                    let sum: f64 = member_degrees.iter().map(|d| d.value()).sum();
                    Degree::clamped(sum / member_degrees.len() as f64)
                }
            }
        }
    }
}

/// A complete unnested plan.
#[derive(Debug, Clone)]
pub enum UnnestPlan {
    /// Flat select-project-join (N′, J′, chains, SOME, already-flat queries).
    Flat(FlatPlan),
    /// Grouped MIN(D) anti form (JX′, NX′, JALL′, ALL′).
    Anti(AntiPlan),
    /// Aggregate form (JA′ / COUNT′), including the uncorrelated constant
    /// case (type A).
    Agg(AggPlan),
}

impl UnnestPlan {
    /// The equivalence rule the plan was produced by.
    pub fn rule(&self) -> &RewriteRule {
        match self {
            UnnestPlan::Flat(p) => &p.rule,
            UnnestPlan::Anti(p) => &p.rule,
            UnnestPlan::Agg(p) => &p.rule,
        }
    }

    /// The final `WITH` threshold, if any.
    pub fn threshold(&self) -> Option<Threshold> {
        match self {
            UnnestPlan::Flat(p) => p.threshold,
            UnnestPlan::Anti(p) => p.threshold,
            UnnestPlan::Agg(p) => p.threshold,
        }
    }

    /// A short human-readable label of the plan shape (for EXPLAIN-style
    /// output and experiment logs).
    pub fn label(&self) -> String {
        match self {
            UnnestPlan::Flat(p) => format!("flat-join[{} tables]", p.tables.len()),
            UnnestPlan::Anti(p) => match p.kind {
                AntiKind::Exclusion => {
                    format!("anti-exclusion[{}]", if p.window.is_some() { "merge" } else { "scan" })
                }
                AntiKind::All { op, .. } => format!(
                    "anti-all[{} {}]",
                    op,
                    if p.window.is_some() { "merge" } else { "scan" }
                ),
            },
            UnnestPlan::Agg(p) => match &p.corr {
                Some((_, op, _)) => format!("agg[{} corr {}]", p.agg.0.name(), op),
                None => format!("agg[{} const]", p.agg.0.name()),
            },
        }
    }
}

impl std::fmt::Display for PlanCol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.#{}", self.binding, self.attr)
    }
}

impl std::fmt::Display for PlanOperand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanOperand::Col(c) => write!(f, "{c}"),
            PlanOperand::Const(v) => write!(f, "{v}"),
        }
    }
}

impl std::fmt::Display for PlanCompare {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op, self.rhs)
    }
}

impl UnnestPlan {
    /// A multi-line EXPLAIN rendering of the plan.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        let table_line = |t: &PlanTable, role: &str, out: &mut String| {
            out.push_str(&format!(
                "  {role} {} ({} tuples, {} pages",
                t.binding,
                t.table.num_tuples(),
                t.table.num_pages()
            ));
            if !t.local_preds.is_empty() {
                out.push_str(&format!(
                    ", filter: {}",
                    t.local_preds.iter().map(|p| p.to_string()).collect::<Vec<_>>().join(" AND ")
                ));
            }
            out.push_str(")\n");
        };
        match self {
            UnnestPlan::Flat(p) => {
                out.push_str(&format!("FlatJoin [{} tables]\n", p.tables.len()));
                for (i, t) in p.tables.iter().enumerate() {
                    table_line(t, if i == 0 { "scan " } else { "join " }, &mut out);
                }
                if !p.join_preds.is_empty() {
                    out.push_str(&format!(
                        "  on: {}\n",
                        p.join_preds
                            .iter()
                            .map(|p| p.to_string())
                            .collect::<Vec<_>>()
                            .join(" AND ")
                    ));
                }
            }
            UnnestPlan::Anti(p) => {
                let kind = match &p.kind {
                    AntiKind::Exclusion => "NOT IN (grouped MIN over negated degrees)".into(),
                    AntiKind::All { op, lhs, .. } => {
                        format!("{lhs} {op} ALL (grouped MIN over negated degrees)")
                    }
                };
                out.push_str(&format!("Anti [{kind}]\n"));
                table_line(&p.outer, "outer", &mut out);
                table_line(&p.inner, "inner", &mut out);
                match &p.window {
                    Some((o, i)) => out.push_str(&format!("  merge window on {o} = {i}\n")),
                    None => out.push_str("  scan (inner set built once, no merge window)\n"),
                }
                if !p.pair_preds.is_empty() {
                    out.push_str(&format!(
                        "  negated conjunction: {}\n",
                        p.pair_preds
                            .iter()
                            .map(|p| p.to_string())
                            .collect::<Vec<_>>()
                            .join(" AND ")
                    ));
                }
            }
            UnnestPlan::Agg(p) => {
                out.push_str(&format!(
                    "Aggregate [{}({}) compared via {}]\n",
                    p.agg.0.name(),
                    p.agg.1,
                    p.compare.1
                ));
                table_line(&p.outer, "outer", &mut out);
                table_line(&p.inner, "inner", &mut out);
                match &p.corr {
                    Some((u, op, v)) => out.push_str(&format!(
                        "  pipelined T1/T2 groups: {v} {op} {u}{}\n",
                        if *op == CmpOp::Eq { " (merge window)" } else { " (scan fallback)" }
                    )),
                    None => out.push_str("  uncorrelated: constant inner aggregate\n"),
                }
                if p.agg.0 == AggFunc::Count {
                    out.push_str("  COUNT': left outer join with [Y op A : Y op 0]\n");
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(b: &str, i: usize) -> PlanOperand {
        PlanOperand::Col(PlanCol { binding: b.into(), attr: i })
    }

    #[test]
    fn equi_detection() {
        let p = PlanCompare::new(col("R", 1), CmpOp::Eq, col("S", 2));
        assert!(p.is_equi_between("R", "S"));
        assert!(p.is_equi_between("S", "R"));
        assert!(!p.is_equi_between("R", "T"));
        let q = PlanCompare::new(col("R", 1), CmpOp::Lt, col("S", 2));
        assert!(!q.is_equi_between("R", "S"));
        let c = PlanCompare::new(col("R", 1), CmpOp::Eq, PlanOperand::Const(Value::number(5.0)));
        assert!(!c.is_equi_between("R", "S"));
        assert_eq!(c.bindings(), vec!["R"]);
    }

    #[test]
    fn agg_degree_modes() {
        let ds = [Degree::new(0.2).unwrap(), Degree::new(0.8).unwrap()];
        assert_eq!(AggDegree::One.of_group(&ds), Degree::ONE);
        assert!((AggDegree::MeanMembership.of_group(&ds).value() - 0.5).abs() < 1e-12);
        assert_eq!(AggDegree::MeanMembership.of_group(&[]), Degree::ONE);
        assert_eq!(AggDegree::default(), AggDegree::One);
    }
}
