//! Engine error type.

use fuzzy_core::FuzzyError;
use fuzzy_sql::ParseError;
use fuzzy_storage::StorageError;
use std::fmt;

/// Errors produced by query planning and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// SQL could not be parsed.
    Parse(ParseError),
    /// A fuzzy-set operation failed (bad degree, unknown term, …).
    Fuzzy(FuzzyError),
    /// The storage layer failed.
    Storage(StorageError),
    /// Name resolution failed (unknown table, attribute, or ambiguity).
    Bind(String),
    /// The query shape is outside what the engine supports.
    Unsupported(String),
    /// Static plan verification rejected the plan (a transformer or
    /// optimizer bug — see `fuzzy_engine::verify`).
    Verify(String),
    /// A prepared statement's pinned plan was built against an older catalog
    /// version; the statement must be re-prepared.
    StalePlan {
        /// Catalog version the plan was prepared against.
        planned_version: u64,
        /// Catalog version at execution time.
        catalog_version: u64,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "{e}"),
            EngineError::Fuzzy(e) => write!(f, "{e}"),
            EngineError::Storage(e) => write!(f, "{e}"),
            EngineError::Bind(msg) => write!(f, "binding error: {msg}"),
            EngineError::Unsupported(msg) => write!(f, "unsupported query: {msg}"),
            EngineError::Verify(msg) => write!(f, "plan verification failed: {msg}"),
            EngineError::StalePlan { planned_version, catalog_version } => write!(
                f,
                "prepared plan is stale: planned against catalog version \
                 {planned_version}, catalog is now at {catalog_version}; re-prepare the statement"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ParseError> for EngineError {
    fn from(e: ParseError) -> Self {
        EngineError::Parse(e)
    }
}

impl From<FuzzyError> for EngineError {
    fn from(e: FuzzyError) -> Self {
        EngineError::Fuzzy(e)
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: EngineError = ParseError::at(3, "boom").into();
        assert!(e.to_string().contains("boom"));
        let e: EngineError = FuzzyError::DivisionByZero.into();
        assert!(e.to_string().contains("zero"));
        let e: EngineError = StorageError::InvalidSlot(1).into();
        assert!(e.to_string().contains("slot"));
        assert!(EngineError::Bind("no table R".into()).to_string().contains("no table R"));
        assert!(EngineError::Unsupported("cyclic".into()).to_string().contains("cyclic"));
        let e = EngineError::Verify("[V-PROP-SORT] at #2".into());
        assert!(e.to_string().contains("plan verification failed"));
        assert!(e.to_string().contains("V-PROP-SORT"));
        let e = EngineError::StalePlan { planned_version: 3, catalog_version: 5 };
        assert!(e.to_string().contains("stale"));
        assert!(e.to_string().contains('3') && e.to_string().contains('5'));
    }
}
