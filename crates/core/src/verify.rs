//! Static plan verification: physical-property analysis and
//! degree-preservation linting.
//!
//! The unnesting transformations (Sections 4–8) and the extended merge-join
//! (Section 3) are equivalent to the nested semantics only under
//! preconditions the executor otherwise assumes implicitly:
//!
//! * merge-join inputs must be ⪯-sorted (Definition 3.1's interval order, at
//!   the same α-cut the window scans) so that `Rng(r)` is one contiguous
//!   window — and the driving predicate must be an *exact* equality, because
//!   a similarity predicate's tolerance-widened matches are not bounded by
//!   support intersection;
//! * duplicate elimination must keep the **max** degree (fuzzy-OR), the
//!   projection semantics of Section 2;
//! * a pushed-down `WITH D > z` bound may only ever *tighten*: pruning at
//!   α > z can drop answer rows, and pruning inside the MIN-accumulating
//!   anti/aggregate forms is unsound at any α > 0 (low-degree pairs still
//!   lower group degrees);
//! * each rewrite must satisfy the shape preconditions of the equivalence
//!   theorem it is tagged with — inner-block independence for Theorem 4.1,
//!   adjacency of the linkage chain for Theorem 8.1, the single-correlation
//!   aggregate shape for Theorem 6.1, and so on.
//!
//! This module checks all of that **statically**, before a single tuple
//! flows. [`build_outline`] mirrors the physical operator tree the executor
//! will run — including the optimizer's join reorder — with every operator
//! declaring its *required* and *delivered* properties ([`Prop`]);
//! [`verify_plan`] walks the outline checking required ⊆ delivered on every
//! edge, then layers the plan-level rewrite-rule and threshold checks on
//! top. Violations are structured diagnostics ([`Violation`]: rule id,
//! operator path, expected vs. delivered) rendered by `EXPLAIN VERIFY`; in
//! debug builds [`crate::exec::Executor::run`] refuses to run a plan that
//! fails verification. The naive fallback needs no outline: the naive
//! evaluator *is* the semantics, so there is nothing to check it against.
//!
//! Diagnostic rule ids (see DESIGN.md §10 for the paper mapping):
//!
//! | id | meaning |
//! |---|---|
//! | `V-PROP-SORT` | a required ⪯-sort order is not delivered |
//! | `V-PROP-DEGREE` | a required degree lower bound is not delivered |
//! | `V-PROP-BINDING` | a required binding's columns are not delivered |
//! | `V-DUP-MAX` | the plan root does not deduplicate with max |
//! | `V-OP-DECL` | an operator declared no properties at all |
//! | `V-OP-EDGE` | an operator input edge is missing or non-topological |
//! | `V-THRESH-WIDEN` | threshold push-down widens the `WITH D > z` bound |
//! | `V-THRESH-SCOPE` | a pruning bound inside an anti/aggregate form |
//! | `V-RULE-TAG` | the rewrite tag does not fit the plan family |
//! | `R-T4.1-INDEP` | type N tagged but the inner block is not independent |
//! | `R-T4.2-LINK` | type J/SOME tagged but the levels are not linked |
//! | `R-T5.1-ANTI` | the NOT IN anti form is malformed (Theorem 5.1) |
//! | `R-T6.1-AGG` | the aggregate correlation shape is wrong (Theorem 6.1) |
//! | `R-T7.1-ALL` | the ALL anti form is malformed (Theorem 7.1) |
//! | `R-T8.1-CHAIN` | the chain linkage is not adjacent (Theorem 8.1) |
//! | `R-S7-EXISTS` | the EXISTS flattening is not a two-relation join |

use crate::exec::ExecConfig;
use crate::plan::{
    AggPlan, AntiKind, AntiPlan, FlatPlan, PlanCol, PlanCompare, RewriteRule, UnnestPlan,
};
use crate::stats_histogram::StatsRegistry;
use fuzzy_core::{CmpOp, Degree};
use fuzzy_sql::Threshold;

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

/// A physical property an operator requires from an input or delivers to its
/// consumer.
#[derive(Debug, Clone, PartialEq)]
pub enum Prop {
    /// The stream is ⪯-sorted (Definition 3.1's interval order) on `col` at
    /// the α-cut `alpha`. Orders at different α-cuts are *not* compatible —
    /// the cut changes the interval endpoints — so satisfaction is exact
    /// equality of both the column and the cut.
    Sorted {
        /// The sort column.
        col: PlanCol,
        /// The α-cut the intervals are taken at (0 = support order).
        alpha: Degree,
    },
    /// Every tuple degree in the stream is ≥ the bound (tuples below a
    /// pushed-down threshold have been pruned). A delivered bound `d`
    /// satisfies a required bound `r` iff `d >= r`.
    MinDegree(Degree),
    /// The stream carries the columns of this table binding (attribute
    /// provenance: predicates over the binding are evaluable).
    Binding(String),
    /// Duplicates are eliminated keeping the max degree (fuzzy-OR) — the
    /// projection semantics every plan root must deliver.
    DupMax,
}

impl Prop {
    /// Whether a delivered property satisfies this required one.
    pub fn satisfied_by(&self, delivered: &Prop) -> bool {
        match (self, delivered) {
            (Prop::Sorted { col, alpha }, Prop::Sorted { col: c, alpha: a }) => {
                col == c && alpha == a
            }
            (Prop::MinDegree(req), Prop::MinDegree(got)) => got >= req,
            (Prop::Binding(req), Prop::Binding(got)) => req == got,
            (Prop::DupMax, Prop::DupMax) => true,
            _ => false,
        }
    }

    /// The diagnostic rule id reported when this requirement is unmet.
    pub fn rule_id(&self) -> &'static str {
        match self {
            Prop::Sorted { .. } => "V-PROP-SORT",
            Prop::MinDegree(_) => "V-PROP-DEGREE",
            Prop::Binding(_) => "V-PROP-BINDING",
            Prop::DupMax => "V-DUP-MAX",
        }
    }
}

impl std::fmt::Display for Prop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Prop::Sorted { col, alpha } => write!(f, "sorted⪯({col}@{:.2})", alpha.value()),
            Prop::MinDegree(d) => write!(f, "deg≥{:.2}", d.value()),
            Prop::Binding(b) => write!(f, "cols({b})"),
            Prop::DupMax => f.write_str("dup-max"),
        }
    }
}

// ---------------------------------------------------------------------------
// Operators and outlines
// ---------------------------------------------------------------------------

/// One physical operator of a plan outline, with its property declaration.
/// Requirements name an input slot (an index into `inputs`) plus the
/// property that input's producer must deliver.
#[derive(Debug, Clone)]
pub struct PhysOp {
    /// Display name, mirroring the executor's operator labels.
    pub name: String,
    /// Producer operators, as indices into [`Outline::ops`] (must precede
    /// this operator — outlines are topologically ordered).
    pub inputs: Vec<usize>,
    /// `(input slot, property)` requirements.
    pub requires: Vec<(usize, Prop)>,
    /// Properties this operator's output stream delivers.
    pub delivers: Vec<Prop>,
    declared: bool,
}

impl PhysOp {
    /// An operator with a full property declaration.
    pub fn declare(
        name: impl Into<String>,
        inputs: Vec<usize>,
        requires: Vec<(usize, Prop)>,
        delivers: Vec<Prop>,
    ) -> PhysOp {
        PhysOp { name: name.into(), inputs, requires, delivers, declared: true }
    }

    /// An operator that declares nothing. The verifier rejects these
    /// (`V-OP-DECL`): a new physical operator must state its contract or it
    /// does not run.
    pub fn undeclared(name: impl Into<String>, inputs: Vec<usize>) -> PhysOp {
        PhysOp {
            name: name.into(),
            inputs,
            requires: Vec::new(),
            delivers: Vec::new(),
            declared: false,
        }
    }

    /// Whether the operator declared its properties.
    pub fn is_declared(&self) -> bool {
        self.declared
    }
}

/// The physical operator tree of a plan, in topological (execution) order;
/// the last operator is the plan root (the answer producer).
#[derive(Debug, Clone, Default)]
pub struct Outline {
    /// The operators; edge targets in [`PhysOp::inputs`] index this list.
    pub ops: Vec<PhysOp>,
}

impl Outline {
    /// Checks required ⊆ delivered on every edge, that every operator
    /// declared properties, that edges are topological, and that the root
    /// deduplicates with max. Returns `(checks performed, violations)`.
    pub fn check(&self) -> (usize, Vec<Violation>) {
        let mut checks = 0usize;
        let mut out = Vec::new();
        for (i, op) in self.ops.iter().enumerate() {
            let path = format!("#{i} {}", op.name);
            checks += 1;
            if !op.declared {
                out.push(Violation {
                    rule: "V-OP-DECL",
                    path,
                    expected: "a required/delivered property declaration".into(),
                    delivered: "none (operator declares no properties)".into(),
                });
                continue;
            }
            for (slot, req) in &op.requires {
                checks += 1;
                match op.inputs.get(*slot).copied() {
                    Some(src) if src < i => {
                        let producer = &self.ops[src];
                        if !producer.delivers.iter().any(|d| req.satisfied_by(d)) {
                            out.push(Violation {
                                rule: req.rule_id(),
                                path: path.clone(),
                                expected: req.to_string(),
                                delivered: format!(
                                    "input #{src} {} delivers {}",
                                    producer.name,
                                    render_props(&producer.delivers)
                                ),
                            });
                        }
                    }
                    _ => out.push(Violation {
                        rule: "V-OP-EDGE",
                        path: path.clone(),
                        expected: format!("input slot {slot} wired to an earlier operator"),
                        delivered: "missing or non-topological edge".into(),
                    }),
                }
            }
        }
        // The plan root must deliver fuzzy-OR duplicate elimination.
        if let Some((i, root)) = self.ops.iter().enumerate().next_back() {
            if root.declared {
                checks += 1;
                if !root.delivers.iter().any(|p| matches!(p, Prop::DupMax)) {
                    out.push(Violation {
                        rule: "V-DUP-MAX",
                        path: format!("#{i} {}", root.name),
                        expected: "dup-max (fuzzy-OR duplicate elimination) at the plan root"
                            .into(),
                        delivered: render_props(&root.delivers),
                    });
                }
            }
        }
        (checks, out)
    }
}

/// Renders a delivered-property list for diagnostics.
fn render_props(props: &[Prop]) -> String {
    if props.is_empty() {
        "nothing".to_string()
    } else {
        props.iter().map(|p| p.to_string()).collect::<Vec<_>>().join(", ")
    }
}

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

/// One verification failure: which rule, where in the plan, and the expected
/// vs. delivered contract.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The diagnostic rule id (see the module table).
    pub rule: &'static str,
    /// The operator path (`#3 merge-join +S`) or plan region (`select`).
    pub path: String,
    /// What the rule requires.
    pub expected: String,
    /// What the plan delivers instead.
    pub delivered: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] at {}: expected {}; delivered {}",
            self.rule, self.path, self.expected, self.delivered
        )
    }
}

/// The result of verifying one plan.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// The plan's shape label ([`UnnestPlan::label`]).
    pub plan_label: String,
    /// The paper rule id of the rewrite that produced the plan.
    pub rule_id: &'static str,
    /// The push-down pruning bound the executor will use.
    pub alpha: Degree,
    /// The physical operator outline that was checked.
    pub outline: Outline,
    /// How many individual checks ran.
    pub checks: usize,
    /// All violations found (empty = the plan verifies).
    pub violations: Vec<Violation>,
}

impl VerifyReport {
    /// True iff the plan verified cleanly.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Builds a report from a hand-built outline (used by tests and the
    /// injected-failure golden rendering; production reports come from
    /// [`verify_plan`]).
    pub fn from_outline(
        plan_label: impl Into<String>,
        rule_id: &'static str,
        alpha: Degree,
        outline: Outline,
    ) -> VerifyReport {
        let (checks, violations) = outline.check();
        VerifyReport { plan_label: plan_label.into(), rule_id, alpha, outline, checks, violations }
    }
}

// ---------------------------------------------------------------------------
// Plan-level checks
// ---------------------------------------------------------------------------

/// Verifies a plan: rewrite-rule preconditions, threshold soundness, and the
/// per-edge property analysis of the physical outline the executor will run
/// (join reorder included).
pub fn verify_plan(
    plan: &UnnestPlan,
    config: &ExecConfig,
    stats: Option<&StatsRegistry>,
) -> VerifyReport {
    let crate::exec::lower::Lowered { plan, alpha, outline, .. } =
        crate::exec::lower::lower(plan, config, stats);
    let mut violations = Vec::new();
    let mut checks = check_rewrite(&plan, &mut violations);
    checks += 1;
    if let Some(v) = check_threshold(plan.threshold(), alpha) {
        violations.push(v);
    }
    checks += 1;
    if alpha.is_positive() && !matches!(plan, UnnestPlan::Flat(_)) {
        // MIN over negated degrees: a low-degree pair still lowers its
        // group's degree, so pruning inside anti/agg loses answers.
        violations.push(Violation {
            rule: "V-THRESH-SCOPE",
            path: "plan".into(),
            expected: "no pruning bound inside the MIN-accumulating anti/aggregate forms".into(),
            delivered: format!("α = {:.2}", alpha.value()),
        });
    }
    let (outline_checks, mut outline_violations) = outline.check();
    checks += outline_checks;
    violations.append(&mut outline_violations);
    VerifyReport {
        plan_label: plan.label(),
        rule_id: plan.rule().id(),
        alpha,
        outline,
        checks,
        violations,
    }
}

/// Checks that a push-down bound only ever tightens the `WITH D > z`
/// threshold: `α ≤ z`, and no bound at all without a threshold. A violation
/// is `V-THRESH-WIDEN`.
pub fn check_threshold(threshold: Option<Threshold>, alpha: Degree) -> Option<Violation> {
    if !alpha.is_positive() {
        return None;
    }
    match threshold {
        Some(t) if alpha.value() <= t.z => None,
        Some(t) => Some(Violation {
            rule: "V-THRESH-WIDEN",
            path: "output".into(),
            expected: format!("push-down bound α ≤ z = {:.2}", t.z),
            delivered: format!("α = {:.2}", alpha.value()),
        }),
        None => Some(Violation {
            rule: "V-THRESH-WIDEN",
            path: "output".into(),
            expected: "no push-down bound without a WITH threshold".into(),
            delivered: format!("α = {:.2}", alpha.value()),
        }),
    }
}

fn check_rewrite(plan: &UnnestPlan, out: &mut Vec<Violation>) -> usize {
    match plan {
        UnnestPlan::Flat(p) => check_flat_rule(p, out),
        UnnestPlan::Anti(p) => check_anti_rule(p, out),
        UnnestPlan::Agg(p) => check_agg_rule(p, out),
    }
}

/// How strictly a flat rule constrains cross-level predicates.
enum LevelCheck {
    /// Theorem 4.1: exactly one cross-level predicate, the linkage equality.
    Independent,
    /// Theorem 4.2 (J and SOME): at least one cross-level predicate.
    Linked,
    /// Theorem 8.1: every adjacent pair equality-linked. Extra correlation
    /// predicates reaching a non-adjacent enclosing level are allowed — the
    /// classifier's chain shape admits correlation to *any* enclosing block;
    /// the rewrite only needs the linear linkage to exist.
    Adjacent,
}

fn check_flat_rule(p: &FlatPlan, out: &mut Vec<Violation>) -> usize {
    let mut checks = 1usize;
    match &p.rule {
        RewriteRule::Flat => {}
        RewriteRule::Exists => {
            if p.tables.len() != 2 {
                out.push(Violation {
                    rule: "R-S7-EXISTS",
                    path: "plan".into(),
                    expected: "one outer and one inner relation".into(),
                    delivered: format!("{} tables", p.tables.len()),
                });
            }
        }
        RewriteRule::TypeN { blocks } => {
            checks += check_levels(p, blocks, LevelCheck::Independent, "R-T4.1-INDEP", out);
        }
        RewriteRule::TypeJ { blocks } | RewriteRule::TypeSome { blocks } => {
            checks += check_levels(p, blocks, LevelCheck::Linked, "R-T4.2-LINK", out);
        }
        RewriteRule::Chain { blocks } => {
            checks += check_levels(p, blocks, LevelCheck::Adjacent, "R-T8.1-CHAIN", out);
        }
        other => out.push(Violation {
            rule: "V-RULE-TAG",
            path: "plan".into(),
            expected: "a flat-form rule (none, T4.1, T4.2, T4.2-SOME, T8.1, S7-EXISTS)".into(),
            delivered: other.id().into(),
        }),
    }
    checks
}

/// The nesting level of a binding under a rule's block lists.
fn level_of(blocks: &[Vec<String>], binding: &str) -> Option<usize> {
    blocks.iter().position(|level| level.iter().any(|b| b == binding))
}

fn check_levels(
    p: &FlatPlan,
    blocks: &[Vec<String>],
    mode: LevelCheck,
    id: &'static str,
    out: &mut Vec<Violation>,
) -> usize {
    let mut checks = 0usize;
    // Every plan table must belong to a nesting level.
    for t in &p.tables {
        checks += 1;
        if level_of(blocks, &t.binding).is_none() {
            out.push(Violation {
                rule: id,
                path: format!("table {}", t.binding),
                expected: "every relation assigned to a nesting level".into(),
                delivered: format!("binding {} is in no level of the rule tag", t.binding),
            });
        }
    }
    // Classify each cross-table predicate by the levels it spans.
    let pairs = blocks.len().saturating_sub(1);
    let mut cross_per_pair = vec![0usize; pairs];
    let mut eq_link_per_pair = vec![0usize; pairs];
    let mut cross_total = 0usize;
    let mut cross_eq = 0usize;
    for pred in &p.join_preds {
        checks += 1;
        let mut lo = usize::MAX;
        let mut hi = 0usize;
        for b in pred.bindings() {
            match level_of(blocks, b) {
                Some(l) => {
                    lo = lo.min(l);
                    hi = hi.max(l);
                }
                None => {
                    out.push(Violation {
                        rule: id,
                        path: format!("predicate {pred}"),
                        expected: "predicate bindings drawn from the rule's levels".into(),
                        delivered: format!("binding {b} is in no level"),
                    });
                }
            }
        }
        if lo >= hi {
            continue; // intra-level predicate: always allowed
        }
        cross_total += 1;
        let exact_eq = pred.op == CmpOp::Eq && pred.tolerance.is_none();
        if exact_eq {
            cross_eq += 1;
        }
        if hi - lo >= 2 {
            // A predicate skipping levels is only illegal where the rule
            // demands an independent inner block; chains admit correlation
            // to any enclosing level.
            if matches!(mode, LevelCheck::Independent) {
                out.push(Violation {
                    rule: id,
                    path: format!("predicate {pred}"),
                    expected: "an independent inner block (no level-skipping correlation)".into(),
                    delivered: format!("spans levels {lo}..{hi}"),
                });
            }
        } else {
            cross_per_pair[lo] += 1;
            if exact_eq {
                eq_link_per_pair[lo] += 1;
            }
        }
    }
    match mode {
        LevelCheck::Independent => {
            checks += 1;
            if cross_total != 1 || cross_eq != 1 {
                out.push(Violation {
                    rule: id,
                    path: "plan".into(),
                    expected: "an independent inner block: exactly one cross-level predicate, \
                               the IN linkage equality"
                        .into(),
                    delivered: format!(
                        "{cross_total} cross-level predicates ({cross_eq} exact equalities)"
                    ),
                });
            }
        }
        LevelCheck::Linked => {
            checks += 1;
            if cross_total == 0 {
                out.push(Violation {
                    rule: id,
                    path: "plan".into(),
                    expected: "at least one predicate linking the nesting levels".into(),
                    delivered: "no cross-level predicates".into(),
                });
            }
        }
        LevelCheck::Adjacent => {
            for (i, links) in eq_link_per_pair.iter().enumerate() {
                checks += 1;
                if *links == 0 {
                    out.push(Violation {
                        rule: id,
                        path: format!("levels {i}..{}", i + 1),
                        expected: "an exact-equality linkage between every adjacent level pair"
                            .into(),
                        delivered: format!(
                            "{} cross-level predicates, none an exact equality",
                            cross_per_pair[i]
                        ),
                    });
                }
            }
        }
    }
    checks
}

fn check_anti_rule(p: &AntiPlan, out: &mut Vec<Violation>) -> usize {
    let mut checks = 1usize;
    let (expected_rule, id) = match p.kind {
        AntiKind::Exclusion => (RewriteRule::Exclusion, "R-T5.1-ANTI"),
        AntiKind::All { .. } => (RewriteRule::All, "R-T7.1-ALL"),
    };
    if p.rule != expected_rule {
        out.push(Violation {
            rule: "V-RULE-TAG",
            path: "plan".into(),
            expected: format!("rule {} for this anti form", expected_rule.id()),
            delivered: p.rule.id().into(),
        });
    }
    // The negated conjunction may reference the two relations only.
    for pred in &p.pair_preds {
        checks += 1;
        if pred.bindings().iter().any(|b| *b != p.outer.binding && *b != p.inner.binding) {
            out.push(Violation {
                rule: id,
                path: format!("predicate {pred}"),
                expected: "references to the outer/inner bindings only".into(),
                delivered: pred.to_string(),
            });
        }
    }
    // A merge window must be an outer/inner exact equality from the negated
    // conjunction: similarity predicates widen matching past support
    // intersection, so window-scanning them is unsound.
    checks += 1;
    if let Some((o, i)) = &p.window {
        let backed = o.binding == p.outer.binding
            && i.binding == p.inner.binding
            && p.pair_preds.iter().any(|pr| window_backed(pr, o, i));
        if !backed {
            out.push(Violation {
                rule: id,
                path: "window".into(),
                expected: "a merge window on an outer/inner exact equality of the negated \
                           conjunction"
                    .into(),
                delivered: format!("{o} = {i}"),
            });
        }
    }
    if let AntiKind::All { lhs, rhs, .. } = &p.kind {
        checks += 1;
        let lhs_ok = lhs.as_col().map(|c| c.binding == p.outer.binding).unwrap_or(true);
        let rhs_ok = rhs.as_col().map(|c| c.binding == p.inner.binding).unwrap_or(false);
        if !lhs_ok || !rhs_ok {
            out.push(Violation {
                rule: "R-T7.1-ALL",
                path: "quantified comparison".into(),
                expected: "R.Y op ALL(S.Z): outer lhs, inner rhs".into(),
                delivered: format!("{lhs} op {rhs}"),
            });
        }
    }
    checks += 1;
    if p.select.iter().any(|c| c.binding != p.outer.binding) {
        out.push(Violation {
            rule: id,
            path: "select".into(),
            expected: "projection over the outer relation only".into(),
            delivered: render_cols(&p.select),
        });
    }
    checks
}

/// True iff the predicate is the exact equality `(o, i)` (either
/// orientation) that licenses the anti/agg merge window.
fn window_backed(pred: &PlanCompare, o: &PlanCol, i: &PlanCol) -> bool {
    if pred.op != CmpOp::Eq || pred.tolerance.is_some() {
        return false;
    }
    match (pred.lhs.as_col(), pred.rhs.as_col()) {
        (Some(l), Some(r)) => (l == o && r == i) || (l == i && r == o),
        _ => false,
    }
}

fn check_agg_rule(p: &AggPlan, out: &mut Vec<Violation>) -> usize {
    let checks = 5usize;
    if p.rule != RewriteRule::Aggregate {
        out.push(Violation {
            rule: "V-RULE-TAG",
            path: "plan".into(),
            expected: "rule T6.1 for the aggregate form".into(),
            delivered: p.rule.id().into(),
        });
    }
    if p.agg.1.binding != p.inner.binding {
        out.push(Violation {
            rule: "R-T6.1-AGG",
            path: "aggregate".into(),
            expected: "the aggregate input drawn from the inner relation".into(),
            delivered: p.agg.1.to_string(),
        });
    }
    if let Some((u, _, v)) = &p.corr {
        if u.binding != p.outer.binding || v.binding != p.inner.binding {
            out.push(Violation {
                rule: "R-T6.1-AGG",
                path: "correlation".into(),
                expected: "the single correlation S.V op₂ R.U linking inner to outer".into(),
                delivered: format!("{v} op {u}"),
            });
        }
    }
    if let Some(c) = p.compare.0.as_col() {
        if c.binding != p.outer.binding {
            out.push(Violation {
                rule: "R-T6.1-AGG",
                path: "comparison".into(),
                expected: "the compared operand R.Y drawn from the outer relation".into(),
                delivered: c.to_string(),
            });
        }
    }
    if p.select.iter().any(|c| c.binding != p.outer.binding) {
        out.push(Violation {
            rule: "R-T6.1-AGG",
            path: "select".into(),
            expected: "projection over the outer relation only".into(),
            delivered: render_cols(&p.select),
        });
    }
    checks
}

fn render_cols(cols: &[PlanCol]) -> String {
    cols.iter().map(|c| c.to_string()).collect::<Vec<_>>().join(", ")
}

// ---------------------------------------------------------------------------
// Outline access
// ---------------------------------------------------------------------------

/// The physical outline the executor will run for this plan under this
/// configuration. Since the operator-pipeline refactor this is no longer a
/// mirror: the lowering pass (`crate::exec::lower`) builds the operator
/// tree once, each operator carries its own [`PhysOp`] declaration, and this
/// function simply returns those declarations — the tree that is verified is
/// the tree that runs. Pinned by the `EXPLAIN VERIFY` golden tests.
pub fn build_outline(
    plan: &UnnestPlan,
    config: &ExecConfig,
    stats: Option<&StatsRegistry>,
) -> Outline {
    crate::exec::lower::lower(plan, config, stats).outline
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PlanOperand, PlanTable};
    use fuzzy_rel::{AttrType, Schema, StoredTable};
    use fuzzy_storage::SimDisk;

    fn col(b: &str, attr: usize) -> PlanCol {
        PlanCol { binding: b.into(), attr }
    }

    fn push(ops: &mut Vec<PhysOp>, op: PhysOp) -> usize {
        ops.push(op);
        ops.len() - 1
    }

    fn cmp(l: PlanCol, op: CmpOp, r: PlanCol) -> PlanCompare {
        PlanCompare::new(PlanOperand::Col(l), op, PlanOperand::Col(r))
    }

    fn table(disk: &SimDisk, binding: &str) -> PlanTable {
        let schema = Schema::of(&[("ID", AttrType::Number), ("X", AttrType::Number)]);
        let t = StoredTable::create(disk, format!("t_{binding}"), schema);
        PlanTable { binding: binding.into(), table: t, local_preds: Vec::new() }
    }

    fn flat_two(disk: &SimDisk, rule: RewriteRule, preds: Vec<PlanCompare>) -> FlatPlan {
        FlatPlan {
            tables: vec![table(disk, "R"), table(disk, "S")],
            join_preds: preds,
            select: vec![col("R", 0)],
            threshold: None,
            rule,
        }
    }

    #[test]
    fn prop_satisfaction() {
        let s = Prop::Sorted { col: col("R", 1), alpha: Degree::ZERO };
        assert!(s.satisfied_by(&Prop::Sorted { col: col("R", 1), alpha: Degree::ZERO }));
        // A sort at a different α-cut is a different order.
        assert!(!s.satisfied_by(&Prop::Sorted { col: col("R", 1), alpha: Degree::ONE }));
        assert!(!s.satisfied_by(&Prop::Sorted { col: col("R", 2), alpha: Degree::ZERO }));
        // Degree bounds satisfy downward.
        let need = Prop::MinDegree(Degree::clamped(0.3));
        assert!(need.satisfied_by(&Prop::MinDegree(Degree::clamped(0.5))));
        assert!(!need.satisfied_by(&Prop::MinDegree(Degree::ZERO)));
        assert!(!need.satisfied_by(&Prop::DupMax));
    }

    #[test]
    fn unsorted_merge_input_is_rejected() {
        // A merge-join wired straight to unsorted scans must fail with
        // V-PROP-SORT on both inputs.
        let mut ops = Vec::new();
        let r = push(
            &mut ops,
            PhysOp::declare(
                "scan R",
                vec![],
                vec![],
                vec![Prop::Binding("R".into()), Prop::MinDegree(Degree::ZERO)],
            ),
        );
        let s = push(
            &mut ops,
            PhysOp::declare(
                "scan S",
                vec![],
                vec![],
                vec![Prop::Binding("S".into()), Prop::MinDegree(Degree::ZERO)],
            ),
        );
        push(
            &mut ops,
            PhysOp::declare(
                "merge-join +S",
                vec![r, s],
                vec![
                    (0, Prop::Sorted { col: col("R", 1), alpha: Degree::ZERO }),
                    (1, Prop::Sorted { col: col("S", 1), alpha: Degree::ZERO }),
                ],
                vec![Prop::Binding("R".into()), Prop::Binding("S".into()), Prop::DupMax],
            ),
        );
        let (_, violations) = Outline { ops }.check();
        let sorts: Vec<_> = violations.iter().filter(|v| v.rule == "V-PROP-SORT").collect();
        assert_eq!(sorts.len(), 2, "{violations:?}");
    }

    #[test]
    fn undeclared_operator_is_rejected() {
        let mut ops = Vec::new();
        push(&mut ops, PhysOp::undeclared("mystery-op", vec![]));
        let (_, violations) = Outline { ops }.check();
        assert!(violations.iter().any(|v| v.rule == "V-OP-DECL"), "{violations:?}");
        assert!(!PhysOp::undeclared("x", vec![]).is_declared());
    }

    #[test]
    fn root_without_dedup_is_rejected() {
        let mut ops = Vec::new();
        push(&mut ops, PhysOp::declare("scan R", vec![], vec![], vec![Prop::Binding("R".into())]));
        let (_, violations) = Outline { ops }.check();
        assert!(violations.iter().any(|v| v.rule == "V-DUP-MAX"), "{violations:?}");
    }

    #[test]
    fn widened_threshold_is_rejected() {
        // α above z widens the answer bound.
        let t = Threshold { z: 0.3, strict: true };
        let v = check_threshold(Some(t), Degree::clamped(0.5));
        assert_eq!(v.map(|v| v.rule), Some("V-THRESH-WIDEN"));
        // A bound with no threshold at all is also a widening.
        let v = check_threshold(None, Degree::clamped(0.1));
        assert_eq!(v.map(|v| v.rule), Some("V-THRESH-WIDEN"));
        // Tightening (α ≤ z) and no-op bounds are fine.
        assert!(check_threshold(Some(t), Degree::clamped(0.3)).is_none());
        assert!(check_threshold(None, Degree::ZERO).is_none());
    }

    #[test]
    fn mistagged_type_n_with_correlated_inner_is_rejected() {
        // Tagged N (independent inner block) but carrying a second
        // cross-level predicate — the correlation that makes it type J.
        let disk = SimDisk::with_default_page_size();
        let plan = flat_two(
            &disk,
            RewriteRule::TypeN { blocks: vec![vec!["R".into()], vec!["S".into()]] },
            vec![
                cmp(col("R", 1), CmpOp::Eq, col("S", 1)),
                cmp(col("R", 0), CmpOp::Eq, col("S", 0)),
            ],
        );
        let report = verify_plan(&UnnestPlan::Flat(plan), &ExecConfig::default(), None);
        assert!(
            report.violations.iter().any(|v| v.rule == "R-T4.1-INDEP"),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn correctly_tagged_plans_verify() {
        let disk = SimDisk::with_default_page_size();
        let n = flat_two(
            &disk,
            RewriteRule::TypeN { blocks: vec![vec!["R".into()], vec!["S".into()]] },
            vec![cmp(col("R", 1), CmpOp::Eq, col("S", 1))],
        );
        let report = verify_plan(&UnnestPlan::Flat(n), &ExecConfig::default(), None);
        assert!(report.ok(), "{:?}", report.violations);
        let j = flat_two(
            &disk,
            RewriteRule::TypeJ { blocks: vec![vec!["R".into()], vec!["S".into()]] },
            vec![
                cmp(col("R", 1), CmpOp::Eq, col("S", 1)),
                cmp(col("R", 0), CmpOp::Eq, col("S", 0)),
            ],
        );
        let report = verify_plan(&UnnestPlan::Flat(j), &ExecConfig::default(), None);
        assert!(report.ok(), "{:?}", report.violations);
    }

    #[test]
    fn similarity_predicate_is_not_a_driver() {
        // A flat join whose only cross predicate is a similarity: the
        // outline must fall back to a nested loop, never a merge driven by
        // the tolerance-widened predicate.
        let disk = SimDisk::with_default_page_size();
        let mut pred = cmp(col("R", 1), CmpOp::Eq, col("S", 1));
        pred.tolerance = Some(5.0);
        let plan = flat_two(&disk, RewriteRule::Flat, vec![pred]);
        let outline = build_outline(&UnnestPlan::Flat(plan), &ExecConfig::default(), None);
        assert!(outline.ops.iter().any(|o| o.name.starts_with("nested-loop")));
        assert!(!outline.ops.iter().any(|o| o.name.starts_with("merge-join")));
    }

    #[test]
    fn type_j_without_linkage_is_rejected() {
        let disk = SimDisk::with_default_page_size();
        let plan = flat_two(
            &disk,
            RewriteRule::TypeJ { blocks: vec![vec!["R".into()], vec!["S".into()]] },
            vec![],
        );
        let report = verify_plan(&UnnestPlan::Flat(plan), &ExecConfig::default(), None);
        assert!(report.violations.iter().any(|v| v.rule == "R-T4.2-LINK"));
    }

    #[test]
    fn anti_rule_on_flat_plan_is_a_tag_mismatch() {
        let disk = SimDisk::with_default_page_size();
        let plan = flat_two(&disk, RewriteRule::Exclusion, vec![]);
        let report = verify_plan(&UnnestPlan::Flat(plan), &ExecConfig::default(), None);
        assert!(report.violations.iter().any(|v| v.rule == "V-RULE-TAG"));
    }
}
