//! Join-order optimization for flat plans.
//!
//! Section 8 of the paper notes that "to evaluate Query Q′_K, an optimal
//! join order may be determined by using, say, a dynamic programming method,
//! to minimize the sizes of the intermediate relations". This module
//! implements that step for the K-way flat plans the unnesting produces: a
//! greedy left-deep ordering over the equi-join graph (greedy is within a
//! constant of DP for the chain-shaped graphs unnesting yields, and the
//! plans here join on at most a handful of relations).
//!
//! The ordering minimizes estimated intermediate cardinalities:
//!
//! * base cardinality = stored tuple count discounted by a fixed selectivity
//!   per local predicate (the engine does not keep value histograms; the
//!   discount only needs to *rank* tables);
//! * only tables connected to the already-joined set by an equality
//!   predicate are candidates (otherwise the step degenerates to the
//!   nested-loop cross product, which the order should avoid whenever the
//!   join graph allows);
//! * ties break toward the original FROM order for plan stability.
//!
//! Reordering is semantically free: plans reference columns by
//! `(binding, attribute)`, so select lists and predicates are unaffected.

use crate::plan::{FlatPlan, PlanOperand};
use crate::stats_histogram::StatsRegistry;

/// Assumed selectivity of one local predicate when no statistics exist
/// (used for ranking only).
const LOCAL_PRED_SELECTIVITY: f64 = 0.5;

/// Estimated cardinality of a plan table after its local predicates, using
/// column histograms when a registry is supplied (the statistics-aware step
/// a real optimizer would take before Section 8's join ordering).
fn estimate(t: &crate::plan::PlanTable, stats: Option<&StatsRegistry>) -> f64 {
    let mut est = t.table.num_tuples() as f64;
    for p in &t.local_preds {
        let sel = stats
            .and_then(|reg| {
                // Histogram estimates apply to column-vs-constant predicates.
                let (col, probe) = match (&p.lhs, &p.rhs) {
                    (PlanOperand::Col(c), PlanOperand::Const(v)) => (c, v),
                    (PlanOperand::Const(v), PlanOperand::Col(c)) => (c, v),
                    _ => return None,
                };
                let pool = fuzzy_storage::BufferPool::new(t.table.file().disk(), 2);
                let h = reg.histogram_for(&t.table, col.attr, &pool).ok()?;
                // Similarity predicates behave like widened equality.
                let op = p.op;
                Some(h.selectivity(op, probe))
            })
            .unwrap_or(LOCAL_PRED_SELECTIVITY);
        est *= sel;
    }
    est
}

/// [`reorder_joins_with`] without statistics (heuristic discounts only).
pub fn reorder_joins(plan: &mut FlatPlan) -> bool {
    reorder_joins_with(plan, None)
}

/// Reorders `plan.tables` into a greedy left-deep order that keeps every
/// join step connected by an equality predicate where possible, preferring
/// small (estimated) relations early. Returns true if the order changed.
pub fn reorder_joins_with(plan: &mut FlatPlan, stats: Option<&StatsRegistry>) -> bool {
    let n = plan.tables.len();
    if n <= 2 {
        // With two tables the merge-join sorts both regardless; keeping the
        // outer block's relation first preserves the paper's presentation.
        return false;
    }
    // A pushed-down `WITH D > z` threshold prunes graded survivors of local
    // predicates before they are sorted (the executor's filter_scan and join
    // emission both apply it), so discount each predicate-bearing table by
    // the mass a threshold removes. Tables without local predicates keep
    // their full-degree base tuples and are unaffected.
    let threshold_factor = match plan.threshold {
        Some(t) => (1.0 - t.z).clamp(0.05, 1.0),
        None => 1.0,
    };
    let sizes: Vec<f64> = plan
        .tables
        .iter()
        .map(|t| {
            let est = estimate(t, stats);
            if t.local_preds.is_empty() {
                est
            } else {
                est * threshold_factor
            }
        })
        .collect();

    // Adjacency by equality predicates.
    let connected = |bound: &[usize], candidate: usize| -> bool {
        plan.join_preds.iter().any(|p| {
            bound.iter().any(|&b| {
                p.is_equi_between(&plan.tables[b].binding, &plan.tables[candidate].binding)
            })
        })
    };

    // Start from the smallest table.
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let first = (0..n)
        .min_by(|&a, &b| sizes[a].partial_cmp(&sizes[b]).expect("finite").then(a.cmp(&b)))
        .expect("non-empty");
    order.push(first);
    let mut remaining: Vec<usize> = (0..n).filter(|&i| i != first).collect();

    while !remaining.is_empty() {
        // Prefer connected candidates; among them the smallest.
        let pick = remaining
            .iter()
            .copied()
            .filter(|&c| connected(&order, c))
            .min_by(|&a, &b| sizes[a].partial_cmp(&sizes[b]).expect("finite").then(a.cmp(&b)))
            .or_else(|| {
                remaining.iter().copied().min_by(|&a, &b| {
                    sizes[a].partial_cmp(&sizes[b]).expect("finite").then(a.cmp(&b))
                })
            })
            .expect("remaining non-empty");
        order.push(pick);
        remaining.retain(|&i| i != pick);
    }

    if order.iter().copied().eq(0..n) {
        return false;
    }
    let mut tables = std::mem::take(&mut plan.tables);
    // Drain in the chosen order without cloning stored tables.
    let mut slots: Vec<Option<crate::plan::PlanTable>> = tables.drain(..).map(Some).collect();
    plan.tables =
        order.into_iter().map(|i| slots[i].take().expect("each index picked once")).collect();
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PlanCol, PlanCompare, PlanOperand, PlanTable, RewriteRule};
    use fuzzy_core::{CmpOp, Value};
    use fuzzy_rel::{AttrType, Schema, StoredTable, Tuple};
    use fuzzy_storage::SimDisk;

    fn plan_table(disk: &SimDisk, name: &str, rows: usize, preds: usize) -> PlanTable {
        let t = StoredTable::create(disk, name, Schema::of(&[("X", AttrType::Number)]));
        t.load((0..rows).map(|i| Tuple::full(vec![Value::number(i as f64)]))).unwrap();
        let local_preds = (0..preds)
            .map(|_| {
                PlanCompare::new(
                    PlanOperand::Col(PlanCol { binding: name.into(), attr: 0 }),
                    CmpOp::Ge,
                    PlanOperand::Const(Value::number(0.0)),
                )
            })
            .collect();
        PlanTable { binding: name.into(), table: t, local_preds }
    }

    fn equi(a: &str, b: &str) -> PlanCompare {
        PlanCompare::new(
            PlanOperand::Col(PlanCol { binding: a.into(), attr: 0 }),
            CmpOp::Eq,
            PlanOperand::Col(PlanCol { binding: b.into(), attr: 0 }),
        )
    }

    fn bindings(p: &FlatPlan) -> Vec<&str> {
        p.tables.iter().map(|t| t.binding.as_str()).collect()
    }

    #[test]
    fn two_table_plans_are_left_alone() {
        let disk = SimDisk::with_default_page_size();
        let mut plan = FlatPlan {
            tables: vec![plan_table(&disk, "A", 100, 0), plan_table(&disk, "B", 1, 0)],
            join_preds: vec![equi("A", "B")],
            select: vec![],
            threshold: None,
            rule: RewriteRule::Flat,
        };
        assert!(!reorder_joins(&mut plan));
        assert_eq!(bindings(&plan), ["A", "B"]);
    }

    #[test]
    fn smallest_table_leads() {
        let disk = SimDisk::with_default_page_size();
        let mut plan = FlatPlan {
            tables: vec![
                plan_table(&disk, "A", 1000, 0),
                plan_table(&disk, "B", 10, 0),
                plan_table(&disk, "C", 100, 0),
            ],
            join_preds: vec![equi("A", "B"), equi("B", "C"), equi("A", "C")],
            select: vec![],
            threshold: None,
            rule: RewriteRule::Flat,
        };
        assert!(reorder_joins(&mut plan));
        assert_eq!(bindings(&plan), ["B", "C", "A"]);
    }

    #[test]
    fn connectivity_beats_size() {
        // D is tiny but only connected to A; the chain B–C–A must not be
        // broken by jumping to D early... since D connects only to A, and we
        // start from D (smallest), the next connected pick is A.
        let disk = SimDisk::with_default_page_size();
        let mut plan = FlatPlan {
            tables: vec![
                plan_table(&disk, "A", 500, 0),
                plan_table(&disk, "B", 50, 0),
                plan_table(&disk, "C", 200, 0),
                plan_table(&disk, "D", 5, 0),
            ],
            join_preds: vec![equi("A", "D"), equi("A", "C"), equi("B", "C")],
            select: vec![],
            threshold: None,
            rule: RewriteRule::Flat,
        };
        assert!(reorder_joins(&mut plan));
        let order = bindings(&plan);
        assert_eq!(order[0], "D");
        assert_eq!(order[1], "A", "only A connects to D");
        // Each later step stays connected.
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn local_predicates_discount_size() {
        let disk = SimDisk::with_default_page_size();
        // B has 60 rows but two predicates: estimate 15 < A's 20.
        let mut plan = FlatPlan {
            tables: vec![
                plan_table(&disk, "A", 20, 0),
                plan_table(&disk, "B", 60, 2),
                plan_table(&disk, "C", 100, 0),
            ],
            join_preds: vec![equi("A", "B"), equi("B", "C")],
            select: vec![],
            threshold: None,
            rule: RewriteRule::Flat,
        };
        assert!(reorder_joins(&mut plan));
        assert_eq!(bindings(&plan)[0], "B");
    }

    #[test]
    fn already_optimal_order_reports_unchanged() {
        let disk = SimDisk::with_default_page_size();
        let mut plan = FlatPlan {
            tables: vec![
                plan_table(&disk, "A", 1, 0),
                plan_table(&disk, "B", 10, 0),
                plan_table(&disk, "C", 100, 0),
            ],
            join_preds: vec![equi("A", "B"), equi("B", "C")],
            select: vec![],
            threshold: None,
            rule: RewriteRule::Flat,
        };
        assert!(!reorder_joins(&mut plan));
        assert_eq!(bindings(&plan), ["A", "B", "C"]);
    }
}
