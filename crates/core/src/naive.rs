//! The naive, semantics-faithful evaluator for (arbitrarily nested) Fuzzy SQL.
//!
//! This module implements the execution semantics of Sections 2 and 4–8
//! literally: for every combination of FROM tuples, the satisfaction degree
//! of the WHERE conjunction is the fuzzy AND (min) of the tuple membership
//! degrees and all predicate degrees; nested blocks are re-evaluated for
//! every outer tuple; answers are duplicate-eliminated by fuzzy OR (max).
//!
//! It serves two purposes:
//!
//! 1. it is the reference the unnesting transformations are proven equivalent
//!    to (Theorems 4.1–8.1) — the test suite checks the physical unnested
//!    plans produce *identical* fuzzy relations;
//! 2. with its `O(∏ n_i)` behaviour it is the "naive evaluation method based
//!    on [the query's] semantics" whose cost the paper's Section 1 warns
//!    about. (The paper's measured baseline, the block nested-loop join, is
//!    in [`crate::nested_loop`].)

use crate::error::{EngineError, Result};
use fuzzy_core::{arith, CmpOp, Degree, Trapezoid, Value, Vocabulary};
use fuzzy_rel::{AttrType, Attribute, Catalog, Relation, Schema, Tuple};
use fuzzy_sql::{
    AggFunc, ColumnRef, HavingOperand, Operand, OrderKey, Predicate, Quantifier, Query, SelectItem,
};
use fuzzy_storage::BufferPool;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;

/// One table binding visible to predicate evaluation.
#[derive(Debug, Clone)]
struct Frame {
    binding: String,
    schema: Schema,
    tuple: Tuple,
}

/// The naive evaluator. Holds a materialization cache so each stored table is
/// read once per query, while the evaluation itself remains the naive
/// cross-product/nested re-evaluation.
pub struct NaiveEvaluator<'a> {
    catalog: &'a Catalog,
    pool: &'a BufferPool,
    cache: RefCell<HashMap<String, Relation>>,
    comparisons: Cell<u64>,
}

impl<'a> NaiveEvaluator<'a> {
    /// Creates an evaluator over a catalog; page reads go through `pool`.
    pub fn new(catalog: &'a Catalog, pool: &'a BufferPool) -> NaiveEvaluator<'a> {
        NaiveEvaluator {
            catalog,
            pool,
            cache: RefCell::new(HashMap::new()),
            comparisons: Cell::new(0),
        }
    }

    /// Value-level fuzzy comparisons evaluated so far — the same unit the
    /// physical executor's `fuzzy_comparisons` counter uses (one per
    /// `compare`/`compare_similar` invocation), so `EXPLAIN ANALYZE` numbers
    /// are comparable across strategies.
    pub fn comparisons(&self) -> u64 {
        self.comparisons.get()
    }

    /// Evaluates a top-level query to a fuzzy relation.
    pub fn eval(&self, q: &Query) -> Result<Relation> {
        let mut env = Vec::new();
        self.eval_block(q, &mut env)
    }

    fn materialize(&self, table: &str) -> Result<Relation> {
        if let Some(rel) = self.cache.borrow().get(&table.to_lowercase()) {
            return Ok(rel.clone());
        }
        let stored = self
            .catalog
            .table(table)
            .ok_or_else(|| EngineError::Bind(format!("unknown table {table:?}")))?;
        let rel = stored.to_relation(self.pool)?;
        self.cache.borrow_mut().insert(table.to_lowercase(), rel.clone());
        Ok(rel)
    }

    fn eval_block(&self, q: &Query, env: &mut Vec<Frame>) -> Result<Relation> {
        // Resolve FROM relations.
        let mut rels: Vec<(String, Relation)> = Vec::with_capacity(q.from.len());
        for t in &q.from {
            rels.push((t.binding_name().to_string(), self.materialize(&t.table)?));
        }
        let grouped = !q.group_by.is_empty()
            || !q.having.is_empty()
            || q.select.iter().any(|s| !matches!(s, SelectItem::Column(_)));

        // Row-level threshold: rows must be members (D > 0) unless an
        // explicit WITH D >= 0 keeps zero-degree rows for grouping (the JXT
        // trick of Section 5).
        let (z, strict) = match q.with_threshold {
            Some(t) => (Degree::new(t.z).map_err(EngineError::Fuzzy)?, t.strict),
            None => (Degree::ZERO, true),
        };

        let mut rows: Vec<(Vec<Value>, Degree)> = Vec::new();
        self.cross_product(env, &rels, 0, &mut |this, env| {
            let mut d = Degree::ONE;
            for f in env.iter().rev().take(rels.len()) {
                d = d.and(f.tuple.degree);
            }
            for p in &q.predicates {
                if !d.is_positive() && strict {
                    break; // cannot recover under fuzzy AND
                }
                d = d.and(this.eval_predicate(p, env)?);
            }
            if d.meets(z, strict) {
                let values = if grouped {
                    // Keep group keys and aggregate inputs; aggregation
                    // happens after enumeration.
                    group_row_values(q, env)?
                } else {
                    q.select
                        .iter()
                        .map(|item| match item {
                            SelectItem::Column(c) => resolve_column(env, c).cloned(),
                            _ => unreachable!("grouped handled above"),
                        })
                        .collect::<Result<Vec<_>>>()?
                };
                rows.push((values, d));
            }
            Ok(())
        })?;

        let schema = output_schema(q, &rels, self)?;
        let answer = if grouped {
            aggregate_rows(q, schema, rows, self.catalog.vocabulary())?
        } else {
            let mut rel = Relation::empty(schema);
            for (values, d) in rows {
                rel.insert_dedup_max(Tuple::new(values, d));
            }
            rel
        };
        // The WITH clause thresholds the final answer; for z = 0 strict this
        // is the membership criterion already enforced.
        let mut answer = if z > Degree::ZERO { answer.with_threshold(z, strict) } else { answer };
        // ORDER BY / LIMIT are presentation steps on the block's answer.
        if let Some(order) = &q.order_by {
            answer = match &order.key {
                OrderKey::Degree => answer.ordered_by_degree(order.descending),
                OrderKey::Column(c) => {
                    let idx = answer.schema().index_of(&c.column).ok_or_else(|| {
                        EngineError::Bind(format!("ORDER BY column {c} not in the select list"))
                    })?;
                    answer.ordered_by_column(idx, order.descending)
                }
            };
        }
        if let Some(n) = q.limit {
            answer = answer.limited(n);
        }
        Ok(answer)
    }

    /// Recursively enumerates the cross product of the FROM relations,
    /// pushing each combination as frames onto `env`.
    fn cross_product(
        &self,
        env: &mut Vec<Frame>,
        rels: &[(String, Relation)],
        idx: usize,
        f: &mut dyn FnMut(&Self, &mut Vec<Frame>) -> Result<()>,
    ) -> Result<()> {
        if idx == rels.len() {
            return f(self, env);
        }
        let (binding, rel) = &rels[idx];
        for t in rel.tuples() {
            env.push(Frame {
                binding: binding.clone(),
                schema: rel.schema().clone(),
                tuple: t.clone(),
            });
            let r = self.cross_product(env, rels, idx + 1, f);
            env.pop();
            r?;
        }
        Ok(())
    }

    /// Degree to which a single tuple of `table` satisfies a predicate
    /// conjunction (sub-queries re-evaluated against the catalog). Used by
    /// DELETE/UPDATE matching; the tuple's own membership degree is *not*
    /// included — matching is about the condition, as in the paper's
    /// predicate semantics.
    pub fn match_degree(
        &self,
        binding: &str,
        schema: &Schema,
        tuple: &Tuple,
        preds: &[Predicate],
    ) -> Result<Degree> {
        let mut env = vec![Frame {
            binding: binding.to_string(),
            schema: schema.clone(),
            tuple: tuple.clone(),
        }];
        let mut d = Degree::ONE;
        for p in preds {
            d = d.and(self.eval_predicate(p, &mut env)?);
            if !d.is_positive() {
                break;
            }
        }
        Ok(d)
    }

    fn eval_predicate(&self, p: &Predicate, env: &mut Vec<Frame>) -> Result<Degree> {
        match p {
            Predicate::Compare { lhs, op, rhs } => {
                let (l, r) = resolve_pair(env, lhs, rhs, self.catalog.vocabulary())?;
                self.comparisons.set(self.comparisons.get() + 1);
                Ok(l.compare(*op, &r))
            }
            Predicate::Similar { lhs, rhs, tolerance } => {
                let (l, r) = resolve_pair(env, lhs, rhs, self.catalog.vocabulary())?;
                self.comparisons.set(self.comparisons.get() + 1);
                Ok(l.compare_similar(&r, *tolerance))
            }
            Predicate::In { lhs, negated, query } => {
                let t = self.eval_block(query, env)?;
                single_column(&t)?;
                let v = resolve_operand_vs_relation(env, lhs, &t, self.catalog.vocabulary())?;
                self.comparisons.set(self.comparisons.get() + t.len() as u64);
                let d_in = Degree::any(
                    t.tuples().iter().map(|z| z.degree.and(v.compare(CmpOp::Eq, &z.values[0]))),
                );
                Ok(if *negated { d_in.not() } else { d_in })
            }
            Predicate::Quantified { lhs, op, quantifier, query } => {
                let t = self.eval_block(query, env)?;
                single_column(&t)?;
                let v = resolve_operand_vs_relation(env, lhs, &t, self.catalog.vocabulary())?;
                self.comparisons.set(self.comparisons.get() + t.len() as u64);
                match quantifier {
                    // d(v op ALL F) = 1 − max_z min(μ_F(z), 1 − d(v op z)); 1 on empty F.
                    Quantifier::All => Ok(Degree::any(
                        t.tuples().iter().map(|z| z.degree.and(v.compare(*op, &z.values[0]).not())),
                    )
                    .not()),
                    // d(v op SOME F) = max_z min(μ_F(z), d(v op z)); 0 on empty F.
                    Quantifier::Some => Ok(Degree::any(
                        t.tuples().iter().map(|z| z.degree.and(v.compare(*op, &z.values[0]))),
                    )),
                }
            }
            Predicate::AggSubquery { lhs, op, query } => {
                let t = self.eval_block(query, env)?;
                single_column(&t)?;
                if t.len() > 1 {
                    return Err(EngineError::Unsupported(format!(
                        "scalar sub-query returned {} rows (a grouped sub-query \
                         cannot feed a comparison)",
                        t.len()
                    )));
                }
                match t.tuples().first() {
                    // Empty aggregate (non-COUNT): NULL, nothing satisfies.
                    None => Ok(Degree::ZERO),
                    Some(a) => {
                        let v =
                            resolve_operand_vs_relation(env, lhs, &t, self.catalog.vocabulary())?;
                        self.comparisons.set(self.comparisons.get() + 1);
                        // D(A(r)) participates in the conjunction; Fuzzy SQL
                        // fixes it at 1 but the degree is carried regardless.
                        Ok(a.degree.and(v.compare(*op, &a.values[0])))
                    }
                }
            }
            Predicate::Exists { negated, query } => {
                let t = self.eval_block(query, env)?;
                let d = Degree::any(t.tuples().iter().map(|z| z.degree));
                Ok(if *negated { d.not() } else { d })
            }
        }
    }
}

/// Values captured per row for a grouped/aggregated query: the GROUP BY keys
/// followed by every select-list aggregate's input column, followed by every
/// HAVING aggregate's input column.
fn group_row_values(q: &Query, env: &[Frame]) -> Result<Vec<Value>> {
    let mut out = Vec::new();
    for c in &q.group_by {
        out.push(resolve_column(env, c)?.clone());
    }
    for item in &q.select {
        match item {
            SelectItem::Aggregate(_, c) => out.push(resolve_column(env, c)?.clone()),
            SelectItem::Column(_) | SelectItem::MinDegree | SelectItem::CountStar => {}
        }
    }
    for h in &q.having {
        for o in [&h.lhs, &h.rhs] {
            if let HavingOperand::Aggregate(_, c) = o {
                out.push(resolve_column(env, c)?.clone());
            }
        }
    }
    Ok(out)
}

/// Performs grouping and aggregation over captured rows.
fn aggregate_rows(
    q: &Query,
    schema: Schema,
    rows: Vec<(Vec<Value>, Degree)>,
    vocab: &Vocabulary,
) -> Result<Relation> {
    let key_len = q.group_by.len();
    // Group rows by key values, preserving first-seen order.
    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut groups: HashMap<Vec<Value>, Vec<(Vec<Value>, Degree)>> = HashMap::new();
    for (values, d) in rows {
        let key = values[..key_len].to_vec();
        if !groups.contains_key(&key) {
            order.push(key.clone());
        }
        groups.entry(key).or_default().push((values, d));
    }
    // A group-by-less aggregate query always produces exactly one group,
    // possibly empty.
    if key_len == 0 && order.is_empty() {
        order.push(Vec::new());
        groups.insert(Vec::new(), Vec::new());
    }

    // Index where HAVING aggregate inputs start in a captured row.
    let select_agg_count =
        q.select.iter().filter(|i| matches!(i, SelectItem::Aggregate(..))).count();

    let mut rel = Relation::empty(schema);
    'group: for key in order {
        let members = &groups[&key];
        let mut out_values: Vec<Value> = Vec::new();
        let mut degree = Degree::ONE;
        let mut agg_input_idx = key_len;
        for item in &q.select {
            match item {
                SelectItem::Column(c) => {
                    // Must be a group key.
                    let pos = q.group_by.iter().position(|g| g == c).ok_or_else(|| {
                        EngineError::Unsupported(format!("selected column {c} is not in GROUP BY"))
                    })?;
                    out_values.push(key[pos].clone());
                }
                SelectItem::MinDegree => {
                    // MIN(D): the group's degree becomes the minimum member
                    // degree (Query JXT / T1 of Sections 5 and 7).
                    degree =
                        degree.and(members.iter().map(|(_, d)| *d).fold(Degree::ONE, Degree::and));
                }
                SelectItem::CountStar => {
                    out_values.push(Value::number(members.len() as f64));
                }
                SelectItem::Aggregate(agg, _) => {
                    let inputs: Vec<&Value> =
                        members.iter().map(|(v, _)| &v[agg_input_idx]).collect();
                    agg_input_idx += 1;
                    // The aggregate applies to the fuzzy *set* of values:
                    // distinct values, ignoring NULLs (Section 6).
                    let mut distinct: Vec<&Value> = Vec::new();
                    for v in inputs {
                        if !v.is_null() && !distinct.contains(&v) {
                            distinct.push(v);
                        }
                    }
                    match apply_aggregate(*agg, &distinct)? {
                        Some(v) => out_values.push(v),
                        // Empty non-COUNT aggregate: NULL result; the paper's
                        // semantics drop the tuple (T2 "contains no tuple
                        // for u").
                        None => continue 'group,
                    }
                }
            }
        }
        // HAVING: each predicate's degree joins the group's conjunction.
        let mut having_agg_idx = key_len + select_agg_count;
        for h in &q.having {
            let lhs = having_value(&h.lhs, q, &key, members, &mut having_agg_idx)?;
            let rhs = having_value(&h.rhs, q, &key, members, &mut having_agg_idx)?;
            let (lhs, rhs) = resolve_having_terms(lhs, rhs, vocab);
            degree = degree.and(lhs.compare(h.op, &rhs));
            if !degree.is_positive() {
                continue 'group;
            }
        }
        rel.insert_dedup_max(Tuple::new(out_values, degree));
    }
    Ok(rel)
}

/// A HAVING operand value, either computed from the group or pending term
/// resolution.
enum HavingValue {
    Val(Value),
    Term(String),
}

fn having_value(
    o: &HavingOperand,
    q: &Query,
    key: &[Value],
    members: &[(Vec<Value>, Degree)],
    agg_idx: &mut usize,
) -> Result<HavingValue> {
    Ok(match o {
        HavingOperand::Aggregate(agg, _) => {
            let inputs: Vec<&Value> = members.iter().map(|(v, _)| &v[*agg_idx]).collect();
            *agg_idx += 1;
            let mut distinct: Vec<&Value> = Vec::new();
            for v in inputs {
                if !v.is_null() && !distinct.contains(&v) {
                    distinct.push(v);
                }
            }
            HavingValue::Val(apply_aggregate(*agg, &distinct)?.unwrap_or(Value::Null))
        }
        HavingOperand::CountStar => HavingValue::Val(Value::number(members.len() as f64)),
        HavingOperand::Column(c) => {
            let pos = q.group_by.iter().position(|g| g == c).ok_or_else(|| {
                EngineError::Unsupported(format!("HAVING column {c} is not in GROUP BY"))
            })?;
            HavingValue::Val(key[pos].clone())
        }
        HavingOperand::Number(n) => HavingValue::Val(Value::number(*n)),
        HavingOperand::Term(t) => HavingValue::Term(t.clone()),
    })
}

/// Resolves pending HAVING terms by the partner's runtime type, mirroring
/// WHERE-clause term binding.
fn resolve_having_terms(lhs: HavingValue, rhs: HavingValue, vocab: &Vocabulary) -> (Value, Value) {
    let settle = |v: HavingValue, partner_is_text: bool| -> Value {
        match v {
            HavingValue::Val(v) => v,
            HavingValue::Term(t) => {
                if partner_is_text {
                    Value::text(t)
                } else if let Ok(shape) = vocab.resolve(&t) {
                    Value::fuzzy(shape)
                } else {
                    Value::text(t)
                }
            }
        }
    };
    let lhs_text = matches!(&lhs, HavingValue::Val(Value::Text(_)));
    let rhs_text = matches!(&rhs, HavingValue::Val(Value::Text(_)));
    (settle(lhs, rhs_text), settle(rhs, lhs_text))
}

/// Applies an aggregate to the distinct member values. `None` encodes the
/// NULL result of an empty non-COUNT aggregate.
pub(crate) fn apply_aggregate(agg: AggFunc, distinct: &[&Value]) -> Result<Option<Value>> {
    if agg == AggFunc::Count {
        return Ok(Some(Value::number(distinct.len() as f64)));
    }
    if distinct.is_empty() {
        return Ok(None);
    }
    let dists: Vec<Trapezoid> = distinct
        .iter()
        .map(|v| {
            v.as_distribution().ok_or_else(|| {
                EngineError::Unsupported(format!(
                    "aggregate {} over non-numeric value {v}",
                    agg.name()
                ))
            })
        })
        .collect::<Result<_>>()?;
    let out = match agg {
        AggFunc::Sum => arith::sum(&dists),
        AggFunc::Avg => arith::avg(&dists),
        AggFunc::Min => arith::fuzzy_min(&dists),
        AggFunc::Max => arith::fuzzy_max(&dists),
        AggFunc::Count => unreachable!("handled above"),
    };
    Ok(out.map(Value::fuzzy))
}

/// Resolves a column against the environment: innermost frame first; a
/// qualifier must match a frame binding. The pseudo-column `R.D` resolves to
/// the tuple's membership degree — the paper's Section 5 notes that "a
/// membership degree attribute can be used by itself as a predicate"
/// (Query JXT), and this is the read side of that device. Only available
/// when the relation has no ordinary attribute named `D`.
fn resolve_column<'e>(env: &'e [Frame], c: &ColumnRef) -> Result<&'e Value> {
    resolve_column_or_degree(env, c).map(|r| match r {
        ColumnValue::Attr(v) => v,
        ColumnValue::Degree(_) => unreachable!("caller used resolve_column_value"),
    })
}

/// A resolved column: an attribute value, or the membership degree.
enum ColumnValue<'e> {
    Attr(&'e Value),
    Degree(Degree),
}

fn resolve_column_or_degree<'e>(env: &'e [Frame], c: &ColumnRef) -> Result<ColumnValue<'e>> {
    for f in env.iter().rev() {
        if let Some(t) = &c.table {
            if !f.binding.eq_ignore_ascii_case(t) {
                continue;
            }
            if let Some(idx) = f.schema.index_of(&c.column) {
                return Ok(ColumnValue::Attr(f.tuple.value(idx)));
            }
            if c.is_degree() {
                return Ok(ColumnValue::Degree(f.tuple.degree));
            }
            return Err(EngineError::Bind(format!("no attribute {} in {}", c.column, f.binding)));
        }
        if let Some(idx) = f.schema.index_of(&c.column) {
            return Ok(ColumnValue::Attr(f.tuple.value(idx)));
        }
    }
    Err(EngineError::Bind(format!("unresolved column {c}")))
}

/// Resolves a column to an owned value, mapping the degree pseudo-column to
/// a crisp number.
fn resolve_column_value(env: &[Frame], c: &ColumnRef) -> Result<Value> {
    Ok(match resolve_column_or_degree(env, c)? {
        ColumnValue::Attr(v) => v.clone(),
        ColumnValue::Degree(d) => Value::number(d.value()),
    })
}

/// Resolves two compare operands, deciding how quoted terms bind: against a
/// text value they are text; otherwise they are linguistic terms looked up in
/// the vocabulary.
fn resolve_pair(
    env: &[Frame],
    lhs: &Operand,
    rhs: &Operand,
    vocab: &Vocabulary,
) -> Result<(Value, Value)> {
    let l0 = pre_resolve(env, lhs)?;
    let r0 = pre_resolve(env, rhs)?;
    let l = finish_resolve(l0, &r0, vocab)?;
    let r = finish_resolve(r0, &Pre::Val(l.clone()), vocab)?;
    Ok((l, r))
}

/// Intermediate operand resolution: columns and numbers become values; terms
/// stay pending until the partner's type is known.
enum Pre {
    Val(Value),
    Term(String),
}

fn pre_resolve(env: &[Frame], o: &Operand) -> Result<Pre> {
    Ok(match o {
        Operand::Column(c) => Pre::Val(resolve_column_value(env, c)?),
        Operand::Number(n) => Pre::Val(Value::number(*n)),
        Operand::Term(t) => Pre::Term(t.clone()),
        Operand::FuzzyLiteral(a, b, c, d) => Pre::Val(fuzzy_literal_value(*a, *b, *c, *d)?),
    })
}

/// Materializes an inline fuzzy literal, validating its breakpoints.
pub(crate) fn fuzzy_literal_value(a: f64, b: f64, c: f64, d: f64) -> Result<Value> {
    let t = Trapezoid::new(a, b, c, d).map_err(EngineError::Fuzzy)?;
    Ok(Value::fuzzy(t))
}

fn finish_resolve(p: Pre, partner: &Pre, vocab: &Vocabulary) -> Result<Value> {
    match p {
        Pre::Val(v) => Ok(v),
        Pre::Term(t) => {
            let partner_is_text = matches!(partner, Pre::Val(Value::Text(_)));
            if partner_is_text {
                Ok(Value::text(t))
            } else if let Ok(shape) = vocab.resolve(&t) {
                Ok(Value::fuzzy(shape))
            } else {
                // Not in the vocabulary and not compared to text: treat as a
                // plain string (e.g. comparing two term literals).
                Ok(Value::text(t))
            }
        }
    }
}

/// Resolves the LHS of a sub-query predicate, using the sub-query's column
/// type to decide term binding.
fn resolve_operand_vs_relation(
    env: &[Frame],
    lhs: &Operand,
    t: &Relation,
    vocab: &Vocabulary,
) -> Result<Value> {
    match lhs {
        Operand::Column(c) => Ok(resolve_column(env, c)?.clone()),
        Operand::Number(n) => Ok(Value::number(*n)),
        Operand::FuzzyLiteral(a, b, c, d) => fuzzy_literal_value(*a, *b, *c, *d),
        Operand::Term(term) => {
            let text_col = t.schema().attr(0).ty == AttrType::Text;
            if text_col {
                Ok(Value::text(term.clone()))
            } else if let Ok(shape) = vocab.resolve(term) {
                Ok(Value::fuzzy(shape))
            } else {
                Ok(Value::text(term.clone()))
            }
        }
    }
}

fn single_column(t: &Relation) -> Result<()> {
    if t.schema().len() == 1 {
        Ok(())
    } else {
        Err(EngineError::Unsupported(format!(
            "sub-query must select a single column, got {}",
            t.schema().len()
        )))
    }
}

/// Derives the output schema of a query.
fn output_schema(
    q: &Query,
    rels: &[(String, Relation)],
    _ev: &NaiveEvaluator<'_>,
) -> Result<Schema> {
    let mut attrs = Vec::new();
    for item in &q.select {
        match item {
            SelectItem::Column(c) => {
                let (name, ty) = column_meta(rels, c)?;
                attrs.push(Attribute::new(name, ty));
            }
            SelectItem::Aggregate(a, c) => {
                let (name, ty) = column_meta(rels, c)?;
                let ty = if *a == AggFunc::Count { AttrType::Number } else { ty };
                attrs.push(Attribute::new(format!("{}({})", a.name(), name), ty));
            }
            SelectItem::MinDegree => {} // folds into the degree attribute
            SelectItem::CountStar => attrs.push(Attribute::new("COUNT(*)", AttrType::Number)),
        }
    }
    Ok(Schema::new(attrs))
}

fn column_meta(rels: &[(String, Relation)], c: &ColumnRef) -> Result<(String, AttrType)> {
    for (binding, rel) in rels.iter().rev() {
        if let Some(t) = &c.table {
            if !binding.eq_ignore_ascii_case(t) {
                continue;
            }
        }
        if let Some(idx) = rel.schema().index_of(&c.column) {
            let a = rel.schema().attr(idx);
            return Ok((a.name.clone(), a.ty));
        }
        if c.table.is_some() {
            return Err(EngineError::Bind(format!("no attribute {} in {}", c.column, binding)));
        }
    }
    // The column may belong to an outer block (correlated select is not
    // supported) — report cleanly.
    Err(EngineError::Bind(format!("unresolved select column {c}")))
}
