//! `EXPLAIN` / `EXPLAIN ANALYZE` rendering.
//!
//! [`render_explain`] produces the *deterministic* part: the query's
//! classified type, the strategy the engine would choose under
//! [`crate::Strategy::Unnest`] (an unnested plan or the naive fallback), the
//! plan tree, and closed-form cost estimates derived only from catalog
//! cardinalities and the execution configuration. Golden tests pin this
//! output byte-for-byte.
//!
//! [`render_actual`] appends the *measured* part after a run: one line per
//! registered operator with its exact counters (deterministic across thread
//! counts) and its wall time (not deterministic — which is why golden tests
//! cover only the `EXPLAIN` half).
//!
//! [`render_verify`] renders the `EXPLAIN VERIFY` statement: the static
//! verifier's report ([`crate::verify`]) — the rewrite rule, the push-down
//! bound, every physical operator's required/delivered properties, and any
//! violations. Fully deterministic, so it too is pinned by golden tests.

use crate::engine::QueryOutcome;
use crate::error::{EngineError, Result};
use crate::exec::ExecConfig;
use crate::plan::UnnestPlan;
use crate::stats_histogram::StatsRegistry;
use crate::unnest::build_plan;
use fuzzy_rel::Catalog;

/// Ceiling of log2, with `log2_ceil(0) = log2_ceil(1) = 0`.
fn log2_ceil(n: u64) -> u64 {
    if n <= 1 {
        0
    } else {
        u64::from(64 - (n - 1).leading_zeros())
    }
}

/// Renders the deterministic `EXPLAIN` text for a query: class, strategy,
/// plan tree (reordered exactly as the executor would reorder it), and cost
/// estimates.
pub fn render_explain(
    q: &fuzzy_sql::Query,
    catalog: &Catalog,
    config: &ExecConfig,
    statistics: Option<&StatsRegistry>,
) -> Result<String> {
    let class = fuzzy_sql::classify(q);
    let mut out = format!("query class: {class:?} (depth {})\n", q.depth());
    match build_plan(q, catalog) {
        Ok(plan) => {
            out.push_str(&format!("strategy: unnest:{}\n", plan.label()));
            // Lower through the same pass the executor runs, so the rendered
            // tree, join order, and operator list are the ones that run.
            let lowered = crate::exec::lower::lower(&plan, config, statistics);
            if let (UnnestPlan::Flat(orig), UnnestPlan::Flat(eff)) = (&plan, &lowered.plan) {
                let orig_order: Vec<&str> =
                    orig.tables.iter().map(|t| t.binding.as_str()).collect();
                let eff_order: Vec<&str> = eff.tables.iter().map(|t| t.binding.as_str()).collect();
                if orig_order != eff_order {
                    out.push_str(&format!("join order: {}\n", eff_order.join(" -> ")));
                }
            }
            out.push_str(&lowered.plan.explain());
            out.push_str(&render_operators(&lowered));
            out.push_str(&render_estimates(&lowered.plan, config));
        }
        Err(EngineError::Unsupported(msg)) => {
            out.push_str("strategy: naive fallback\n");
            out.push_str(&format!("naive fallback: {msg}\n"));
            for t in &q.from {
                if let Some(stored) = catalog.table(&t.table) {
                    out.push_str(&format!(
                        "  from {} ({} tuples, {} pages)\n",
                        t.binding_name(),
                        stored.num_tuples(),
                        stored.num_pages()
                    ));
                }
            }
        }
        Err(e) => return Err(e),
    }
    Ok(out)
}

/// Renders the lowered physical-operator tree: one line per operator in
/// execution order, with each join step annotated by where its output goes
/// (`-> answer` streamed into the result, `-> pipelined` kept in memory for
/// the next sort boundary, `-> temp table` materialized to the simulated
/// disk). A pipelined chain shows zero `-> temp table` lines.
fn render_operators(lowered: &crate::exec::lower::Lowered) -> String {
    let mut out = String::from("operators:\n");
    for (i, op) in lowered.outline.ops.iter().enumerate() {
        out.push_str(&format!("  #{i} {}", op.name));
        if let Some(note) = lowered.sink_note(i) {
            out.push_str(&format!(" {note}"));
        }
        out.push('\n');
    }
    out
}

/// Closed-form cost estimates for a plan: the external-sort work on each
/// base relation the plan sorts and the nested-loop pair bound the unnesting
/// avoids (Section 3's `O(n log n)` vs `n_R × n_S` argument, per query).
fn render_estimates(plan: &UnnestPlan, config: &ExecConfig) -> String {
    let sort_pages = config.sort_pages.max(1) as u64;
    let mut out = String::new();
    let sort_line = |binding: &str, n: u64, b: u64, out: &mut String| {
        out.push_str(&format!(
            "est: sort {binding}: ~{} comparisons, {} initial runs\n",
            n * log2_ceil(n),
            b.div_ceil(sort_pages).max(u64::from(n > 0))
        ));
    };
    match plan {
        UnnestPlan::Flat(p) => {
            if p.tables.len() > 1 {
                for t in &p.tables {
                    sort_line(&t.binding, t.table.num_tuples(), t.table.num_pages(), &mut out);
                }
            }
            let bound =
                p.tables.iter().fold(1u64, |acc, t| acc.saturating_mul(t.table.num_tuples()));
            out.push_str(&format!("est: nested-loop pair bound: {bound}\n"));
        }
        UnnestPlan::Anti(p) => {
            if p.window.is_some() {
                for t in [&p.outer, &p.inner] {
                    sort_line(&t.binding, t.table.num_tuples(), t.table.num_pages(), &mut out);
                }
            }
            let bound = p.outer.table.num_tuples().saturating_mul(p.inner.table.num_tuples());
            out.push_str(&format!("est: nested-loop pair bound: {bound}\n"));
        }
        UnnestPlan::Agg(p) => {
            if let Some((_, op2, _)) = &p.corr {
                sort_line(
                    &p.outer.binding,
                    p.outer.table.num_tuples(),
                    p.outer.table.num_pages(),
                    &mut out,
                );
                if *op2 == fuzzy_core::CmpOp::Eq {
                    sort_line(
                        &p.inner.binding,
                        p.inner.table.num_tuples(),
                        p.inner.table.num_pages(),
                        &mut out,
                    );
                }
            }
            let bound = p.outer.table.num_tuples().saturating_mul(p.inner.table.num_tuples());
            out.push_str(&format!("est: nested-loop pair bound: {bound}\n"));
        }
    }
    out
}

/// Renders the `EXPLAIN VERIFY` text for a query: class, strategy, and the
/// static verification report of the plan the executor would run. The naive
/// fallback has nothing to verify — the naive evaluator is the semantics
/// the equivalence theorems are checked against.
pub fn render_verify(
    q: &fuzzy_sql::Query,
    catalog: &Catalog,
    config: &ExecConfig,
    statistics: Option<&StatsRegistry>,
) -> Result<String> {
    let class = fuzzy_sql::classify(q);
    let mut out = format!("query class: {class:?} (depth {})\n", q.depth());
    match build_plan(q, catalog) {
        Ok(plan) => {
            out.push_str(&format!("strategy: unnest:{}\n", plan.label()));
            let report = crate::verify::verify_plan(&plan, config, statistics);
            out.push_str(&render_verify_report(&report));
        }
        Err(EngineError::Unsupported(_)) => {
            out.push_str("strategy: naive fallback\n");
            out.push_str(
                "verify: nothing to check — the naive reference evaluator is the semantics\n",
            );
        }
        Err(e) => return Err(e),
    }
    Ok(out)
}

/// Renders one verification report: rule, α bound, the operator outline with
/// required/delivered properties, and the verdict with any violations.
pub fn render_verify_report(report: &crate::verify::VerifyReport) -> String {
    let mut out = format!("rewrite rule: {}\n", report.rule_id);
    out.push_str(&format!("push-down bound: α = {:.2}\n", report.alpha.value()));
    out.push_str("plan properties:\n");
    for (i, op) in report.outline.ops.iter().enumerate() {
        out.push_str(&format!("  #{i} {}", op.name));
        if !op.is_declared() {
            out.push_str("  !! undeclared\n");
            continue;
        }
        if !op.requires.is_empty() {
            let reqs: Vec<String> =
                op.requires.iter().map(|(slot, p)| format!("in{slot}:{p}")).collect();
            out.push_str(&format!("  requires {}", reqs.join(" ")));
        }
        if !op.delivers.is_empty() {
            let dels: Vec<String> = op.delivers.iter().map(|p| p.to_string()).collect();
            out.push_str(&format!("  delivers {}", dels.join(" ")));
        }
        out.push('\n');
    }
    if report.ok() {
        out.push_str(&format!(
            "verification: OK ({} operators, {} checks)\n",
            report.outline.ops.len(),
            report.checks
        ));
    } else {
        out.push_str(&format!(
            "verification: FAILED ({} violation(s), {} checks)\n",
            report.violations.len(),
            report.checks
        ));
        for v in &report.violations {
            out.push_str(&format!("  {v}\n"));
        }
    }
    out
}

/// Renders the measured half of `EXPLAIN ANALYZE` from a finished run: one
/// line per operator (exact counters plus wall time) and the answer
/// cardinality.
pub fn render_actual(outcome: &QueryOutcome) -> String {
    let mut out = String::from("actual:\n");
    for n in outcome.metrics.ops() {
        let m = &n.metrics;
        out.push_str(&format!(
            "  [{}] {}: in={} out={} t={:.3}ms",
            n.kind.name(),
            n.label,
            m.tuples_in,
            m.tuples_out,
            n.wall.as_secs_f64() * 1e3
        ));
        if m.pairs_examined > 0 {
            out.push_str(&format!(" pairs={}", m.pairs_examined));
        }
        if m.fuzzy_comparisons > 0 {
            out.push_str(&format!(" cmp={}", m.fuzzy_comparisons));
        }
        if m.pairs_pruned > 0 {
            out.push_str(&format!(" pruned={}", m.pairs_pruned));
        }
        if m.max_window > 0 {
            out.push_str(&format!(" win={}", m.max_window));
        }
        if m.sort_runs > 0 {
            out.push_str(&format!(" runs={}", m.sort_runs));
        }
        if m.sort_comparisons > 0 {
            out.push_str(&format!(" scmp={}", m.sort_comparisons));
        }
        if m.buffer_requests > 0 {
            out.push_str(&format!(
                " buf={}/{}/{}",
                m.buffer_requests, m.buffer_hits, m.buffer_misses
            ));
        }
        if m.page_reads + m.page_writes > 0 {
            out.push_str(&format!(" io={}r+{}w", m.page_reads, m.page_writes));
        }
        out.push('\n');
    }
    out.push_str(&format!("answer: {} rows\n", outcome.answer.len()));
    out.push_str(&render_serving(&outcome.serving));
    out
}

/// Renders the serving section of `EXPLAIN ANALYZE`: the plan-cache verdict
/// for this statement, the registry totals, and the concurrency snapshot.
/// Empty when the statement ran without a serving layer (no plan cache
/// attached), so single-engine harness output is unchanged.
fn render_serving(s: &crate::metrics::ServingInfo) -> String {
    let hit = match s.cache_hit {
        Some(true) => "hit",
        Some(false) => "miss",
        None => return String::new(),
    };
    let mut out = String::from("serving:\n");
    out.push_str(&format!(
        "  plan cache: {hit} (verifications this statement: {})\n",
        s.plan_verifications
    ));
    out.push_str(&format!(
        "  cache totals: {} hits, {} misses, {} invalidations, {} evictions, {} entries\n",
        s.cache.hits, s.cache.misses, s.cache.invalidations, s.cache.evictions, s.cache.entries
    ));
    out.push_str(&format!(
        "  sessions in flight: {}, catalog lock wait: {:.3}ms\n",
        s.sessions_in_flight,
        s.lock_wait.as_secs_f64() * 1e3
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_ceil_small_values() {
        assert_eq!(log2_ceil(0), 0);
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(1024), 10);
        assert_eq!(log2_ceil(1025), 11);
    }
}
