//! # fuzzy-engine
//!
//! The core contribution of *"Efficient Processing of Nested Fuzzy SQL
//! Queries in a Fuzzy Database"* (Yang et al., ICDE 1995 / TKDE 2001):
//! unnesting transformations for nested Fuzzy SQL queries and the extended
//! fuzzy merge-join that evaluates the unnested forms.
//!
//! * [`naive`] — the semantics-faithful nested evaluator (the reference the
//!   equivalence theorems are checked against);
//! * [`unnest`] — the transformations of Sections 4–8 (types N, J, JX, JA,
//!   JALL, K-level chains) producing [`plan::UnnestPlan`]s;
//! * [`exec`] — the physical operators: interval-order external sort, the
//!   extended merge-join window over `Rng(r)` (Section 3), anti accumulation
//!   (JX′/JALL′) and the pipelined aggregate evaluation (JA′/COUNT′);
//! * [`nested_loop`] — the block nested-loop baseline of Section 9;
//! * [`verify`] — the static plan verifier: physical-property analysis
//!   (⪯-sort orders, degree bounds, duplicate policy, binding provenance)
//!   and equivalence-rule linting for every plan before it runs;
//! * [`engine`] — strategy dispatch plus I/O/CPU measurement.
//!
//! ## Example
//!
//! ```text
//! let disk = SimDisk::with_default_page_size();
//! let catalog = fuzzy_workload::paper::dating_service(&disk)?;
//! let engine = Engine::over(Arc::new(catalog), &disk);
//! let nested = engine.run_sql(QUERY_2, Strategy::NestedLoop)?;
//! let unnested = engine.run_sql(QUERY_2, Strategy::Unnest)?;
//! assert_eq!(nested.answer.canonicalized(), unnested.answer.canonicalized());
//! ```
//!
//! (See the `fuzzy-db` facade crate and the repository examples for runnable
//! end-to-end snippets; this crate avoids a circular dev-dependency on the
//! workload crate in its doctests.)

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod error;
pub mod exec;
pub mod explain;
pub mod metrics;
pub mod naive;
pub mod nested_loop;
pub mod optimizer;
pub mod plan;
pub mod plan_cache;
pub mod stats_histogram;
pub mod unnest;
pub mod verify;

pub use engine::{Engine, QueryOutcome, Strategy};
pub use error::{EngineError, Result};
pub use exec::{ExecConfig, ExecStats, Executor, JoinMethod};
pub use metrics::{
    OpKind, OperatorMetrics, OperatorNode, QueryMetrics, ServingCounters, ServingInfo,
};
pub use naive::NaiveEvaluator;
pub use plan::{RewriteRule, UnnestPlan};
pub use plan_cache::{CacheStats, PlanCache, Planned, DEFAULT_PLAN_CACHE_CAPACITY};
pub use stats_histogram::{Histogram, StatsRegistry};
pub use unnest::build_plan;
pub use verify::{
    build_outline, check_threshold, verify_plan, Outline, PhysOp, Prop, VerifyReport, Violation,
};
