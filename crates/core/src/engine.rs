//! The query engine: strategy dispatch and measurement.

use crate::error::{EngineError, Result};
use crate::exec::{ExecConfig, ExecStats, Executor};
use crate::naive::NaiveEvaluator;
use crate::unnest::build_plan;
use fuzzy_rel::{Catalog, Relation};
use fuzzy_storage::{BufferPool, CostModel, IoSnapshot, Measurement, SimDisk};
use std::time::Instant;

/// How a query is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Unnest to a flat plan and evaluate with the extended merge-join
    /// machinery (the paper's proposal). Falls back to [`Strategy::Naive`]
    /// for shapes outside the catalogue.
    #[default]
    Unnest,
    /// The block nested-loop method (the paper's measured baseline).
    NestedLoop,
    /// The intermediate-relation method sketched in Section 2.3: local
    /// predicates are materialized into reduced temporaries once, then the
    /// nested loop runs over them — faster than [`Strategy::NestedLoop`],
    /// still quadratic, slower than [`Strategy::Unnest`].
    MaterializedNestedLoop,
    /// The semantics-faithful in-memory reference evaluator.
    Naive,
}

/// The result of running one query: the answer relation plus cost accounting.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The answer, a fuzzy relation.
    pub answer: Relation,
    /// I/O counters and CPU time of the execution.
    pub measurement: Measurement,
    /// Executor counters (pair examinations, sort comparisons) where
    /// applicable.
    pub exec_stats: ExecStats,
    /// A short description of how the query was evaluated.
    pub plan_label: String,
}

impl QueryOutcome {
    /// Modeled response time under a cost model.
    pub fn response_time(&self, model: &CostModel) -> std::time::Duration {
        self.measurement.response_time(model)
    }
}

/// The query engine over one catalog and one simulated disk.
pub struct Engine<'a> {
    catalog: &'a Catalog,
    disk: SimDisk,
    config: ExecConfig,
    statistics: Option<std::rc::Rc<crate::stats_histogram::StatsRegistry>>,
}

impl<'a> Engine<'a> {
    /// Creates an engine. The disk must be the one the catalog's tables live
    /// on (temporaries are created there so their I/O is charged).
    pub fn new(catalog: &'a Catalog, disk: &SimDisk) -> Engine<'a> {
        Engine { catalog, disk: disk.clone(), config: ExecConfig::default(), statistics: None }
    }

    /// Attaches a shared statistics registry; histograms are built lazily
    /// (one scan per column on first use) and reused across queries.
    pub fn with_statistics(
        mut self,
        stats: std::rc::Rc<crate::stats_histogram::StatsRegistry>,
    ) -> Engine<'a> {
        self.statistics = Some(stats);
        self
    }

    /// Overrides the execution configuration (buffer and sort budgets).
    pub fn with_config(mut self, config: ExecConfig) -> Engine<'a> {
        self.config = config;
        self
    }

    /// Sets the worker-thread count for external sorts and flat merge-joins
    /// (see [`ExecConfig::threads`]). Any value returns bit-identical answers
    /// and identical cost counters; `1` is the serial path.
    pub fn with_threads(mut self, threads: usize) -> Engine<'a> {
        self.config.threads = threads.max(1);
        self
    }

    /// The configuration in effect.
    pub fn config(&self) -> ExecConfig {
        self.config
    }

    /// Parses and runs a Fuzzy SQL query with the given strategy.
    pub fn run_sql(&self, sql: &str, strategy: Strategy) -> Result<QueryOutcome> {
        let q = fuzzy_sql::parse(sql)?;
        self.run(&q, strategy)
    }

    /// Runs a parsed query with the given strategy.
    pub fn run(&self, q: &fuzzy_sql::Query, strategy: Strategy) -> Result<QueryOutcome> {
        let io_before = self.disk.io();
        let start = Instant::now();
        let (answer, exec_stats, plan_label) = match strategy {
            Strategy::Naive => (self.run_naive(q)?, ExecStats::default(), "naive".to_string()),
            Strategy::Unnest => match build_plan(q, self.catalog) {
                Ok(plan) => {
                    let mut ex = Executor::new(&self.disk, self.config);
                    if let Some(stats) = &self.statistics {
                        ex = ex.with_statistics(stats.clone());
                    }
                    let answer = ex.run(&plan)?;
                    (answer, ex.stats, format!("unnest:{}", plan.label()))
                }
                Err(EngineError::Unsupported(_)) => {
                    (self.run_naive(q)?, ExecStats::default(), "naive-fallback".to_string())
                }
                Err(e) => return Err(e),
            },
            Strategy::NestedLoop => {
                let plan = build_plan(q, self.catalog)?;
                let mut ex = Executor::new(&self.disk, self.config);
                let answer = ex.run_baseline(&plan)?;
                (answer, ex.stats, format!("nested-loop:{}", plan.label()))
            }
            Strategy::MaterializedNestedLoop => {
                let plan = build_plan(q, self.catalog)?;
                let mut ex = Executor::new(&self.disk, self.config);
                let answer = ex.run_baseline_materialized(&plan)?;
                (answer, ex.stats, format!("materialized-nl:{}", plan.label()))
            }
        };
        // ORDER BY / LIMIT presentation steps for the physical strategies
        // (the naive evaluator applies them internally; re-applying the same
        // ordering and limit is idempotent).
        let mut answer = answer;
        if let Some(order) = &q.order_by {
            answer = match &order.key {
                fuzzy_sql::OrderKey::Degree => answer.ordered_by_degree(order.descending),
                fuzzy_sql::OrderKey::Column(c) => {
                    let idx = answer.schema().index_of(&c.column).ok_or_else(|| {
                        EngineError::Bind(format!("ORDER BY column {c} not in the select list"))
                    })?;
                    answer.ordered_by_column(idx, order.descending)
                }
            };
        }
        if let Some(n) = q.limit {
            answer = answer.limited(n);
        }
        let cpu = start.elapsed();
        let io = self.disk.io().since(&io_before);
        Ok(QueryOutcome { answer, measurement: Measurement { io, cpu }, exec_stats, plan_label })
    }

    /// Explains how a query would be evaluated under `Strategy::Unnest`:
    /// its classified type and the unnested plan (or the naive fallback).
    pub fn explain(&self, sql: &str) -> Result<String> {
        let q = fuzzy_sql::parse(sql)?;
        let class = fuzzy_sql::classify(&q);
        let mut out = format!("query class: {class:?} (depth {})\n", q.depth());
        match build_plan(&q, self.catalog) {
            Ok(plan) => {
                out.push_str(&plan.explain());
            }
            Err(EngineError::Unsupported(msg)) => {
                out.push_str(&format!("naive fallback: {msg}\n"));
            }
            Err(e) => return Err(e),
        }
        Ok(out)
    }

    fn run_naive(&self, q: &fuzzy_sql::Query) -> Result<Relation> {
        let pool = BufferPool::new(&self.disk, self.config.buffer_pages);
        NaiveEvaluator::new(self.catalog, &pool).eval(q)
    }

    /// Raw I/O counters of the underlying disk (for experiment harnesses).
    pub fn disk_io(&self) -> IoSnapshot {
        self.disk.io()
    }
}
