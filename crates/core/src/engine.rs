//! The query engine: strategy dispatch and measurement.

use crate::error::{EngineError, Result};
use crate::exec::{ExecConfig, ExecStats, Executor};
use crate::metrics::{OpKind, QueryMetrics};
use crate::naive::NaiveEvaluator;
use crate::unnest::build_plan;
use fuzzy_rel::{Catalog, Relation};
use fuzzy_storage::{BufferPool, CostModel, IoSnapshot, Measurement, SimDisk};
use std::time::Instant;

/// How a query is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Unnest to a flat plan and evaluate with the extended merge-join
    /// machinery (the paper's proposal). Falls back to [`Strategy::Naive`]
    /// for shapes outside the catalogue.
    #[default]
    Unnest,
    /// The block nested-loop method (the paper's measured baseline).
    NestedLoop,
    /// The intermediate-relation method sketched in Section 2.3: local
    /// predicates are materialized into reduced temporaries once, then the
    /// nested loop runs over them — faster than [`Strategy::NestedLoop`],
    /// still quadratic, slower than [`Strategy::Unnest`].
    MaterializedNestedLoop,
    /// The semantics-faithful in-memory reference evaluator.
    Naive,
}

/// The result of running one query: the answer relation plus cost accounting.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The answer, a fuzzy relation.
    pub answer: Relation,
    /// I/O counters and CPU time of the execution.
    pub measurement: Measurement,
    /// Executor counters (pair examinations, sort comparisons) where
    /// applicable — a summary derived from [`QueryOutcome::metrics`].
    pub exec_stats: ExecStats,
    /// The per-operator metrics registry of the run (tuples in/out, fuzzy
    /// comparisons, buffer and I/O counters, wall time per operator).
    pub metrics: QueryMetrics,
    /// A short description of how the query was evaluated.
    pub plan_label: String,
}

impl QueryOutcome {
    /// Modeled response time under a cost model.
    pub fn response_time(&self, model: &CostModel) -> std::time::Duration {
        self.measurement.response_time(model)
    }
}

/// The query engine over one catalog and one simulated disk.
pub struct Engine<'a> {
    catalog: &'a Catalog,
    disk: SimDisk,
    config: ExecConfig,
    statistics: Option<std::rc::Rc<crate::stats_histogram::StatsRegistry>>,
}

impl<'a> Engine<'a> {
    /// Creates an engine. The disk must be the one the catalog's tables live
    /// on (temporaries are created there so their I/O is charged).
    pub fn new(catalog: &'a Catalog, disk: &SimDisk) -> Engine<'a> {
        Engine { catalog, disk: disk.clone(), config: ExecConfig::default(), statistics: None }
    }

    /// Attaches a shared statistics registry; histograms are built lazily
    /// (one scan per column on first use) and reused across queries.
    pub fn with_statistics(
        mut self,
        stats: std::rc::Rc<crate::stats_histogram::StatsRegistry>,
    ) -> Engine<'a> {
        self.statistics = Some(stats);
        self
    }

    /// Overrides the execution configuration (buffer and sort budgets).
    pub fn with_config(mut self, config: ExecConfig) -> Engine<'a> {
        self.config = config;
        self
    }

    /// Sets the worker-thread count for external sorts and flat merge-joins
    /// (see [`ExecConfig::threads`]). Any value returns bit-identical answers
    /// and identical cost counters; `1` is the serial path.
    pub fn with_threads(mut self, threads: usize) -> Engine<'a> {
        self.config.threads = threads.max(1);
        self
    }

    /// The configuration in effect.
    pub fn config(&self) -> ExecConfig {
        self.config
    }

    /// Parses and runs a Fuzzy SQL query with the given strategy.
    pub fn run_sql(&self, sql: &str, strategy: Strategy) -> Result<QueryOutcome> {
        let q = fuzzy_sql::parse(sql)?;
        self.run(&q, strategy)
    }

    /// Runs a parsed query with the given strategy.
    ///
    /// Every page allocated while the statement runs is a temporary — sort
    /// runs, partition scratch, materialized intermediates; base tables are
    /// loaded outside statement execution — so all of them are returned to
    /// the disk's free list at statement end (on the error path too).
    /// Repeated statements therefore cannot grow the simulated disk.
    pub fn run(&self, q: &fuzzy_sql::Query, strategy: Strategy) -> Result<QueryOutcome> {
        self.disk.begin_alloc_log();
        let result = self.run_query(q, strategy);
        for page in self.disk.take_alloc_log() {
            self.disk.free_page(page);
        }
        result
    }

    fn run_query(&self, q: &fuzzy_sql::Query, strategy: Strategy) -> Result<QueryOutcome> {
        let io_before = self.disk.io();
        let start = Instant::now();
        let (answer, exec_stats, metrics, plan_label) = match strategy {
            Strategy::Naive => {
                let (answer, metrics) = self.run_naive_metered(q)?;
                (answer, ExecStats::default(), metrics, "naive".to_string())
            }
            Strategy::Unnest => match build_plan(q, self.catalog) {
                Ok(plan) => {
                    let mut ex = Executor::new(&self.disk, self.config);
                    if let Some(stats) = &self.statistics {
                        ex = ex.with_statistics(stats.clone());
                    }
                    let answer = ex.run(&plan)?;
                    (answer, ex.stats(), ex.take_metrics(), format!("unnest:{}", plan.label()))
                }
                Err(EngineError::Unsupported(_)) => {
                    let (answer, metrics) = self.run_naive_metered(q)?;
                    (answer, ExecStats::default(), metrics, "naive-fallback".to_string())
                }
                Err(e) => return Err(e),
            },
            Strategy::NestedLoop => {
                let plan = build_plan(q, self.catalog)?;
                let mut ex = Executor::new(&self.disk, self.config);
                let answer = ex.run_baseline(&plan)?;
                (answer, ex.stats(), ex.take_metrics(), format!("nested-loop:{}", plan.label()))
            }
            Strategy::MaterializedNestedLoop => {
                let plan = build_plan(q, self.catalog)?;
                let mut ex = Executor::new(&self.disk, self.config);
                let answer = ex.run_baseline_materialized(&plan)?;
                (answer, ex.stats(), ex.take_metrics(), format!("materialized-nl:{}", plan.label()))
            }
        };
        // ORDER BY / LIMIT presentation steps for the physical strategies
        // (the naive evaluator applies them internally; re-applying the same
        // ordering and limit is idempotent).
        let mut answer = answer;
        if let Some(order) = &q.order_by {
            answer = match &order.key {
                fuzzy_sql::OrderKey::Degree => answer.ordered_by_degree(order.descending),
                fuzzy_sql::OrderKey::Column(c) => {
                    let idx = answer.schema().index_of(&c.column).ok_or_else(|| {
                        EngineError::Bind(format!("ORDER BY column {c} not in the select list"))
                    })?;
                    answer.ordered_by_column(idx, order.descending)
                }
            };
        }
        if let Some(n) = q.limit {
            answer = answer.limited(n);
        }
        let cpu = start.elapsed();
        let io = self.disk.io().since(&io_before);
        Ok(QueryOutcome {
            answer,
            measurement: Measurement { io, cpu },
            exec_stats,
            metrics,
            plan_label,
        })
    }

    /// Explains how a query would be evaluated under [`Strategy::Unnest`]:
    /// its classified type, the chosen strategy, the unnested plan (or the
    /// naive fallback), and deterministic cost estimates.
    pub fn explain(&self, sql: &str) -> Result<String> {
        let q = fuzzy_sql::parse(sql)?;
        self.explain_query(&q)
    }

    /// [`Engine::explain`] over an already-parsed query.
    pub fn explain_query(&self, q: &fuzzy_sql::Query) -> Result<String> {
        crate::explain::render_explain(q, self.catalog, &self.config, self.statistics.as_deref())
    }

    /// Runs the query under [`Strategy::Unnest`] and renders the plan
    /// annotated with the *actual* per-operator counters and wall times.
    /// Returns the rendering together with the outcome.
    pub fn explain_analyze(&self, sql: &str) -> Result<(String, QueryOutcome)> {
        let q = fuzzy_sql::parse(sql)?;
        self.explain_analyze_query(&q)
    }

    /// [`Engine::explain_analyze`] over an already-parsed query.
    pub fn explain_analyze_query(&self, q: &fuzzy_sql::Query) -> Result<(String, QueryOutcome)> {
        let mut out = self.explain_query(q)?;
        let outcome = self.run(q, Strategy::Unnest)?;
        out.push_str(&crate::explain::render_actual(&outcome));
        Ok((out, outcome))
    }

    /// Renders the `EXPLAIN VERIFY` text for a query: the static plan
    /// verifier's report (rewrite rule, push-down bound, per-operator
    /// required/delivered properties, violations). See [`crate::verify`].
    pub fn explain_verify(&self, sql: &str) -> Result<String> {
        let q = fuzzy_sql::parse(sql)?;
        self.explain_verify_query(&q)
    }

    /// [`Engine::explain_verify`] over an already-parsed query.
    pub fn explain_verify_query(&self, q: &fuzzy_sql::Query) -> Result<String> {
        crate::explain::render_verify(q, self.catalog, &self.config, self.statistics.as_deref())
    }

    /// Statically verifies the plan the engine would run for this query
    /// under [`Strategy::Unnest`]. Returns `Ok(None)` when the query falls
    /// back to the naive evaluator (nothing to verify — the reference
    /// evaluator is the semantics).
    pub fn verify(&self, sql: &str) -> Result<Option<crate::verify::VerifyReport>> {
        let q = fuzzy_sql::parse(sql)?;
        self.verify_query(&q)
    }

    /// [`Engine::verify`] over an already-parsed query.
    pub fn verify_query(
        &self,
        q: &fuzzy_sql::Query,
    ) -> Result<Option<crate::verify::VerifyReport>> {
        match build_plan(q, self.catalog) {
            Ok(plan) => Ok(Some(crate::verify::verify_plan(
                &plan,
                &self.config,
                self.statistics.as_deref(),
            ))),
            Err(EngineError::Unsupported(_)) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Runs the naive evaluator under a single `naive-eval` operator node so
    /// fallback runs still carry comparable metrics.
    fn run_naive_metered(&self, q: &fuzzy_sql::Query) -> Result<(Relation, QueryMetrics)> {
        let mut metrics = QueryMetrics::default();
        let id = metrics.begin(OpKind::Naive, "naive-eval");
        let io0 = self.disk.io();
        let t0 = Instant::now();
        let pool = BufferPool::new(&self.disk, self.config.buffer_pages);
        let ev = NaiveEvaluator::new(self.catalog, &pool);
        let answer = ev.eval(q)?;
        let m = metrics.op_mut(id);
        m.fuzzy_comparisons = ev.comparisons();
        m.tuples_out = answer.len() as u64;
        m.add_pool(&pool.stats());
        metrics.finish(id, t0.elapsed(), self.disk.io().since(&io0));
        Ok((answer, metrics))
    }

    /// Raw I/O counters of the underlying disk (for experiment harnesses).
    pub fn disk_io(&self) -> IoSnapshot {
        self.disk.io()
    }
}
