//! The query engine: strategy dispatch, plan caching, and measurement.
//!
//! [`Engine`] is an **owned handle**: it holds an [`Arc`] snapshot of the
//! catalog plus a cloneable disk handle, so it is `Send + Sync` and can be
//! constructed per statement without borrowing the database for its
//! lifetime. A serving layer (see the `fuzzy-db` facade) hands every session
//! an engine over the current catalog snapshot; DDL/DML swaps in a new
//! snapshot and bumps the catalog version, which invalidates cached plans.

use crate::error::{EngineError, Result};
use crate::exec::{ExecConfig, ExecStats, Executor};
use crate::metrics::{OpKind, QueryMetrics, ServingCounters, ServingInfo};
use crate::naive::NaiveEvaluator;
use crate::plan_cache::{PlanCache, Planned};
use crate::unnest::build_plan;
use fuzzy_core::Degree;
use fuzzy_rel::{Catalog, Relation};
use fuzzy_storage::{BufferPool, CostModel, IoSnapshot, Measurement, SimDisk};
use std::sync::Arc;
use std::time::Instant;

/// How a query is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Strategy {
    /// Unnest to a flat plan and evaluate with the extended merge-join
    /// machinery (the paper's proposal). Falls back to [`Strategy::Naive`]
    /// for shapes outside the catalogue.
    #[default]
    Unnest,
    /// The block nested-loop method (the paper's measured baseline).
    NestedLoop,
    /// The intermediate-relation method sketched in Section 2.3: local
    /// predicates are materialized into reduced temporaries once, then the
    /// nested loop runs over them — faster than [`Strategy::NestedLoop`],
    /// still quadratic, slower than [`Strategy::Unnest`].
    MaterializedNestedLoop,
    /// The semantics-faithful in-memory reference evaluator.
    Naive,
}

/// The result of running one query: the answer relation plus cost accounting.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The answer, a fuzzy relation.
    pub answer: Relation,
    /// I/O counters and CPU time of the execution.
    pub measurement: Measurement,
    /// Executor counters (pair examinations, sort comparisons) where
    /// applicable — a summary derived from [`QueryOutcome::metrics`].
    pub exec_stats: ExecStats,
    /// The per-operator metrics registry of the run (tuples in/out, fuzzy
    /// comparisons, buffer and I/O counters, wall time per operator).
    pub metrics: QueryMetrics,
    /// Plan-cache and concurrency annotations (see [`ServingInfo`]).
    pub serving: ServingInfo,
    /// A short description of how the query was evaluated.
    pub plan_label: String,
}

impl QueryOutcome {
    /// Modeled response time under a cost model.
    pub fn response_time(&self, model: &CostModel) -> std::time::Duration {
        self.measurement.response_time(model)
    }
}

/// The query engine over one catalog snapshot and one simulated disk. Owned
/// and `Send + Sync`: cloning the [`Arc`]ed catalog in is cheap, and nothing
/// borrows the database while a query runs.
pub struct Engine {
    catalog: Arc<Catalog>,
    disk: SimDisk,
    config: ExecConfig,
    statistics: Option<Arc<crate::stats_histogram::StatsRegistry>>,
    plan_cache: Option<Arc<PlanCache>>,
    serving: Option<Arc<ServingCounters>>,
    lock_wait: std::time::Duration,
}

impl Engine {
    /// Creates an engine over an owned catalog snapshot. The disk must be
    /// the one the catalog's tables live on (temporaries are created there
    /// so their I/O is charged).
    pub fn over(catalog: Arc<Catalog>, disk: &SimDisk) -> Engine {
        Engine {
            catalog,
            disk: disk.clone(),
            config: ExecConfig::default(),
            statistics: None,
            plan_cache: None,
            serving: None,
            lock_wait: std::time::Duration::ZERO,
        }
    }

    /// Creates an engine from a borrowed catalog by cloning it into an
    /// owned snapshot. Shim for pre-serving code paths; new code should take
    /// an engine from `Database::engine()`/`Session::engine()` or call
    /// [`Engine::over`] with a shared snapshot.
    #[deprecated(note = "use Database::engine()/Session::engine() or Engine::over")]
    pub fn new(catalog: &Catalog, disk: &SimDisk) -> Engine {
        Engine::over(Arc::new(catalog.clone()), disk)
    }

    /// Attaches a shared statistics registry; histograms are built lazily
    /// (one scan per column on first use) and reused across queries.
    pub fn with_statistics(mut self, stats: Arc<crate::stats_histogram::StatsRegistry>) -> Engine {
        self.statistics = Some(stats);
        self
    }

    /// Attaches a shared plan cache: `Strategy::Unnest` statements look up
    /// their verified plan by normalized SQL + catalog version before
    /// planning from scratch, and record what they built on a miss.
    pub fn with_plan_cache(mut self, cache: Arc<PlanCache>) -> Engine {
        self.plan_cache = Some(cache);
        self
    }

    /// Attaches the database-wide serving counters so outcomes can snapshot
    /// the in-flight statement count.
    pub fn with_serving_counters(mut self, counters: Arc<ServingCounters>) -> Engine {
        self.serving = Some(counters);
        self
    }

    /// Charges catalog-lock wait time (measured by the session layer while
    /// acquiring its catalog snapshot) to this statement's serving report.
    pub fn with_lock_wait(mut self, wait: std::time::Duration) -> Engine {
        self.lock_wait = wait;
        self
    }

    /// Overrides the execution configuration (buffer and sort budgets).
    pub fn with_config(mut self, config: ExecConfig) -> Engine {
        self.config = config;
        self
    }

    /// Sets the worker-thread count for external sorts and flat merge-joins
    /// (see [`ExecConfig::threads`]). Any value returns bit-identical answers
    /// and identical cost counters; `1` is the serial path.
    pub fn with_threads(mut self, threads: usize) -> Engine {
        self.config.threads = threads.max(1);
        self
    }

    /// The configuration in effect.
    pub fn config(&self) -> ExecConfig {
        self.config
    }

    /// The catalog snapshot this engine plans against.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// Parses and runs a Fuzzy SQL query with the given strategy.
    pub fn run_sql(&self, sql: &str, strategy: Strategy) -> Result<QueryOutcome> {
        let q = fuzzy_sql::parse(sql)?;
        self.run(&q, strategy)
    }

    /// Runs a parsed query with the given strategy.
    ///
    /// Every page allocated while the statement runs is a temporary — sort
    /// runs, partition scratch, materialized intermediates; base tables are
    /// loaded outside statement execution — so all of them are returned to
    /// the disk's free list at statement end (on the error path too).
    /// Repeated statements therefore cannot grow the simulated disk. When
    /// statements from concurrent sessions overlap, the disk's scoped log
    /// defers reclamation to the last statement to finish, so one session
    /// never frees a temporary another is still reading.
    pub fn run(&self, q: &fuzzy_sql::Query, strategy: Strategy) -> Result<QueryOutcome> {
        self.disk.begin_alloc_log();
        let result = self.run_query(q, strategy);
        for page in self.disk.take_alloc_log() {
            self.disk.free_page(page);
        }
        result
    }

    /// Consults the plan cache (when attached) for the unnested plan of `q`,
    /// building, verifying, and inserting on a miss. Returns the planned
    /// form plus the cache annotation for the outcome's [`ServingInfo`].
    pub fn plan_for(&self, q: &fuzzy_sql::Query) -> Result<(Planned, ServingInfo)> {
        let mut info = ServingInfo { lock_wait: self.lock_wait, ..ServingInfo::default() };
        let cache = match &self.plan_cache {
            Some(c) => c,
            None => {
                // No cache: plan from scratch; the executor's debug gate
                // still verifies before running.
                let planned = match build_plan(q, &self.catalog) {
                    Ok(plan) => Planned::Plan(Arc::new(plan)),
                    Err(EngineError::Unsupported(_)) => Planned::NaiveFallback,
                    Err(e) => return Err(e),
                };
                return Ok((planned, info));
            }
        };
        let key = PlanCache::key(q, &self.config);
        let version = self.catalog.version();
        if let Some((planned, _verified)) = cache.lookup(&key, version) {
            info.cache_hit = Some(true);
            info.cache = cache.stats();
            return Ok((planned, info));
        }
        let planned = match build_plan(q, &self.catalog) {
            Ok(plan) => {
                // Verify once at build time (in every build profile): cache
                // hits then run the plan with zero re-verification.
                info.plan_verifications = 1;
                let report =
                    crate::verify::verify_plan(&plan, &self.config, self.statistics.as_deref());
                if let Some(v) = report.violations.first() {
                    return Err(EngineError::Verify(format!(
                        "{v} ({} violation(s) in plan {})",
                        report.violations.len(),
                        report.plan_label
                    )));
                }
                Planned::Plan(Arc::new(plan))
            }
            Err(EngineError::Unsupported(_)) => Planned::NaiveFallback,
            Err(e) => return Err(e),
        };
        cache.insert(key, version, planned.clone(), true);
        info.cache_hit = Some(false);
        info.cache = cache.stats();
        Ok((planned, info))
    }

    /// Runs an already-planned statement (the `PreparedQuery` path): the
    /// pinned plan executes with no re-planning and no re-verification.
    pub fn run_planned(
        &self,
        q: &fuzzy_sql::Query,
        planned: &Planned,
        mut info: ServingInfo,
    ) -> Result<QueryOutcome> {
        self.disk.begin_alloc_log();
        info.lock_wait = self.lock_wait;
        let result = self.run_unnest_planned(q, planned, info);
        for page in self.disk.take_alloc_log() {
            self.disk.free_page(page);
        }
        result
    }

    fn run_query(&self, q: &fuzzy_sql::Query, strategy: Strategy) -> Result<QueryOutcome> {
        match strategy {
            Strategy::Unnest => {
                let (planned, info) = self.plan_for(q)?;
                self.run_unnest_planned(q, &planned, info)
            }
            Strategy::Naive => {
                let io_before = self.disk.io();
                let start = Instant::now();
                let (answer, metrics) = self.run_naive_metered(q)?;
                self.finish_outcome(
                    q,
                    answer,
                    ExecStats::default(),
                    metrics,
                    "naive".to_string(),
                    ServingInfo::default(),
                    start,
                    io_before,
                )
            }
            Strategy::NestedLoop => {
                let io_before = self.disk.io();
                let start = Instant::now();
                let plan = build_plan(q, &self.catalog)?;
                let mut ex = Executor::new(&self.disk, self.config);
                let answer = ex.run_baseline(&plan)?;
                let (stats, metrics) = (ex.stats(), ex.take_metrics());
                self.finish_outcome(
                    q,
                    answer,
                    stats,
                    metrics,
                    format!("nested-loop:{}", plan.label()),
                    ServingInfo::default(),
                    start,
                    io_before,
                )
            }
            Strategy::MaterializedNestedLoop => {
                let io_before = self.disk.io();
                let start = Instant::now();
                let plan = build_plan(q, &self.catalog)?;
                let mut ex = Executor::new(&self.disk, self.config);
                let answer = ex.run_baseline_materialized(&plan)?;
                let (stats, metrics) = (ex.stats(), ex.take_metrics());
                self.finish_outcome(
                    q,
                    answer,
                    stats,
                    metrics,
                    format!("materialized-nl:{}", plan.label()),
                    ServingInfo::default(),
                    start,
                    io_before,
                )
            }
        }
    }

    /// Executes the planned form of an unnest-strategy statement.
    fn run_unnest_planned(
        &self,
        q: &fuzzy_sql::Query,
        planned: &Planned,
        info: ServingInfo,
    ) -> Result<QueryOutcome> {
        let io_before = self.disk.io();
        let start = Instant::now();
        let (answer, exec_stats, metrics, plan_label) = match planned {
            Planned::Plan(plan) => {
                let mut ex = Executor::new(&self.disk, self.config);
                if let Some(stats) = &self.statistics {
                    ex = ex.with_statistics(stats.clone());
                }
                // A cached or freshly cached plan was verified when built;
                // an uncached plan keeps the executor's own debug gate.
                let answer = if info.cache_hit.is_some() {
                    ex.run_preverified(plan)?
                } else {
                    ex.run(plan)?
                };
                (answer, ex.stats(), ex.take_metrics(), format!("unnest:{}", plan.label()))
            }
            Planned::NaiveFallback => {
                let (answer, metrics) = self.run_naive_metered(q)?;
                (answer, ExecStats::default(), metrics, "naive-fallback".to_string())
            }
        };
        self.finish_outcome(q, answer, exec_stats, metrics, plan_label, info, start, io_before)
    }

    /// Applies the presentation steps (session default threshold, ORDER BY,
    /// LIMIT) and assembles the outcome.
    #[allow(clippy::too_many_arguments)]
    fn finish_outcome(
        &self,
        q: &fuzzy_sql::Query,
        answer: Relation,
        exec_stats: ExecStats,
        metrics: QueryMetrics,
        plan_label: String,
        mut serving: ServingInfo,
        start: Instant,
        io_before: IoSnapshot,
    ) -> Result<QueryOutcome> {
        let mut answer = answer;
        // The session-level `WITH D > z` default applies only when the
        // statement carries no explicit threshold, and before presentation
        // (ORDER BY / LIMIT see the thresholded answer). It is a pure filter
        // — degrees are unchanged — so every strategy agrees.
        if q.with_threshold.is_none() {
            if let Some(z) = self.config.default_threshold {
                answer = answer.with_threshold(Degree::clamped(z), true);
            }
        }
        if let Some(order) = &q.order_by {
            answer = match &order.key {
                fuzzy_sql::OrderKey::Degree => answer.ordered_by_degree(order.descending),
                fuzzy_sql::OrderKey::Column(c) => {
                    let idx = answer.schema().index_of(&c.column).ok_or_else(|| {
                        EngineError::Bind(format!("ORDER BY column {c} not in the select list"))
                    })?;
                    answer.ordered_by_column(idx, order.descending)
                }
            };
        }
        if let Some(n) = q.limit {
            answer = answer.limited(n);
        }
        let cpu = start.elapsed();
        let io = self.disk.io().since(&io_before);
        serving.lock_wait = self.lock_wait;
        if let Some(counters) = &self.serving {
            serving.sessions_in_flight = counters.in_flight();
        }
        Ok(QueryOutcome {
            answer,
            measurement: Measurement { io, cpu },
            exec_stats,
            metrics,
            serving,
            plan_label,
        })
    }

    /// Explains how a query would be evaluated under [`Strategy::Unnest`]:
    /// its classified type, the chosen strategy, the unnested plan (or the
    /// naive fallback), and deterministic cost estimates.
    pub fn explain(&self, sql: &str) -> Result<String> {
        let q = fuzzy_sql::parse(sql)?;
        self.explain_query(&q)
    }

    /// [`Engine::explain`] over an already-parsed query.
    pub fn explain_query(&self, q: &fuzzy_sql::Query) -> Result<String> {
        crate::explain::render_explain(q, &self.catalog, &self.config, self.statistics.as_deref())
    }

    /// Runs the query under [`Strategy::Unnest`] and renders the plan
    /// annotated with the *actual* per-operator counters and wall times.
    /// Returns the rendering together with the outcome.
    pub fn explain_analyze(&self, sql: &str) -> Result<(String, QueryOutcome)> {
        let q = fuzzy_sql::parse(sql)?;
        self.explain_analyze_query(&q)
    }

    /// [`Engine::explain_analyze`] over an already-parsed query.
    pub fn explain_analyze_query(&self, q: &fuzzy_sql::Query) -> Result<(String, QueryOutcome)> {
        let mut out = self.explain_query(q)?;
        let outcome = self.run(q, Strategy::Unnest)?;
        out.push_str(&crate::explain::render_actual(&outcome));
        Ok((out, outcome))
    }

    /// Renders the `EXPLAIN VERIFY` text for a query: the static plan
    /// verifier's report (rewrite rule, push-down bound, per-operator
    /// required/delivered properties, violations). See [`crate::verify`].
    pub fn explain_verify(&self, sql: &str) -> Result<String> {
        let q = fuzzy_sql::parse(sql)?;
        self.explain_verify_query(&q)
    }

    /// [`Engine::explain_verify`] over an already-parsed query.
    pub fn explain_verify_query(&self, q: &fuzzy_sql::Query) -> Result<String> {
        crate::explain::render_verify(q, &self.catalog, &self.config, self.statistics.as_deref())
    }

    /// Statically verifies the plan the engine would run for this query
    /// under [`Strategy::Unnest`]. Returns `Ok(None)` when the query falls
    /// back to the naive evaluator (nothing to verify — the reference
    /// evaluator is the semantics).
    pub fn verify(&self, sql: &str) -> Result<Option<crate::verify::VerifyReport>> {
        let q = fuzzy_sql::parse(sql)?;
        self.verify_query(&q)
    }

    /// [`Engine::verify`] over an already-parsed query.
    pub fn verify_query(
        &self,
        q: &fuzzy_sql::Query,
    ) -> Result<Option<crate::verify::VerifyReport>> {
        match build_plan(q, &self.catalog) {
            Ok(plan) => Ok(Some(crate::verify::verify_plan(
                &plan,
                &self.config,
                self.statistics.as_deref(),
            ))),
            Err(EngineError::Unsupported(_)) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Runs the naive evaluator under a single `naive-eval` operator node so
    /// fallback runs still carry comparable metrics.
    fn run_naive_metered(&self, q: &fuzzy_sql::Query) -> Result<(Relation, QueryMetrics)> {
        let mut metrics = QueryMetrics::default();
        let id = metrics.begin(OpKind::Naive, "naive-eval");
        let io0 = self.disk.io();
        let t0 = Instant::now();
        let pool = BufferPool::new(&self.disk, self.config.buffer_pages);
        let ev = NaiveEvaluator::new(&self.catalog, &pool);
        let answer = ev.eval(q)?;
        let m = metrics.op_mut(id);
        m.fuzzy_comparisons = ev.comparisons();
        m.tuples_out = answer.len() as u64;
        m.add_pool(&pool.stats());
        metrics.finish(id, t0.elapsed(), self.disk.io().since(&io0));
        Ok((answer, metrics))
    }

    /// Raw I/O counters of the underlying disk (for experiment harnesses).
    pub fn disk_io(&self) -> IoSnapshot {
        self.disk.io()
    }
}
