//! Equi-depth histograms for selectivity estimation.
//!
//! The greedy join-order optimizer (Section 8's "optimal join order" step)
//! needs to *rank* relations by their size after local predicates. A fixed
//! per-predicate discount is blind to the data; an equi-depth histogram over
//! the α-cut left endpoints of a column gives a defensible estimate of how
//! many tuples can satisfy a comparison with a constant — fuzzily: a tuple
//! can satisfy `X θ c` only if its support interval is positioned
//! appropriately, which the histogram bounds.

use fuzzy_core::{CmpOp, Degree, Value};
use fuzzy_rel::StoredTable;
use fuzzy_storage::{BufferPool, Result};

/// An equi-depth histogram over one numeric column.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Bucket boundaries (ascending); bucket `k` covers
    /// `[bounds[k], bounds[k+1])`.
    bounds: Vec<f64>,
    /// Tuples per bucket (equi-depth: roughly equal).
    depths: Vec<u64>,
    /// Tuples with non-numeric values in the column.
    other: u64,
    /// Maximum support width observed (bounds the fuzzy "smear" of a value
    /// around its left endpoint).
    max_width: f64,
}

impl Histogram {
    /// Builds a histogram with (up to) `buckets` buckets by scanning the
    /// table once through `pool`.
    pub fn build(
        table: &StoredTable,
        attr: usize,
        buckets: usize,
        pool: &BufferPool,
    ) -> Result<Histogram> {
        let mut lefts: Vec<f64> = Vec::new();
        let mut widths: Vec<f64> = Vec::new();
        let mut other = 0u64;
        for t in table.scan(pool) {
            let t = t?;
            match t.values[attr].interval() {
                Some((lo, hi)) => {
                    lefts.push(lo);
                    widths.push(hi - lo);
                }
                None => other += 1,
            }
        }
        lefts.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let max_width = widths.iter().copied().fold(0.0f64, f64::max);
        let buckets = buckets.max(1).min(lefts.len().max(1));
        let mut bounds = Vec::with_capacity(buckets + 1);
        let mut depths = Vec::with_capacity(buckets);
        if !lefts.is_empty() {
            bounds.push(lefts[0]);
            for k in 1..=buckets {
                let end = k * lefts.len() / buckets;
                let start = (k - 1) * lefts.len() / buckets;
                depths.push((end - start) as u64);
                let b = if k == buckets { lefts[lefts.len() - 1] } else { lefts[end] };
                bounds.push(b);
            }
        }
        Ok(Histogram { bounds, depths, other, max_width })
    }

    /// Total numeric tuples summarized.
    pub fn total(&self) -> u64 {
        self.depths.iter().sum::<u64>() + self.other
    }

    /// Estimated number of tuples whose comparison `X θ probe` can have a
    /// positive degree. Conservative (an upper bound up to bucket
    /// granularity): fuzzy supports smear each value by at most the observed
    /// maximum width.
    pub fn estimate(&self, op: CmpOp, probe: &Value) -> u64 {
        let (plo, phi) = match probe.interval() {
            Some(iv) => iv,
            None => return self.total(), // non-numeric probe: no information
        };
        if self.bounds.is_empty() {
            return self.other;
        }
        // A tuple with left endpoint l (and width <= w) has support
        // [l, l + w']. Positive degree requires, per operator:
        //   Eq: support intersects [plo, phi]  -> l in [plo - w, phi]
        //   Le/Lt: l (anywhere left of phi)    -> l in (-inf, phi]
        //   Ge/Gt: support right end >= plo    -> l in [plo - w, +inf)
        //   Ne: almost anything                -> total
        let w = self.max_width;
        let (lo, hi) = match op {
            CmpOp::Eq => (plo - w, phi),
            CmpOp::Le | CmpOp::Lt => (f64::NEG_INFINITY, phi),
            CmpOp::Ge | CmpOp::Gt => (plo - w, f64::INFINITY),
            CmpOp::Ne => return self.total(),
        };
        let mut est = self.other;
        for k in 0..self.depths.len() {
            let (blo, bhi) = (self.bounds[k], self.bounds[k + 1]);
            if bhi < lo || blo > hi {
                continue; // bucket wholly outside
            }
            if blo >= lo && bhi <= hi {
                est += self.depths[k]; // wholly inside
            } else {
                // Partial overlap: assume uniformity within the bucket.
                let span = (bhi - blo).max(f64::MIN_POSITIVE);
                let cover = (bhi.min(hi) - blo.max(lo)).clamp(0.0, span);
                est += ((self.depths[k] as f64) * cover / span).ceil() as u64;
            }
        }
        est.min(self.total())
    }

    /// Estimated selectivity in `[0, 1]` of `X θ probe`.
    pub fn selectivity(&self, op: CmpOp, probe: &Value) -> f64 {
        let t = self.total();
        if t == 0 {
            return 0.0;
        }
        self.estimate(op, probe) as f64 / t as f64
    }

    /// The largest support width seen while building.
    pub fn max_support_width(&self) -> f64 {
        self.max_width
    }

    /// Unused for now by estimate(); handy for diagnostics.
    pub fn alpha_hint(&self) -> Degree {
        Degree::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzy_core::Trapezoid;
    use fuzzy_rel::{AttrType, Schema, Tuple};
    use fuzzy_storage::SimDisk;

    fn table_with(disk: &SimDisk, values: &[Value]) -> StoredTable {
        let t = StoredTable::create(disk, "H", Schema::of(&[("X", AttrType::Number)]));
        t.load(values.iter().map(|v| Tuple::full(vec![v.clone()]))).unwrap();
        t
    }

    #[test]
    fn equi_depth_buckets() {
        let disk = SimDisk::with_default_page_size();
        let vals: Vec<Value> = (0..100).map(|i| Value::number(i as f64)).collect();
        let t = table_with(&disk, &vals);
        let pool = BufferPool::new(&disk, 4);
        let h = Histogram::build(&t, 0, 10, &pool).unwrap();
        assert_eq!(h.total(), 100);
        // Every bucket holds ~10 tuples.
        assert!(h.depths.iter().all(|&d| d == 10), "{:?}", h.depths);
    }

    #[test]
    fn estimates_track_truth_for_crisp_data() {
        let disk = SimDisk::with_default_page_size();
        let vals: Vec<Value> = (0..200).map(|i| Value::number((i % 100) as f64)).collect();
        let t = table_with(&disk, &vals);
        let pool = BufferPool::new(&disk, 4);
        let h = Histogram::build(&t, 0, 20, &pool).unwrap();
        // X <= 49.5: truth = 100 of 200.
        let est = h.estimate(CmpOp::Le, &Value::number(49.5));
        assert!((90..=115).contains(&(est as i64)), "estimate {est}");
        // X = 10 (crisp): a thin slice.
        let eq = h.estimate(CmpOp::Eq, &Value::number(10.0));
        assert!(eq <= 30, "crisp equality should be selective, got {eq}");
        // Ne: everything.
        assert_eq!(h.estimate(CmpOp::Ne, &Value::number(10.0)), 200);
    }

    #[test]
    fn fuzzy_widths_widen_equality_estimates() {
        let disk = SimDisk::with_default_page_size();
        let vals: Vec<Value> = (0..100)
            .map(|i| {
                Value::fuzzy(
                    Trapezoid::new(i as f64, i as f64 + 2.0, i as f64 + 3.0, i as f64 + 5.0)
                        .unwrap(),
                )
            })
            .collect();
        let t = table_with(&disk, &vals);
        let pool = BufferPool::new(&disk, 8);
        let h = Histogram::build(&t, 0, 10, &pool).unwrap();
        assert_eq!(h.max_support_width(), 5.0);
        // Probing at 50 must count the values whose [l, l+5] supports can
        // reach 50: lefts in [45, 50].
        let est = h.estimate(CmpOp::Eq, &Value::number(50.0));
        assert!((5..=20).contains(&(est as i64)), "estimate {est}");
    }

    #[test]
    fn degenerate_inputs() {
        let disk = SimDisk::with_default_page_size();
        let empty = table_with(&disk, &[]);
        let pool = BufferPool::new(&disk, 4);
        let h = Histogram::build(&empty, 0, 8, &pool).unwrap();
        assert_eq!(h.total(), 0);
        assert_eq!(h.estimate(CmpOp::Eq, &Value::number(1.0)), 0);
        assert_eq!(h.selectivity(CmpOp::Le, &Value::number(1.0)), 0.0);
        // All-text column: everything lands in `other`.
        let texty = table_with(&disk, &[Value::text("a"), Value::text("b")]);
        let h = Histogram::build(&texty, 0, 4, &pool).unwrap();
        assert_eq!(h.total(), 2);
        assert_eq!(h.estimate(CmpOp::Eq, &Value::number(1.0)), 2);
    }
}

/// A lazily-populated cache of per-column histograms, shared across queries
/// (the `ANALYZE`-style statistics store the optimizer consults). The cache
/// sits behind a mutex so one registry can serve concurrent sessions; the
/// critical section covers only the map lookup/insert, never the build scan
/// (two racing first requests may both scan — the second insert wins, which
/// is harmless because histograms of the same table snapshot are identical).
#[derive(Debug, Default)]
pub struct StatsRegistry {
    cache: std::sync::Mutex<std::collections::HashMap<(String, usize), std::sync::Arc<Histogram>>>,
    /// Buckets per histogram.
    buckets: usize,
}

impl StatsRegistry {
    /// A registry building `buckets`-bucket histograms (16 by default via
    /// [`Default`]).
    pub fn new(buckets: usize) -> StatsRegistry {
        StatsRegistry { cache: Default::default(), buckets: buckets.max(1) }
    }

    /// The histogram for `(table, attr)`, building it with one scan on the
    /// first request.
    pub fn histogram_for(
        &self,
        table: &StoredTable,
        attr: usize,
        pool: &BufferPool,
    ) -> Result<std::sync::Arc<Histogram>> {
        let key = (table.name().to_lowercase(), attr);
        if let Some(h) = self.cache.lock().expect("stats lock").get(&key) {
            return Ok(h.clone());
        }
        let buckets = if self.buckets == 0 { 16 } else { self.buckets };
        let h = std::sync::Arc::new(Histogram::build(table, attr, buckets, pool)?);
        self.cache.lock().expect("stats lock").insert(key, h.clone());
        Ok(h)
    }

    /// Number of cached histograms.
    pub fn len(&self) -> usize {
        self.cache.lock().expect("stats lock").len()
    }

    /// True iff nothing has been analyzed yet.
    pub fn is_empty(&self) -> bool {
        self.cache.lock().expect("stats lock").is_empty()
    }
}

#[cfg(test)]
mod registry_tests {
    use super::*;
    use fuzzy_rel::{AttrType, Schema, Tuple};
    use fuzzy_storage::SimDisk;

    #[test]
    fn registry_builds_once_and_caches() {
        let disk = SimDisk::with_default_page_size();
        let t = StoredTable::create(&disk, "T", Schema::of(&[("X", AttrType::Number)]));
        t.load((0..50).map(|i| Tuple::full(vec![Value::number(i as f64)]))).unwrap();
        let pool = BufferPool::new(&disk, 4);
        let reg = StatsRegistry::new(8);
        assert!(reg.is_empty());
        let before = disk.io().reads;
        let h1 = reg.histogram_for(&t, 0, &pool).unwrap();
        let mid = disk.io().reads;
        let h2 = reg.histogram_for(&t, 0, &pool).unwrap();
        let after = disk.io().reads;
        assert!(mid > before, "first build scans");
        assert_eq!(mid, after, "second request is cached");
        assert_eq!(h1.total(), h2.total());
        assert_eq!(reg.len(), 1);
    }
}
