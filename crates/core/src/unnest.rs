//! The unnesting transformer: nested Fuzzy SQL → flat plans.
//!
//! Implements the paper's transformations with the equivalences of
//! Theorems 4.1–8.1:
//!
//! | query type | section | plan |
//! |---|---|---|
//! | N, J (and flat, SOME) | 4 | [`FlatPlan`] (Query N′/J′) |
//! | NX, JX (`NOT IN`) | 5 | [`AntiPlan`] with [`AntiKind::Exclusion`] (Query JX′) |
//! | A, JA (aggregates) | 6 | [`AggPlan`] (T1/T2 + Query JA′ / COUNT′) |
//! | ALL, JALL | 7 | [`AntiPlan`] with [`AntiKind::All`] (Query JALL′) |
//! | chain Q_K | 8 | [`FlatPlan`] over K relations (Query Q′_K) |
//!
//! Query shapes outside the catalogue (`EXISTS`, several sub-queries per
//! block, grouped user queries, multi-table inner blocks) return
//! [`EngineError::Unsupported`]; the engine then falls back to the naive
//! evaluator.

use crate::error::{EngineError, Result};
use crate::plan::{
    AggDegree, AggPlan, AntiKind, AntiPlan, FlatPlan, PlanCol, PlanCompare, PlanOperand, PlanTable,
    RewriteRule, UnnestPlan,
};
use fuzzy_core::{Value, Vocabulary};
use fuzzy_rel::{AttrType, Catalog, Schema, StoredTable};
use fuzzy_sql::{
    classify, ColumnRef, Operand, Predicate, Quantifier, Query, QueryClass, SelectItem,
};

/// Builds an unnested plan for the query, per its classified type.
pub fn build_plan(q: &Query, catalog: &Catalog) -> Result<UnnestPlan> {
    match classify(q) {
        QueryClass::Flat => flat_plan(&[q], catalog, QueryClass::Flat),
        class @ (QueryClass::TypeN
        | QueryClass::TypeJ
        | QueryClass::TypeJSome
        | QueryClass::Chain(_)) => {
            let blocks = collect_chain_blocks(q);
            flat_plan(&blocks, catalog, class)
        }
        QueryClass::TypeNX | QueryClass::TypeJX => anti_exclusion_plan(q, catalog),
        QueryClass::TypeExists | QueryClass::TypeNotExists => exists_plan(q, catalog),
        QueryClass::TypeAll | QueryClass::TypeJAll => anti_all_plan(q, catalog),
        QueryClass::TypeA | QueryClass::TypeJA => agg_plan(q, catalog),
        QueryClass::General => Err(EngineError::Unsupported(
            "query shape outside the paper's unnesting catalogue (EXISTS, multiple \
             sub-queries per block, or mixed nesting); use the naive strategy"
                .into(),
        )),
    }
}

/// The blocks of a chain query, outermost first. For type N/J/SOME this is
/// the two blocks; for Chain(K) all K.
fn collect_chain_blocks(q: &Query) -> Vec<&Query> {
    let mut blocks = vec![q];
    let mut cur = q;
    loop {
        let subs = cur.direct_subqueries();
        match subs.first() {
            Some(next) => {
                blocks.push(next);
                cur = next;
            }
            None => return blocks,
        }
    }
}

// ---------------------------------------------------------------------------
// Scopes and binding
// ---------------------------------------------------------------------------

/// Name-resolution scope: `(binding, schema)` frames, outermost first.
struct Scope {
    frames: Vec<(String, Schema)>,
}

impl Scope {
    fn resolve(&self, c: &ColumnRef) -> Result<(PlanCol, AttrType)> {
        // Innermost-first, mirroring the naive evaluator.
        for (binding, schema) in self.frames.iter().rev() {
            if let Some(t) = &c.table {
                if !binding.eq_ignore_ascii_case(t) {
                    continue;
                }
                if let Some(attr) = schema.index_of(&c.column) {
                    return Ok((PlanCol { binding: binding.clone(), attr }, schema.attr(attr).ty));
                }
                if c.is_degree() {
                    return Err(EngineError::Unsupported(format!(
                        "the membership-degree pseudo-column {c} in a predicate is \
                         evaluated by the naive strategy"
                    )));
                }
                return Err(EngineError::Bind(format!("no attribute {} in {}", c.column, binding)));
            }
            if let Some(attr) = schema.index_of(&c.column) {
                return Ok((PlanCol { binding: binding.clone(), attr }, schema.attr(attr).ty));
            }
        }
        if c.is_degree() {
            // The Section 5 degree-as-predicate device: physical plans carry
            // degrees implicitly, so route to the naive evaluator.
            return Err(EngineError::Unsupported(format!(
                "the membership-degree pseudo-column {c} in a predicate is \
                 evaluated by the naive strategy"
            )));
        }
        Err(EngineError::Bind(format!("unresolved column {c}")))
    }
}

fn lookup_table(catalog: &Catalog, name: &str) -> Result<StoredTable> {
    catalog.table(name).cloned().ok_or_else(|| EngineError::Bind(format!("unknown table {name:?}")))
}

/// Binds a quoted term against its partner's attribute type: text partners
/// make it text; numeric partners resolve it in the vocabulary (falling back
/// to text for unknown terms, which then simply never match numbers).
fn bind_term(term: &str, partner: Option<AttrType>, vocab: &Vocabulary) -> Value {
    match partner {
        Some(AttrType::Text) => Value::text(term),
        _ => match vocab.resolve(term) {
            Ok(shape) => Value::fuzzy(shape),
            Err(_) => Value::text(term),
        },
    }
}

fn bind_operand(
    o: &Operand,
    partner: Option<AttrType>,
    scope: &Scope,
    vocab: &Vocabulary,
) -> Result<PlanOperand> {
    Ok(match o {
        Operand::Column(c) => PlanOperand::Col(scope.resolve(c)?.0),
        Operand::Number(n) => PlanOperand::Const(Value::number(*n)),
        Operand::Term(t) => PlanOperand::Const(bind_term(t, partner, vocab)),
        Operand::FuzzyLiteral(a, b, c, d) => {
            PlanOperand::Const(crate::naive::fuzzy_literal_value(*a, *b, *c, *d)?)
        }
    })
}

fn operand_type(o: &Operand, scope: &Scope) -> Option<AttrType> {
    match o {
        Operand::Column(c) => scope.resolve(c).ok().map(|(_, t)| t),
        Operand::Number(_) | Operand::FuzzyLiteral(..) => Some(AttrType::Number),
        Operand::Term(_) => None,
    }
}

fn bind_compare(
    lhs: &Operand,
    op: fuzzy_core::CmpOp,
    rhs: &Operand,
    scope: &Scope,
    vocab: &Vocabulary,
) -> Result<PlanCompare> {
    let lt = operand_type(lhs, scope);
    let rt = operand_type(rhs, scope);
    Ok(PlanCompare {
        lhs: bind_operand(lhs, rt, scope, vocab)?,
        op,
        rhs: bind_operand(rhs, lt, scope, vocab)?,
        tolerance: None,
    })
}

/// Distributes bound predicates: a predicate referencing (at most) one table
/// binding becomes local to that table; others become join predicates.
fn distribute(
    preds: Vec<PlanCompare>,
    tables: &mut [PlanTable],
    join_preds: &mut Vec<PlanCompare>,
) {
    'pred: for p in preds {
        let bindings = p.bindings();
        if let Some(first) = bindings.first() {
            if bindings.iter().all(|b| b == first) {
                if let Some(t) = tables.iter_mut().find(|t| t.binding == *first) {
                    t.local_preds.push(p);
                    continue 'pred;
                }
            }
        }
        join_preds.push(p);
    }
}

/// The single column a sub-query block selects.
fn block_select_column(q: &Query) -> Result<&ColumnRef> {
    match q.select.as_slice() {
        [SelectItem::Column(c)] => Ok(c),
        _ => Err(EngineError::Unsupported("sub-query must select exactly one plain column".into())),
    }
}

/// Output columns of the outermost block.
fn select_columns(q: &Query, scope: &Scope) -> Result<Vec<PlanCol>> {
    q.select
        .iter()
        .map(|item| match item {
            SelectItem::Column(c) => Ok(scope.resolve(c)?.0),
            other => Err(EngineError::Unsupported(format!(
                "physical plans project plain columns only, found {other:?}"
            ))),
        })
        .collect()
}

fn check_plain_block(q: &Query) -> Result<()> {
    if !q.group_by.is_empty() || !q.having.is_empty() {
        return Err(EngineError::Unsupported(
            "GROUP BY / HAVING in a user query is evaluated by the naive strategy".into(),
        ));
    }
    Ok(())
}

/// Inner blocks must not carry ORDER BY / LIMIT: limiting a sub-query changes
/// which tuples feed the unnesting, which the flat forms cannot express.
fn check_inner_block(q: &Query) -> Result<()> {
    check_plain_block(q)?;
    if q.order_by.is_some() || q.limit.is_some() {
        return Err(EngineError::Unsupported(
            "ORDER BY / LIMIT in a sub-query is evaluated by the naive strategy".into(),
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Flat plans (N', J', SOME, chains, already-flat queries)
// ---------------------------------------------------------------------------

fn flat_plan(blocks: &[&Query], catalog: &Catalog, class: QueryClass) -> Result<UnnestPlan> {
    let vocab = catalog.vocabulary();
    let mut tables: Vec<PlanTable> = Vec::new();
    let mut frames: Vec<(String, Schema)> = Vec::new();
    let mut level_bindings: Vec<Vec<String>> = Vec::new();
    // Register the tables of every block, outermost first; bindings must be
    // unique across blocks for the flattening to be expressible.
    for (bi, block) in blocks.iter().enumerate() {
        if bi == 0 {
            check_plain_block(block)?;
        } else {
            check_inner_block(block)?;
        }
        level_bindings.push(Vec::new());
        for tref in &block.from {
            let binding = tref.binding_name().to_string();
            if tables.iter().any(|t| t.binding.eq_ignore_ascii_case(&binding)) {
                return Err(EngineError::Unsupported(format!(
                    "binding {binding:?} is reused across nesting levels"
                )));
            }
            let table = lookup_table(catalog, &tref.table)?;
            frames.push((binding.clone(), table.schema().clone()));
            level_bindings[bi].push(binding.clone());
            tables.push(PlanTable { binding, table, local_preds: Vec::new() });
        }
    }

    let mut join_preds: Vec<PlanCompare> = Vec::new();
    let mut frames_seen = 0usize;
    for (i, block) in blocks.iter().enumerate() {
        frames_seen += block.from.len();
        // Scope: every binding from the outermost block down to this one,
        // with this block's bindings innermost.
        let scope = Scope { frames: frames[..frames_seen].to_vec() };
        let mut bound: Vec<PlanCompare> = Vec::new();
        for p in &block.predicates {
            match p {
                Predicate::Compare { lhs, op, rhs } => {
                    bound.push(bind_compare(lhs, *op, rhs, &scope, vocab)?);
                }
                Predicate::Similar { lhs, rhs, tolerance } => {
                    let mut b = bind_compare(lhs, fuzzy_core::CmpOp::Eq, rhs, &scope, vocab)?;
                    b.tolerance = Some(*tolerance);
                    bound.push(b);
                }
                Predicate::In { lhs, negated, query: _ } => {
                    debug_assert!(!negated, "exclusion is not a chain link");
                    // The IN linkage becomes the equi-join
                    // R_i.Y_i = R_{i+1}.X_{i+1} (Theorem 8.1).
                    let inner = &blocks[i + 1];
                    let inner_col = block_select_column(inner)?;
                    let inner_scope =
                        Scope { frames: frames[..frames_seen + inner.from.len()].to_vec() };
                    let (rhs_col, rhs_ty) = inner_scope.resolve(inner_col)?;
                    let lhs_bound = bind_operand(lhs, Some(rhs_ty), &scope, vocab)?;
                    bound.push(PlanCompare {
                        lhs: lhs_bound,
                        op: fuzzy_core::CmpOp::Eq,
                        rhs: PlanOperand::Col(rhs_col),
                        tolerance: None,
                    });
                }
                Predicate::Quantified { lhs, op, quantifier, query } => {
                    debug_assert!(
                        matches!(quantifier, Quantifier::Some),
                        "ALL is routed to the anti plan"
                    );
                    // θ SOME unnests like IN with θ in place of equality.
                    let inner = query;
                    let inner_col = block_select_column(inner)?;
                    let inner_scope =
                        Scope { frames: frames[..frames_seen + inner.from.len()].to_vec() };
                    let (rhs_col, rhs_ty) = inner_scope.resolve(inner_col)?;
                    let lhs_bound = bind_operand(lhs, Some(rhs_ty), &scope, vocab)?;
                    bound.push(PlanCompare {
                        lhs: lhs_bound,
                        op: *op,
                        rhs: PlanOperand::Col(rhs_col),
                        tolerance: None,
                    });
                }
                other => {
                    return Err(EngineError::Unsupported(format!(
                        "unexpected predicate in a chain block: {other:?}"
                    )))
                }
            }
        }
        distribute(bound, &mut tables, &mut join_preds);
    }

    // Output columns of the outermost block only.
    let outer_frames = blocks[0].from.len();
    let outer_scope = Scope { frames: frames[..outer_frames].to_vec() };
    let select = select_columns(blocks[0], &outer_scope)?;
    // Tag with the equivalence rule. N vs. J is decided from the *bound*
    // plan, not the classifier: an unqualified inner reference to an outer
    // column is invisible to `classify` (it counts qualified names only) but
    // resolves to the outer binding here, making the plan correlated — the
    // tag must reflect what the plan actually is or the verifier's
    // independence check (R-T4.1-INDEP) would reject a sound plan.
    let rule = match class {
        QueryClass::TypeJSome => RewriteRule::TypeSome { blocks: level_bindings },
        QueryClass::Chain(_) => RewriteRule::Chain { blocks: level_bindings },
        QueryClass::TypeN | QueryClass::TypeJ => {
            let cross =
                join_preds.iter().filter(|p| cross_level(p, &level_bindings).is_some()).count();
            if cross <= 1 {
                RewriteRule::TypeN { blocks: level_bindings }
            } else {
                RewriteRule::TypeJ { blocks: level_bindings }
            }
        }
        _ => RewriteRule::Flat,
    };
    Ok(UnnestPlan::Flat(FlatPlan {
        tables,
        join_preds,
        select,
        threshold: blocks[0].with_threshold,
        rule,
    }))
}

/// The `(lo, hi)` level span of a predicate's bindings, when it references
/// more than one nesting level.
fn cross_level(p: &PlanCompare, levels: &[Vec<String>]) -> Option<(usize, usize)> {
    let mut lo = usize::MAX;
    let mut hi = 0usize;
    for b in p.bindings() {
        if let Some(l) = levels.iter().position(|lv| lv.iter().any(|x| x == b)) {
            lo = lo.min(l);
            hi = hi.max(l);
        }
    }
    (lo < hi).then_some((lo, hi))
}

// ---------------------------------------------------------------------------
// Two-level helper: a single outer table, a single inner table
// ---------------------------------------------------------------------------

struct TwoLevel {
    outer: PlanTable,
    inner: PlanTable,
    scope: Scope,
    /// Bound inner-block predicates that reference both relations.
    pair_preds: Vec<PlanCompare>,
}

fn two_level(q: &Query, sub: &Query, catalog: &Catalog) -> Result<TwoLevel> {
    check_plain_block(q)?;
    check_inner_block(sub)?;
    let (outer_ref, inner_ref) = match (q.from.as_slice(), sub.from.as_slice()) {
        ([o], [i]) => (o, i),
        _ => {
            return Err(EngineError::Unsupported(
                "NOT IN / ALL / aggregate unnesting requires single-table blocks".into(),
            ))
        }
    };
    let vocab = catalog.vocabulary();
    let outer_table = lookup_table(catalog, &outer_ref.table)?;
    let inner_table = lookup_table(catalog, &inner_ref.table)?;
    let ob = outer_ref.binding_name().to_string();
    let ib = inner_ref.binding_name().to_string();
    if ob.eq_ignore_ascii_case(&ib) {
        return Err(EngineError::Unsupported(format!(
            "binding {ob:?} is reused across nesting levels"
        )));
    }
    let scope = Scope {
        frames: vec![
            (ob.clone(), outer_table.schema().clone()),
            (ib.clone(), inner_table.schema().clone()),
        ],
    };
    let mut outer = PlanTable { binding: ob, table: outer_table, local_preds: Vec::new() };
    let mut inner = PlanTable { binding: ib, table: inner_table, local_preds: Vec::new() };

    // Outer block: simple predicates only (p1, folded into the outer scan);
    // the sub-query predicate itself is handled by the caller.
    let outer_scope = Scope { frames: scope.frames[..1].to_vec() };
    for p in &q.predicates {
        match p {
            Predicate::Compare { lhs, op, rhs } => {
                outer.local_preds.push(bind_compare(lhs, *op, rhs, &outer_scope, vocab)?);
            }
            Predicate::Similar { lhs, rhs, tolerance } => {
                let mut b = bind_compare(lhs, fuzzy_core::CmpOp::Eq, rhs, &outer_scope, vocab)?;
                b.tolerance = Some(*tolerance);
                outer.local_preds.push(b);
            }
            _ => {}
        }
    }

    // Inner block: p2 (inner-only) folds into the inner scan; predicates
    // touching the outer binding become pair predicates.
    let mut pair_preds = Vec::new();
    for p in &sub.predicates {
        let bound = match p {
            Predicate::Compare { lhs, op, rhs } => bind_compare(lhs, *op, rhs, &scope, vocab)?,
            Predicate::Similar { lhs, rhs, tolerance } => {
                let mut b = bind_compare(lhs, fuzzy_core::CmpOp::Eq, rhs, &scope, vocab)?;
                b.tolerance = Some(*tolerance);
                b
            }
            other => {
                return Err(EngineError::Unsupported(format!(
                    "nested predicate inside a 2-level inner block: {other:?}"
                )))
            }
        };
        let bindings = bound.bindings();
        if !bindings.is_empty() && bindings.iter().all(|b| *b == inner.binding) {
            inner.local_preds.push(bound);
        } else {
            pair_preds.push(bound);
        }
    }
    Ok(TwoLevel { outer, inner, scope, pair_preds })
}

/// Finds the merge-window equality among pair predicates: an *exact* `=`
/// between an outer column and an inner column. Similarity predicates never
/// qualify — their tolerance-widened matches are not bounded by support
/// intersection, so inner tuples outside the ⪯ window could still have
/// positive degree and window-scanning them would over-report group minima.
fn find_window(pair_preds: &[PlanCompare], outer: &str, inner: &str) -> Option<(PlanCol, PlanCol)> {
    for p in pair_preds {
        if p.op != fuzzy_core::CmpOp::Eq || p.tolerance.is_some() {
            continue;
        }
        match (p.lhs.as_col(), p.rhs.as_col()) {
            (Some(l), Some(r)) if l.binding == outer && r.binding == inner => {
                return Some((l.clone(), r.clone()))
            }
            (Some(l), Some(r)) if l.binding == inner && r.binding == outer => {
                return Some((r.clone(), l.clone()))
            }
            _ => {}
        }
    }
    None
}

// ---------------------------------------------------------------------------
// JX' / NX' (Section 5)
// ---------------------------------------------------------------------------

fn anti_exclusion_plan(q: &Query, catalog: &Catalog) -> Result<UnnestPlan> {
    let (lhs, sub) = match q.predicates.iter().find_map(|p| match p {
        Predicate::In { lhs, negated: true, query } => Some((lhs, query.as_ref())),
        _ => None,
    }) {
        Some(x) => x,
        None => return Err(EngineError::Unsupported("expected a NOT IN predicate".into())),
    };
    let mut tl = two_level(q, sub, catalog)?;
    let vocab = catalog.vocabulary();
    // The NOT IN pair R.Y = S.Z joins the negation's conjunction.
    let inner_col = block_select_column(sub)?;
    let (rhs_col, rhs_ty) = tl.scope.resolve(inner_col)?;
    let lhs_bound = bind_operand(lhs, Some(rhs_ty), &tl.scope, vocab)?;
    tl.pair_preds.push(PlanCompare {
        lhs: lhs_bound,
        op: fuzzy_core::CmpOp::Eq,
        rhs: PlanOperand::Col(rhs_col),
        tolerance: None,
    });
    let window = find_window(&tl.pair_preds, &tl.outer.binding, &tl.inner.binding);
    let outer_scope = Scope { frames: tl.scope.frames[..1].to_vec() };
    let select = select_columns(q, &outer_scope)?;
    Ok(UnnestPlan::Anti(AntiPlan {
        outer: tl.outer,
        inner: tl.inner,
        pair_preds: tl.pair_preds,
        kind: AntiKind::Exclusion,
        window,
        select,
        threshold: q.with_threshold,
        rule: RewriteRule::Exclusion,
    }))
}

// ---------------------------------------------------------------------------
// EXISTS / NOT EXISTS (unnested "similarly", per Section 7's remark)
// ---------------------------------------------------------------------------

fn exists_plan(q: &Query, catalog: &Catalog) -> Result<UnnestPlan> {
    let (negated, sub) = match q.predicates.iter().find_map(|p| match p {
        Predicate::Exists { negated, query } => Some((*negated, query.as_ref())),
        _ => None,
    }) {
        Some(x) => x,
        None => return Err(EngineError::Unsupported("expected an EXISTS predicate".into())),
    };
    let tl = two_level(q, sub, catalog)?;
    let outer_scope = Scope { frames: tl.scope.frames[..1].to_vec() };
    let select = select_columns(q, &outer_scope)?;
    if negated {
        // d_r = min(μ_R∧p₁, min_s (1 − min(μ_S∧p₂, d(corr)))) — the
        // Section 5 anti form with the correlation joins alone.
        let window = find_window(&tl.pair_preds, &tl.outer.binding, &tl.inner.binding);
        Ok(UnnestPlan::Anti(AntiPlan {
            outer: tl.outer,
            inner: tl.inner,
            pair_preds: tl.pair_preds,
            kind: AntiKind::Exclusion,
            window,
            select,
            threshold: q.with_threshold,
            rule: RewriteRule::Exclusion,
        }))
    } else {
        // d_r = min(μ_R∧p₁, max_s min(μ_S∧p₂, d(corr))): the flat join on
        // the correlation predicates with fuzzy-OR dedup plays the max.
        Ok(UnnestPlan::Flat(FlatPlan {
            tables: vec![tl.outer, tl.inner],
            join_preds: tl.pair_preds,
            select,
            threshold: q.with_threshold,
            rule: RewriteRule::Exists,
        }))
    }
}

// ---------------------------------------------------------------------------
// JALL' (Section 7)
// ---------------------------------------------------------------------------

fn anti_all_plan(q: &Query, catalog: &Catalog) -> Result<UnnestPlan> {
    let (lhs, op, sub) = match q.predicates.iter().find_map(|p| match p {
        Predicate::Quantified { lhs, op, quantifier: Quantifier::All, query } => {
            Some((lhs, *op, query.as_ref()))
        }
        _ => None,
    }) {
        Some(x) => x,
        None => return Err(EngineError::Unsupported("expected an ALL predicate".into())),
    };
    let tl = two_level(q, sub, catalog)?;
    let vocab = catalog.vocabulary();
    let inner_col = block_select_column(sub)?;
    let (rhs_col, rhs_ty) = tl.scope.resolve(inner_col)?;
    let lhs_bound = bind_operand(lhs, Some(rhs_ty), &tl.scope, vocab)?;
    let window = find_window(&tl.pair_preds, &tl.outer.binding, &tl.inner.binding);
    let outer_scope = Scope { frames: tl.scope.frames[..1].to_vec() };
    let select = select_columns(q, &outer_scope)?;
    Ok(UnnestPlan::Anti(AntiPlan {
        outer: tl.outer,
        inner: tl.inner,
        pair_preds: tl.pair_preds,
        kind: AntiKind::All { op, lhs: lhs_bound, rhs: PlanOperand::Col(rhs_col) },
        window,
        select,
        threshold: q.with_threshold,
        rule: RewriteRule::All,
    }))
}

// ---------------------------------------------------------------------------
// JA' / COUNT' (Section 6)
// ---------------------------------------------------------------------------

fn agg_plan(q: &Query, catalog: &Catalog) -> Result<UnnestPlan> {
    let (lhs, op1, sub) = match q.predicates.iter().find_map(|p| match p {
        Predicate::AggSubquery { lhs, op, query } => Some((lhs, *op, query.as_ref())),
        _ => None,
    }) {
        Some(x) => x,
        None => return Err(EngineError::Unsupported("expected an aggregate sub-query".into())),
    };
    let tl = two_level(q, sub, catalog)?;
    let vocab = catalog.vocabulary();
    // Inner select must be AGG(S.Z).
    let (agg, agg_col) = match sub.select.as_slice() {
        [SelectItem::Aggregate(agg, c)] => {
            let (col, _) = tl.scope.resolve(c)?;
            if col.binding != tl.inner.binding {
                return Err(EngineError::Unsupported(
                    "aggregate input must come from the inner relation".into(),
                ));
            }
            (*agg, col)
        }
        _ => {
            return Err(EngineError::Unsupported(
                "aggregate sub-query must select exactly one aggregate".into(),
            ))
        }
    };
    // At most one correlation predicate, of the form S.V op2 R.U.
    let corr = match tl.pair_preds.as_slice() {
        [] => None,
        [p] => {
            if p.tolerance.is_some() {
                // The grouping pipeline rebuilds the correlation comparison
                // from (col, op, col) and would drop the tolerance — route
                // similarity correlations to the naive evaluator instead.
                return Err(EngineError::Unsupported(
                    "a similarity correlation predicate in an aggregate sub-query is \
                     evaluated by the naive strategy"
                        .into(),
                ));
            }
            let (l, r) = match (p.lhs.as_col(), p.rhs.as_col()) {
                (Some(l), Some(r)) => (l.clone(), r.clone()),
                _ => {
                    return Err(EngineError::Unsupported(
                        "correlation predicate must compare two columns".into(),
                    ))
                }
            };
            if l.binding == tl.inner.binding && r.binding == tl.outer.binding {
                Some((r, p.op, l)) // S.V op2 R.U as written
            } else if l.binding == tl.outer.binding && r.binding == tl.inner.binding {
                Some((l, p.op.flipped(), r)) // rewrite R.U op S.V as S.V op' R.U
            } else {
                return Err(EngineError::Unsupported(
                    "correlation predicate must link the inner and outer relations".into(),
                ));
            }
        }
        _ => {
            return Err(EngineError::Unsupported(
                "aggregate unnesting supports a single correlation predicate".into(),
            ))
        }
    };
    let outer_scope = Scope { frames: tl.scope.frames[..1].to_vec() };
    let lhs_bound = bind_operand(lhs, Some(AttrType::Number), &outer_scope, vocab)?;
    let select = select_columns(q, &outer_scope)?;
    Ok(UnnestPlan::Agg(AggPlan {
        outer: tl.outer,
        inner: tl.inner,
        corr,
        agg: (agg, agg_col),
        compare: (lhs_bound, op1),
        select,
        threshold: q.with_threshold,
        agg_degree: AggDegree::One,
        rule: RewriteRule::Aggregate,
    }))
}
