//! The aggregate operator: pipelined T1/T2/COUNT′ evaluation (Theorem 6.1
//! and the type-A constant case) with the COUNT outer-join IF-THEN-ELSE for
//! empty groups, plus [`GroupSet`], the fuzzy set `T(r)` an aggregate is
//! applied to.

use crate::error::{EngineError, Result};
use crate::exec::op::{PhysicalOp, Slot, TreeState};
use crate::exec::{BoundOperand, Executor, Layout};
use crate::metrics::{OpKind, OperatorMetrics};
use crate::naive::apply_aggregate;
use crate::plan::{AggPlan, PlanCol, PlanCompare, PlanOperand};
use crate::verify::{PhysOp, Prop};
use fuzzy_core::{CmpOp, Degree, Value};
use fuzzy_rel::Tuple;
use fuzzy_sql::AggFunc;
use std::collections::HashMap;

/// The fuzzy set `T(r)` an aggregate is applied to: distinct values with
/// fuzzy-OR (max) degrees.
#[derive(Default)]
pub(crate) struct GroupSet {
    order: Vec<Value>,
    degrees: HashMap<Value, Degree>,
}

impl GroupSet {
    pub(crate) fn add(&mut self, v: Value, d: Degree) {
        if v.is_null() || !d.is_positive() {
            return;
        }
        match self.degrees.get_mut(&v) {
            Some(existing) => *existing = existing.or(d),
            None => {
                self.degrees.insert(v.clone(), d);
                self.order.push(v);
            }
        }
    }

    /// Applies the aggregate; `None` means the NULL result of an empty
    /// non-COUNT group (T2 "contains no tuple for u").
    pub(crate) fn aggregate(
        &self,
        agg: AggFunc,
        agg_degree: crate::plan::AggDegree,
    ) -> Result<Option<(Value, Degree)>> {
        if self.order.is_empty() && agg != AggFunc::Count {
            return Ok(None);
        }
        let refs: Vec<&Value> = self.order.iter().collect();
        let value = apply_aggregate(agg, &refs)?.expect("non-empty or COUNT");
        let member_degrees: Vec<Degree> = self.order.iter().map(|v| self.degrees[v]).collect();
        Ok(Some((value, agg_degree.of_group(&member_degrees))))
    }
}

/// How the aggregate operator consumes its inputs.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) enum AggMode {
    /// Type A: uncorrelated inner block — the aggregate is a constant.
    Const,
    /// Correlated on equality: pipelined merge grouping over sorted inputs.
    Merge,
    /// Correlated on a non-equality: sorted outer against the full inner set.
    Scan,
}

/// Declaration of the type-A constant aggregate over two filtered scans.
pub(crate) fn declared_properties_const(plan: &AggPlan, scan_o: usize, scan_i: usize) -> PhysOp {
    let z = Degree::ZERO;
    PhysOp::declare(
        format!("agg-const {} x {}", plan.outer.binding, plan.inner.binding),
        vec![scan_o, scan_i],
        vec![
            (0, Prop::Binding(plan.outer.binding.clone())),
            (1, Prop::Binding(plan.inner.binding.clone())),
        ],
        vec![Prop::Binding(plan.outer.binding.clone()), Prop::MinDegree(z)],
    )
}

/// Declaration of the pipelined merge-grouping aggregate over ⪯-sorted
/// inputs (correlation predicate `R.U = S.V`).
pub(crate) fn declared_properties_merge(
    plan: &AggPlan,
    ucol: &PlanCol,
    vcol: &PlanCol,
    sort_o: usize,
    sort_i: usize,
) -> PhysOp {
    let z = Degree::ZERO;
    PhysOp::declare(
        format!("agg-merge {} x {}", plan.outer.binding, plan.inner.binding),
        vec![sort_o, sort_i],
        vec![
            (0, Prop::Sorted { col: ucol.clone(), alpha: z }),
            (1, Prop::Sorted { col: vcol.clone(), alpha: z }),
            (0, Prop::Binding(plan.outer.binding.clone())),
            (1, Prop::Binding(plan.inner.binding.clone())),
        ],
        vec![Prop::Binding(plan.outer.binding.clone()), Prop::MinDegree(z)],
    )
}

/// Declaration of the scan-mode aggregate: sorted outer, full inner set.
pub(crate) fn declared_properties_scan(
    plan: &AggPlan,
    ucol: &PlanCol,
    sort_o: usize,
    scan_i: usize,
) -> PhysOp {
    let z = Degree::ZERO;
    PhysOp::declare(
        format!("agg-scan {} x {}", plan.outer.binding, plan.inner.binding),
        vec![sort_o, scan_i],
        vec![
            (0, Prop::Sorted { col: ucol.clone(), alpha: z }),
            (0, Prop::Binding(plan.outer.binding.clone())),
            (1, Prop::Binding(plan.inner.binding.clone())),
        ],
        vec![Prop::Binding(plan.outer.binding.clone()), Prop::MinDegree(z)],
    )
}

/// The aggregate operator: consumes its two input tables and publishes the
/// answer rows of `R.Y op1 AGG(...)`.
pub(crate) struct AggOp {
    slot: usize,
    decl: PhysOp,
    outer: usize,
    inner: usize,
    plan: AggPlan,
    mode: AggMode,
}

impl AggOp {
    pub(crate) fn new(
        slot: usize,
        decl: PhysOp,
        outer: usize,
        inner: usize,
        plan: AggPlan,
        mode: AggMode,
    ) -> Self {
        AggOp { slot, decl, outer, inner, plan, mode }
    }
}

impl PhysicalOp for AggOp {
    fn declared_properties(&self) -> &PhysOp {
        &self.decl
    }

    fn out_slot(&self) -> usize {
        self.slot
    }

    fn open(&mut self, ex: &mut Executor, state: &mut TreeState) -> Result<()> {
        let plan = &self.plan;
        let outer_layout = Layout::of_table(&plan.outer);
        let (_, select_idx) = outer_layout.projection(&plan.select)?;
        let (agg, agg_col) = (plan.agg.0, &plan.agg.1);
        let inner_layout = Layout::of_table(&plan.inner);
        let agg_idx = inner_layout.resolve(agg_col)?;
        let lhs_bound = outer_layout.bind(&PlanCompare {
            lhs: plan.compare.0.clone(),
            op: plan.compare.1,
            rhs: PlanOperand::Const(Value::Null), // placeholder; rhs injected per group
            tolerance: None,
        })?;
        let op1 = plan.compare.1;
        let mut rows: Vec<(Vec<Value>, Degree)> = Vec::new();

        // Applies R.Y op1 A to one outer tuple, honouring the COUNT
        // outer-join IF-THEN-ELSE for empty groups.
        let emit_outer = |r: &Tuple,
                          group: Option<&(Value, Degree)>,
                          rows: &mut Vec<(Vec<Value>, Degree)>,
                          m: &mut OperatorMetrics| {
            let lhs_val = match &lhs_bound.lhs {
                BoundOperand::Col(i) => r.values[*i].clone(),
                BoundOperand::Const(v) => v.clone(),
            };
            let d = match group {
                Some((a, da)) => {
                    m.fuzzy_comparisons += 1;
                    r.degree.and(*da).and(lhs_val.compare(op1, a))
                }
                None => {
                    if agg == AggFunc::Count {
                        // COUNT': [R.Y op1 T2.A : R.Y op1 0] — the ELSE branch.
                        m.fuzzy_comparisons += 1;
                        r.degree.and(lhs_val.compare(op1, &Value::number(0.0)))
                    } else {
                        Degree::ZERO // NULL aggregate satisfies nothing
                    }
                }
            };
            if d.is_positive() {
                m.tuples_out += 1;
                rows.push((crate::exec::project(r, &select_idx), d));
            }
        };

        let outer_t = state.take_table(self.outer)?;
        let inner_t = state.take_table(self.inner)?;

        match self.mode {
            AggMode::Const => {
                // Type A: the inner block is a constant; compute it once.
                let g = ex.begin_op(OpKind::Aggregate, self.decl.name.clone());
                let pool = ex.pool(ex.config.buffer_pages);
                let mut set: GroupSet = GroupSet::default();
                let mut m = OperatorMetrics::default();
                for s in inner_t.scan(&pool) {
                    let s = s?;
                    m.tuples_in += 1;
                    m.pairs_examined += 1;
                    set.add(s.values[agg_idx].clone(), s.degree);
                }
                let group = set.aggregate(agg, plan.agg_degree)?;
                let opool = ex.pool(1);
                for r in outer_t.scan(&opool) {
                    let r = r?;
                    m.tuples_in += 1;
                    emit_outer(&r, group.as_ref(), &mut rows, &mut m);
                }
                m.add_pool(&pool.stats());
                m.add_pool(&opool.stats());
                ex.absorb_op(&g, &m);
                ex.end_op(g);
            }
            AggMode::Merge => {
                let Some((ucol, _, vcol)) = plan.corr.as_ref() else {
                    return Err(EngineError::Verify(
                        "agg-merge lowered without a correlation".into(),
                    ));
                };
                // Pipelined merge grouping (Section 6): outer sorted on U,
                // inner sorted on V; identical U values are adjacent, so
                // each distinct u computes T'(u) from its window once.
                let mut cache: Option<(Value, Option<(Value, Degree)>)> = None;
                let uattr = ucol.attr;
                let vattr = vcol.attr;
                let agg_degree = plan.agg_degree;
                let mut agg_err: Option<EngineError> = None;
                let merge_res = ex.merge_window(
                    &outer_t,
                    uattr,
                    &inner_t,
                    vattr,
                    Degree::ZERO,
                    OpKind::Aggregate,
                    self.decl.name.clone(),
                    |r, rng, m| {
                        let u = &r.values[uattr];
                        let hit = matches!(&cache, Some((cu, _)) if cu == u);
                        if !hit {
                            let mut set = GroupSet::default();
                            for s in rng {
                                // μ_T'(u)(z) = max min(μ_S∧p₂, d(s.V = u));
                                // op2 = Eq here.
                                m.fuzzy_comparisons += 1;
                                let d = s.degree.and(s.values[vattr].compare(CmpOp::Eq, u));
                                if d.is_positive() {
                                    set.add(s.values[agg_idx].clone(), d);
                                }
                            }
                            match set.aggregate(agg, agg_degree) {
                                Ok(g) => cache = Some((u.clone(), g)),
                                Err(e) => {
                                    agg_err = Some(e.clone());
                                    return Err(e);
                                }
                            }
                        }
                        let group = cache.as_ref().expect("just set").1.as_ref();
                        emit_outer(r, group, &mut rows, m);
                        Ok(())
                    },
                );
                if let Some(e) = agg_err {
                    return Err(e);
                }
                merge_res?;
            }
            AggMode::Scan => {
                let Some((ucol, op2, vcol)) = plan.corr.as_ref() else {
                    return Err(EngineError::Verify(
                        "agg-scan lowered without a correlation".into(),
                    ));
                };
                // Non-equality op2: T'(u) cannot be window-scanned; build
                // the reduced inner set once and scan it per distinct u.
                let g = ex.begin_op(OpKind::Aggregate, self.decl.name.clone());
                let pool = ex.pool(ex.config.buffer_pages);
                let inner_all: Vec<Tuple> =
                    inner_t.scan(&pool).collect::<fuzzy_storage::Result<_>>()?;
                let opool = ex.pool(1);
                let mut cache: Option<(Value, Option<(Value, Degree)>)> = None;
                let mut m = OperatorMetrics::default();
                m.tuples_in += inner_all.len() as u64;
                for r in outer_t.scan(&opool) {
                    let r = r?;
                    m.tuples_in += 1;
                    let u = &r.values[ucol.attr];
                    let hit = matches!(&cache, Some((cu, _)) if cu == u);
                    if !hit {
                        let mut set = GroupSet::default();
                        for s in &inner_all {
                            m.pairs_examined += 1;
                            m.fuzzy_comparisons += 1;
                            let d = s.degree.and(s.values[vcol.attr].compare(*op2, u));
                            if d.is_positive() {
                                set.add(s.values[agg_idx].clone(), d);
                            }
                        }
                        cache = Some((u.clone(), set.aggregate(agg, plan.agg_degree)?));
                    }
                    let group = cache.as_ref().expect("just set").1.as_ref();
                    emit_outer(&r, group, &mut rows, &mut m);
                }
                m.add_pool(&pool.stats());
                m.add_pool(&opool.stats());
                ex.absorb_op(&g, &m);
                ex.end_op(g);
            }
        }
        state.set(self.slot, Slot::Answer(rows));
        Ok(())
    }
}
