//! The anti operator: grouped `MIN(D)` accumulation for negated nesting
//! (JX', NX', JALL', ALL' — Theorems 5.1 / 7.1). Each outer tuple's degree
//! is the fuzzy AND of the negated contributions of its matching inner
//! tuples; with a window predicate the inner scan is the same `Rng(r)`
//! merge window the flat join uses, which is exact because tuples outside
//! the window contribute the neutral 1.

use crate::error::{EngineError, Result};
use crate::exec::op::{PhysicalOp, Slot, TreeState};
use crate::exec::{BoundCompare, Executor, Layout};
use crate::metrics::{OpKind, OperatorMetrics};
use crate::plan::{AntiKind, AntiPlan, PlanCol, PlanCompare};
use crate::verify::{PhysOp, Prop};
use fuzzy_core::{Degree, Value};
use fuzzy_rel::Tuple;

/// Declaration of the merge-window anti operator over ⪯-sorted inputs.
pub(crate) fn declared_properties_merge(
    plan: &AntiPlan,
    ocol: &PlanCol,
    icol: &PlanCol,
    sort_o: usize,
    sort_i: usize,
) -> PhysOp {
    let z = Degree::ZERO;
    PhysOp::declare(
        format!("anti-merge {} x {}", plan.outer.binding, plan.inner.binding),
        vec![sort_o, sort_i],
        vec![
            (0, Prop::Sorted { col: ocol.clone(), alpha: z }),
            (1, Prop::Sorted { col: icol.clone(), alpha: z }),
            (0, Prop::Binding(plan.outer.binding.clone())),
            (1, Prop::Binding(plan.inner.binding.clone())),
        ],
        vec![Prop::Binding(plan.outer.binding.clone()), Prop::MinDegree(z)],
    )
}

/// Declaration of the scan-fallback anti operator (uncorrelated NOT IN/ALL).
pub(crate) fn declared_properties_scan(plan: &AntiPlan, scan_o: usize, scan_i: usize) -> PhysOp {
    let z = Degree::ZERO;
    PhysOp::declare(
        format!("anti-scan {} x {}", plan.outer.binding, plan.inner.binding),
        vec![scan_o, scan_i],
        vec![
            (0, Prop::Binding(plan.outer.binding.clone())),
            (1, Prop::Binding(plan.inner.binding.clone())),
        ],
        vec![Prop::Binding(plan.outer.binding.clone()), Prop::MinDegree(z)],
    )
}

/// The anti operator: consumes the (sorted or scanned) outer and inner
/// tables and publishes the accumulated answer rows.
pub(crate) struct AntiOp {
    slot: usize,
    decl: PhysOp,
    outer: usize,
    inner: usize,
    plan: AntiPlan,
    merge: bool,
}

impl AntiOp {
    pub(crate) fn new(
        slot: usize,
        decl: PhysOp,
        outer: usize,
        inner: usize,
        plan: AntiPlan,
        merge: bool,
    ) -> Self {
        AntiOp { slot, decl, outer, inner, plan, merge }
    }
}

impl PhysicalOp for AntiOp {
    fn declared_properties(&self) -> &PhysOp {
        &self.decl
    }

    fn out_slot(&self) -> usize {
        self.slot
    }

    fn open(&mut self, ex: &mut Executor, state: &mut TreeState) -> Result<()> {
        let plan = &self.plan;
        let mut pair_layout = Layout::of_table(&plan.outer);
        pair_layout.push(&plan.inner);
        let pair = pair_layout.bind_all(&plan.pair_preds)?;
        let kind_extra: Option<BoundCompare> = match &plan.kind {
            AntiKind::Exclusion => None,
            AntiKind::All { op, lhs, rhs } => Some(pair_layout.bind(&PlanCompare {
                lhs: lhs.clone(),
                op: *op,
                rhs: rhs.clone(),
                tolerance: None,
            })?),
        };
        // The negated contribution of one inner tuple to the MIN(D) group of
        // one outer tuple: 1 − min(μ_S∧p₂, d(pair preds) [, 1 − d(Y op Z)]).
        let contribution = |r: &Tuple, s: &Tuple, m: &mut OperatorMetrics| -> Degree {
            let mut inner_d = s.degree;
            for p in &pair {
                m.fuzzy_comparisons += 1;
                inner_d = inner_d.and(p.eval_pair(&r.values, &s.values));
                if !inner_d.is_positive() {
                    return Degree::ONE; // neutral
                }
            }
            if let Some(b) = &kind_extra {
                m.fuzzy_comparisons += 1;
                inner_d = inner_d.and(b.eval_pair(&r.values, &s.values).not());
            }
            inner_d.not()
        };

        let outer_layout = Layout::of_table(&plan.outer);
        let (_, select_idx) = outer_layout.projection(&plan.select)?;
        let mut rows: Vec<(Vec<Value>, Degree)> = Vec::new();
        let outer_t = state.take_table(self.outer)?;
        let inner_t = state.take_table(self.inner)?;

        if self.merge {
            let Some((ocol, icol)) = plan.window.as_ref() else {
                return Err(EngineError::Verify("anti-merge lowered without a window".into()));
            };
            // Inner tuples outside Rng(r) have window-predicate degree 0,
            // so they contribute the neutral 1: scanning only the window
            // is exact (this is what makes JX'/JALL' merge-joinable).
            // No threshold push-down here: low-degree pairs still lower
            // the MIN(D) group degree.
            ex.merge_window(
                &outer_t,
                ocol.attr,
                &inner_t,
                icol.attr,
                Degree::ZERO,
                OpKind::Anti,
                self.decl.name.clone(),
                |r, rng, m| {
                    let mut acc = r.degree;
                    for s in rng {
                        acc = acc.and(contribution(r, s, m));
                        if !acc.is_positive() {
                            break;
                        }
                    }
                    if acc.is_positive() {
                        m.tuples_out += 1;
                        rows.push((crate::exec::project(r, &select_idx), acc));
                    }
                    Ok(())
                },
            )?;
        } else {
            // Scan fallback (uncorrelated NOT IN / ALL): the inner set is
            // built once — the unnesting benefit — then the outer streams
            // against it.
            let g = ex.begin_op(OpKind::Anti, self.decl.name.clone());
            let pool = ex.pool(ex.config.buffer_pages);
            let inner_all: Vec<Tuple> =
                inner_t.scan(&pool).collect::<fuzzy_storage::Result<_>>()?;
            let opool = ex.pool(1);
            let mut m = OperatorMetrics::default();
            m.tuples_in += inner_all.len() as u64;
            for r in outer_t.scan(&opool) {
                let r = r?;
                m.tuples_in += 1;
                let mut acc = r.degree;
                for s in &inner_all {
                    m.pairs_examined += 1;
                    acc = acc.and(contribution(&r, s, &mut m));
                    if !acc.is_positive() {
                        break;
                    }
                }
                if acc.is_positive() {
                    m.tuples_out += 1;
                    rows.push((crate::exec::project(&r, &select_idx), acc));
                }
            }
            m.add_pool(&pool.stats());
            m.add_pool(&opool.stats());
            ex.absorb_op(&g, &m);
            ex.end_op(g);
        }
        state.set(self.slot, Slot::Answer(rows));
        Ok(())
    }
}
