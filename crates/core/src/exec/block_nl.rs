//! Block nested-loop: the fallback join when no exact-equality merge driver
//! exists, and the engine's baseline strategies' workhorse. The outer is
//! read once in blocks of `M − 1` pages; the inner is scanned once per
//! block through a single reserved frame (the paper's Section 9 buffer
//! allocation for the nested-loop method).

use crate::error::Result;
use crate::exec::Executor;
use crate::metrics::{OpKind, OperatorMetrics};
use crate::verify::{PhysOp, Prop};
use fuzzy_rel::{StoredTable, Tuple};

/// Declaration of a flat nested-loop join step: no sort requirements — the
/// step's binding/degree requirements come from the lowering pass.
pub(crate) fn declared_properties(
    t_binding: &str,
    inputs: Vec<usize>,
    requires: Vec<(usize, Prop)>,
    delivers: Vec<Prop>,
) -> PhysOp {
    PhysOp::declare(format!("nested-loop +{t_binding}"), inputs, requires, delivers)
}

impl Executor {
    /// Block nested loop with per-outer-tuple accumulators: `init` seeds an
    /// accumulator per outer tuple, `observe` is invoked per (outer, inner)
    /// pair, and `finalize` fires once per outer tuple after its block's
    /// inner scan — which is what lets this one operator evaluate *nested*
    /// queries (the per-tuple temporary relation T(r) accumulates in `A`).
    pub(crate) fn block_nested_loop<A>(
        &mut self,
        outer: &StoredTable,
        inner: &StoredTable,
        label: String,
        mut init: impl FnMut(&Tuple, &mut OperatorMetrics) -> A,
        mut observe: impl FnMut(&mut A, &Tuple, &Tuple, &mut OperatorMetrics) -> Result<()>,
        mut finalize: impl FnMut(Tuple, A, &mut OperatorMetrics) -> Result<()>,
    ) -> Result<()> {
        let g = self.begin_op(OpKind::Join, label);
        let block_pages = self.config.buffer_pages.saturating_sub(1).max(1) as u64;
        let n_pages = outer.num_pages();
        let mut m = OperatorMetrics::default();
        let mut block_start = 0u64;
        while block_start < n_pages {
            let block_end = (block_start + block_pages).min(n_pages);
            // Read the outer block (each page charged exactly once overall).
            let mut block: Vec<(Tuple, A)> = Vec::new();
            for pi in block_start..block_end {
                let pid = outer.file().page_id(pi as u32)?;
                let page = fuzzy_storage::Page::from_bytes(self.disk.read_page(pid)?)?;
                for rec in page.records() {
                    let t = Tuple::decode(rec)?;
                    m.tuples_in += 1;
                    let a = init(&t, &mut m);
                    block.push((t, a));
                }
            }
            // One scan of the inner per block, through one frame.
            let ipool = self.pool(1);
            for s in inner.scan(&ipool) {
                let s = s?;
                m.tuples_in += 1;
                for (r, a) in &mut block {
                    m.pairs_examined += 1;
                    observe(a, r, &s, &mut m)?;
                }
            }
            m.add_pool(&ipool.stats());
            for (r, a) in block {
                finalize(r, a, &mut m)?;
            }
            block_start = block_end;
        }
        self.absorb_op(&g, &m);
        self.end_op(g);
        Ok(())
    }
}
