//! The physical-operator contract: `open` / `next_batch` / `close`.
//!
//! Every physical operator of a lowered plan implements [`PhysicalOp`]. The
//! tree executes *operator-at-a-time*: `drive` opens the operators in
//! topological order, and each `open` performs the operator's effectful work
//! — scanning, sorting, joining — publishing its output into the operator's
//! [`TreeState`] slot, where its consumers (whose indices come from the
//! lowered [`crate::verify::Outline`]) pick it up. `next_batch` then streams
//! the published output in bounded batches for consumers that pull tuples
//! rather than whole slots; `close` releases the slot.
//!
//! Why not a pull-based (volcano) loop? Per-operator metric attribution: an
//! operator's I/O and wall-time deltas are charged between its
//! `Executor::begin_op` and `end_op` (see [`crate::metrics`] for the
//! determinism contract), and interleaved pulls would charge one operator's
//! page transfers to another. Sequencing the `open`s keeps every counter
//! bit-identical to the pre-pipeline executor. Streaming *between* operators
//! still happens where it matters — a pipelined join step publishes
//! [`Slot::Rows`] that the next sort boundary consumes without any temp-table
//! round trip (see DESIGN.md §11).

use crate::error::{EngineError, Result};
use crate::exec::Executor;
use crate::verify::PhysOp;
use fuzzy_core::{Degree, Value};
use fuzzy_rel::{Relation, StoredTable, Tuple};

/// Rows per [`PhysicalOp::next_batch`] batch — roughly a page of tuples.
pub const BATCH_ROWS: usize = 256;

/// What an operator has published into its [`TreeState`] slot.
pub enum Slot {
    /// Nothing yet (before `open`) or already consumed/closed.
    Empty,
    /// A stored relation on the simulated disk (base table, filter output,
    /// sort output, or a materialized join intermediate).
    Table(StoredTable),
    /// An in-memory pipelined intermediate: concatenated join-output tuples
    /// that never touched the disk. The consuming sort boundary spills them
    /// through its own run generation.
    Rows(Vec<Tuple>),
    /// Projected answer rows awaiting final dedup + threshold.
    Answer(Vec<(Vec<Value>, Degree)>),
    /// The finished answer relation (the plan root's output).
    Done(Relation),
}

/// Slot storage for one operator tree, indexed by operator position in the
/// lowered outline (operator `i` publishes into slot `i`).
pub struct TreeState {
    slots: Vec<Slot>,
    cursors: Vec<usize>,
}

impl TreeState {
    /// Empty state for a tree of `n` operators.
    pub fn new(n: usize) -> TreeState {
        TreeState { slots: (0..n).map(|_| Slot::Empty).collect(), cursors: vec![0; n] }
    }

    /// Publishes an operator's output.
    pub fn set(&mut self, i: usize, slot: Slot) {
        self.slots[i] = slot;
    }

    /// Clears a slot (the `close` default).
    pub fn clear(&mut self, i: usize) {
        self.slots[i] = Slot::Empty;
        self.cursors[i] = 0;
    }

    /// Takes a slot wholesale, leaving it empty.
    pub(crate) fn take(&mut self, i: usize) -> Slot {
        std::mem::replace(&mut self.slots[i], Slot::Empty)
    }

    /// Takes a slot that must hold a stored table.
    pub(crate) fn take_table(&mut self, i: usize) -> Result<StoredTable> {
        match self.take(i) {
            Slot::Table(t) => Ok(t),
            _ => Err(EngineError::Verify(format!(
                "operator input #{i} did not publish a stored table"
            ))),
        }
    }

    /// Takes a slot that must hold projected answer rows.
    pub(crate) fn take_answer(&mut self, i: usize) -> Result<Vec<(Vec<Value>, Degree)>> {
        match self.take(i) {
            Slot::Answer(rows) => Ok(rows),
            _ => {
                Err(EngineError::Verify(format!("operator input #{i} did not publish answer rows")))
            }
        }
    }

    /// Takes a slot that must hold the finished answer relation.
    pub(crate) fn take_done(&mut self, i: usize) -> Result<Relation> {
        match self.take(i) {
            Slot::Done(rel) => Ok(rel),
            _ => Err(EngineError::Verify(format!(
                "root operator #{i} did not publish an answer relation"
            ))),
        }
    }

    /// Drains up to [`BATCH_ROWS`] tuples from slot `i`'s published output.
    /// `None` once exhausted, or when the slot's output is handed over
    /// by-slot instead (a [`Slot::Table`] is consumed zero-copy by its
    /// single consumer, not re-streamed).
    pub fn drain_batch(&mut self, i: usize) -> Option<Vec<Tuple>> {
        let start = self.cursors[i];
        let batch: Vec<Tuple> = match &self.slots[i] {
            Slot::Rows(rows) => rows.iter().skip(start).take(BATCH_ROWS).cloned().collect(),
            Slot::Answer(rows) => rows
                .iter()
                .skip(start)
                .take(BATCH_ROWS)
                .map(|(values, d)| Tuple::new(values.clone(), *d))
                .collect(),
            Slot::Done(rel) => rel.tuples().iter().skip(start).take(BATCH_ROWS).cloned().collect(),
            Slot::Table(_) | Slot::Empty => return None,
        };
        if batch.is_empty() {
            return None;
        }
        self.cursors[i] = start + batch.len();
        Some(batch)
    }
}

/// One physical operator of a lowered plan.
///
/// The contract: `open` does the operator's effectful work and publishes its
/// output into slot [`PhysicalOp::out_slot`]; `next_batch` streams that
/// output in [`BATCH_ROWS`]-sized batches; `close` releases it. An operator
/// must be able to report [`PhysicalOp::declared_properties`] — the verifier
/// rejects trees containing undeclared operators (`V-OP-DECL`), and the
/// declaration it checks is the very one the running operator carries.
pub trait PhysicalOp {
    /// The operator's property declaration (⪯-sort order, degree bound,
    /// binding provenance, dup-elimination), as verified by
    /// [`crate::verify::Outline::check`].
    fn declared_properties(&self) -> &PhysOp;

    /// The slot this operator publishes into (its outline index).
    fn out_slot(&self) -> usize;

    /// Performs the operator's work, reading input slots and publishing the
    /// output slot. Inputs are guaranteed open: `drive` opens in
    /// topological order.
    fn open(&mut self, ex: &mut Executor, state: &mut TreeState) -> Result<()>;

    /// Streams the published output in bounded batches after `open`;
    /// `None` when exhausted (or handed over by-slot, see
    /// [`TreeState::drain_batch`]).
    fn next_batch(&mut self, state: &mut TreeState) -> Option<Vec<Tuple>> {
        state.drain_batch(self.out_slot())
    }

    /// Releases the operator's published output.
    fn close(&mut self, state: &mut TreeState) {
        state.clear(self.out_slot());
    }
}

/// Drives an operator tree to completion: opens every operator in
/// topological (outline) order, takes the root's answer relation, and closes
/// the tree in reverse order.
pub(crate) fn drive(
    ex: &mut Executor,
    ops: &mut [Box<dyn PhysicalOp>],
    state: &mut TreeState,
) -> Result<Relation> {
    for op in ops.iter_mut() {
        op.open(ex, state)?;
    }
    let root = match ops.last() {
        Some(root) => root.out_slot(),
        None => return Err(EngineError::Unsupported("empty FROM".into())),
    };
    let result = state.take_done(root);
    for op in ops.iter_mut().rev() {
        op.close(state);
    }
    result
}
