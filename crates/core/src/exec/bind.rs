//! Predicate binding over concatenated tuple layouts.
//!
//! A [`Layout`] maps `(binding, attribute)` plan columns to flat indices in
//! the concatenated tuples that flow between join steps; a [`BoundCompare`]
//! is a plan predicate resolved against such a layout once, so per-tuple
//! evaluation is index arithmetic only.

use crate::error::{EngineError, Result};
use crate::plan::{PlanCol, PlanCompare, PlanOperand, PlanTable};
use fuzzy_core::{CmpOp, Degree, Value};
use fuzzy_rel::{Attribute, Schema};

pub(crate) enum BoundOperand {
    Col(usize),
    Const(Value),
}

/// A comparison bound to a concrete (possibly concatenated) tuple layout.
pub(crate) struct BoundCompare {
    pub(crate) lhs: BoundOperand,
    pub(crate) op: CmpOp,
    pub(crate) rhs: BoundOperand,
    pub(crate) tolerance: Option<f64>,
}

impl BoundCompare {
    pub(crate) fn eval(&self, values: &[Value]) -> Degree {
        let l = match &self.lhs {
            BoundOperand::Col(i) => &values[*i],
            BoundOperand::Const(v) => v,
        };
        let r = match &self.rhs {
            BoundOperand::Col(i) => &values[*i],
            BoundOperand::Const(v) => v,
        };
        match self.tolerance {
            Some(t) => l.compare_similar(r, t),
            None => l.compare(self.op, r),
        }
    }

    /// Evaluates against a split pair of value slices (outer ++ inner)
    /// without concatenating them.
    pub(crate) fn eval_pair(&self, left: &[Value], right: &[Value]) -> Degree {
        let pick = |o: &BoundOperand| -> Value {
            match o {
                BoundOperand::Col(i) => {
                    if *i < left.len() {
                        left[*i].clone()
                    } else {
                        right[*i - left.len()].clone()
                    }
                }
                BoundOperand::Const(v) => v.clone(),
            }
        };
        match self.tolerance {
            Some(t) => pick(&self.lhs).compare_similar(&pick(&self.rhs), t),
            None => pick(&self.lhs).compare(self.op, &pick(&self.rhs)),
        }
    }
}

/// Concatenated-tuple layout: maps `(binding, attr)` to a flat index.
#[derive(Debug, Clone, Default)]
pub(crate) struct Layout {
    parts: Vec<(String, Schema)>,
}

impl Layout {
    pub(crate) fn of_table(t: &PlanTable) -> Layout {
        Layout { parts: vec![(t.binding.clone(), t.table.schema().clone())] }
    }

    pub(crate) fn push(&mut self, t: &PlanTable) {
        self.parts.push((t.binding.clone(), t.table.schema().clone()));
    }

    pub(crate) fn resolve(&self, c: &PlanCol) -> Result<usize> {
        let mut off = 0usize;
        for (binding, schema) in &self.parts {
            if binding == &c.binding {
                return Ok(off + c.attr);
            }
            off += schema.len();
        }
        Err(EngineError::Bind(format!("binding {:?} not in layout", c.binding)))
    }

    pub(crate) fn contains(&self, binding: &str) -> bool {
        self.parts.iter().any(|(b, _)| b == binding)
    }

    /// A storable schema for the concatenation, attribute names qualified.
    pub(crate) fn to_schema(&self) -> Schema {
        let mut attrs = Vec::new();
        for (binding, schema) in &self.parts {
            for a in schema.attributes() {
                attrs.push(Attribute::new(format!("{binding}.{}", a.name), a.ty));
            }
        }
        Schema::new(attrs)
    }

    pub(crate) fn bind(&self, p: &PlanCompare) -> Result<BoundCompare> {
        let bind_op = |o: &PlanOperand| -> Result<BoundOperand> {
            Ok(match o {
                PlanOperand::Col(c) => BoundOperand::Col(self.resolve(c)?),
                PlanOperand::Const(v) => BoundOperand::Const(v.clone()),
            })
        };
        Ok(BoundCompare {
            lhs: bind_op(&p.lhs)?,
            op: p.op,
            rhs: bind_op(&p.rhs)?,
            tolerance: p.tolerance,
        })
    }

    pub(crate) fn bind_all(&self, ps: &[PlanCompare]) -> Result<Vec<BoundCompare>> {
        ps.iter().map(|p| self.bind(p)).collect()
    }

    /// Output schema and indices of a projection.
    pub(crate) fn projection(&self, select: &[PlanCol]) -> Result<(Schema, Vec<usize>)> {
        let mut attrs = Vec::new();
        let mut idx = Vec::new();
        for c in select {
            let i = self.resolve(c)?;
            let (_, schema) =
                self.parts.iter().find(|(b, _)| b == &c.binding).expect("resolve succeeded");
            let a = schema.attr(c.attr);
            attrs.push(Attribute::new(a.name.clone(), a.ty));
            idx.push(i);
        }
        Ok((Schema::new(attrs), idx))
    }
}
