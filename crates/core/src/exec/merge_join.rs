//! The extended merge-join window of Section 3: streams the ⪯-sorted outer
//! relation and presents, per outer tuple `r`, exactly `Rng(r)` — the
//! contiguous inner range whose support (or α-cut) intervals can intersect
//! `r`'s. Inner tuples wholly before the current outer value leave the
//! window forever (the paper's "will also precede every `Rng(r_k)` for
//! `k > i`" argument). Also hosts the interval-partitioned parallel variant
//! whose counters are engineered to be bit-identical to the serial scan.

use crate::error::{EngineError, Result};
use crate::exec::flat::JoinSink;
use crate::exec::{Executor, PairOutcome};
use crate::metrics::{OpKind, OperatorMetrics};
use crate::plan::PlanCol;
use crate::verify::{PhysOp, Prop};
use fuzzy_core::{interval_order, Degree};
use fuzzy_rel::{StoredTable, Tuple};
use std::collections::VecDeque;

/// Declaration of a flat merge-join step: requires both inputs ⪯-sorted on
/// the driver columns (plus the step's binding/degree requirements built by
/// the lowering pass), delivers the concatenated bindings.
pub(crate) fn declared_properties(
    t_binding: &str,
    inputs: Vec<usize>,
    mut requires: Vec<(usize, Prop)>,
    delivers: Vec<Prop>,
    cur_col: &PlanCol,
    next_col: &PlanCol,
    alpha: Degree,
) -> PhysOp {
    requires.push((0, Prop::Sorted { col: cur_col.clone(), alpha }));
    requires.push((1, Prop::Sorted { col: next_col.clone(), alpha }));
    PhysOp::declare(format!("merge-join +{t_binding}"), inputs, requires, delivers)
}

impl Executor {
    /// Streams the sorted outer relation against the sorted inner one,
    /// invoking `visit(r, Rng(r), m)` once per outer tuple (with an empty
    /// slice when `Rng(r) = ∅`); `m` is the operator's counter set. The
    /// window may include dangling tuples whose join degree against `r` is
    /// 0 — Section 3's caveat; callers skip them via the predicate degree.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn merge_window<F>(
        &mut self,
        outer: &StoredTable,
        oattr: usize,
        inner: &StoredTable,
        iattr: usize,
        alpha: Degree,
        kind: OpKind,
        label: String,
        mut visit: F,
    ) -> Result<()>
    where
        F: FnMut(&Tuple, &[Tuple], &mut OperatorMetrics) -> Result<()>,
    {
        let g = self.begin_op(kind, label);
        // One frame for the outer scan; the rest serve the window's pages.
        let opool = self.pool(1);
        let ipool = self.pool(self.config.buffer_pages.saturating_sub(1).max(1));
        let mut inner_scan = inner.scan(&ipool).peekable();
        let mut window: VecDeque<Tuple> = VecDeque::new();
        let mut m = OperatorMetrics::default();
        for r in outer.scan(&opool) {
            let r = r?;
            m.tuples_in += 1;
            let rv = &r.values[oattr];
            // Drop inner tuples wholly before rv: they precede every later
            // outer range as well (outer is sorted by left endpoints).
            while let Some(front) = window.front() {
                if interval_order::strictly_before_at(&front.values[iattr], rv, alpha) {
                    window.pop_front();
                } else {
                    break;
                }
            }
            // Extend the window to cover Rng(r).
            loop {
                let after = match inner_scan.peek() {
                    None => break,
                    Some(Err(_)) => true, // force the error out below
                    Some(Ok(s)) => interval_order::strictly_after_at(&s.values[iattr], rv, alpha),
                };
                if after {
                    if let Some(Err(_)) = inner_scan.peek() {
                        inner_scan.next().expect("peeked")?;
                    }
                    break; // first tuple past Rng(r); keep it for later outers
                }
                let s = inner_scan.next().expect("peeked")?;
                m.tuples_in += 1;
                if !interval_order::strictly_before_at(&s.values[iattr], rv, alpha) {
                    window.push_back(s);
                }
                // else: wholly before every remaining outer tuple; drop.
            }
            window.make_contiguous();
            let (slice, _) = window.as_slices();
            m.pairs_examined += slice.len() as u64;
            m.max_window = m.max_window.max(slice.len() as u64);
            visit(&r, slice, &mut m)?;
        }
        m.add_pool(&opool.stats());
        m.add_pool(&ipool.stats());
        self.absorb_op(&g, &m);
        self.end_op(g);
        Ok(())
    }

    /// Interval-partitioned parallel flat merge-join (the `threads > 1` path
    /// of [`JoinMethod::Merge`]).
    ///
    /// Phase 1 replays the *serial* `merge_window` scan — same pools, same
    /// window maintenance, same `pairs_examined` / `max_window` accounting —
    /// but records, per outer tuple, the indices of its `Rng(r)` window
    /// instead of evaluating degrees on the spot. Because the inner scan
    /// stops at exactly the tuple the serial scan would stop at, physical
    /// read counts are identical to the serial join.
    ///
    /// Phase 2 partitions the outer (already sorted by `⪯`) into `threads`
    /// contiguous chunks balanced by their window pair counts. Each chunk's
    /// recorded windows cover the full `Rng(r)` of its outers — a window can
    /// span chunk boundaries, so workers read overlapping slices of the
    /// inner; no pair is lost at a cut. Workers evaluate the pure
    /// `pair_eval` for their pairs in outer order and accumulate comparison
    /// and prune counts per chunk; chunk sums are order-independent, so the
    /// operator's counters equal the serial ones exactly.
    ///
    /// Phase 3 concatenates the per-chunk emissions in chunk order on the
    /// calling thread, so the sink observes exactly the serial emission
    /// sequence (same rows, same degrees, same temp-table bytes).
    ///
    /// The tradeoff is memory: the scanned prefix of both relations and the
    /// window index lists are held in memory for the duration of the join,
    /// where the serial path holds only the current window.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn merge_join_parallel<D>(
        &mut self,
        outer: &StoredTable,
        oattr: usize,
        inner: &StoredTable,
        iattr: usize,
        alpha: Degree,
        kind: OpKind,
        label: String,
        pair_eval: &D,
        sink: &mut JoinSink<'_>,
    ) -> Result<()>
    where
        D: Fn(&Tuple, &Tuple) -> PairOutcome + Sync,
    {
        let g = self.begin_op(kind, label);
        // Phase 1: serial I/O and window replay (identical to merge_window).
        let opool = self.pool(1);
        let ipool = self.pool(self.config.buffer_pages.saturating_sub(1).max(1));
        let mut inner_scan = inner.scan(&ipool).peekable();
        let mut inner_vec: Vec<Tuple> = Vec::new();
        let mut outer_vec: Vec<Tuple> = Vec::new();
        let mut windows: Vec<Vec<u32>> = Vec::new();
        let mut window: VecDeque<u32> = VecDeque::new();
        let mut m = OperatorMetrics::default();
        for r in outer.scan(&opool) {
            let r = r?;
            m.tuples_in += 1;
            let rv = &r.values[oattr];
            while let Some(&front) = window.front() {
                if interval_order::strictly_before_at(
                    &inner_vec[front as usize].values[iattr],
                    rv,
                    alpha,
                ) {
                    window.pop_front();
                } else {
                    break;
                }
            }
            loop {
                let after = match inner_scan.peek() {
                    None => break,
                    Some(Err(_)) => true, // force the error out below
                    Some(Ok(s)) => interval_order::strictly_after_at(&s.values[iattr], rv, alpha),
                };
                if after {
                    if let Some(Err(_)) = inner_scan.peek() {
                        inner_scan.next().expect("peeked")?;
                    }
                    break; // first tuple past Rng(r); keep it for later outers
                }
                let s = inner_scan.next().expect("peeked")?;
                m.tuples_in += 1;
                let keep = !interval_order::strictly_before_at(&s.values[iattr], rv, alpha);
                let idx = u32::try_from(inner_vec.len())
                    .map_err(|_| EngineError::Unsupported("inner relation too large".into()))?;
                inner_vec.push(s);
                if keep {
                    window.push_back(idx);
                }
            }
            m.pairs_examined += window.len() as u64;
            m.max_window = m.max_window.max(window.len() as u64);
            windows.push(window.iter().copied().collect());
            outer_vec.push(r);
        }

        // Phase 2: contiguous outer chunks balanced by window pair counts.
        let threads = self.config.threads.min(outer_vec.len()).max(1);
        let total_pairs: u64 = windows.iter().map(|w| w.len() as u64).sum();
        let per_chunk = (total_pairs / threads as u64).max(1);
        let mut chunks: Vec<std::ops::Range<usize>> = Vec::new();
        let mut start = 0usize;
        let mut acc = 0u64;
        for (i, w) in windows.iter().enumerate() {
            acc += w.len() as u64;
            if acc >= per_chunk && chunks.len() + 1 < threads {
                chunks.push(start..i + 1);
                start = i + 1;
                acc = 0;
            }
        }
        chunks.push(start..outer_vec.len());

        type ChunkResult = (Vec<(u32, u32, Degree)>, u64, u64);
        let emissions: Vec<ChunkResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|range| {
                    let range = range.clone();
                    let outer_vec = &outer_vec;
                    let inner_vec = &inner_vec;
                    let windows = &windows;
                    scope.spawn(move || {
                        let mut out: Vec<(u32, u32, Degree)> = Vec::new();
                        let (mut comparisons, mut pruned) = (0u64, 0u64);
                        for i in range {
                            let r = &outer_vec[i];
                            for &j in &windows[i] {
                                let o = pair_eval(r, &inner_vec[j as usize]);
                                comparisons += u64::from(o.comparisons);
                                pruned += u64::from(o.pruned);
                                if let Some(d) = o.degree {
                                    out.push((i as u32, j, d));
                                }
                            }
                        }
                        (out, comparisons, pruned)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("join worker panicked")).collect()
        });

        // Phase 3: serial, order-preserving emission.
        for (chunk, comparisons, pruned) in emissions {
            m.fuzzy_comparisons += comparisons;
            m.pairs_pruned += pruned;
            for (i, j, d) in chunk {
                m.tuples_out += 1;
                sink.emit(&outer_vec[i as usize], &inner_vec[j as usize], d)?;
            }
        }
        m.add_pool(&opool.stats());
        m.add_pool(&ipool.stats());
        self.absorb_op(&g, &m);
        self.end_op(g);
        Ok(())
    }
}
