//! A sampling-based partitioned fuzzy equi-join.
//!
//! Section 3 of the paper relates the fuzzy join to band joins \[9\] and
//! valid-time joins \[36\] and notes: "In both \[9\] and \[36\], partitioned
//! joins based on sampling are suggested. More research is needed to decide
//! the optimal join method (and the way to conduct sampling in fuzzy
//! databases)." This module implements that direction:
//!
//! 1. **Sample** the inner relation's join values and pick partition
//!    boundaries at the sample quantiles of the α-cut left endpoints;
//! 2. **Partition** both relations: a tuple is written to *every* partition
//!    whose key range its α-cut interval intersects (intervals may span
//!    boundaries, so replication — not hashing — is what fuzzy values need);
//! 3. **Join** each partition pair in memory with the same interval-order
//!    window scan as the extended merge-join.
//!
//! A pair whose intervals intersect is examined in every partition both of
//! its replicas share, so the same answer row can be emitted more than once;
//! the fuzzy-OR duplicate elimination of the answer semantics absorbs the
//! duplicates exactly (identical values, identical degrees). Compared with
//! the extended merge-join, partitioning replaces the external sort's passes
//! with one partition write+read per relation plus small in-memory sorts —
//! the trade the band-join literature studies.
//!
//! **Serial-only**: unlike the merge path, this operator ignores
//! `ExecConfig::threads` — sampling, partitioning, and the per-partition
//! window scans all run on the calling thread, so its counters and I/O are
//! trivially identical at every thread count (pinned by the
//! `partitioned_join_ignores_thread_count` integration test). Parallelizing
//! it would need per-partition worker isolation with deterministic
//! partition-temp allocation; see DESIGN.md §7.

use crate::error::Result;
use crate::exec::Executor;
use crate::metrics::{OpKind, OperatorMetrics};
use crate::verify::{PhysOp, Prop};
use fuzzy_core::{interval_order, Degree};
use fuzzy_rel::{StoredTable, Tuple};

/// Declaration of a flat partitioned-join step: consumes the unsorted bound
/// side and the scan directly (no sort boundary — partitioning replaces it);
/// the binding/degree requirements come from the lowering pass.
pub(crate) fn declared_properties(
    t_binding: &str,
    inputs: Vec<usize>,
    requires: Vec<(usize, Prop)>,
    delivers: Vec<Prop>,
) -> PhysOp {
    PhysOp::declare(format!("partitioned-join +{t_binding}"), inputs, requires, delivers)
}

impl Executor {
    /// Streams the joining pairs of `outer ⋈ inner` on the given attributes
    /// via partitioning. `visit` receives every pair whose α-cut intervals
    /// intersect (possibly more than once, across shared partitions), plus
    /// the operator's counter set. The whole join — sampling, partitioning,
    /// and the per-partition window scans — registers as one operator node
    /// and runs serially regardless of `ExecConfig::threads` (see the
    /// module docs).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn partitioned_join<F>(
        &mut self,
        outer: &StoredTable,
        oattr: usize,
        inner: &StoredTable,
        iattr: usize,
        alpha: Degree,
        label: String,
        mut visit: F,
    ) -> Result<()>
    where
        F: FnMut(&Tuple, &Tuple, &mut OperatorMetrics) -> Result<()>,
    {
        let g = self.begin_op(OpKind::Join, label);
        let mut m = OperatorMetrics::default();
        // --- 1. Sample the inner relation's value distribution. -------------
        // Partition count: each inner partition should fit in roughly half
        // the buffer, leaving room for the outer side.
        let budget = (self.config().buffer_pages / 2).max(1) as u64;
        let parts = inner.num_pages().div_ceil(budget).max(1) as usize;
        let boundaries = if parts > 1 {
            self.sample_boundaries(inner, iattr, alpha, parts, &mut m)?
        } else {
            Vec::new()
        };
        let ranges = boundaries.len() + 1;

        // --- 2. Partition both relations (replicating spanning tuples). -----
        let outer_parts = self.partition(outer, oattr, alpha, &boundaries, "pout", &mut m)?;
        let inner_parts = self.partition(inner, iattr, alpha, &boundaries, "pin", &mut m)?;
        debug_assert_eq!(outer_parts.len(), ranges);
        debug_assert_eq!(inner_parts.len(), ranges);

        // --- 3. Join each partition pair in memory. --------------------------
        for (op, ip) in outer_parts.iter().zip(&inner_parts) {
            if op.num_tuples() == 0 || ip.num_tuples() == 0 {
                continue;
            }
            let pool = self.pool_for_join();
            let mut os: Vec<Tuple> = op.scan(&pool).collect::<fuzzy_storage::Result<_>>()?;
            let mut is: Vec<Tuple> = ip.scan(&pool).collect::<fuzzy_storage::Result<_>>()?;
            m.tuples_in += os.len() as u64 + is.len() as u64;
            os.sort_by(|a, b| {
                interval_order::cmp_values_at(&a.values[oattr], &b.values[oattr], alpha)
            });
            is.sort_by(|a, b| {
                interval_order::cmp_values_at(&a.values[iattr], &b.values[iattr], alpha)
            });
            let mut start = 0usize;
            for r in &os {
                let rv = &r.values[oattr];
                while start < is.len()
                    && interval_order::strictly_before_at(&is[start].values[iattr], rv, alpha)
                {
                    start += 1;
                }
                let mut window = 0u64;
                for s in is[start..].iter() {
                    if interval_order::strictly_after_at(&s.values[iattr], rv, alpha) {
                        break;
                    }
                    if interval_order::strictly_before_at(&s.values[iattr], rv, alpha) {
                        continue; // dangling within the window
                    }
                    m.pairs_examined += 1;
                    window += 1;
                    visit(r, s, &mut m)?;
                }
                m.max_window = m.max_window.max(window);
            }
            m.add_pool(&pool.stats());
        }
        self.absorb_op(&g, &m);
        self.end_op(g);
        Ok(())
    }

    /// Draws a page-spread sample of the join attribute and returns
    /// `parts − 1` boundary points (α-cut left endpoints at the quantiles).
    fn sample_boundaries(
        &mut self,
        table: &StoredTable,
        attr: usize,
        alpha: Degree,
        parts: usize,
        m: &mut OperatorMetrics,
    ) -> Result<Vec<f64>> {
        let pool = self.pool_for_join();
        // One sample per page region: cheap and spread across the file.
        let step = (table.num_tuples() as usize / (parts * 32).max(1)).max(1);
        let mut sample: Vec<f64> = Vec::new();
        for (i, t) in table.scan(&pool).enumerate() {
            if i % step == 0 {
                let t = t?;
                if let Some((lo, _)) = t.values[attr].interval_at(alpha) {
                    sample.push(lo);
                }
            }
        }
        sample.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mut boundaries = Vec::with_capacity(parts - 1);
        for k in 1..parts {
            if sample.is_empty() {
                break;
            }
            let idx = (k * sample.len() / parts).min(sample.len() - 1);
            let b = sample[idx];
            if boundaries.last().is_none_or(|&last| b > last) {
                boundaries.push(b);
            }
        }
        m.add_pool(&pool.stats());
        Ok(boundaries)
    }

    /// Writes each tuple to every partition whose key range its interval
    /// intersects. Range `k` covers `[boundaries[k-1], boundaries[k])` with
    /// open ends at the extremes.
    #[allow(clippy::too_many_arguments)]
    fn partition(
        &mut self,
        table: &StoredTable,
        attr: usize,
        alpha: Degree,
        boundaries: &[f64],
        tag: &str,
        m: &mut OperatorMetrics,
    ) -> Result<Vec<StoredTable>> {
        let ranges = boundaries.len() + 1;
        let mut parts: Vec<StoredTable> = Vec::with_capacity(ranges);
        let mut writers = Vec::with_capacity(ranges);
        for k in 0..ranges {
            let t = self.make_temp(&format!("{tag}{k}"), table);
            writers.push(t.file().bulk_writer());
            parts.push(t);
        }
        let pool = self.pool_for_join();
        for t in table.scan(&pool) {
            let t = t?;
            let (lo, hi) = match t.values[attr].interval_at(alpha) {
                Some(iv) => iv,
                // Non-numeric join values (text) all land in partition 0 and
                // join crisply there.
                None => {
                    writers[0].append(&t.encode(table.min_record_bytes()))?;
                    continue;
                }
            };
            // partition_point gives the first boundary > v, i.e. the range
            // index of v.
            let first = boundaries.partition_point(|b| *b <= lo);
            let last = boundaries.partition_point(|b| *b <= hi);
            for w in writers.iter_mut().take(last + 1).skip(first) {
                w.append(&t.encode(table.min_record_bytes()))?;
            }
        }
        for w in writers {
            w.finish()?;
        }
        m.add_pool(&pool.stats());
        Ok(parts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecConfig;
    use fuzzy_core::{CmpOp, Trapezoid, Value};
    use fuzzy_rel::{AttrType, Schema};
    use fuzzy_storage::SimDisk;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn table(disk: &SimDisk, name: &str, n: usize, seed: u64) -> StoredTable {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = StoredTable::create(
            disk,
            name,
            Schema::of(&[("ID", AttrType::Number), ("X", AttrType::Number)]),
        );
        t.load((0..n).map(|i| {
            let c = rng.gen_range(0.0..500.0);
            Tuple::full(vec![
                Value::number(i as f64),
                Value::fuzzy(Trapezoid::new(c - 2.0, c - 0.5, c + 0.5, c + 2.0).unwrap()),
            ])
        }))
        .unwrap();
        t
    }

    /// The partitioned join must see every intersecting pair at least once
    /// (possibly with duplicates), and never a non-intersecting pair.
    #[test]
    fn covers_exactly_the_intersecting_pairs() {
        let disk = SimDisk::with_default_page_size();
        let r = table(&disk, "R", 300, 1);
        let s = table(&disk, "S", 300, 2);
        // A small buffer forces several partitions.
        let mut ex = Executor::new(
            &disk,
            ExecConfig { buffer_pages: 4, sort_pages: 4, ..Default::default() },
        );
        let mut seen = std::collections::HashSet::new();
        ex.partitioned_join(&r, 1, &s, 1, Degree::ZERO, "test".to_string(), |rt, st, _| {
            seen.insert((
                rt.values[0].as_number().unwrap() as u64,
                st.values[0].as_number().unwrap() as u64,
            ));
            Ok(())
        })
        .unwrap();
        // Brute-force reference.
        let pool = fuzzy_storage::BufferPool::new(&disk, 64);
        let rs: Vec<Tuple> = r.scan(&pool).collect::<fuzzy_storage::Result<_>>().unwrap();
        let ss: Vec<Tuple> = s.scan(&pool).collect::<fuzzy_storage::Result<_>>().unwrap();
        let mut expect = std::collections::HashSet::new();
        for rt in &rs {
            for st in &ss {
                if interval_order::intervals_intersect(&rt.values[1], &st.values[1]) {
                    expect.insert((
                        rt.values[0].as_number().unwrap() as u64,
                        st.values[0].as_number().unwrap() as u64,
                    ));
                }
            }
        }
        assert!(!expect.is_empty(), "workload should have matches");
        assert_eq!(seen, expect);
    }

    /// Degrees computed through the partitioned pairs equal the direct ones.
    #[test]
    fn emitted_pairs_carry_the_right_values() {
        let disk = SimDisk::with_default_page_size();
        let r = table(&disk, "R", 120, 3);
        let s = table(&disk, "S", 120, 4);
        let mut ex = Executor::new(
            &disk,
            ExecConfig { buffer_pages: 4, sort_pages: 4, ..Default::default() },
        );
        ex.partitioned_join(&r, 1, &s, 1, Degree::ZERO, "test".to_string(), |rt, st, _| {
            let d = rt.values[1].compare(CmpOp::Eq, &st.values[1]);
            // Window pairs intersect at alpha 0, but the exact degree may
            // still be anything in [0, 1].
            assert!(d.value() <= 1.0);
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn single_partition_degenerates_gracefully() {
        let disk = SimDisk::with_default_page_size();
        let r = table(&disk, "R", 50, 5);
        let s = table(&disk, "S", 50, 6);
        let mut ex = Executor::new(&disk, ExecConfig::default()); // huge buffer: 1 partition
        let mut pairs = 0usize;
        ex.partitioned_join(&r, 1, &s, 1, Degree::ZERO, "test".to_string(), |_, _, _| {
            pairs += 1;
            Ok(())
        })
        .unwrap();
        assert!(pairs > 0);
    }

    #[test]
    fn empty_inputs() {
        let disk = SimDisk::with_default_page_size();
        let r = table(&disk, "R", 0, 7);
        let s = table(&disk, "S", 40, 8);
        let mut ex = Executor::new(&disk, ExecConfig::default());
        let mut pairs = 0usize;
        ex.partitioned_join(&r, 1, &s, 1, Degree::ZERO, "test".to_string(), |_, _, _| {
            pairs += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(pairs, 0);
    }
}
