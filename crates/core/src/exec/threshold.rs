//! Threshold push-down bounds and the final `WITH D > z` filter.
//!
//! The push-down derivation is shared between the executor's lowering pass
//! and the static verifier, which is what keeps the two in lockstep: the
//! bound the operators prune at is, by construction, the bound the verifier
//! checks (`V-THRESH-WIDEN` / `V-THRESH-SCOPE`).

use crate::exec::ExecConfig;
use crate::plan::UnnestPlan;
use fuzzy_core::Degree;
use fuzzy_rel::Relation;
use fuzzy_sql::Threshold;

/// The degree bound a pushed-down `WITH D > z` threshold lets a *flat* plan
/// prune at: z when push-down is enabled and a threshold exists, else 0.
/// Sound for flat plans only — every conjunct of their final min must reach
/// the threshold, so pairs below it can never contribute an answer row.
pub fn flat_pushdown_alpha(config: &ExecConfig, threshold: Option<Threshold>) -> Degree {
    match (config.threshold_pushdown, threshold) {
        (true, Some(t)) => Degree::clamped(t.z),
        _ => Degree::ZERO,
    }
}

/// The pruning bound the executor uses for a plan. The anti and aggregate
/// forms accumulate MIN over *negated* degrees — a low-degree pair still
/// lowers its group's degree — so they never prune (`Degree::ZERO`); the
/// static verifier independently rejects any plan that claims otherwise
/// (`V-THRESH-SCOPE`).
pub fn pushdown_alpha(config: &ExecConfig, plan: &UnnestPlan) -> Degree {
    match plan {
        UnnestPlan::Flat(p) => flat_pushdown_alpha(config, p.threshold),
        UnnestPlan::Anti(_) | UnnestPlan::Agg(_) => Degree::ZERO,
    }
}

/// Applies the final `WITH` threshold filter to an answer relation. This is
/// the *exact* filter at the plan root; a pushed-down bound inside the
/// pipeline only ever pre-prunes rows this filter would reject anyway.
pub(crate) fn apply_threshold(rel: Relation, threshold: Option<Threshold>) -> Relation {
    match threshold {
        Some(t) => rel.with_threshold(Degree::clamped(t.z), t.strict),
        None => rel,
    }
}
