//! Physical execution of unnested plans: a streaming operator pipeline.
//!
//! A logical [`UnnestPlan`] is first *lowered* (`lower`) into an explicit
//! tree of physical operators — one module per operator:
//!
//! * `filter_scan` — folds a table's local predicates (the paper's p_i)
//!   into tuple degrees, materializing only the positive survivors ("only
//!   those tuples that satisfy p_i positively should be sorted");
//! * `sort` — external merge sort by the interval order `⪯` of
//!   Definition 3.1 on the join attribute;
//! * `merge_join` — streams the sorted outer relation; for each outer
//!   tuple `r` presents exactly `Rng(r)`, the contiguous inner range whose
//!   support intervals can intersect `r`'s;
//! * `partitioned` — the sampling-based partitioned join alternative;
//! * `block_nl` — the block nested-loop fallback;
//! * `anti` — the grouped `MIN(D)` accumulation of Queries JX′/JALL′;
//! * `agg` — the pipelined T1/T2/JA′ (COUNT′) aggregate evaluation;
//! * `flat` — the flat join step gluing driver/residual predicate
//!   evaluation to a method and an output sink;
//! * `output` — fuzzy-OR dedup plus the final `WITH D > z` threshold.
//!
//! Each operator implements the `op::PhysicalOp` contract
//! (`open`/`next_batch`/`close`) and *carries* the physical-property
//! declaration ([`crate::verify::PhysOp`]) the static verifier checks — the
//! tree that is verified is the tree that runs. Chain joins pipeline
//! left-deep: intermediate join output feeds the next sort boundary as
//! in-memory rows (`op::Slot::Rows`) instead of a temp-table round trip,
//! so simulated writes drop while answers and counters stay bit-identical
//! (see DESIGN.md §11).
//!
//! Every operator registers itself in the executor's [`QueryMetrics`]
//! registry and accumulates exact counters there (see [`crate::metrics`] for
//! the determinism contract). The legacy [`ExecStats`] summary is *derived*
//! from the registry by [`Executor::stats`].

use crate::error::Result;
use crate::metrics::{OpKind, OperatorMetrics, QueryMetrics};
use crate::plan::UnnestPlan;
use fuzzy_core::Degree;
use fuzzy_rel::{Relation, StoredTable};
use fuzzy_storage::{BufferPool, IoSnapshot, SimDisk};
use std::time::Instant;

pub(crate) mod agg;
pub(crate) mod anti;
pub(crate) mod bind;
pub(crate) mod block_nl;
pub(crate) mod filter_scan;
pub(crate) mod flat;
pub(crate) mod lower;
pub(crate) mod merge_join;
pub mod op;
pub(crate) mod output;
pub(crate) mod partitioned;
pub(crate) mod sort;
pub(crate) mod threshold;

pub use threshold::{flat_pushdown_alpha, pushdown_alpha};

pub(crate) use agg::GroupSet;
pub(crate) use bind::{BoundCompare, BoundOperand, Layout};
pub(crate) use output::project;

/// Execution configuration: the buffer and sort memory budgets, in pages.
/// The paper's experiments use a 2 MB buffer of 8 KB pages (256 frames).
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// Buffer pool frames available to scans and joins (the paper's M).
    pub buffer_pages: usize,
    /// Pages of working memory for the external sort.
    pub sort_pages: usize,
    /// Reorder multi-way flat joins to minimize intermediate sizes
    /// (Section 8's optimizer step). Answers are unaffected.
    pub reorder_joins: bool,
    /// Push `WITH D > z` thresholds into flat merge-joins: windows scan the
    /// z-cut intervals instead of the supports, because `d(x = y) >= z`
    /// exactly when the z-cuts intersect (the "equality indicator" direction
    /// of the paper's reference \[42\]). Answers are unaffected.
    pub threshold_pushdown: bool,
    /// Which physical algorithm drives flat equi-join steps.
    pub join_method: JoinMethod,
    /// Worker threads for external-sort run generation and the flat
    /// merge-join's per-pair degree computation. `1` (the default) is the
    /// serial path; any value produces bit-identical answers and identical
    /// I/O / comparison / pair counters, trading memory for wall time (see
    /// DESIGN.md, "Parallel execution"). The partitioned join ignores this
    /// knob and always runs serially (see `partitioned`).
    pub threads: usize,
    /// Pipeline intermediate chain-join output into the next merge step's
    /// sort boundary as in-memory rows instead of materializing a temp
    /// table. Answers, comparison counts, prune counts, and sort counters
    /// are unaffected — only the temp-table write and its re-scan disappear
    /// from the simulated I/O (see DESIGN.md §11). `false` restores the
    /// materialize-every-step behaviour for A/B measurements.
    pub pipeline_joins: bool,
    /// Session-level default for the answer threshold: statements that carry
    /// no explicit `WITH D > z` clause are post-filtered to degrees `> z`.
    /// Applied by the engine as a pure presentation filter (before ORDER BY
    /// and LIMIT), so it never shapes the plan and is excluded from the
    /// plan-cache key. `None` (the default) keeps the paper's `D > 0`
    /// semantics.
    pub default_threshold: Option<f64>,
}

/// Physical algorithms for a flat equi-join step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinMethod {
    /// The paper's extended merge-join (Section 3).
    #[default]
    Merge,
    /// The sampling-based partitioned join (Section 3's \[9\]/\[36\]
    /// "more research is needed" direction; see `partitioned`).
    Partitioned,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            buffer_pages: 256,
            sort_pages: 256,
            reorder_joins: true,
            threshold_pushdown: true,
            join_method: JoinMethod::default(),
            threads: 1,
            pipeline_joins: true,
            default_threshold: None,
        }
    }
}

/// CPU-side counter summary, derived from the per-operator registry (I/O
/// counts live on the simulated disk). Kept for experiment harnesses that
/// need the paper's Table 3 breakdown without walking operators.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecStats {
    /// Tuple pairs examined by join windows or nested loops.
    pub pairs_examined: u64,
    /// Comparisons performed by external sorting.
    pub sort_comparisons: u64,
    /// Initial runs generated across all sorts.
    pub sort_runs: u64,
    /// Wall-clock CPU time spent inside external sorts (Table 3's
    /// sorting-share breakdown).
    pub sort_cpu: std::time::Duration,
    /// Physical reads issued by external sorts.
    pub sort_reads: u64,
    /// Physical writes issued by external sorts.
    pub sort_writes: u64,
    /// Largest merge window (`Rng(r)`) observed, in tuples. Section 3's
    /// buffer-size assumption is that one outer page plus the pages of the
    /// largest range fit in memory; this counter makes that checkable.
    pub max_window: u64,
}

/// The outcome of evaluating one candidate join pair: its contribution degree
/// (or `None`), how many value-level comparisons the evaluation cost, and
/// whether a positive pair was discarded by a pushed-down threshold. Both the
/// serial and the parallel join paths count from this one structure, which is
/// what makes their metrics bit-identical.
pub(crate) struct PairOutcome {
    pub(crate) degree: Option<Degree>,
    pub(crate) comparisons: u32,
    pub(crate) pruned: bool,
}

/// An open operator in the metrics registry: remembers the I/O level and the
/// clock at `begin_op` so `end_op` can charge the deltas.
pub(crate) struct OpGuard {
    pub(crate) id: usize,
    io0: IoSnapshot,
    t0: Instant,
}

/// The physical executor. Temporary files live on the same simulated disk as
/// the base tables, so every spill and materialization is charged.
pub struct Executor {
    disk: SimDisk,
    config: ExecConfig,
    metrics: QueryMetrics,
    temp_counter: u64,
    /// Optional column-statistics registry consulted by the join-order
    /// optimizer.
    statistics: Option<std::sync::Arc<crate::stats_histogram::StatsRegistry>>,
}

impl Executor {
    /// Creates an executor over the given disk.
    pub fn new(disk: &SimDisk, config: ExecConfig) -> Executor {
        Executor {
            disk: disk.clone(),
            config,
            metrics: QueryMetrics::default(),
            temp_counter: 0,
            statistics: None,
        }
    }

    /// Attaches a column-statistics registry (histogram-based selectivity
    /// estimates for the join-order optimizer).
    pub fn with_statistics(
        mut self,
        stats: std::sync::Arc<crate::stats_histogram::StatsRegistry>,
    ) -> Executor {
        self.statistics = Some(stats);
        self
    }

    /// The simulated disk this executor charges its I/O to.
    pub(crate) fn disk(&self) -> &SimDisk {
        &self.disk
    }

    /// The configuration in effect.
    pub(crate) fn config(&self) -> ExecConfig {
        self.config
    }

    /// The per-operator metrics registry of the current/last run.
    pub fn metrics(&self) -> &QueryMetrics {
        &self.metrics
    }

    /// Takes ownership of the registry, leaving an empty one behind.
    pub fn take_metrics(&mut self) -> QueryMetrics {
        std::mem::take(&mut self.metrics)
    }

    /// The legacy counter summary, derived from the registry: pair counts and
    /// the window maximum aggregate over every operator; sort comparisons,
    /// runs, I/O, and CPU over the sort operators.
    pub fn stats(&self) -> ExecStats {
        let mut s = ExecStats::default();
        for n in self.metrics.ops() {
            s.pairs_examined += n.metrics.pairs_examined;
            s.max_window = s.max_window.max(n.metrics.max_window);
            if n.kind == OpKind::Sort {
                s.sort_comparisons += n.metrics.sort_comparisons;
                s.sort_runs += n.metrics.sort_runs;
                s.sort_reads += n.metrics.page_reads;
                s.sort_writes += n.metrics.page_writes;
                s.sort_cpu += n.wall;
            }
        }
        s
    }

    /// Clears the registry for a fresh run.
    pub(crate) fn metrics_reset(&mut self) {
        self.metrics.reset();
    }

    /// Opens an operator node; close it with [`Executor::end_op`].
    pub(crate) fn begin_op(&mut self, kind: OpKind, label: String) -> OpGuard {
        OpGuard { id: self.metrics.begin(kind, label), io0: self.disk.io(), t0: Instant::now() }
    }

    /// Folds locally accumulated counters into an open operator node.
    pub(crate) fn absorb_op(&mut self, g: &OpGuard, m: &OperatorMetrics) {
        self.metrics.op_mut(g.id).absorb(m);
    }

    /// Closes an operator node, charging its wall time and I/O delta.
    pub(crate) fn end_op(&mut self, g: OpGuard) {
        let io = self.disk.io().since(&g.io0);
        self.metrics.finish(g.id, g.t0.elapsed(), io);
    }

    /// A buffer pool sized for a join-phase scan.
    pub(crate) fn pool_for_join(&self) -> BufferPool {
        self.pool(self.config.buffer_pages)
    }

    /// A fresh temp table with the same schema/padding as `like`.
    pub(crate) fn make_temp(&mut self, tag: &str, like: &StoredTable) -> StoredTable {
        let name = self.temp_name(tag);
        StoredTable::create_padded(&self.disk, name, like.schema().clone(), like.min_record_bytes())
    }

    fn pool(&self, frames: usize) -> BufferPool {
        BufferPool::new(&self.disk, frames.max(1))
    }

    fn temp_name(&mut self, tag: &str) -> String {
        self.temp_counter += 1;
        format!("__tmp_{tag}_{}", self.temp_counter)
    }

    /// Runs an unnested plan, resetting the metrics registry: lowers the
    /// plan to its physical operator tree and drives the tree to completion
    /// (see `op::drive`).
    ///
    /// In debug builds the plan is statically verified first (see
    /// [`crate::verify`]): a violation means a transformer or optimizer bug,
    /// and refusing to run beats silently corrupting degrees. The verifier
    /// checks the very operator declarations the instantiated tree carries.
    pub fn run(&mut self, plan: &UnnestPlan) -> Result<Relation> {
        #[cfg(debug_assertions)]
        {
            let report = crate::verify::verify_plan(plan, &self.config, self.statistics.as_deref());
            if let Some(v) = report.violations.first() {
                return Err(crate::error::EngineError::Verify(format!(
                    "{v} ({} violation(s) in plan {})",
                    report.violations.len(),
                    report.plan_label
                )));
            }
        }
        self.run_preverified(plan)
    }

    /// [`Executor::run`] for a plan whose static verification is already
    /// trusted — the plan-cache path: a hit replays a plan that was verified
    /// when it was built, so even debug builds skip re-verification here.
    pub fn run_preverified(&mut self, plan: &UnnestPlan) -> Result<Relation> {
        self.metrics_reset();
        let lowered = lower::lower(plan, &self.config, self.statistics.as_deref());
        let mut ops = lowered.instantiate();
        let mut state = op::TreeState::new(ops.len());
        op::drive(self, &mut ops, &mut state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PlanCol, PlanCompare, PlanOperand, PlanTable};
    use fuzzy_core::{CmpOp, Trapezoid, Value};
    use fuzzy_rel::{AttrType, Attribute, Schema, StoredTable, Tuple};
    use fuzzy_sql::AggFunc;

    fn table(disk: &SimDisk, name: &str, xs: &[(f64, f64)]) -> PlanTable {
        // Tuples (ID, X) where X is a rectangle [lo, hi].
        let t = StoredTable::create(
            disk,
            name,
            Schema::new(vec![
                Attribute::new("ID", AttrType::Number),
                Attribute::new("X", AttrType::Number),
            ]),
        );
        t.load(xs.iter().enumerate().map(|(i, (lo, hi))| {
            Tuple::full(vec![
                Value::number(i as f64),
                Value::fuzzy(Trapezoid::rectangular(*lo, *hi).unwrap()),
            ])
        }))
        .unwrap();
        PlanTable { binding: name.to_string(), table: t, local_preds: Vec::new() }
    }

    #[test]
    fn layout_resolution_and_projection() {
        let disk = SimDisk::with_default_page_size();
        let r = table(&disk, "R", &[]);
        let s = table(&disk, "S", &[]);
        let mut layout = Layout::of_table(&r);
        layout.push(&s);
        assert_eq!(layout.resolve(&PlanCol { binding: "R".into(), attr: 1 }).unwrap(), 1);
        assert_eq!(layout.resolve(&PlanCol { binding: "S".into(), attr: 0 }).unwrap(), 2);
        assert!(layout.resolve(&PlanCol { binding: "T".into(), attr: 0 }).is_err());
        assert!(layout.contains("R"));
        assert!(!layout.contains("T"));
        let schema = layout.to_schema();
        assert_eq!(schema.len(), 4);
        assert_eq!(schema.attr(3).name, "S.X");
        let (proj, idx) = layout.projection(&[PlanCol { binding: "S".into(), attr: 1 }]).unwrap();
        assert_eq!(proj.attr(0).name, "X");
        assert_eq!(idx, vec![3]);
    }

    #[test]
    fn bound_compare_eval_pair_spans_both_sides() {
        let disk = SimDisk::with_default_page_size();
        let r = table(&disk, "R", &[]);
        let s = table(&disk, "S", &[]);
        let mut layout = Layout::of_table(&r);
        layout.push(&s);
        let p = layout
            .bind(&PlanCompare::new(
                PlanOperand::Col(PlanCol { binding: "R".into(), attr: 0 }),
                CmpOp::Lt,
                PlanOperand::Col(PlanCol { binding: "S".into(), attr: 0 }),
            ))
            .unwrap();
        let left = vec![Value::number(1.0), Value::number(0.0)];
        let right = vec![Value::number(2.0), Value::number(0.0)];
        assert_eq!(p.eval_pair(&left, &right), Degree::ONE);
        let concat: Vec<Value> = left.iter().chain(right.iter()).cloned().collect();
        assert_eq!(p.eval(&concat), Degree::ONE);
    }

    #[test]
    fn merge_window_covers_exactly_rng() {
        // Outer values: [0,1], [10,11], [20,21]. Inner: [0,2], [9,12],
        // [15,30], [40,41]. Expected windows: r0 -> {[0,2]};
        // r1 -> {[9,12]}; r2 -> {[15,30]} ([40,41] never enters).
        let disk = SimDisk::with_default_page_size();
        let r = table(&disk, "R", &[(0.0, 1.0), (10.0, 11.0), (20.0, 21.0)]);
        let s = table(&disk, "S", &[(0.0, 2.0), (9.0, 12.0), (15.0, 30.0), (40.0, 41.0)]);
        let mut ex = Executor::new(&disk, ExecConfig::default());
        let sorted_r =
            ex.sort_table(&r.table, 1, Degree::ZERO, "sort R by #1".to_string()).unwrap();
        let sorted_s =
            ex.sort_table(&s.table, 1, Degree::ZERO, "sort S by #1".to_string()).unwrap();
        let mut windows: Vec<(f64, Vec<f64>)> = Vec::new();
        ex.merge_window(
            &sorted_r,
            1,
            &sorted_s,
            1,
            Degree::ZERO,
            OpKind::Join,
            "test".to_string(),
            |r, rng, _| {
                let key = r.values[1].interval().unwrap().0;
                let ws = rng.iter().map(|s| s.values[1].interval().unwrap().0).collect();
                windows.push((key, ws));
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(windows, vec![(0.0, vec![0.0]), (10.0, vec![9.0]), (20.0, vec![15.0]),]);
        assert_eq!(ex.stats().pairs_examined, 3);
    }

    #[test]
    fn merge_window_keeps_wide_inner_tuples_across_outers() {
        // A very wide inner tuple stays in every window it can touch.
        let disk = SimDisk::with_default_page_size();
        let r = table(&disk, "R", &[(0.0, 1.0), (50.0, 51.0), (99.0, 100.0)]);
        let s = table(&disk, "S", &[(0.0, 100.0)]);
        let mut ex = Executor::new(&disk, ExecConfig::default());
        let sorted_r =
            ex.sort_table(&r.table, 1, Degree::ZERO, "sort R by #1".to_string()).unwrap();
        let sorted_s =
            ex.sort_table(&s.table, 1, Degree::ZERO, "sort S by #1".to_string()).unwrap();
        let mut count = 0;
        ex.merge_window(
            &sorted_r,
            1,
            &sorted_s,
            1,
            Degree::ZERO,
            OpKind::Join,
            "test".to_string(),
            |_, rng, _| {
                count += rng.len();
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(count, 3, "the wide tuple belongs to all three ranges");
    }

    #[test]
    fn merge_window_includes_dangling_tuples_across_nested_intervals() {
        // Section 3's caveat: a tuple retained in the window for a wide
        // earlier outer interval may not join a later, narrower one — it is
        // examined (dangling) because the window can only drop tuples that
        // precede *every* remaining outer range. Outer: [10,100] then
        // [12,20]; inner: [50,60] joins the first but dangles for the
        // second (its window-retention check e(s)=60 >= b(r)=12 holds while
        // the intervals do not intersect).
        let disk = SimDisk::with_default_page_size();
        let r = table(&disk, "R", &[(10.0, 100.0), (12.0, 20.0)]);
        let s = table(&disk, "S", &[(50.0, 60.0)]);
        let mut ex = Executor::new(&disk, ExecConfig::default());
        let sorted_r =
            ex.sort_table(&r.table, 1, Degree::ZERO, "sort R by #1".to_string()).unwrap();
        let sorted_s =
            ex.sort_table(&s.table, 1, Degree::ZERO, "sort S by #1".to_string()).unwrap();
        let mut seen = Vec::new();
        ex.merge_window(
            &sorted_r,
            1,
            &sorted_s,
            1,
            Degree::ZERO,
            OpKind::Join,
            "test".to_string(),
            |r, rng, _| {
                for s in rng {
                    seen.push(r.values[1].compare(CmpOp::Eq, &s.values[1]).is_positive());
                }
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(seen, vec![true, false], "join for [10,100], dangling for [12,20]");
    }

    #[test]
    fn operators_register_in_the_metrics_registry() {
        let disk = SimDisk::with_default_page_size();
        let r = table(&disk, "R", &[(0.0, 1.0), (10.0, 11.0)]);
        let mut ex = Executor::new(&disk, ExecConfig::default());
        let sorted = ex.sort_table(&r.table, 1, Degree::ZERO, "sort R by #1".to_string()).unwrap();
        let _ = sorted;
        let ops = ex.metrics().ops();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].kind, OpKind::Sort);
        assert_eq!(ops[0].label, "sort R by #1");
        assert_eq!(ops[0].metrics.tuples_in, 2);
        assert_eq!(ex.stats().sort_runs, ops[0].metrics.sort_runs);
    }

    #[test]
    fn group_set_dedups_by_identity_with_max_degree() {
        let mut g = GroupSet::default();
        g.add(Value::number(5.0), Degree::new(0.3).unwrap());
        g.add(Value::number(5.0), Degree::new(0.8).unwrap());
        g.add(Value::number(7.0), Degree::new(0.5).unwrap());
        g.add(Value::Null, Degree::ONE); // NULLs are ignored
        g.add(Value::number(9.0), Degree::ZERO); // non-members are ignored
        let (count, d) = g.aggregate(AggFunc::Count, crate::plan::AggDegree::One).unwrap().unwrap();
        assert_eq!(count, Value::number(2.0));
        assert_eq!(d, Degree::ONE);
        let (sum, _) = g.aggregate(AggFunc::Sum, crate::plan::AggDegree::One).unwrap().unwrap();
        assert_eq!(sum, Value::number(12.0));
        // Mean-membership degree: (0.8 + 0.5) / 2.
        let (_, dm) =
            g.aggregate(AggFunc::Sum, crate::plan::AggDegree::MeanMembership).unwrap().unwrap();
        assert!((dm.value() - 0.65).abs() < 1e-12);
    }

    #[test]
    fn empty_group_set_aggregates() {
        let g = GroupSet::default();
        assert!(g.aggregate(AggFunc::Sum, crate::plan::AggDegree::One).unwrap().is_none());
        let (count, _) = g.aggregate(AggFunc::Count, crate::plan::AggDegree::One).unwrap().unwrap();
        assert_eq!(count, Value::number(0.0));
    }

    #[test]
    fn filter_scan_passthrough_and_reduction() {
        let disk = SimDisk::with_default_page_size();
        let mut r = table(&disk, "R", &[(0.0, 1.0), (10.0, 11.0)]);
        let mut ex = Executor::new(&disk, ExecConfig::default());
        // No predicates: the very same file is reused.
        let same = ex.filter_scan(&r, Degree::ZERO).unwrap();
        assert_eq!(same.num_pages(), r.table.num_pages());
        // With a predicate, only survivors are materialized.
        r.local_preds.push(PlanCompare::new(
            PlanOperand::Col(PlanCol { binding: "R".into(), attr: 0 }),
            CmpOp::Ge,
            PlanOperand::Const(Value::number(1.0)),
        ));
        let reduced = ex.filter_scan(&r, Degree::ZERO).unwrap();
        assert_eq!(reduced.num_tuples(), 1);
    }
}
