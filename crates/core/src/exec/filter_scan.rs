//! Filter scan: folds a table's local predicates (the paper's p_i) into
//! tuple degrees, materializing only the positive survivors ("only those
//! tuples that satisfy p_i positively should be sorted" — Section 3). A
//! pushed-down `WITH D > z` bound additionally prunes tuples already below
//! the threshold.

use crate::error::Result;
use crate::exec::op::{PhysicalOp, Slot, TreeState};
use crate::exec::{Executor, Layout};
use crate::metrics::{OpKind, OperatorMetrics};
use crate::plan::PlanTable;
use crate::verify::{PhysOp, Prop};
use fuzzy_core::Degree;
use fuzzy_rel::StoredTable;

/// The scan's property declaration: no inputs, delivers the table binding's
/// columns and the pushed-down degree bound.
pub(crate) fn declared_properties(binding: &str, min_degree: Degree) -> PhysOp {
    PhysOp::declare(
        format!("scan {binding}"),
        vec![],
        vec![],
        vec![Prop::Binding(binding.to_string()), Prop::MinDegree(min_degree)],
    )
}

/// The filter-scan operator: publishes the filtered table into its slot.
pub(crate) struct FilterScanOp {
    slot: usize,
    decl: PhysOp,
    table: PlanTable,
    min_degree: Degree,
}

impl FilterScanOp {
    pub(crate) fn new(slot: usize, decl: PhysOp, table: PlanTable, min_degree: Degree) -> Self {
        FilterScanOp { slot, decl, table, min_degree }
    }
}

impl PhysicalOp for FilterScanOp {
    fn declared_properties(&self) -> &PhysOp {
        &self.decl
    }

    fn out_slot(&self) -> usize {
        self.slot
    }

    fn open(&mut self, ex: &mut Executor, state: &mut TreeState) -> Result<()> {
        let out = ex.filter_scan(&self.table, self.min_degree)?;
        state.set(self.slot, Slot::Table(out));
        Ok(())
    }
}

impl Executor {
    /// Applies a table's local predicates (p_i), materializing positive
    /// survivors. `min_degree` additionally prunes tuples that can never
    /// survive a pushed-down `WITH` threshold (their degree already falls
    /// below it, and fuzzy AND cannot recover). With no predicates and no
    /// bound the table is passed through untouched.
    pub(crate) fn filter_scan(&mut self, t: &PlanTable, min_degree: Degree) -> Result<StoredTable> {
        let g = self.begin_op(OpKind::Scan, format!("scan {}", t.binding));
        if t.local_preds.is_empty() && !min_degree.is_positive() {
            let m = self.metrics.op_mut(g.id);
            m.tuples_in = t.table.num_tuples();
            m.tuples_out = t.table.num_tuples();
            self.end_op(g);
            return Ok(t.table.clone());
        }
        let layout = Layout::of_table(t);
        let preds = layout.bind_all(&t.local_preds)?;
        let pool = self.pool(2);
        let name = self.temp_name("filter");
        let out = StoredTable::create_padded(
            &self.disk,
            name,
            t.table.schema().clone(),
            t.table.min_record_bytes(),
        );
        let mut w = out.file().bulk_writer();
        let mut m = OperatorMetrics::default();
        for tuple in t.table.scan(&pool) {
            let mut tuple = tuple?;
            m.tuples_in += 1;
            let mut d = tuple.degree;
            for p in &preds {
                m.fuzzy_comparisons += 1;
                d = d.and(p.eval(&tuple.values));
                if !d.is_positive() {
                    break;
                }
            }
            if d.is_positive() && d.meets(min_degree, false) {
                tuple.degree = d;
                m.tuples_out += 1;
                w.append(&tuple.encode(out.min_record_bytes()))?;
            } else if d.is_positive() {
                m.pairs_pruned += 1;
            }
        }
        w.finish()?;
        m.add_pool(&pool.stats());
        self.absorb_op(&g, &m);
        self.end_op(g);
        Ok(out)
    }
}
