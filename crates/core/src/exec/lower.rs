//! Lowering: turns a logical [`UnnestPlan`] into the physical operator tree
//! the executor drives — and, because every node is emitted *together with*
//! its property declaration, the [`crate::verify`] static analysis checks
//! exactly the tree that runs. There is no separately mirrored outline: the
//! verifier's [`Outline`] is the `ops` field of the [`Lowered`] plan, one
//! [`crate::verify::PhysOp`] per [`Node`], same indices, same edges.
//!
//! Lowering is *infallible*: all name resolution and binding that can fail
//! is deferred to each operator's `open`, so `EXPLAIN`/`EXPLAIN VERIFY` can
//! render and check a tree without touching the catalog or the disk.

use crate::exec::op::PhysicalOp;
use crate::exec::{agg, anti, block_nl, filter_scan, flat, merge_join, output, partitioned, sort};
use crate::exec::{ExecConfig, JoinMethod, Layout};
use crate::plan::{AggPlan, AntiPlan, FlatPlan, PlanCol, PlanCompare, UnnestPlan};
use crate::stats_histogram::StatsRegistry;
use crate::verify::{Outline, PhysOp};
use fuzzy_core::{CmpOp, Degree};
use fuzzy_sql::Threshold;

pub(crate) use crate::exec::agg::AggMode;

/// A lowered plan: the plan as the executor actually runs it (join reorder
/// applied), the pushed-down pruning bound, the verifier-checkable operator
/// outline, and the physical node for each outline position.
pub(crate) struct Lowered {
    /// The plan after the same join reorder the executor applies.
    pub(crate) plan: UnnestPlan,
    /// The pruning bound pushed into the pipeline (flat plans only).
    pub(crate) alpha: Degree,
    /// The property-carrying operator tree; `ops[i]` declares `nodes[i]`.
    pub(crate) outline: Outline,
    /// The physical node per outline position.
    pub(crate) nodes: Vec<Node>,
}

/// What one join step does with its output (chosen at lowering time, by
/// looking at the *consumer*).
#[derive(Clone)]
pub(crate) enum SinkMode {
    /// Final step: project straight into the answer rows.
    Answer {
        /// The projection columns.
        select: Vec<PlanCol>,
    },
    /// Pipelined: keep the concatenated tuples in memory for the next merge
    /// step's sort boundary.
    Rows,
    /// Materialize a temp table (the consumer re-scans by page).
    Materialize,
}

/// The physical method of one flat join step.
#[derive(Clone)]
pub(crate) enum StepMethod {
    /// Extended merge-join on an exact-equality driver.
    Merge {
        /// Driver column on the bound side.
        cur_col: PlanCol,
        /// Driver column on the joined table.
        next_col: PlanCol,
    },
    /// Partitioned join on an exact-equality driver.
    Partitioned {
        /// Driver column on the bound side.
        cur_col: PlanCol,
        /// Driver column on the joined table.
        next_col: PlanCol,
    },
    /// Block nested-loop (no exact-equality driver).
    NestedLoop,
}

/// Everything one flat join step needs at `open` time.
#[derive(Clone)]
pub(crate) struct JoinStep {
    /// The step's physical method.
    pub(crate) method: StepMethod,
    /// Evaluable predicates minus the driver, in plan order.
    pub(crate) residuals: Vec<PlanCompare>,
    /// Layout of the bound side (before this step).
    pub(crate) layout: Layout,
    /// Layout after this step joins its table.
    pub(crate) next_layout: Layout,
    /// The pushed-down pruning bound.
    pub(crate) alpha: Degree,
    /// Where the step's output goes.
    pub(crate) sink: SinkMode,
}

/// One physical node of a lowered tree. Slot `i` of the executing tree holds
/// the output of `nodes[i]`; input indices refer to those slots and mirror
/// the outline's edges exactly.
#[derive(Clone)]
pub(crate) enum Node {
    /// Filter scan of a base table at a degree bound.
    Scan {
        /// The table to scan.
        table: crate::plan::PlanTable,
        /// Tuples below this bound are dropped.
        min_degree: Degree,
    },
    /// Single-table select + project straight to answer rows.
    Select {
        /// Input slot.
        input: usize,
        /// The (only) plan table.
        table: crate::plan::PlanTable,
        /// Remaining predicates.
        preds: Vec<PlanCompare>,
        /// Projection columns.
        select: Vec<PlanCol>,
    },
    /// External ⪯-sort of a table or a pipelined row buffer.
    Sort {
        /// Input slot.
        input: usize,
        /// Layout of the input stream (resolves the sort column).
        layout: Layout,
        /// The sort column.
        col: PlanCol,
        /// The α-cut the interval order uses.
        alpha: Degree,
    },
    /// One flat join step.
    Join {
        /// Bound-side input slot.
        left: usize,
        /// Joined-table input slot.
        right: usize,
        /// The step description.
        step: JoinStep,
    },
    /// Grouped MIN(D) anti accumulation.
    Anti {
        /// Outer input slot.
        outer: usize,
        /// Inner input slot.
        inner: usize,
        /// The anti plan.
        plan: AntiPlan,
        /// Merge-window mode (sorted inputs) vs. scan fallback.
        merge: bool,
    },
    /// Nested aggregate evaluation.
    Agg {
        /// Outer input slot.
        outer: usize,
        /// Inner input slot.
        inner: usize,
        /// The aggregate plan.
        plan: AggPlan,
        /// How the inputs are consumed.
        mode: AggMode,
    },
    /// Project/emit: fuzzy-OR dedup + final threshold.
    Output {
        /// Input slot (answer rows).
        input: usize,
        /// Layout the projection resolves against.
        layout: Layout,
        /// Projection columns.
        select: Vec<PlanCol>,
        /// The statement's `WITH D > z` threshold.
        threshold: Option<Threshold>,
    },
}

/// Lowers a plan under a configuration: applies the optimizer's join
/// reorder, derives the push-down bound, and emits the operator tree with
/// its property declarations. This is the single source of physical
/// decisions — the executor runs the tree, the verifier checks it, and
/// `EXPLAIN` renders it.
pub(crate) fn lower(
    plan: &UnnestPlan,
    config: &ExecConfig,
    stats: Option<&StatsRegistry>,
) -> Lowered {
    let plan = effective_plan(plan, config, stats);
    let alpha = crate::exec::pushdown_alpha(config, &plan);
    let (ops, nodes) = match &plan {
        UnnestPlan::Flat(p) => lower_flat(p, config, alpha),
        UnnestPlan::Anti(p) => lower_anti(p),
        UnnestPlan::Agg(p) => lower_agg(p),
    };
    Lowered { plan, alpha, outline: Outline { ops }, nodes }
}

/// The plan as the executor will actually run it: multi-way flat joins are
/// reordered through the optimizer entry point with the same statistics the
/// executor sees.
fn effective_plan(
    plan: &UnnestPlan,
    config: &ExecConfig,
    stats: Option<&StatsRegistry>,
) -> UnnestPlan {
    match plan {
        UnnestPlan::Flat(p) if config.reorder_joins && p.tables.len() > 2 => {
            let mut reordered = p.clone();
            crate::optimizer::reorder_joins_with(&mut reordered, stats);
            UnnestPlan::Flat(reordered)
        }
        other => other.clone(),
    }
}

fn push(ops: &mut Vec<PhysOp>, nodes: &mut Vec<Node>, op: PhysOp, node: Node) -> usize {
    ops.push(op);
    nodes.push(node);
    ops.len() - 1
}

/// One flat join step's decisions, computed for every step before any node
/// is emitted so a step can see its *consumer* (the pipelining decision).
struct StepPlan {
    /// Predicates evaluable at this step, in plan order.
    evaluable: Vec<PlanCompare>,
    /// The merge driver, if an exact equality links the bound side and `t`:
    /// (bound-side column, t's column, position within `evaluable`).
    driver: Option<(PlanCol, PlanCol, usize)>,
    /// Layout before this step.
    layout: Layout,
    /// Layout after this step.
    next_layout: Layout,
    /// Bound binding names before this step.
    bound: Vec<String>,
}

fn lower_flat(p: &FlatPlan, config: &ExecConfig, alpha: Degree) -> (Vec<PhysOp>, Vec<Node>) {
    let mut ops: Vec<PhysOp> = Vec::new();
    let mut nodes: Vec<Node> = Vec::new();
    let mut scans: Vec<usize> = Vec::new();
    for t in &p.tables {
        scans.push(push(
            &mut ops,
            &mut nodes,
            filter_scan::declared_properties(&t.binding, alpha),
            Node::Scan { table: t.clone(), min_degree: alpha },
        ));
    }
    let first = match scans.first().copied() {
        Some(s) => s,
        None => return (ops, nodes), // empty FROM: the driver errors out
    };
    if p.tables.len() == 1 {
        let t = &p.tables[0];
        let sel = push(
            &mut ops,
            &mut nodes,
            flat::declared_properties_select(&t.binding, alpha, first),
            Node::Select {
                input: first,
                table: t.clone(),
                preds: p.join_preds.clone(),
                select: p.select.clone(),
            },
        );
        push(
            &mut ops,
            &mut nodes,
            output::declared_properties(sel, &p.select),
            Node::Output {
                input: sel,
                layout: Layout::of_table(t),
                select: p.select.clone(),
                threshold: p.threshold,
            },
        );
        return (ops, nodes);
    }

    // Pass 1: per-step decisions (evaluable predicates, merge driver,
    // layouts) — computed up front so pass 2 can consult a step's consumer
    // when deciding whether its output pipelines or materializes.
    let mut layout = Layout::of_table(&p.tables[0]);
    let mut bound: Vec<String> = vec![p.tables[0].binding.clone()];
    let mut remaining: Vec<PlanCompare> = p.join_preds.clone();
    let mut steps: Vec<StepPlan> = Vec::new();
    for (i, t) in p.tables.iter().enumerate().skip(1) {
        let last = i == p.tables.len() - 1;
        let mut next_layout = layout.clone();
        next_layout.push(t);
        // Predicates that become evaluable once t is joined; on the last
        // step every remaining predicate must be applied.
        let (evaluable, kept): (Vec<PlanCompare>, Vec<PlanCompare>) =
            remaining.into_iter().partition(|pr| {
                last || pr.bindings().iter().all(|b| layout.contains(b) || *b == t.binding)
            });
        remaining = kept;
        // Pick an exact equality between the bound set and t as merge
        // driver. Similarity predicates (op Eq with a tolerance) must
        // not drive: their widened matches are not bounded by support
        // intersection, so the merge window would miss pairs — they stay
        // residuals, evaluated with their tolerance.
        let driver = evaluable.iter().enumerate().find_map(|(pos, pr)| {
            if pr.op != CmpOp::Eq || pr.tolerance.is_some() {
                return None;
            }
            match (pr.lhs.as_col(), pr.rhs.as_col()) {
                (Some(l), Some(r)) if layout.contains(&l.binding) && r.binding == t.binding => {
                    Some((l.clone(), r.clone(), pos))
                }
                (Some(l), Some(r)) if layout.contains(&r.binding) && l.binding == t.binding => {
                    Some((r.clone(), l.clone(), pos))
                }
                _ => None,
            }
        });
        steps.push(StepPlan {
            evaluable,
            driver,
            layout: layout.clone(),
            next_layout: next_layout.clone(),
            bound: bound.clone(),
        });
        layout = next_layout;
        bound.push(t.binding.clone());
    }
    let final_layout = layout;

    // Pass 2: emit the nodes.
    let mut cur = first;
    for (k, sp) in steps.iter().enumerate() {
        let t = &p.tables[k + 1];
        let last = k == steps.len() - 1;
        // Binding provenance required by this step's predicates.
        let mut requires = vec![
            (0, crate::verify::Prop::MinDegree(alpha)),
            (1, crate::verify::Prop::MinDegree(alpha)),
        ];
        for pr in &sp.evaluable {
            for b in pr.bindings() {
                let slot = usize::from(b == t.binding);
                let prop = crate::verify::Prop::Binding(b.to_string());
                if !requires.iter().any(|(s, q)| *s == slot && *q == prop) {
                    requires.push((slot, prop));
                }
            }
        }
        let mut delivers: Vec<crate::verify::Prop> =
            sp.bound.iter().map(|b| crate::verify::Prop::Binding(b.clone())).collect();
        delivers.push(crate::verify::Prop::Binding(t.binding.clone()));
        delivers.push(crate::verify::Prop::MinDegree(alpha));
        // The step's sink, decided by its consumer: the last step streams
        // into the answer; a step feeding a merge step's sort boundary
        // pipelines in memory; anything else (partitioned or nested-loop
        // consumers re-scan by page) materializes a temp table.
        let sink = if last {
            SinkMode::Answer { select: p.select.clone() }
        } else if config.pipeline_joins
            && steps[k + 1].driver.is_some()
            && config.join_method == JoinMethod::Merge
        {
            SinkMode::Rows
        } else {
            SinkMode::Materialize
        };
        let residuals: Vec<PlanCompare> = match &sp.driver {
            Some((_, _, pos)) => sp
                .evaluable
                .iter()
                .enumerate()
                .filter(|(j, _)| j != pos)
                .map(|(_, pr)| pr.clone())
                .collect(),
            None => sp.evaluable.clone(),
        };
        cur = match (&sp.driver, config.join_method) {
            (Some((cur_col, next_col, _)), JoinMethod::Merge) => {
                let sort_left = push(
                    &mut ops,
                    &mut nodes,
                    sort::declared_properties_bound(cur, &sp.bound, cur_col, alpha),
                    Node::Sort {
                        input: cur,
                        layout: sp.layout.clone(),
                        col: cur_col.clone(),
                        alpha,
                    },
                );
                let sort_right = push(
                    &mut ops,
                    &mut nodes,
                    sort::declared_properties_base(scans[k + 1], &t.binding, next_col, alpha),
                    Node::Sort {
                        input: scans[k + 1],
                        layout: Layout::of_table(t),
                        col: next_col.clone(),
                        alpha,
                    },
                );
                push(
                    &mut ops,
                    &mut nodes,
                    merge_join::declared_properties(
                        &t.binding,
                        vec![sort_left, sort_right],
                        requires,
                        delivers,
                        cur_col,
                        next_col,
                        alpha,
                    ),
                    Node::Join {
                        left: sort_left,
                        right: sort_right,
                        step: JoinStep {
                            method: StepMethod::Merge {
                                cur_col: cur_col.clone(),
                                next_col: next_col.clone(),
                            },
                            residuals,
                            layout: sp.layout.clone(),
                            next_layout: sp.next_layout.clone(),
                            alpha,
                            sink,
                        },
                    },
                )
            }
            (Some((cur_col, next_col, _)), JoinMethod::Partitioned) => push(
                &mut ops,
                &mut nodes,
                partitioned::declared_properties(
                    &t.binding,
                    vec![cur, scans[k + 1]],
                    requires,
                    delivers,
                ),
                Node::Join {
                    left: cur,
                    right: scans[k + 1],
                    step: JoinStep {
                        method: StepMethod::Partitioned {
                            cur_col: cur_col.clone(),
                            next_col: next_col.clone(),
                        },
                        residuals,
                        layout: sp.layout.clone(),
                        next_layout: sp.next_layout.clone(),
                        alpha,
                        sink,
                    },
                },
            ),
            (None, _) => push(
                &mut ops,
                &mut nodes,
                block_nl::declared_properties(
                    &t.binding,
                    vec![cur, scans[k + 1]],
                    requires,
                    delivers,
                ),
                Node::Join {
                    left: cur,
                    right: scans[k + 1],
                    step: JoinStep {
                        method: StepMethod::NestedLoop,
                        residuals,
                        layout: sp.layout.clone(),
                        next_layout: sp.next_layout.clone(),
                        alpha,
                        sink,
                    },
                },
            ),
        };
    }
    push(
        &mut ops,
        &mut nodes,
        output::declared_properties(cur, &p.select),
        Node::Output {
            input: cur,
            layout: final_layout,
            select: p.select.clone(),
            threshold: p.threshold,
        },
    );
    (ops, nodes)
}

fn lower_anti(p: &AntiPlan) -> (Vec<PhysOp>, Vec<Node>) {
    let z = Degree::ZERO;
    let mut ops: Vec<PhysOp> = Vec::new();
    let mut nodes: Vec<Node> = Vec::new();
    let scan_o = push(
        &mut ops,
        &mut nodes,
        filter_scan::declared_properties(&p.outer.binding, z),
        Node::Scan { table: p.outer.clone(), min_degree: z },
    );
    let scan_i = push(
        &mut ops,
        &mut nodes,
        filter_scan::declared_properties(&p.inner.binding, z),
        Node::Scan { table: p.inner.clone(), min_degree: z },
    );
    let anti = match &p.window {
        Some((ocol, icol)) => {
            let sort_o = push(
                &mut ops,
                &mut nodes,
                sort::declared_properties_base(scan_o, &p.outer.binding, ocol, z),
                Node::Sort {
                    input: scan_o,
                    layout: Layout::of_table(&p.outer),
                    col: ocol.clone(),
                    alpha: z,
                },
            );
            let sort_i = push(
                &mut ops,
                &mut nodes,
                sort::declared_properties_base(scan_i, &p.inner.binding, icol, z),
                Node::Sort {
                    input: scan_i,
                    layout: Layout::of_table(&p.inner),
                    col: icol.clone(),
                    alpha: z,
                },
            );
            push(
                &mut ops,
                &mut nodes,
                anti::declared_properties_merge(p, ocol, icol, sort_o, sort_i),
                Node::Anti { outer: sort_o, inner: sort_i, plan: p.clone(), merge: true },
            )
        }
        None => push(
            &mut ops,
            &mut nodes,
            anti::declared_properties_scan(p, scan_o, scan_i),
            Node::Anti { outer: scan_o, inner: scan_i, plan: p.clone(), merge: false },
        ),
    };
    push(
        &mut ops,
        &mut nodes,
        output::declared_properties(anti, &p.select),
        Node::Output {
            input: anti,
            layout: Layout::of_table(&p.outer),
            select: p.select.clone(),
            threshold: p.threshold,
        },
    );
    (ops, nodes)
}

fn lower_agg(p: &AggPlan) -> (Vec<PhysOp>, Vec<Node>) {
    let z = Degree::ZERO;
    let mut ops: Vec<PhysOp> = Vec::new();
    let mut nodes: Vec<Node> = Vec::new();
    let scan_o = push(
        &mut ops,
        &mut nodes,
        filter_scan::declared_properties(&p.outer.binding, z),
        Node::Scan { table: p.outer.clone(), min_degree: z },
    );
    let scan_i = push(
        &mut ops,
        &mut nodes,
        filter_scan::declared_properties(&p.inner.binding, z),
        Node::Scan { table: p.inner.clone(), min_degree: z },
    );
    let agg_node = match &p.corr {
        None => push(
            &mut ops,
            &mut nodes,
            agg::declared_properties_const(p, scan_o, scan_i),
            Node::Agg { outer: scan_o, inner: scan_i, plan: p.clone(), mode: AggMode::Const },
        ),
        Some((ucol, op2, vcol)) => {
            let sort_o = push(
                &mut ops,
                &mut nodes,
                sort::declared_properties_base(scan_o, &p.outer.binding, ucol, z),
                Node::Sort {
                    input: scan_o,
                    layout: Layout::of_table(&p.outer),
                    col: ucol.clone(),
                    alpha: z,
                },
            );
            if *op2 == CmpOp::Eq {
                // Pipelined merge grouping: both sides sorted, windowed.
                let sort_i = push(
                    &mut ops,
                    &mut nodes,
                    sort::declared_properties_base(scan_i, &p.inner.binding, vcol, z),
                    Node::Sort {
                        input: scan_i,
                        layout: Layout::of_table(&p.inner),
                        col: vcol.clone(),
                        alpha: z,
                    },
                );
                push(
                    &mut ops,
                    &mut nodes,
                    agg::declared_properties_merge(p, ucol, vcol, sort_o, sort_i),
                    Node::Agg {
                        outer: sort_o,
                        inner: sort_i,
                        plan: p.clone(),
                        mode: AggMode::Merge,
                    },
                )
            } else {
                // Non-equality correlation: outer sorted (distinct-U groups
                // adjacent for the cache), inner set scanned per group.
                push(
                    &mut ops,
                    &mut nodes,
                    agg::declared_properties_scan(p, ucol, sort_o, scan_i),
                    Node::Agg {
                        outer: sort_o,
                        inner: scan_i,
                        plan: p.clone(),
                        mode: AggMode::Scan,
                    },
                )
            }
        }
    };
    push(
        &mut ops,
        &mut nodes,
        output::declared_properties(agg_node, &p.select),
        Node::Output {
            input: agg_node,
            layout: Layout::of_table(&p.outer),
            select: p.select.clone(),
            threshold: p.threshold,
        },
    );
    (ops, nodes)
}

impl Lowered {
    /// Builds the runnable operator per node, each carrying the declaration
    /// the verifier checked for its outline position.
    pub(crate) fn instantiate(&self) -> Vec<Box<dyn PhysicalOp>> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                let decl = self.outline.ops[i].clone();
                let b: Box<dyn PhysicalOp> = match n.clone() {
                    Node::Scan { table, min_degree } => {
                        Box::new(filter_scan::FilterScanOp::new(i, decl, table, min_degree))
                    }
                    Node::Select { input, table, preds, select } => {
                        Box::new(flat::SelectOp::new(i, decl, input, table, preds, select))
                    }
                    Node::Sort { input, layout, col, alpha } => {
                        Box::new(sort::SortOp::new(i, decl, input, layout, col, alpha))
                    }
                    Node::Join { left, right, step } => {
                        Box::new(flat::JoinStepOp::new(i, decl, left, right, step))
                    }
                    Node::Anti { outer, inner, plan, merge } => {
                        Box::new(anti::AntiOp::new(i, decl, outer, inner, plan, merge))
                    }
                    Node::Agg { outer, inner, plan, mode } => {
                        Box::new(agg::AggOp::new(i, decl, outer, inner, plan, mode))
                    }
                    Node::Output { input, layout, select, threshold } => {
                        Box::new(output::OutputOp::new(i, decl, input, layout, select, threshold))
                    }
                };
                b
            })
            .collect()
    }

    /// `EXPLAIN` annotation for a join node: what its output feeds.
    pub(crate) fn sink_note(&self, i: usize) -> Option<&'static str> {
        match &self.nodes[i] {
            Node::Join { step, .. } => Some(match &step.sink {
                SinkMode::Answer { .. } => "-> answer",
                SinkMode::Rows => "-> pipelined",
                SinkMode::Materialize => "-> temp table",
            }),
            _ => None,
        }
    }
}
