//! Project/emit: the plan root. Collects the projected answer rows of the
//! upstream pipeline, deduplicates by fuzzy OR (max) — the projection
//! semantics every plan root must deliver (`V-DUP-MAX`) — and applies the
//! final `WITH D > z` threshold exactly.

use crate::error::Result;
use crate::exec::op::{PhysicalOp, Slot, TreeState};
use crate::exec::{threshold, Executor, Layout};
use crate::metrics::OpKind;
use crate::plan::PlanCol;
use crate::verify::{PhysOp, Prop};
use fuzzy_core::{Degree, Value};
use fuzzy_rel::{Relation, Schema, Tuple};
use fuzzy_sql::Threshold;

/// The output operator's declaration: requires every projected binding from
/// the stream, delivers fuzzy-OR duplicate elimination.
pub(crate) fn declared_properties(input: usize, select: &[PlanCol]) -> PhysOp {
    let mut requires: Vec<(usize, Prop)> = Vec::new();
    for c in select {
        let prop = Prop::Binding(c.binding.clone());
        if !requires.iter().any(|(_, q)| *q == prop) {
            requires.push((0, prop));
        }
    }
    PhysOp::declare("output", vec![input], requires, vec![Prop::DupMax])
}

/// The output operator: takes the upstream answer rows and publishes the
/// finished relation.
pub(crate) struct OutputOp {
    slot: usize,
    decl: PhysOp,
    input: usize,
    layout: Layout,
    select: Vec<PlanCol>,
    threshold: Option<Threshold>,
}

impl OutputOp {
    pub(crate) fn new(
        slot: usize,
        decl: PhysOp,
        input: usize,
        layout: Layout,
        select: Vec<PlanCol>,
        threshold: Option<Threshold>,
    ) -> Self {
        OutputOp { slot, decl, input, layout, select, threshold }
    }
}

impl PhysicalOp for OutputOp {
    fn declared_properties(&self) -> &PhysOp {
        &self.decl
    }

    fn out_slot(&self) -> usize {
        self.slot
    }

    fn open(&mut self, ex: &mut Executor, state: &mut TreeState) -> Result<()> {
        let (schema, _) = self.layout.projection(&self.select)?;
        let rows = state.take_answer(self.input)?;
        let rel = ex.finish_op(schema, rows, self.threshold);
        state.set(self.slot, Slot::Done(rel));
        Ok(())
    }
}

/// Projects a tuple's values through resolved indices.
pub(crate) fn project(t: &Tuple, idx: &[usize]) -> Vec<Value> {
    idx.iter().map(|&i| t.values[i].clone()).collect()
}

/// Dedups rows by fuzzy OR and applies the final threshold.
pub(crate) fn finish(
    schema: Schema,
    rows: Vec<(Vec<Value>, Degree)>,
    threshold: Option<Threshold>,
) -> Relation {
    threshold::apply_threshold(Relation::from_dedup_rows(schema, rows), threshold)
}

impl Executor {
    /// Final answer assembly as a registered operator: fuzzy-OR dedup plus
    /// the `WITH` threshold. `tuples_in` is the emitted row count,
    /// `tuples_out` the deduplicated, thresholded answer cardinality.
    pub(crate) fn finish_op(
        &mut self,
        schema: Schema,
        rows: Vec<(Vec<Value>, Degree)>,
        threshold: Option<Threshold>,
    ) -> Relation {
        let g = self.begin_op(OpKind::Output, "output".to_string());
        let emitted = rows.len() as u64;
        let rel = finish(schema, rows, threshold);
        let m = self.metrics.op_mut(g.id);
        m.tuples_in = emitted;
        m.tuples_out = rel.len() as u64;
        self.end_op(g);
        rel
    }
}
