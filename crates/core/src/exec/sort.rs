//! External sort by the interval order `⪯` of Definition 3.1 on the join
//! attribute: the sort boundary of every merge-join, anti, and aggregate
//! pipeline. Accepts either a stored table (base relations, materialized
//! intermediates) or an in-memory pipelined row stream — the latter feeds
//! run generation directly, so the only disk traffic is the sort's own
//! spill (see DESIGN.md §11).

use crate::error::Result;
use crate::exec::op::{PhysicalOp, Slot, TreeState};
use crate::exec::{Executor, Layout};
use crate::metrics::OpKind;
use crate::plan::PlanCol;
use crate::verify::{PhysOp, Prop};
use fuzzy_core::{interval_order, Degree};
use fuzzy_rel::{Schema, StoredTable, Tuple};
use fuzzy_storage::{external_sort_parallel, external_sort_records};

/// Declaration of a sort over one base relation's stream (anti/agg pipelines
/// and flat right-hand sides sort at the step's α-cut).
pub(crate) fn declared_properties_base(
    input: usize,
    binding: &str,
    col: &PlanCol,
    alpha: Degree,
) -> PhysOp {
    PhysOp::declare(
        format!("sort {binding} by {col}"),
        vec![input],
        vec![(0, Prop::Binding(col.binding.clone())), (0, Prop::MinDegree(alpha))],
        vec![
            Prop::Binding(binding.to_string()),
            Prop::Sorted { col: col.clone(), alpha },
            Prop::MinDegree(alpha),
        ],
    )
}

/// Declaration of a sort over the bound (already-joined) side of a flat join
/// step: delivers every bound binding plus the ⪯ order on the driver column.
pub(crate) fn declared_properties_bound(
    input: usize,
    bound: &[String],
    col: &PlanCol,
    alpha: Degree,
) -> PhysOp {
    PhysOp::declare(
        format!("sort [{}] by {col}", bound.join("×")),
        vec![input],
        vec![(0, Prop::Binding(col.binding.clone())), (0, Prop::MinDegree(alpha))],
        bound
            .iter()
            .map(|b| Prop::Binding(b.clone()))
            .chain([Prop::Sorted { col: col.clone(), alpha }, Prop::MinDegree(alpha)])
            .collect(),
    )
}

/// The sort operator: consumes its input slot (a stored table or a pipelined
/// row buffer) and publishes the ⪯-sorted table.
pub(crate) struct SortOp {
    slot: usize,
    decl: PhysOp,
    input: usize,
    layout: Layout,
    col: PlanCol,
    alpha: Degree,
}

impl SortOp {
    pub(crate) fn new(
        slot: usize,
        decl: PhysOp,
        input: usize,
        layout: Layout,
        col: PlanCol,
        alpha: Degree,
    ) -> Self {
        SortOp { slot, decl, input, layout, col, alpha }
    }
}

impl PhysicalOp for SortOp {
    fn declared_properties(&self) -> &PhysOp {
        &self.decl
    }

    fn out_slot(&self) -> usize {
        self.slot
    }

    fn open(&mut self, ex: &mut Executor, state: &mut TreeState) -> Result<()> {
        let attr = self.layout.resolve(&self.col)?;
        let label = self.decl.name.clone();
        let sorted = match state.take(self.input) {
            Slot::Rows(rows) => {
                ex.sort_rows(rows, self.layout.to_schema(), attr, self.alpha, label)?
            }
            Slot::Table(t) => ex.sort_table(&t, attr, self.alpha, label)?,
            _ => {
                return Err(crate::error::EngineError::Verify(format!(
                    "sort input #{} published neither a table nor rows",
                    self.input
                )))
            }
        };
        state.set(self.slot, Slot::Table(sorted));
        Ok(())
    }
}

impl Executor {
    /// Sorts a table by the interval order `⪯` of the α-cut intervals on
    /// attribute `attr` (α = 0 is the paper's support order), attributing
    /// run counts, comparisons, and spill I/O to a registered sort operator.
    /// Run generation parallelizes across `ExecConfig::threads` with
    /// bit-identical batch cuts and counters (see `external_sort_parallel`).
    pub(crate) fn sort_table(
        &mut self,
        table: &StoredTable,
        attr: usize,
        alpha: Degree,
        label: String,
    ) -> Result<StoredTable> {
        let g = self.begin_op(OpKind::Sort, label);
        let (file, stats) = external_sort_parallel(
            &self.disk,
            table.file(),
            self.config.sort_pages,
            self.config.threads,
            move |a, b| {
                let va = Tuple::decode_value_at(a, attr).expect("sortable record");
                let vb = Tuple::decode_value_at(b, attr).expect("sortable record");
                interval_order::cmp_values_at(&va, &vb, alpha)
            },
        )?;
        let m = self.metrics.op_mut(g.id);
        m.tuples_in = table.num_tuples();
        m.tuples_out = table.num_tuples();
        m.sort_runs = stats.initial_runs as u64;
        m.sort_comparisons = stats.comparisons;
        self.end_op(g);
        Ok(table.with_file(self.temp_name("sorted"), file))
    }

    /// Sorts an in-memory pipelined row buffer — the output of an upstream
    /// join step that was never materialized — into a stored table. The rows
    /// feed run generation directly (`external_sort_records`), so batch
    /// cuts, run contents, and comparison counts are exactly what
    /// [`Executor::sort_table`] would have produced had the rows been
    /// written to a temp table and re-scanned, minus that write and re-scan.
    /// Run generation is serial regardless of `ExecConfig::threads`: the
    /// record stream arrives in the (deterministic) serial emission order,
    /// and the counters stay bit-identical across thread counts because the
    /// serial path is the only path.
    pub(crate) fn sort_rows(
        &mut self,
        rows: Vec<Tuple>,
        schema: Schema,
        attr: usize,
        alpha: Degree,
        label: String,
    ) -> Result<StoredTable> {
        let g = self.begin_op(OpKind::Sort, label);
        let n = rows.len() as u64;
        let (file, stats) = external_sort_records(
            &self.disk,
            rows.into_iter().map(|t| t.encode(0)),
            self.config.sort_pages,
            move |a, b| {
                let va = Tuple::decode_value_at(a, attr).expect("sortable record");
                let vb = Tuple::decode_value_at(b, attr).expect("sortable record");
                interval_order::cmp_values_at(&va, &vb, alpha)
            },
        )?;
        let m = self.metrics.op_mut(g.id);
        m.tuples_in = n;
        m.tuples_out = n;
        m.sort_runs = stats.initial_runs as u64;
        m.sort_comparisons = stats.comparisons;
        self.end_op(g);
        let shell_name = self.temp_name("pipe");
        let shell = StoredTable::create(&self.disk, shell_name, schema);
        Ok(shell.with_file(self.temp_name("sorted"), file))
    }
}
