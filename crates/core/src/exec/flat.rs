//! Flat-plan operators: the single-table select scan and the generic join
//! step (merge / partitioned / block nested-loop) with its output sink.
//!
//! A chain of join steps pipelines left-deep: every intermediate step whose
//! *consumer* is a merge-join sort boundary emits its concatenated tuples
//! into an in-memory [`JoinSink::Buffer`] ([`crate::exec::op::Slot::Rows`])
//! instead of materializing a temp table — the paper's Section 4 point that
//! the join result itself never needs to hit the disk extended from the last
//! step to *every* step whose successor re-sorts anyway. The final step
//! streams straight into the projected answer rows. Only a step feeding a
//! partitioned or nested-loop consumer (which re-scan their outer by page)
//! still materializes.

use crate::error::Result;
use crate::exec::lower::{JoinStep, SinkMode, StepMethod};
use crate::exec::op::{PhysicalOp, Slot, TreeState};
use crate::exec::{BoundCompare, Executor, Layout, PairOutcome};
use crate::metrics::{OpKind, OperatorMetrics};
use crate::plan::{PlanCol, PlanCompare, PlanTable};
use crate::verify::{PhysOp, Prop};
use fuzzy_core::{CmpOp, Degree, Value};
use fuzzy_rel::{StoredTable, Tuple};

/// Declaration of the single-table select scan: applies the remaining
/// predicates to the filtered stream and projects the answer rows.
pub(crate) fn declared_properties_select(binding: &str, alpha: Degree, input: usize) -> PhysOp {
    PhysOp::declare(
        format!("select {binding}"),
        vec![input],
        vec![(0, Prop::Binding(binding.to_string())), (0, Prop::MinDegree(alpha))],
        vec![Prop::Binding(binding.to_string()), Prop::MinDegree(alpha)],
    )
}

/// Where one join step delivers its output: an intermediate temp table, an
/// in-memory pipelined row buffer, or — on the final step — the projected
/// answer rows (the paper's pipelined insertion into the answer).
pub(crate) enum JoinSink<'a> {
    /// Spill the concatenated tuples to a temp table (consumer re-scans by
    /// page: partitioned or nested-loop next step).
    Materialize {
        /// The temp table being written.
        out: StoredTable,
        /// Its bulk writer.
        w: fuzzy_storage::file::BulkWriter,
    },
    /// Keep the concatenated tuples in memory for the next sort boundary.
    Buffer {
        /// The pipelined row buffer.
        rows: &'a mut Vec<Tuple>,
    },
    /// Project straight into the answer rows (final step).
    Stream {
        /// Projection indices on the concatenated layout.
        select_idx: &'a [usize],
        /// The answer rows.
        rows: &'a mut Vec<(Vec<Value>, Degree)>,
    },
}

impl JoinSink<'_> {
    pub(crate) fn emit(&mut self, r: &Tuple, s: &Tuple, d: Degree) -> Result<()> {
        match self {
            JoinSink::Materialize { w, .. } => {
                let mut values = r.values.clone();
                values.extend_from_slice(&s.values);
                w.append(&Tuple::new(values, d).encode(0))?;
                Ok(())
            }
            JoinSink::Buffer { rows } => {
                let mut values = r.values.clone();
                values.extend_from_slice(&s.values);
                rows.push(Tuple::new(values, d));
                Ok(())
            }
            JoinSink::Stream { select_idx, rows } => {
                let left_len = r.values.len();
                let values = select_idx
                    .iter()
                    .map(|&i| {
                        if i < left_len {
                            r.values[i].clone()
                        } else {
                            s.values[i - left_len].clone()
                        }
                    })
                    .collect();
                rows.push((values, d));
                Ok(())
            }
        }
    }

    fn into_table(self) -> Result<Option<StoredTable>> {
        match self {
            JoinSink::Materialize { out, w } => {
                w.finish()?;
                Ok(Some(out))
            }
            JoinSink::Buffer { .. } | JoinSink::Stream { .. } => Ok(None),
        }
    }
}

/// The single-table flat operator: streams the filtered scan through the
/// remaining predicates straight into the projected answer rows.
pub(crate) struct SelectOp {
    slot: usize,
    decl: PhysOp,
    input: usize,
    table: PlanTable,
    preds: Vec<PlanCompare>,
    select: Vec<PlanCol>,
}

impl SelectOp {
    pub(crate) fn new(
        slot: usize,
        decl: PhysOp,
        input: usize,
        table: PlanTable,
        preds: Vec<PlanCompare>,
        select: Vec<PlanCol>,
    ) -> Self {
        SelectOp { slot, decl, input, table, preds, select }
    }
}

impl PhysicalOp for SelectOp {
    fn declared_properties(&self) -> &PhysOp {
        &self.decl
    }

    fn out_slot(&self) -> usize {
        self.slot
    }

    fn open(&mut self, ex: &mut Executor, state: &mut TreeState) -> Result<()> {
        let layout = Layout::of_table(&self.table);
        let bound = layout.bind_all(&self.preds)?;
        let (_, select_idx) = layout.projection(&self.select)?;
        let current = state.take_table(self.input)?;
        let mut rows: Vec<(Vec<Value>, Degree)> = Vec::new();
        let g = ex.begin_op(OpKind::Scan, self.decl.name.clone());
        let pool = ex.pool(2);
        let mut m = OperatorMetrics::default();
        for t in current.scan(&pool) {
            let t = t?;
            m.tuples_in += 1;
            let mut d = t.degree;
            for b in &bound {
                m.fuzzy_comparisons += 1;
                d = d.and(b.eval(&t.values));
            }
            if d.is_positive() {
                m.tuples_out += 1;
                rows.push((crate::exec::project(&t, &select_idx), d));
            }
        }
        m.add_pool(&pool.stats());
        ex.absorb_op(&g, &m);
        ex.end_op(g);
        state.set(self.slot, Slot::Answer(rows));
        Ok(())
    }
}

/// One flat join step: evaluates its driver + residual predicates over the
/// candidate pairs its physical method produces, emitting into the sink the
/// lowering pass chose.
pub(crate) struct JoinStepOp {
    slot: usize,
    decl: PhysOp,
    left: usize,
    right: usize,
    step: JoinStep,
}

impl JoinStepOp {
    pub(crate) fn new(
        slot: usize,
        decl: PhysOp,
        left: usize,
        right: usize,
        step: JoinStep,
    ) -> Self {
        JoinStepOp { slot, decl, left, right, step }
    }
}

impl PhysicalOp for JoinStepOp {
    fn declared_properties(&self) -> &PhysOp {
        &self.decl
    }

    fn out_slot(&self) -> usize {
        self.slot
    }

    fn open(&mut self, ex: &mut Executor, state: &mut TreeState) -> Result<()> {
        let step = &self.step;
        let alpha = step.alpha;
        let mut rows: Vec<(Vec<Value>, Degree)> = Vec::new();
        let mut buffered: Vec<Tuple> = Vec::new();
        let select_idx: Vec<usize> = match &step.sink {
            SinkMode::Answer { select } => step.next_layout.projection(select)?.1,
            SinkMode::Rows | SinkMode::Materialize => Vec::new(),
        };
        let left = state.take_table(self.left)?;
        let right = state.take_table(self.right)?;
        let mut sink = match &step.sink {
            SinkMode::Answer { .. } => {
                JoinSink::Stream { select_idx: &select_idx, rows: &mut rows }
            }
            SinkMode::Rows => JoinSink::Buffer { rows: &mut buffered },
            SinkMode::Materialize => {
                let name = ex.temp_name("join");
                let out = StoredTable::create(&ex.disk, name, step.next_layout.to_schema());
                let w = out.file().bulk_writer();
                JoinSink::Materialize { out, w }
            }
        };
        let residuals: Vec<BoundCompare> = step.next_layout.bind_all(&step.residuals)?;
        match &step.method {
            StepMethod::Merge { cur_col, next_col }
            | StepMethod::Partitioned { cur_col, next_col } => {
                let cur_idx = step.layout.resolve(cur_col)?;
                let next_idx = next_col.attr;
                // The outcome a joined pair contributes. Pure (no captured
                // mutable state), so the parallel join may evaluate it
                // from worker threads; both paths count its comparisons
                // and prunes identically. Pairs whose degree already falls
                // below a pushed-down `WITH D > z` threshold are pruned
                // here — fuzzy AND cannot recover them, and dropping them
                // now keeps them out of pipelined intermediates and the
                // external sorts of later join steps.
                let pair_eval = |r: &Tuple, s: &Tuple| -> PairOutcome {
                    let mut comparisons = 1u32;
                    let d_join = r.values[cur_idx].compare(CmpOp::Eq, &s.values[next_idx]);
                    let mut d = r.degree.and(s.degree).and(d_join);
                    if !d.is_positive() {
                        return PairOutcome { degree: None, comparisons, pruned: false };
                    }
                    for b in &residuals {
                        comparisons += 1;
                        d = d.and(b.eval_pair(&r.values, &s.values));
                        if !d.is_positive() {
                            return PairOutcome { degree: None, comparisons, pruned: false };
                        }
                    }
                    if !d.meets(alpha, false) {
                        return PairOutcome { degree: None, comparisons, pruned: true };
                    }
                    PairOutcome { degree: Some(d), comparisons, pruned: false }
                };
                let handle = |sink: &mut JoinSink<'_>,
                              r: &Tuple,
                              s: &Tuple,
                              m: &mut OperatorMetrics|
                 -> Result<()> {
                    let o = pair_eval(r, s);
                    m.fuzzy_comparisons += u64::from(o.comparisons);
                    m.pairs_pruned += u64::from(o.pruned);
                    match o.degree {
                        Some(d) => {
                            m.tuples_out += 1;
                            sink.emit(r, s, d)
                        }
                        None => Ok(()),
                    }
                };
                match &step.method {
                    StepMethod::Merge { .. } if ex.config.threads > 1 => {
                        ex.merge_join_parallel(
                            &left,
                            cur_idx,
                            &right,
                            next_idx,
                            alpha,
                            OpKind::Join,
                            self.decl.name.clone(),
                            &pair_eval,
                            &mut sink,
                        )?;
                    }
                    StepMethod::Merge { .. } => {
                        ex.merge_window(
                            &left,
                            cur_idx,
                            &right,
                            next_idx,
                            alpha,
                            OpKind::Join,
                            self.decl.name.clone(),
                            |r, rng, m| {
                                for s in rng {
                                    handle(&mut sink, r, s, m)?;
                                }
                                Ok(())
                            },
                        )?;
                    }
                    _ => {
                        ex.partitioned_join(
                            &left,
                            cur_idx,
                            &right,
                            next_idx,
                            alpha,
                            self.decl.name.clone(),
                            |r, s, m| handle(&mut sink, r, s, m),
                        )?;
                    }
                }
            }
            StepMethod::NestedLoop => {
                // No equality driver: block-nested-loop fallback.
                ex.block_nested_loop(
                    &left,
                    &right,
                    self.decl.name.clone(),
                    |_, _| (),
                    |_, r, s, m| {
                        let mut d = r.degree.and(s.degree);
                        if !d.is_positive() {
                            return Ok(());
                        }
                        for b in &residuals {
                            m.fuzzy_comparisons += 1;
                            d = d.and(b.eval_pair(&r.values, &s.values));
                            if !d.is_positive() {
                                return Ok(());
                            }
                        }
                        if d.meets(alpha, false) {
                            m.tuples_out += 1;
                            sink.emit(r, s, d)?;
                        } else {
                            m.pairs_pruned += 1;
                        }
                        Ok(())
                    },
                    |_, _, _| Ok(()),
                )?;
            }
        }
        match sink.into_table()? {
            Some(out) => state.set(self.slot, Slot::Table(out)),
            None => match &step.sink {
                SinkMode::Rows => state.set(self.slot, Slot::Rows(buffered)),
                SinkMode::Answer { .. } | SinkMode::Materialize => {
                    state.set(self.slot, Slot::Answer(rows))
                }
            },
        }
        Ok(())
    }
}
