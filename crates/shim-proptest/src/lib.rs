//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach the crates.io registry, so the workspace
//! vendors a minimal, API-compatible subset of proptest 1.x: the [`Strategy`]
//! trait with `prop_map`/`boxed`, range/tuple/`Just`/union/collection/string
//! strategies, the `proptest!`, `prop_oneof!`, `prop_assert!` and
//! `prop_assert_eq!` macros, [`ProptestConfig`] and [`TestCaseError`].
//!
//! Differences from real proptest, deliberately accepted:
//! - cases are generated from a fixed deterministic seed sequence (fully
//!   reproducible runs, no `PROPTEST_CASES`/persistence machinery);
//! - no shrinking — a failing case reports its values via the assertion
//!   message instead of a minimized counterexample;
//! - string strategies interpret only the `.{lo,hi}` regex shape (arbitrary
//!   strings up to a length bound), which is the one shape the workspace uses.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{RngCore, SampleRange, SeedableRng};
use std::fmt;
use std::rc::Rc;

/// Deterministic per-case random source handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Generator for the `case`-th test case (fixed golden base seed).
    pub fn deterministic(case: u32) -> TestRng {
        TestRng(StdRng::seed_from_u64(0xF0DD_BA11 ^ ((case as u64) << 17)))
    }

    fn sample<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(&mut self.0)
    }

    fn bits(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Failure raised by `prop_assert!`-style macros (subset of proptest's).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A test-case failure with the given message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration (subset of proptest's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config that runs `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A generator of random values (subset of proptest's `Strategy`).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { f: Rc::new(move |rng| self.generate(rng)) }
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    f: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

/// The `prop_map` adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (backs `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.sample(0..self.arms.len());
        self.arms[idx].generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.sample(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.sample(self.clone())
            }
        }
    )*};
}

range_strategy!(i32, i64, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.sample(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}

/// `&str` as a strategy: proptest treats the string as a generation regex.
/// This shim honours the one shape the workspace uses — `.{lo,hi}` — and
/// produces arbitrary strings (ASCII-heavy with occasional multi-byte
/// characters) whose length lies in the bound.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_dot_repeat(self).unwrap_or((0, 32));
        let len = rng.sample(lo..hi + 1);
        (0..len).map(|_| random_char(rng)).collect()
    }
}

fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

fn random_char(rng: &mut TestRng) -> char {
    const EXOTIC: [char; 8] = ['é', 'λ', '∀', '〜', '你', '\u{200b}', 'Ω', '🙂'];
    match rng.bits() % 8 {
        // Mostly printable ASCII: the interesting space for a SQL lexer.
        0..=5 => (0x20u8 + (rng.bits() % 0x5f) as u8) as char,
        6 => ['\n', '\t', '\r', '\0'][(rng.bits() % 4) as usize],
        _ => EXOTIC[(rng.bits() % EXOTIC.len() as u64) as usize],
    }
}

/// Collection strategies (subset of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Admissible size arguments for [`vec()`].
    pub trait SizeRange {
        /// Draws a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.sample(self.clone())
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.sample(self.clone())
        }
    }

    /// Strategy for vectors whose elements come from `element`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// A vector strategy with a length drawn from `size`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (subset of `proptest::bool`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy yielding arbitrary booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// An arbitrary boolean.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.sample(0..2u32) == 1
        }
    }
}

/// Executes one property: `cases` deterministic random cases of `body`.
/// Called by the `proptest!` macro expansion; panics on the first failure.
pub fn run_proptest<F>(config: ProptestConfig, name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    for case in 0..config.cases {
        let mut rng = TestRng::deterministic(case);
        if let Err(e) = body(&mut rng) {
            panic!("property {name}: case {case}/{} failed: {e}", config.cases);
        }
    }
}

/// Asserts a condition inside a property, failing the case (not panicking)
/// when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Asserts equality inside a property, failing the case when it does not hold.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}: {}",
                l, r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr)
        $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let strategies = ($($crate::Strategy::boxed($strat),)*);
                #[allow(unused_variables)]
                $crate::run_proptest($cfg, stringify!($name), |rng| {
                    #[allow(non_snake_case)]
                    let ($($arg,)*) = &strategies;
                    $(let $arg = $crate::Strategy::generate($arg, rng);)*
                    { $body };
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// The usual glob import: strategies, config, error type, and macros.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
    pub use crate::{BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError};

    /// Mirror of proptest's `prop` path aliases (`prop::collection::vec`).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_maps_compose() {
        let strat = (0..5i32, (1..=3u32).prop_map(|v| v * 10)).prop_map(|(a, b)| (a, b));
        let mut rng = crate::TestRng::deterministic(0);
        for _ in 0..100 {
            let (a, b) = strat.generate(&mut rng);
            assert!((0..5).contains(&a));
            assert!([10, 20, 30].contains(&b));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let strat = prop_oneof![Just(1usize), Just(2usize), Just(3usize)];
        let mut rng = crate::TestRng::deterministic(1);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[strat.generate(&mut rng) - 1] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn string_pattern_respects_length_bound() {
        let mut rng = crate::TestRng::deterministic(2);
        for _ in 0..200 {
            let s = ".{0,16}".generate(&mut rng);
            assert!(s.chars().count() <= 16);
        }
    }

    #[test]
    fn collection_vec_respects_size() {
        let strat = prop::collection::vec(0..10i32, 2..5);
        let mut rng = crate::TestRng::deterministic(3);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro wires arguments, assertions, and `?` plumbing.
        #[test]
        fn macro_smoke(a in 0..100i32, b in 0..100i32, flag in crate::bool::ANY) {
            prop_assert!(a + b <= 198, "sum {} out of range", a + b);
            prop_assert_eq!(a + b, b + a);
            let _ = flag;
        }
    }

    #[test]
    #[should_panic(expected = "case")]
    fn failing_property_panics_with_case_number() {
        crate::run_proptest(ProptestConfig::with_cases(4), "always_fails", |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
