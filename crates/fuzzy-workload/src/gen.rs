//! Synthetic workload generator reproducing the paper's Section 9 setup.
//!
//! "Tuples of the relations are randomly generated and a tuple of one
//! relation joins, on the average, C tuples of the other relation. […] both
//! the intervals associated with the join attribute values and the average
//! numbers of joining tuples are kept small. This is typical for fuzzy
//! database applications in which data may be imprecise but not very vague."
//!
//! Construction: the join domain is a grid of `n_inner / C` centres spaced
//! far enough apart that values around different centres never overlap. Every
//! tuple draws a centre uniformly and represents it by a small trapezoid
//! jittered around the centre (or a crisp value, with probability
//! `1 − fuzzy_fraction`). Thus an outer tuple joins on average `C` inner
//! tuples, with graded (not just 0/1) possibility degrees.

use fuzzy_core::{Trapezoid, Value};
use fuzzy_rel::{AttrType, Schema, StoredTable, Tuple};
use fuzzy_storage::{Result, SimDisk};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a generated two-relation join workload.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Tuples in the outer relation R.
    pub n_outer: usize,
    /// Tuples in the inner relation S.
    pub n_inner: usize,
    /// Minimum encoded tuple size in bytes (the paper uses 128 B – 2 KB).
    pub tuple_bytes: usize,
    /// Average number of inner tuples each outer tuple joins (the paper's C).
    pub fanout: usize,
    /// Fraction of join values that are ill-known (the rest are crisp).
    pub fuzzy_fraction: f64,
    /// Maximum half-width of the support of an ill-known value, as a fraction
    /// of the grid spacing. Below 0.5 different centres never overlap (the
    /// fan-out is exactly C); larger values create cross-centre overlaps and
    /// dangling tuples (Section 3's caveat), used by the ablation experiment.
    pub vagueness: f64,
    /// Zipf skew exponent for centre selection: 0 = uniform (the paper's
    /// setup); larger values concentrate the join values on few hot centres,
    /// the adversarial case for sampling-based partitioning.
    pub skew: f64,
    /// RNG seed, for reproducibility.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            n_outer: 8000,
            n_inner: 8000,
            tuple_bytes: 128,
            fanout: 7,
            fuzzy_fraction: 0.5,
            vagueness: 0.35,
            skew: 0.0,
            seed: 42,
        }
    }
}

impl WorkloadSpec {
    /// Relation sizes in bytes (n × tuple_bytes), which is how the paper
    /// reports them (1 MB = 8000 × 128 B).
    pub fn outer_bytes(&self) -> usize {
        self.n_outer * self.tuple_bytes
    }

    /// See [`WorkloadSpec::outer_bytes`].
    pub fn inner_bytes(&self) -> usize {
        self.n_inner * self.tuple_bytes
    }
}

/// A generated pair of relations with schema
/// `(ID: Number key, X: Number join attribute, V: Number payload)`.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The outer relation R.
    pub outer: StoredTable,
    /// The inner relation S.
    pub inner: StoredTable,
    /// The spec the workload was generated from.
    pub spec: WorkloadSpec,
}

/// Generates the workload onto `disk`.
pub fn generate(disk: &SimDisk, spec: WorkloadSpec) -> Result<Workload> {
    assert!(spec.fanout >= 1, "fanout must be at least 1");
    assert!(
        spec.vagueness >= 0.0 && spec.vagueness.is_finite(),
        "vagueness must be a finite non-negative number"
    );
    // Below 0.5 different grid centres never overlap, so the average fan-out
    // is exactly C. Larger values deliberately overlap neighbouring centres —
    // the Section 3 "dangling tuples" regime the ablation experiment probes.
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let centres = (spec.n_inner / spec.fanout).max(1);
    let spacing = 100.0;
    // Cumulative Zipf weights for skewed centre selection (uniform when the
    // exponent is 0).
    let zipf_cdf: Vec<f64> = if spec.skew > 0.0 {
        let mut acc = 0.0;
        let mut cdf = Vec::with_capacity(centres);
        for k in 1..=centres {
            acc += 1.0 / (k as f64).powf(spec.skew);
            cdf.push(acc);
        }
        let total = acc;
        cdf.iter().map(|c| c / total).collect()
    } else {
        Vec::new()
    };

    let schema = || {
        Schema::of(&[("ID", AttrType::Number), ("X", AttrType::Number), ("V", AttrType::Number)])
            .with_key("ID")
    };

    let outer = StoredTable::create_padded(disk, "R", schema(), spec.tuple_bytes);
    outer.load((0..spec.n_outer).map(|i| {
        let x = join_value(&mut rng, centres, spacing, &spec, &zipf_cdf);
        Tuple::full(vec![Value::number(i as f64), x, Value::number(rng.gen_range(0.0..1000.0))])
    }))?;

    let inner = StoredTable::create_padded(disk, "S", schema(), spec.tuple_bytes);
    inner.load((0..spec.n_inner).map(|i| {
        let x = join_value(&mut rng, centres, spacing, &spec, &zipf_cdf);
        Tuple::full(vec![
            Value::number((spec.n_outer + i) as f64),
            x,
            Value::number(rng.gen_range(0.0..1000.0)),
        ])
    }))?;

    Ok(Workload { outer, inner, spec })
}

fn join_value(
    rng: &mut StdRng,
    centres: usize,
    spacing: f64,
    spec: &WorkloadSpec,
    zipf_cdf: &[f64],
) -> Value {
    let idx = if zipf_cdf.is_empty() {
        rng.gen_range(0..centres)
    } else {
        let u: f64 = rng.gen_range(0.0..1.0);
        zipf_cdf.partition_point(|c| *c < u).min(centres - 1)
    };
    let centre = (idx as f64) * spacing;
    if rng.gen_bool(spec.fuzzy_fraction.clamp(0.0, 1.0)) {
        // Total extent (offset + core half-width + edge width) stays below
        // vagueness × spacing < spacing / 2, so different centres never
        // overlap. The core is *offset* from the centre so that two values of
        // the same centre usually intersect only partially — join degrees are
        // graded, not 0/1.
        let max_w = spec.vagueness * spacing / 1.75;
        if max_w > 0.0 {
            let w = rng.gen_range(0.25 * max_w..max_w);
            let off = rng.gen_range(-0.5 * max_w..0.5 * max_w);
            let core_half = rng.gen_range(0.0..0.25 * max_w);
            let core_l = centre + off - core_half;
            let core_r = centre + off + core_half;
            let t = Trapezoid::new(core_l - w, core_l, core_r, core_r + w)
                .expect("ordered by construction");
            return Value::fuzzy(t);
        }
    }
    Value::number(centre)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuzzy_core::CmpOp;
    use fuzzy_storage::BufferPool;

    #[test]
    fn generates_requested_sizes() {
        let disk = SimDisk::with_default_page_size();
        let w = generate(
            &disk,
            WorkloadSpec { n_outer: 200, n_inner: 400, tuple_bytes: 128, ..Default::default() },
        )
        .unwrap();
        assert_eq!(w.outer.num_tuples(), 200);
        assert_eq!(w.inner.num_tuples(), 400);
        // 128-byte records, 8 KB pages: 63 records per page (slot overhead).
        assert!(w.outer.num_pages() >= 200 * 128 / 8192);
    }

    #[test]
    fn fanout_is_approximately_c() {
        let disk = SimDisk::with_default_page_size();
        let spec =
            WorkloadSpec { n_outer: 300, n_inner: 300, fanout: 7, seed: 7, ..Default::default() };
        let w = generate(&disk, spec).unwrap();
        let pool = BufferPool::new(&disk, 64);
        let r = w.outer.to_relation(&pool).unwrap();
        let s = w.inner.to_relation(&pool).unwrap();
        let mut joins = 0usize;
        for rt in r.tuples() {
            for st in s.tuples() {
                if rt.values[1].compare(CmpOp::Eq, &st.values[1]).is_positive() {
                    joins += 1;
                }
            }
        }
        let avg = joins as f64 / r.len() as f64;
        assert!(
            (avg - spec.fanout as f64).abs() < spec.fanout as f64 * 0.5,
            "average fanout {avg} too far from C = {}",
            spec.fanout
        );
    }

    #[test]
    fn degrees_are_graded_not_binary() {
        let disk = SimDisk::with_default_page_size();
        let w = generate(
            &disk,
            WorkloadSpec {
                n_outer: 100,
                n_inner: 100,
                fuzzy_fraction: 1.0,
                seed: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let pool = BufferPool::new(&disk, 64);
        let r = w.outer.to_relation(&pool).unwrap();
        let s = w.inner.to_relation(&pool).unwrap();
        let mut partial = 0usize;
        for rt in r.tuples() {
            for st in s.tuples() {
                let d = rt.values[1].compare(CmpOp::Eq, &st.values[1]).value();
                if d > 0.0 && d < 1.0 {
                    partial += 1;
                }
            }
        }
        assert!(partial > 0, "expected some partial-degree joins");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let disk1 = SimDisk::with_default_page_size();
        let disk2 = SimDisk::with_default_page_size();
        let spec = WorkloadSpec { n_outer: 50, n_inner: 50, ..Default::default() };
        let w1 = generate(&disk1, spec).unwrap();
        let w2 = generate(&disk2, spec).unwrap();
        let p1 = BufferPool::new(&disk1, 8);
        let p2 = BufferPool::new(&disk2, 8);
        assert_eq!(w1.outer.to_relation(&p1).unwrap(), w2.outer.to_relation(&p2).unwrap());
    }

    #[test]
    fn crisp_only_workload() {
        let disk = SimDisk::with_default_page_size();
        let w = generate(
            &disk,
            WorkloadSpec { n_outer: 50, n_inner: 50, fuzzy_fraction: 0.0, ..Default::default() },
        )
        .unwrap();
        let pool = BufferPool::new(&disk, 8);
        let r = w.outer.to_relation(&pool).unwrap();
        assert!(r.tuples().iter().all(|t| matches!(t.values[1], Value::Number(_))));
    }

    #[test]
    fn skewed_workloads_concentrate_values() {
        let disk = SimDisk::with_default_page_size();
        let spec = WorkloadSpec {
            n_outer: 500,
            n_inner: 500,
            fanout: 5,
            skew: 1.5,
            fuzzy_fraction: 0.0,
            seed: 12,
            ..Default::default()
        };
        let w = generate(&disk, spec).unwrap();
        let pool = BufferPool::new(&disk, 16);
        let rel = w.inner.to_relation(&pool).unwrap();
        let mut counts: std::collections::HashMap<u64, usize> = Default::default();
        for t in rel.tuples() {
            *counts.entry(t.values[1].as_number().unwrap() as u64).or_default() += 1;
        }
        let max = *counts.values().max().unwrap();
        // Under Zipf(1.5), the hottest centre takes far more than the
        // uniform share (500 / 100 centres = 5).
        assert!(max > 50, "hottest centre got {max}");
    }

    #[test]
    fn spec_byte_accounting() {
        let spec =
            WorkloadSpec { n_outer: 8000, n_inner: 16000, tuple_bytes: 128, ..Default::default() };
        // The paper calls 8000 x 128 B "1 MB".
        assert_eq!(spec.outer_bytes(), 1_024_000);
        assert_eq!(spec.inner_bytes(), 2_048_000);
    }
}
