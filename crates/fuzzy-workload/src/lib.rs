//! # fuzzy-workload
//!
//! Workloads for the experiments and examples: the paper's running-example
//! datasets (dating service, employees, cities) and the Section 9 synthetic
//! generator (n tuples of a fixed byte size whose join attribute values give
//! an average fan-out of C with small intervals).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod paper;

pub use gen::{generate, Workload, WorkloadSpec};
