//! The datasets of the paper's running examples.
//!
//! * the dating-service relations `F` and `M` of Section 2 / Example 4.1
//!   (Fig. 2 data);
//! * the `EMP_SALES` / `EMP_RESEARCH` relations of Query 4 (type JX);
//! * the `CITIES_REGION_A` / `CITIES_REGION_B` relations of Query 5 (type JA).
//!
//! All catalogs use the calibrated paper vocabulary
//! ([`fuzzy_core::Vocabulary::paper`]).

use fuzzy_core::{Value, Vocabulary};
use fuzzy_rel::{AttrType, Catalog, Relation, Schema, StoredTable, Tuple};
use fuzzy_storage::{Result, SimDisk};

/// Builds the dating-service catalog: tables `F` and `M` with attributes
/// `ID, NAME, AGE, INCOME` (incomes in thousands of dollars), exactly the
/// tuples of Example 4.1.
pub fn dating_service(disk: &SimDisk) -> Result<Catalog> {
    let mut catalog = Catalog::with_paper_vocabulary();
    let schema = || {
        Schema::of(&[
            ("ID", AttrType::Number),
            ("NAME", AttrType::Text),
            ("AGE", AttrType::Number),
            ("INCOME", AttrType::Number),
        ])
        .with_key("ID")
    };
    let v = Vocabulary::paper();
    let term = |name: &str| Value::fuzzy(*v.get(name).expect("paper term"));

    let f = StoredTable::create(disk, "F", schema());
    f.load([
        person(101.0, "Ann", term("about 35"), term("about 60K")),
        person(102.0, "Ann", term("medium young"), term("medium high")),
        person(103.0, "Betty", term("middle age"), term("high")),
        person(104.0, "Cathy", term("about 50"), term("low")),
    ])?;
    catalog.register(f);

    let m = StoredTable::create(disk, "M", schema());
    m.load([
        person(201.0, "Allen", Value::number(24.0), term("about 25K")),
        person(202.0, "Allen", term("about 50"), term("about 40K")),
        person(203.0, "Bill", term("middle age"), term("high")),
        person(204.0, "Carl", term("about 29"), term("medium low")),
    ])?;
    catalog.register(m);
    Ok(catalog)
}

fn person(id: f64, name: &str, age: Value, income: Value) -> Tuple {
    Tuple::full(vec![Value::number(id), Value::text(name), age, income])
}

/// Builds the employees catalog of Query 4: `EMP_SALES` and `EMP_RESEARCH`
/// with `ID, NAME, AGE, INCOME`.
pub fn employees(disk: &SimDisk) -> Result<Catalog> {
    let mut catalog = Catalog::with_paper_vocabulary();
    let schema = || {
        Schema::of(&[
            ("ID", AttrType::Number),
            ("NAME", AttrType::Text),
            ("AGE", AttrType::Number),
            ("INCOME", AttrType::Number),
        ])
        .with_key("ID")
    };
    let v = Vocabulary::paper();
    let term = |name: &str| Value::fuzzy(*v.get(name).expect("paper term"));

    let sales = StoredTable::create(disk, "EMP_SALES", schema());
    sales.load([
        person(1.0, "Dana", term("medium young"), term("medium high")),
        person(2.0, "Eli", term("about 35"), term("about 40K")),
        person(3.0, "Fay", term("about 50"), term("low")),
        person(4.0, "Gus", Value::number(28.0), term("about 60K")),
    ])?;
    catalog.register(sales);

    let research = StoredTable::create(disk, "EMP_RESEARCH", schema());
    research.load([
        person(11.0, "Hal", term("medium young"), term("medium high")),
        person(12.0, "Ida", term("middle age"), term("high")),
        person(13.0, "Joe", term("about 29"), term("about 40K")),
    ])?;
    catalog.register(research);
    Ok(catalog)
}

/// Builds the cities catalog of Query 5: `CITIES_REGION_A` and
/// `CITIES_REGION_B` with `NAME, POPULATION, AVE_HOME_INCOME`
/// (population in thousands, income in thousands of dollars).
pub fn cities(disk: &SimDisk) -> Result<Catalog> {
    let mut catalog = Catalog::with_paper_vocabulary();
    // Population terms specific to this scenario.
    {
        let vocab = catalog.vocabulary_mut();
        let tri = |a: f64, b: f64, c: f64| fuzzy_core::Trapezoid::triangular(a, b, c).unwrap();
        vocab.define("small city", tri(0.0, 50.0, 120.0));
        vocab.define("mid-size city", tri(80.0, 200.0, 350.0));
        vocab.define("large city", tri(300.0, 700.0, 1200.0));
    }
    let schema = || {
        Schema::of(&[
            ("NAME", AttrType::Text),
            ("POPULATION", AttrType::Number),
            ("AVE_HOME_INCOME", AttrType::Number),
        ])
        .with_key("NAME")
    };
    let v = catalog.vocabulary().clone();
    let term = |name: &str| Value::fuzzy(*v.get(name).expect("term"));

    let a = StoredTable::create(disk, "CITIES_REGION_A", schema());
    a.load([
        city("Avon", term("small city"), Value::number(72.0)),
        city("Arden", term("mid-size city"), term("about 60K")),
        city("Alta", Value::number(650.0), term("high")),
    ])?;
    catalog.register(a);

    let b = StoredTable::create(disk, "CITIES_REGION_B", schema());
    b.load([
        city("Bray", term("small city"), Value::number(55.0)),
        city("Brent", term("mid-size city"), term("about 40K")),
        city("Boone", term("large city"), term("medium high")),
    ])?;
    catalog.register(b);
    Ok(catalog)
}

fn city(name: &str, population: Value, income: Value) -> Tuple {
    Tuple::full(vec![Value::text(name), population, income])
}

/// Reads a table fully into memory (test convenience).
pub fn snapshot(catalog: &Catalog, disk: &SimDisk, table: &str) -> Result<Relation> {
    let pool = fuzzy_storage::BufferPool::new(disk, 8);
    catalog.table(table).unwrap_or_else(|| panic!("table {table} in catalog")).to_relation(&pool)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dating_catalog_has_paper_tuples() {
        let disk = SimDisk::with_default_page_size();
        let c = dating_service(&disk).unwrap();
        let f = snapshot(&c, &disk, "F").unwrap();
        let m = snapshot(&c, &disk, "M").unwrap();
        assert_eq!(f.len(), 4);
        assert_eq!(m.len(), 4);
        assert_eq!(f.tuples()[0].values[1], Value::text("Ann"));
        assert_eq!(m.tuples()[0].values[2], Value::number(24.0));
        assert!(c.vocabulary().get("medium young").is_some());
    }

    #[test]
    fn employees_and_cities_catalogs_load() {
        let disk = SimDisk::with_default_page_size();
        let e = employees(&disk).unwrap();
        assert_eq!(snapshot(&e, &disk, "EMP_SALES").unwrap().len(), 4);
        assert_eq!(snapshot(&e, &disk, "EMP_RESEARCH").unwrap().len(), 3);
        let c = cities(&disk).unwrap();
        assert_eq!(snapshot(&c, &disk, "CITIES_REGION_A").unwrap().len(), 3);
        assert!(c.vocabulary().get("large city").is_some());
    }
}
