//! Fuzzy tuples and their on-disk codec.
//!
//! A tuple pairs attribute values with its membership degree `μ_R(r)` (the
//! `D` attribute of Section 2.2). The binary codec makes the storage-size
//! asymmetry between crisp and ill-known data concrete: a crisp number costs
//! 9 payload bytes (tag + f64), an ill-known value 33 (tag + 4 breakpoints) —
//! the paper's motivation for why fuzzy data increases I/O cost.

use fuzzy_core::{Degree, Trapezoid, Value};
use fuzzy_storage::codec::{ByteReader, ByteWriter};
use fuzzy_storage::{Result, StorageError};
use std::fmt;

const TAG_NULL: u8 = 0;
const TAG_TEXT: u8 = 1;
const TAG_NUMBER: u8 = 2;
const TAG_FUZZY: u8 = 3;

/// A fuzzy tuple: values plus a membership degree in `(0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Tuple {
    /// Attribute values, in schema order.
    pub values: Vec<Value>,
    /// The membership degree `μ_R(r)` of the tuple in its relation.
    pub degree: Degree,
}

impl Tuple {
    /// Creates a tuple with the given degree.
    pub fn new(values: Vec<Value>, degree: Degree) -> Tuple {
        Tuple { values, degree }
    }

    /// Creates a full member (degree 1).
    pub fn full(values: Vec<Value>) -> Tuple {
        Tuple { values, degree: Degree::ONE }
    }

    /// The value at attribute position `idx`.
    pub fn value(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Serializes the tuple, optionally padding the record to at least
    /// `min_bytes` (the experiments control tuple size this way, exactly as
    /// the paper's generator fixes 128-byte to 2 KB tuples).
    pub fn encode(&self, min_bytes: usize) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(min_bytes.max(16));
        w.put_f64(self.degree.value());
        w.put_u16(self.values.len() as u16);
        for v in &self.values {
            match v {
                Value::Null => w.put_u8(TAG_NULL),
                Value::Text(s) => {
                    w.put_u8(TAG_TEXT);
                    w.put_bytes(s.as_bytes());
                }
                Value::Number(n) => {
                    w.put_u8(TAG_NUMBER);
                    w.put_f64(*n);
                }
                Value::Fuzzy(t) => {
                    w.put_u8(TAG_FUZZY);
                    let (a, b, c, d) = t.breakpoints();
                    w.put_f64(a);
                    w.put_f64(b);
                    w.put_f64(c);
                    w.put_f64(d);
                }
            }
        }
        let mut bytes = w.into_bytes();
        if bytes.len() < min_bytes {
            bytes.resize(min_bytes, 0);
        }
        bytes
    }

    /// Deserializes a tuple (ignoring any padding after the encoded values).
    pub fn decode(bytes: &[u8]) -> Result<Tuple> {
        let mut r = ByteReader::new(bytes);
        let degree = Degree::new(r.get_f64()?)
            .map_err(|e| StorageError::Corrupt(format!("bad degree: {e}")))?;
        let n = r.get_u16()? as usize;
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            let v = match r.get_u8()? {
                TAG_NULL => Value::Null,
                TAG_TEXT => {
                    let raw = r.get_bytes()?;
                    let s = std::str::from_utf8(raw)
                        .map_err(|e| StorageError::Corrupt(format!("bad utf-8 text: {e}")))?;
                    Value::text(s)
                }
                TAG_NUMBER => Value::number(r.get_f64()?),
                TAG_FUZZY => {
                    let a = r.get_f64()?;
                    let b = r.get_f64()?;
                    let c = r.get_f64()?;
                    let d = r.get_f64()?;
                    let t = Trapezoid::new(a, b, c, d)
                        .map_err(|e| StorageError::Corrupt(format!("bad trapezoid: {e}")))?;
                    Value::fuzzy(t)
                }
                tag => return Err(StorageError::Corrupt(format!("unknown value tag {tag}"))),
            };
            values.push(v);
        }
        Ok(Tuple { values, degree })
    }

    /// Decodes only the degree and the value at position `idx` — the hot path
    /// of external sorting, which compares one attribute per record.
    pub fn decode_value_at(bytes: &[u8], idx: usize) -> Result<Value> {
        let mut r = ByteReader::new(bytes);
        let _degree = r.get_f64()?;
        let n = r.get_u16()? as usize;
        if idx >= n {
            return Err(StorageError::Corrupt(format!("attribute {idx} of {n}")));
        }
        for i in 0..=idx {
            let tag = r.get_u8()?;
            let wanted = i == idx;
            match tag {
                TAG_NULL => {
                    if wanted {
                        return Ok(Value::Null);
                    }
                }
                TAG_TEXT => {
                    let raw = r.get_bytes()?;
                    if wanted {
                        let s = std::str::from_utf8(raw)
                            .map_err(|e| StorageError::Corrupt(format!("bad utf-8 text: {e}")))?;
                        return Ok(Value::text(s));
                    }
                }
                TAG_NUMBER => {
                    let v = r.get_f64()?;
                    if wanted {
                        return Ok(Value::number(v));
                    }
                }
                TAG_FUZZY => {
                    let a = r.get_f64()?;
                    let b = r.get_f64()?;
                    let c = r.get_f64()?;
                    let d = r.get_f64()?;
                    if wanted {
                        let t = Trapezoid::new(a, b, c, d)
                            .map_err(|e| StorageError::Corrupt(format!("bad trapezoid: {e}")))?;
                        return Ok(Value::fuzzy(t));
                    }
                }
                tag => return Err(StorageError::Corrupt(format!("unknown value tag {tag}"))),
            }
        }
        unreachable!("loop returns at i == idx")
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, " | D={})", self.degree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tuple {
        Tuple::new(
            vec![
                Value::text("Ann"),
                Value::number(24.0),
                Value::fuzzy(Trapezoid::new(20.0, 25.0, 30.0, 35.0).unwrap()),
                Value::Null,
            ],
            Degree::new(0.8).unwrap(),
        )
    }

    #[test]
    fn roundtrip() {
        let t = sample();
        let bytes = t.encode(0);
        let back = Tuple::decode(&bytes).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn padding_controls_record_size() {
        let t = sample();
        let bytes = t.encode(128);
        assert_eq!(bytes.len(), 128);
        let back = Tuple::decode(&bytes).unwrap();
        assert_eq!(back, t);
        // Unpadded record is smaller.
        assert!(t.encode(0).len() < 128);
    }

    #[test]
    fn crisp_vs_fuzzy_size_asymmetry() {
        let crisp = Tuple::full(vec![Value::number(42.0)]);
        let fuzzy =
            Tuple::full(vec![Value::fuzzy(Trapezoid::new(40.0, 41.0, 43.0, 44.0).unwrap())]);
        assert!(fuzzy.encode(0).len() > crisp.encode(0).len() + 20);
    }

    #[test]
    fn decode_value_at_skips_correctly() {
        let t = sample();
        let bytes = t.encode(64);
        for (i, expect) in t.values.iter().enumerate() {
            assert_eq!(&Tuple::decode_value_at(&bytes, i).unwrap(), expect);
        }
        assert!(Tuple::decode_value_at(&bytes, 4).is_err());
    }

    #[test]
    fn corrupt_records_rejected() {
        assert!(Tuple::decode(&[]).is_err());
        let mut bytes = sample().encode(0);
        bytes[10] = 99; // clobber a tag
        assert!(Tuple::decode(&bytes).is_err() || Tuple::decode(&bytes).is_ok());
        // A degree outside [0,1] is rejected.
        let mut w = ByteWriter::new();
        w.put_f64(1.5);
        w.put_u16(0);
        assert!(Tuple::decode(&w.into_bytes()).is_err());
    }

    #[test]
    fn display() {
        let t = sample();
        let s = t.to_string();
        assert!(s.contains("Ann"));
        assert!(s.contains("D=0.8"));
    }
}
