//! # fuzzy-rel
//!
//! The fuzzy relational model: a relation is a *fuzzy set of fuzzy tuples*
//! (Section 2.2 of the paper). Every tuple carries a membership degree, and
//! attribute values may be ill-known. This crate provides schemas, tuples
//! with a compact binary codec, in-memory relations with the fuzzy-OR
//! duplicate-elimination the answer semantics require, stored tables over the
//! paged storage substrate, and a catalog binding names and vocabulary.
//!
//! ## Example
//!
//! ```
//! use fuzzy_rel::{Schema, AttrType, Relation, Tuple};
//! use fuzzy_core::{Degree, Value};
//!
//! let schema = Schema::of(&[("NAME", AttrType::Text)]);
//! let mut answer = Relation::empty(schema);
//! answer.insert_dedup_max(Tuple::new(vec![Value::text("Ann")], Degree::new(0.3)?));
//! answer.insert_dedup_max(Tuple::new(vec![Value::text("Ann")], Degree::new(0.7)?));
//! assert_eq!(answer.len(), 1);
//! assert_eq!(answer.tuples()[0].degree.value(), 0.7); // fuzzy OR keeps the max
//! # Ok::<(), fuzzy_core::FuzzyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod manifest;
pub mod relation;
pub mod schema;
pub mod table;
pub mod tuple;

pub use catalog::Catalog;
pub use relation::Relation;
pub use schema::{AttrType, Attribute, Schema};
pub use table::StoredTable;
pub use tuple::Tuple;
