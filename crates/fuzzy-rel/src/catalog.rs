//! The catalog: named tables plus the linguistic vocabulary.

use crate::table::StoredTable;
use fuzzy_core::Vocabulary;
use std::collections::HashMap;

/// The database catalog. Table names are case-insensitive.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: HashMap<String, StoredTable>,
    vocab: Vocabulary,
}

impl Catalog {
    /// An empty catalog with an empty vocabulary.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// A catalog using the paper's calibrated vocabulary.
    pub fn with_paper_vocabulary() -> Catalog {
        Catalog { tables: HashMap::new(), vocab: Vocabulary::paper() }
    }

    /// Registers (or replaces) a table under its own name.
    pub fn register(&mut self, table: StoredTable) {
        self.tables.insert(table.name().to_lowercase(), table);
    }

    /// Looks a table up by name.
    pub fn table(&self, name: &str) -> Option<&StoredTable> {
        self.tables.get(&name.to_lowercase())
    }

    /// Names of all registered tables (unsorted).
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.values().map(|t| t.name())
    }

    /// The vocabulary (shared by all queries).
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Mutable access to the vocabulary, for defining terms.
    pub fn vocabulary_mut(&mut self) -> &mut Vocabulary {
        &mut self.vocab
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrType, Schema};
    use fuzzy_core::Trapezoid;
    use fuzzy_storage::SimDisk;

    #[test]
    fn register_and_lookup() {
        let disk = SimDisk::with_default_page_size();
        let mut c = Catalog::new();
        let t = StoredTable::create(&disk, "EMP", Schema::of(&[("ID", AttrType::Number)]));
        c.register(t);
        assert!(c.table("emp").is_some());
        assert!(c.table("Emp").is_some());
        assert!(c.table("dept").is_none());
        assert_eq!(c.table_names().collect::<Vec<_>>(), vec!["EMP"]);
    }

    #[test]
    fn vocabulary_access() {
        let mut c = Catalog::with_paper_vocabulary();
        assert!(c.vocabulary().get("medium young").is_some());
        c.vocabulary_mut().define("tall", Trapezoid::new(170.0, 180.0, 200.0, 210.0).unwrap());
        assert!(c.vocabulary().get("TALL").is_some());
    }
}
