//! The catalog: named tables plus the linguistic vocabulary.

use crate::table::StoredTable;
use fuzzy_core::Vocabulary;
use std::collections::HashMap;

/// The database catalog. Table names are case-insensitive.
///
/// The catalog carries a monotonically increasing **version** counter: every
/// structural mutation (registering a table, touching the vocabulary, or an
/// explicit [`Catalog::bump_version`] after DML) increments it. Plan caches
/// key cached plans on this version, so any DDL/DML conservatively
/// invalidates every plan built against an older catalog snapshot.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: HashMap<String, StoredTable>,
    vocab: Vocabulary,
    version: u64,
}

impl Catalog {
    /// An empty catalog with an empty vocabulary.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// A catalog using the paper's calibrated vocabulary.
    pub fn with_paper_vocabulary() -> Catalog {
        Catalog { tables: HashMap::new(), vocab: Vocabulary::paper(), version: 0 }
    }

    /// The catalog version: bumped on every registration, vocabulary access,
    /// or explicit [`Catalog::bump_version`]. Cached plans built against an
    /// older version are stale.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Explicitly advances the version (DML that mutates table *contents*
    /// without re-registering the table, e.g. appends).
    pub fn bump_version(&mut self) {
        self.version += 1;
    }

    /// Registers (or replaces) a table under its own name.
    pub fn register(&mut self, table: StoredTable) {
        self.tables.insert(table.name().to_lowercase(), table);
        self.version += 1;
    }

    /// Looks a table up by name.
    pub fn table(&self, name: &str) -> Option<&StoredTable> {
        self.tables.get(&name.to_lowercase())
    }

    /// Names of all registered tables (unsorted).
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.values().map(|t| t.name())
    }

    /// The vocabulary (shared by all queries).
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Mutable access to the vocabulary, for defining terms. Conservatively
    /// bumps the catalog version (a redefined term changes what cached plans
    /// would resolve).
    pub fn vocabulary_mut(&mut self) -> &mut Vocabulary {
        self.version += 1;
        &mut self.vocab
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrType, Schema};
    use fuzzy_core::Trapezoid;
    use fuzzy_storage::SimDisk;

    #[test]
    fn register_and_lookup() {
        let disk = SimDisk::with_default_page_size();
        let mut c = Catalog::new();
        let t = StoredTable::create(&disk, "EMP", Schema::of(&[("ID", AttrType::Number)]));
        c.register(t);
        assert!(c.table("emp").is_some());
        assert!(c.table("Emp").is_some());
        assert!(c.table("dept").is_none());
        assert_eq!(c.table_names().collect::<Vec<_>>(), vec!["EMP"]);
    }

    #[test]
    fn version_bumps_on_every_mutation() {
        let disk = SimDisk::with_default_page_size();
        let mut c = Catalog::new();
        assert_eq!(c.version(), 0);
        c.register(StoredTable::create(&disk, "T", Schema::of(&[("X", AttrType::Number)])));
        assert_eq!(c.version(), 1);
        c.vocabulary_mut().define("tall", Trapezoid::new(1.0, 2.0, 3.0, 4.0).unwrap());
        assert_eq!(c.version(), 2);
        c.bump_version();
        assert_eq!(c.version(), 3);
        // Clones carry the version of their source snapshot.
        assert_eq!(c.clone().version(), 3);
        // Reads do not bump.
        let _ = c.table("t");
        let _ = c.vocabulary();
        assert_eq!(c.version(), 3);
    }

    #[test]
    fn vocabulary_access() {
        let mut c = Catalog::with_paper_vocabulary();
        assert!(c.vocabulary().get("medium young").is_some());
        c.vocabulary_mut().define("tall", Trapezoid::new(170.0, 180.0, 200.0, 210.0).unwrap());
        assert!(c.vocabulary().get("TALL").is_some());
    }
}
