//! The catalog manifest: durable metadata for a persisted database.
//!
//! Table data lives in the page file of a file-backed [`SimDisk`]; the
//! manifest records everything needed to rebuild the catalog from those
//! pages: table names, schemas (attribute names, types, key), record-padding
//! floors, per-table page-id lists, and the linguistic vocabulary. The format
//! is a compact hand-rolled binary (no serde — DESIGN.md documents the
//! dependency policy), versioned with a magic header.

use crate::catalog::Catalog;
use crate::schema::{AttrType, Attribute, Schema};
use crate::table::StoredTable;
use fuzzy_core::Trapezoid;
use fuzzy_storage::codec::{ByteReader, ByteWriter};
use fuzzy_storage::{HeapFile, Result, SimDisk, StorageError};

const MAGIC: &[u8; 8] = b"FUZZYDB1";

/// Serializes a catalog (tables on `disk` plus vocabulary) to manifest bytes.
pub fn encode(catalog: &Catalog) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_raw(MAGIC);
    // Vocabulary.
    let terms: Vec<(&str, &Trapezoid)> = catalog.vocabulary().iter().collect();
    w.put_u32(terms.len() as u32);
    for (name, shape) in terms {
        w.put_bytes(name.as_bytes());
        let (a, b, c, d) = shape.breakpoints();
        for v in [a, b, c, d] {
            w.put_f64(v);
        }
    }
    // Tables.
    let mut names: Vec<&str> = catalog.table_names().collect();
    names.sort_unstable();
    w.put_u32(names.len() as u32);
    for name in names {
        let t = catalog.table(name).expect("listed table");
        w.put_bytes(t.name().as_bytes());
        encode_schema(&mut w, t.schema());
        w.put_u32(t.min_record_bytes() as u32);
        w.put_u64(t.num_tuples());
        let pages = t.file().page_ids();
        w.put_u32(pages.len() as u32);
        for p in pages {
            w.put_u64(p);
        }
    }
    w.into_bytes()
}

fn encode_schema(w: &mut ByteWriter, schema: &Schema) {
    w.put_u16(schema.len() as u16);
    for a in schema.attributes() {
        w.put_bytes(a.name.as_bytes());
        w.put_u8(match a.ty {
            AttrType::Text => 0,
            AttrType::Number => 1,
        });
    }
    match schema.key() {
        Some(k) => {
            w.put_u8(1);
            w.put_u16(k as u16);
        }
        None => w.put_u8(0),
    }
}

/// Rebuilds a catalog from manifest bytes; tables reference pages of `disk`.
pub fn decode(bytes: &[u8], disk: &SimDisk) -> Result<Catalog> {
    let mut r = ByteReader::new(bytes);
    let mut magic = [0u8; 8];
    for m in magic.iter_mut() {
        *m = r.get_u8()?;
    }
    if &magic != MAGIC {
        return Err(StorageError::Corrupt("bad manifest magic".into()));
    }
    let mut catalog = Catalog::new();
    let n_terms = r.get_u32()?;
    for _ in 0..n_terms {
        let name = read_string(&mut r)?;
        let a = r.get_f64()?;
        let b = r.get_f64()?;
        let c = r.get_f64()?;
        let d = r.get_f64()?;
        let shape = Trapezoid::new(a, b, c, d)
            .map_err(|e| StorageError::Corrupt(format!("bad vocabulary term: {e}")))?;
        catalog.vocabulary_mut().define(&name, shape);
    }
    let n_tables = r.get_u32()?;
    for _ in 0..n_tables {
        let name = read_string(&mut r)?;
        let schema = decode_schema(&mut r)?;
        let min_record_bytes = r.get_u32()? as usize;
        let record_count = r.get_u64()?;
        let n_pages = r.get_u32()?;
        let mut pages = Vec::with_capacity(n_pages as usize);
        for _ in 0..n_pages {
            let p = r.get_u64()?;
            if p >= disk.num_pages() {
                return Err(StorageError::Corrupt(format!(
                    "manifest references page {p} beyond the disk"
                )));
            }
            pages.push(p);
        }
        let file = HeapFile::from_parts(disk, pages, record_count);
        catalog.register(StoredTable::from_parts(name, schema, file, min_record_bytes));
    }
    Ok(catalog)
}

fn decode_schema(r: &mut ByteReader<'_>) -> Result<Schema> {
    let n = r.get_u16()? as usize;
    let mut attrs = Vec::with_capacity(n);
    for _ in 0..n {
        let name = read_string(r)?;
        let ty = match r.get_u8()? {
            0 => AttrType::Text,
            1 => AttrType::Number,
            other => return Err(StorageError::Corrupt(format!("bad attr type tag {other}"))),
        };
        attrs.push(Attribute::new(name, ty));
    }
    let mut schema = Schema::new(attrs);
    if r.get_u8()? == 1 {
        let k = r.get_u16()? as usize;
        if k >= schema.len() {
            return Err(StorageError::Corrupt(format!("key index {k} out of range")));
        }
        let key_name = schema.attr(k).name.clone();
        schema = schema.with_key(&key_name);
    }
    Ok(schema)
}

fn read_string(r: &mut ByteReader<'_>) -> Result<String> {
    let raw = r.get_bytes()?;
    String::from_utf8(raw.to_vec())
        .map_err(|e| StorageError::Corrupt(format!("bad utf-8 in manifest: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;
    use fuzzy_core::{Degree, Value};
    use fuzzy_storage::BufferPool;

    #[test]
    fn roundtrip_catalog() {
        let disk = SimDisk::with_default_page_size();
        let mut catalog = Catalog::new();
        catalog.vocabulary_mut().define("warm", Trapezoid::triangular(15.0, 22.0, 30.0).unwrap());
        let t = StoredTable::create_padded(
            &disk,
            "PEOPLE",
            Schema::of(&[("ID", AttrType::Number), ("NAME", AttrType::Text)]).with_key("ID"),
            64,
        );
        t.load((0..10).map(|i| {
            Tuple::new(
                vec![Value::number(i as f64), Value::text(format!("p{i}"))],
                Degree::new(0.5 + 0.05 * i as f64).unwrap(),
            )
        }))
        .unwrap();
        catalog.register(t);

        let bytes = encode(&catalog);
        let back = decode(&bytes, &disk).unwrap();
        assert!(back.vocabulary().get("warm").is_some());
        let t2 = back.table("people").unwrap();
        assert_eq!(t2.num_tuples(), 10);
        assert_eq!(t2.min_record_bytes(), 64);
        assert_eq!(t2.schema().key(), Some(0));
        let pool = BufferPool::new(&disk, 4);
        let rel = t2.to_relation(&pool).unwrap();
        assert_eq!(rel.tuples()[3].values[1], Value::text("p3"));
        assert!((rel.tuples()[3].degree.value() - 0.65).abs() < 1e-12);
    }

    #[test]
    fn corrupt_manifests_rejected() {
        let disk = SimDisk::with_default_page_size();
        assert!(decode(b"NOTMAGIC", &disk).is_err());
        assert!(decode(b"FU", &disk).is_err());
        // A manifest referencing pages beyond the disk.
        let mut catalog = Catalog::new();
        let other = SimDisk::with_default_page_size();
        let t = StoredTable::create(&other, "X", Schema::of(&[("A", AttrType::Number)]));
        t.load([Tuple::full(vec![Value::number(1.0)])]).unwrap();
        catalog.register(t);
        let bytes = encode(&catalog);
        assert!(decode(&bytes, &disk).is_err(), "page ids must exist on the target disk");
    }
}
