//! Stored tables: fuzzy relations persisted in heap files.
//!
//! A stored table binds a schema to a heap file of encoded tuples on a
//! simulated disk. Scans stream tuples through a caller-supplied buffer pool
//! so every page access is charged; this is the substrate the two join
//! algorithms of the paper compete on.

use crate::relation::Relation;
use crate::schema::Schema;
use crate::tuple::Tuple;
use fuzzy_storage::{BufferPool, HeapFile, Result, SimDisk};

/// A fuzzy relation stored in a heap file.
#[derive(Debug, Clone)]
pub struct StoredTable {
    name: String,
    schema: Schema,
    file: HeapFile,
    /// Minimum record size in bytes (0 = natural size). Kept so derived
    /// files (sorted copies) use the same record footprint.
    min_record_bytes: usize,
}

impl StoredTable {
    /// Creates an empty table on `disk`.
    pub fn create(disk: &SimDisk, name: impl Into<String>, schema: Schema) -> StoredTable {
        StoredTable { name: name.into(), schema, file: HeapFile::create(disk), min_record_bytes: 0 }
    }

    /// Creates a table whose records are padded to at least `min_record_bytes`
    /// (the experiments control tuple size this way).
    pub fn create_padded(
        disk: &SimDisk,
        name: impl Into<String>,
        schema: Schema,
        min_record_bytes: usize,
    ) -> StoredTable {
        StoredTable { name: name.into(), schema, file: HeapFile::create(disk), min_record_bytes }
    }

    /// Reassembles a table from persisted parts (manifest decoding).
    pub fn from_parts(
        name: impl Into<String>,
        schema: Schema,
        file: HeapFile,
        min_record_bytes: usize,
    ) -> StoredTable {
        StoredTable { name: name.into(), schema, file, min_record_bytes }
    }

    /// Bulk-loads tuples, dropping non-members (degree 0).
    pub fn load<I: IntoIterator<Item = Tuple>>(&self, tuples: I) -> Result<()> {
        let mut w = self.file.bulk_writer();
        for t in tuples {
            if t.degree.is_positive() {
                w.append(&t.encode(self.min_record_bytes))?;
            }
        }
        w.finish()
    }

    /// Materializes an in-memory relation into a stored table.
    pub fn from_relation(
        disk: &SimDisk,
        name: impl Into<String>,
        rel: &Relation,
    ) -> Result<StoredTable> {
        let t = StoredTable::create(disk, name, rel.schema().clone());
        t.load(rel.tuples().iter().cloned())?;
        Ok(t)
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The backing heap file.
    pub fn file(&self) -> &HeapFile {
        &self.file
    }

    /// The record padding floor.
    pub fn min_record_bytes(&self) -> usize {
        self.min_record_bytes
    }

    /// Number of stored tuples.
    pub fn num_tuples(&self) -> u64 {
        self.file.num_records()
    }

    /// Number of pages.
    pub fn num_pages(&self) -> u64 {
        self.file.num_pages()
    }

    /// A table with the same schema over a different (e.g. sorted) file.
    pub fn with_file(&self, name: impl Into<String>, file: HeapFile) -> StoredTable {
        StoredTable {
            name: name.into(),
            schema: self.schema.clone(),
            file,
            min_record_bytes: self.min_record_bytes,
        }
    }

    /// Streams all tuples through `pool`.
    pub fn scan<'a>(&'a self, pool: &'a BufferPool) -> impl Iterator<Item = Result<Tuple>> + 'a {
        pool.scan(&self.file).map(|r| r.and_then(|bytes| Tuple::decode(&bytes)))
    }

    /// Reads the whole table into an in-memory relation (test/debug helper;
    /// query operators stream instead).
    pub fn to_relation(&self, pool: &BufferPool) -> Result<Relation> {
        let mut rel = Relation::empty(self.schema.clone());
        for t in self.scan(pool) {
            rel.insert(t?);
        }
        Ok(rel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrType;
    use fuzzy_core::{Degree, Value};

    fn schema() -> Schema {
        Schema::of(&[("ID", AttrType::Number), ("NAME", AttrType::Text)])
    }

    fn tup(id: f64, name: &str, d: f64) -> Tuple {
        Tuple::new(vec![Value::number(id), Value::text(name)], Degree::new(d).unwrap())
    }

    #[test]
    fn load_scan_roundtrip() {
        let disk = SimDisk::with_default_page_size();
        let t = StoredTable::create(&disk, "people", schema());
        t.load([tup(1.0, "Ann", 1.0), tup(2.0, "Bob", 0.5)]).unwrap();
        assert_eq!(t.num_tuples(), 2);
        let pool = BufferPool::new(&disk, 2);
        let rel = t.to_relation(&pool).unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.tuples()[1].values[1], Value::text("Bob"));
    }

    #[test]
    fn zero_degree_tuples_not_stored() {
        let disk = SimDisk::with_default_page_size();
        let t = StoredTable::create(&disk, "x", schema());
        t.load([tup(1.0, "gone", 0.0), tup(2.0, "kept", 0.1)]).unwrap();
        assert_eq!(t.num_tuples(), 1);
    }

    #[test]
    fn padding_inflates_pages() {
        let disk = SimDisk::with_default_page_size();
        let small = StoredTable::create(&disk, "s", schema());
        small.load((0..500).map(|i| tup(i as f64, "x", 1.0))).unwrap();
        let big = StoredTable::create_padded(&disk, "b", schema(), 1024);
        big.load((0..500).map(|i| tup(i as f64, "x", 1.0))).unwrap();
        assert!(big.num_pages() > small.num_pages() * 5);
        assert_eq!(big.min_record_bytes(), 1024);
    }

    #[test]
    fn from_relation_and_with_file() {
        let disk = SimDisk::with_default_page_size();
        let rel = Relation::from_tuples(schema(), [tup(1.0, "Ann", 0.9)]);
        let t = StoredTable::from_relation(&disk, "ppl", &rel).unwrap();
        assert_eq!(t.name(), "ppl");
        assert_eq!(t.num_tuples(), 1);
        let clone = t.with_file("ppl_sorted", t.file().clone());
        assert_eq!(clone.num_tuples(), 1);
        assert_eq!(clone.schema(), t.schema());
    }
}
