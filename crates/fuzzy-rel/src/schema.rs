//! Relation schemas.
//!
//! A fuzzy relation `R` with schema `A1, …, An` is a subset of
//! `P(A1) × … × P(An) × D` (Section 2.2): every attribute ranges over the
//! possibility distributions definable on its domain, and `D` is the
//! system-supplied membership-degree attribute. The schema records attribute
//! names and domains; the degree attribute is implicit and carried by every
//! tuple.

use std::fmt;

/// Domain of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrType {
    /// Crisp character strings (names, identifiers).
    Text,
    /// Numbers, which may be crisp or ill-known (possibility distributions).
    Number,
}

/// One attribute of a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// The attribute name (matched case-insensitively).
    pub name: String,
    /// The attribute domain.
    pub ty: AttrType,
}

impl Attribute {
    /// Creates an attribute.
    pub fn new(name: impl Into<String>, ty: AttrType) -> Attribute {
        Attribute { name: name.into(), ty }
    }
}

/// A relation schema: named attributes plus an optional designated key.
///
/// The key is required by the unnesting of `NOT IN` and `ALL` queries
/// (Sections 5 and 7), whose flat forms group by `R.K` where `R.K` is a key
/// of `R`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    attrs: Vec<Attribute>,
    key: Option<usize>,
}

impl Schema {
    /// Creates a schema from attributes; no key designated.
    pub fn new(attrs: Vec<Attribute>) -> Schema {
        Schema { attrs, key: None }
    }

    /// Builds a schema from `(name, type)` pairs.
    pub fn of(attrs: &[(&str, AttrType)]) -> Schema {
        Schema::new(attrs.iter().map(|(n, t)| Attribute::new(*n, *t)).collect())
    }

    /// Designates attribute `name` as the key. Panics if absent — schemas are
    /// built by the application, so a missing key is a programming error.
    pub fn with_key(mut self, name: &str) -> Schema {
        let idx =
            self.index_of(name).unwrap_or_else(|| panic!("key attribute {name:?} not in schema"));
        self.key = Some(idx);
        self
    }

    /// Attribute count (excluding the implicit degree attribute).
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True iff the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// The attributes in order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attrs
    }

    /// The attribute at `idx`.
    pub fn attr(&self, idx: usize) -> &Attribute {
        &self.attrs[idx]
    }

    /// Case-insensitive lookup of an attribute position.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.name.eq_ignore_ascii_case(name))
    }

    /// The designated key attribute index, if any.
    pub fn key(&self) -> Option<usize> {
        self.key
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {:?}", a.name, a.ty)?;
            if self.key == Some(i) {
                write!(f, " KEY")?;
            }
        }
        write!(f, ", D)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_is_case_insensitive() {
        let s = Schema::of(&[("NAME", AttrType::Text), ("AGE", AttrType::Number)]);
        assert_eq!(s.index_of("name"), Some(0));
        assert_eq!(s.index_of("Age"), Some(1));
        assert_eq!(s.index_of("income"), None);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn key_designation() {
        let s = Schema::of(&[("ID", AttrType::Number), ("NAME", AttrType::Text)]).with_key("id");
        assert_eq!(s.key(), Some(0));
        assert_eq!(s.attr(0).name, "ID");
    }

    #[test]
    #[should_panic(expected = "not in schema")]
    fn missing_key_panics() {
        let _ = Schema::of(&[("A", AttrType::Number)]).with_key("B");
    }

    #[test]
    fn display_marks_key_and_degree() {
        let s = Schema::of(&[("ID", AttrType::Number)]).with_key("ID");
        let d = s.to_string();
        assert!(d.contains("KEY"));
        assert!(d.ends_with("D)"));
    }
}
