//! In-memory fuzzy relations.
//!
//! A fuzzy relation is a fuzzy set of tuples. Query answers keep one copy of
//! each distinct tuple value with the *maximum* degree among its duplicates
//! (fuzzy OR — Section 2.2: "the highest membership degree of the identical
//! name pairs will be chosen for the answer"), and a `WITH D > z` clause
//! thresholds membership.

use crate::schema::Schema;
use crate::tuple::Tuple;
use fuzzy_core::{Degree, Value};
use std::collections::HashMap;
use std::fmt;

/// An in-memory fuzzy relation: a schema plus a fuzzy set of tuples.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    schema: Schema,
    tuples: Vec<Tuple>,
}

impl Relation {
    /// Creates an empty relation with the given schema.
    pub fn empty(schema: Schema) -> Relation {
        Relation { schema, tuples: Vec::new() }
    }

    /// Creates a relation from tuples, dropping non-members (degree 0).
    pub fn from_tuples(schema: Schema, tuples: impl IntoIterator<Item = Tuple>) -> Relation {
        let mut r = Relation::empty(schema);
        for t in tuples {
            r.insert(t);
        }
        r
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The tuples, in insertion order.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Number of member tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True iff the relation has no member tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Inserts a tuple if it is a member (degree > 0). Duplicates are kept;
    /// use [`Relation::dedup_max`] or [`Relation::insert_dedup_max`] for the
    /// fuzzy-OR answer semantics.
    pub fn insert(&mut self, t: Tuple) {
        debug_assert_eq!(t.values.len(), self.schema.len(), "tuple arity mismatch");
        if t.degree.is_positive() {
            self.tuples.push(t);
        }
    }

    /// Inserts with fuzzy-OR duplicate elimination: if a tuple with identical
    /// values exists, keeps the higher degree.
    pub fn insert_dedup_max(&mut self, t: Tuple) {
        if !t.degree.is_positive() {
            return;
        }
        if let Some(existing) = self.tuples.iter_mut().find(|e| e.values == t.values) {
            existing.degree = existing.degree.or(t.degree);
        } else {
            self.tuples.push(t);
        }
    }

    /// Builds a relation from `(values, degree)` rows with fuzzy-OR duplicate
    /// elimination, preserving first-occurrence order. This is the hash-based
    /// bulk equivalent of [`Relation::insert_dedup_max`] for large answers.
    pub fn from_dedup_rows<I>(schema: Schema, rows: I) -> Relation
    where
        I: IntoIterator<Item = (Vec<Value>, Degree)>,
    {
        let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
        let mut tuples: Vec<Tuple> = Vec::new();
        for (values, degree) in rows {
            if !degree.is_positive() {
                continue;
            }
            match index.get(&values) {
                Some(&i) => tuples[i].degree = tuples[i].degree.or(degree),
                None => {
                    index.insert(values.clone(), tuples.len());
                    tuples.push(Tuple::new(values, degree));
                }
            }
        }
        Relation { schema, tuples }
    }

    /// Returns a copy with duplicates merged by maximum degree (fuzzy OR),
    /// preserving first-occurrence order.
    pub fn dedup_max(&self) -> Relation {
        let mut index: HashMap<&[Value], usize> = HashMap::with_capacity(self.tuples.len());
        let mut out: Vec<Tuple> = Vec::new();
        for t in &self.tuples {
            match index.get(t.values.as_slice()) {
                Some(&i) => out[i].degree = out[i].degree.or(t.degree),
                None => {
                    out.push(t.clone());
                    // Safety of the borrow: we only read keys from `self`,
                    // which outlives this function's locals.
                    index.insert(t.values.as_slice(), out.len() - 1);
                }
            }
        }
        Relation { schema: self.schema.clone(), tuples: out }
    }

    /// Returns a copy with only tuples meeting `WITH D > z` (or `>= z` when
    /// `strict` is false).
    pub fn with_threshold(&self, z: Degree, strict: bool) -> Relation {
        Relation {
            schema: self.schema.clone(),
            tuples: self.tuples.iter().filter(|t| t.degree.meets(z, strict)).cloned().collect(),
        }
    }

    /// Projects onto the attributes at `indices` (schema follows), keeping
    /// degrees; duplicates are *not* merged (callers decide when to dedup).
    pub fn project(&self, indices: &[usize]) -> Relation {
        let schema = Schema::new(indices.iter().map(|&i| self.schema.attr(i).clone()).collect());
        let tuples = self
            .tuples
            .iter()
            .map(|t| Tuple::new(indices.iter().map(|&i| t.values[i].clone()).collect(), t.degree))
            .collect();
        Relation { schema, tuples }
    }

    /// Looks up the degree of a tuple with exactly these values (after
    /// dedup-max this is the fuzzy membership function of the relation).
    pub fn degree_of(&self, values: &[Value]) -> Degree {
        self.tuples
            .iter()
            .filter(|t| t.values.as_slice() == values)
            .map(|t| t.degree)
            .fold(Degree::ZERO, Degree::or)
    }

    /// Returns a copy ordered by membership degree (stable), ascending or
    /// descending — `ORDER BY D [DESC]`, the possibilistic ranking of
    /// answers.
    pub fn ordered_by_degree(&self, descending: bool) -> Relation {
        let mut tuples = self.tuples.clone();
        tuples.sort_by(|a, b| {
            let c = a.degree.cmp(&b.degree);
            if descending {
                c.reverse()
            } else {
                c
            }
        });
        Relation { schema: self.schema.clone(), tuples }
    }

    /// Returns a copy ordered by the value at `idx` under the interval order
    /// `⪯` (stable) — `ORDER BY <column> [DESC]`.
    pub fn ordered_by_column(&self, idx: usize, descending: bool) -> Relation {
        let mut tuples = self.tuples.clone();
        tuples.sort_by(|a, b| {
            let c = fuzzy_core::interval_order::cmp_values(&a.values[idx], &b.values[idx]);
            if descending {
                c.reverse()
            } else {
                c
            }
        });
        Relation { schema: self.schema.clone(), tuples }
    }

    /// Returns a copy keeping only the first `n` tuples — `LIMIT n`.
    pub fn limited(&self, n: usize) -> Relation {
        Relation {
            schema: self.schema.clone(),
            tuples: self.tuples.iter().take(n).cloned().collect(),
        }
    }

    /// Sorts tuples for canonical comparison in tests: by value display then
    /// degree. Not a semantic operation.
    pub fn canonicalized(&self) -> Relation {
        let mut tuples = self.tuples.clone();
        tuples.sort_by(|a, b| {
            let ka = format!("{a}");
            let kb = format!("{b}");
            ka.cmp(&kb)
        });
        Relation { schema: self.schema.clone(), tuples }
    }
}

impl fmt::Display for Relation {
    /// Renders a column-aligned table ending with the degree column `D`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Compute column widths over header and values.
        let mut widths: Vec<usize> =
            self.schema.attributes().iter().map(|a| a.name.len()).collect();
        let rows: Vec<Vec<String>> =
            self.tuples.iter().map(|t| t.values.iter().map(|v| v.to_string()).collect()).collect();
        for row in &rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        for (i, a) in self.schema.attributes().iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{:<width$}", a.name, width = widths[i])?;
        }
        writeln!(f, " | D")?;
        for (row, t) in rows.iter().zip(&self.tuples) {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, " | ")?;
                }
                write!(f, "{:<width$}", cell, width = widths[i])?;
            }
            writeln!(f, " | {:.3}", t.degree.value())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrType;

    fn name_schema() -> Schema {
        Schema::of(&[("NAME", AttrType::Text)])
    }

    fn t(name: &str, d: f64) -> Tuple {
        Tuple::new(vec![Value::text(name)], Degree::new(d).unwrap())
    }

    #[test]
    fn zero_degree_tuples_are_not_members() {
        let mut r = Relation::empty(name_schema());
        r.insert(t("Ann", 0.0));
        assert!(r.is_empty());
        r.insert(t("Ann", 0.4));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn paper_example_41_answer_dedup() {
        // T2 = {Ann 0.3, Ann 0.7, Betty 0.7} -> answer {Ann 0.7, Betty 0.7}.
        let r =
            Relation::from_tuples(name_schema(), [t("Ann", 0.3), t("Ann", 0.7), t("Betty", 0.7)]);
        let a = r.dedup_max();
        assert_eq!(a.len(), 2);
        assert_eq!(a.degree_of(&[Value::text("Ann")]).value(), 0.7);
        assert_eq!(a.degree_of(&[Value::text("Betty")]).value(), 0.7);
        assert_eq!(a.degree_of(&[Value::text("Cathy")]), Degree::ZERO);
    }

    #[test]
    fn insert_dedup_max_is_incremental_fuzzy_or() {
        let mut r = Relation::empty(name_schema());
        r.insert_dedup_max(t("Ann", 0.3));
        r.insert_dedup_max(t("Ann", 0.7));
        r.insert_dedup_max(t("Ann", 0.5));
        r.insert_dedup_max(t("Bo", 0.0));
        assert_eq!(r.len(), 1);
        assert_eq!(r.tuples()[0].degree.value(), 0.7);
    }

    #[test]
    fn thresholds() {
        let r = Relation::from_tuples(name_schema(), [t("A", 0.2), t("B", 0.5), t("C", 0.9)]);
        let strict = r.with_threshold(Degree::new(0.5).unwrap(), true);
        assert_eq!(strict.len(), 1);
        let lax = r.with_threshold(Degree::new(0.5).unwrap(), false);
        assert_eq!(lax.len(), 2);
    }

    #[test]
    fn projection() {
        let s = Schema::of(&[("NAME", AttrType::Text), ("AGE", AttrType::Number)]);
        let r = Relation::from_tuples(
            s,
            [Tuple::new(vec![Value::text("Ann"), Value::number(24.0)], Degree::ONE)],
        );
        let p = r.project(&[1]);
        assert_eq!(p.schema().len(), 1);
        assert_eq!(p.schema().attr(0).name, "AGE");
        assert_eq!(p.tuples()[0].values, vec![Value::number(24.0)]);
    }

    #[test]
    fn display_renders_aligned_table() {
        let r = Relation::from_tuples(name_schema(), [t("Ann", 0.75), t("Bartholomew", 1.0)]);
        let s = r.to_string();
        // Header and cells are padded to the widest value in each column.
        assert!(s.contains("NAME        | D"), "{s}");
        assert!(s.contains("Ann         | 0.750"), "{s}");
        assert!(s.contains("Bartholomew | 1.000"), "{s}");
    }

    #[test]
    fn canonicalized_orders_rows() {
        let r = Relation::from_tuples(name_schema(), [t("B", 0.5), t("A", 0.5)]);
        let c = r.canonicalized();
        assert_eq!(c.tuples()[0].values, vec![Value::text("A")]);
    }
}

#[cfg(test)]
mod ordering_tests {
    use super::*;
    use crate::schema::AttrType;
    use fuzzy_core::Trapezoid;

    fn rel() -> Relation {
        let s = Schema::of(&[("X", AttrType::Number)]);
        Relation::from_tuples(
            s,
            [
                Tuple::new(vec![Value::number(5.0)], Degree::new(0.4).unwrap()),
                Tuple::new(
                    vec![Value::fuzzy(Trapezoid::triangular(0.0, 1.0, 2.0).unwrap())],
                    Degree::new(0.9).unwrap(),
                ),
                Tuple::new(vec![Value::number(3.0)], Degree::new(0.7).unwrap()),
            ],
        )
    }

    #[test]
    fn order_by_degree_both_directions() {
        let r = rel();
        let asc: Vec<f64> =
            r.ordered_by_degree(false).tuples().iter().map(|t| t.degree.value()).collect();
        assert_eq!(asc, vec![0.4, 0.7, 0.9]);
        let desc: Vec<f64> =
            r.ordered_by_degree(true).tuples().iter().map(|t| t.degree.value()).collect();
        assert_eq!(desc, vec![0.9, 0.7, 0.4]);
    }

    #[test]
    fn order_by_column_uses_interval_order() {
        let r = rel();
        let xs: Vec<f64> = r
            .ordered_by_column(0, false)
            .tuples()
            .iter()
            .map(|t| t.values[0].interval().unwrap().0)
            .collect();
        assert_eq!(xs, vec![0.0, 3.0, 5.0]);
    }

    #[test]
    fn limit_truncates() {
        let r = rel();
        assert_eq!(r.limited(2).len(), 2);
        assert_eq!(r.limited(0).len(), 0);
        assert_eq!(r.limited(99).len(), 3);
    }
}
