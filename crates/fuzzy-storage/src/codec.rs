//! Byte-level encoding helpers used by the tuple codec in `fuzzy-rel`.
//!
//! Little-endian fixed-width integers and floats, plus length-prefixed byte
//! strings. Kept deliberately simple: record layout is part of the substrate
//! the paper's I/O measurements depend on, so the encoding must be
//! predictable (a crisp number costs 8 payload bytes; an ill-known value
//! costs 32 — the 4 trapezoid breakpoints — which is the storage-size
//! asymmetry the paper calls out in its introduction).

use crate::error::{Result, StorageError};

/// Serializes primitive values into a growing byte buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Creates a writer with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> ByteWriter {
        ByteWriter { buf: Vec::with_capacity(cap) }
    }

    /// Appends a byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian u16.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian f64.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a u32-length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Appends raw bytes with no prefix.
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True iff nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Deserializes primitive values from a byte slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over the slice.
    pub fn new(buf: &'a [u8]) -> ByteReader<'a> {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(StorageError::Corrupt(format!(
                "record underflow: need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u16.
    pub fn get_u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    /// Reads a little-endian u32.
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    /// Reads a little-endian u64.
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads a little-endian f64.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    /// Reads a u32-length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.get_u32()? as usize;
        self.take(len)
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_types() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(300);
        w.put_u32(70_000);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-2.5);
        w.put_bytes(b"hello");
        w.put_raw(&[9, 9]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 300);
        assert_eq!(r.get_u32().unwrap(), 70_000);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_f64().unwrap(), -2.5);
        assert_eq!(r.get_bytes().unwrap(), b"hello");
        assert_eq!(r.remaining(), 2);
        assert_eq!(r.get_u8().unwrap(), 9);
    }

    #[test]
    fn underflow_is_an_error() {
        let bytes = [1u8, 2];
        let mut r = ByteReader::new(&bytes);
        assert!(r.get_u32().is_err());
        // Failed reads do not consume.
        assert_eq!(r.get_u16().unwrap(), 0x0201);
        assert!(r.get_u8().is_err());
    }

    #[test]
    fn bad_length_prefix() {
        let mut w = ByteWriter::new();
        w.put_u32(1000); // claims 1000 bytes follow
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert!(r.get_bytes().is_err());
    }

    #[test]
    fn writer_state() {
        let mut w = ByteWriter::with_capacity(16);
        assert!(w.is_empty());
        w.put_u8(1);
        assert_eq!(w.len(), 1);
        assert!(!w.is_empty());
    }
}
