//! Heap files: sequences of slotted pages holding variable-length records.
//!
//! A heap file is the storage representation of a relation (and of sort runs
//! and temporary results). Bulk loading buffers one page in memory and writes
//! it to disk when full, so loading `n` records costs exactly
//! `ceil(bytes / page)` physical writes. Scanning goes through a
//! [`crate::buffer::BufferPool`] so repeated access patterns are charged
//! faithfully.

use crate::disk::{PageId, SimDisk};
use crate::error::{Result, StorageError};
use crate::page::Page;
use std::sync::{Arc, Mutex};

/// Identifier of a record inside a heap file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RecordId {
    /// Index into the file's page table (not the disk page id).
    pub page_index: u32,
    /// Slot within the page.
    pub slot: u16,
}

#[derive(Debug)]
struct FileInner {
    pages: Vec<PageId>,
    record_count: u64,
}

/// A heap file on a [`SimDisk`]. Cloning shares the same file; handles may
/// cross threads (parallel sort workers each build their own run files).
#[derive(Debug, Clone)]
pub struct HeapFile {
    disk: SimDisk,
    inner: Arc<Mutex<FileInner>>,
}

impl HeapFile {
    /// Creates an empty heap file on the given disk.
    pub fn create(disk: &SimDisk) -> HeapFile {
        HeapFile {
            disk: disk.clone(),
            inner: Arc::new(Mutex::new(FileInner { pages: Vec::new(), record_count: 0 })),
        }
    }

    /// The disk this file lives on.
    pub fn disk(&self) -> &SimDisk {
        &self.disk
    }

    /// Number of pages in the file.
    pub fn num_pages(&self) -> u64 {
        self.inner.lock().expect("file lock").pages.len() as u64
    }

    /// Number of records in the file.
    pub fn num_records(&self) -> u64 {
        self.inner.lock().expect("file lock").record_count
    }

    /// All disk page ids of the file, in order (for catalog manifests).
    pub fn page_ids(&self) -> Vec<PageId> {
        self.inner.lock().expect("file lock").pages.clone()
    }

    /// Reconstructs a heap file from persisted parts (a manifest's page list
    /// and record count).
    pub fn from_parts(disk: &SimDisk, pages: Vec<PageId>, record_count: u64) -> HeapFile {
        HeapFile {
            disk: disk.clone(),
            inner: Arc::new(Mutex::new(FileInner { pages, record_count })),
        }
    }

    /// The disk page id of the `index`-th page of the file.
    pub fn page_id(&self, index: u32) -> Result<PageId> {
        self.inner
            .lock()
            .expect("file lock")
            .pages
            .get(index as usize)
            .copied()
            .ok_or(StorageError::PageOutOfBounds(index as u64))
    }

    /// Opens a bulk writer. Records stream into an in-memory page that is
    /// flushed to disk when full and on `finish`.
    pub fn bulk_writer(&self) -> BulkWriter {
        BulkWriter { file: self.clone(), current: Page::new(self.disk.page_size()), pending: 0 }
    }

    /// Convenience: appends all records from an iterator.
    pub fn load<I, B>(&self, records: I) -> Result<()>
    where
        I: IntoIterator<Item = B>,
        B: AsRef<[u8]>,
    {
        let mut w = self.bulk_writer();
        for r in records {
            w.append(r.as_ref())?;
        }
        w.finish()
    }

    /// Appends a single record, reading and rewriting the last page if it
    /// has room (one read + one write), or allocating a fresh page. Bulk
    /// loading should use [`HeapFile::bulk_writer`] instead.
    pub fn append(&self, record: &[u8]) -> Result<()> {
        let last = {
            let inner = self.inner.lock().expect("file lock");
            inner.pages.last().copied()
        };
        if let Some(pid) = last {
            let mut page = Page::from_bytes(self.disk.read_page(pid)?)?;
            if page.insert(record).is_ok() {
                self.disk.write_page(pid, page.as_bytes())?;
                self.inner.lock().expect("file lock").record_count += 1;
                return Ok(());
            }
        }
        let mut page = Page::new(self.disk.page_size());
        page.insert(record).map_err(|_| StorageError::RecordTooLarge {
            need: record.len(),
            page_capacity: Page::capacity(self.disk.page_size()),
        })?;
        self.push_page(&page, 1)
    }

    fn push_page(&self, page: &Page, records_in_page: u64) -> Result<()> {
        let pid = self.disk.alloc_page();
        self.disk.write_page(pid, page.as_bytes())?;
        let mut inner = self.inner.lock().expect("file lock");
        inner.pages.push(pid);
        inner.record_count += records_in_page;
        Ok(())
    }
}

/// Streaming bulk loader for a heap file.
pub struct BulkWriter {
    file: HeapFile,
    current: Page,
    pending: u64,
}

impl BulkWriter {
    /// Appends one record, flushing the current page if it is full.
    pub fn append(&mut self, record: &[u8]) -> Result<()> {
        if self.current.insert(record).is_err() {
            if self.pending == 0 {
                // Fresh page still cannot hold it: genuinely oversized.
                return Err(StorageError::RecordTooLarge {
                    need: record.len(),
                    page_capacity: Page::capacity(self.file.disk.page_size()),
                });
            }
            self.flush()?;
            self.current.insert(record).map_err(|_| StorageError::RecordTooLarge {
                need: record.len(),
                page_capacity: Page::capacity(self.file.disk.page_size()),
            })?;
        }
        self.pending += 1;
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        if self.pending > 0 {
            let page = std::mem::replace(&mut self.current, Page::new(self.file.disk.page_size()));
            self.file.push_page(&page, self.pending)?;
            self.pending = 0;
        }
        Ok(())
    }

    /// Flushes the final partial page. Must be called; dropping without
    /// finishing loses buffered records (deliberately, so errors are explicit).
    pub fn finish(mut self) -> Result<()> {
        self.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferPool;

    #[test]
    fn load_and_count() {
        let disk = SimDisk::new(128);
        let f = HeapFile::create(&disk);
        f.load((0..50u32).map(|i| i.to_le_bytes())).unwrap();
        assert_eq!(f.num_records(), 50);
        // 124 usable bytes per page, 8 bytes per 4-byte record: 15 per page.
        assert_eq!(f.num_pages(), 4);
        // Bulk load writes each page exactly once.
        assert_eq!(disk.io().writes, 4);
        assert_eq!(disk.io().reads, 0);
    }

    #[test]
    fn scan_roundtrip() {
        let disk = SimDisk::new(128);
        let f = HeapFile::create(&disk);
        let records: Vec<Vec<u8>> = (0..40u32).map(|i| i.to_le_bytes().to_vec()).collect();
        f.load(records.iter()).unwrap();
        let pool = BufferPool::new(&disk, 4);
        let got: Vec<Vec<u8>> = pool.scan(&f).map(|r| r.unwrap()).collect();
        assert_eq!(got, records);
    }

    #[test]
    fn oversized_record_fails_cleanly() {
        let disk = SimDisk::new(128);
        let f = HeapFile::create(&disk);
        let mut w = f.bulk_writer();
        w.append(b"ok").unwrap();
        let err = w.append(&[0u8; 1000]).unwrap_err();
        assert!(matches!(err, StorageError::RecordTooLarge { .. }));
    }

    #[test]
    fn empty_file() {
        let disk = SimDisk::new(128);
        let f = HeapFile::create(&disk);
        f.load(std::iter::empty::<&[u8]>()).unwrap();
        assert_eq!(f.num_pages(), 0);
        assert_eq!(f.num_records(), 0);
        let pool = BufferPool::new(&disk, 2);
        assert_eq!(pool.scan(&f).count(), 0);
    }

    #[test]
    fn page_id_bounds() {
        let disk = SimDisk::new(128);
        let f = HeapFile::create(&disk);
        f.load([b"x"]).unwrap();
        assert!(f.page_id(0).is_ok());
        assert!(f.page_id(1).is_err());
    }
}
