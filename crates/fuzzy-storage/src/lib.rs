//! # fuzzy-storage
//!
//! The paged storage substrate of the fuzzy database: the paper's experiments
//! run on a real disk with 8 KB pages, a bounded buffer, and a commercial
//! external sort; this crate rebuilds those components over a simulated disk
//! so every physical page transfer is counted and charged through a
//! configurable cost model.
//!
//! * [`SimDisk`] — page-granular simulated disk with I/O counters;
//! * [`Page`] — slotted pages holding variable-length records;
//! * [`HeapFile`] — record files with streaming bulk load;
//! * [`BufferPool`] — bounded LRU page cache (the buffer-allocation policies
//!   of both join algorithms in the paper are expressed through it);
//! * [`sort::external_sort`] — bounded-memory external merge sort;
//! * [`CostModel`] — converts I/O counts + CPU time into response time;
//! * [`codec`] — byte-level record encoding helpers.
//!
//! ## Example
//!
//! ```
//! use fuzzy_storage::{SimDisk, HeapFile, BufferPool};
//!
//! let disk = SimDisk::with_default_page_size();
//! let file = HeapFile::create(&disk);
//! file.load((0u32..100).map(|i| i.to_le_bytes()))?;
//! let pool = BufferPool::new(&disk, 4);
//! assert_eq!(pool.scan(&file).count(), 100);
//! # Ok::<(), fuzzy_storage::StorageError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buffer;
pub mod codec;
pub mod cost;
pub mod disk;
pub mod error;
pub mod file;
pub mod page;
pub mod sort;

pub use buffer::{BufferPool, PoolStats, RecordScan};
pub use cost::{CostModel, Measurement};
pub use disk::{IoSnapshot, PageId, SimDisk, DEFAULT_PAGE_SIZE};
pub use error::{Result, StorageError};
pub use file::{HeapFile, RecordId};
pub use page::Page;
pub use sort::{external_sort, external_sort_parallel, external_sort_records, SortStats};
