//! The simulated disk.
//!
//! The paper's experiments ran on a SUN SPARC/IPC with a real disk, 8 KB
//! pages, and a 2 MB buffer. We substitute a simulated disk: fixed-size
//! pages behind the same page-granular interface a disk driver would offer,
//! with every physical page read and write counted. The cost model charges a
//! configurable per-page latency, so response times have the same *shape* as
//! the paper's (reads and writes are what the algorithms control), while
//! remaining reproducible on any machine.
//!
//! Two backings share the interface: the default in-memory vector (fast,
//! reproducible — what the experiments use) and a real file
//! ([`SimDisk::open_file`]) for persistence across processes.

use crate::error::{Result, StorageError};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Identifier of a page on a disk.
pub type PageId = u64;

/// Default page size (8 KB, matching the paper's experimental setup).
pub const DEFAULT_PAGE_SIZE: usize = 8192;

#[derive(Debug)]
enum Backing {
    Memory(Vec<Box<[u8]>>),
    File { file: File, num_pages: u64 },
}

/// Shared disk state. The page store sits behind a mutex (parallel sort and
/// join workers write runs concurrently); the I/O counters are atomics so
/// accounting never extends the critical section and stays exact regardless
/// of thread interleaving.
#[derive(Debug)]
struct DiskInner {
    page_size: usize,
    backing: Mutex<Backing>,
    /// Reclaimed page ids available for reuse (LIFO). Guarded separately
    /// from `backing`; the two locks are never held at the same time.
    free: Mutex<Vec<PageId>>,
    /// Statement-scoped allocation log. While at least one scope is open,
    /// every allocation is recorded; the log drains only when the *last*
    /// scope closes, so overlapping statements (concurrent sessions) can
    /// never reclaim a temporary another statement still reads.
    alloc_log: Mutex<AllocLog>,
    reads: AtomicU64,
    writes: AtomicU64,
}

/// Reference-counted allocation-log state: `depth` counts the statement
/// scopes currently open (overlapping statements from concurrent sessions
/// stack), `pages` accumulates every id allocated while any scope is open.
#[derive(Debug, Default)]
struct AllocLog {
    depth: u64,
    pages: Vec<PageId>,
}

/// A shareable handle to a simulated disk. Cloning shares the same disk, and
/// handles may be used from multiple threads.
#[derive(Debug, Clone)]
pub struct SimDisk {
    inner: Arc<DiskInner>,
}

/// A snapshot of disk I/O counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    /// Physical page reads since disk creation.
    pub reads: u64,
    /// Physical page writes since disk creation.
    pub writes: u64,
}

impl IoSnapshot {
    /// Total physical page transfers.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }

    /// Counter deltas since an earlier snapshot.
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot { reads: self.reads - earlier.reads, writes: self.writes - earlier.writes }
    }
}

impl SimDisk {
    /// Creates an empty in-memory disk with the given page size.
    pub fn new(page_size: usize) -> SimDisk {
        assert!(page_size >= 64, "page size must be at least 64 bytes");
        SimDisk {
            inner: Arc::new(DiskInner {
                page_size,
                backing: Mutex::new(Backing::Memory(Vec::new())),
                free: Mutex::new(Vec::new()),
                alloc_log: Mutex::new(AllocLog::default()),
                reads: AtomicU64::new(0),
                writes: AtomicU64::new(0),
            }),
        }
    }

    /// Opens (creating if needed) a file-backed disk. Existing page content
    /// is preserved; the file length must be a multiple of the page size.
    pub fn open_file(path: impl AsRef<std::path::Path>, page_size: usize) -> Result<SimDisk> {
        assert!(page_size >= 64, "page size must be at least 64 bytes");
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| StorageError::Corrupt(format!("cannot open disk file: {e}")))?;
        let len = file
            .metadata()
            .map_err(|e| StorageError::Corrupt(format!("cannot stat disk file: {e}")))?
            .len();
        if len % page_size as u64 != 0 {
            return Err(StorageError::Corrupt(format!(
                "disk file length {len} is not a multiple of the page size {page_size}"
            )));
        }
        Ok(SimDisk {
            inner: Arc::new(DiskInner {
                page_size,
                backing: Mutex::new(Backing::File { file, num_pages: len / page_size as u64 }),
                free: Mutex::new(Vec::new()),
                alloc_log: Mutex::new(AllocLog::default()),
                reads: AtomicU64::new(0),
                writes: AtomicU64::new(0),
            }),
        })
    }

    /// Creates an empty disk with the default 8 KB page size.
    pub fn with_default_page_size() -> SimDisk {
        SimDisk::new(DEFAULT_PAGE_SIZE)
    }

    /// The page size in bytes.
    pub fn page_size(&self) -> usize {
        self.inner.page_size
    }

    /// Number of allocated pages.
    pub fn num_pages(&self) -> u64 {
        match &*self.inner.backing.lock().expect("disk lock") {
            Backing::Memory(pages) => pages.len() as u64,
            Backing::File { num_pages, .. } => *num_pages,
        }
    }

    /// Allocates a zeroed page and returns its id, reusing a reclaimed page
    /// when one is available. Allocation itself is not charged as an I/O;
    /// the subsequent write is.
    pub fn alloc_page(&self) -> PageId {
        let size = self.inner.page_size;
        let reused = self.inner.free.lock().expect("disk lock").pop();
        let id = match reused {
            Some(id) => {
                // Scrub the recycled page (uncharged, like allocation) so
                // the zeroed-page contract holds for reuse too.
                match &mut *self.inner.backing.lock().expect("disk lock") {
                    Backing::Memory(pages) => {
                        if let Some(p) = pages.get_mut(id as usize) {
                            p.fill(0);
                        }
                    }
                    Backing::File { file, .. } => {
                        let _ = file
                            .seek(SeekFrom::Start(id * size as u64))
                            .and_then(|_| file.write_all(&vec![0u8; size]));
                    }
                }
                id
            }
            None => match &mut *self.inner.backing.lock().expect("disk lock") {
                Backing::Memory(pages) => {
                    let id = pages.len() as PageId;
                    pages.push(vec![0u8; size].into_boxed_slice());
                    id
                }
                Backing::File { file, num_pages } => {
                    let id = *num_pages;
                    *num_pages += 1;
                    // Extend the file eagerly so short reads cannot happen.
                    let _ = file.set_len(*num_pages * size as u64);
                    id
                }
            },
        };
        let mut log = self.inner.alloc_log.lock().expect("disk lock");
        if log.depth > 0 {
            log.pages.push(id);
        }
        id
    }

    /// Returns a page to the free list for reuse by a later
    /// [`SimDisk::alloc_page`]. Reading or writing a freed page before it is
    /// re-allocated is a logic error (the simulator does not police it, just
    /// as a real disk would not).
    pub fn free_page(&self, id: PageId) {
        self.inner.free.lock().expect("disk lock").push(id);
    }

    /// Number of allocated pages not currently on the free list — the disk
    /// footprint that is actually owned by live files.
    pub fn live_pages(&self) -> u64 {
        let total = self.num_pages();
        let free = self.inner.free.lock().expect("disk lock").len() as u64;
        total - free
    }

    /// Opens a statement scope: every page id allocated from now on is
    /// recorded so statement executors can reclaim their temporaries at
    /// statement end. Scopes stack: concurrent sessions each open one, and
    /// the shared log drains only when the last scope closes (see
    /// [`SimDisk::take_alloc_log`]).
    pub fn begin_alloc_log(&self) {
        self.inner.alloc_log.lock().expect("disk lock").depth += 1;
    }

    /// Closes one statement scope. If it was the last open scope, returns
    /// every id allocated while any scope was open — all of them belong to
    /// statements that have already finished, so the caller may free them.
    /// While other scopes remain open (another session is mid-statement)
    /// this returns an empty list: the pages drain when the last concurrent
    /// statement closes its scope, so no live temporary is ever recycled.
    /// A call without a matching [`SimDisk::begin_alloc_log`] is a no-op.
    pub fn take_alloc_log(&self) -> Vec<PageId> {
        let mut log = self.inner.alloc_log.lock().expect("disk lock");
        log.depth = log.depth.saturating_sub(1);
        if log.depth == 0 {
            std::mem::take(&mut log.pages)
        } else {
            Vec::new()
        }
    }

    /// Reads a page into a fresh buffer, charging one physical read.
    pub fn read_page(&self, id: PageId) -> Result<Box<[u8]>> {
        let size = self.inner.page_size;
        let page: Box<[u8]> = match &mut *self.inner.backing.lock().expect("disk lock") {
            Backing::Memory(pages) => {
                pages.get(id as usize).ok_or(StorageError::PageOutOfBounds(id))?.clone()
            }
            Backing::File { file, num_pages } => {
                if id >= *num_pages {
                    return Err(StorageError::PageOutOfBounds(id));
                }
                let mut buf = vec![0u8; size];
                file.seek(SeekFrom::Start(id * size as u64))
                    .and_then(|_| file.read_exact(&mut buf))
                    .map_err(|e| StorageError::Corrupt(format!("page read failed: {e}")))?;
                buf.into_boxed_slice()
            }
        };
        self.inner.reads.fetch_add(1, Ordering::Relaxed);
        Ok(page)
    }

    /// Writes a full page, charging one physical write.
    pub fn write_page(&self, id: PageId, data: &[u8]) -> Result<()> {
        let size = self.inner.page_size;
        if data.len() != size {
            return Err(StorageError::Corrupt(format!(
                "page write of {} bytes to a disk with {size}-byte pages",
                data.len(),
            )));
        }
        match &mut *self.inner.backing.lock().expect("disk lock") {
            Backing::Memory(pages) => {
                let idx = id as usize;
                if idx >= pages.len() {
                    return Err(StorageError::PageOutOfBounds(id));
                }
                pages[idx].copy_from_slice(data);
            }
            Backing::File { file, num_pages } => {
                if id >= *num_pages {
                    return Err(StorageError::PageOutOfBounds(id));
                }
                file.seek(SeekFrom::Start(id * size as u64))
                    .and_then(|_| file.write_all(data))
                    .map_err(|e| StorageError::Corrupt(format!("page write failed: {e}")))?;
            }
        }
        self.inner.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Current I/O counters.
    pub fn io(&self) -> IoSnapshot {
        IoSnapshot {
            reads: self.inner.reads.load(Ordering::Relaxed),
            writes: self.inner.writes.load(Ordering::Relaxed),
        }
    }

    /// Resets the I/O counters (between experiment legs).
    pub fn reset_io(&self) {
        self.inner.reads.store(0, Ordering::Relaxed);
        self.inner.writes.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_read_write_roundtrip() {
        let disk = SimDisk::new(128);
        let p = disk.alloc_page();
        assert_eq!(disk.num_pages(), 1);
        let mut data = vec![0u8; 128];
        data[0] = 42;
        data[127] = 7;
        disk.write_page(p, &data).unwrap();
        let back = disk.read_page(p).unwrap();
        assert_eq!(&back[..], &data[..]);
    }

    #[test]
    fn io_accounting() {
        let disk = SimDisk::new(128);
        let p = disk.alloc_page();
        assert_eq!(disk.io(), IoSnapshot { reads: 0, writes: 0 });
        disk.write_page(p, &[0u8; 128]).unwrap();
        disk.read_page(p).unwrap();
        disk.read_page(p).unwrap();
        let io = disk.io();
        assert_eq!(io.reads, 2);
        assert_eq!(io.writes, 1);
        assert_eq!(io.total(), 3);
        let before = io;
        disk.read_page(p).unwrap();
        assert_eq!(disk.io().since(&before), IoSnapshot { reads: 1, writes: 0 });
        disk.reset_io();
        assert_eq!(disk.io().total(), 0);
    }

    #[test]
    fn out_of_bounds_and_bad_sizes() {
        let disk = SimDisk::new(128);
        assert_eq!(disk.read_page(0), Err(StorageError::PageOutOfBounds(0)));
        let p = disk.alloc_page();
        assert!(matches!(disk.write_page(p, &[0u8; 64]), Err(StorageError::Corrupt(_))));
        assert_eq!(disk.write_page(99, &[0u8; 128]), Err(StorageError::PageOutOfBounds(99)));
    }

    #[test]
    fn clones_share_state() {
        let disk = SimDisk::new(128);
        let other = disk.clone();
        let p = other.alloc_page();
        disk.write_page(p, &[1u8; 128]).unwrap();
        assert_eq!(other.read_page(p).unwrap()[0], 1);
        assert_eq!(disk.io().reads, 1);
    }

    #[test]
    #[should_panic(expected = "page size")]
    fn tiny_pages_rejected() {
        SimDisk::new(16);
    }

    #[test]
    fn freed_pages_are_reused_and_zeroed() {
        let disk = SimDisk::new(128);
        let p0 = disk.alloc_page();
        disk.write_page(p0, &[9u8; 128]).unwrap();
        disk.free_page(p0);
        assert_eq!(disk.live_pages(), 0);
        assert_eq!(disk.num_pages(), 1, "freeing does not shrink the backing");
        let p1 = disk.alloc_page();
        assert_eq!(p1, p0, "the freed page is recycled");
        assert_eq!(disk.live_pages(), 1);
        assert!(disk.read_page(p1).unwrap().iter().all(|b| *b == 0), "recycled page is scrubbed");
    }

    #[test]
    fn alloc_log_captures_statement_temporaries() {
        let disk = SimDisk::new(128);
        let base = disk.alloc_page();
        disk.begin_alloc_log();
        let t0 = disk.alloc_page();
        let t1 = disk.alloc_page();
        let log = disk.take_alloc_log();
        assert_eq!(log, vec![t0, t1], "only pages allocated under the log are recorded");
        assert!(!log.contains(&base));
        for id in log {
            disk.free_page(id);
        }
        assert_eq!(disk.live_pages(), 1);
        // With no active log, allocations are not recorded.
        let _ = disk.alloc_page();
        assert!(disk.take_alloc_log().is_empty());
    }

    /// Overlapping statement scopes (concurrent sessions): the first scope
    /// to close gets nothing back — its temporaries might still be read by
    /// the other statement — and the last scope drains everything.
    #[test]
    fn overlapping_alloc_scopes_drain_only_at_the_last_close() {
        let disk = SimDisk::new(128);
        disk.begin_alloc_log(); // statement A
        let a0 = disk.alloc_page();
        disk.begin_alloc_log(); // statement B, concurrent with A
        let b0 = disk.alloc_page();
        // A finishes first: nothing is reclaimable while B runs, so A's
        // temporary cannot be recycled out from under B.
        assert!(disk.take_alloc_log().is_empty());
        let b1 = disk.alloc_page();
        assert_eq!(
            disk.take_alloc_log(),
            vec![a0, b0, b1],
            "the last close drains every page allocated under any scope"
        );
        // Unbalanced closes are no-ops.
        assert!(disk.take_alloc_log().is_empty());
    }
}

#[cfg(test)]
mod file_backing_tests {
    use super::*;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("fuzzy_db_disk_{tag}_{}", std::process::id()));
        p
    }

    #[test]
    fn file_backed_roundtrip_and_persistence() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let disk = SimDisk::open_file(&path, 128).unwrap();
            let p0 = disk.alloc_page();
            let p1 = disk.alloc_page();
            disk.write_page(p0, &[7u8; 128]).unwrap();
            disk.write_page(p1, &[9u8; 128]).unwrap();
            assert_eq!(disk.io().writes, 2);
        }
        // Reopen: pages survive the process boundary (here, the handle).
        {
            let disk = SimDisk::open_file(&path, 128).unwrap();
            assert_eq!(disk.num_pages(), 2);
            assert_eq!(disk.read_page(0).unwrap()[0], 7);
            assert_eq!(disk.read_page(1).unwrap()[127], 9);
            assert!(disk.read_page(2).is_err());
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_backed_rejects_misaligned_files() {
        let path = temp_path("misaligned");
        std::fs::write(&path, [0u8; 100]).unwrap();
        assert!(matches!(SimDisk::open_file(&path, 128), Err(StorageError::Corrupt(_))));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn heap_file_and_sort_work_on_file_backing() {
        let path = temp_path("heap");
        let _ = std::fs::remove_file(&path);
        let disk = SimDisk::open_file(&path, 256).unwrap();
        let f = crate::file::HeapFile::create(&disk);
        f.load((0..200u32).rev().map(|i| i.to_le_bytes())).unwrap();
        let (sorted, _) = crate::sort::external_sort(&disk, &f, 2, |a, b| {
            u32::from_le_bytes(a[..4].try_into().unwrap())
                .cmp(&u32::from_le_bytes(b[..4].try_into().unwrap()))
        })
        .unwrap();
        let pool = crate::buffer::BufferPool::new(&disk, 4);
        let first = pool.scan(&sorted).next().unwrap().unwrap();
        assert_eq!(u32::from_le_bytes(first[..4].try_into().unwrap()), 0);
        std::fs::remove_file(&path).unwrap();
    }
}
