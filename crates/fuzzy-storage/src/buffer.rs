//! The buffer pool.
//!
//! All page reads performed by query operators go through a buffer pool with
//! a fixed frame budget and LRU replacement. The paper's cost analysis
//! depends on this structure: the nested-loop join allocates one page to the
//! inner relation and the rest to the outer (Section 9), while the extended
//! merge-join holds one page of `R` plus the pages of `S` spanned by the
//! current `Rng(r)` (Section 3) — if they fit, each page of `S` is read
//! exactly once; if not, LRU causes the re-reads a real system would incur.
//!
//! Frames hold immutable page images (`Arc<[u8]>`), so an operator can keep a
//! cheap handle to a page while the pool replaces the frame; that models
//! pinning without reference-counted pin bookkeeping leaking into operators.

use crate::disk::{PageId, SimDisk};
use crate::error::Result;
use crate::file::HeapFile;
use crate::page::Page;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Hit/miss statistics of a buffer pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Total page requests (`hits + misses` always equals `requests`).
    pub requests: u64,
    /// Requests satisfied from a resident frame.
    pub hits: u64,
    /// Requests that required a physical read.
    pub misses: u64,
}

struct PoolInner {
    frames: HashMap<PageId, Arc<[u8]>>,
    lru: Vec<PageId>, // least-recently-used first
    capacity: usize,
    stats: PoolStats,
}

/// An LRU buffer pool over a [`SimDisk`]. Cloning shares the pool; a pool
/// may be used from multiple threads (frames are immutable `Arc<[u8]>`
/// images, the replacement state sits behind a mutex).
#[derive(Clone)]
pub struct BufferPool {
    disk: SimDisk,
    inner: Arc<Mutex<PoolInner>>,
}

impl BufferPool {
    /// Creates a pool with a budget of `capacity` frames (pages).
    pub fn new(disk: &SimDisk, capacity: usize) -> BufferPool {
        assert!(capacity >= 1, "a buffer pool needs at least one frame");
        BufferPool {
            disk: disk.clone(),
            inner: Arc::new(Mutex::new(PoolInner {
                frames: HashMap::with_capacity(capacity),
                lru: Vec::with_capacity(capacity),
                capacity,
                stats: PoolStats::default(),
            })),
        }
    }

    /// The frame budget.
    pub fn capacity(&self) -> usize {
        self.inner.lock().expect("pool lock").capacity
    }

    /// The disk behind this pool.
    pub fn disk(&self) -> &SimDisk {
        &self.disk
    }

    /// Fetches a page image, reading from disk on a miss and evicting the
    /// least recently used frame if the pool is full.
    pub fn get(&self, id: PageId) -> Result<Arc<[u8]>> {
        let mut inner = self.inner.lock().expect("pool lock");
        inner.stats.requests += 1;
        if let Some(frame) = inner.frames.get(&id).cloned() {
            inner.stats.hits += 1;
            touch(&mut inner.lru, id);
            return Ok(frame);
        }
        let data: Arc<[u8]> = Arc::from(self.disk.read_page(id)?);
        inner.stats.misses += 1;
        if inner.frames.len() >= inner.capacity {
            let victim = inner.lru.remove(0);
            inner.frames.remove(&victim);
        }
        inner.frames.insert(id, data.clone());
        inner.lru.push(id);
        Ok(data)
    }

    /// Fetches and parses a slotted page.
    pub fn get_page(&self, id: PageId) -> Result<Page> {
        let bytes = self.get(id)?;
        Page::from_bytes(bytes.to_vec().into_boxed_slice())
    }

    /// Drops every resident frame (e.g. between experiment legs) without
    /// touching statistics.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("pool lock");
        inner.frames.clear();
        inner.lru.clear();
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().expect("pool lock").stats
    }

    /// Scans every record of a heap file in storage order through the pool.
    pub fn scan<'a>(&'a self, file: &'a HeapFile) -> RecordScan<'a> {
        RecordScan { pool: self, file, page_index: 0, current: None, slot: 0 }
    }
}

fn touch(lru: &mut Vec<PageId>, id: PageId) {
    if let Some(pos) = lru.iter().position(|&p| p == id) {
        lru.remove(pos);
    }
    lru.push(id);
}

/// Iterator over all records of a heap file, in `(page, slot)` order.
pub struct RecordScan<'a> {
    pool: &'a BufferPool,
    file: &'a HeapFile,
    page_index: u32,
    current: Option<Page>,
    slot: u16,
}

impl Iterator for RecordScan<'_> {
    type Item = Result<Vec<u8>>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.current.is_none() {
                if u64::from(self.page_index) >= self.file.num_pages() {
                    return None;
                }
                let pid = match self.file.page_id(self.page_index) {
                    Ok(p) => p,
                    Err(e) => return Some(Err(e)),
                };
                match self.pool.get_page(pid) {
                    Ok(p) => {
                        self.current = Some(p);
                        self.slot = 0;
                    }
                    Err(e) => return Some(Err(e)),
                }
            }
            let page = self.current.as_ref().expect("just filled");
            if self.slot < page.slot_count() {
                let rec = page.get(self.slot).map(|r| r.to_vec());
                self.slot += 1;
                return Some(rec);
            }
            self.current = None;
            self.page_index += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk_with_pages(n: usize) -> (SimDisk, Vec<PageId>) {
        let disk = SimDisk::new(128);
        let ids: Vec<PageId> = (0..n)
            .map(|i| {
                let id = disk.alloc_page();
                let mut page = Page::new(128);
                page.insert(&[i as u8]).unwrap();
                disk.write_page(id, page.as_bytes()).unwrap();
                id
            })
            .collect();
        disk.reset_io();
        (disk, ids)
    }

    #[test]
    fn hits_and_misses() {
        let (disk, ids) = disk_with_pages(3);
        let pool = BufferPool::new(&disk, 2);
        pool.get(ids[0]).unwrap();
        pool.get(ids[0]).unwrap();
        pool.get(ids[1]).unwrap();
        assert_eq!(pool.stats(), PoolStats { requests: 3, hits: 1, misses: 2 });
        assert_eq!(disk.io().reads, 2);
    }

    #[test]
    fn lru_eviction_causes_rereads() {
        let (disk, ids) = disk_with_pages(3);
        let pool = BufferPool::new(&disk, 2);
        pool.get(ids[0]).unwrap();
        pool.get(ids[1]).unwrap();
        pool.get(ids[2]).unwrap(); // evicts ids[0]
        pool.get(ids[1]).unwrap(); // hit
        pool.get(ids[0]).unwrap(); // miss again
        assert_eq!(pool.stats(), PoolStats { requests: 5, hits: 1, misses: 4 });
        assert_eq!(disk.io().reads, 4);
    }

    #[test]
    fn lru_order_respects_recency() {
        let (disk, ids) = disk_with_pages(3);
        let pool = BufferPool::new(&disk, 2);
        pool.get(ids[0]).unwrap();
        pool.get(ids[1]).unwrap();
        pool.get(ids[0]).unwrap(); // refresh 0; victim should be 1
        pool.get(ids[2]).unwrap(); // evicts 1
        pool.get(ids[0]).unwrap(); // still resident
        assert_eq!(pool.stats().hits, 2);
    }

    #[test]
    fn frames_survive_for_holders_after_eviction() {
        let (disk, ids) = disk_with_pages(2);
        let pool = BufferPool::new(&disk, 1);
        let held = pool.get(ids[0]).unwrap();
        pool.get(ids[1]).unwrap(); // evicts frame 0 from the pool
                                   // The held image is still valid.
        let page = Page::from_bytes(held.to_vec().into_boxed_slice()).unwrap();
        assert_eq!(page.get(0).unwrap(), &[0u8]);
    }

    #[test]
    fn clear_empties_frames() {
        let (disk, ids) = disk_with_pages(1);
        let pool = BufferPool::new(&disk, 2);
        pool.get(ids[0]).unwrap();
        pool.clear();
        pool.get(ids[0]).unwrap();
        assert_eq!(pool.stats().misses, 2);
        let _ = disk;
    }
}
