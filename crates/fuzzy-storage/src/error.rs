//! Error type for the storage engine.

use std::fmt;

/// Errors produced by the paged storage engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A page id referenced a page that does not exist on the disk.
    PageOutOfBounds(u64),
    /// A record was too large to fit in a single page.
    RecordTooLarge {
        /// Bytes the record needs (payload plus slot overhead).
        need: usize,
        /// Bytes a fresh page can offer.
        page_capacity: usize,
    },
    /// A slot index referenced a slot that does not exist in the page.
    InvalidSlot(u16),
    /// On-disk bytes failed structural validation.
    Corrupt(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::PageOutOfBounds(id) => write!(f, "page {id} is out of bounds"),
            StorageError::RecordTooLarge { need, page_capacity } => {
                write!(f, "record of {need} bytes exceeds page capacity {page_capacity}")
            }
            StorageError::InvalidSlot(s) => write!(f, "invalid slot {s}"),
            StorageError::Corrupt(msg) => write!(f, "corrupt storage: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

/// Convenience result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(StorageError::PageOutOfBounds(7).to_string().contains('7'));
        assert!(StorageError::RecordTooLarge { need: 9000, page_capacity: 8188 }
            .to_string()
            .contains("9000"));
        assert!(StorageError::InvalidSlot(3).to_string().contains('3'));
        assert!(StorageError::Corrupt("bad header".into()).to_string().contains("bad header"));
    }
}
