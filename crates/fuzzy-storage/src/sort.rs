//! External merge sort with a bounded memory budget.
//!
//! The paper sorts both join relations with a commercial external sort
//! (Opt-Tech Sort) that uses a user-specified amount of memory; Table 3 shows
//! sorting dominating the merge-join's time as the inner relation grows. This
//! module reproduces that component: quicksort run generation within a byte
//! budget of `memory_pages × page_size`, then k-way merging with at most
//! `memory_pages − 1` input runs per pass. When the memory budget is at least
//! the square root of the file size (the common case the paper cites from
//! \[37\], \[9\]), sorting takes exactly two passes: one read+write to form runs
//! and one read(+write) to merge.
//!
//! All run files live on the same simulated disk as the input, so every spill
//! is charged to the I/O counters.

use crate::buffer::BufferPool;
use crate::disk::SimDisk;
use crate::error::Result;
use crate::file::HeapFile;
use std::cmp::Ordering;
use std::sync::atomic::{self, AtomicU64};
use std::sync::{mpsc, Mutex};

/// Statistics of one external sort execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortStats {
    /// Initial sorted runs generated.
    pub initial_runs: usize,
    /// Merge passes over the data after run generation (0 when a single run
    /// — or an already-sorted tiny input — needed no merging).
    pub merge_passes: usize,
    /// Comparisons performed (run generation + merging).
    pub comparisons: u64,
}

/// Sorts `input` by `cmp` using at most `memory_pages` pages of working
/// memory, returning a new sorted heap file and statistics.
///
/// `cmp` receives raw record bytes; callers typically decode a sort key.
/// The sort is not stable (quicksort runs), which matches the paper's setup —
/// ties in the interval order `⪯` carry no semantic weight.
pub fn external_sort<F>(
    disk: &SimDisk,
    input: &HeapFile,
    memory_pages: usize,
    cmp: F,
) -> Result<(HeapFile, SortStats)>
where
    F: FnMut(&[u8], &[u8]) -> Ordering,
{
    let pool = BufferPool::new(disk, 1); // sequential scan needs one frame
    sort_stream(disk, pool.scan(input), memory_pages, cmp)
}

/// Sorts a stream of already-decoded records with the same run-generation
/// and merge machinery as [`external_sort`], without requiring the input to
/// exist as a heap file first. This is the pipelined executor's sort
/// boundary: join output feeds straight into run generation, so the only
/// spill is the sort's own (batch cuts, run contents, comparison counts, and
/// run-file I/O are exactly what [`external_sort`] would have produced had
/// the records been materialized and re-scanned — minus that materialization
/// and re-scan).
pub fn external_sort_records<I, F>(
    disk: &SimDisk,
    records: I,
    memory_pages: usize,
    cmp: F,
) -> Result<(HeapFile, SortStats)>
where
    I: IntoIterator<Item = Vec<u8>>,
    F: FnMut(&[u8], &[u8]) -> Ordering,
{
    sort_stream(disk, records.into_iter().map(Ok), memory_pages, cmp)
}

fn sort_stream<I, F>(
    disk: &SimDisk,
    records: I,
    memory_pages: usize,
    mut cmp: F,
) -> Result<(HeapFile, SortStats)>
where
    I: Iterator<Item = Result<Vec<u8>>>,
    F: FnMut(&[u8], &[u8]) -> Ordering,
{
    let memory_pages = memory_pages.max(2);
    let budget_bytes = memory_pages * disk.page_size();
    let mut comparisons: u64 = 0;

    // --- Run generation ----------------------------------------------------
    let mut runs: Vec<HeapFile> = Vec::new();
    let mut batch: Vec<Vec<u8>> = Vec::new();
    let mut batch_bytes = 0usize;
    let mut flush = |batch: &mut Vec<Vec<u8>>, comparisons: &mut u64| -> Result<HeapFile> {
        batch.sort_by(|a, b| {
            *comparisons += 1;
            cmp(a, b)
        });
        let run = HeapFile::create(disk);
        run.load(batch.iter())?;
        batch.clear();
        Ok(run)
    };
    for rec in records {
        let rec = rec?;
        batch_bytes += rec.len();
        batch.push(rec);
        if batch_bytes >= budget_bytes {
            runs.push(flush(&mut batch, &mut comparisons)?);
            batch_bytes = 0;
        }
    }
    if !batch.is_empty() {
        runs.push(flush(&mut batch, &mut comparisons)?);
    }
    let initial_runs = runs.len();
    if runs.is_empty() {
        // Empty input: an empty sorted file.
        return Ok((
            HeapFile::create(disk),
            SortStats { initial_runs: 0, merge_passes: 0, comparisons },
        ));
    }

    // --- Merge passes -------------------------------------------------------
    let fan_in = (memory_pages - 1).max(2);
    let mut merge_passes = 0usize;
    while runs.len() > 1 {
        merge_passes += 1;
        let mut next: Vec<HeapFile> = Vec::new();
        for group in runs.chunks(fan_in) {
            next.push(merge_group(disk, group, memory_pages, &mut cmp, &mut comparisons)?);
        }
        runs = next;
    }
    let sorted = runs.pop().expect("at least one run");
    Ok((sorted, SortStats { initial_runs, merge_passes, comparisons }))
}

/// Multi-threaded variant of [`external_sort`]: `threads` workers sort and
/// spill runs concurrently while this thread scans the input and cuts
/// batches. With `threads <= 1` this is exactly [`external_sort`].
///
/// Equality guarantee: batch boundaries, run contents, comparison counts,
/// and physical I/O counts are identical to the serial sort for any thread
/// count — only wall-clock time changes. The input scan cuts batches at the
/// full memory budget exactly like the serial path (quicksorting identical
/// batches performs identical comparisons), workers only sort and write
/// whole runs (same page counts, merged in batch order), and the k-way merge
/// stays serial. The price is working memory: up to `threads + 1` batches
/// (each `memory_pages` big) are in flight at once, a deliberate trade so
/// parallel results and accounting stay bit-identical to serial (see
/// DESIGN.md).
pub fn external_sort_parallel<F>(
    disk: &SimDisk,
    input: &HeapFile,
    memory_pages: usize,
    threads: usize,
    cmp: F,
) -> Result<(HeapFile, SortStats)>
where
    F: Fn(&[u8], &[u8]) -> Ordering + Sync,
{
    if threads <= 1 {
        return external_sort(disk, input, memory_pages, cmp);
    }
    let memory_pages = memory_pages.max(2);
    let budget_bytes = memory_pages * disk.page_size();

    // --- Parallel run generation -------------------------------------------
    // Rendezvous channel: the producer hands a full batch straight to an idle
    // worker, so at most `threads` batches are being sorted while one more is
    // being accumulated.
    let comparisons = AtomicU64::new(0);
    let finished: Mutex<Vec<(usize, Result<HeapFile>)>> = Mutex::new(Vec::new());
    let (tx, rx) = mpsc::sync_channel::<(usize, Vec<Vec<u8>>)>(0);
    let rx = Mutex::new(rx);

    let scan_result: Result<()> = std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let msg = rx.lock().expect("sort channel lock").recv();
                let Ok((index, mut batch)) = msg else { break };
                let mut local: u64 = 0;
                batch.sort_by(|a, b| {
                    local += 1;
                    cmp(a, b)
                });
                let run = HeapFile::create(disk);
                let res = run.load(batch.iter()).map(|()| run);
                comparisons.fetch_add(local, atomic::Ordering::Relaxed);
                finished.lock().expect("sort slot lock").push((index, res));
            });
        }
        // This thread is the producer: sequential scan, cutting batches at
        // exactly the byte budget, as in the serial path.
        let producer = || -> Result<()> {
            let pool = BufferPool::new(disk, 1);
            let mut batch: Vec<Vec<u8>> = Vec::new();
            let mut batch_bytes = 0usize;
            let mut next_index = 0usize;
            for rec in pool.scan(input) {
                let rec = rec?;
                batch_bytes += rec.len();
                batch.push(rec);
                if batch_bytes >= budget_bytes {
                    tx.send((next_index, std::mem::take(&mut batch))).expect("sort workers alive");
                    next_index += 1;
                    batch_bytes = 0;
                }
            }
            if !batch.is_empty() {
                tx.send((next_index, batch)).expect("sort workers alive");
            }
            Ok(())
        };
        let res = producer();
        drop(tx); // unblock workers so the scope can join them
        res
    });
    scan_result?;

    let mut slots = finished.into_inner().expect("sort slot lock");
    slots.sort_by_key(|(index, _)| *index);
    let mut runs: Vec<HeapFile> = Vec::with_capacity(slots.len());
    for (_, res) in slots {
        runs.push(res?);
    }
    let mut comparisons = comparisons.into_inner();

    let initial_runs = runs.len();
    if runs.is_empty() {
        return Ok((
            HeapFile::create(disk),
            SortStats { initial_runs: 0, merge_passes: 0, comparisons },
        ));
    }

    // --- Merge passes: identical to the serial path ------------------------
    let fan_in = (memory_pages - 1).max(2);
    let mut merge_passes = 0usize;
    let mut cmp_mut = |a: &[u8], b: &[u8]| cmp(a, b);
    while runs.len() > 1 {
        merge_passes += 1;
        let mut next: Vec<HeapFile> = Vec::new();
        for group in runs.chunks(fan_in) {
            next.push(merge_group(disk, group, memory_pages, &mut cmp_mut, &mut comparisons)?);
        }
        runs = next;
    }
    let sorted = runs.pop().expect("at least one run");
    Ok((sorted, SortStats { initial_runs, merge_passes, comparisons }))
}

fn merge_group<F>(
    disk: &SimDisk,
    group: &[HeapFile],
    memory_pages: usize,
    cmp: &mut F,
    comparisons: &mut u64,
) -> Result<HeapFile>
where
    F: FnMut(&[u8], &[u8]) -> Ordering,
{
    if group.len() == 1 {
        return Ok(group[0].clone());
    }
    // One frame per input run plus one output page held by the bulk writer.
    let pool = BufferPool::new(disk, memory_pages.max(group.len() + 1));
    let mut cursors: Vec<crate::buffer::RecordScan<'_>> =
        group.iter().map(|r| pool.scan(r)).collect();
    // Owned head record per run; linear min scan per output record. Fan-in is
    // small enough that a tournament tree is not worth its complexity here.
    let mut heads: Vec<Option<Vec<u8>>> = Vec::with_capacity(cursors.len());
    for cur in &mut cursors {
        heads.push(cur.next().transpose()?);
    }
    let out = HeapFile::create(disk);
    let mut w = out.bulk_writer();
    loop {
        let mut min_idx: Option<usize> = None;
        for (i, head) in heads.iter().enumerate() {
            let Some(h) = head else { continue };
            match min_idx {
                None => min_idx = Some(i),
                Some(m) => {
                    *comparisons += 1;
                    if cmp(h, heads[m].as_deref().expect("min head present")) == Ordering::Less {
                        min_idx = Some(i);
                    }
                }
            }
        }
        match min_idx {
            None => break,
            Some(i) => {
                let rec = heads[i].take().expect("selected head present");
                w.append(&rec)?;
                heads[i] = cursors[i].next().transpose()?;
            }
        }
    }
    w.finish()?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(rec: &[u8]) -> u32 {
        u32::from_le_bytes(rec[..4].try_into().unwrap())
    }

    fn by_key(a: &[u8], b: &[u8]) -> Ordering {
        key(a).cmp(&key(b))
    }

    fn load_numbers(disk: &SimDisk, nums: &[u32]) -> HeapFile {
        let f = HeapFile::create(disk);
        f.load(nums.iter().map(|n| n.to_le_bytes())).unwrap();
        f
    }

    fn read_all(disk: &SimDisk, f: &HeapFile) -> Vec<u32> {
        let pool = BufferPool::new(disk, 4);
        pool.scan(f).map(|r| key(&r.unwrap())).collect()
    }

    #[test]
    fn sorts_small_input_in_memory() {
        let disk = SimDisk::new(128);
        let f = load_numbers(&disk, &[5, 3, 9, 1, 4]);
        let (sorted, stats) = external_sort(&disk, &f, 8, by_key).unwrap();
        assert_eq!(read_all(&disk, &sorted), vec![1, 3, 4, 5, 9]);
        assert_eq!(stats.initial_runs, 1);
        assert_eq!(stats.merge_passes, 0);
    }

    #[test]
    fn sorts_multi_run_input() {
        let disk = SimDisk::new(128);
        // 128-byte pages, 4-byte records: ~15 records/page. With a 2-page
        // budget (~256 bytes, 64 records), 1000 records need many runs.
        let nums: Vec<u32> = (0..1000).map(|i| (i * 7919) % 1000).collect();
        let f = load_numbers(&disk, &nums);
        let (sorted, stats) = external_sort(&disk, &f, 2, by_key).unwrap();
        let mut expect = nums.clone();
        expect.sort();
        assert_eq!(read_all(&disk, &sorted), expect);
        assert!(stats.initial_runs > 1, "expected spilling, got {stats:?}");
        assert!(stats.merge_passes >= 1);
    }

    #[test]
    fn two_pass_behavior_with_sqrt_memory() {
        let disk = SimDisk::new(128);
        let nums: Vec<u32> = (0..2000).rev().collect();
        let f = load_numbers(&disk, &nums);
        // Budget comfortably above sqrt of file size: a single merge pass.
        let (sorted, stats) = external_sort(&disk, &f, 16, by_key).unwrap();
        assert_eq!(read_all(&disk, &sorted)[..5], [0, 1, 2, 3, 4]);
        assert_eq!(stats.merge_passes, 1);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let disk = SimDisk::new(128);
        let empty = HeapFile::create(&disk);
        let (sorted, stats) = external_sort(&disk, &empty, 4, by_key).unwrap();
        assert_eq!(sorted.num_records(), 0);
        assert_eq!(stats.initial_runs, 0);

        let single = load_numbers(&disk, &[42]);
        let (sorted, _) = external_sort(&disk, &single, 4, by_key).unwrap();
        assert_eq!(read_all(&disk, &sorted), vec![42]);
    }

    #[test]
    fn duplicate_keys_survive() {
        let disk = SimDisk::new(128);
        let f = load_numbers(&disk, &[3, 1, 3, 1, 3]);
        let (sorted, _) = external_sort(&disk, &f, 2, by_key).unwrap();
        assert_eq!(read_all(&disk, &sorted), vec![1, 1, 3, 3, 3]);
    }

    #[test]
    fn parallel_sort_matches_serial_exactly() {
        // Same records on two disks: the parallel sort must reproduce the
        // serial result, stats, AND physical I/O counters bit-for-bit.
        let nums: Vec<u32> = (0..2000).map(|i| (i * 6007) % 2311).collect();
        let serial_disk = SimDisk::new(128);
        let f = load_numbers(&serial_disk, &nums);
        serial_disk.reset_io();
        let (serial_sorted, serial_stats) = external_sort(&serial_disk, &f, 4, by_key).unwrap();
        let serial_io = serial_disk.io();
        let serial_out = read_all(&serial_disk, &serial_sorted);

        for threads in [1usize, 2, 4, 8] {
            let disk = SimDisk::new(128);
            let f = load_numbers(&disk, &nums);
            disk.reset_io();
            let (sorted, stats) = external_sort_parallel(&disk, &f, 4, threads, by_key).unwrap();
            let io = disk.io();
            assert_eq!(stats, serial_stats, "stats diverge at threads={threads}");
            assert_eq!(io, serial_io, "I/O counters diverge at threads={threads}");
            assert_eq!(
                read_all(&disk, &sorted),
                serial_out,
                "output diverges at threads={threads}"
            );
        }
    }

    #[test]
    fn parallel_sort_handles_empty_and_tiny_inputs() {
        let disk = SimDisk::new(128);
        let empty = HeapFile::create(&disk);
        let (sorted, stats) = external_sort_parallel(&disk, &empty, 4, 4, by_key).unwrap();
        assert_eq!(sorted.num_records(), 0);
        assert_eq!(stats.initial_runs, 0);

        let single = load_numbers(&disk, &[9, 4]);
        let (sorted, _) = external_sort_parallel(&disk, &single, 4, 8, by_key).unwrap();
        assert_eq!(read_all(&disk, &sorted), vec![4, 9]);
    }

    #[test]
    fn record_fed_sort_matches_table_fed_sort_minus_the_scan() {
        // Feeding records straight into run generation must produce the same
        // sorted output, the same stats, and the same I/O minus exactly the
        // input materialization (writes) and re-scan (reads).
        let nums: Vec<u32> = (0..1200).map(|i| (i * 4099) % 977).collect();
        let table_disk = SimDisk::new(128);
        let f = load_numbers(&table_disk, &nums);
        let input_pages = f.num_pages();
        table_disk.reset_io();
        let (table_sorted, table_stats) = external_sort(&table_disk, &f, 3, by_key).unwrap();
        let table_io = table_disk.io();

        let rec_disk = SimDisk::new(128);
        rec_disk.reset_io();
        let records: Vec<Vec<u8>> = nums.iter().map(|n| n.to_le_bytes().to_vec()).collect();
        let (rec_sorted, rec_stats) = external_sort_records(&rec_disk, records, 3, by_key).unwrap();
        let rec_io = rec_disk.io();

        assert_eq!(rec_stats, table_stats, "same batches, same runs, same comparisons");
        assert_eq!(read_all(&rec_disk, &rec_sorted), read_all(&table_disk, &table_sorted));
        assert_eq!(rec_io.reads, table_io.reads - input_pages, "saves the input re-scan");
        assert_eq!(rec_io.writes, table_io.writes, "spill writes are identical");
    }

    #[test]
    fn io_is_linear_in_passes() {
        let disk = SimDisk::new(128);
        let nums: Vec<u32> = (0..1500).rev().collect();
        let f = load_numbers(&disk, &nums);
        let input_pages = f.num_pages();
        disk.reset_io();
        let (_, stats) = external_sort(&disk, &f, 16, by_key).unwrap();
        let io = disk.io();
        // Each pass reads and writes roughly the whole file.
        let passes = 1 + stats.merge_passes as u64;
        assert!(io.reads >= input_pages * passes);
        assert!(io.reads <= input_pages * (passes + 1) + 4);
        assert!(io.writes >= input_pages * passes);
    }
}
