//! The response-time cost model.
//!
//! The paper reports response times combining CPU time and I/O time on 1995
//! hardware, where the CPU:I/O speed ratio differed from today's by orders
//! of magnitude. Our substrate measures real CPU time and counts simulated
//! page I/Os; the cost model converts a count into time with a configurable
//! per-page latency. The default of 1 ms keeps the CPU and I/O terms in the
//! same balance relative to a modern CPU that the paper's SPARC/IPC had
//! against its 10 ms disk — both terms matter, and the algorithms' relative
//! results (who wins, by what factor, where CPU/I-O crossovers fall) match
//! the paper's shape. Pass a different latency to explore other regimes.

use crate::disk::IoSnapshot;
use std::time::Duration;

/// Converts I/O counts and measured CPU time into a modeled response time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Modeled latency of one physical page transfer.
    pub page_io: Duration,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel { page_io: Duration::from_millis(1) }
    }
}

impl CostModel {
    /// A model with the given per-page latency.
    pub fn new(page_io: Duration) -> CostModel {
        CostModel { page_io }
    }

    /// Modeled time of the given I/O counters.
    pub fn io_time(&self, io: &IoSnapshot) -> Duration {
        self.page_io * (io.total() as u32)
    }

    /// Modeled response time: measured CPU plus modeled I/O.
    pub fn response_time(&self, io: &IoSnapshot, cpu: Duration) -> Duration {
        cpu + self.io_time(io)
    }
}

/// One leg of a measured execution: I/O counters plus CPU time.
#[derive(Debug, Clone, Copy, Default)]
pub struct Measurement {
    /// Page I/O performed by the leg.
    pub io: IoSnapshot,
    /// CPU time actually spent.
    pub cpu: Duration,
}

impl Measurement {
    /// Modeled response time under `model`.
    pub fn response_time(&self, model: &CostModel) -> Duration {
        model.response_time(&self.io, self.cpu)
    }

    /// Component-wise sum of two measurements.
    pub fn plus(&self, other: &Measurement) -> Measurement {
        Measurement {
            io: IoSnapshot {
                reads: self.io.reads + other.io.reads,
                writes: self.io.writes + other.io.writes,
            },
            cpu: self.cpu + other.cpu,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_time_scales_with_page_count() {
        let m = CostModel::default();
        let io = IoSnapshot { reads: 70, writes: 30 };
        assert_eq!(m.io_time(&io), Duration::from_millis(100));
        let slow = CostModel::new(Duration::from_millis(10));
        assert_eq!(slow.io_time(&io), Duration::from_secs(1));
    }

    #[test]
    fn response_time_adds_cpu() {
        let m = CostModel::default();
        let io = IoSnapshot { reads: 10, writes: 0 };
        let rt = m.response_time(&io, Duration::from_millis(250));
        assert_eq!(rt, Duration::from_millis(260));
    }

    #[test]
    fn measurements_compose() {
        let a =
            Measurement { io: IoSnapshot { reads: 1, writes: 2 }, cpu: Duration::from_millis(5) };
        let b =
            Measurement { io: IoSnapshot { reads: 10, writes: 0 }, cpu: Duration::from_millis(20) };
        let s = a.plus(&b);
        assert_eq!(s.io.reads, 11);
        assert_eq!(s.io.writes, 2);
        assert_eq!(s.cpu, Duration::from_millis(25));
        assert_eq!(s.response_time(&CostModel::default()), Duration::from_millis(25 + 13));
    }
}
