//! Slotted pages: the on-disk record layout.
//!
//! Layout of a page of `P` bytes:
//!
//! ```text
//! +-----------+-----------+---------------------->   <-----------------+
//! | slots u16 | free  u16 | record 0 | record 1 | ... | slot 1 | slot 0 |
//! +-----------+-----------+---------------------->   <-----------------+
//! ```
//!
//! The 4-byte header holds the slot count and the offset of free space.
//! Records grow from the left; the slot directory (4 bytes per slot: record
//! offset and length, both `u16`) grows from the right. Records are
//! variable-length, which the fuzzy data model needs — an ill-known value
//! takes four floats where a crisp one takes one (the paper's observation
//! that ill-known data costs more I/O than crisp data).

use crate::error::{Result, StorageError};

const HEADER: usize = 4;
const SLOT: usize = 4;

/// An in-memory slotted page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Page {
    data: Vec<u8>,
}

impl Page {
    /// Creates an empty page of `page_size` bytes.
    pub fn new(page_size: usize) -> Page {
        assert!(
            page_size >= 64 && page_size <= u16::MAX as usize + 1,
            "page size must be in [64, 65536]"
        );
        let mut data = vec![0u8; page_size];
        write_u16(&mut data, 2, HEADER as u16); // free pointer starts after header
        Page { data }
    }

    /// Wraps raw page bytes read from disk, validating the header.
    pub fn from_bytes(data: Box<[u8]>) -> Result<Page> {
        let data = data.into_vec();
        if data.len() < 64 {
            return Err(StorageError::Corrupt("page shorter than 64 bytes".into()));
        }
        let page = Page { data };
        let slots = page.slot_count() as usize;
        let free = page.free_ptr();
        if HEADER + slots * SLOT > page.data.len()
            || free < HEADER
            || free > page.data.len().saturating_sub(slots * SLOT)
        {
            return Err(StorageError::Corrupt("inconsistent page header".into()));
        }
        Ok(page)
    }

    /// The raw bytes of the page (e.g. for writing back to disk).
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Number of records stored in this page.
    pub fn slot_count(&self) -> u16 {
        read_u16(&self.data, 0)
    }

    fn free_ptr(&self) -> usize {
        read_u16(&self.data, 2) as usize
    }

    /// Free bytes available for one more record (accounting for its slot).
    pub fn free_space(&self) -> usize {
        let used_right = self.slot_count() as usize * SLOT;
        let avail = self.data.len() - used_right - self.free_ptr();
        avail.saturating_sub(SLOT)
    }

    /// Maximum record payload an empty page of this size can hold.
    pub fn capacity(page_size: usize) -> usize {
        page_size - HEADER - SLOT
    }

    /// Appends a record, returning its slot index, or an error if it does not
    /// fit (callers then move on to a fresh page, or fail for records larger
    /// than a whole page).
    pub fn insert(&mut self, record: &[u8]) -> Result<u16> {
        if record.len() > u16::MAX as usize || record.len() > self.free_space() {
            return Err(StorageError::RecordTooLarge {
                need: record.len() + SLOT,
                page_capacity: self.free_space() + SLOT,
            });
        }
        let slot = self.slot_count();
        let off = self.free_ptr();
        self.data[off..off + record.len()].copy_from_slice(record);
        let slot_pos = self.data.len() - (slot as usize + 1) * SLOT;
        write_u16(&mut self.data, slot_pos, off as u16);
        write_u16(&mut self.data, slot_pos + 2, record.len() as u16);
        write_u16(&mut self.data, 0, slot + 1);
        write_u16(&mut self.data, 2, (off + record.len()) as u16);
        Ok(slot)
    }

    /// The record stored in `slot`.
    pub fn get(&self, slot: u16) -> Result<&[u8]> {
        if slot >= self.slot_count() {
            return Err(StorageError::InvalidSlot(slot));
        }
        let slot_pos = self.data.len() - (slot as usize + 1) * SLOT;
        let off = read_u16(&self.data, slot_pos) as usize;
        let len = read_u16(&self.data, slot_pos + 2) as usize;
        if off + len > self.data.len() {
            return Err(StorageError::Corrupt(format!("slot {slot} points outside page")));
        }
        Ok(&self.data[off..off + len])
    }

    /// Iterates over all records in slot order.
    pub fn records(&self) -> impl Iterator<Item = &[u8]> + '_ {
        (0..self.slot_count()).map(move |s| self.get(s).expect("slot in range"))
    }
}

fn read_u16(data: &[u8], pos: usize) -> u16 {
    u16::from_le_bytes([data[pos], data[pos + 1]])
}

fn write_u16(data: &mut [u8], pos: usize, v: u16) {
    data[pos..pos + 2].copy_from_slice(&v.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut p = Page::new(128);
        assert_eq!(p.slot_count(), 0);
        let s0 = p.insert(b"hello").unwrap();
        let s1 = p.insert(b"world!").unwrap();
        assert_eq!((s0, s1), (0, 1));
        assert_eq!(p.get(0).unwrap(), b"hello");
        assert_eq!(p.get(1).unwrap(), b"world!");
        assert_eq!(p.get(2), Err(StorageError::InvalidSlot(2)));
        assert_eq!(p.records().collect::<Vec<_>>(), vec![&b"hello"[..], &b"world!"[..]]);
    }

    #[test]
    fn empty_records_allowed() {
        let mut p = Page::new(64);
        let s = p.insert(b"").unwrap();
        assert_eq!(p.get(s).unwrap(), b"");
    }

    #[test]
    fn fills_until_capacity() {
        let mut p = Page::new(64);
        // 64 - 4 header = 60 bytes; each 6-byte record takes 6 + 4 slot = 10.
        let mut n = 0;
        while p.insert(b"abcdef").is_ok() {
            n += 1;
        }
        assert_eq!(n, 6);
        assert!(p.free_space() < 10);
        // The page is still fully readable.
        assert!(p.records().all(|r| r == b"abcdef"));
    }

    #[test]
    fn oversized_record_rejected() {
        let mut p = Page::new(64);
        let err = p.insert(&[0u8; 100]).unwrap_err();
        assert!(matches!(err, StorageError::RecordTooLarge { .. }));
        assert_eq!(Page::capacity(8192), 8192 - 8);
    }

    #[test]
    fn roundtrip_through_bytes() {
        let mut p = Page::new(128);
        p.insert(b"one").unwrap();
        p.insert(b"two").unwrap();
        let bytes: Box<[u8]> = p.as_bytes().to_vec().into_boxed_slice();
        let q = Page::from_bytes(bytes).unwrap();
        assert_eq!(q, p);
        assert_eq!(q.get(1).unwrap(), b"two");
    }

    #[test]
    fn corrupt_pages_rejected() {
        let mut bytes = vec![0u8; 128];
        bytes[0] = 0xFF; // 255 slots cannot fit in 128 bytes
        bytes[1] = 0x00;
        assert!(matches!(
            Page::from_bytes(bytes.into_boxed_slice()),
            Err(StorageError::Corrupt(_))
        ));
        assert!(matches!(
            Page::from_bytes(vec![0u8; 8].into_boxed_slice()),
            Err(StorageError::Corrupt(_))
        ));
    }
}
