//! Parser robustness: random and mutated inputs must produce errors, never
//! panics, and valid queries must round-trip through Display.

use fuzzy_sql::{parse, parse_statement};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary strings never panic the lexer/parser.
    #[test]
    fn arbitrary_strings_never_panic(s in ".{0,160}") {
        let _ = parse(&s);
        let _ = parse_statement(&s);
    }

    /// SQL-flavoured token soup never panics either.
    #[test]
    fn token_soup_never_panics(parts in prop::collection::vec(
        prop_oneof![
            Just("SELECT".to_string()), Just("FROM".to_string()), Just("WHERE".to_string()),
            Just("AND".to_string()), Just("IN".to_string()), Just("NOT".to_string()),
            Just("ALL".to_string()), Just("(".to_string()), Just(")".to_string()),
            Just(",".to_string()), Just("=".to_string()), Just("<".to_string()),
            Just(">=".to_string()), Just("~".to_string()), Just("WITHIN".to_string()),
            Just("R.X".to_string()), Just("S.Y".to_string()), Just("'term'".to_string()),
            Just("1.5".to_string()), Just("GROUP".to_string()), Just("BY".to_string()),
            Just("ORDER".to_string()), Just("LIMIT".to_string()), Just("WITH".to_string()),
            Just("D".to_string()), Just("TRAP".to_string()), Just("MAX".to_string()),
            Just("INSERT".to_string()), Just("VALUES".to_string()), Just("DELETE".to_string()),
        ],
        0..24,
    )) {
        let s = parts.join(" ");
        let _ = parse(&s);
        let _ = parse_statement(&s);
    }

    /// Every successfully parsed SELECT renders to SQL that re-parses to the
    /// same AST (Display round-trip as a property, not just examples).
    #[test]
    fn parsed_queries_roundtrip(parts in prop::collection::vec(
        prop_oneof![
            Just("SELECT R.X FROM R".to_string()),
            Just("SELECT R.X, S.Y FROM R, S WHERE R.X = S.Y".to_string()),
            Just("SELECT R.X FROM R WHERE R.Y IN (SELECT S.Z FROM S WHERE S.V = R.U)".to_string()),
            Just("SELECT R.X FROM R WHERE R.Y ~ 5 WITHIN 2 ORDER BY D DESC LIMIT 3".to_string()),
            Just("SELECT R.X FROM R WHERE R.Y > (SELECT AVG(S.Z) FROM S) WITH D > 0.4".to_string()),
        ],
        1..2,
    )) {
        for src in parts {
            let q1 = parse(&src).expect("known-good query");
            let q2 = parse(&q1.to_string()).expect("rendered query must re-parse");
            prop_assert_eq!(q1, q2);
        }
    }
}
