//! SQL rendering of the AST (round-trips through the parser).

use crate::ast::{
    HavingOperand, HavingPredicate, Operand, OrderKey, Predicate, Quantifier, Query, SelectItem,
    Threshold,
};
use std::fmt;

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, item) in self.select.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, " FROM ")?;
        for (i, t) in self.from.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", t.table)?;
            if let Some(a) = &t.alias {
                write!(f, " {a}")?;
            }
        }
        if !self.predicates.is_empty() {
            write!(f, " WHERE ")?;
            for (i, p) in self.predicates.iter().enumerate() {
                if i > 0 {
                    write!(f, " AND ")?;
                }
                write!(f, "{p}")?;
            }
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, c) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{c}")?;
            }
        }
        if !self.having.is_empty() {
            write!(f, " HAVING ")?;
            for (i, h) in self.having.iter().enumerate() {
                if i > 0 {
                    write!(f, " AND ")?;
                }
                write!(f, "{h}")?;
            }
        }
        if let Some(Threshold { z, strict }) = self.with_threshold {
            write!(f, " WITH D {} {z}", if strict { ">" } else { ">=" })?;
        }
        if let Some(o) = &self.order_by {
            match &o.key {
                OrderKey::Degree => write!(f, " ORDER BY D")?,
                OrderKey::Column(c) => write!(f, " ORDER BY {c}")?,
            }
            if o.descending {
                write!(f, " DESC")?;
            }
        }
        if let Some(n) = self.limit {
            write!(f, " LIMIT {n}")?;
        }
        Ok(())
    }
}

impl fmt::Display for HavingPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op, self.rhs)
    }
}

impl fmt::Display for HavingOperand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HavingOperand::Aggregate(a, c) => write!(f, "{}({c})", a.name()),
            HavingOperand::CountStar => write!(f, "COUNT(*)"),
            HavingOperand::Column(c) => write!(f, "{c}"),
            HavingOperand::Number(n) => write!(f, "{n}"),
            HavingOperand::Term(t) => write!(f, "'{}'", t.replace('\'', "''")),
        }
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Column(c) => write!(f, "{c}"),
            SelectItem::Aggregate(a, c) => write!(f, "{}({c})", a.name()),
            SelectItem::MinDegree => write!(f, "MIN(D)"),
            SelectItem::CountStar => write!(f, "COUNT(*)"),
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Column(c) => write!(f, "{c}"),
            Operand::Number(n) => write!(f, "{n}"),
            Operand::Term(t) => write!(f, "'{}'", t.replace('\'', "''")),
            Operand::FuzzyLiteral(a, b, c, d) => write!(f, "TRAP({a}, {b}, {c}, {d})"),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Compare { lhs, op, rhs } => write!(f, "{lhs} {op} {rhs}"),
            Predicate::Similar { lhs, rhs, tolerance } => {
                write!(f, "{lhs} ~ {rhs} WITHIN {tolerance}")
            }
            Predicate::In { lhs, negated, query } => {
                write!(f, "{lhs} {}IN ({query})", if *negated { "NOT " } else { "" })
            }
            Predicate::Quantified { lhs, op, quantifier, query } => {
                let q = match quantifier {
                    Quantifier::All => "ALL",
                    Quantifier::Some => "SOME",
                };
                write!(f, "{lhs} {op} {q} ({query})")
            }
            Predicate::AggSubquery { lhs, op, query } => write!(f, "{lhs} {op} ({query})"),
            Predicate::Exists { negated, query } => {
                write!(f, "{}EXISTS ({query})", if *negated { "NOT " } else { "" })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse;

    /// Display must round-trip through the parser for representative queries.
    #[test]
    fn roundtrip() {
        let sources = [
            "SELECT F.NAME, M.NAME FROM F, M WHERE F.AGE = M.AGE AND M.INCOME > 'medium high'",
            "SELECT F.NAME FROM F WHERE F.AGE = 'medium young' AND F.INCOME IN \
             (SELECT M.INCOME FROM M WHERE M.AGE = 'middle age')",
            "SELECT R.NAME FROM EMP_SALES R WHERE R.INCOME NOT IN \
             (SELECT S.INCOME FROM EMP_RESEARCH S WHERE S.AGE = R.AGE)",
            "SELECT R.X FROM R WHERE R.Y < ALL (SELECT S.Z FROM S WHERE S.V = R.U)",
            "SELECT R.X FROM R WHERE R.Y > (SELECT MAX(S.Z) FROM S WHERE S.V = R.U)",
            "SELECT R.K, R.X, MIN(D) FROM R, S GROUP BY R.K WITH D >= 0",
            "SELECT DISTINCT COUNT(*) FROM R WITH D > 0.25",
            "SELECT R.X FROM R WHERE NOT EXISTS (SELECT S.Z FROM S)",
            "SELECT R.X FROM R WHERE R.NAME = 'it''s'",
            "SELECT R.X FROM R WHERE R.AGE ~ 30 WITHIN 5",
            "SELECT R.REGION, COUNT(R.X) FROM R GROUP BY R.REGION HAVING COUNT(*) >= 2 AND SUM(R.X) > 'high'",
            "SELECT R.X FROM R ORDER BY D DESC LIMIT 3",
            "SELECT R.X FROM R WHERE R.Y IN (SELECT S.Z FROM S) ORDER BY X LIMIT 10",
        ];
        for src in sources {
            let q1 = parse(src).unwrap();
            let rendered = q1.to_string();
            let q2 = parse(&rendered)
                .unwrap_or_else(|e| panic!("rendered SQL failed to re-parse: {rendered:?}: {e}"));
            assert_eq!(q1, q2, "round-trip mismatch for {src:?} -> {rendered:?}");
        }
    }
}
