//! Tokens of the Fuzzy SQL language.

use std::fmt;

/// A lexical token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the token start in the source text.
    pub offset: usize,
}

/// Token kinds. Keywords are recognized case-insensitively by the lexer and
/// normalized here.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Keyword (uppercased): SELECT, FROM, WHERE, AND, IN, NOT, IS, ALL,
    /// SOME, ANY, EXISTS, GROUP, BY, HAVING, WITH, DISTINCT, …
    Keyword(String),
    /// Identifier (table, alias, attribute, aggregate function name).
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// Quoted string literal / linguistic term (single or double quotes).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `~` (similarity comparison, used as `X ~ Y WITHIN t`)
    Tilde,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "{k}"),
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Number(n) => write!(f, "{n}"),
            TokenKind::Str(s) => write!(f, "\"{s}\""),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Dot => write!(f, "."),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Eq => write!(f, "="),
            TokenKind::Ne => write!(f, "<>"),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::Le => write!(f, "<="),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::Ge => write!(f, ">="),
            TokenKind::Tilde => write!(f, "~"),
            TokenKind::Eof => write!(f, "<end of input>"),
        }
    }
}

/// The reserved words of Fuzzy SQL.
pub const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "AND", "OR", "IN", "NOT", "IS", "ALL", "SOME", "ANY", "EXISTS",
    "GROUP", "BY", "HAVING", "WITH", "DISTINCT", "AS", "WITHIN", "ORDER", "LIMIT", "DESC", "ASC",
];

/// True iff `word` is a reserved keyword (case-insensitive).
pub fn is_keyword(word: &str) -> bool {
    KEYWORDS.iter().any(|k| k.eq_ignore_ascii_case(word))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_recognition() {
        assert!(is_keyword("select"));
        assert!(is_keyword("Select"));
        assert!(is_keyword("EXISTS"));
        assert!(!is_keyword("name"));
        assert!(!is_keyword("min"));
    }

    #[test]
    fn display() {
        assert_eq!(TokenKind::Le.to_string(), "<=");
        assert_eq!(TokenKind::Str("medium young".into()).to_string(), "\"medium young\"");
        assert_eq!(TokenKind::Keyword("SELECT".into()).to_string(), "SELECT");
    }
}
